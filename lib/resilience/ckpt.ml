open Bg_engine
module Obs = Bg_obs.Obs
module Libc = Bg_rt.Libc

type strategy = Parity_inplace | Rollback

type spec = {
  name : string;
  steps : int;
  step_cycles : int;
  state_bytes : int;
  ckpt_every : int;
  full_every : int;
  strategy : strategy;
}

type outcome = {
  rank_index : int;
  machine_rank : int;
  final_step : int;
  state_digest : Fnv.t;
  parity_redos : int;
  restored_step : int;
}

let sigbus = 7
let chunk = 16 * 1024

(* State layout: [0..8) the last completed step, slots of 64 bytes from
   offset 64 on; step k rewrites slot (k-1) mod slots with a pattern that
   is a pure function of (logical rank, k) — so the host can mirror the
   final state byte for byte and recovery bugs show up as digest splits. *)
let slot_bytes = 64
let data_off = 64
let slots spec = (spec.state_bytes - data_off) / slot_bytes
let slot_of spec step = (step - 1) mod slots spec

let fill_slot ~rank_index ~step b off =
  for j = 0 to slot_bytes - 1 do
    Bytes.set b (off + j) (Char.chr (((rank_index * 31) + (step * 7) + j) land 0xff))
  done

let expected_digest spec ~rank_index =
  let b = Bytes.make spec.state_bytes '\000' in
  Bytes.set_int64_le b 0 (Int64.of_int spec.steps);
  for step = 1 to spec.steps do
    fill_slot ~rank_index ~step b (data_off + (slot_of spec step * slot_bytes))
  done;
  Fnv.add_bytes Fnv.empty b

(* -- checkpoint files --------------------------------------------------

   Keyed by logical rank so a restart finds its state on any partition.
   Full images go through Apps.Checkpoint (self-describing region list);
   deltas use a tiny [count][addr len]...[data] format of their own.
   A version exists once `<name>.c<v>` does — written by logical rank 0
   only after a barrier confirmed every rank's file is durable. *)

let full_name spec idx v = Printf.sprintf "%s.r%d.f%d" spec.name idx v
let delta_name spec idx v = Printf.sprintf "%s.r%d.d%d" spec.name idx v
let delta_path spec idx v = "/ckpt/" ^ delta_name spec idx v
let commit_prefix spec = spec.name ^ ".c"
let is_full spec v = spec.full_every <= 1 || v mod spec.full_every = 1
let full_base spec v = if spec.full_every <= 1 then v else v - ((v - 1) mod spec.full_every)
let rw_create = { Sysreq.o_rdwr with Sysreq.creat = true; trunc = true }

(* A commit marker only names a version; this rank can restore it only if
   the same directory listing also shows the full base image and every
   delta from there up. The cross-check is pure logic over the one
   readdir the old code already did — so a kill that lands between the
   commit phases (data files durable, marker not yet / marker durable
   but a later run's data lost) degrades to the newest whole version
   instead of a torn restore. Newest first. *)
let committed_versions spec ~idx =
  match Libc.readdir "/ckpt" with
  | exception Sysreq.Syscall_error _ -> []
  | names ->
    let have = Hashtbl.create 64 in
    List.iter (fun n -> Hashtbl.replace have n ()) names;
    let p = commit_prefix spec in
    let pl = String.length p in
    let marks =
      List.filter_map
        (fun n ->
          if String.length n > pl && String.sub n 0 pl = p then
            int_of_string_opt (String.sub n pl (String.length n - pl))
          else None)
        names
    in
    let restorable v =
      let vf = full_base spec v in
      Hashtbl.mem have (full_name spec idx vf)
      &&
      let rec deltas w = w > v || (Hashtbl.mem have (delta_name spec idx w) && deltas (w + 1)) in
      deltas (vf + 1)
    in
    List.sort (fun a b -> compare b a) (List.filter restorable marks)

let write_commit spec ~v ~step =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Bytes.set_int64_le b 8 (Int64.of_int step);
  let fd = Libc.openf ~flags:rw_create ("/ckpt/" ^ commit_prefix spec ^ string_of_int v) in
  ignore (Libc.write fd b);
  Libc.close fd

let write_delta spec ~idx ~v ~base =
  let lo = base and hi = base + spec.state_bytes in
  let ranges =
    Libc.query_dirty ~clear:true
    |> List.filter_map (fun (a, l) ->
           let a' = max a lo and e = min (a + l) hi in
           if a' < e then Some (a', e - a') else None)
  in
  (* Bg_snap.Snap.Sparse owns the delta wire format; the write sequence
     (one header write, then <=16 KiB data writes) is unchanged so CIO
     service timing — and with it the resilience digests — stays put. *)
  let head = Bg_snap.Snap.Sparse.encode_header ranges in
  let fd = Libc.openf ~flags:rw_create (delta_path spec idx v) in
  let total = ref (Libc.write fd head) in
  List.iter
    (fun (a, l) ->
      let off = ref 0 in
      while !off < l do
        let n = min chunk (l - !off) in
        total := !total + Libc.write fd (Coro.load ~addr:(a + !off) ~len:n);
        off := !off + n
      done)
    ranges;
  Libc.close fd;
  !total

(* Validate before touching memory: a truncated body or a range outside
   this rank's state region returns [false] with the image untouched, so
   the caller can fall back to an older version instead of resuming on a
   half-applied delta. *)
let apply_delta spec ~idx ~v ~base =
  match Libc.openf ~flags:Sysreq.o_rdonly (delta_path spec idx v) with
  | exception Sysreq.Syscall_error _ -> false
  | fd -> (
    let size = (Libc.fstat fd).Sysreq.st_size in
    let data = Libc.read fd ~len:size in
    Libc.close fd;
    match Bg_snap.Snap.Sparse.decode_header data with
    | Error _ -> false
    | Ok (ranges, data_off) ->
      let need = List.fold_left (fun acc (_, l) -> acc + l) data_off ranges in
      if
        need > Bytes.length data
        || List.exists
             (fun (a, l) -> l < 0 || a < base || a + l > base + spec.state_bytes)
             ranges
      then false
      else begin
        let doff = ref data_off in
        List.iter
          (fun (a, l) ->
            let off = ref 0 in
            while !off < l do
              let n = min chunk (l - !off) in
              Coro.store ~addr:(a + !off) (Bytes.sub data (!doff + !off) n);
              off := !off + n
            done;
            doff := !doff + l)
          ranges;
        true
      end)

(* Restore the newest committed-and-whole version: full base image, then
   every delta up to it; fall back down the version list if a file that
   passed the listing cross-check still fails to restore (corrupt header,
   truncated body). Returns (version, step) — (0, 0) means start fresh. *)
let try_restore spec ~idx ~base =
  let rec attempt = function
    | [] -> (0, 0)
    | v :: rest -> (
      let vf = full_base spec v in
      match
        Bg_apps.Checkpoint.restore ~name:(full_name spec idx vf)
          ~regions:[ (base, spec.state_bytes) ]
      with
      | Ok () ->
        let rec deltas w = w > v || (apply_delta spec ~idx ~v:w ~base && deltas (w + 1)) in
        if deltas (vf + 1) then (v, Libc.peek base) else attempt rest
      | Error _ -> attempt rest)
  in
  attempt (committed_versions spec ~idx)

let job_factory ~fabric spec =
  if spec.state_bytes < 128 then invalid_arg "Ckpt.job_factory: state_bytes < 128";
  if spec.steps < 1 || spec.step_cycles < 1 then invalid_arg "Ckpt.job_factory";
  let machine = Bg_msg.Dcmf.machine fabric in
  let obs = machine.Machine.obs in
  let outcomes = ref [] in
  let factory ~ranks =
    let n = List.length ranks in
    (* fresh collective state per incarnation: a killed incarnation's
       half-finished barrier must not leak arrivals into the next one *)
    let coll = Bg_msg.Mpi.Coll.create fabric ~participants:n in
    let entry () =
      let me = Libc.rank () in
      let idx =
        let rec find i = function
          | [] -> invalid_arg "Ckpt: rank not in partition"
          | r :: _ when r = me -> i
          | _ :: rest -> find (i + 1) rest
        in
        find 0 ranks
      in
      let mpi = Bg_msg.Mpi.create (Bg_msg.Dcmf.attach fabric ~rank:me) in
      let barrier () = ignore (Bg_msg.Mpi.Coll.allreduce_sum coll mpi 1.) in
      let base = Libc.sbrk spec.state_bytes in
      let regions = [ (base, spec.state_bytes) ] in
      let version, start_step = try_restore spec ~idx ~base in
      if version = 0 then begin
        (* Fresh start: scrub the region, as CNK scrubs memory between
           jobs — on a busy machine this heap hosted someone else's job a
           moment ago, and untouched slots must read as zero, not as the
           previous tenant's state. (A successful restore rewrites the
           whole region, so only the fresh path scrubs.) *)
        let zeros = Bytes.make chunk '\000' in
        let off = ref 0 in
        while !off < spec.state_bytes do
          let n = min chunk (spec.state_bytes - !off) in
          Coro.store ~addr:(base + !off)
            (if n = chunk then zeros else Bytes.sub zeros 0 n);
          off := !off + n
        done
      end;
      (* restoring (or scrubbing) dirtied the whole image; deltas restart
         from here *)
      ignore (Libc.query_dirty ~clear:true);
      if start_step > 0 then Obs.incr obs ~subsystem:"resilience" ~name:"restores" ();
      let hit = ref false and redos = ref 0 in
      (match spec.strategy with
      | Parity_inplace ->
        (* CNK §V.B: the parity SIGBUS is survivable — note it and redo *)
        Libc.sigaction ~signo:sigbus (Some (fun _ -> hit := true))
      | Rollback ->
        (* FWK stand-in: no in-place story; the fault kills the job and
           recovery must roll back to the last checkpoint *)
        ());
      let v = ref version in
      for step = start_step + 1 to spec.steps do
        let rec attempt () =
          hit := false;
          Coro.consume spec.step_cycles;
          if !hit then begin
            incr redos;
            Obs.incr obs ~subsystem:"resilience" ~name:"parity_redos" ();
            attempt ()
          end
        in
        attempt ();
        let b = Bytes.create slot_bytes in
        fill_slot ~rank_index:idx ~step b 0;
        Coro.store ~addr:(base + data_off + (slot_of spec step * slot_bytes)) b;
        Libc.poke base step;
        Obs.incr obs ~subsystem:"resilience" ~name:"steps_executed" ();
        if spec.ckpt_every > 0 && step mod spec.ckpt_every = 0 && step < spec.steps
        then begin
          barrier () (* quiesce: every rank at the same step *);
          let t0 = Coro.rdtsc () in
          incr v;
          let bytes =
            if is_full spec !v then begin
              let b =
                Bg_apps.Checkpoint.save ~name:(full_name spec idx !v) ~regions
              in
              ignore (Libc.query_dirty ~clear:true);
              Obs.incr obs ~subsystem:"resilience" ~name:"ckpt_full" ();
              b
            end
            else begin
              Obs.incr obs ~subsystem:"resilience" ~name:"ckpt_delta" ();
              write_delta spec ~idx ~v:!v ~base
            end
          in
          Obs.incr obs ~subsystem:"resilience" ~name:"ckpt_bytes" ~by:bytes ();
          barrier () (* everyone durable before the version commits *);
          if idx = 0 then write_commit spec ~v:!v ~step;
          Obs.observe_cycles obs ~subsystem:"resilience" ~name:"ckpt_cycles"
            (Coro.rdtsc () - t0)
        end
      done;
      let digest = ref Fnv.empty in
      let off = ref 0 in
      while !off < spec.state_bytes do
        let nb = min chunk (spec.state_bytes - !off) in
        digest := Fnv.add_bytes !digest (Coro.load ~addr:(base + !off) ~len:nb);
        off := !off + nb
      done;
      outcomes :=
        {
          rank_index = idx;
          machine_rank = me;
          final_step = Libc.peek base;
          state_digest = !digest;
          parity_redos = !redos;
          restored_step = start_step;
        }
        :: !outcomes
    in
    Job.create ~name:spec.name (Image.executable ~name:spec.name entry)
  in
  let collect () =
    List.sort (fun a b -> compare a.rank_index b.rank_index) !outcomes
  in
  (factory, collect)
