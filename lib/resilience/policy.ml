module Obs = Bg_obs.Obs
module Sim = Bg_engine.Sim
module Fnv = Bg_engine.Fnv
module Scheduler = Bg_control.Scheduler

(* The decision layer of the self-healing control plane. {!Recovery} is
   the actuator; this module decides when each action fires: retries get
   deterministic exponential backoff, crashed I/O daemons get a bounded
   restart budget before the pset is drained and rebuilt, dead nodes pull
   spares from the partition pool, and sustained fault pressure walks the
   machine down graceful-degradation tiers (shed backfill, cap shapes,
   close admission) and back up as the window clears. Every decision is a
   pure function of the fault stream and the simulated clock, so a
   same-seed run replays the identical timeline. *)

type health_state = Healthy | Degraded | Critical

let health_rank = function Healthy -> 0 | Degraded -> 1 | Critical -> 2
let health_to_string = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Critical -> "critical"

type config = {
  retry_backoff_base : int;
  retry_backoff_mult : int;
  retry_backoff_cap : int;
  spare_substitution : bool;
  ciod_restart_budget : int;
  ciod_restart_backoff : int;
  ciod_crash_window : int;
  pset_rebuild_after : int;
  degraded_after : int;
  critical_after : int;
  recovery_cooldown : int;
  shape_cap_degraded : (int * int * int) option;
}

let default =
  {
    retry_backoff_base = 20_000;
    retry_backoff_mult = 2;
    retry_backoff_cap = 320_000;
    spare_substitution = true;
    ciod_restart_budget = 2;
    ciod_restart_backoff = 50_000;
    ciod_crash_window = 2_000_000;
    pset_rebuild_after = 1_000_000;
    degraded_after = 3;
    critical_after = 6;
    recovery_cooldown = 1_500_000;
    shape_cap_degraded = Some (1, 1, 1);
  }

type t = {
  recovery : Recovery.t;
  config : config;
  sim : Sim.t;
  mutable state : health_state;
  (* cycle stamps of recent pressure-bearing faults, newest first *)
  mutable window : int list;
  (* io_node -> recent fatal-crash stamps, for the restart budget *)
  fatals : (int, int list) Hashtbl.t;
  (* io_node -> a restart is scheduled; cleared when the daemon comes
     back by any path (Ciod.on_restart) *)
  pending_restart : (int, unit) Hashtbl.t;
  mutable timeline_rev : (int * string) list;
  mutable tl_digest : Fnv.t;
  mutable reeval_armed : bool;
  mutable retries_delayed : int;
  mutable transitions : int;
  mutable ciod_restarts : int;
  mutable drains : int;
  mutable rebuilds : int;
  mutable jobs_shed : int;
}

let scheduler t = Recovery.scheduler t.recovery
let recovery t = t.recovery
let config t = t.config
let health t = t.state
let machine t = Cnk.Cluster.machine (Scheduler.cluster (scheduler t))
let obs t = (machine t).Machine.obs

let record t fmt =
  Printf.ksprintf
    (fun msg ->
      let cyc = Sim.now t.sim in
      t.timeline_rev <- (cyc, msg) :: t.timeline_rev;
      t.tl_digest <- Fnv.add_string (Fnv.add_int t.tl_digest cyc) msg)
    fmt

let timeline t = List.rev t.timeline_rev
let timeline_digest t = t.tl_digest

(* -- fault-pressure window and degradation tiers --------------------- *)

let prune t =
  let cutoff = Sim.now t.sim - t.config.recovery_cooldown in
  t.window <- List.filter (fun c -> c > cutoff) t.window

let pressure t =
  prune t;
  List.length t.window

let target_of_pressure t p =
  if p >= t.config.critical_after then Critical
  else if p >= t.config.degraded_after then Degraded
  else Healthy

let set_state t s =
  let prev = t.state in
  t.state <- s;
  t.transitions <- t.transitions + 1;
  Obs.set_gauge (obs t) ~subsystem:"policy" ~name:"health_state"
    (health_rank s);
  Obs.incr (obs t) ~subsystem:"policy" ~name:"transitions" ();
  record t "health %s -> %s" (health_to_string prev) (health_to_string s)

(* Escalation applies every tier crossed on the way up; a Healthy machine
   under a hard burst sheds, caps and closes admission in one step. *)
let escalate t target =
  let sched = scheduler t in
  if health_rank t.state < health_rank Degraded
     && health_rank target >= health_rank Degraded
  then begin
    let shed = Scheduler.shed_backfill sched in
    t.jobs_shed <- t.jobs_shed + List.length shed;
    Scheduler.set_shape_cap sched t.config.shape_cap_degraded;
    record t "degrade shed=%d cap=%s" (List.length shed)
      (match t.config.shape_cap_degraded with
      | None -> "none"
      | Some (x, y, z) -> Printf.sprintf "%dx%dx%d" x y z)
  end;
  if health_rank t.state < health_rank Critical
     && health_rank target >= health_rank Critical
  then begin
    Scheduler.set_admission sched false;
    record t "admission closed"
  end;
  set_state t target

(* De-escalation is one tier per quiet cooldown window — the machine
   earns its way back rather than flapping on a single quiet period. *)
let step_down t =
  let sched = scheduler t in
  match t.state with
  | Healthy -> ()
  | Critical ->
    Scheduler.set_admission sched true;
    record t "admission reopened";
    set_state t Degraded
  | Degraded ->
    Scheduler.set_shape_cap sched None;
    record t "shape cap lifted";
    set_state t Healthy;
    Scheduler.kick sched

let rec arm_reeval t =
  if (not t.reeval_armed) && t.state <> Healthy then begin
    t.reeval_armed <- true;
    ignore
      (Sim.schedule_in t.sim t.config.recovery_cooldown (fun () ->
           t.reeval_armed <- false;
           let p = pressure t in
           if health_rank (target_of_pressure t p) < health_rank t.state then
             step_down t;
           arm_reeval t))
  end

let note_pressure t =
  prune t;
  t.window <- Sim.now t.sim :: t.window;
  Obs.set_gauge (obs t) ~subsystem:"policy" ~name:"fault_pressure"
    (List.length t.window);
  let target = target_of_pressure t (List.length t.window) in
  if health_rank target > health_rank t.state then escalate t target;
  arm_reeval t

(* -- per-fault-class recovery ladders -------------------------------- *)

let backoff_delay cfg ~attempt =
  let rec pow acc n = if n <= 0 then acc else pow (acc * cfg.retry_backoff_mult) (n - 1) in
  min cfg.retry_backoff_cap (pow cfg.retry_backoff_base (attempt - 1))

let on_node_death t ~rank =
  if Recovery.node_death t.recovery ~rank then begin
    record t "node_death rank=%d" rank;
    note_pressure t;
    if t.config.spare_substitution then
      match Recovery.substitute t.recovery ~dead:rank with
      | Some spare ->
        record t "substitute dead=%d spare=%d" rank spare;
        (* fresh capacity: the killed job's requeue may fit right now *)
        Scheduler.kick (scheduler t)
      | None -> record t "spare_pool_empty rank=%d" rank
  end

let schedule_ciod_restart t ~io_node =
  if not (Hashtbl.mem t.pending_restart io_node) then begin
    Hashtbl.replace t.pending_restart io_node ();
    record t "ciod_restart_scheduled io=%d delay=%d" io_node
      t.config.ciod_restart_backoff;
    ignore
      (Sim.schedule_in t.sim t.config.ciod_restart_backoff (fun () ->
           if Hashtbl.mem t.pending_restart io_node then begin
             Hashtbl.remove t.pending_restart io_node;
             if Recovery.restart_ciod t.recovery ~io_node then begin
               t.ciod_restarts <- t.ciod_restarts + 1;
               Obs.incr (obs t) ~subsystem:"policy" ~name:"ciod_restarts" ();
               record t "ciod_restarted io=%d" io_node
             end
           end))
  end

let drain_and_rebuild t ~io_node =
  Hashtbl.remove t.pending_restart io_node;
  if Recovery.fatal_ciod t.recovery ~io_node then begin
    t.drains <- t.drains + 1;
    Obs.incr (obs t) ~subsystem:"policy" ~name:"psets_drained" ();
    record t "pset_drained io=%d" io_node;
    ignore
      (Sim.schedule_in t.sim t.config.pset_rebuild_after (fun () ->
           let revived = Recovery.rebuild_pset t.recovery ~io_node in
           t.rebuilds <- t.rebuilds + 1;
           Obs.incr (obs t) ~subsystem:"policy" ~name:"psets_rebuilt" ();
           Hashtbl.replace t.fatals io_node [];
           record t "pset_rebuilt io=%d revived=%d" io_node
             (List.length revived);
           Scheduler.kick (scheduler t)))
  end

let on_ciod_fatal t ~io_node =
  let now = Sim.now t.sim in
  let cutoff = now - t.config.ciod_crash_window in
  let recent =
    now
    :: List.filter
         (fun c -> c > cutoff)
         (try Hashtbl.find t.fatals io_node with Not_found -> [])
  in
  Hashtbl.replace t.fatals io_node recent;
  record t "ciod_fatal io=%d recent=%d" io_node (List.length recent);
  note_pressure t;
  if List.length recent <= t.config.ciod_restart_budget then
    (* within budget: bring the daemon back; the CNK retransmission
       layer re-drives whatever was in flight *)
    schedule_ciod_restart t ~io_node
  else
    (* budget blown: stop feeding restarts to a dying I/O node — retire
       the pset, reallocate its jobs elsewhere, rebuild later *)
    drain_and_rebuild t ~io_node

let on_alert t alert_rule =
  Recovery.note_alert t.recovery;
  record t "alert rule=%s" alert_rule;
  note_pressure t

(* -- wiring ----------------------------------------------------------- *)

let attach ?(config = default) sched =
  let recovery = Recovery.create sched in
  let sim = Cnk.Cluster.sim (Scheduler.cluster sched) in
  let t =
    {
      recovery;
      config;
      sim;
      state = Healthy;
      window = [];
      fatals = Hashtbl.create 8;
      pending_restart = Hashtbl.create 8;
      timeline_rev = [];
      tl_digest = Fnv.empty;
      reeval_armed = false;
      retries_delayed = 0;
      transitions = 0;
      ciod_restarts = 0;
      drains = 0;
      rebuilds = 0;
      jobs_shed = 0;
    }
  in
  Obs.set_gauge (obs t) ~subsystem:"policy" ~name:"health_state" 0;
  Scheduler.set_restart_policy sched
    (Some
       (fun ~jid ~attempt ->
         let d = backoff_delay config ~attempt in
         t.retries_delayed <- t.retries_delayed + 1;
         Obs.incr (obs t) ~subsystem:"policy" ~name:"retries_delayed" ();
         record t "backoff jid=%d attempt=%d delay=%d" jid attempt d;
         d));
  (* a daemon coming back by any path (our restart, injector
     auto-restart, a test calling Ciod.restart) cancels the pending
     escalation for that io node *)
  let cluster = Scheduler.cluster sched in
  for io_node = 0 to Cnk.Cluster.io_node_count cluster - 1 do
    Bg_cio.Ciod.on_restart (Cnk.Cluster.ciod cluster ~io_node) (fun () ->
        Hashtbl.remove t.pending_restart io_node)
  done;
  Machine.on_ras (machine t) (fun ~rank ~severity:_ ~message ->
      match Fault_event.of_message message with
      | Some (Fault_event.Node_death { rank }) -> on_node_death t ~rank
      | Some (Fault_event.L1_parity _) ->
        (* CNK recovers parity in place: no pressure, no action *)
        Recovery.note_parity t.recovery
      | Some (Fault_event.Link_failure _) ->
        (* the torus reroutes, but a severed link is machine pressure *)
        Recovery.note_link t.recovery;
        note_pressure t
      | Some (Fault_event.Link_repair _) -> Recovery.note_link t.recovery
      | Some (Fault_event.Ciod_crash { io_node; fatal }) ->
        Recovery.note_ciod t.recovery;
        if fatal then on_ciod_fatal t ~io_node
      | Some (Fault_event.Ciod_restart _) -> Recovery.note_ciod t.recovery
      | None -> (
        match Bg_obs.Health.Event.of_message message with
        | Some (Bg_obs.Health.Event.Alert { rule; _ }) -> on_alert t rule
        | None ->
          if Recovery.is_crash_message message then
            Recovery.crash_kill t.recovery ~rank));
  t

(* -- counters --------------------------------------------------------- *)

let retries_delayed t = t.retries_delayed
let transitions t = t.transitions
let ciod_restarts t = t.ciod_restarts
let psets_drained t = t.drains
let psets_rebuilt t = t.rebuilds
let jobs_shed t = t.jobs_shed
