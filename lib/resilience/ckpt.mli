(** Coordinated checkpoint/restart service (paper §V.B).

    Wraps a synthetic iterative application — [steps] compute steps of
    [step_cycles] each over [state_bytes] of heap — in the full recovery
    protocol:

    - every [ckpt_every] steps the job quiesces at a collective-network
      barrier (a tree allreduce over exactly the partition's ranks), then
      each rank writes its checkpoint through function-shipped I/O: a
      {!Bg_apps.Checkpoint} full image every [full_every]-th version, a
      dirty-page delta (via the kernel's [Query_dirty] syscall) otherwise;
    - a second barrier confirms every rank's write is durable before
      logical rank 0 writes the commit marker — a half-written version is
      never eligible for restore;
    - on (re)launch each rank restores the newest {e committed} version
      and resumes from the step it recorded.

    Checkpoint files are keyed by {e logical} rank (position in the
    partition's rank list), so a restart on a different partition — after
    the scheduler excluded a dead node — finds its state regardless of
    which physical nodes it lands on.

    The two recovery strategies reproduce the paper's cost asymmetry:
    [Parity_inplace] (CNK) installs a SIGBUS handler and simply redoes the
    interrupted step when an L1 parity error fires; [Rollback] (the
    full-weight-kernel stand-in) has no handler, so the same fault kills
    the job and costs a full restart + recompute from the last
    checkpoint. *)

type strategy = Parity_inplace | Rollback

type spec = {
  name : string;       (** job name; also keys the checkpoint files *)
  steps : int;
  step_cycles : int;
  state_bytes : int;   (** per-rank state; at least 128 *)
  ckpt_every : int;    (** steps between checkpoints; 0 = never checkpoint *)
  full_every : int;    (** every Nth version is full, the rest are deltas;
                           <= 1 = always full *)
  strategy : strategy;
}

type outcome = {
  rank_index : int;       (** logical rank (position in the partition) *)
  machine_rank : int;     (** physical rank of the final incarnation *)
  final_step : int;
  state_digest : Bg_engine.Fnv.t;
  parity_redos : int;     (** steps redone in place (CNK path) *)
  restored_step : int;    (** step recovered at launch; 0 = started fresh *)
}

val job_factory :
  fabric:Bg_msg.Dcmf.fabric ->
  spec ->
  (ranks:int list -> Job.t) * (unit -> outcome list)
(** A factory for {!Bg_control.Scheduler.submit_factory} plus a collector
    for the outcomes of ranks that ran to completion (sorted by logical
    rank; complete once the job's final incarnation finishes). *)

val expected_digest : spec -> rank_index:int -> Bg_engine.Fnv.t
(** Host-side mirror of the state a completed rank must end with —
    recovery is only correct if the digests match. *)
