type t =
  | L1_parity of { rank : int; core : int }
  | Node_death of { rank : int }
  | Link_failure of { rank : int; dir : int }
  | Link_repair of { rank : int; dir : int }
  | Ciod_crash of { io_node : int; fatal : bool }
  | Ciod_restart of { io_node : int }

let rank = function
  | L1_parity { rank; _ } | Node_death { rank } | Link_failure { rank; _ }
  | Link_repair { rank; _ } ->
    rank
  | Ciod_crash { io_node; _ } | Ciod_restart { io_node } -> io_node

let severity = function
  | L1_parity _ -> Machine.Ras_warn
  | Node_death _ -> Machine.Ras_error
  | Link_failure _ -> Machine.Ras_error
  | Link_repair _ -> Machine.Ras_info
  | Ciod_crash _ -> Machine.Ras_error
  | Ciod_restart _ -> Machine.Ras_info

let to_message = function
  | L1_parity { rank; core } -> Printf.sprintf "FAULT parity rank=%d core=%d" rank core
  | Node_death { rank } -> Printf.sprintf "FAULT node_death rank=%d" rank
  | Link_failure { rank; dir } -> Printf.sprintf "FAULT link rank=%d dir=%d" rank dir
  | Link_repair { rank; dir } -> Printf.sprintf "FAULT link_up rank=%d dir=%d" rank dir
  | Ciod_crash { io_node; fatal } ->
    Printf.sprintf "FAULT ciod_crash io=%d fatal=%d" io_node (if fatal then 1 else 0)
  | Ciod_restart { io_node } -> Printf.sprintf "FAULT ciod_up io=%d" io_node

let of_message msg =
  let scan fmt k = try Some (Scanf.sscanf msg fmt k) with _ -> None in
  if String.length msg < 6 || String.sub msg 0 6 <> "FAULT " then None
  else
    match scan "FAULT parity rank=%d core=%d" (fun rank core -> L1_parity { rank; core }) with
    | Some _ as e -> e
    | None -> (
      match scan "FAULT node_death rank=%d" (fun rank -> Node_death { rank }) with
      | Some _ as e -> e
      | None -> (
        match scan "FAULT link rank=%d dir=%d" (fun rank dir -> Link_failure { rank; dir }) with
        | Some _ as e -> e
        | None -> (
          match
            scan "FAULT link_up rank=%d dir=%d" (fun rank dir -> Link_repair { rank; dir })
          with
          | Some _ as e -> e
          | None -> (
            match
              scan "FAULT ciod_crash io=%d fatal=%d" (fun io_node f ->
                  Ciod_crash { io_node; fatal = f <> 0 })
            with
            | Some _ as e -> e
            | None -> scan "FAULT ciod_up io=%d" (fun io_node -> Ciod_restart { io_node })))))

let pp ppf e = Format.pp_print_string ppf (to_message e)
