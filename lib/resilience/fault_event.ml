type t =
  | L1_parity of { rank : int; core : int }
  | Node_death of { rank : int }
  | Link_failure of { rank : int; dir : int }
  | Link_repair of { rank : int; dir : int }

let rank = function
  | L1_parity { rank; _ } | Node_death { rank } | Link_failure { rank; _ }
  | Link_repair { rank; _ } ->
    rank

let severity = function
  | L1_parity _ -> Machine.Ras_warn
  | Node_death _ -> Machine.Ras_error
  | Link_failure _ -> Machine.Ras_error
  | Link_repair _ -> Machine.Ras_info

let to_message = function
  | L1_parity { rank; core } -> Printf.sprintf "FAULT parity rank=%d core=%d" rank core
  | Node_death { rank } -> Printf.sprintf "FAULT node_death rank=%d" rank
  | Link_failure { rank; dir } -> Printf.sprintf "FAULT link rank=%d dir=%d" rank dir
  | Link_repair { rank; dir } -> Printf.sprintf "FAULT link_up rank=%d dir=%d" rank dir

let of_message msg =
  let scan fmt k = try Some (Scanf.sscanf msg fmt k) with _ -> None in
  if String.length msg < 6 || String.sub msg 0 6 <> "FAULT " then None
  else
    match scan "FAULT parity rank=%d core=%d" (fun rank core -> L1_parity { rank; core }) with
    | Some _ as e -> e
    | None -> (
      match scan "FAULT node_death rank=%d" (fun rank -> Node_death { rank }) with
      | Some _ as e -> e
      | None -> (
        match scan "FAULT link rank=%d dir=%d" (fun rank dir -> Link_failure { rank; dir }) with
        | Some _ as e -> e
        | None ->
          scan "FAULT link_up rank=%d dir=%d" (fun rank dir -> Link_repair { rank; dir })))

let pp ppf e = Format.pp_print_string ppf (to_message e)
