module Obs = Bg_obs.Obs

(* The actuator of the self-healing control plane: every state-changing
   action the control system can take against a fault lives here, as an
   idempotent function with its own counter. [attach] wires the classic
   immediate policy (act the moment the event arrives); {!Policy} makes
   the same moves through budgets, backoff and escalation ladders. *)

type t = {
  scheduler : Bg_control.Scheduler.t;
  mutable deaths : int;
  mutable parity : int;
  mutable links : int;
  mutable ciod_events : int;
  mutable psets_lost : int;
  mutable alerts : int;
  mutable substitutions : int;
  (* RAS streams replay and duplicate: acting twice on the same fault
     would kill a job since reallocated onto healthy hardware. *)
  dead_seen : (int, unit) Hashtbl.t;
  psets_seen : (int, unit) Hashtbl.t;
}

let create scheduler =
  {
    scheduler;
    deaths = 0;
    parity = 0;
    links = 0;
    ciod_events = 0;
    psets_lost = 0;
    alerts = 0;
    substitutions = 0;
    dead_seen = Hashtbl.create 16;
    psets_seen = Hashtbl.create 16;
  }

let machine t = Cnk.Cluster.machine (Bg_control.Scheduler.cluster t.scheduler)
let obs t = (machine t).Machine.obs
let scheduler t = t.scheduler

let is_crash_message message =
  (* the kernel's own RAS wording for a dying thread — gang-kill the job
     so no surviving rank blocks on a dead peer *)
  let has sub =
    let n = String.length sub and m = String.length message in
    let rec at i = i + n <= m && (String.sub message i n = sub || at (i + 1)) in
    at 0
  in
  has "killed by unhandled signal" || has "crashed:"

(* -- actuator actions ------------------------------------------------ *)

let node_death t ~rank =
  if Hashtbl.mem t.dead_seen rank then false
  else begin
    Hashtbl.replace t.dead_seen rank ();
    t.deaths <- t.deaths + 1;
    Obs.incr (obs t) ~subsystem:"resilience" ~name:"deaths_handled" ();
    Bg_control.Scheduler.node_failed t.scheduler ~rank;
    true
  end

let substitute t ~dead =
  match
    Bg_control.Partition.substitute (Bg_control.Scheduler.partition t.scheduler) ~dead
  with
  | None -> None
  | Some spare ->
    t.substitutions <- t.substitutions + 1;
    Obs.incr (obs t) ~subsystem:"resilience" ~name:"substitutions" ();
    Machine.ras_emit (machine t) ~rank:spare ~severity:Machine.Ras_info
      ~message:(Printf.sprintf "HEAL substitute dead=%d spare=%d" dead spare);
    Some spare

let crash_kill t ~rank = Bg_control.Scheduler.job_crashed t.scheduler ~rank

let fatal_ciod t ~io_node =
  if Hashtbl.mem t.psets_seen io_node then false
  else begin
    Hashtbl.replace t.psets_seen io_node ();
    t.psets_lost <- t.psets_lost + 1;
    Obs.incr (obs t) ~subsystem:"resilience" ~name:"psets_lost" ();
    let cluster = Bg_control.Scheduler.cluster t.scheduler in
    Bg_control.Scheduler.pset_failed t.scheduler
      ~ranks:(Cnk.Cluster.pset_ranks cluster ~io_node);
    true
  end

let restart_ciod t ~io_node =
  let cluster = Bg_control.Scheduler.cluster t.scheduler in
  let ciod = Cnk.Cluster.ciod cluster ~io_node in
  if Bg_cio.Ciod.alive ciod then false
  else begin
    Bg_cio.Ciod.restart ciod;
    (* mirror the injector's wording so rasdb and Recovery consumers see
       one typed event regardless of who brought the daemon back *)
    Machine.ras_emit (machine t) ~rank:io_node ~severity:Machine.Ras_info
      ~message:(Fault_event.to_message (Fault_event.Ciod_restart { io_node }));
    true
  end

let rebuild_pset t ~io_node =
  let cluster = Bg_control.Scheduler.cluster t.scheduler in
  let revived =
    List.filter
      (fun rank ->
        (* only ranks the drain took down come back: a rank that died on
           its own stays dead through the rebuild *)
        (not (Hashtbl.mem t.dead_seen rank))
        && Bg_control.Partition.is_down
             (Bg_control.Scheduler.partition t.scheduler)
             ~rank)
      (Cnk.Cluster.pset_ranks cluster ~io_node)
  in
  List.iter (fun rank -> Bg_control.Scheduler.mark_up t.scheduler ~rank) revived;
  ignore (restart_ciod t ~io_node);
  Hashtbl.remove t.psets_seen io_node;
  if revived <> [] then begin
    Obs.incr (obs t) ~subsystem:"resilience" ~name:"psets_rebuilt" ();
    Machine.ras_emit (machine t)
      ~rank:(List.hd revived)
      ~severity:Machine.Ras_info
      ~message:
        (Printf.sprintf "HEAL pset_rebuilt io=%d ranks=%s" io_node
           (String.concat "," (List.map string_of_int revived)))
  end;
  revived

(* -- bookkeeping for the fault classes that need no action ----------- *)

let note_parity t = t.parity <- t.parity + 1
let note_link t = t.links <- t.links + 1
let note_ciod t = t.ciod_events <- t.ciod_events + 1

let note_alert t =
  t.alerts <- t.alerts + 1;
  Obs.incr (obs t) ~subsystem:"resilience" ~name:"alerts_seen" ()

(* -- the classic immediate policy ------------------------------------ *)

let subscribe t =
  Machine.on_ras (machine t) (fun ~rank ~severity:_ ~message ->
      match Fault_event.of_message message with
      | None -> (
          (* Not a typed fault: a health-service alert (typed HEALTH
             event) is advisory — count it so operators and tests can
             see the control system received it; the kernel's own
             crash wording still gang-kills the job. *)
          match Bg_obs.Health.Event.of_message message with
          | Some (Bg_obs.Health.Event.Alert _) -> note_alert t
          | None -> if is_crash_message message then crash_kill t ~rank)
      | Some (Fault_event.Node_death { rank }) -> ignore (node_death t ~rank)
      | Some (Fault_event.L1_parity _) ->
        (* CNK's in-place recovery: nothing for the control system to do *)
        note_parity t
      | Some (Fault_event.Link_failure _) | Some (Fault_event.Link_repair _) ->
        (* the torus reroutes; note it and move on *)
        note_link t
      | Some (Fault_event.Ciod_crash { io_node; fatal }) ->
        note_ciod t;
        (* No restart is coming: the pset's compute nodes have lost
           their only path to the filesystem, so the control system
           retires the whole pset and reallocates its jobs elsewhere.
           Transient crash: the injector restarts the daemon and the CNK
           retransmission layer re-drives in-flight requests — no
           control-system action needed. *)
        if fatal then ignore (fatal_ciod t ~io_node)
      | Some (Fault_event.Ciod_restart _) -> note_ciod t)

let attach scheduler =
  let t = create scheduler in
  subscribe t;
  t

let deaths_handled t = t.deaths
let parity_seen t = t.parity
let link_events_seen t = t.links
let ciod_events_seen t = t.ciod_events
let psets_lost t = t.psets_lost
let alerts_seen t = t.alerts
let substitutions t = t.substitutions
let events_seen t = t.deaths + t.parity + t.links + t.ciod_events
