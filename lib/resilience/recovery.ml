module Obs = Bg_obs.Obs

type t = {
  scheduler : Bg_control.Scheduler.t;
  mutable deaths : int;
  mutable parity : int;
  mutable links : int;
  mutable ciod_events : int;
  mutable psets_lost : int;
  mutable alerts : int;
}

let attach scheduler =
  let t =
    { scheduler; deaths = 0; parity = 0; links = 0; ciod_events = 0;
      psets_lost = 0; alerts = 0 }
  in
  let machine = Cnk.Cluster.machine (Bg_control.Scheduler.cluster scheduler) in
  let obs = machine.Machine.obs in
  let is_crash message =
    (* the kernel's own RAS wording for a dying thread — gang-kill the job
       so no surviving rank blocks on a dead peer *)
    let has sub =
      let n = String.length sub and m = String.length message in
      let rec at i = i + n <= m && (String.sub message i n = sub || at (i + 1)) in
      at 0
    in
    has "killed by unhandled signal" || has "crashed:"
  in
  Machine.on_ras machine (fun ~rank ~severity:_ ~message ->
      match Fault_event.of_message message with
      | None -> (
          (* Not a typed fault: a health-service alert (typed HEALTH
             event) is advisory — count it so operators and tests can
             see the control system received it; the kernel's own
             crash wording still gang-kills the job. *)
          match Bg_obs.Health.Event.of_message message with
          | Some (Bg_obs.Health.Event.Alert _) ->
            t.alerts <- t.alerts + 1;
            Obs.incr obs ~subsystem:"resilience" ~name:"alerts_seen" ()
          | None ->
            if is_crash message then
              Bg_control.Scheduler.job_crashed t.scheduler ~rank)
      | Some (Fault_event.Node_death { rank }) ->
        t.deaths <- t.deaths + 1;
        Obs.incr obs ~subsystem:"resilience" ~name:"deaths_handled" ();
        Bg_control.Scheduler.node_failed t.scheduler ~rank
      | Some (Fault_event.L1_parity _) ->
        (* CNK's in-place recovery: nothing for the control system to do *)
        t.parity <- t.parity + 1
      | Some (Fault_event.Link_failure _) | Some (Fault_event.Link_repair _) ->
        (* the torus reroutes; note it and move on *)
        t.links <- t.links + 1
      | Some (Fault_event.Ciod_crash { io_node; fatal }) ->
        t.ciod_events <- t.ciod_events + 1;
        if fatal then begin
          (* No restart is coming: the pset's compute nodes have lost
             their only path to the filesystem, so the control system
             retires the whole pset and reallocates its jobs elsewhere. *)
          t.psets_lost <- t.psets_lost + 1;
          Obs.incr obs ~subsystem:"resilience" ~name:"psets_lost" ();
          let cluster = Bg_control.Scheduler.cluster t.scheduler in
          Bg_control.Scheduler.pset_failed t.scheduler
            ~ranks:(Cnk.Cluster.pset_ranks cluster ~io_node)
        end
        (* Transient crash: the injector restarts the daemon and the CNK
           retransmission layer re-drives in-flight requests — no
           control-system action needed. *)
      | Some (Fault_event.Ciod_restart _) -> t.ciod_events <- t.ciod_events + 1);
  t

let deaths_handled t = t.deaths
let parity_seen t = t.parity
let link_events_seen t = t.links
let ciod_events_seen t = t.ciod_events
let psets_lost t = t.psets_lost
let alerts_seen t = t.alerts
let events_seen t = t.deaths + t.parity + t.links + t.ciod_events
