open Bg_engine
module Obs = Bg_obs.Obs

type config = {
  parity_mean : float;
  death_mean : float;
  link_mean : float;
  link_repair_after : int;
  ciod_crash_mean : float;
  ciod_restart_after : int;
  horizon : int;
}

let default =
  {
    parity_mean = 0.;
    death_mean = 0.;
    link_mean = 0.;
    link_repair_after = 200_000;
    ciod_crash_mean = 0.;
    ciod_restart_after = 150_000;
    horizon = max_int;
  }

type t = {
  cluster : Cnk.Cluster.t;
  config : config;
  mutable log : (Cycles.t * Fault_event.t) list;  (* newest first *)
  mutable dead : int list;
  mutable parity : int;
  mutable deaths : int;
  mutable links : int;
  mutable ciod_crashes : int;
}

let machine t = Cnk.Cluster.machine t.cluster
let sim t = Cnk.Cluster.sim t.cluster
let obs t = (machine t).Machine.obs

let alive t =
  List.filter
    (fun r -> not (List.mem r t.dead))
    (List.init (Machine.nodes (machine t)) Fun.id)

let publish t ev =
  t.log <- (Sim.now (sim t), ev) :: t.log;
  Machine.ras_emit (machine t) ~rank:(Fault_event.rank ev)
    ~severity:(Fault_event.severity ev)
    ~message:(Fault_event.to_message ev);
  let total = t.parity + t.deaths + t.links + t.ciod_crashes in
  if total > 0 then
    Obs.set_gauge (obs t) ~subsystem:"resilience" ~name:"mtbf_cycles"
      (Sim.now (sim t) / total)

let rec apply t ev =
  match ev with
  | Fault_event.L1_parity { rank; core } ->
    t.parity <- t.parity + 1;
    Obs.incr (obs t) ~subsystem:"resilience" ~name:"parity_injected" ();
    publish t ev;
    (* the error only bites a core that is actually running user code *)
    if Cnk.Node.inject_l1_parity_error (Cnk.Cluster.node t.cluster rank) ~core then
      Obs.incr (obs t) ~subsystem:"resilience" ~name:"parity_delivered" ()
  | Fault_event.Node_death { rank } ->
    if not (List.mem rank t.dead) then begin
      t.deaths <- t.deaths + 1;
      t.dead <- rank :: t.dead;
      Obs.incr (obs t) ~subsystem:"resilience" ~name:"deaths_injected" ();
      (* publish first: an attached Recovery kills the spanning job on every
         member node inside this very cycle, so survivors never spin on a
         dead peer *)
      publish t ev;
      let node = Cnk.Cluster.node t.cluster rank in
      if Cnk.Node.job_active node then Cnk.Node.kill_job node
    end
  | Fault_event.Link_failure { rank; dir } ->
    let torus = (machine t).Machine.torus in
    if not (Bg_hw.Torus.link_broken torus ~rank ~dir) then begin
      t.links <- t.links + 1;
      Obs.incr (obs t) ~subsystem:"resilience" ~name:"links_broken" ();
      publish t ev;
      Bg_hw.Torus.set_link_broken torus ~rank ~dir true;
      if t.config.link_repair_after > 0 then
        ignore
          (Sim.schedule_in (sim t) t.config.link_repair_after (fun () ->
               apply t (Fault_event.Link_repair { rank; dir })))
    end
  | Fault_event.Link_repair { rank; dir } ->
    let torus = (machine t).Machine.torus in
    if Bg_hw.Torus.link_broken torus ~rank ~dir then begin
      Bg_hw.Torus.set_link_broken torus ~rank ~dir false;
      publish t ev
    end
  | Fault_event.Ciod_crash { io_node; fatal } ->
    let ciod = Cnk.Cluster.ciod t.cluster ~io_node in
    if Bg_cio.Ciod.alive ciod then begin
      t.ciod_crashes <- t.ciod_crashes + 1;
      Obs.incr (obs t) ~subsystem:"resilience" ~name:"ciod_crashes_injected" ();
      (* publish first, so a fatal crash gang-kills the pset before any
         retransmission timer wastes cycles re-driving a dead daemon *)
      publish t ev;
      Bg_cio.Ciod.crash ciod;
      if not fatal && t.config.ciod_restart_after > 0 then
        ignore
          (Sim.schedule_in (sim t) t.config.ciod_restart_after (fun () ->
               apply t (Fault_event.Ciod_restart { io_node })))
    end
  | Fault_event.Ciod_restart { io_node } ->
    let ciod = Cnk.Cluster.ciod t.cluster ~io_node in
    if not (Bg_cio.Ciod.alive ciod) then begin
      Bg_cio.Ciod.restart ciod;
      publish t ev
    end

let inject_now = apply

(* One self-rescheduling Poisson stream per fault class, each on its own
   named RNG stream so enabling one class never perturbs another. *)
let stream t name mean pick =
  if mean > 0. then begin
    let sim = sim t in
    let rng = Sim.rng sim ("resilience." ^ name) in
    let rec next () =
      let dt = max 1 (int_of_float (Rng.exponential rng ~mean)) in
      let at = Sim.now sim + dt in
      if at <= t.config.horizon then
        ignore
          (Sim.schedule_at sim at (fun () ->
               (match pick rng with Some ev -> apply t ev | None -> ());
               next ()))
    in
    next ()
  end

let choose rng = function
  | [] -> None
  | ranks -> Some (List.nth ranks (Rng.int rng (List.length ranks)))

let attach ?(config = default) cluster =
  let t =
    {
      cluster;
      config;
      log = [];
      dead = [];
      parity = 0;
      deaths = 0;
      links = 0;
      ciod_crashes = 0;
    }
  in
  let cores = (machine t).Machine.params.Bg_hw.Params.cores_per_node in
  let n = Machine.nodes (machine t) in
  stream t "parity" config.parity_mean (fun rng ->
      match choose rng (alive t) with
      | None -> None
      | Some rank -> Some (Fault_event.L1_parity { rank; core = Rng.int rng cores }));
  stream t "death" config.death_mean (fun rng ->
      (* never kill the last node: a machine with zero survivors has
         nothing left to reallocate onto *)
      match alive t with
      | [] | [ _ ] -> None
      | ranks -> (
        match choose rng ranks with
        | None -> None
        | Some rank -> Some (Fault_event.Node_death { rank })));
  stream t "link" config.link_mean (fun rng ->
      Some (Fault_event.Link_failure { rank = Rng.int rng n; dir = Rng.int rng 6 }));
  stream t "ciod" config.ciod_crash_mean (fun rng ->
      let io_node = Rng.int rng (Cnk.Cluster.io_node_count t.cluster) in
      Some
        (Fault_event.Ciod_crash { io_node; fatal = config.ciod_restart_after <= 0 }));
  t

let injected t = List.rev t.log
let dead_ranks t = List.sort compare t.dead
let parity_count t = t.parity
let death_count t = t.deaths
let link_count t = t.links
let ciod_crash_count t = t.ciod_crashes
