(** The self-healing control plane's decision layer.

    {!Recovery} is the actuator — idempotent actions against faults; this
    engine decides {e when} each action fires, closing the loop from the
    RAS/HEALTH event stream back to the scheduler:

    - {b Retry with backoff}: failed job incarnations are requeued after a
      deterministic exponential delay ([base * mult^(attempt-1)], capped)
      instead of immediately, so a flapping node cannot thrash the queue.
    - {b Spare-node substitution}: a node death pulls a spare from the
      partition pool ({!Bg_control.Partition.set_spare}) so capacity — and
      the dead job's requeue — recovers in the same window.
    - {b CIOD escalation ladder}: each fatal daemon crash within a sliding
      window spends restart budget; within budget the daemon is restarted
      after a backoff (CNK retransmission re-drives in-flight I/O), beyond
      it the pset is drained ({!Recovery.fatal_ciod}) and rebuilt after a
      quarantine ({!Recovery.rebuild_pset}).
    - {b Graceful degradation}: pressure-bearing faults (node deaths, link
      severs, CIOD fatals, HEALTH alerts) inside a sliding cooldown window
      walk the machine Healthy -> Degraded (shed backfill, cap allocatable
      shapes) -> Critical (close admission); each quiet window steps one
      tier back up. The tier is exported as the [policy.health_state]
      gauge (0/1/2).

    Every decision is a pure function of the fault stream and simulated
    clock: same-seed runs replay a byte-identical {!timeline}. *)

type health_state = Healthy | Degraded | Critical

val health_to_string : health_state -> string

type config = {
  retry_backoff_base : int;  (** first-retry delay, cycles *)
  retry_backoff_mult : int;  (** per-attempt multiplier *)
  retry_backoff_cap : int;  (** delay ceiling, cycles *)
  spare_substitution : bool;  (** spend spares on node death *)
  ciod_restart_budget : int;
      (** fatal crashes per window a daemon may spend on restarts before
          the pset is drained *)
  ciod_restart_backoff : int;  (** crash-to-restart delay, cycles *)
  ciod_crash_window : int;  (** sliding window for the budget, cycles *)
  pset_rebuild_after : int;  (** drain-to-rebuild quarantine, cycles *)
  degraded_after : int;  (** window pressure entering Degraded *)
  critical_after : int;  (** window pressure entering Critical *)
  recovery_cooldown : int;
      (** pressure window length; also the quiet period required per
          de-escalation step *)
  shape_cap_degraded : (int * int * int) option;
      (** allocatable-shape cap imposed while Degraded *)
}

val default : config

type t

val attach : ?config:config -> Bg_control.Scheduler.t -> t
(** Subscribe the engine to the scheduler's cluster RAS stream and
    install its restart-backoff policy. At most one policy engine (or
    classic {!Recovery.attach}) should drive a given scheduler. *)

val scheduler : t -> Bg_control.Scheduler.t
val recovery : t -> Recovery.t
(** The actuator underneath — its counters cover actions taken. *)

val config : t -> config
val health : t -> health_state
val pressure : t -> int
(** Pressure-bearing faults inside the current cooldown window. *)

(** {1 Decision timeline}

    Every decision the engine takes, as [(cycle, line)] in decision
    order — the auditable record a chaos run digests to prove same-seed
    determinism. *)

val timeline : t -> (int * string) list
val timeline_digest : t -> Bg_engine.Fnv.t

(** {1 Counters} *)

val retries_delayed : t -> int
(** Job requeues routed through the backoff schedule. *)

val transitions : t -> int
(** Health-state changes (both directions). *)

val ciod_restarts : t -> int
(** Daemon restarts this engine initiated (within budget). *)

val psets_drained : t -> int
(** Escalations past the restart budget. *)

val psets_rebuilt : t -> int
val jobs_shed : t -> int
(** Backfill jobs shed entering Degraded. *)
