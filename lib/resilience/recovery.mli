(** RAS-driven failure detection and recovery.

    Subscribes to the machine's RAS stream, decodes {!Fault_event}s, and
    drives the control system: a node death marks the node down in the
    scheduler's allocator and kills the spanning job — synchronously, in
    the same cycle the event is published, so no survivor ever blocks on a
    dead peer. A job submitted with a restart budget is then reallocated
    (excluding down nodes) and relaunched; checkpointed applications
    resume from their last committed state.

    L1 parity and link events are counted but need no control-system
    action: CNK recovers parity in place (§V.B) and the torus reroutes
    around a broken link on its own. *)

type t

val attach : Bg_control.Scheduler.t -> t
(** Start consuming RAS events for this scheduler's cluster. *)

val deaths_handled : t -> int
val parity_seen : t -> int
val link_events_seen : t -> int

val ciod_events_seen : t -> int
(** CIOD crash and restart events decoded (fatal or not). *)

val psets_lost : t -> int
(** Fatal CIOD crashes escalated to {!Bg_control.Scheduler.pset_failed}. *)

val events_seen : t -> int
(** Typed fault events decoded so far (all classes). *)

val alerts_seen : t -> int
(** Typed [HEALTH] alert events received from the machine health
    service ({!Bg_obs.Health.Event}); advisory — counted and mirrored
    into the [resilience.alerts_seen] metric, no scheduling action. *)
