(** RAS-driven failure detection and recovery — the control plane's
    {e actuator}.

    Every state-changing action the control system can take against a
    fault lives here as an idempotent, counted function: mark a dead node
    down and gang-kill its job, spend a spare, retire or rebuild a pset,
    restart an I/O daemon. {!attach} wires the classic immediate policy
    (act the moment the RAS event arrives — the pre-policy behavior,
    preserved bit-for-bit); {!Policy} drives the same actuator through
    retry budgets, deterministic backoff and escalation ladders.

    Idempotency: a duplicated or replayed RAS stream must not act twice —
    a second death notice for an already-handled rank, or a second fatal
    CIOD event for an already-retired pset, is counted as seen but takes
    no action (and bumps no action counter).

    L1 parity and link events are counted but need no control-system
    action: CNK recovers parity in place (§V.B) and the torus reroutes
    around a broken link on its own. *)

type t

val attach : Bg_control.Scheduler.t -> t
(** [create] + subscribe the classic immediate policy to this scheduler's
    cluster RAS stream. *)

val create : Bg_control.Scheduler.t -> t
(** The bare actuator: counters and actions only, no RAS subscription —
    for a {!Policy} engine that makes its own decisions. *)

val scheduler : t -> Bg_control.Scheduler.t

(** {1 Actions} *)

val node_death : t -> rank:int -> bool
(** Handle a node death: mark down, gang-kill the spanning job. [false]
    (and no action) when this rank's death was already handled. *)

val substitute : t -> dead:int -> int option
(** Spend a spare from the partition pool to cover [dead]; announces the
    substitution on the RAS channel ([HEAL substitute ...]). [None] when
    the pool is empty. *)

val crash_kill : t -> rank:int -> unit
(** Gang-kill the job spanning [rank] after an application crash; the
    node stays in the pool. *)

val fatal_ciod : t -> io_node:int -> bool
(** Retire the pset served by [io_node]: every member marked down, any
    spanning job gang-killed. [false] when already retired. *)

val restart_ciod : t -> io_node:int -> bool
(** Control-system restart of a crashed I/O daemon (emits the same typed
    [FAULT ciod_up] RAS event as an injector auto-restart). [false] when
    the daemon is already alive. *)

val rebuild_pset : t -> io_node:int -> int list
(** Undo a {!fatal_ciod} drain: restart the daemon if needed, return
    every rank the drain took down to the allocation pool (ranks that
    died on their own stay dead), clear the retired flag so a later
    fatal can retire the pset again. Returns the revived ranks and
    announces them ([HEAL pset_rebuilt ...]). *)

(** {1 Bookkeeping for classes that need no action} *)

val note_parity : t -> unit
val note_link : t -> unit
val note_ciod : t -> unit
val note_alert : t -> unit
val is_crash_message : string -> bool

(** {1 Counters} *)

val deaths_handled : t -> int
val parity_seen : t -> int
val link_events_seen : t -> int

val ciod_events_seen : t -> int
(** CIOD crash and restart events decoded (fatal or not). *)

val psets_lost : t -> int
(** Fatal CIOD crashes escalated to {!Bg_control.Scheduler.pset_failed}. *)

val substitutions : t -> int
(** Spares activated to cover dead nodes. *)

val events_seen : t -> int
(** Typed fault events decoded so far (all classes). *)

val alerts_seen : t -> int
(** Typed [HEALTH] alert events received from the machine health
    service ({!Bg_obs.Health.Event}); advisory — counted and mirrored
    into the [resilience.alerts_seen] metric, no scheduling action. *)
