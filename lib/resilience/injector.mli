(** Deterministic fault injection.

    Schedules transient L1 parity errors, node deaths, and torus link
    failures as ordinary simulation events, with inter-arrival times drawn
    from named {!Bg_engine.Rng} streams of the machine's seeded RNG — so a
    fault campaign is a pure function of (seed, config) and the whole
    run (faults, detection, recovery schedule) replays bit-identically.

    Each injected fault is published as a typed RAS event
    ({!Fault_event.to_message}); detection/recovery is someone else's job
    (see {!Recovery}). A node death additionally kills whatever the victim
    node was running, so an unattended machine still observes the hang the
    paper's §VI complains about — attaching {!Recovery} is what turns the
    event into a clean kill + reallocation. *)

type config = {
  parity_mean : float;  (** mean cycles between L1 parity errors; 0 = off *)
  death_mean : float;   (** mean cycles between node deaths; 0 = off *)
  link_mean : float;    (** mean cycles between torus link failures; 0 = off *)
  link_repair_after : int;  (** cycles until a broken link is repaired; 0 = never *)
  ciod_crash_mean : float;  (** mean cycles between CIOD crashes; 0 = off *)
  ciod_restart_after : int;
      (** cycles until a crashed CIOD restarts; [<= 0] makes every crash
          fatal (the daemon never returns and the pset is lost) *)
  horizon : int;  (** absolute cycle after which nothing more is injected *)
}

val default : config
(** Everything off; fill in the rates you want. *)

type t

val attach : ?config:config -> Cnk.Cluster.t -> t
(** Start the configured fault streams against a booted cluster. *)

val inject_now : t -> Fault_event.t -> unit
(** Scripted injection (tests, demos): apply one fault immediately —
    same effect and RAS publication as a scheduled one. *)

val injected : t -> (Bg_engine.Cycles.t * Fault_event.t) list
(** Everything injected so far, in injection order. *)

val dead_ranks : t -> int list
val parity_count : t -> int
val death_count : t -> int
val link_count : t -> int
val ciod_crash_count : t -> int
