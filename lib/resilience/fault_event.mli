(** Typed fault events riding the RAS channel.

    RAS messages are strings (paper §VI: the control system's event
    database); the resilience layer needs structure. Injector and kernel
    publish events through {!to_message}; consumers recover them with
    {!of_message}. Any RAS message that does not parse is simply not a
    fault event — the channel stays shared with free-form kernel logs. *)

type t =
  | L1_parity of { rank : int; core : int }
      (** transient L1 data-cache parity error — CNK recovers in place *)
  | Node_death of { rank : int }  (** the node is gone for good *)
  | Link_failure of { rank : int; dir : int }  (** torus link [dir] (0-5) *)
  | Link_repair of { rank : int; dir : int }
  | Ciod_crash of { io_node : int; fatal : bool }
      (** the I/O node's daemon died mid-flight; [fatal] means no restart
          is coming and the whole pset is lost *)
  | Ciod_restart of { io_node : int }  (** the daemon came back *)

val rank : t -> int
(** For CIOD events this is the I/O-node index, not a compute rank. *)


val severity : t -> Machine.ras_severity
val to_message : t -> string
val of_message : string -> t option
(** Inverse of {!to_message}; [None] for anything else. *)

val pp : Format.formatter -> t -> unit
