(** Versioned, self-describing whole-machine snapshot format.

    A snapshot file is [magic | format version | CRC-32 of the body |
    body], where the body records the run identity (scenario id, knobs,
    seed), the event cursor (events fired, sim clock) and a list of
    named per-layer regions, each with its own codec version. Region
    payloads come from the per-layer [capture] functions threaded
    through the tree; this module owns only the container and the
    shared sparse-range codec.

    Decoding never raises: truncation, bit flips, bad magic and unknown
    versions all map to a typed {!decode_error}. *)

val crc32 : bytes -> off:int -> len:int -> int32
(** IEEE CRC-32 (reflected, poly 0xEDB88320) of [len] bytes at [off]. *)

(** Little-endian writer/reader used by every per-layer codec. The
    writer is a plain [Buffer.t], so layers below this library can
    produce compatible payloads with stdlib calls alone. *)
module Buf : sig
  type writer = Buffer.t

  val writer : unit -> writer
  val u8 : writer -> int -> unit
  val u32 : writer -> int -> unit
  val i64 : writer -> int64 -> unit
  val int : writer -> int -> unit
  val str : writer -> string -> unit
  val raw : writer -> bytes -> unit
  val bool : writer -> bool -> unit
  val contents : writer -> bytes

  type reader

  val reader : ?pos:int -> bytes -> reader
  val remaining : reader -> int

  exception Short
  (** Raised by the [r_*] reads on underrun. {!decode} catches it; code
      using the reader directly must do the same. *)

  val r_u8 : reader -> int
  val r_u32 : reader -> int
  val r_i64 : reader -> int64
  val r_int : reader -> int
  val r_str : reader -> string
  val r_raw : reader -> bytes
  val r_bool : reader -> bool
end

type region = { layer : string; layer_version : int; payload : bytes }

type file = {
  format_version : int;
  scenario : string;
  knobs : (string * string) list;
  seed : int64;
  events : int;  (** cursor: events fired when the capture was taken *)
  clock : int;   (** sim clock at the cursor *)
  regions : region list;
}

type decode_error =
  | Truncated
  | Bad_magic
  | Unsupported_version of int
  | Bad_crc of { expected : int32; got : int32 }
  | Bad_region of string

val decode_error_to_string : decode_error -> string

val format_version : int

val encode : file -> bytes
val decode : bytes -> (file, decode_error) result

val find_region : file -> string -> region option

type mismatch = { m_layer : string; m_offset : int }

val diff : file -> file -> mismatch option
(** First differing region between two snapshots (first differing byte
    offset within it), or [None] when every region matches. *)

val equal : file -> file -> bool

val write_path : path:string -> file -> unit
val read_path : string -> (file, decode_error) result

(** The dirty-page delta format shared with [Resilience.Ckpt]:
    [count:u64le], per range [addr:u64le][len:u64le], then the raw range
    data concatenated in order. Kept bit-for-bit with the pre-existing
    checkpoint wire format. *)
module Sparse : sig
  val encode_header : (int * int) list -> bytes
  (** Header bytes for [(addr, len)] ranges, without the data. *)

  val encode : ranges:(int * int) list -> read:(addr:int -> len:int -> bytes) -> bytes

  val decode_header : bytes -> ((int * int) list * int, decode_error) result
  (** Ranges plus the offset where their data starts. Data shorter than
      the declared ranges is [Error Truncated], never a raise. *)

  val decode : bytes -> ((int * bytes) list, decode_error) result
end
