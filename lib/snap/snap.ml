(* Versioned, self-describing whole-machine snapshot format.

   A snapshot is a flat byte file: a fixed header (magic, format version,
   CRC-32 of the body), the run identity (scenario id, knob set, seed),
   the event cursor (events fired, sim clock), and a list of named
   per-layer regions, each carrying its own codec version. Region
   payloads are produced by the per-layer [capture] functions spread
   through the tree (engine, hw, kernels, cio, control, obs); this
   module only owns the container.

   Decoding never raises: every malformed input maps to a typed
   [decode_error], including any truncation point and any flipped bit
   (the CRC covers the whole body). *)

(* --- CRC-32 (IEEE, reflected, poly 0xEDB88320) ------------------------ *)

module Crc32 = struct
  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref (Int32.of_int n) in
           for _ = 0 to 7 do
             c :=
               if Int32.logand !c 1l <> 0l then
                 Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
               else Int32.shift_right_logical !c 1
           done;
           !c))

  let compute b ~off ~len =
    let table = Lazy.force table in
    let c = ref 0xFFFFFFFFl in
    for i = off to off + len - 1 do
      let idx =
        Int32.to_int (Int32.logxor !c (Int32.of_int (Bytes.get_uint8 b i))) land 0xff
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
    done;
    Int32.logxor !c 0xFFFFFFFFl
end

let crc32 b ~off ~len = Crc32.compute b ~off ~len

(* --- little-endian writer / reader ------------------------------------ *)

module Buf = struct
  type writer = Buffer.t

  let writer () = Buffer.create 256
  let u8 b v = Buffer.add_uint8 b (v land 0xff)
  let i64 b v = Buffer.add_int64_le b v
  let int b v = Buffer.add_int64_le b (Int64.of_int v)
  let u32 b v = Buffer.add_int32_le b (Int32.of_int v)

  let str b s =
    u32 b (String.length s);
    Buffer.add_string b s

  let raw b x =
    u32 b (Bytes.length x);
    Buffer.add_bytes b x

  let bool b v = u8 b (if v then 1 else 0)
  let contents b = Buffer.to_bytes b

  (* The reader raises [Short] internally; the decode entry points below
     catch it and return [Error Truncated] — it never escapes this
     module. *)
  exception Short

  type reader = { data : bytes; mutable pos : int }

  let reader ?(pos = 0) data = { data; pos }
  let remaining r = Bytes.length r.data - r.pos

  let need r n = if remaining r < n then raise Short

  let r_u8 r =
    need r 1;
    let v = Bytes.get_uint8 r.data r.pos in
    r.pos <- r.pos + 1;
    v

  let r_i64 r =
    need r 8;
    let v = Bytes.get_int64_le r.data r.pos in
    r.pos <- r.pos + 8;
    v

  let r_int r = Int64.to_int (r_i64 r)

  let r_u32 r =
    need r 4;
    let v = Int32.to_int (Bytes.get_int32_le r.data r.pos) land 0xFFFFFFFF in
    r.pos <- r.pos + 4;
    v

  let r_str r =
    let n = r_u32 r in
    need r n;
    let s = Bytes.sub_string r.data r.pos n in
    r.pos <- r.pos + n;
    s

  let r_raw r =
    let n = r_u32 r in
    need r n;
    let s = Bytes.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  let r_bool r = r_u8 r <> 0
end

(* --- the container ----------------------------------------------------- *)

type region = { layer : string; layer_version : int; payload : bytes }

type file = {
  format_version : int;
  scenario : string;
  knobs : (string * string) list;
  seed : int64;
  events : int;  (* cursor: events fired when the capture was taken *)
  clock : int;   (* sim clock at the cursor *)
  regions : region list;
}

type decode_error =
  | Truncated
  | Bad_magic
  | Unsupported_version of int
  | Bad_crc of { expected : int32; got : int32 }
  | Bad_region of string

let decode_error_to_string = function
  | Truncated -> "truncated snapshot"
  | Bad_magic -> "bad magic (not a snapshot file)"
  | Unsupported_version v -> Printf.sprintf "unsupported format version %d" v
  | Bad_crc { expected; got } ->
    Printf.sprintf "CRC mismatch (expected %08lx, got %08lx)" expected got
  | Bad_region what -> Printf.sprintf "bad region: %s" what

let magic = "BGSN"
let format_version = 1
let header_bytes = 12 (* magic(4) + version(4) + crc(4); crc covers the rest *)

let encode f =
  let body = Buf.writer () in
  Buf.str body f.scenario;
  Buf.u32 body (List.length f.knobs);
  List.iter
    (fun (k, v) ->
      Buf.str body k;
      Buf.str body v)
    f.knobs;
  Buf.i64 body f.seed;
  Buf.int body f.events;
  Buf.int body f.clock;
  Buf.u32 body (List.length f.regions);
  List.iter
    (fun r ->
      Buf.str body r.layer;
      Buf.u32 body r.layer_version;
      Buf.raw body r.payload)
    f.regions;
  let body = Buf.contents body in
  let out = Bytes.create (header_bytes + Bytes.length body) in
  Bytes.blit_string magic 0 out 0 4;
  Bytes.set_int32_le out 4 (Int32.of_int f.format_version);
  Bytes.set_int32_le out 8 (crc32 body ~off:0 ~len:(Bytes.length body));
  Bytes.blit body 0 out header_bytes (Bytes.length body);
  out

let decode b =
  if Bytes.length b < header_bytes then Error Truncated
  else if Bytes.sub_string b 0 4 <> magic then Error Bad_magic
  else begin
    let version = Int32.to_int (Bytes.get_int32_le b 4) in
    if version <> format_version then Error (Unsupported_version version)
    else begin
      let expected = Bytes.get_int32_le b 8 in
      let got = crc32 b ~off:header_bytes ~len:(Bytes.length b - header_bytes) in
      if expected <> got then Error (Bad_crc { expected; got })
      else begin
        let r = Buf.reader ~pos:header_bytes b in
        (* read n items strictly left to right (List.init's evaluation
           order is unspecified, which would scramble the reader) *)
        let read_list n f =
          let rec go acc i = if i >= n then List.rev acc else go (f () :: acc) (i + 1) in
          go [] 0
        in
        match
          let scenario = Buf.r_str r in
          let nk = Buf.r_u32 r in
          let knobs =
            read_list nk (fun () ->
                let k = Buf.r_str r in
                let v = Buf.r_str r in
                (k, v))
          in
          let seed = Buf.r_i64 r in
          let events = Buf.r_int r in
          let clock = Buf.r_int r in
          let nr = Buf.r_u32 r in
          let regions =
            read_list nr (fun () ->
                let layer = Buf.r_str r in
                let layer_version = Buf.r_u32 r in
                let payload = Buf.r_raw r in
                { layer; layer_version; payload })
          in
          { format_version = version; scenario; knobs; seed; events; clock; regions }
        with
        | f when Buf.remaining r = 0 -> Ok f
        | _ -> Error (Bad_region "trailing bytes after the last region")
        | exception Buf.Short -> Error Truncated
      end
    end
  end

let find_region f layer = List.find_opt (fun r -> r.layer = layer) f.regions

(* First byte offset at which two payloads differ; length mismatch counts
   at the shared-prefix boundary. *)
let first_diff_offset a b =
  let n = min (Bytes.length a) (Bytes.length b) in
  let rec go i =
    if i >= n then if Bytes.length a = Bytes.length b then None else Some n
    else if Bytes.get a i <> Bytes.get b i then Some i
    else go (i + 1)
  in
  go 0

type mismatch = { m_layer : string; m_offset : int }

(* First differing region between two snapshots, in [a]'s region order.
   A region present on one side only mismatches at offset 0. *)
let diff a b =
  let rec go = function
    | [] ->
      List.find_map
        (fun rb ->
          if find_region a rb.layer = None then
            Some { m_layer = rb.layer; m_offset = 0 }
          else None)
        b.regions
    | ra :: rest -> (
      match find_region b ra.layer with
      | None -> Some { m_layer = ra.layer; m_offset = 0 }
      | Some rb ->
        if ra.layer_version <> rb.layer_version then
          Some { m_layer = ra.layer; m_offset = 0 }
        else (
          match first_diff_offset ra.payload rb.payload with
          | Some off -> Some { m_layer = ra.layer; m_offset = off }
          | None -> go rest))
  in
  go a.regions

let equal a b =
  a.scenario = b.scenario && a.knobs = b.knobs && a.seed = b.seed
  && a.events = b.events && diff a b = None

(* --- host filesystem persistence -------------------------------------- *)

let write_path ~path f =
  let oc = open_out_bin path in
  output_bytes oc (encode f);
  close_out oc

let read_path path =
  match open_in_bin path with
  | exception Sys_error e -> Error (Bad_region e)
  | ic ->
    let n = in_channel_length ic in
    let b = Bytes.create n in
    really_input ic b 0 n;
    close_in ic;
    decode b

(* --- sparse-range codec ------------------------------------------------ *)

(* The dirty-page delta format shared with [Resilience.Ckpt]:
   [count:u64le] then per range [addr:u64le][len:u64le], then the raw
   range data concatenated in order. The header layout predates this
   module and is kept bit-for-bit (existing checkpoint files and the
   resilience digests depend on it). *)
module Sparse = struct
  let encode_header ranges =
    let count = List.length ranges in
    let head = Bytes.create (8 * (1 + (2 * count))) in
    Bytes.set_int64_le head 0 (Int64.of_int count);
    List.iteri
      (fun i (a, l) ->
        Bytes.set_int64_le head (8 * (1 + (2 * i))) (Int64.of_int a);
        Bytes.set_int64_le head (8 * (2 + (2 * i))) (Int64.of_int l))
      ranges;
    head

  let encode ~ranges ~read =
    let b = Buffer.create 256 in
    Buffer.add_bytes b (encode_header ranges);
    List.iter (fun (addr, len) -> Buffer.add_bytes b (read ~addr ~len)) ranges;
    Buffer.to_bytes b

  (* Returns the ranges and the offset where their data starts. Data
     shorter than the declared ranges is a decode error, never a raise. *)
  let decode_header data =
    let len = Bytes.length data in
    if len < 8 then Error Truncated
    else begin
      let word i = Int64.to_int (Bytes.get_int64_le data (8 * i)) in
      let count = word 0 in
      let head = 8 * (1 + (2 * count)) in
      if count < 0 || len < head then Error Truncated
      else begin
        let ranges = List.init count (fun i -> (word (1 + (2 * i)), word (2 + (2 * i)))) in
        let data_bytes = List.fold_left (fun acc (_, l) -> acc + l) 0 ranges in
        if List.exists (fun (_, l) -> l < 0) ranges || len < head + data_bytes then
          Error Truncated
        else Ok (ranges, head)
      end
    end

  let decode data =
    match decode_header data with
    | Error e -> Error e
    | Ok (ranges, head) ->
      let off = ref head in
      Ok
        (List.map
           (fun (addr, len) ->
             let d = Bytes.sub data !off len in
             off := !off + len;
             (addr, d))
           ranges)
end
