(** Futex wait queues (paper §IV.B.1).

    NPTL's mutexes, condition variables and joins all reduce to
    futex_wait/futex_wake; this is the full kernel-side implementation CNK
    needed. Queues are FIFO per (pid, address); the value check against
    user memory is done by the syscall layer, which owns memory access. *)

type t

val create : unit -> t

val enqueue : t -> pid:int -> addr:int -> tid:int -> unit
(** Block [tid] on the futex word. *)

val wake : t -> pid:int -> addr:int -> count:int -> int list
(** Dequeue up to [count] waiters, FIFO; returns their tids. *)

val remove : t -> tid:int -> bool
(** Pull a thread out of whatever queue it is in (signal interruption,
    thread kill). Returns whether it was queued. *)

val waiting : t -> pid:int -> addr:int -> int
val total_waiting : t -> int

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state, little-endian, into [b]. Hashtable
    contents are sorted before writing; closures are captured by shape
    only (presence, tids, sequence numbers). *)
