(** Convenience harness: a whole CNK machine ready to run jobs.

    Builds the simulated installation (chips + networks), one CIOD per
    I/O node (sharing one filesystem, like a common GPFS mount), and one
    CNK per compute node; boots everything. This is what bin/, examples/
    and bench/ use to go from "I have a program closure" to "it ran on N
    nodes". *)

type t

val create :
  ?params:Bg_hw.Params.t ->
  ?seed:int64 ->
  ?mapping_config:Mapping.config ->
  ?nodes_per_io_node:int ->
  ?cio:Bg_cio.Reliable.config ->
  dims:int * int * int ->
  unit ->
  t
(** Create and cold-boot every node (boot completes once the sim runs).
    [cio] selects the function-ship transport for every CIOD/CNK pair
    (default {!Bg_cio.Reliable.off}: the legacy lossless protocol). *)

val machine : t -> Machine.t
val sim : t -> Bg_engine.Sim.t
val nodes : t -> Node.t array
val node : t -> int -> Node.t
val fs : t -> Bg_cio.Fs.t
(** The shared filesystem behind all I/O nodes. *)

val ciod_for : t -> rank:int -> Bg_cio.Ciod.t
val ciod : t -> io_node:int -> Bg_cio.Ciod.t
val io_node_count : t -> int

val pset_ranks : t -> io_node:int -> int list
(** The compute-node ranks served by [io_node] — the blast radius of an
    unrecoverable CIOD failure. *)

val boot_all : t -> unit
(** Run the simulation until every node reports booted. *)

val run_job : t -> ?ranks:int list -> Job.t -> unit
(** Launch the job on the given ranks (default: all), then run the
    simulation until every launched node's job completes. Raises
    [Failure] on launch errors or if the sim drains before completion. *)

val launch_all : t -> ?ranks:int list -> Job.t -> unit
(** Launch without running — for harnesses that co-schedule other events.
    Track completion with {!Node.on_job_complete}. *)

val run_until_quiet : t -> unit
(** Drain the event queue. *)
