open Bg_engine
open Bg_hw
module Obs = Bg_obs.Obs
module Accounting = Bg_obs.Accounting
module Causal = Bg_obs.Causal
module Frame = Bg_cio.Frame
module Reliable = Bg_cio.Reliable

(* --- tunable kernel constants (cycles) ------------------------------ *)

let boot_cycles = 70_000
let reproducible_restart_cycles = 40_000
let prepare_reset_cycles = 12_000
let syscall_overhead = 120
let ctx_switch_cycles = 90
let guard_bytes = 64 * 1024
let ipi_latency = 300
let ipi_handler_cycles = 250
let sigsegv = 11

(* --- types ----------------------------------------------------------- *)

type thread_state = Running | Ready | Blocked | Zombie

type thread = {
  tid : int;
  proc : proc;
  core_id : int;
  is_main : bool;
  mutable state : thread_state;
  mutable resume : (unit -> unit) option;
  mutable clear_child_tid : int option;
  mutable pending_sigs : int list;
  mutable guard : (int * int) option;  (* DAC-watched range, (lo, hi) *)
  mutable guard_slot : int option;
  mutable futex_eintr : bool;  (* a signal interrupted the futex wait *)
}

and proc = {
  pid : int;
  map : Mapping.process_map;
  tracker : Mmap_tracker.t;
  cores : int list;  (* cores this process owns *)
  handlers : (int, int -> unit) Hashtbl.t;
  mutable threads : thread list;
  mutable exited : bool;
  mutable exit_code : int;
  job : Job.t;
}

type core_state = {
  id : int;
  mutable current : thread option;
  ready : thread Queue.t;
  mutable pending_penalty : int;  (* injected interference (daemon noise) *)
  mutable pending_ipi : int;  (* IPI handler cycles to charge *)
  mutable next_dac_slot : int;
  (* SSVIII extended thread affinity: the single process whose pthreads may
     also run on this core, and whose map the core must swap to *)
  mutable remote_pid : int option;
  mutable mapped_pid : int option;  (* whose TLB entries the core holds *)
}

(* One outstanding reliable-mode function-ship per thread (threads spin on
   I/O, so depth 1 suffices). Holds everything needed to retransmit. *)
type io_inflight = {
  io_ret : Sysreq.reply -> unit;
  io_seq : int;
  io_frame : bytes;  (* encoded request frame, resent verbatim on timeout *)
  io_pid : int;
  io_core : int;
  mutable io_attempts : int;  (* retransmissions performed so far *)
  mutable io_timer : Bg_engine.Event_queue.handle option;
}

type t = {
  machine : Machine.t;
  rank : int;
  chip : Chip.t;
  ciod : Bg_cio.Ciod.t;
  mapping_config : Mapping.config;
  cores : core_state array;
  persist : Persist.t;
  futex : Futex.t;
  procs : (int, proc) Hashtbl.t;
  threads : (int, thread) Hashtbl.t;
  io_pending : (int, Sysreq.reply -> unit) Hashtbl.t;  (* tid -> resume *)
  io_inflight : (int, io_inflight) Hashtbl.t;  (* tid -> reliable in-flight *)
  io_seq : (int, int) Hashtbl.t;  (* tid -> next sequence number *)
  mutable next_pid : int;
  mutable next_tid : int;
  mutable booted : bool;
  mutable job_active : bool;
  mutable on_complete : (unit -> unit) option;
  mutable io_enabled : bool;
  mutable syscalls : int;
  mutable strace : Buffer.t option;
  mutable ipis : int;
  mutable faults : (int * string) list;
  mutable exit_codes : (int * int) list;
}

let sim t = t.machine.Machine.sim
let memory t = Chip.memory t.chip
let machine t = t.machine
let rank t = t.rank
let chip t = t.chip
let booted t = t.booted
let job_active t = t.job_active
let on_job_complete t f = t.on_complete <- Some f
let process_count t = Hashtbl.length t.procs
let syscall_count t = t.syscalls
let ipi_count t = t.ipis
let faults t = List.rev t.faults
let exit_codes t = List.rev t.exit_codes
let persist t = t.persist
let set_io_enabled t v = t.io_enabled <- v

let live_threads t =
  Hashtbl.fold (fun _ th acc -> if th.state <> Zombie then acc + 1 else acc) t.threads 0

let process_map t ~pid =
  Option.map (fun p -> p.map) (Hashtbl.find_opt t.procs pid)

let emit t label value =
  Sim.emit (sim t) ~label ~value:(Int64.of_int ((t.rank * 1_000_000) + value))

let obs t = t.machine.Machine.obs
let acct t = t.machine.Machine.acct
let causal t = t.machine.Machine.causal

(* Mint a causal node on this rank, program-order chained unless said
   otherwise. Returns [Causal.none] (and records nothing) when causal
   collection is off — carriers then ship context 0. *)
let causal_mint ?chain t ~cat ~name ~core =
  let c = causal t in
  if Causal.enabled c then
    Causal.mint c ?chain ~cat ~name ~rank:t.rank ~core ~now:(Sim.now (sim t)) ()
  else Causal.none

let acct_switch t ~core state =
  Accounting.switch (acct t) ~rank:t.rank ~core ~now:(Sim.now t.machine.Machine.sim) state

let ras t severity message =
  Obs.incr (obs t) ~rank:t.rank ~subsystem:"kernel" ~name:"ras_emitted" ();
  Machine.ras_emit t.machine ~rank:t.rank ~severity ~message

(* --- reliable CIO transport (CNK side) ------------------------------- *)

let cio_config t = Bg_cio.Ciod.config t.ciod

let cio_count t name = Obs.incr (obs t) ~rank:t.rank ~subsystem:"cio" ~name ()

let cancel_io_timer t inf =
  match inf.io_timer with
  | Some h ->
    Sim.cancel (sim t) h;
    inf.io_timer <- None
  | None -> ()

let drop_io_inflight t tid =
  match Hashtbl.find_opt t.io_inflight tid with
  | Some inf ->
    cancel_io_timer t inf;
    Hashtbl.remove t.io_inflight tid
  | None -> ()

(* Ship a frame up the tree. The transit span is recorded one-shot at
   arrival (start captured at send): a dropped message must not leak an
   open span. The delivered payload may differ from [frame] when the
   network corrupts it — CIOD's CRC check catches that. *)
let send_frame_up t ~core frame =
  let o = obs t in
  let sent = Sim.now (sim t) in
  Bg_hw.Collective_net.to_io_node t.machine.Machine.collective ~cn:t.rank ~payload:frame
    ~on_arrival:(fun ~payload ~arrival_cycle ->
      Obs.span_record o ~cat:"cio" ~name:"transit_request" ~rank:t.rank ~core ~start:sent
        ~finish:arrival_cycle;
      Bg_cio.Ciod.submit t.ciod payload)

(* Acks are fire-and-forget: a lost Ack merely leaves the cached reply
   frame resident until this thread's next request overwrites it (or
   job_end), so the depth-1 cache bounds residency at one frame per live
   thread. CIOD keeps the acked seq as a watermark, so Ack/duplicate
   reordering can never cause re-execution. *)
let send_ack t ~pid ~tid ~seq =
  let frame =
    Frame.encode
      { Frame.kind = Frame.Ack; rank = t.rank; pid; tid; seq; ctx = Causal.none;
        payload = Bytes.create 0 }
  in
  cio_count t "acks";
  Bg_hw.Collective_net.to_io_node t.machine.Machine.collective ~cn:t.rank ~payload:frame
    ~on_arrival:(fun ~payload ~arrival_cycle:_ -> Bg_cio.Ciod.submit t.ciod payload)

let deliver_reliable t reply_bytes =
  match Frame.decode reply_bytes with
  | Error _ -> cio_count t "corrupt_replies"
  | Ok f when f.Frame.kind <> Frame.Reply -> cio_count t "corrupt_replies"
  | Ok f -> (
    match Hashtbl.find_opt t.io_inflight f.Frame.tid with
    | Some inf when inf.io_seq = f.Frame.seq -> (
      match Bg_cio.Proto.decode_reply f.Frame.payload with
      | Error _ ->
        (* CRC passed but the inner payload is bad: treat as loss, the
           retransmission timer re-drives the request. *)
        cio_count t "corrupt_replies"
      | Ok (_hdr, reply) ->
        cancel_io_timer t inf;
        Hashtbl.remove t.io_inflight f.Frame.tid;
        (* Causal: the reply frame carries CIOD's service node; hang the
           delivery off it. A replayed cached reply carries the same
           node, so duplicates collapse onto one service execution. *)
        let r =
          causal_mint t ~cat:"cio" ~name:"reply.deliver" ~core:inf.io_core
        in
        Causal.link (causal t) Causal.Send_recv ~src:f.Frame.ctx ~dst:r;
        send_ack t ~pid:inf.io_pid ~tid:f.Frame.tid ~seq:f.Frame.seq;
        inf.io_ret reply)
    | _ ->
      (* No in-flight request at that seq: a duplicated or very late
         reply whose request already completed. *)
      cio_count t "stale_replies")

(* --- creation -------------------------------------------------------- *)

let create ?mapping_config machine ~rank ~ciod () =
  let chip = Machine.chip machine rank in
  let mapping_config =
    let base =
      match mapping_config with Some c -> c | None -> Mapping.default_config
    in
    { base with Mapping.dram_bytes = (Chip.params chip).Params.dram_bytes }
  in
  let persist_pool =
    Bg_hw.Page_size.align_up Bg_hw.Page_size.P1m mapping_config.Mapping.persist_bytes
  in
  let t =
    {
      machine;
      rank;
      chip;
      ciod;
      mapping_config;
      cores =
        Array.init (Chip.params chip).Params.cores_per_node (fun id ->
            {
              id;
              current = None;
              ready = Queue.create ();
              pending_penalty = 0;
              pending_ipi = 0;
              next_dac_slot = 0;
              remote_pid = None;
              mapped_pid = None;
            });
      persist =
        Persist.create
          ~pool_base_pa:(mapping_config.Mapping.dram_bytes - persist_pool)
          ~pool_bytes:persist_pool ~va_base:Mapping.persist_va;
      futex = Futex.create ();
      procs = Hashtbl.create 4;
      threads = Hashtbl.create 16;
      io_pending = Hashtbl.create 16;
      io_inflight = Hashtbl.create 16;
      io_seq = Hashtbl.create 16;
      next_pid = 1;
      next_tid = 1;
      booted = false;
      job_active = false;
      on_complete = None;
      io_enabled = true;
      syscalls = 0;
      strace = None;
      ipis = 0;
      faults = [];
      exit_codes = [];
    }
  in
  Bg_cio.Ciod.register_node ciod ~rank ~deliver:(fun reply_bytes ->
      if (cio_config t).Reliable.enabled then deliver_reliable t reply_bytes
      else
        let hdr, reply =
          match Bg_cio.Proto.decode_reply reply_bytes with
          | Ok v -> v
          | Error e -> failwith ("Proto.decode_reply: " ^ Bg_cio.Proto.error_message e)
        in
        match Hashtbl.find_opt t.io_pending hdr.Bg_cio.Proto.tid with
        | Some k ->
          Hashtbl.remove t.io_pending hdr.Bg_cio.Proto.tid;
          k reply
        | None -> ());
  t

(* --- memory access through the static map --------------------------- *)

exception Fault of string

let translate t (th : thread) access va len =
  let core = Chip.core t.chip th.core_id in
  match Tlb.translate core.Chip.tlb access va with
  | Tlb.Miss ->
    Obs.incr (obs t) ~rank:t.rank ~core:th.core_id ~subsystem:"tlb" ~name:"miss" ();
    raise (Fault (Printf.sprintf "TLB miss at 0x%x: outside the static map" va))
  | Tlb.Fault reason -> raise (Fault reason)
  | Tlb.Hit pa ->
    if len > 1 then begin
      (* Tiles of one region are physically contiguous, so the end address
         must translate to pa + len - 1; anything else spans regions. *)
      match Tlb.translate core.Chip.tlb access (va + len - 1) with
      | Tlb.Hit pa_end when pa_end = pa + len - 1 -> pa
      | _ -> raise (Fault (Printf.sprintf "access [0x%x,+%d) spans regions" va len))
    end
    else pa

(* Debug access that bypasses cores (used by tests and by job load). *)
let static_translate t ~pid va =
  match Hashtbl.find_opt t.procs pid with
  | None -> invalid_arg "Node: no such pid"
  | Some p -> (
    match Mapping.region_for p.map va with
    | Some r -> r.Sysreq.paddr + (va - r.Sysreq.vaddr)
    | None -> (
      (* persistent regions are mapped va->pa linearly *)
      match
        List.find_opt
          (fun (r : Persist.region) -> va >= r.Persist.va && va < r.Persist.va + r.Persist.bytes)
          (Persist.regions t.persist)
      with
      | Some r -> r.Persist.pa + (va - r.Persist.va)
      | None -> invalid_arg (Printf.sprintf "Node: 0x%x unmapped" va)))

let read_virtual t ~pid ~addr ~len =
  let pa = static_translate t ~pid addr in
  Memory.read (memory t) ~addr:pa ~len

let write_virtual t ~pid ~addr data =
  let pa = static_translate t ~pid addr in
  Memory.write (memory t) ~addr:pa data

let read_word t (th : thread) va =
  let pa = translate t th Tlb.Load va 8 in
  Int64.to_int (Memory.read_int64 (memory t) ~addr:pa)

let write_word t (th : thread) va v =
  let pa = translate t th Tlb.Store va 8 in
  Mmap_tracker.mark_dirty th.proc.tracker ~addr:va ~len:8;
  Memory.write_int64 (memory t) ~addr:pa (Int64.of_int v)

(* --- DRAM refresh stretch -------------------------------------------- *)

(* The residual noise floor: a consume spanning k refresh windows pays k
   short stalls. Deterministic in absolute time. *)
let refresh_stretch t start n =
  let p = Chip.params t.chip in
  let interval = p.Params.dram_refresh_interval_cycles in
  let stall = p.Params.dram_refresh_stall_cycles in
  if interval <= 0 then n
  else begin
    let k = ((start + n) / interval) - (start / interval) in
    n + (k * stall)
  end

(* --- guard pages ------------------------------------------------------ *)

let dac_of t (th : thread) = (Chip.core t.chip th.core_id).Chip.dac

let program_guard t (th : thread) lo hi =
  let core = t.cores.(th.core_id) in
  let slot =
    match th.guard_slot with
    | Some s -> s
    | None ->
      let s = core.next_dac_slot in
      core.next_dac_slot <- (s + 1) mod Dac.registers;
      th.guard_slot <- Some s;
      s
  in
  th.guard <- Some (lo, hi);
  Dac.set (dac_of t th) ~slot (Some { Dac.lo; hi; on_store = true; on_load = false });
  emit t "cnk.guard" th.tid

let clear_guard t (th : thread) =
  match th.guard_slot with
  | Some slot ->
    Dac.set (dac_of t th) ~slot None;
    th.guard <- None
  | None -> ()

(* The main-thread guard sits on the heap boundary: [brk, brk+guard). *)
let main_guard_range (p : proc) =
  let brk = Mmap_tracker.heap_end p.tracker in
  let hi = min (brk + guard_bytes) (Mmap_tracker.main_stack_lo p.tracker) in
  (brk, hi)

(* --- scheduler -------------------------------------------------------- *)

(* SSVIII extended affinity: running a remote process's pthread requires the
   core to hold that process's static map. Swapping costs a full flush +
   reinstall — the price of bending the one-process-per-core rule while
   keeping the static-TLB design. *)
let tlb_swap_cycles_per_entry = 30

let remap_core_for t core (p : proc) =
  if core.mapped_pid = Some p.pid then 0
  else begin
    let tlb = (Chip.core t.chip core.id).Chip.tlb in
    Tlb.flush tlb;
    List.iter
      (fun e ->
        match Tlb.install tlb e with
        | Ok () -> ()
        | Error msg -> failwith ("CNK remote-map install failed: " ^ msg))
      (Mapping.tlb_entries p.map);
    core.mapped_pid <- Some p.pid;
    emit t "cnk.tlb_swap" ((core.id * 100) + p.pid);
    let cost = tlb_swap_cycles_per_entry * List.length p.map.Mapping.regions in
    let now = Sim.now (sim t) in
    Obs.span_record (obs t) ~cat:"tlb" ~name:"map_swap" ~rank:t.rank ~core:core.id
      ~start:now ~finish:(now + cost);
    Obs.incr (obs t) ~rank:t.rank ~core:core.id ~subsystem:"tlb" ~name:"map_swap" ();
    cost
  end

let rec dispatch t core =
  match core.current with
  | Some _ -> ()
  | None -> (
    match Queue.take_opt core.ready with
    | None -> ()
    | Some th ->
      if th.state = Zombie then dispatch t core
      else begin
        core.current <- Some th;
        th.state <- Running;
        (* context switch + any map swap is kernel overhead; the thread's
           own cycles start when the resume fires *)
        acct_switch t ~core:core.id Accounting.Kernel;
        let swap = remap_core_for t core th.proc in
        let resume = th.resume in
        th.resume <- None;
        ignore
          (Sim.schedule_in (sim t) (ctx_switch_cycles + swap) (fun () ->
               if th.state = Running then begin
                 acct_switch t ~core:core.id Accounting.App;
                 match resume with Some k -> k () | None -> ()
               end))
      end)

let core_idle t (core : core_state) =
  if core.current = None && Queue.is_empty core.ready then
    acct_switch t ~core:core.id Accounting.Idle

let release_core t (th : thread) =
  let core = t.cores.(th.core_id) in
  (match core.current with
  | Some cur when cur.tid = th.tid -> core.current <- None
  | _ -> ());
  dispatch t core;
  core_idle t core

(* A thread can die while an event that would wake it is already in
   flight (e.g. the control system kills a job during image load, SSV.B);
   waking a Zombie would occupy its core forever with no continuation. *)
let make_ready t (th : thread) =
  if th.state <> Zombie then begin
    let core = t.cores.(th.core_id) in
    th.state <- Ready;
    Queue.push th core.ready;
    dispatch t core
  end

(* --- thread lifecycle ------------------------------------------------- *)

(* Surface the hardware's own event counters (TLB miss, DAC violation)
   into the metrics registry as per-core gauges. *)
let publish_hw_gauges t =
  let o = obs t in
  if Obs.enabled o then
    Array.iter
      (fun (core : core_state) ->
        let hw = Chip.core t.chip core.id in
        Obs.set_gauge o ~rank:t.rank ~core:core.id ~subsystem:"tlb" ~name:"hw_misses"
          (Tlb.misses hw.Chip.tlb);
        Obs.set_gauge o ~rank:t.rank ~core:core.id ~subsystem:"dac" ~name:"hw_violations"
          (Dac.violations hw.Chip.dac))
      t.cores;
  if Obs.enabled o then
    List.iter
      (fun (r : Upc.reading) ->
        Obs.set_gauge o ~rank:t.rank ~core:r.Upc.core ~subsystem:"upc"
          ~name:(Upc.event_name r.Upc.event) r.Upc.count)
      (Upc.snapshot (Chip.upc t.chip));
  Machine.publish_net_gauges t.machine ~rank:t.rank

let check_job_done t =
  if t.job_active then begin
    let all_exited = Hashtbl.fold (fun _ p acc -> acc && p.exited) t.procs true in
    if all_exited && Hashtbl.length t.procs > 0 then begin
      t.job_active <- false;
      publish_hw_gauges t;
      Bg_cio.Ciod.job_end t.ciod ~rank:t.rank;
      emit t "cnk.job_done" 0;
      match t.on_complete with
      | Some f ->
        t.on_complete <- None;
        f ()
      | None -> ()
    end
  end

let rec thread_exit t (th : thread) code =
  if th.state <> Zombie then begin
    th.state <- Zombie;
    th.resume <- None;
    clear_guard t th;
    Hashtbl.remove t.io_pending th.tid;
    drop_io_inflight t th.tid;
    Hashtbl.remove t.io_seq th.tid;
    ignore (Futex.remove t.futex ~tid:th.tid);
    emit t "cnk.thread_exit" th.tid;
    (* CLONE_CHILD_CLEARTID: zero the tid word and wake one joiner. The
       kernel writes through the process's static map directly -- the
       thread's core TLB may hold a remote process's map (SSVIII). *)
    (match th.clear_child_tid with
    | Some addr ->
      (try
         let pa = static_translate t ~pid:th.proc.pid addr in
         Memory.write_int64 (memory t) ~addr:pa 0L;
         ignore (wake_futex t th.proc addr 1)
       with Fault _ | Invalid_argument _ -> ())
    | None -> ());
    th.proc.threads <- List.filter (fun x -> x.tid <> th.tid) th.proc.threads;
    release_core t th;
    if th.proc.threads = [] && not th.proc.exited then begin
      th.proc.exited <- true;
      th.proc.exit_code <- code;
      t.exit_codes <- (th.proc.pid, code) :: t.exit_codes;
      emit t "cnk.proc_exit" th.proc.pid;
      check_job_done t
    end
  end

and wake_futex t (p : proc) addr count =
  let tids = Futex.wake t.futex ~pid:p.pid ~addr ~count in
  List.iter
    (fun tid ->
      match Hashtbl.find_opt t.threads tid with
      | Some th when th.state = Blocked -> make_ready t th
      | _ -> ())
    tids;
  List.length tids

(* --- signals ----------------------------------------------------------- *)

(* Handlers are kernel-invoked closures (effect-free); a fatal signal with
   no handler kills the thread. Returns [true] if the thread survived. *)
let deliver_signals t (th : thread) =
  let pending = List.rev th.pending_sigs in
  th.pending_sigs <- [];
  List.for_all
    (fun signo ->
      match Hashtbl.find_opt th.proc.handlers signo with
      | Some h ->
        emit t "cnk.signal" ((th.tid * 100) + signo);
        h signo;
        true
      | None ->
        t.faults <- (th.tid, Printf.sprintf "unhandled signal %d" signo) :: t.faults;
        ras t Machine.Ras_error
          (Printf.sprintf "tid %d killed by unhandled signal %d" th.tid signo);
        thread_exit t th signo;
        false)
    pending

(* --- the step driver --------------------------------------------------- *)

let rec step_thread t (th : thread) (s : Coro.step) =
  if th.state = Zombie then ()
  else
    match s with
    | Coro.Finished -> thread_exit t th 0
    | Coro.Crashed e ->
      t.faults <- (th.tid, Printexc.to_string e) :: t.faults;
      ras t Machine.Ras_error
        (Printf.sprintf "tid %d crashed: %s" th.tid (Printexc.to_string e));
      thread_exit t th 1
    | Coro.Rdtsc k -> step_thread t th (k (Sim.now (sim t)))
    | Coro.Yield k ->
      th.resume <- Some (fun () -> step_thread t th (k ()));
      let core = t.cores.(th.core_id) in
      (match core.current with
      | Some cur when cur.tid = th.tid -> core.current <- None
      | _ -> ());
      Queue.push th core.ready;
      th.state <- Ready;
      dispatch t core
    | Coro.Consume (n, k) ->
      let core = t.cores.(th.core_id) in
      let penalty = core.pending_penalty in
      core.pending_penalty <- 0;
      let ipi = core.pending_ipi in
      core.pending_ipi <- 0;
      let actual = refresh_stretch t (Sim.now (sim t)) n + penalty + ipi in
      ignore
        (Sim.schedule_in (sim t) actual (fun () ->
             if th.state <> Zombie then begin
               (* the stretched block has known sub-causes: injected daemon
                  noise and IPI handler time; the rest was the app *)
               if penalty > 0 || ipi > 0 then
                 Accounting.attribute (acct t) ~rank:t.rank ~core:th.core_id
                   ~now:(Sim.now (sim t))
                   [ (Accounting.Daemon, penalty); (Accounting.Interrupt, ipi) ];
               if deliver_signals t th then step_thread t th (k ())
             end))
    | Coro.Load (addr, len, k) -> (
      try
        let pa = translate t th Tlb.Load addr len in
        Cache.access (Chip.l2 t.chip) pa;
        step_thread t th (k (Memory.read (memory t) ~addr:pa ~len))
      with Fault reason -> fault_thread t th reason)
    | Coro.Store (addr, data, k) -> (
      let len = Bytes.length data in
      match Dac.check_store (dac_of t th) ~addr with
      | Some _ ->
        (* Guard hit: SIGSEGV. With a handler the store is dropped and the
           thread continues; without one the thread dies. *)
        th.pending_sigs <- th.pending_sigs @ [ sigsegv ];
        emit t "cnk.guard_hit" th.tid;
        Obs.incr (obs t) ~rank:t.rank ~core:th.core_id ~subsystem:"dac" ~name:"violation" ();
        ras t Machine.Ras_warn
          (Printf.sprintf "DAC guard hit by tid %d at 0x%x" th.tid addr);
        if deliver_signals t th then step_thread t th (k ())
      | None -> (
        try
          let pa = translate t th Tlb.Store addr len in
          Cache.access (Chip.l2 t.chip) pa;
          Mmap_tracker.mark_dirty th.proc.tracker ~addr ~len;
          Memory.write (memory t) ~addr:pa data;
          step_thread t th (k ())
        with Fault reason -> fault_thread t th reason))
    | Coro.Cas (addr, expected, desired, k) -> (
      try
        let v = read_word t th addr in
        if v = expected then write_word t th addr desired;
        step_thread t th (k (v = expected))
      with Fault reason -> fault_thread t th reason)
    | Coro.Fetch_add (addr, delta, k) -> (
      try
        let v = read_word t th addr in
        write_word t th addr (v + delta);
        step_thread t th (k v)
      with Fault reason -> fault_thread t th reason)
    | Coro.Syscall (req, k) ->
      t.syscalls <- t.syscalls + 1;
      (match t.strace with
      | Some buf ->
        Buffer.add_string buf
          (Format.asprintf "[%d] tid %d: %a@." (Sim.now (sim t)) th.tid Sysreq.pp_request req)
      | None -> ());
      emit t "cnk.syscall" ((th.tid * 1000) + (Hashtbl.hash (Sysreq.request_name req) mod 1000));
      let k = instrument_syscall t th req k in
      let k = account_syscall t th req k in
      ignore
        (Sim.schedule_in (sim t) syscall_overhead (fun () ->
             if th.state <> Zombie then handle_syscall t th req k))

(* Wrap a syscall continuation so the dispatch-to-reply interval lands in
   the observability layer: a "syscall" span plus a per-kind latency
   timer. Purely passive — no events, no RNG — so the architectural trace
   digest is unchanged whether collection is on or off. Exit syscalls
   never return, so they get no span. *)
and instrument_syscall t (th : thread) req k =
  let o = obs t in
  let c = causal t in
  if not (Obs.enabled o || Causal.enabled c) then k
  else
    match req with
    | Sysreq.Exit_thread _ | Sysreq.Exit_group _ -> k
    | _ ->
      let name = Sysreq.request_name req in
      let start = Sim.now (sim t) in
      let h =
        if Obs.enabled o then
          Some (Obs.span_begin o ~cat:"syscall" ~name ~rank:t.rank ~core:th.core_id ~now:start)
        else None
      in
      (* Causal: entry and exit are program-order chained on this core's
         lane, so whatever the syscall caused in between (a function
         ship, a DMA injection) hangs between two anchors. *)
      ignore (causal_mint t ~cat:"syscall" ~name:(name ^ ".entry") ~core:th.core_id);
      fun reply ->
        let now = Sim.now (sim t) in
        (match h with
        | Some h ->
          Obs.span_end o h ~now;
          Obs.observe_cycles o ~rank:t.rank ~subsystem:"syscall" ~name (now - start);
          Obs.incr o ~rank:t.rank ~core:th.core_id ~subsystem:"syscall" ~name ()
        | None -> ());
        ignore (causal_mint t ~cat:"syscall" ~name:(name ^ ".exit") ~core:th.core_id);
        k reply

(* Charge trap-to-reply to [Syscall] in the cycle ledger. Exit syscalls
   never reply; their cycles end with the thread. *)
and account_syscall t (th : thread) req k =
  match req with
  | Sysreq.Exit_thread _ | Sysreq.Exit_group _ -> k
  | _ ->
    acct_switch t ~core:th.core_id Accounting.Syscall;
    fun reply ->
      acct_switch t ~core:th.core_id Accounting.App;
      k reply

and fault_thread t (th : thread) reason =
  t.faults <- (th.tid, reason) :: t.faults;
  thread_exit t th sigsegv

and finish t th k reply = step_thread t th (k reply)

(* --- syscall implementation -------------------------------------------- *)

and handle_syscall t (th : thread) (req : Sysreq.request) k =
  let p = th.proc in
  let ret reply = finish t th k reply in
  match req with
  | Sysreq.Getpid -> ret (Sysreq.R_int p.pid)
  | Sysreq.Gettid -> ret (Sysreq.R_int th.tid)
  | Sysreq.Get_rank -> ret (Sysreq.R_int t.rank)
  | Sysreq.Uname ->
    ret
      (Sysreq.R_uname
         {
           Sysreq.sysname = "CNK";
           nodename = Printf.sprintf "bgp%d-cn%d" t.machine.Machine.instance t.rank;
           release = "2.6.19.2";
           machine = "ppc450d";
         })
  | Sysreq.Get_personality ->
    let torus = t.machine.Machine.torus in
    let coll = t.machine.Machine.collective in
    ret
      (Sysreq.R_personality
         {
           Sysreq.p_rank = t.rank;
           p_coords = Bg_hw.Torus.coord_of_rank torus t.rank;
           p_dims = Bg_hw.Torus.dims torus;
           p_pset = Bg_hw.Collective_net.io_node_of coll ~cn:t.rank;
           p_pset_size =
             (Bg_hw.Collective_net.compute_nodes coll
             + Bg_hw.Collective_net.io_node_count coll - 1)
             / Bg_hw.Collective_net.io_node_count coll;
           p_mem_bytes = (Chip.params t.chip).Params.dram_bytes;
           p_clock_mhz = int_of_float (Cycles.frequency_hz /. 1e6);
         })
  | Sysreq.Gettimeofday ->
    ret (Sysreq.R_int (int_of_float (Cycles.to_us (Sim.now (sim t)))))
  | Sysreq.Brk target -> handle_brk t th target ret
  | Sysreq.Mmap { length; fd = None; _ } -> (
    match Mmap_tracker.mmap p.tracker ~length with
    | Ok addr -> ret (Sysreq.R_int addr)
    | Error e -> ret (Sysreq.R_err e))
  | Sysreq.Mmap { length; fd = Some fd; offset; map_copy = _; prot = _ } -> (
    (* File-backed mmap: CNK copies the data in at map time (§VI.A) and
       maps it read-write (page permissions are not honored, §IV.B.2). *)
    match Mmap_tracker.mmap p.tracker ~length with
    | Error e -> ret (Sysreq.R_err e)
    | Ok addr ->
      function_ship t th (Sysreq.Pread { fd; len = length; offset }) (fun reply ->
          (match reply with
          | Sysreq.R_bytes data -> (
            try
              let pa = translate t th Tlb.Store addr (max 1 (Bytes.length data)) in
              Mmap_tracker.mark_dirty p.tracker ~addr ~len:(Bytes.length data);
              Memory.write (memory t) ~addr:pa data
            with Fault _ -> ())
          | _ -> ());
          ret (Sysreq.R_int addr)))
  | Sysreq.Munmap { addr; length } -> (
    match Mmap_tracker.munmap p.tracker ~addr ~length with
    | Ok () -> ret Sysreq.R_unit
    | Error e -> ret (Sysreq.R_err e))
  | Sysreq.Mprotect { addr; length; prot = _ } ->
    (* CNK does not change page permissions; it remembers the range and
       assumes it is the guard area for the next clone (Fig 4). *)
    Mmap_tracker.record_mprotect p.tracker ~addr ~length;
    ret Sysreq.R_unit
  | Sysreq.Shm_open { name; length } -> handle_shm_open t th name length ret
  | Sysreq.Query_map -> ret (Sysreq.R_map p.map.Mapping.regions)
  | Sysreq.Query_vtop va -> (
    try ret (Sysreq.R_int (translate t th Tlb.Load va 1))
    with Fault _ -> ret (Sysreq.R_err Errno.EFAULT))
  | Sysreq.Query_dirty { clear } ->
    let ranges = Mmap_tracker.dirty_ranges p.tracker in
    if clear then Mmap_tracker.clear_dirty p.tracker;
    ret (Sysreq.R_ranges ranges)
  | Sysreq.Set_tid_address addr ->
    th.clear_child_tid <- Some addr;
    ret (Sysreq.R_int th.tid)
  | Sysreq.Clone { flags; stack_hint = _; tls = _; parent_tid_addr; child_tid_addr; entry } ->
    handle_clone t th ~flags ~parent_tid_addr ~child_tid_addr ~entry ret
  | Sysreq.Exit_thread code -> thread_exit t th code
  | Sysreq.Exit_group code ->
    List.iter (fun other -> thread_exit t other code)
      (List.filter (fun x -> x.tid <> th.tid) p.threads);
    thread_exit t th code
  | Sysreq.Sigaction { signo; handler } ->
    (match handler with
    | Some h -> Hashtbl.replace p.handlers signo h
    | None -> Hashtbl.remove p.handlers signo);
    ret Sysreq.R_unit
  | Sysreq.Tgkill { tid; signo } -> handle_tgkill t th tid signo ret
  | Sysreq.Sched_yield ->
    th.resume <- Some (fun () -> ret (Sysreq.R_int 0));
    let core = t.cores.(th.core_id) in
    (match core.current with
    | Some cur when cur.tid = th.tid -> core.current <- None
    | _ -> ());
    th.state <- Ready;
    Queue.push th core.ready;
    dispatch t core
  | Sysreq.Futex_wait { addr; expected } -> (
    match read_word t th addr with
    | exception Fault _ -> ret (Sysreq.R_err Errno.EFAULT)
    | v ->
      if v <> expected then ret (Sysreq.R_err Errno.EAGAIN)
      else begin
        Futex.enqueue t.futex ~pid:p.pid ~addr ~tid:th.tid;
        th.state <- Blocked;
        th.resume <-
          Some
            (fun () ->
              if deliver_signals t th then
                if th.futex_eintr then begin
                  th.futex_eintr <- false;
                  ret (Sysreq.R_err Errno.EINTR)
                end
                else ret (Sysreq.R_int 0));
        release_core t th
      end)
  | Sysreq.Futex_wake { addr; count } -> ret (Sysreq.R_int (wake_futex t p addr count))
  | Sysreq.Query_perf op ->
    let upc = Chip.upc t.chip in
    (match op with
    | Sysreq.Perf_start ->
      Upc.start upc;
      ret Sysreq.R_unit
    | Sysreq.Perf_stop ->
      Upc.stop upc;
      ret Sysreq.R_unit
    | Sysreq.Perf_freeze ->
      Upc.freeze upc;
      ret Sysreq.R_unit
    | Sysreq.Perf_read ->
      let readings =
        match Upc.frozen_snapshot upc with
        | Some rs -> rs
        | None -> Upc.snapshot upc
      in
      ret
        (Sysreq.R_perf
           (List.map
              (fun (r : Upc.reading) ->
                { Sysreq.pr_event = r.Upc.event; pr_core = r.Upc.core; pr_count = r.Upc.count })
              readings)))
  | Sysreq.Dma_inject d -> (
    (* CNK maps the DMA unit into user space, so DCMF never issues
       these; the handlers exist for ABI completeness (the trap is the
       only cost — the static TLB map means nothing to translate or
       pin). *)
    match Dma.inject (Machine.dma t.machine t.rank) d with
    | Ok () -> ret Sysreq.R_unit
    | Error `Fifo_full -> ret (Sysreq.R_err Errno.EAGAIN))
  | Sysreq.Dma_poll op ->
    let engine = Machine.dma t.machine t.rank in
    (match op with
    | Sysreq.Dma_counter id -> ret (Sysreq.R_int (Dma.counter_value engine ~id))
    | Sysreq.Dma_recv -> ret (Sysreq.R_dma_packets (Dma.drain_recv engine)))
  | _ when Sysreq.is_file_io req ->
    if not t.io_enabled then ret (Sysreq.R_err Errno.ENOSYS)
    else function_ship t th req ret
  | _ -> ret (Sysreq.R_err Errno.ENOSYS)

and handle_brk t (th : thread) target ret =
  let p = th.proc in
  let old_brk = Mmap_tracker.heap_end p.tracker in
  match Mmap_tracker.brk p.tracker target with
  | Error e -> ret (Sysreq.R_err e)
  | Ok new_brk ->
    if new_brk > old_brk then reposition_main_guard t th;
    ret (Sysreq.R_int new_brk)

(* Heap grew: the main-thread guard must move above the new break. If the
   grower runs on a different core than the main thread, CNK sends an IPI
   (paper Fig 4); same-core updates are free. *)
and reposition_main_guard t (th : thread) =
  match List.find_opt (fun x -> x.is_main && x.state <> Zombie) th.proc.threads with
  | None -> ()
  | Some main ->
    let lo, hi = main_guard_range th.proc in
    if main.core_id = th.core_id then program_guard t main lo hi
    else begin
      t.ipis <- t.ipis + 1;
      emit t "cnk.ipi" main.core_id;
      let send_ctx = causal_mint t ~cat:"ipi" ~name:"ipi.send" ~core:th.core_id in
      let core = t.cores.(main.core_id) in
      ignore
        (Sim.schedule_in (sim t) ipi_latency (fun () ->
             core.pending_ipi <- core.pending_ipi + ipi_handler_cycles;
             (* Causal: cross-core interrupt — the sender caused the
                handler to run on the main thread's core. *)
             let recv_ctx =
               causal_mint t ~cat:"ipi" ~name:"ipi.handle" ~core:main.core_id
             in
             Causal.link (causal t) Causal.Parent_child ~src:send_ctx ~dst:recv_ctx;
             if main.state <> Zombie then program_guard t main lo hi))
    end

and handle_shm_open t (th : thread) name length ret =
  match
    Persist.open_region t.persist ~name ~bytes:length ~owner:th.proc.job.Job.user
  with
  | Error e -> ret (Sysreq.R_err e)
  | Ok r ->
    (* Map the region on every core of the process (idempotent installs
       are rejected as overlaps, which we ignore). *)
    let tiles =
      Mapping.tile ~va:r.Persist.va ~pa:r.Persist.pa ~bytes:r.Persist.bytes
        ~floor:Bg_hw.Page_size.P1m
    in
    List.iter
      (fun core_id ->
        let tlb = (Chip.core t.chip core_id).Chip.tlb in
        List.iter
          (fun (page, va, pa) ->
            ignore (Tlb.install tlb { Tlb.vaddr = va; paddr = pa; size = page; perm = Tlb.perm_rwx }))
          tiles)
      th.proc.cores;
    ret (Sysreq.R_int r.Persist.va)

and handle_clone t (th : thread) ~flags ~parent_tid_addr ~child_tid_addr ~entry ret =
  (* glibc's NPTL passes one fixed flag set; CNK validates against it
     and rejects anything else (§IV.B.1). *)
  if flags <> Sysreq.nptl_clone_flags then ret (Sysreq.R_err Errno.EINVAL)
  else begin
      let p = th.proc in
      let limit = p.job.Job.threads_per_core in
      let load core_id =
        List.length (List.filter (fun x -> x.core_id = core_id && x.state <> Zombie) p.threads)
      in
      (* SSVIII: cores designated with this process as their remote may host
         at most one of its pthreads, after the core's own threads *)
      let remote_candidates =
        Array.to_list t.cores
        |> List.filter_map (fun c ->
               if c.remote_pid = Some p.pid && not (List.mem c.id p.cores) && load c.id < 1
               then Some c.id
               else None)
      in
      let candidates = List.filter (fun c -> load c < limit) p.cores @ remote_candidates in
      match candidates with
      | [] -> ret (Sysreq.R_err Errno.EAGAIN)
      | _ ->
        let core_id =
          List.fold_left
            (fun best c -> if load c < load best then c else best)
            (List.hd candidates) (List.tl candidates)
        in
        let tid = t.next_tid in
        t.next_tid <- tid + 1;
        let child =
          {
            tid;
            proc = p;
            core_id;
            is_main = false;
            state = Ready;
            resume = None;
            clear_child_tid = (if child_tid_addr <> 0 then Some child_tid_addr else None);
            pending_sigs = [];
            guard = None;
            guard_slot = None;
            futex_eintr = false;
          }
        in
        Hashtbl.add t.threads tid child;
        p.threads <- child :: p.threads;
        (* The last mprotect before clone defines the child's stack guard. *)
        (match Mmap_tracker.last_mprotect p.tracker with
        | Some (lo, len) -> program_guard t child lo (lo + len)
        | None -> ());
        (* CLONE_PARENT_SETTID / CLONE_CHILD_SETTID: the kernel publishes
           the tid in both words before the child can run or exit, so a
           joiner never sees a stale zero-then-set window. *)
        if parent_tid_addr <> 0 then (try write_word t th parent_tid_addr tid with Fault _ -> ());
        if child_tid_addr <> 0 then (try write_word t th child_tid_addr tid with Fault _ -> ());
        child.resume <- Some (fun () -> step_thread t child (Coro.start entry));
        emit t "cnk.clone" tid;
        make_ready t child;
        ret (Sysreq.R_int tid)
  end

and handle_tgkill t (_th : thread) tid signo ret =
  match Hashtbl.find_opt t.threads tid with
  | None -> ret (Sysreq.R_err Errno.ESRCH)
  | Some target when target.state = Zombie -> ret (Sysreq.R_err Errno.ESRCH)
  | Some target ->
    target.pending_sigs <- target.pending_sigs @ [ signo ];
    (* A signal interrupts a futex wait with EINTR, as Linux does. *)
    if target.state = Blocked && Futex.remove t.futex ~tid then begin
      target.futex_eintr <- true;
      make_ready t target
    end;
    ret Sysreq.R_unit

and function_ship t (th : thread) req ret =
  if (cio_config t).Reliable.enabled then function_ship_reliable t th req ret
  else begin
    let hdr = { Bg_cio.Proto.rank = t.rank; pid = th.proc.pid; tid = th.tid } in
    let data = Bg_cio.Proto.encode_request hdr req in
    (* Causal, legacy transport: bare Proto bytes have no context field,
       so the context rides the reply closure instead of the wire. *)
    let q = causal_mint t ~cat:"cio" ~name:"ship.request" ~core:th.core_id in
    let ret =
      if q = Causal.none then ret
      else
        fun reply ->
          let r = causal_mint t ~cat:"cio" ~name:"reply.deliver" ~core:th.core_id in
          Causal.link (causal t) Causal.Request_reply ~src:q ~dst:r;
          ret reply
    in
    Hashtbl.replace t.io_pending th.tid ret;
    emit t "cnk.fship" th.tid;
    let o = obs t in
    Obs.incr o ~rank:t.rank ~subsystem:"cio" ~name:"ship_requests" ();
    Obs.incr o ~rank:t.rank ~subsystem:"cio" ~name:"ship_bytes" ~by:(Bytes.length data) ();
    (* Round-trip breakdown, part 1: request marshalling is instantaneous in
       sim time, so the first shipped leg is the collective-network transit
       up to the I/O node; CIOD itself records service and reply legs. *)
    let h =
      Obs.span_begin o ~cat:"cio" ~name:"transit_request" ~rank:t.rank ~core:th.core_id
        ~now:(Sim.now (sim t))
    in
    (* The thread keeps its core and spins until the reply (§VI.C): no
       context switch happens during an I/O system call. *)
    Bg_hw.Collective_net.to_io_node t.machine.Machine.collective ~cn:t.rank
      ~payload:data ~on_arrival:(fun ~payload ~arrival_cycle:_ ->
        Obs.span_end o h ~now:(Sim.now (sim t));
        Bg_cio.Ciod.submit t.ciod payload)
  end

(* Reliable mode: the request is CRC-framed with a per-thread sequence
   number, retransmitted on timeout with exponential backoff, and fails
   the syscall with EIO (plus a RAS event) once the retry budget is gone.
   The thread still spins on its core throughout — retries cost wall-clock
   cycles, not context switches. *)
and function_ship_reliable t (th : thread) req ret =
  let cfg = cio_config t in
  let hdr = { Bg_cio.Proto.rank = t.rank; pid = th.proc.pid; tid = th.tid } in
  let payload = Bg_cio.Proto.encode_request hdr req in
  let seq = Option.value (Hashtbl.find_opt t.io_seq th.tid) ~default:0 in
  Hashtbl.replace t.io_seq th.tid (seq + 1);
  (* Causal: the request context is baked into the encoded frame, and
     retransmission resends [io_frame] byte-for-byte — so every copy of
     this request carries the SAME context, and CIOD records one
     request->reply edge no matter how many copies arrive. *)
  let q = causal_mint t ~cat:"cio" ~name:"ship.request" ~core:th.core_id in
  let frame =
    Frame.encode
      { Frame.kind = Frame.Request; rank = t.rank; pid = th.proc.pid; tid = th.tid; seq;
        ctx = q; payload }
  in
  let inf =
    {
      io_ret = ret;
      io_seq = seq;
      io_frame = frame;
      io_pid = th.proc.pid;
      io_core = th.core_id;
      io_attempts = 0;
      io_timer = None;
    }
  in
  Hashtbl.replace t.io_inflight th.tid inf;
  emit t "cnk.fship" th.tid;
  let o = obs t in
  Obs.incr o ~rank:t.rank ~subsystem:"cio" ~name:"ship_requests" ();
  Obs.incr o ~rank:t.rank ~subsystem:"cio" ~name:"ship_bytes" ~by:(Bytes.length frame) ();
  let rec send () =
    send_frame_up t ~core:th.core_id inf.io_frame;
    arm ()
  and arm () =
    let delay = Reliable.rto cfg ~attempt:inf.io_attempts in
    inf.io_timer <- Some (Sim.schedule_in (sim t) delay on_timeout)
  and on_timeout () =
    inf.io_timer <- None;
    match Hashtbl.find_opt t.io_inflight th.tid with
    | Some i when i == inf ->
      if inf.io_attempts >= cfg.Reliable.retry_budget then begin
        Hashtbl.remove t.io_inflight th.tid;
        cio_count t "eio";
        emit t "cnk.fship_eio" th.tid;
        ras t Machine.Ras_error
          (Printf.sprintf "CIO rank=%d tid=%d seq=%d: retry budget exhausted, EIO"
             t.rank th.tid seq);
        ret (Sysreq.R_err Errno.EIO)
      end
      else begin
        inf.io_attempts <- inf.io_attempts + 1;
        cio_count t "retransmits";
        emit t "cnk.fship_retry" th.tid;
        send ()
      end
    | _ -> ()
  in
  send ()

(* --- boot / reset ------------------------------------------------------ *)

let boot t ~on_ready =
  ignore
    (Sim.schedule_in (sim t) boot_cycles (fun () ->
         t.booted <- true;
         emit t "cnk.boot" (Chip.reset_count t.chip);
         on_ready ()))

let destroy_job t =
  Hashtbl.iter (fun _ th -> th.state <- Zombie) t.threads;
  Hashtbl.reset t.threads;
  Hashtbl.reset t.procs;
  Hashtbl.reset t.io_pending;
  Hashtbl.iter (fun _ inf -> cancel_io_timer t inf) t.io_inflight;
  Hashtbl.reset t.io_inflight;
  Hashtbl.reset t.io_seq;
  Array.iter
    (fun c ->
      c.current <- None;
      Queue.clear c.ready;
      c.pending_penalty <- 0;
      c.pending_ipi <- 0;
      c.next_dac_slot <- 0;
      c.remote_pid <- None;
      c.mapped_pid <- None)
    t.cores;
  t.job_active <- false

let prepare_and_reset t ~reproducible ~on_ready =
  destroy_job t;
  t.booted <- false;
  ignore
    (Sim.schedule_in (sim t) prepare_reset_cycles (fun () ->
         (* All cores rendezvoused in boot SRAM; caches flushed to DDR. *)
         if reproducible then Dram.enter_self_refresh (Chip.dram t.chip);
         Chip.reset t.chip;
         emit t "cnk.reset" (Chip.reset_count t.chip);
         let restart = if reproducible then reproducible_restart_cycles else boot_cycles in
         ignore
           (Sim.schedule_in (sim t) restart (fun () ->
                if reproducible then Dram.exit_self_refresh (Chip.dram t.chip);
                t.booted <- true;
                emit t "cnk.boot" (Chip.reset_count t.chip);
                on_ready ()))))

(* --- job launch -------------------------------------------------------- *)

let core_sets mode total =
  match (mode : Job.mode) with
  | Job.Smp -> [ List.init total (fun i -> i) ]
  | Job.Dual -> [ [ 0; 1 ]; [ 2; 3 ] ]
  | Job.Vn -> List.init total (fun i -> [ i ])

(* Deterministic pseudo-contents standing in for the program image. *)
let image_pattern (image : Image.t) len =
  let b = Bytes.create len in
  let seed = Rng.create (Rng.seed_of_string image.Image.name) in
  for i = 0 to len - 1 do
    Bytes.set_uint8 b i (Rng.int seed 256)
  done;
  b

let launch t (job : Job.t) =
  if not t.booted then Error "node not booted"
  else if t.job_active then Error "a job is already active"
  else begin
    let nprocs = Job.processes_per_node job.Job.mode in
    let config =
      {
        t.mapping_config with
        Mapping.nprocs;
        text_bytes = job.Job.image.Image.text_bytes;
        data_bytes = job.Job.image.Image.data_bytes;
        shared_bytes = job.Job.shared_bytes;
      }
    in
    match Mapping.compute config with
    | Error e -> Error e
    | Ok mapping ->
      t.job_active <- true;
      t.exit_codes <- [];
      let sets = core_sets job.Job.mode (Array.length t.cores) in
      Bg_cio.Ciod.job_start t.ciod ~rank:t.rank
        ~pids:(List.init nprocs (fun i -> t.next_pid + i));
      List.iteri
        (fun i cores ->
          let pm = mapping.Mapping.procs.(i) in
          let pid = t.next_pid in
          t.next_pid <- pid + 1;
          let tracker =
            Mmap_tracker.create ~base:pm.Mapping.heap_base
              ~bytes:pm.Mapping.heap_stack_bytes
              ~main_stack_bytes:config.Mapping.main_stack_bytes
          in
          let p =
            {
              pid;
              map = pm;
              tracker;
              cores;
              handlers = Hashtbl.create 4;
              threads = [];
              exited = false;
              exit_code = 0;
              job;
            }
          in
          Hashtbl.replace t.procs pid p;
          (* Install the static TLB entries on every core of the process;
             CNK asserts the budget holds (no evictions, ever). *)
          List.iter
            (fun core_id ->
              let tlb = (Chip.core t.chip core_id).Chip.tlb in
              Tlb.flush tlb;
              List.iter
                (fun e ->
                  match Tlb.install tlb e with
                  | Ok () -> ()
                  | Error msg -> failwith ("CNK static map install failed: " ^ msg))
                (Mapping.tlb_entries pm);
              assert (Tlb.evictions tlb = 0);
              let now = Sim.now (sim t) in
              Obs.span_record (obs t) ~cat:"tlb" ~name:"static_install" ~rank:t.rank
                ~core:core_id ~start:now ~finish:now;
              t.cores.(core_id).mapped_pid <- Some pid)
            cores;
          (* Load the image text so scans and persist tests see real data. *)
          let text = image_pattern job.Job.image (min job.Job.image.Image.text_bytes 4096) in
          write_virtual t ~pid ~addr:Mapping.text_va text;
          (* Main thread on the first core of the set. *)
          let tid = t.next_tid in
          t.next_tid <- tid + 1;
          let main =
            {
              tid;
              proc = p;
              core_id = List.hd cores;
              is_main = true;
              state = Ready;
              resume = None;
              clear_child_tid = None;
              pending_sigs = [];
              guard = None;
              guard_slot = None;
              futex_eintr = false;
            }
          in
          Hashtbl.add t.threads tid main;
          p.threads <- [ main ];
          let lo, hi = main_guard_range p in
          program_guard t main lo hi;
          let entry = job.Job.image.Image.entry in
          main.resume <- Some (fun () -> step_thread t main (Coro.start entry));
          (* Image load over the collective network gates thread start. *)
          let load_cycles =
            Bg_hw.Collective_net.estimate_cycles t.machine.Machine.collective
              ~bytes:job.Job.image.Image.file_bytes
          in
          ignore (Sim.schedule_in (sim t) load_cycles (fun () -> make_ready t main)))
        sets;
      emit t "cnk.launch" nprocs;
      Ok ()
  end

(* L1 parity error (SSV.B): the hardware detects a parity error in a core's
   L1; CNK signals the application on that core so it can recover in place
   instead of falling back to checkpoint/restart (the 2007 Gordon Bell
   usage). Returns false if no thread currently occupies the core. *)
let sigbus = 7

let inject_l1_parity_error t ~core =
  if core < 0 || core >= Array.length t.cores then invalid_arg "inject_l1_parity_error";
  match t.cores.(core).current with
  | Some th when th.state <> Zombie ->
    th.pending_sigs <- th.pending_sigs @ [ sigbus ];
    emit t "cnk.l1_parity" core;
    ras t Machine.Ras_warn (Printf.sprintf "L1 parity error on core %d" core);
    true
  | _ -> false

(* SSVIII extended thread affinity: allow [pid]'s pthreads to also run on
   [core], alternating with the core's own process. The feasibility check
   is the design tension the paper describes: both processes' static maps
   must be swappable within the core's TLB. *)
let designate_remote t ~core ~pid =
  if core < 0 || core >= Array.length t.cores then Error "no such core"
  else
    match Hashtbl.find_opt t.procs pid with
    | None -> Error "no such process"
    | Some p ->
      if List.mem core p.cores then Error "core already belongs to that process"
      else begin
        let capacity = (Chip.params t.chip).Params.tlb_entries in
        let needed = List.length p.map.Mapping.regions in
        if needed > capacity then Error "remote process map exceeds the TLB"
        else begin
          t.cores.(core).remote_pid <- Some pid;
          emit t "cnk.remote_affinity" ((core * 100) + pid);
          Ok ()
        end
      end

let remote_designation t ~core =
  if core < 0 || core >= Array.length t.cores then None else t.cores.(core).remote_pid

(* Forcible job termination from the control system (walltime exceeded,
   operator action). Every live thread dies with code 137 (as a SIGKILL
   would report); completion fires normally so schedulers can proceed. *)
let kill_job t =
  if t.job_active then begin
    let victims = Hashtbl.fold (fun _ th acc -> th :: acc) t.threads [] in
    let victims = List.sort (fun a b -> compare a.tid b.tid) victims in
    List.iter (fun th -> thread_exit t th 137) victims;
    ras t Machine.Ras_warn "job killed by the control system";
    emit t "cnk.job_killed" 0
  end

(* strace-style tracing: capture every syscall with cycle and tid. *)
let set_strace t enabled =
  t.strace <- (if enabled then Some (Buffer.create 256) else None)

let strace_output t =
  match t.strace with Some b -> Buffer.contents b | None -> ""

let add_core_penalty t ~core ~cycles =
  if core < 0 || core >= Array.length t.cores then invalid_arg "Node.add_core_penalty";
  t.cores.(core).pending_penalty <- t.cores.(core).pending_penalty + cycles

let scan_state t =
  let h = Chip.scan_state t.chip in
  let h = Fnv.add_int h t.syscalls in
  let h = Fnv.add_int h t.ipis in
  let h = Fnv.add_int h (live_threads t) in
  Fnv.add_int h (Sim.now (sim t))

(* Snapshot capture. Thread resume closures and in-flight I/O
   continuations cannot be serialized; their *shapes* (which tids hold
   one, pending timers, sequence numbers) are captured so a replayed run
   can be byte-verified against this state. *)
let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  let w_b v = Buffer.add_uint8 b (if v then 1 else 0) in
  let w_opt = function
    | None -> Buffer.add_uint8 b 0
    | Some v ->
      Buffer.add_uint8 b 1;
      w_i v
  in
  let w_s s =
    w_i (String.length s);
    Buffer.add_string b s
  in
  w_i t.rank;
  w_b t.booted;
  w_b t.job_active;
  w_b t.io_enabled;
  w_i t.next_pid;
  w_i t.next_tid;
  w_i t.syscalls;
  w_i t.ipis;
  let faults = List.rev t.faults in
  w_i (List.length faults);
  List.iter
    (fun (code, msg) ->
      w_i code;
      w_s msg)
    faults;
  let codes = List.rev t.exit_codes in
  w_i (List.length codes);
  List.iter
    (fun (pid, code) ->
      w_i pid;
      w_i code)
    codes;
  let procs =
    Hashtbl.fold (fun pid p acc -> (pid, p) :: acc) t.procs []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  w_i (List.length procs);
  List.iter
    (fun (pid, p) ->
      w_i pid;
      w_b p.exited;
      w_i p.exit_code;
      w_i (List.length p.threads);
      w_i (List.length p.cores);
      List.iter w_i p.cores;
      Mmap_tracker.capture p.tracker b)
    procs;
  let threads =
    Hashtbl.fold (fun tid th acc -> (tid, th) :: acc) t.threads []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  w_i (List.length threads);
  List.iter
    (fun (tid, th) ->
      w_i tid;
      w_i th.proc.pid;
      w_i th.core_id;
      w_b th.is_main;
      w_i
        (match th.state with Running -> 0 | Ready -> 1 | Blocked -> 2 | Zombie -> 3);
      w_b (th.resume <> None);
      w_opt th.clear_child_tid;
      w_i (List.length th.pending_sigs);
      List.iter w_i th.pending_sigs;
      (match th.guard with
      | None -> Buffer.add_uint8 b 0
      | Some (lo, hi) ->
        Buffer.add_uint8 b 1;
        w_i lo;
        w_i hi);
      w_opt th.guard_slot;
      w_b th.futex_eintr)
    threads;
  Array.iter
    (fun c ->
      w_opt (Option.map (fun th -> th.tid) c.current);
      w_i (Queue.length c.ready);
      Queue.iter (fun th -> w_i th.tid) c.ready;
      w_i c.pending_penalty;
      w_i c.pending_ipi;
      w_i c.next_dac_slot;
      w_opt c.remote_pid;
      w_opt c.mapped_pid)
    t.cores;
  let sorted_keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare in
  let pending = sorted_keys t.io_pending in
  w_i (List.length pending);
  List.iter w_i pending;
  let inflight =
    Hashtbl.fold (fun tid inf acc -> (tid, inf) :: acc) t.io_inflight []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  w_i (List.length inflight);
  List.iter
    (fun (tid, (inf : io_inflight)) ->
      w_i tid;
      w_i inf.io_seq;
      w_i inf.io_pid;
      w_i inf.io_core;
      w_i inf.io_attempts;
      w_b (inf.io_timer <> None);
      Buffer.add_int64_le b (Fnv.add_bytes Fnv.empty inf.io_frame))
    inflight;
  let seqs =
    Hashtbl.fold (fun tid s acc -> (tid, s) :: acc) t.io_seq [] |> List.sort compare
  in
  w_i (List.length seqs);
  List.iter
    (fun (tid, s) ->
      w_i tid;
      w_i s)
    seqs;
  Futex.capture t.futex b;
  let regions = Persist.regions t.persist in
  w_i (List.length regions);
  List.iter
    (fun (r : Persist.region) ->
      w_s r.Persist.name;
      w_i r.Persist.va;
      w_i r.Persist.pa;
      w_i r.Persist.bytes;
      w_s r.Persist.owner)
    regions;
  Chip.capture t.chip b
