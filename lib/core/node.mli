(** One CNK instance: the compute-node kernel (the paper's contribution).

    Everything the paper describes CNK doing is implemented here against
    the simulated chip:

    - {b Static memory} (§IV.C): {!Mapping} is computed at launch, TLB
      entries are installed once per core, and no translation ever misses.
    - {b Scheduling} (§VI.C): non-preemptive, fixed core affinity, a small
      fixed number of threads per core; a thread leaves its core only by
      blocking on a futex, yielding, or exiting. Function-shipped I/O does
      {e not} yield the core.
    - {b NPTL-subset syscalls} (§IV.B): clone (validated against glibc's
      fixed flag set), set_tid_address, futex, sigaction, uname (reporting
      2.6.19.2), brk, mmap/munmap/mprotect.
    - {b Guard pages} (§IV.C, Fig 4): DAC registers watch the range above
      the program break for the main thread, and the last-mprotect range
      for cloned threads; heap extension by another core repositions the
      main guard via an inter-processor interrupt.
    - {b Function-shipped I/O} (§IV.A): file syscalls marshal into
      {!Bg_cio.Proto} messages, cross the collective network to CIOD, and
      the reply resumes the caller; the core busy-waits (no context switch
      during a system call).
    - {b Persistent memory} (§IV.D) via {!Persist}.
    - {b Reproducible boot/reset} (§III): full-reset preparation rendezvous,
      DDR self-refresh, and restart that skips the service node.

    All durations are in simulated cycles; with a fixed seed every public
    observable (trace digest, completion cycle, memory contents) is
    bit-reproducible. *)

type t

val create :
  ?mapping_config:Mapping.config ->
  Machine.t ->
  rank:int ->
  ciod:Bg_cio.Ciod.t ->
  unit ->
  t
(** Build the kernel for node [rank] and register its reply-delivery path
    with [ciod]. [mapping_config] overrides memory-layout defaults (DRAM
    size is always taken from the chip). *)

val machine : t -> Machine.t
val rank : t -> int
val chip : t -> Bg_hw.Chip.t

(** {1 Boot} *)

val boot_cycles : int
(** Cold-boot budget (~82 us at 850 MHz): the "CNK boots in a couple of
    hours at 10 Hz VHDL speed" constant of §III. *)

val reproducible_restart_cycles : int
(** Restart skipping service-node interaction (§III). *)

val boot : t -> on_ready:(unit -> unit) -> unit
(** Cold boot: schedules [on_ready] after {!boot_cycles}. *)

val booted : t -> bool

val prepare_and_reset : t -> reproducible:bool -> on_ready:(unit -> unit) -> unit
(** The §III sequence: rendezvous all cores in boot SRAM, flush caches,
    put DDR in self-refresh, toggle reset, restart. In reproducible mode
    the restart skips the service node and DRAM contents survive; [on_ready]
    fires when the kernel is back up. Any running job is destroyed. *)

(** {1 Jobs} *)

val launch : t -> Job.t -> (unit, string) result
(** Compute the static map, install TLB entries, load the image, create
    one process per the job's mode with its main thread on the process's
    first core, and start everything. Fails if a job is active or the map
    cannot be built. *)

val job_active : t -> bool
val on_job_complete : t -> (unit -> unit) -> unit
(** [f] fires (once) when every process of the current job has exited. *)

(** {1 Introspection (tests, benches, bringup tooling)} *)

val process_count : t -> int
val live_threads : t -> int
val syscall_count : t -> int
val ipi_count : t -> int
val faults : t -> (int * string) list
(** (tid, reason) for every thread killed by a fault (e.g. guard hit with
    no SIGSEGV handler). *)

val exit_codes : t -> (int * int) list
(** (pid, status) of exited processes of the current/last job. *)

val process_map : t -> pid:int -> Mapping.process_map option
val persist : t -> Persist.t

val read_virtual : t -> pid:int -> addr:int -> len:int -> bytes
(** Debug port: read through a process's static map (no DAC, no timing). *)

val write_virtual : t -> pid:int -> addr:int -> bytes -> unit

val set_io_enabled : t -> bool -> unit
(** Bringup control flag: with I/O off, file syscalls fail with [ENOSYS]
    instead of touching the collective network (§III: running with major
    units absent). *)

val kill_job : t -> unit
(** Control-system kill: every live thread of the current job exits with
    status 137 and the job completes immediately. No-op when idle. *)

val set_strace : t -> bool -> unit
(** Capture an strace-style log of every syscall (cycle, tid, rendered
    request). Off by default; a debugging aid, not part of the model. *)

val strace_output : t -> string

val scan_state : t -> Bg_engine.Fnv.t
(** Architectural state digest for logic scans: chip state + kernel
    counters. *)

val inject_l1_parity_error : t -> core:int -> bool
(** Hardware L1 parity error on [core] (paper §V.B): the occupying thread
    receives SIGBUS at its next resumption — with a handler registered the
    application recovers in place (the Gordon Bell mechanism); without
    one the thread dies. Returns [false] when the core is idle. *)

(** {1 Extended thread affinity (paper §VIII)} *)

val designate_remote : t -> core:int -> pid:int -> (unit, string) result
(** Allow [pid]'s pthreads to run on [core] (which belongs to another
    process), alternating with the core's own threads — the restricted
    extension the paper chose over a fully general affinity model. At most
    one remote pthread occupies the core at a time, and every switch
    between the two processes swaps the core's static TLB map (a real,
    visible cost — the tension §VIII describes). Fails if the core already
    belongs to [pid] or the remote map cannot fit the TLB. *)

val remote_designation : t -> core:int -> int option

val add_core_penalty : t -> core:int -> cycles:int -> unit
(** Charge interference cycles to a core, paid at its next consume. CNK
    itself never does this; it is the hook {!Bg_noise.Injection} uses for
    Ferreira-style kernel-level noise-injection studies (§V.A). *)

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state, little-endian, into [b]. Hashtable
    contents are sorted before writing; closures are captured by shape
    only (presence, tids, sequence numbers). *)
