open Bg_engine

type t = {
  machine : Machine.t;
  nodes : Node.t array;
  ciods : Bg_cio.Ciod.t array;  (* indexed by io node *)
  fs : Bg_cio.Fs.t;
  nodes_per_io_node : int;
}

let create ?params ?seed ?mapping_config ?nodes_per_io_node ?cio ~dims () =
  let machine = Machine.create ?params ?seed ?nodes_per_io_node ~dims () in
  let n = Machine.nodes machine in
  let nodes_per_io_node =
    match nodes_per_io_node with Some k -> k | None -> if n <= 64 then n else 64
  in
  let io_nodes = (n + nodes_per_io_node - 1) / nodes_per_io_node in
  let fs = Bg_cio.Fs.create () in
  let ciods =
    Array.init io_nodes (fun io_node ->
        Bg_cio.Ciod.create machine ~fs ?config:cio ~io_node ())
  in
  let nodes =
    Array.init n (fun rank ->
        Node.create ?mapping_config machine ~rank ~ciod:ciods.(rank / nodes_per_io_node) ())
  in
  { machine; nodes; ciods; fs; nodes_per_io_node }

let machine t = t.machine
let sim t = t.machine.Machine.sim
let nodes t = t.nodes
let node t i = t.nodes.(i)
let fs t = t.fs
let ciod_for t ~rank = t.ciods.(rank / t.nodes_per_io_node)
let ciod t ~io_node = t.ciods.(io_node)
let io_node_count t = Array.length t.ciods

let pset_ranks t ~io_node =
  let n = Array.length t.nodes in
  let lo = io_node * t.nodes_per_io_node in
  let hi = min n (lo + t.nodes_per_io_node) in
  List.init (hi - lo) (fun i -> lo + i)

let boot_all t =
  let remaining = ref (Array.length t.nodes) in
  Array.iter (fun n -> Node.boot n ~on_ready:(fun () -> decr remaining)) t.nodes;
  let rec pump () =
    if !remaining > 0 then
      if Sim.step (sim t) then pump ()
      else failwith "Cluster.boot_all: simulation drained before boot finished"
  in
  pump ()

let launch_all t ?ranks job =
  let ranks =
    match ranks with Some r -> r | None -> List.init (Array.length t.nodes) Fun.id
  in
  List.iter
    (fun rank ->
      match Node.launch t.nodes.(rank) job with
      | Ok () -> ()
      | Error e -> failwith (Printf.sprintf "launch on rank %d failed: %s" rank e))
    ranks

let run_until_quiet t = ignore (Sim.run (sim t))

let run_job t ?ranks job =
  let ranks =
    match ranks with Some r -> r | None -> List.init (Array.length t.nodes) Fun.id
  in
  let remaining = ref (List.length ranks) in
  List.iter (fun rank -> Node.on_job_complete t.nodes.(rank) (fun () -> decr remaining)) ranks;
  launch_all t ~ranks job;
  let rec pump () =
    if !remaining > 0 then
      if Sim.step (sim t) then pump ()
      else
        failwith
          (Printf.sprintf "Cluster.run_job: sim drained with %d node(s) unfinished"
             !remaining)
  in
  pump ()
