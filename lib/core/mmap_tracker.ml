let grain = 1024 * 1024 (* carve mmaps at 1 MB granularity *)

let dirty_grain = 4096 (* dirty tracking works at page granularity *)

type t = {
  base : int;
  limit : int;           (* exclusive top of the whole range *)
  stack_lo : int;        (* main stack occupies [stack_lo, limit) *)
  mutable break_ : int;
  (* allocated mmap ranges, disjoint, sorted by address *)
  mutable mapped : (int * int) list;  (* (addr, len) *)
  mutable last_mprotect : (int * int) option;
  dirty : (int, unit) Hashtbl.t;      (* dirty pages, keyed by page index *)
}

let create ~base ~bytes ~main_stack_bytes =
  if bytes <= main_stack_bytes then invalid_arg "Mmap_tracker.create";
  let limit = base + bytes in
  {
    base;
    limit;
    stack_lo = limit - main_stack_bytes;
    break_ = base;
    mapped = [];
    last_mprotect = None;
    dirty = Hashtbl.create 64;
  }

let heap_end t = t.break_

let lowest_obstacle t =
  match t.mapped with (addr, _) :: _ -> min addr t.stack_lo | [] -> t.stack_lo

let brk t = function
  | None -> Ok t.break_
  | Some addr ->
    if addr < t.base then Error Errno.EINVAL
    else if addr > lowest_obstacle t then Error Errno.ENOMEM
    else begin
      t.break_ <- addr;
      Ok addr
    end

let round_up v = (v + grain - 1) / grain * grain

(* Free gaps between the break and the stack, excluding mapped ranges,
   highest first. *)
let gaps t =
  let ceiling = t.stack_lo in
  let floor = round_up t.break_ in
  let rec walk cursor acc = function
    | [] -> if cursor < ceiling then (cursor, ceiling - cursor) :: acc else acc
    | (addr, len) :: rest ->
      let acc = if cursor < addr then (cursor, addr - cursor) :: acc else acc in
      walk (max cursor (addr + len)) acc rest
  in
  (* mapped is sorted ascending; result accumulates so the head is the
     highest gap. *)
  walk floor [] t.mapped

let insert_sorted t addr len =
  let rec go = function
    | [] -> [ (addr, len) ]
    | (a, l) :: rest when a < addr -> (a, l) :: go rest
    | rest -> (addr, len) :: rest
  in
  t.mapped <- go t.mapped

let mmap t ~length =
  if length <= 0 then Error Errno.EINVAL
  else begin
    let need = round_up length in
    match List.find_opt (fun (_, glen) -> glen >= need) (gaps t) with
    | None -> Error Errno.ENOMEM
    | Some (gaddr, glen) ->
      (* take the top of the gap, Linux-style top-down *)
      let addr = gaddr + glen - need in
      insert_sorted t addr need;
      Ok addr
  end

let munmap t ~addr ~length =
  if length <= 0 || addr < t.base then Error Errno.EINVAL
  else begin
    let lo = addr and hi = addr + round_up length in
    (* Every byte of [lo, hi) must be inside some mapped range. *)
    let covered =
      let rec check cursor = function
        | _ when cursor >= hi -> true
        | [] -> false
        | (a, l) :: rest ->
          if cursor < a then false
          else if cursor < a + l then check (max cursor (a + l)) rest
          else check cursor rest
      in
      check lo (List.filter (fun (a, l) -> a + l > lo) t.mapped)
    in
    if not covered then Error Errno.EINVAL
    else begin
      let remains =
        List.concat_map
          (fun (a, l) ->
            let keep_lo = (a, min l (max 0 (lo - a))) in
            let keep_hi = (max a (min (a + l) hi), max 0 (a + l - hi)) in
            List.filter (fun (_, len) -> len > 0) [ keep_lo; keep_hi ])
          t.mapped
      in
      t.mapped <- List.sort compare remains;
      Ok ()
    end
  end

let is_mapped t ~addr ~length =
  let hi = addr + length in
  List.exists (fun (a, l) -> addr >= a && hi <= a + l) t.mapped

let record_mprotect t ~addr ~length = t.last_mprotect <- Some (addr, length)
let last_mprotect t = t.last_mprotect
let main_stack_lo t = t.stack_lo
let main_stack_hi t = t.limit
let mapped_bytes t = List.fold_left (fun acc (_, l) -> acc + l) 0 t.mapped

let free_bytes t = List.fold_left (fun acc (_, l) -> acc + l) 0 (gaps t)

(* -- dirty-page tracking (incremental checkpoints) ---------------------- *)

let mark_dirty t ~addr ~len =
  if len > 0 then begin
    (* clamp to the tracked range; writes elsewhere (text, shared segment,
       persistent regions) are not checkpoint state *)
    let lo = max addr t.base and hi = min (addr + len) t.limit in
    if lo < hi then
      for page = lo / dirty_grain to (hi - 1) / dirty_grain do
        Hashtbl.replace t.dirty page ()
      done
  end

let clear_dirty t = Hashtbl.reset t.dirty

let dirty_ranges t =
  let pages = Hashtbl.fold (fun page () acc -> page :: acc) t.dirty [] in
  let pages = List.sort_uniq compare pages in
  (* coalesce runs of adjacent pages into (addr, len) ranges *)
  let rec coalesce acc = function
    | [] -> List.rev acc
    | p :: rest ->
      let rec run last = function
        | q :: qs when q = last + 1 -> run q qs
        | qs -> (last, qs)
      in
      let last, rest = run p rest in
      coalesce ((p * dirty_grain, (last - p + 1) * dirty_grain) :: acc) rest
  in
  coalesce [] pages

let dirty_bytes t = Hashtbl.length t.dirty * dirty_grain

let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  w_i t.base;
  w_i t.limit;
  w_i t.stack_lo;
  w_i t.break_;
  w_i (List.length t.mapped);
  List.iter
    (fun (addr, len) ->
      w_i addr;
      w_i len)
    t.mapped;
  (match t.last_mprotect with
  | None -> Buffer.add_uint8 b 0
  | Some (addr, len) ->
    Buffer.add_uint8 b 1;
    w_i addr;
    w_i len);
  let ranges = dirty_ranges t in
  w_i (List.length ranges);
  List.iter
    (fun (addr, len) ->
      w_i addr;
      w_i len)
    ranges
