type t = { queues : (int * int, int list ref) Hashtbl.t }
(* (pid, addr) -> waiting tids, oldest first *)

let create () = { queues = Hashtbl.create 32 }

let queue t key =
  match Hashtbl.find_opt t.queues key with
  | Some q -> q
  | None ->
    let q = ref [] in
    Hashtbl.add t.queues key q;
    q

let enqueue t ~pid ~addr ~tid =
  let q = queue t (pid, addr) in
  q := !q @ [ tid ]

let wake t ~pid ~addr ~count =
  match Hashtbl.find_opt t.queues (pid, addr) with
  | None -> []
  | Some q ->
    let rec take n = function
      | [] -> ([], [])
      | rest when n = 0 -> ([], rest)
      | x :: rest ->
        let woken, left = take (n - 1) rest in
        (x :: woken, left)
    in
    let woken, left = take count !q in
    q := left;
    if left = [] then Hashtbl.remove t.queues (pid, addr);
    woken

let remove t ~tid =
  let found = ref false in
  Hashtbl.iter
    (fun _ q ->
      if List.mem tid !q then begin
        found := true;
        q := List.filter (fun x -> x <> tid) !q
      end)
    t.queues;
  !found

let waiting t ~pid ~addr =
  match Hashtbl.find_opt t.queues (pid, addr) with Some q -> List.length !q | None -> 0

let total_waiting t = Hashtbl.fold (fun _ q acc -> acc + List.length !q) t.queues 0

let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  let queues =
    Hashtbl.fold (fun k q acc -> (k, !q) :: acc) t.queues [] |> List.sort compare
  in
  w_i (List.length queues);
  List.iter
    (fun ((pid, addr), tids) ->
      w_i pid;
      w_i addr;
      w_i (List.length tids);
      List.iter w_i tids)
    queues
