(** Address tracking for the heap/stack range (paper §IV.C).

    Because the static map already backs the whole range with physical
    memory, CNK's mmap "merely provides free addresses to the application":
    no faults, no page-table work. This module is that bookkeeping — brk
    grows from the bottom, the main stack occupies the top, anonymous mmaps
    are carved from the space between (top-down, as Linux does), and freed
    ranges coalesce with their neighbours. *)

type t

val create : base:int -> bytes:int -> main_stack_bytes:int -> t

val brk : t -> int option -> (int, Errno.t) result
(** [brk t None] queries the break; [brk t (Some addr)] moves it. Fails
    with [ENOMEM] when the new break would run into an mmap allocation or
    the stack. Shrinking below the base fails with [EINVAL]. *)

val heap_end : t -> int
(** Current program break. *)

val mmap : t -> length:int -> (int, Errno.t) result
(** Allocate an address range (1 MB-granular internally to stay friendly to
    the page map). Highest available range wins. *)

val munmap : t -> addr:int -> length:int -> (unit, Errno.t) result
(** Free a previously mapped range (whole or part); adjacent free space
    coalesces. [EINVAL] if any byte of the range is not currently mapped. *)

val is_mapped : t -> addr:int -> length:int -> bool
(** Whole range currently inside an mmap allocation? *)

val record_mprotect : t -> addr:int -> length:int -> unit
val last_mprotect : t -> (int * int) option
(** CNK remembers the most recent mprotect range and assumes it is the
    guard area for the next clone (paper §IV.C, Fig 4). *)

val main_stack_lo : t -> int
(** Lowest legal main-stack address; the guard range sits just below. *)

val main_stack_hi : t -> int

val mapped_bytes : t -> int
val free_bytes : t -> int
(** Bytes available between the break and the lowest allocation. *)

(** {2 Dirty-page tracking}

    CNK has no demand paging, but the kernel still sees every store (the
    simulator routes them through the TLB), so it can keep a cheap
    dirty-page bitmap over the heap/stack range. The resilience layer uses
    it for incremental checkpoints: only pages written since the previous
    checkpoint need to be shipped. *)

val mark_dirty : t -> addr:int -> len:int -> unit
(** Record a store to [addr, addr+len). Clamped to the tracked range;
    stores outside it (text, shared segment, persistent regions) are
    ignored. Granularity is 4 KiB pages. *)

val dirty_ranges : t -> (int * int) list
(** Coalesced [(addr, len)] list of pages written since the last
    {!clear_dirty}, ascending by address. Deterministic. *)

val clear_dirty : t -> unit
(** Forget all dirty state (called after a checkpoint commits). *)

val dirty_bytes : t -> int
(** Number of dirty bytes ([4 KiB] × dirty page count). *)

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state, little-endian, into [b]. Hashtable
    contents are sorted before writing; closures are captured by shape
    only (presence, tids, sequence numbers). *)
