(** The control system as a service: an open-arrival job stream driven
    through the scheduler under a pluggable strategy.

    {!create} builds a scheduler on a booted cluster, installs the
    requested {!Strategy}, and indexes a {!Workload} — every spec keeps
    its tenant, class and communication profile. {!run} replays the
    stream: each arrival burst is offered through the admission-
    controlled front door ({!Bg_control.Scheduler.offer_factory}) with
    the tenant/gang/estimate metadata the strategies and the [sched.*]
    SLO series need, then the simulation is pumped until the queue
    drains. Communication-heavy jobs launch real torus transfer waves
    between their member ranks, so the congestion the {!Placer} scores
    is traffic this very workload created.

    Everything — arrivals, placement, faults injected by the caller
    mid-stream — runs inside the one deterministic simulation, so a
    whole sweep is a pure function of (seed, workload, strategy). *)

type t

val create :
  ?restart_limit:int ->
  ?comm_bytes:int ->
  ?comm_waves:int ->
  kind:Strategy.kind ->
  Cnk.Cluster.t ->
  Workload.spec list ->
  t
(** [restart_limit] (default 1) is the requeue budget batch jobs get
    against node deaths; interactive and filler jobs get none.
    [comm_bytes] (default 4096) and [comm_waves] (default 2) size the
    transfer waves a communication-heavy job sends between consecutive
    member-rank pairs at launch. *)

val scheduler : t -> Bg_control.Scheduler.t
(** Exposed so resilience policies and injectors can attach before
    {!run}. *)

val strategy : t -> Strategy.t

val run : t -> unit
(** Schedule every arrival (offset past the current cycle), kick, and
    pump the simulation until all admitted jobs reach a terminal state.
    Raises [Failure] if jobs are stuck with an empty event queue. *)

val offered : t -> int
(** Arrivals presented to the front door so far. *)

val refused : t -> int
(** Arrivals bounced by closed admission. *)

val spec_of_job : t -> Bg_control.Scheduler.job_id -> Workload.spec option
val jobs : t -> (Bg_control.Scheduler.job_id * Workload.spec) list
(** Admitted jobs in ascending job-id order. *)

val makespan : t -> Bg_engine.Cycles.t
(** Cycles from the start of {!run} to the last event pumped. *)

val tenants_of : Workload.spec list -> (int * string * int) list
(** Distinct [(id, name, weight)] triples, ascending id — the shape
    {!Slo.collect} wants. *)

val placeable_nodes : dims:int * int * int -> int -> int
(** Largest [n' <= nodes] with an axis-aligned factorization fitting
    [dims] — how an unplaceable request (say 7 nodes on a 4x4x4 torus)
    is rounded down at submission. *)
