(** Torus-aware partition placement.

    The A8 congestion result says torus links are the scarce resource:
    a communication-heavy job spread across a long thin box, or placed
    over links already carrying traffic, pays for every extra hop. This
    placer turns a node count into a concrete (shape, base) choice:

    - {b Shape}: all axis-aligned factorizations of the node count that
      fit the machine, most compact first (minimum surface area — fewest
      boundary links, shortest internal routes).
    - {b Base}: among the free boxes for a shape, the one whose member
      links are least congested, scored from the torus's cumulative
      per-link busy cycles plus a penalty for transfers in flight now.

    Non-communication-heavy jobs skip the scoring (any free box is as
    good as another for pure compute) and take the canonical first fit. *)

val shapes_for : dims:int * int * int -> nodes:int -> (int * int * int) list
(** Every (a, b, c) with [a*b*c = nodes] fitting [dims], most compact
    first (ties: lexicographic). Empty when the count cannot fit. *)

val canonical_shape : dims:int * int * int -> nodes:int -> (int * int * int) option
(** The most compact factorization — what a job submits as its shape. *)

val congestion_score :
  Bg_hw.Torus.t ->
  Bg_control.Partition.t ->
  base:int * int * int ->
  shape:int * int * int ->
  int
(** Sum over the box's member ranks and all six link directions of
    cumulative busy cycles, plus [10_000] per transfer currently in
    flight — lower is quieter. *)

type placement = { shape : int * int * int; base : (int * int * int) option }

val place :
  Bg_hw.Torus.t ->
  Bg_control.Partition.t ->
  nodes:int ->
  comm:bool ->
  placement option
(** Choose where to put a job of [nodes] nodes right now. For [comm]
    jobs: the most compact shape with a free box, at its
    least-congested base (deterministic tie-break: lowest base in rank
    order). For compute-only jobs: the most compact shape that has any
    free box, first-fit base ([base = None] — the allocator's default).
    [None] when nothing fits at the moment (or ever, for impossible
    counts). *)
