(** Pluggable scheduling strategies over the control-system scheduler.

    Each strategy installs itself as the scheduler's dispatch hook
    ({!Bg_control.Scheduler.set_dispatch}) and decides, on every kick,
    which queued jobs to start — all of them placed through the
    torus-aware {!Placer} (communication-heavy jobs get compact,
    congestion-scored boxes).

    - {b FCFS}: strict arrival order; a blocked head blocks the line.
    - {b EASY backfill}: the head job gets a reservation (the {e shadow
      time}, computed from running jobs' walltime bounds in the
      node-count model); later jobs may start out of order only if they
      cannot delay it — they finish before the shadow time, or fit in
      the nodes the reservation leaves spare. The invariant the tests
      pin: the head starts no later than the shadow time recorded when
      it first blocked.
    - {b Gang}: EASY, with gang-tagged bursts (interactive tenants)
      treated as one unit — every member allocated before any launches,
      or none at all.
    - {b Weighted fair-share}: queue ordered by tenant
      usage-per-weight (busy node-cycles, including running jobs'
      progress), then greedy work-conserving placement — light and
      high-weight tenants jump the line until their share catches up.

    Strategies never draw randomness and sort every pick
    deterministically, so same-seed sweeps replay bit-identically. *)

type kind = Fcfs | Easy | Gang | Fair

val kind_name : kind -> string
val kind_of_string : string -> kind option
val all_kinds : kind list

type config = {
  comm_of : Bg_control.Scheduler.job_id -> bool;
      (** is this job communication-heavy? drives scored placement *)
  weight_of : int -> int;  (** tenant fair-share weight (>= 1) *)
}

val default_config : config
(** Nothing is communication-heavy; every tenant weighs 1. *)

type t

val install : ?config:config -> kind -> Bg_control.Scheduler.t -> t
(** Replace the scheduler's built-in pick logic with this strategy.
    Installing a second strategy on the same scheduler replaces the
    first. *)

val uninstall : t -> unit
(** Restore the scheduler's built-in FIFO/backfill logic. *)

val kind_of : t -> kind
val backfilled : t -> int
(** Jobs started ahead of a blocked head so far. *)

val gangs_started : t -> int
(** Gang units co-scheduled so far (Gang strategy only). *)

val reservation : t -> Bg_control.Scheduler.job_id -> int option
(** The shadow time recorded the first time this job blocked at the head
    of the line (Easy/Gang) — the bound its actual start must respect. *)
