module Sch = Bg_control.Scheduler
module Partition = Bg_control.Partition
module Obs = Bg_obs.Obs

type kind = Fcfs | Easy | Gang | Fair

let kind_name = function
  | Fcfs -> "fcfs"
  | Easy -> "easy"
  | Gang -> "gang"
  | Fair -> "fair"

let kind_of_string = function
  | "fcfs" -> Some Fcfs
  | "easy" -> Some Easy
  | "gang" -> Some Gang
  | "fair" -> Some Fair
  | _ -> None

let all_kinds = [ Fcfs; Easy; Gang; Fair ]

type config = {
  comm_of : Sch.job_id -> bool;
  weight_of : int -> int;
}

let default_config = { comm_of = (fun _ -> false); weight_of = (fun _ -> 1) }

type t = {
  kind : kind;
  sched : Sch.t;
  torus : Bg_hw.Torus.t;
  config : config;
  reservations : (Sch.job_id, int) Hashtbl.t;
  mutable backfilled : int;
  mutable gangs_started : int;
}

let kind_of t = t.kind
let backfilled t = t.backfilled
let gangs_started t = t.gangs_started
let reservation t jid = Hashtbl.find_opt t.reservations jid

let nodes_of (i : Sch.job_info) =
  let x, y, z = i.Sch.info_shape in
  x * y * z

(* The runtime bound a reservation may rely on: the walltime kill is a
   hard ceiling; a bare estimate is the user's promise. Jobs with
   neither poison any reservation that would need them to end. *)
let bound_of (i : Sch.job_info) =
  match i.Sch.info_walltime with Some w -> Some w | None -> i.Sch.info_est

let obs t = (Cnk.Cluster.machine (Sch.cluster t.sched)).Machine.obs
let now t = Bg_engine.Sim.now (Cnk.Cluster.sim (Sch.cluster t.sched))

(* Place one queued job through the torus-aware placer and start it. *)
let place_and_start t (i : Sch.job_info) =
  let jid = i.Sch.info_jid in
  match
    Placer.place t.torus (Sch.partition t.sched) ~nodes:(nodes_of i)
      ~comm:(t.config.comm_of jid)
  with
  | None -> Error "no free box"
  | Some { Placer.shape; base } -> Sch.start_job t.sched ?base ~shape jid

let count_backfill t started_head =
  if not started_head then begin
    t.backfilled <- t.backfilled + 1;
    Obs.incr (obs t) ~subsystem:"scheduler" ~name:"backfill_started" ()
  end

(* --- EASY reservation arithmetic (node-count model) -----------------

   The head job's shadow time: walk running jobs' bounded completion
   times in order, accumulating freed nodes until the head fits. Also
   yields the nodes left over at that moment — the "extra" a backfill
   job may occupy indefinitely without delaying the head. Any running
   job without a bound poisons the computation (None: no reservation,
   so no backfill — strictly conservative). *)
let shadow t ~need ~at =
  let p = Sch.partition t.sched in
  let free = Partition.free_nodes p in
  if free >= need then Some (at, free - need)
  else begin
    let running = Sch.running_info t.sched in
    let ends =
      List.filter_map
        (fun (r : Sch.running_info) ->
          match bound_of r.Sch.run_info with
          | None -> None
          | Some b -> Some (r.Sch.run_started + b, nodes_of r.Sch.run_info))
        running
    in
    if List.length ends <> List.length running then None
    else begin
      let ends = List.sort compare ends in
      let rec walk free = function
        | [] -> None
        | (e, n) :: rest ->
          let free = free + n in
          if free >= need then Some (e, free - need) else walk free rest
      in
      walk free ends
    end
  end

(* May [cand] start now without delaying a head reserved at [sh] with
   [extra] spare nodes? Either it provably ends in time, or it fits in
   the nodes the reservation does not need. *)
let easy_ok ~at ~sh ~extra (cand : Sch.job_info) =
  let n = nodes_of cand in
  (match bound_of cand with Some b -> at + b <= sh | None -> false) || n <= extra

(* --- FCFS ----------------------------------------------------------- *)

let rec dispatch_fcfs t () =
  match Sch.pending_info t.sched with
  | [] -> ()
  | head :: _ -> (
    match place_and_start t head with Ok () -> dispatch_fcfs t () | Error _ -> ())

(* --- EASY backfill --------------------------------------------------- *)

let rec dispatch_easy t () =
  match Sch.pending_info t.sched with
  | [] -> ()
  | head :: rest -> (
    match place_and_start t head with
    | Ok () -> dispatch_easy t ()
    | Error _ -> (
      let at = now t in
      match shadow t ~need:(nodes_of head) ~at with
      | None -> ()  (* unbounded running job: no reservation, no backfill *)
      | Some (sh, extra) ->
        if not (Hashtbl.mem t.reservations head.Sch.info_jid) then
          Hashtbl.replace t.reservations head.Sch.info_jid sh;
        let rec try_candidates = function
          | [] -> ()
          | cand :: more ->
            if easy_ok ~at ~sh ~extra cand then begin
              match place_and_start t cand with
              | Ok () ->
                count_backfill t false;
                (* machine changed: recompute everything *)
                dispatch_easy t ()
              | Error _ -> try_candidates more
            end
            else try_candidates more
        in
        try_candidates rest))

(* --- Gang ------------------------------------------------------------

   The queue, folded into units: a gang id's members (which arrive in
   one burst) collapse into a single all-or-none unit at the position of
   its first queued member; everything else is a unit of one. *)
type unit_ = { members : Sch.job_info list; unit_nodes : int; unit_bound : int option }

let units pending =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (i : Sch.job_info) ->
      match i.Sch.info_gang with
      | None ->
        Some { members = [ i ]; unit_nodes = nodes_of i; unit_bound = bound_of i }
      | Some g ->
        if Hashtbl.mem seen g then None
        else begin
          Hashtbl.replace seen g ();
          let members =
            List.filter (fun (j : Sch.job_info) -> j.Sch.info_gang = Some g) pending
          in
          let unit_nodes = List.fold_left (fun a j -> a + nodes_of j) 0 members in
          let unit_bound =
            List.fold_left
              (fun acc j ->
                match (acc, bound_of j) with
                | Some a, Some b -> Some (max a b)
                | _ -> None)
              (Some 0) members
          in
          Some { members; unit_nodes; unit_bound }
        end)
    pending

let start_unit t u =
  match u.members with
  | [ single ] ->
    (match place_and_start t single with Ok () -> true | Error _ -> false)
  | members -> (
    match
      Sch.start_jobs t.sched
        (List.map (fun (j : Sch.job_info) -> (j.Sch.info_jid, None, None)) members)
    with
    | Ok () ->
      t.gangs_started <- t.gangs_started + 1;
      true
    | Error _ -> false)

let rec dispatch_gang t () =
  match units (Sch.pending_info t.sched) with
  | [] -> ()
  | head :: rest ->
    if start_unit t head then dispatch_gang t ()
    else begin
      let at = now t in
      match shadow t ~need:head.unit_nodes ~at with
      | None -> ()
      | Some (sh, extra) ->
        (match head.members with
        | first :: _ ->
          if not (Hashtbl.mem t.reservations first.Sch.info_jid) then
            Hashtbl.replace t.reservations first.Sch.info_jid sh
        | [] -> ());
        let unit_ok u =
          (match u.unit_bound with Some b -> at + b <= sh | None -> false)
          || u.unit_nodes <= extra
        in
        let rec try_candidates = function
          | [] -> ()
          | cand :: more ->
            if unit_ok cand && start_unit t cand then begin
              count_backfill t false;
              dispatch_gang t ()
            end
            else try_candidates more
        in
        try_candidates rest
    end

(* --- Weighted fair-share ---------------------------------------------

   Tenants are ordered by busy node-cycles per unit weight — completed
   usage from the scheduler's ledger plus the live progress of running
   jobs — and the queue replayed in that order, greedily and
   work-conservingly. Anonymous jobs (no tenant) sort after everyone. *)
let fair_priority t ~at =
  let usage = Hashtbl.create 16 in
  List.iter
    (fun (r : Sch.running_info) ->
      match r.Sch.run_info.Sch.info_tenant with
      | Some tid ->
        let live = (at - r.Sch.run_started) * nodes_of r.Sch.run_info in
        Hashtbl.replace usage tid
          ((match Hashtbl.find_opt usage tid with Some v -> v | None -> 0) + live)
      | None -> ())
    (Sch.running_info t.sched);
  fun (i : Sch.job_info) ->
    match i.Sch.info_tenant with
    | None -> max_int
    | Some tid ->
      let total =
        Sch.tenant_usage t.sched tid
        + (match Hashtbl.find_opt usage tid with Some v -> v | None -> 0)
      in
      total / max (t.config.weight_of tid) 1

let rec dispatch_fair t () =
  let pending = Sch.pending_info t.sched in
  if pending <> [] then begin
    let prio = fair_priority t ~at:(now t) in
    let ordered =
      List.stable_sort
        (fun (a : Sch.job_info) (b : Sch.job_info) ->
          compare
            (prio a, a.Sch.info_submitted, a.Sch.info_jid)
            (prio b, b.Sch.info_submitted, b.Sch.info_jid))
        pending
    in
    let rec try_each started = function
      | [] -> started
      | cand :: more -> (
        match place_and_start t cand with
        | Ok () -> true  (* usage and space changed: recompute order *)
        | Error _ -> try_each started more)
    in
    if try_each false ordered then dispatch_fair t ()
  end

let install ?(config = default_config) kind sched =
  let torus = (Cnk.Cluster.machine (Sch.cluster sched)).Machine.torus in
  let t =
    {
      kind;
      sched;
      torus;
      config;
      reservations = Hashtbl.create 64;
      backfilled = 0;
      gangs_started = 0;
    }
  in
  let dispatch =
    match kind with
    | Fcfs -> dispatch_fcfs t
    | Easy -> dispatch_easy t
    | Gang -> dispatch_gang t
    | Fair -> dispatch_fair t
  in
  Sch.set_dispatch sched (Some dispatch);
  t

let uninstall t = Sch.set_dispatch t.sched None
