module Sch = Bg_control.Scheduler
module Sim = Bg_engine.Sim
module Torus = Bg_hw.Torus

type t = {
  cluster : Cnk.Cluster.t;
  sched : Sch.t;
  strategy : Strategy.t;
  restart_limit : int;
  comm_bytes : int;
  comm_waves : int;
  bursts : (int * Workload.spec list) list;  (* arrival-sorted groups *)
  specs : (Sch.job_id, Workload.spec) Hashtbl.t;
  mutable bursts_left : int;
  mutable offered : int;
  mutable refused : int;
  mutable started_at : Bg_engine.Cycles.t;
  mutable finished_at : Bg_engine.Cycles.t;
}

let rec placeable_nodes ~dims n =
  if n <= 1 then 1
  else
    match Placer.canonical_shape ~dims ~nodes:n with
    | Some _ -> n
    | None -> placeable_nodes ~dims (n - 1)

(* Arrival bursts: specs sharing a cycle are offered in one event, so a
   gang's members are all queued before the strategy sees any of them. *)
let group_by_arrival specs =
  let groups =
    List.fold_left
      (fun acc (s : Workload.spec) ->
        match acc with
        | (c, g) :: rest when c = s.Workload.arrival -> (c, s :: g) :: rest
        | _ -> (s.Workload.arrival, [ s ]) :: acc)
      [] specs
  in
  List.rev_map (fun (c, g) -> (c, List.rev g)) groups

let create ?(restart_limit = 1) ?(comm_bytes = 4096) ?(comm_waves = 2) ~kind
    cluster specs =
  let sched = Sch.create cluster in
  let spec_tbl = Hashtbl.create 256 in
  let weights = Hashtbl.create 16 in
  List.iter
    (fun (s : Workload.spec) ->
      Hashtbl.replace weights s.Workload.tenant s.Workload.weight)
    specs;
  let config =
    {
      Strategy.comm_of =
        (fun jid ->
          match Hashtbl.find_opt spec_tbl jid with
          | Some s -> s.Workload.comm
          | None -> false);
      weight_of =
        (fun tid ->
          match Hashtbl.find_opt weights tid with Some w -> w | None -> 1);
    }
  in
  let strategy = Strategy.install ~config kind sched in
  let t =
    {
      cluster;
      sched;
      strategy;
      restart_limit;
      comm_bytes;
      comm_waves;
      bursts = group_by_arrival specs;
      specs = spec_tbl;
      bursts_left = 0;
      offered = 0;
      refused = 0;
      started_at = 0;
      finished_at = 0;
    }
  in
  let torus = (Cnk.Cluster.machine cluster).Machine.torus in
  (* A communication-heavy job is not just a label: at launch it puts
     [comm_waves] transfers on every consecutive member-rank pair, so
     later placements score against congestion this stream created. *)
  Sch.on_job_start sched (fun jid ~ranks ->
      match Hashtbl.find_opt spec_tbl jid with
      | Some s when s.Workload.comm -> (
        match ranks with
        | [] | [ _ ] -> ()
        | first :: rest ->
          ignore
            (List.fold_left
               (fun src dst ->
                 for _ = 1 to t.comm_waves do
                   Torus.transfer torus ~src ~dst ~bytes:t.comm_bytes ()
                 done;
                 dst)
               first rest))
      | _ -> ());
  t

let scheduler t = t.sched
let strategy t = t.strategy
let offered t = t.offered
let refused t = t.refused
let spec_of_job t jid = Hashtbl.find_opt t.specs jid

let jobs t =
  Hashtbl.fold (fun jid s acc -> (jid, s) :: acc) t.specs []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let makespan t = max (t.finished_at - t.started_at) 0

let tenants_of specs =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (s : Workload.spec) ->
      if not (Hashtbl.mem seen s.Workload.tenant) then
        Hashtbl.replace seen s.Workload.tenant
          (s.Workload.tenant_name, s.Workload.weight))
    specs;
  Hashtbl.fold (fun tid (name, w) acc -> (tid, name, w) :: acc) seen []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let offer t (s : Workload.spec) =
  let dims = Torus.dims (Cnk.Cluster.machine t.cluster).Machine.torus in
  let nodes = placeable_nodes ~dims s.Workload.nodes in
  let shape =
    match Placer.canonical_shape ~dims ~nodes with
    | Some shape -> shape
    | None -> (1, 1, 1)
  in
  let cls =
    match s.Workload.cls with
    | Workload.Filler_cls -> Sch.Backfill_class
    | Workload.Batch_cls | Workload.Interactive_cls -> Sch.Batch
  in
  let restart_limit =
    match s.Workload.cls with Workload.Batch_cls -> t.restart_limit | _ -> 0
  in
  let name = Printf.sprintf "%s.%d" s.Workload.tenant_name s.Workload.seq in
  t.offered <- t.offered + 1;
  match
    Sch.offer_factory t.sched ~walltime_cycles:s.Workload.walltime ~restart_limit
      ~cls ~tenant:s.Workload.tenant ?gang:s.Workload.gang
      ~est_cycles:s.Workload.runtime ~shape
      (fun ~ranks:_ ->
        (* small images: load ships over the collective net at ~1 B/cycle,
           and a stream job's walltime must cover load + runtime *)
        Job.create ~name
          (Image.executable ~name ~text_bytes:(16 * 1024) ~data_bytes:(16 * 1024)
             (fun () -> Coro.consume s.Workload.runtime)))
  with
  | Ok jid -> Hashtbl.replace t.specs jid s
  | Error `Admission_closed -> t.refused <- t.refused + 1

let run t =
  let sim = Cnk.Cluster.sim t.cluster in
  t.started_at <- Sim.now sim;
  t.bursts_left <- List.length t.bursts;
  List.iter
    (fun (arrival, group) ->
      let at = t.started_at + 1 + arrival in
      ignore
        (Sim.schedule_at sim at (fun () ->
             List.iter (offer t) group;
             t.bursts_left <- t.bursts_left - 1;
             Sch.kick t.sched)))
    t.bursts;
  let rec pump () =
    if t.bursts_left > 0 || Sch.outstanding t.sched > 0 then
      if Sim.step sim then pump ()
      else
        failwith
          (Printf.sprintf
             "Service.run: %d job(s) stuck with an empty event queue (%d burst(s) \
              undelivered)"
             (Sch.outstanding t.sched) t.bursts_left)
  in
  pump ();
  t.finished_at <- Sim.now sim
