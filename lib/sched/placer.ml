module Partition = Bg_control.Partition
module Torus = Bg_hw.Torus

let surface (a, b, c) = 2 * ((a * b) + (b * c) + (a * c))

let shapes_for ~dims ~nodes =
  let dx, dy, dz = dims in
  let shapes = ref [] in
  for a = 1 to min nodes dx do
    if nodes mod a = 0 then begin
      let rest = nodes / a in
      for b = 1 to min rest dy do
        if rest mod b = 0 then begin
          let c = rest / b in
          if c <= dz then shapes := (a, b, c) :: !shapes
        end
      done
    end
  done;
  List.sort
    (fun s1 s2 -> compare (surface s1, s1) (surface s2, s2))
    !shapes

let canonical_shape ~dims ~nodes =
  match shapes_for ~dims ~nodes with [] -> None | s :: _ -> Some s

let in_flight_penalty = 10_000

let congestion_score torus partition ~base ~shape =
  let ranks = Partition.ranks_of_box partition ~base ~shape in
  List.fold_left
    (fun acc rank ->
      let per_rank = ref 0 in
      for dir = 0 to 5 do
        per_rank :=
          !per_rank
          + Torus.link_busy_cycles torus ~rank ~dir
          + (in_flight_penalty * Torus.link_in_flight torus ~rank ~dir)
      done;
      acc + !per_rank)
    0 ranks

type placement = { shape : int * int * int; base : (int * int * int) option }

let place torus partition ~nodes ~comm =
  let dims = Torus.dims torus in
  let shapes = shapes_for ~dims ~nodes in
  if not comm then
    (* compute-only: cheapest path — most compact shape that fits now,
       allocator's own first-fit base *)
    List.find_map
      (fun shape ->
        match Partition.free_bases partition ~shape with
        | [] -> None
        | _ -> Some { shape; base = None })
      shapes
  else
    (* communication-heavy: most compact shape with a free box, scored
       base. free_bases is rank-ordered, so min-score ties resolve to
       the lowest base deterministically. *)
    List.find_map
      (fun shape ->
        match Partition.free_bases partition ~shape with
        | [] -> None
        | bases ->
          let best =
            List.fold_left
              (fun acc base ->
                let score = congestion_score torus partition ~base ~shape in
                match acc with
                | Some (_, best_score) when best_score <= score -> acc
                | _ -> Some (base, score))
              None bases
          in
          (match best with
          | Some (base, _) -> Some { shape; base = Some base }
          | None -> None))
      shapes
