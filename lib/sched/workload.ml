module Rng = Bg_engine.Rng

type cls = Batch_cls | Interactive_cls | Filler_cls

type tenant = {
  name : string;
  weight : int;
  jobs : int;
  mean_interarrival : float;
  nodes_lo : int;
  nodes_hi : int;
  runtime_lo : int;
  runtime_hi : int;
  comm_fraction : float;
  runaway_fraction : float;
  cls : cls;
  gang_size : int;
}

type spec = {
  tenant : int;
  tenant_name : string;
  weight : int;
  seq : int;
  arrival : int;
  nodes : int;
  runtime : int;
  walltime : int;
  comm : bool;
  cls : cls;
  gang : int option;
}

let validate tenants =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun t ->
      if t.name = "" then invalid_arg "Workload: empty tenant name";
      if Hashtbl.mem seen t.name then
        invalid_arg (Printf.sprintf "Workload: duplicate tenant %S" t.name);
      Hashtbl.replace seen t.name ();
      if t.jobs <= 0 then invalid_arg (Printf.sprintf "Workload: %s has no jobs" t.name);
      if t.weight < 1 then invalid_arg (Printf.sprintf "Workload: %s weight" t.name);
      if t.nodes_lo < 1 || t.nodes_hi < t.nodes_lo then
        invalid_arg (Printf.sprintf "Workload: %s nodes range" t.name);
      if t.runtime_lo < 1 || t.runtime_hi < t.runtime_lo then
        invalid_arg (Printf.sprintf "Workload: %s runtime range" t.name);
      if t.mean_interarrival <= 0. then
        invalid_arg (Printf.sprintf "Workload: %s interarrival" t.name);
      if t.gang_size < 1 then invalid_arg (Printf.sprintf "Workload: %s gang size" t.name))
    tenants

let uniform_int rng lo hi = lo + Rng.int rng (hi - lo + 1)

(* One tenant's whole stream, from its own substream of the root seed.
   Every random quantity this tenant ever draws comes from [rng], in a
   fixed per-job order — so the sequence is a pure function of
   (seed, tenant record) and of nothing else. *)
(* Gang ids must be position-independent, like the RNG substream: a
   tenant joining or leaving the population must not renumber anyone
   else's gangs. Derive the namespace from the tenant name alone. *)
let gang_base name =
  let h =
    Bg_engine.Fnv.add_string Bg_engine.Fnv.empty name
    |> Int64.to_int |> abs |> fun h -> h land 0x3FFF_FFFF
  in
  (h + 1) * 65536

let tenant_specs ~root ~ix t =
  let rng = Rng.split root ("tenant." ^ t.name) in
  let specs = ref [] in
  let clock = ref 0. in
  let seq = ref 0 in
  let burst = ref 0 in
  while !seq < t.jobs do
    clock := !clock +. Rng.exponential rng ~mean:t.mean_interarrival;
    let arrival = int_of_float !clock in
    let gang_id = if t.gang_size > 1 then Some (gang_base t.name + !burst) else None in
    incr burst;
    let members = min t.gang_size (t.jobs - !seq) in
    for _ = 1 to members do
      let nodes = uniform_int rng t.nodes_lo t.nodes_hi in
      let runtime = uniform_int rng t.runtime_lo t.runtime_hi in
      let comm = nodes > 1 && Rng.float rng 1.0 < t.comm_fraction in
      let runaway = Rng.float rng 1.0 < t.runaway_fraction in
      let walltime =
        if runaway then max (runtime / 2) 1 else (runtime * 2) + 50_000
      in
      specs :=
        {
          tenant = ix;
          tenant_name = t.name;
          weight = t.weight;
          seq = !seq;
          arrival;
          nodes;
          runtime;
          walltime;
          comm;
          cls = t.cls;
          gang = gang_id;
        }
        :: !specs;
      incr seq
    done
  done;
  List.rev !specs

let generate ~seed tenants =
  validate tenants;
  let root = Rng.create seed in
  let all = List.concat (List.mapi (fun ix t -> tenant_specs ~root ~ix t) tenants) in
  List.stable_sort
    (fun a b -> compare (a.arrival, a.tenant, a.seq) (b.arrival, b.tenant, b.seq))
    all

let total_jobs tenants = List.fold_left (fun acc t -> acc + t.jobs) 0 tenants

(* Round-robin synthetic population: heavyweight batch, communication-
   heavy batch, interactive burst, filler. Parameters vary with the
   tenant index so no two tenants are identical, but everything is a
   pure function of the index. *)
let mixed_tenants ~tenants ~jobs_per_tenant =
  List.init tenants (fun i ->
      let name = Printf.sprintf "t%02d" i in
      match i mod 4 with
      | 0 ->
        (* batch: medium jobs, steady rate *)
        {
          name;
          weight = 1 + (i mod 3);
          jobs = jobs_per_tenant;
          mean_interarrival = 400_000. +. float_of_int (20_000 * (i mod 5));
          nodes_lo = 1;
          nodes_hi = 4;
          runtime_lo = 100_000;
          runtime_hi = 400_000;
          comm_fraction = 0.2;
          runaway_fraction = 0.02;
          cls = Batch_cls;
          gang_size = 1;
        }
      | 1 ->
        (* communication-heavy batch: bigger, compact-shape hungry *)
        {
          name;
          weight = 1 + (i mod 2);
          jobs = jobs_per_tenant;
          mean_interarrival = 700_000. +. float_of_int (30_000 * (i mod 3));
          nodes_lo = 2;
          nodes_hi = 8;
          runtime_lo = 150_000;
          runtime_hi = 500_000;
          comm_fraction = 0.9;
          runaway_fraction = 0.02;
          cls = Batch_cls;
          gang_size = 1;
        }
      | 2 ->
        (* interactive: small fast bursts, gang-scheduled *)
        {
          name;
          weight = 2;
          jobs = jobs_per_tenant;
          mean_interarrival = 900_000. +. float_of_int (40_000 * (i mod 4));
          nodes_lo = 1;
          nodes_hi = 1;
          runtime_lo = 20_000;
          runtime_hi = 80_000;
          comm_fraction = 0.;
          runaway_fraction = 0.01;
          cls = Interactive_cls;
          gang_size = 3;
        }
      | _ ->
        (* filler: opportunistic single-node padding *)
        {
          name;
          weight = 1;
          jobs = jobs_per_tenant;
          mean_interarrival = 600_000. +. float_of_int (10_000 * (i mod 7));
          nodes_lo = 1;
          nodes_hi = 2;
          runtime_lo = 50_000;
          runtime_hi = 200_000;
          comm_fraction = 0.1;
          runaway_fraction = 0.03;
          cls = Filler_cls;
          gang_size = 1;
        })

let pp_spec fmt s =
  Format.fprintf fmt "%s/%d @%d nodes=%d run=%d wall=%d%s%s%s" s.tenant_name s.seq
    s.arrival s.nodes s.runtime s.walltime
    (if s.comm then " comm" else "")
    (match s.cls with
    | Batch_cls -> ""
    | Interactive_cls -> " interactive"
    | Filler_cls -> " filler")
    (match s.gang with Some g -> Printf.sprintf " gang=%d" g | None -> "")
