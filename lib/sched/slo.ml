module Obs = Bg_obs.Obs
module Fnv = Bg_engine.Fnv
module Histogram = Bg_engine.Stats.Histogram

type row = {
  tenant : int;
  name : string;
  weight : int;
  completed : int;
  failed : int;
  rejected : int;
  shed : int;
  wait_p50 : float;
  wait_p99 : float;
  wait_p999 : float;
  turn_p50 : float;
  turn_p99 : float;
  turn_p999 : float;
  slowdown_p99 : float;
  busy_node_cycles : int;
}

type report = {
  policy : string;
  seed : int;
  rows : row list;
  total_nodes : int;
  makespan : Bg_engine.Cycles.t;
  utilization_milli : int;
  completed_total : int;
  failed_total : int;
  rejected_total : int;
  shed_total : int;
  backfilled : int;
  gangs_started : int;
}

let pctl o ~rank ~name p =
  match Obs.timer_histogram o ~rank ~subsystem:"sched" ~name () with
  | None -> 0.
  | Some h -> Histogram.percentile h p

let collect o ~tenants ~policy ~seed ~total_nodes ~makespan ?(backfilled = 0)
    ?(gangs_started = 0) () =
  let counter rank name = Obs.counter_value o ~rank ~subsystem:"sched" ~name () in
  let rows =
    tenants
    |> List.map (fun (tenant, name, weight) ->
           {
             tenant;
             name;
             weight;
             completed = counter tenant "jobs_completed";
             failed = counter tenant "jobs_failed";
             rejected = counter tenant "jobs_rejected";
             shed = counter tenant "jobs_shed";
             wait_p50 = pctl o ~rank:tenant ~name:"queue_wait_cycles" 0.50;
             wait_p99 = pctl o ~rank:tenant ~name:"queue_wait_cycles" 0.99;
             wait_p999 = pctl o ~rank:tenant ~name:"queue_wait_cycles" 0.999;
             turn_p50 = pctl o ~rank:tenant ~name:"turnaround_cycles" 0.50;
             turn_p99 = pctl o ~rank:tenant ~name:"turnaround_cycles" 0.99;
             turn_p999 = pctl o ~rank:tenant ~name:"turnaround_cycles" 0.999;
             slowdown_p99 = pctl o ~rank:tenant ~name:"bounded_slowdown_milli" 0.99;
             busy_node_cycles = counter tenant "busy_node_cycles";
           })
    |> List.sort (fun a b -> compare a.tenant b.tenant)
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let busy_total =
    Obs.counter_value o ~subsystem:"sched" ~name:"busy_node_cycles" ()
  in
  let capacity = total_nodes * max makespan 1 in
  {
    policy;
    seed;
    rows;
    total_nodes;
    makespan;
    utilization_milli = busy_total * 1000 / capacity;
    completed_total = sum (fun r -> r.completed);
    failed_total = sum (fun r -> r.failed);
    rejected_total = sum (fun r -> r.rejected);
    shed_total = sum (fun r -> r.shed);
    backfilled;
    gangs_started;
  }

let utilization_pct r = float_of_int r.utilization_milli /. 10.

let served r = List.filter (fun row -> row.completed > 0) r.rows

let max_wait_p99 r =
  List.fold_left (fun acc row -> max acc row.wait_p99) 0. (served r)

let max_slowdown_p99 r =
  List.fold_left (fun acc row -> max acc row.slowdown_p99) 0. (served r)

let wait_p99_spread r =
  match served r with
  | [] -> 1.
  | rows ->
    let lo = List.fold_left (fun acc row -> min acc row.wait_p99) infinity rows in
    let hi = List.fold_left (fun acc row -> max acc row.wait_p99) 0. rows in
    if lo <= 0. then infinity else hi /. lo

let pp_table fmt r =
  Format.fprintf fmt
    "policy=%s seed=%d nodes=%d makespan=%d util=%.1f%% backfilled=%d gangs=%d@."
    r.policy r.seed r.total_nodes r.makespan (utilization_pct r) r.backfilled
    r.gangs_started;
  Format.fprintf fmt
    "%-6s %-6s %3s %5s %4s %4s %4s %12s %12s %12s %9s@." "tenant" "name" "w"
    "done" "fail" "rej" "shed" "wait_p50" "wait_p99" "turn_p99" "slow_p99";
  List.iter
    (fun row ->
      Format.fprintf fmt
        "%-6d %-6s %3d %5d %4d %4d %4d %12.0f %12.0f %12.0f %9.0f@." row.tenant
        row.name row.weight row.completed row.failed row.rejected row.shed
        row.wait_p50 row.wait_p99 row.turn_p99 row.slowdown_p99)
    r.rows;
  Format.fprintf fmt
    "totals: completed=%d failed=%d rejected=%d shed=%d max_wait_p99=%.0f@."
    r.completed_total r.failed_total r.rejected_total r.shed_total
    (max_wait_p99 r)

(* Percentiles come out of fixed-bin histograms: exact bin boundaries,
   so rounding to int loses nothing reproducibility needs. *)
let add_f d v = Fnv.add_int d (int_of_float v)

let digest r =
  let d =
    Fnv.empty |> fun d ->
    Fnv.add_string d r.policy |> fun d ->
    Fnv.add_int d r.seed |> fun d ->
    Fnv.add_int d r.total_nodes |> fun d ->
    Fnv.add_int d r.makespan |> fun d ->
    Fnv.add_int d r.utilization_milli |> fun d ->
    Fnv.add_int d r.completed_total |> fun d ->
    Fnv.add_int d r.failed_total |> fun d ->
    Fnv.add_int d r.rejected_total |> fun d ->
    Fnv.add_int d r.shed_total |> fun d ->
    Fnv.add_int d r.backfilled |> fun d -> Fnv.add_int d r.gangs_started
  in
  List.fold_left
    (fun d row ->
      Fnv.add_int d row.tenant |> fun d ->
      Fnv.add_string d row.name |> fun d ->
      Fnv.add_int d row.weight |> fun d ->
      Fnv.add_int d row.completed |> fun d ->
      Fnv.add_int d row.failed |> fun d ->
      Fnv.add_int d row.rejected |> fun d ->
      Fnv.add_int d row.shed |> fun d ->
      add_f d row.wait_p50 |> fun d ->
      add_f d row.wait_p99 |> fun d ->
      add_f d row.wait_p999 |> fun d ->
      add_f d row.turn_p50 |> fun d ->
      add_f d row.turn_p99 |> fun d ->
      add_f d row.turn_p999 |> fun d ->
      add_f d row.slowdown_p99 |> fun d -> Fnv.add_int d row.busy_node_cycles)
    d r.rows

let csv_header =
  "policy,seed,tenant,name,weight,completed,failed,rejected,shed,wait_p50,wait_p99,wait_p999,turn_p50,turn_p99,turn_p999,slowdown_p99_milli,busy_node_cycles,utilization_milli"

let csv_rows r =
  List.map
    (fun row ->
      Printf.sprintf "%s,%d,%d,%s,%d,%d,%d,%d,%d,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%d,%d"
        r.policy r.seed row.tenant row.name row.weight row.completed row.failed
        row.rejected row.shed row.wait_p50 row.wait_p99 row.wait_p999
        row.turn_p50 row.turn_p99 row.turn_p999 row.slowdown_p99
        row.busy_node_cycles r.utilization_milli)
    r.rows
