(** Per-tenant SLO accounting, read back from the obs registry.

    The scheduler feeds every start/finish into [sched.*] series scoped
    by tenant id (the metric [rank]): queue-wait and turnaround timers,
    bounded-slowdown, and completed/failed/rejected/shed counters. This
    module folds those series into a per-tenant report — the control
    system's multi-tenant bill — plus whole-machine utilization, and
    renders it as a text table, CSV rows, and an FNV digest for
    same-seed reproducibility checks. Everything here is a pure reader:
    collecting a report never perturbs the simulation. *)

type row = {
  tenant : int;
  name : string;
  weight : int;
  completed : int;
  failed : int;
  rejected : int;
  shed : int;
  wait_p50 : float;  (** queue-wait percentiles, cycles *)
  wait_p99 : float;
  wait_p999 : float;
  turn_p50 : float;  (** turnaround percentiles, cycles *)
  turn_p99 : float;
  turn_p999 : float;
  slowdown_p99 : float;  (** bounded slowdown p99, milli-units (1000 = 1.0) *)
  busy_node_cycles : int;
}

type report = {
  policy : string;
  seed : int;
  rows : row list;  (** ascending tenant id *)
  total_nodes : int;
  makespan : Bg_engine.Cycles.t;
  utilization_milli : int;
      (** busy node-cycles over [total_nodes * makespan], in milli-units *)
  completed_total : int;
  failed_total : int;
  rejected_total : int;
  shed_total : int;
  backfilled : int;
  gangs_started : int;
}

val collect :
  Bg_obs.Obs.t ->
  tenants:(int * string * int) list ->
  policy:string ->
  seed:int ->
  total_nodes:int ->
  makespan:Bg_engine.Cycles.t ->
  ?backfilled:int ->
  ?gangs_started:int ->
  unit ->
  report
(** Read the [sched.*] series for each [(id, name, weight)] tenant. *)

val utilization_pct : report -> float
val max_wait_p99 : report -> float
(** Worst per-tenant queue-wait p99 across tenants with completions. *)

val max_slowdown_p99 : report -> float
(** Worst per-tenant bounded-slowdown p99 (milli-units) across tenants
    with completions — the "no tenant suffers disproportionately"
    number weighted fair-share exists to bound. *)

val wait_p99_spread : report -> float
(** max/min per-tenant queue-wait p99 over tenants with completions —
    the fair-share bound the tests pin (1.0 = perfectly even). *)

val pp_table : Format.formatter -> report -> unit
(** Whole-report text table: one row per tenant plus a totals line. *)

val digest : report -> Bg_engine.Fnv.t
(** FNV over every field of every row plus the totals — byte-stable
    across same-seed runs. *)

val csv_header : string
val csv_rows : report -> string list
(** One [sched_slo.csv] line per tenant, matching {!csv_header}. *)
