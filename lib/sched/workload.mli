(** Seeded open-arrival job-stream generator.

    Turns a population of simulated tenants into one merged, reproducible
    arrival sequence: each tenant describes its own traffic (arrival
    rate, job-size and runtime distributions, communication intensity,
    batch vs interactive class) and draws every random quantity from its
    {e own} split RNG substream ({!Bg_engine.Rng.split} keyed by the
    tenant name). Substreams are derived from the root seed and the
    tenant name alone, so adding or removing one tenant never perturbs
    any other tenant's sequence — the property the regression tests pin.

    Interactive tenants submit bursts: [gang_size] jobs arriving in the
    same cycle and tagged with one gang id, for strategies that
    co-schedule all members or none (pyscript-style sessions, where a
    user's interpreter fan-out is useless unless every member runs). *)

type cls =
  | Batch_cls  (** throughput traffic; users wait on completion *)
  | Interactive_cls  (** latency-sensitive bursts, gang-scheduled *)
  | Filler_cls
      (** opportunistic, submitted as [Backfill_class] — first shed when
          the machine degrades *)

type tenant = {
  name : string;  (** unique; keys the RNG substream *)
  weight : int;  (** fair-share weight, >= 1 *)
  jobs : int;  (** how many jobs this tenant submits *)
  mean_interarrival : float;  (** mean cycles between (bursts of) arrivals *)
  nodes_lo : int;
  nodes_hi : int;  (** job size drawn uniformly from [lo, hi] *)
  runtime_lo : int;
  runtime_hi : int;  (** per-rank compute cycles, uniform in [lo, hi] *)
  comm_fraction : float;  (** probability a job is communication-heavy *)
  runaway_fraction : float;
      (** probability a job overruns its walltime (and gets killed) *)
  cls : cls;
  gang_size : int;  (** jobs per burst; > 1 only for interactive tenants *)
}

type spec = {
  tenant : int;  (** index into the tenant list passed to {!generate} *)
  tenant_name : string;
  weight : int;
  seq : int;  (** per-tenant submission index *)
  arrival : int;  (** absolute cycle *)
  nodes : int;
  runtime : int;  (** per-rank compute cycles *)
  walltime : int;  (** kill limit; below [runtime] for runaway jobs *)
  comm : bool;  (** communication-heavy: wants a compact, quiet box *)
  cls : cls;
  gang : int option;  (** burst co-scheduling group, unique across tenants *)
}

val generate : seed:int64 -> tenant list -> spec list
(** The merged stream, sorted by (arrival, tenant index, seq) — a total
    deterministic order. Raises [Invalid_argument] on nonsense tenants
    (no jobs, empty name, inverted ranges, duplicate names). *)

val mixed_tenants : tenants:int -> jobs_per_tenant:int -> tenant list
(** A deterministic synthetic population for tools and tests: round-robin
    over batch / interactive / filler profiles with varying weights,
    sizes and rates; tenant [i] is named ["t%02d"]. *)

val total_jobs : tenant list -> int
val pp_spec : Format.formatter -> spec -> unit
