(* All values in 850 MHz cycles; 1 us = 850 cycles.
   Hardware path for a 1-hop small packet (see Bg_hw.Params.bgp):
     inject 260 + hop 85 + ser(32B) 64 + receive 170 = 579 cycles = 0.68 us *)

let put_sw = 170            (* 0.9 us total: 579 + 170 = 749 ~ 0.88 us *)
let eager_send_sw = 300
let eager_recv_handler = 480 (* eager total ~ 579+300+480 = 1359 ~ 1.6 us *)
let get_request_sw = 80
let get_remote_dma = 60     (* get ~ 80+579+60+531 = 1250 ~ 1.5 us *)
let mpi_send_overhead = 340
let mpi_match_overhead = 340 (* MPI eager ~ 1359 + 680 = 2039 ~ 2.4 us *)
let rndv_rts_sw = 250
let rndv_cts_sw = 250
let armci_put_overhead = 340 (* ARMCI put ~ 749 + 340 + ack wait ~ 2.0 us *)
let armci_get_overhead = 1400 (* lock/window checks: ~3.1 us total *)
let remote_ack_bytes = 16
let small_packet_bytes = 32
let paged_fragment_bytes = 4096
let paged_fragment_sw = 600

(* --- descriptor-based DMA path --------------------------------------
   On CNK the injection FIFOs and completion counters are memory-mapped,
   so the whole injection path is a handful of user-mode stores; on the
   FWK these costs are replaced by the Dma_inject/Dma_poll syscalls
   (trap + translate + pin, see Bg_fwk.Node). *)

let dma_user_inject_sw = 90   (* build a descriptor + store to mapped FIFO *)
let dma_stall_retry_sw = 120  (* backpressure spin quantum when FIFO is full *)
let dma_recv_dispatch_sw = 120 (* per-packet user-space dispatch on drain *)

let dma_copy_cycles bytes = bytes
(* memcpy at ~1 B/cycle into (send) and out of (receive) the memory
   FIFOs. Eager pays this on both sides; rendezvous streams straight
   from the source buffer (zero-copy), which is what produces the
   eager/rendezvous crossover around ~1.2 KB. *)

let rndv_fin_bytes = 1        (* FIN is a bare header packet *)
