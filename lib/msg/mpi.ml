open Bg_engine

type t = { dcmf : Dcmf.ctx }

let create dcmf = { dcmf }
let dcmf t = t.dcmf
let rank t = Dcmf.rank t.dcmf
let size t = Dcmf.node_count t.dcmf
let eager_threshold = 1200

(* Tag-space encoding: MPI envelope (tag, src) onto a DCMF tag, with a
   disjoint channel for rendezvous control. *)
let enc_data ~tag ~src = (tag * 4096) + src
let enc_rts ~tag ~src = 0x2000_0000 + (tag * 4096) + src

let poll_quantum = 120

let send t ~dst ~tag data =
  Coro.consume Msg_params.mpi_send_overhead;
  if Bytes.length data > eager_threshold then
    invalid_arg "Mpi.send: payload above the eager threshold; use send_rendezvous";
  ignore (Dcmf.send_eager t.dcmf ~dst ~tag:(enc_data ~tag ~src:(rank t)) ~data)

let recv t ~src ~tag =
  let dcmf_tag = enc_data ~tag ~src in
  let rec loop () =
    match Dcmf.try_recv_eager t.dcmf ~tag:dcmf_tag with
    | Some (src', data) ->
      assert (src' = src);
      Coro.consume Msg_params.mpi_match_overhead;
      data
    | None ->
      Coro.consume poll_quantum;
      loop ()
  in
  loop ()

let send_rendezvous t ?(contiguous = true) ~dst ~tag bytes =
  let me = rank t in
  let machine = Dcmf.machine (Dcmf.fabric_of t.dcmf) in
  Coro.consume (Msg_params.mpi_send_overhead + Msg_params.rndv_rts_sw);
  (* RTS: an eager control message; completion means the remote dispatched
     the handler (receive modeled as already posted). *)
  let rts =
    Dcmf.send_eager t.dcmf ~dst ~tag:(enc_rts ~tag ~src:me) ~data:(Bytes.create 8)
  in
  Dcmf.wait rts;
  (* remote match + CTS turnaround, then the CTS packet crosses back *)
  Coro.consume (Msg_params.mpi_match_overhead + Msg_params.rndv_cts_sw);
  let cts_arrived = ref false in
  Bg_hw.Torus.transfer machine.Machine.torus ~src:dst ~dst:me
    ~bytes:Msg_params.small_packet_bytes
    ~on_arrival:(fun ~arrival_cycle:_ -> cts_arrived := true)
    ();
  let rec spin interval =
    if not !cts_arrived then begin
      Coro.consume interval;
      spin (min 500 (interval * 2))
    end
  in
  spin 60;
  (* data phase: one-sided bulk put into the receiver\'s landing buffer *)
  let h = Dcmf.put_large t.dcmf ~dst ~tag ~bytes ~contiguous in
  Dcmf.wait h

type request =
  | Req_send of Dcmf.handle
  | Req_recv of { src : int; dcmf_tag : int; mutable data : bytes option }

let isend t ~dst ~tag data =
  Coro.consume Msg_params.mpi_send_overhead;
  if Bytes.length data > eager_threshold then
    invalid_arg "Mpi.isend: payload above the eager threshold";
  Req_send (Dcmf.send_eager t.dcmf ~dst ~tag:(enc_data ~tag ~src:(rank t)) ~data)

let irecv t ~src ~tag =
  ignore (rank t);
  Req_recv { src; dcmf_tag = enc_data ~tag ~src; data = None }

let progress_recv t (src : int) dcmf_tag =
  match Dcmf.try_recv_eager t.dcmf ~tag:dcmf_tag with
  | Some (src', data) ->
    assert (src' = src);
    Coro.consume Msg_params.mpi_match_overhead;
    Some data
  | None -> None

let test t req =
  match req with
  | Req_send h -> Dcmf.is_complete h
  | Req_recv r -> (
    match r.data with
    | Some _ -> true
    | None -> (
      match progress_recv t r.src r.dcmf_tag with
      | Some data ->
        r.data <- Some data;
        true
      | None -> false))

let wait t req =
  match req with
  | Req_send h ->
    Dcmf.wait h;
    Bytes.empty
  | Req_recv r -> (
    let rec loop () =
      match r.data with
      | Some d -> d
      | None ->
        (match progress_recv t r.src r.dcmf_tag with
        | Some d -> r.data <- Some d
        | None -> Coro.consume poll_quantum);
        loop ()
    in
    loop ())

let waitall t reqs = List.map (wait t) reqs

let sendrecv t ~dst ~send_tag data ~src ~recv_tag =
  let r = irecv t ~src ~tag:recv_tag in
  let s = isend t ~dst ~tag:send_tag data in
  let received = wait t r in
  ignore (wait t s);
  received

let barrier t = Dcmf.barrier_via_hw t.dcmf

module Coll = struct
  type waiter = {
    w_rank : int;
    mutable done_ : bool;
    mutable result : float;
    mutable pdata : bytes;
  }

  type coll = {
    machine : Machine.t;
    participants : int;
    mutable acc : float;
    mutable payload : bytes;  (* bcast slot, set by the root during a round *)
    mutable count : int;
    mutable first_arrival : Cycles.t;
    mutable waiters : waiter list;
    mutable last_latency : int;
    mutable contrib_ctxs : int list;  (* causal contribute nodes, this round *)
  }

  (* Causal shape of one round: every rank's [contribute] node feeds a
     single rankless "complete" node (the combine happens in the network,
     not on any core), which fans out to a "deliver" node per waiter. A
     backward latest-predecessor walk from any deliver therefore passes
     through the LAST contributor — the straggler — by construction. *)
  let causal_contribute c ~rank =
    let g = Machine.causal c.machine in
    if Bg_obs.Causal.enabled g then begin
      let n =
        Bg_obs.Causal.mint g ~cat:"coll" ~name:"contribute" ~rank ~core:0
          ~now:(Sim.now c.machine.Machine.sim) ()
      in
      if n <> Bg_obs.Causal.none then c.contrib_ctxs <- n :: c.contrib_ctxs
    end

  let causal_complete c ~ctxs ~completion waiters =
    let g = Machine.causal c.machine in
    if Bg_obs.Causal.enabled g then begin
      (* rank -1 is the control/network scope: attribution charges the
         contribute->complete and complete->deliver legs to the network *)
      let x =
        Bg_obs.Causal.mint g ~chain:false ~cat:"coll" ~name:"complete" ~rank:(-1)
          ~core:0 ~now:completion ()
      in
      List.iter
        (fun src -> Bg_obs.Causal.link g Bg_obs.Causal.Send_recv ~src ~dst:x)
        (List.rev ctxs);
      List.iter
        (fun w ->
          let d =
            Bg_obs.Causal.mint g ~cat:"coll" ~name:"deliver" ~rank:w.w_rank ~core:0
              ~now:completion ()
          in
          Bg_obs.Causal.link g Bg_obs.Causal.Send_recv ~src:x ~dst:d)
        (List.rev waiters)
    end

  let create fabric ~participants =
    {
      machine = Dcmf.machine fabric;
      participants;
      acc = 0.0;
      payload = Bytes.empty;
      count = 0;
      first_arrival = 0;
      waiters = [];
      last_latency = 0;
      contrib_ctxs = [];
    }

  let tree_round_trip c =
    let p = c.machine.Machine.params in
    let rec depth d n = if n <= 1 then d else depth (d + 1) ((n + 1) / 2) in
    (2 * depth 0 c.participants * p.Bg_hw.Params.collective_hop_cycles) + 300

  let tree_one_way c =
    let p = c.machine.Machine.params in
    let rec depth d n = if n <= 1 then d else depth (d + 1) ((n + 1) / 2) in
    (depth 0 c.participants * p.Bg_hw.Params.collective_hop_cycles) + 200

  (* One synchronized round: every rank contributes (the closure may update
     [acc] and/or [payload]); when the last arrives, results are delivered
     to every waiter [delay] cycles later. Rounds never overlap because
     every caller blocks until delivery. *)
  let round c ~rank ~contribute ~delay_of =
    Coro.consume 200;
    let sim = c.machine.Machine.sim in
    let w = { w_rank = rank; done_ = false; result = 0.0; pdata = Bytes.empty } in
    if c.count = 0 then c.first_arrival <- Sim.now sim;
    contribute ();
    causal_contribute c ~rank;
    c.count <- c.count + 1;
    c.waiters <- w :: c.waiters;
    if c.count = c.participants then begin
      let result = c.acc and pdata = c.payload in
      let delay = delay_of () in
      let completion = Sim.now sim + delay in
      c.last_latency <- completion - c.first_arrival;
      let waiters = c.waiters in
      let ctxs = c.contrib_ctxs in
      c.acc <- 0.0;
      c.payload <- Bytes.empty;
      c.count <- 0;
      c.waiters <- [];
      c.contrib_ctxs <- [];
      ignore
        (Sim.schedule_at sim completion (fun () ->
             causal_complete c ~ctxs ~completion waiters;
             List.iter
               (fun w ->
                 w.result <- result;
                 w.pdata <- pdata;
                 w.done_ <- true)
               waiters))
    end;
    let rec spin interval =
      if not w.done_ then begin
        Coro.consume interval;
        spin (min 2_000 (interval * 2))
      end
    in
    spin 60;
    w

  let allreduce_sum c t v =
    let w =
      round c ~rank:(rank t)
        ~contribute:(fun () -> c.acc <- c.acc +. v)
        ~delay_of:(fun () -> tree_round_trip c)
    in
    w.result

  let last_latency_cycles c = c.last_latency

  type route = Tree | Torus

  (* Closed-form costs. Tree: hardware combine at link speed, but doubles
     need two integer passes; latency = up+down through the tree. Torus:
     recursive reduce-scatter + allgather, each moving (n-1)/n of the
     vector, striped across the six links; latency = 2(n-1) neighbor hops
     of software-driven steps. *)
  let estimate_vector_cycles c route ~elements =
    let p = c.machine.Machine.params in
    let bytes = 8 * elements in
    let n = c.participants in
    match route with
    | Tree ->
      let latency = tree_round_trip c in
      let bw = p.Bg_hw.Params.collective_link_bytes_per_cycle in
      latency + int_of_float (2.0 *. float_of_int bytes /. bw)
    | Torus ->
      let steps = 2 * max 1 (n - 1) in
      let per_step_sw = 400 in
      let latency =
        steps * (p.Bg_hw.Params.torus_hop_cycles + p.Bg_hw.Params.torus_inject_cycles + per_step_sw)
      in
      let links = 6.0 in
      let moved = 2.0 *. float_of_int (max 1 (n - 1)) /. float_of_int (max 1 n) in
      let bw = links *. p.Bg_hw.Params.torus_link_bytes_per_cycle in
      latency + int_of_float (moved *. float_of_int bytes /. bw)

  let allreduce_vector c t route ~elements v =
    let w =
      round c ~rank:(rank t)
        ~contribute:(fun () -> c.acc <- c.acc +. v)
        ~delay_of:(fun () -> estimate_vector_cycles c route ~elements)
    in
    w.result

  (* All-to-all: total traffic n(n-1) * bytes; roughly half crosses the
     torus bisection, whose capacity on an x*y*z machine is ~ 4*y*z links
     (two cut faces, both ring directions). We approximate with the
     machine's full link count when dims are degenerate. *)
  let alltoall_cycles c ~bytes_per_pair =
    let p = c.machine.Machine.params in
    let n = c.participants in
    let x, y, z = Bg_hw.Torus.dims c.machine.Machine.torus in
    let bisection_links = max 2 (4 * y * z * min 1 (x / 2)) in
    let total = float_of_int (n * (n - 1) * bytes_per_pair) in
    let wire =
      total /. 2.0
      /. (float_of_int bisection_links *. p.Bg_hw.Params.torus_link_bytes_per_cycle)
    in
    let sw = (n - 1) * (p.Bg_hw.Params.torus_inject_cycles + 300) in
    int_of_float wire + sw + (2 * p.Bg_hw.Params.torus_hop_cycles * (x + y + z) / 2)

  (* per-round gathered contributions, keyed by source rank *)
  let alltoall c t ~bytes_per_pair v =
    let me = rank t in
    (* stage the contribution into the shared payload slot as a growing
       association list encoded via the acc/payload machinery: simplest is
       a per-coll scratch table rebuilt each round *)
    let w =
      round c ~rank:me
        ~contribute:(fun () ->
          let prev =
            if Bytes.length c.payload = 0 then []
            else Marshal.from_bytes c.payload 0
          in
          c.payload <- Marshal.to_bytes ((me, v) :: prev) [])
        ~delay_of:(fun () -> alltoall_cycles c ~bytes_per_pair)
    in
    let contributions : (int * int) list = Marshal.from_bytes w.pdata 0 in
    List.sort compare contributions |> List.map snd

  let bcast c t ~root data =
    let me = rank t in
    let w =
      round c ~rank:me
        ~contribute:(fun () -> if me = root then c.payload <- Bytes.copy data)
        ~delay_of:(fun () -> tree_one_way c)
    in
    Bytes.copy w.pdata

  let reduce_sum c t ~root v =
    let me = rank t in
    let w =
      round c ~rank:me
        ~contribute:(fun () -> c.acc <- c.acc +. v)
        ~delay_of:(fun () -> tree_one_way c)
    in
    if me = root then Some w.result else None
end
