open Bg_engine
open Bg_hw

type path = Abstract | Dma_user | Dma_kernel

(* Handle completion is either stamped directly by a simulation callback
   (the abstract path) or read off a DMA byte-decrement counter. *)
type completion =
  | Direct
  | Counter of { engine : Dma.t; id : int; kernel : bool }

type handle = {
  mutable complete : bool;
  mutable at : Cycles.t;
  mutable data : bytes option;
  comp : completion;
}

type ctx = {
  fabric : fabric;
  rank : int;
  engine : Dma.t option;                       (* this rank's DMA engine *)
  buffers : (int, bytes) Hashtbl.t;            (* tag -> registered buffer *)
  eager_inbox : (int * int * bytes * int) Queue.t;  (* (tag, src, payload, causal ctx) *)
  landings : (int, bytes -> unit) Hashtbl.t;   (* tag -> one-shot get landing *)
  mutable next_counter : int;
  mutable next_rdv : int;
}

and fabric = { machine : Machine.t; path : path; ctxs : (int, ctx) Hashtbl.t }

(* Private tag namespaces, far above anything MPI's tag encoding
   produces. Rendezvous source buffers, FIN packets, the per-source RTS
   channel, and put-with-ack probe landings each get their own range. *)
let rdv_data_base = 0x3D00_0000
let fin_base = 0x3E00_0000
let rts_base = 0x3F00_0000
let ack_base = 0x3C00_0000
let rts_tag ~src = rts_base + src

let make_fabric ?(path = Abstract) machine =
  { machine; path; ctxs = Hashtbl.create 16 }

let machine f = f.machine
let fabric_path f = f.path

(* Causal hooks: sends mint a node whose id rides the carrier (the DMA
   descriptor on the real paths, the inbox entry on the abstract one);
   the matching receive links a Send_recv edge back to it. All no-ops
   while the machine's causal collector is disabled. *)
let causal_of c = Machine.causal c.fabric.machine

let causal_mint c ~cat ~name =
  let g = causal_of c in
  if Bg_obs.Causal.enabled g then
    Bg_obs.Causal.mint g ~cat ~name ~rank:c.rank ~core:0
      ~now:(Sim.now c.fabric.machine.Machine.sim) ()
  else Bg_obs.Causal.none

let causal_recv c ~name ~src_ctx =
  let g = causal_of c in
  if Bg_obs.Causal.enabled g && src_ctx <> Bg_obs.Causal.none then begin
    let r =
      Bg_obs.Causal.mint g ~cat:"msg" ~name ~rank:c.rank ~core:0
        ~now:(Sim.now c.fabric.machine.Machine.sim) ()
    in
    Bg_obs.Causal.link g Bg_obs.Causal.Send_recv ~src:src_ctx ~dst:r
  end
let fabric_of c = c.fabric
let rank c = c.rank
let path_of c = c.fabric.path
let node_count c = Machine.nodes c.fabric.machine
let sim c = c.fabric.machine.Machine.sim
let torus c = c.fabric.machine.Machine.torus

let engine_exn c =
  match c.engine with
  | Some e -> e
  | None -> invalid_arg "Dcmf: rank has no DMA engine"

let deposit peer_ctx ~tag ~data =
  (match Hashtbl.find_opt peer_ctx.buffers tag with
  | Some buf ->
    let n = min (Bytes.length data) (Bytes.length buf) in
    Bytes.blit data 0 buf 0 n
  | None ->
    (* unregistered target: auto-register, as a convenience *)
    Hashtbl.replace peer_ctx.buffers tag (Bytes.copy data))

let attach fabric ~rank =
  match Hashtbl.find_opt fabric.ctxs rank with
  | Some c -> c
  | None ->
    let engine =
      if rank >= 0 && rank < Machine.nodes fabric.machine then
        Some (Machine.dma fabric.machine rank)
      else None
    in
    let c =
      { fabric; rank; engine;
        buffers = Hashtbl.create 8;
        eager_inbox = Queue.create ();
        landings = Hashtbl.create 8;
        next_counter = 1;
        next_rdv = 1 }
    in
    (if fabric.path <> Abstract then begin
       let e = engine_exn c in
       (* Remote gets stream straight out of the registered buffers, no
          remote CPU involved. Landing data routes through the one-shot
          landing table first (get results), then the buffer deposit. *)
       Dma.set_read_hook e (fun ~tag ->
           match Hashtbl.find_opt c.buffers tag with
           | Some b -> Bytes.copy b
           | None -> Bytes.empty);
       Dma.set_write_hook e (fun ~tag ~data ->
           match Hashtbl.find_opt c.landings tag with
           | Some landing ->
             Hashtbl.remove c.landings tag;
             landing data
           | None -> deposit c ~tag ~data)
     end);
    Hashtbl.replace fabric.ctxs rank c;
    c

let peer c rank =
  match Hashtbl.find_opt c.fabric.ctxs rank with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Dcmf: rank %d not attached" rank)

let register c ~tag ~bytes = Hashtbl.replace c.buffers tag (Bytes.make bytes '\000')

let buffer c ~tag =
  match Hashtbl.find_opt c.buffers tag with
  | Some b -> Bytes.copy b
  | None -> invalid_arg "Dcmf.buffer: unregistered tag"

let fresh_counter c =
  let id = c.next_counter in
  c.next_counter <- id + 1;
  id

let fresh_rdv c =
  let id = c.next_rdv in
  c.next_rdv <- id + 1;
  id

let fresh_handle () = { complete = false; at = 0; data = None; comp = Direct }

let counter_handle c id =
  { complete = false; at = 0; data = None;
    comp =
      Counter
        { engine = engine_exn c; id; kernel = c.fabric.path = Dma_kernel } }

let finish h ~at ?data () =
  h.complete <- true;
  h.at <- at;
  h.data <- data

let is_complete h =
  (match h.comp with
  | Direct -> ()
  | Counter { engine; id; kernel = _ } ->
    if (not h.complete) && Dma.counter_value engine ~id = 0 then begin
      h.complete <- true;
      h.at <- (match Dma.counter_done_at engine ~id with Some at -> at | None -> 0)
    end);
  h.complete

let completion_cycle h =
  if not (is_complete h) then invalid_arg "Dcmf.completion_cycle: pending";
  h.at

let fetched h =
  match h.data with
  | Some d -> d
  | None -> invalid_arg "Dcmf.fetched: no data (not a completed get?)"

(* Polling wait, as DCMF does on CNK (interrupts stay off). The interval
   backs off so multi-megabyte transfers do not flood the event queue.
   On the kernel-mediated path every counter read is a Dma_poll syscall:
   the trap cost — and, under the FWK's tick scheduler, preemption — is
   charged on each poll, which is exactly the Table I gap. *)
let wait h =
  let poll interval =
    (match h.comp with
    | Counter { id; kernel = true; engine = _ } ->
      ignore
        (Sysreq.expect_int (Coro.syscall (Sysreq.Dma_poll (Sysreq.Dma_counter id))))
    | _ -> ());
    Coro.consume interval
  in
  let rec go interval =
    if not (is_complete h) then begin
      poll interval;
      go (min 2_000 (interval * 2))
    end
  in
  go 50

(* --- descriptor injection ------------------------------------------- *)

(* CNK: the injection FIFO is memory-mapped, so injection is a handful of
   user-mode stores; a full FIFO is spun on in user space (stall-on-full
   backpressure). FWK: every injection traps into the kernel, which must
   translate and pin the buffer before touching the FIFO; EAGAIN maps the
   same backpressure through the syscall boundary. *)
let inject_paced c d =
  match c.fabric.path with
  | Abstract -> invalid_arg "Dcmf: descriptor injection on an abstract fabric"
  | Dma_user ->
    Coro.consume Msg_params.dma_user_inject_sw;
    let e = engine_exn c in
    let rec go () =
      match Dma.inject e d with
      | Ok () -> ()
      | Error `Fifo_full ->
        Coro.consume Msg_params.dma_stall_retry_sw;
        go ()
    in
    go ()
  | Dma_kernel ->
    let rec go () =
      match Coro.syscall (Sysreq.Dma_inject d) with
      | Sysreq.R_err Errno.EAGAIN ->
        Coro.consume Msg_params.dma_stall_retry_sw;
        go ()
      | r -> Sysreq.expect_unit r
    in
    go ()

(* --- one-sided operations ------------------------------------------- *)

let put c ~dst ~tag ~data =
  match c.fabric.path with
  | Abstract ->
    let h = fresh_handle () in
    Coro.consume Msg_params.put_sw;
    let p = peer c dst in
    Torus.transfer (torus c) ~src:c.rank ~dst ~bytes:(Bytes.length data)
      ~on_arrival:(fun ~arrival_cycle ->
        deposit p ~tag ~data;
        finish h ~at:arrival_cycle ())
      ();
    h
  | Dma_user | Dma_kernel ->
    let id = fresh_counter c in
    let d =
      Dma.descriptor ~kind:Dma.Rdma_put ~dst ~tag ~payload:data
        ~bytes:(Bytes.length data) ~counter:id
        ~ctx:(causal_mint c ~cat:"dma" ~name:"inject.put") ()
    in
    inject_paced c d;
    counter_handle c id

let put_with_ack c ~dst ~tag ~data =
  match c.fabric.path with
  | Abstract ->
    let h = fresh_handle () in
    Coro.consume Msg_params.put_sw;
    let p = peer c dst in
    Torus.transfer (torus c) ~src:c.rank ~dst ~bytes:(Bytes.length data)
      ~on_arrival:(fun ~arrival_cycle:_ ->
        deposit p ~tag ~data;
        (* hardware ack packet back to the origin *)
        Torus.transfer (torus c) ~src:dst ~dst:c.rank
          ~bytes:Msg_params.remote_ack_bytes
          ~on_arrival:(fun ~arrival_cycle -> finish h ~at:arrival_cycle ())
          ())
      ();
    h
  | Dma_user | Dma_kernel ->
    let idp = fresh_counter c in
    let d =
      Dma.descriptor ~kind:Dma.Rdma_put ~dst ~tag ~payload:data
        ~bytes:(Bytes.length data) ~counter:idp
        ~ctx:(causal_mint c ~cat:"dma" ~name:"inject.put") ()
    in
    inject_paced c d;
    (* The ack round: a small get chases the put through the same
       injection FIFO and route, so its completion implies the put has
       landed remotely — the DMA fence idiom. *)
    let ida = fresh_counter c in
    let probe_tag = ack_base + fresh_rdv c in
    Hashtbl.replace c.landings probe_tag (fun _ -> ());
    let g =
      Dma.descriptor ~kind:Dma.Rdma_get ~dst ~tag:probe_tag
        ~bytes:Msg_params.remote_ack_bytes ~counter:ida
        ~ctx:(causal_mint c ~cat:"dma" ~name:"inject.fence") ()
    in
    inject_paced c g;
    counter_handle c ida

let get c ~src ~tag =
  match c.fabric.path with
  | Abstract ->
    let h = fresh_handle () in
    Coro.consume Msg_params.get_request_sw;
    let p = peer c src in
    (* request packet to the data owner; its DMA reads and streams back,
       no remote CPU involvement *)
    Torus.transfer (torus c) ~src:c.rank ~dst:src ~bytes:Msg_params.small_packet_bytes
      ~on_arrival:(fun ~arrival_cycle:_ ->
        let data =
          match Hashtbl.find_opt p.buffers tag with
          | Some b -> Bytes.copy b
          | None -> Bytes.empty
        in
        ignore
          (Sim.schedule_in (sim c) Msg_params.get_remote_dma (fun () ->
               Torus.transfer (torus c) ~src ~dst:c.rank ~bytes:(Bytes.length data)
                 ~on_arrival:(fun ~arrival_cycle ->
                   finish h ~at:arrival_cycle ~data ())
                 ())))
      ();
    h
  | Dma_user | Dma_kernel ->
    Coro.consume Msg_params.get_request_sw;
    let p = peer c src in
    let remote_bytes =
      match Hashtbl.find_opt p.buffers tag with
      | Some b -> Bytes.length b
      | None -> 0
    in
    let id = fresh_counter c in
    let h = counter_handle c id in
    h.data <- Some Bytes.empty; (* overwritten when the data lands *)
    Hashtbl.replace c.landings tag (fun data -> h.data <- Some data);
    let d =
      Dma.descriptor ~kind:Dma.Rdma_get ~dst:src ~tag
        ~bytes:(max 1 remote_bytes) ~counter:id
        ~ctx:(causal_mint c ~cat:"dma" ~name:"inject.get") ()
    in
    inject_paced c d;
    h

(* --- two-sided eager ------------------------------------------------- *)

let send_eager c ~dst ~tag ~data =
  let send_ctx = causal_mint c ~cat:"msg" ~name:"send_eager" in
  match c.fabric.path with
  | Abstract ->
    let h = fresh_handle () in
    Coro.consume (Msg_params.put_sw + Msg_params.eager_send_sw);
    let p = peer c dst in
    Torus.transfer (torus c) ~src:c.rank ~dst
      ~bytes:(Bytes.length data + Msg_params.small_packet_bytes)
      ~on_arrival:(fun ~arrival_cycle ->
        (* receive-side active-message dispatch costs CPU before the payload
           is usable *)
        ignore
          (Sim.schedule_in (sim c) Msg_params.eager_recv_handler (fun () ->
               Queue.push (tag, c.rank, data, send_ctx) p.eager_inbox;
               finish h ~at:(arrival_cycle + Msg_params.eager_recv_handler) ())))
      ();
    h
  | Dma_user | Dma_kernel ->
    (* eager copies the payload into the memory FIFO on the sending core:
       a per-byte cost rendezvous avoids, hence the crossover *)
    let bytes = Bytes.length data in
    Coro.consume (Msg_params.eager_send_sw + Msg_params.dma_copy_cycles bytes);
    let id = fresh_counter c in
    let d =
      Dma.descriptor ~kind:Dma.Eager ~dst ~tag ~payload:data ~bytes ~counter:id
        ~ctx:send_ctx ()
    in
    inject_paced c d;
    counter_handle c id

(* Pull everything out of the reception FIFO into the software inbox.
   User mode reads the mapped FIFO directly and pays only the per-packet
   dispatch + copy-out; kernel mode pays a Dma_poll syscall per call —
   even when the FIFO turns out to be empty. *)
let drain_reception c =
  let deliver (p : Dma.packet) =
    Coro.consume
      (Msg_params.dma_recv_dispatch_sw
      + Msg_params.dma_copy_cycles (Bytes.length p.Dma.pkt_payload));
    Queue.push (p.Dma.pkt_tag, p.Dma.pkt_src, p.Dma.pkt_payload, p.Dma.pkt_ctx)
      c.eager_inbox
  in
  match c.fabric.path with
  | Abstract -> ()
  | Dma_user -> List.iter deliver (Dma.drain_recv (engine_exn c))
  | Dma_kernel ->
    List.iter deliver
      (Sysreq.expect_dma_packets (Coro.syscall (Sysreq.Dma_poll Sysreq.Dma_recv)))

let try_recv_eager c ~tag =
  drain_reception c;
  (* scan the inbox for the first matching tag, preserving order *)
  let n = Queue.length c.eager_inbox in
  let found = ref None in
  for _ = 1 to n do
    let (t, src, data, sctx) = Queue.pop c.eager_inbox in
    if !found = None && t = tag then begin
      causal_recv c ~name:"recv_eager" ~src_ctx:sctx;
      found := Some (src, data)
    end
    else Queue.push (t, src, data, sctx) c.eager_inbox
  done;
  !found

(* --- rendezvous ------------------------------------------------------ *)

let encode_rts ~tag ~data_tag ~fin_tag ~bytes =
  let b = Bytes.create 32 in
  Bytes.set_int64_le b 0 (Int64.of_int tag);
  Bytes.set_int64_le b 8 (Int64.of_int data_tag);
  Bytes.set_int64_le b 16 (Int64.of_int fin_tag);
  Bytes.set_int64_le b 24 (Int64.of_int bytes);
  b

(* Sender: expose the source buffer, send a small RTS describing it, spin
   until the receiver's FIN arrives. The bulk bytes move by the
   receiver's rDMA-get — zero-copy on both ends. *)
let send_rendezvous c ~dst ~tag ~data =
  let id = fresh_rdv c in
  let data_tag = rdv_data_base + id in
  let fin_tag = fin_base + id in
  Hashtbl.replace c.buffers data_tag (Bytes.copy data);
  Coro.consume Msg_params.rndv_rts_sw;
  ignore
    (send_eager c ~dst ~tag:(rts_tag ~src:c.rank)
       ~data:(encode_rts ~tag ~data_tag ~fin_tag ~bytes:(Bytes.length data)));
  let rec spin interval =
    match try_recv_eager c ~tag:fin_tag with
    | Some _ -> ()
    | None ->
      Coro.consume interval;
      spin (min 2_000 (interval * 2))
  in
  spin 50;
  Hashtbl.remove c.buffers data_tag

let recv_rendezvous c ~src ~tag =
  let chan = rts_tag ~src in
  let rec await interval =
    match try_recv_eager c ~tag:chan with
    | Some (_, p) when Int64.to_int (Bytes.get_int64_le p 0) = tag -> p
    | Some (_, p) ->
      (* an RTS for a different user tag: rotate it to the back (its
         receive edge was already recorded at the match above) *)
      Queue.push (chan, src, p, Bg_obs.Causal.none) c.eager_inbox;
      Coro.consume interval;
      await (min 2_000 (interval * 2))
    | None ->
      Coro.consume interval;
      await (min 2_000 (interval * 2))
  in
  let p = await 50 in
  let data_tag = Int64.to_int (Bytes.get_int64_le p 8) in
  let fin_tag = Int64.to_int (Bytes.get_int64_le p 16) in
  Coro.consume Msg_params.rndv_cts_sw;
  let g = get c ~src ~tag:data_tag in
  wait g;
  let data = fetched g in
  ignore
    (send_eager c ~dst:src ~tag:fin_tag
       ~data:(Bytes.create Msg_params.rndv_fin_bytes));
  data

(* --- bulk ------------------------------------------------------------ *)

let put_large c ~dst ~tag ~bytes ~contiguous =
  match c.fabric.path with
  | Abstract ->
    ignore tag;
    let h = fresh_handle () in
    if contiguous then begin
      (* one descriptor streams the whole physically contiguous buffer *)
      Coro.consume Msg_params.put_sw;
      Torus.transfer (torus c) ~src:c.rank ~dst ~bytes
        ~on_arrival:(fun ~arrival_cycle -> finish h ~at:arrival_cycle ())
        ()
    end
    else begin
      (* Fragmented buffer: the DMA cannot walk page tables (paper §IV.C),
         so software copies each 4 KiB piece through a contiguous bounce
         buffer (~1.2 B/cycle through DDR, competing with the DMA's own
         traffic) and builds a descriptor per piece. The copy runs on the
         calling core, so it serializes against every link this core
         feeds — that is what caps paged bandwidth below wire speed. *)
      let frag = Msg_params.paged_fragment_bytes in
      let pieces = max 1 ((bytes + frag - 1) / frag) in
      let outstanding = ref pieces in
      let last_arrival = ref 0 in
      Coro.consume Msg_params.put_sw;
      for i = 0 to pieces - 1 do
        let len = min frag (bytes - (i * frag)) in
        Coro.consume (Msg_params.paged_fragment_sw + int_of_float (float_of_int len /. 1.2));
        Torus.transfer (torus c) ~src:c.rank ~dst ~bytes:len
          ~on_arrival:(fun ~arrival_cycle ->
            last_arrival := max !last_arrival arrival_cycle;
            decr outstanding;
            if !outstanding = 0 then finish h ~at:!last_arrival ())
          ()
      done
    end;
    h
  | Dma_user | Dma_kernel ->
    let id = fresh_counter c in
    let lctx = causal_mint c ~cat:"dma" ~name:"inject.put_large" in
    if contiguous then begin
      Coro.consume Msg_params.put_sw;
      inject_paced c
        (Dma.descriptor ~kind:Dma.Rdma_put ~dst ~tag ~bytes ~counter:id ~ctx:lctx ())
    end
    else begin
      (* Same fragmentation story, now with real descriptors: one per
         4 KiB piece, all sharing one counter. The first piece arms the
         full byte total so the counter cannot transiently hit zero; a
         full injection FIFO is absorbed by inject_paced's stall spin. *)
      let frag = Msg_params.paged_fragment_bytes in
      let pieces = max 1 ((bytes + frag - 1) / frag) in
      Coro.consume Msg_params.put_sw;
      for i = 0 to pieces - 1 do
        let len = min frag (bytes - (i * frag)) in
        Coro.consume
          (Msg_params.paged_fragment_sw + int_of_float (float_of_int len /. 1.2));
        inject_paced c
          (Dma.descriptor ~kind:Dma.Rdma_put ~dst ~tag ~bytes:len ~counter:id
             ~arm_bytes:(if i = 0 then bytes else 0) ~ctx:lctx ())
      done
    end;
    counter_handle c id

let barrier_via_hw c =
  let released = ref false in
  Bg_hw.Barrier_net.arrive c.fabric.machine.Machine.barrier ~rank:c.rank
    ~on_release:(fun ~release_cycle:_ -> released := true);
  let rec spin interval =
    if not !released then begin
      Coro.consume interval;
      spin (min 1_000 (interval * 2))
    end
  in
  spin 50

(* --- introspection --------------------------------------------------- *)

let dma_stats c =
  match c.engine with
  | Some e -> Some (Dma.stats e)
  | None -> None

let injected_descriptors c =
  match dma_stats c with Some s -> s.Dma.injected | None -> 0
