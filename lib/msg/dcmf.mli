(** DCMF — the Deep Computing Messaging Framework layer (paper §V.C).

    DCMF runs entirely in user space. It can, because CNK (a) lets the
    application drive the torus DMA directly, (b) exposes the
    virtual-to-physical mapping, and (c) provides large physically
    contiguous buffers. Here that shows up as: these functions are called
    from inside program coroutines, charge user-space software costs via
    [Coro.consume], and talk straight to {!Bg_hw.Torus} with no syscall.

    A {!fabric} is the per-machine rendezvous point; each rank's program
    {!attach}es once and gets its context. Data payloads are real bytes:
    put/get/eager move them into the peer's registered buffers, so tests
    can assert integrity end to end.

    {b Messaging paths.} A fabric is created on one of three paths:

    - {!Abstract} (the default): the pre-DMA model — transfers go to
      {!Bg_hw.Torus} directly with lumped software costs. Kept so every
      existing caller is bit-identical to before.
    - {!Dma_user}: the CNK story. Descriptors are injected into the
      chip's {!Bg_hw.Dma} injection FIFO with a few user-mode stores;
      completion counters and the reception FIFO are polled as plain
      memory. No syscalls anywhere on the critical path.
    - {!Dma_kernel}: the FWK story. The same descriptors, but every
      injection is a [Dma_inject] syscall (trap + translate + pin) and
      every counter read or FIFO drain is a [Dma_poll] syscall —
      preemptible by the tick scheduler. This is the kernel-mediated
      column of the paper's Table I.

    Completion handling: operations return {!handle}s whose completion is
    stamped with the hardware arrival cycle plus the receive-side software
    cost (abstract path) or latched off the DMA byte-decrement counter
    (DMA paths); {!wait} spins (DCMF on CNK polls — there is nothing to
    yield to). *)

type path =
  | Abstract    (** lumped-cost torus transfers, no descriptors *)
  | Dma_user    (** CNK: memory-mapped injection/polling, user cycles only *)
  | Dma_kernel  (** FWK: every injection/poll is a syscall *)

type fabric
type ctx
type handle

val make_fabric : ?path:path -> Machine.t -> fabric
(** [path] defaults to [Abstract], which preserves the exact behaviour
    (and simulation digests) of the pre-DMA messaging layer. *)

val machine : fabric -> Machine.t
val fabric_path : fabric -> path
val fabric_of : ctx -> fabric
val attach : fabric -> rank:int -> ctx
(** One context per rank; re-attaching returns the same context. On a DMA
    fabric this also wires the rank's engine read/write hooks so remote
    gets stream out of the registered buffers and landings route back. *)

val rank : ctx -> int
val path_of : ctx -> path
val node_count : ctx -> int

val register : ctx -> tag:int -> bytes:int -> unit
(** Expose a named buffer of the given size for remote put/get. *)

val buffer : ctx -> tag:int -> bytes
(** Read back a registered buffer's current contents. *)

val put : ctx -> dst:int -> tag:int -> data:bytes -> handle
(** One-sided put into the peer's registered buffer. The handle completes
    at remote data arrival (what the paper's one-way latency measures). *)

val put_with_ack : ctx -> dst:int -> tag:int -> data:bytes -> handle
(** Put whose completion waits for the hardware ack packet to return —
    the building block of ARMCI's blocking put. On the DMA paths the ack
    is a small get fenced behind the put in the same injection FIFO. *)

val get : ctx -> src:int -> tag:int -> handle
(** One-sided get of the peer's registered buffer; completes when the data
    lands locally (find it via {!fetched}). *)

val fetched : handle -> bytes
(** Data landed by a completed {!get}. *)

val send_eager : ctx -> dst:int -> tag:int -> data:bytes -> handle
(** Two-sided eager active message; completes (remotely) after the
    receive-side dispatch handler runs. On the DMA paths the payload is
    copied into the memory FIFO (per-byte sender cost) and again on
    drain (per-byte receiver cost) — which is why large messages go
    rendezvous. *)

val try_recv_eager : ctx -> tag:int -> (int * bytes) option
(** Dequeue an arrived eager message with this tag: (src, payload). On a
    DMA fabric this first drains the reception FIFO — directly in user
    mode, via a [Dma_poll] syscall in kernel mode. *)

val send_rendezvous : ctx -> dst:int -> tag:int -> data:bytes -> unit
(** Rendezvous send: RTS packet out, the receiver pulls the payload with
    an rDMA-get (zero-copy), FIN packet back. Blocks (spinning) until the
    FIN arrives, so the source buffer can be reused on return. Requires a
    concurrently running {!recv_rendezvous} on [dst]. *)

val recv_rendezvous : ctx -> src:int -> tag:int -> bytes
(** Receiver side of {!send_rendezvous}: waits for the matching RTS,
    pulls the data with a get, sends FIN, returns the payload. *)

val put_large : ctx -> dst:int -> tag:int -> bytes:int -> contiguous:bool -> handle
(** Bulk transfer for the Fig 8 bandwidth experiment. [contiguous] streams
    one DMA descriptor; otherwise the buffer is physically fragmented into
    4 KiB pieces, each needing its own descriptor + handshake round —
    the Linux-without-big-pages path. No payload bytes are carried. *)

val is_complete : handle -> bool
val completion_cycle : handle -> Bg_engine.Cycles.t
(** Raises [Invalid_argument] if not complete yet. *)

val wait : handle -> unit
(** Spin (adaptive-interval polling) inside the calling coroutine until
    the handle completes. On [Dma_kernel] each poll is a syscall. *)

val barrier_via_hw : ctx -> unit
(** Enter the global barrier network and spin until released. *)

val dma_stats : ctx -> Bg_hw.Dma.stats option
(** This rank's engine counters ([None] if the rank has no engine). *)

val injected_descriptors : ctx -> int
(** Descriptors this rank has injected so far (0 on an abstract fabric —
    handy for app-level reports). *)
