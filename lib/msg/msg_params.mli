(** Software-overhead constants of the messaging stack (cycles).

    These calibrate Table I of the paper. The hardware terms (injection,
    per-hop, serialization, reception) live in {!Bg_hw.Params}; the values
    here are the per-layer software costs that stack on top: DCMF's
    user-space descriptor construction, active-message dispatch, MPI's tag
    matching, the rendezvous handshake, and ARMCI's blocking semantics.

    Sums at 850 MHz for nearest neighbors reproduce the paper's ordering:
    DCMF Put 0.9 us < DCMF Eager = DCMF Get 1.6 us < ARMCI Put 2.0 us <
    MPI Eager 2.4 us < ARMCI Get 3.3 us < MPI Rendezvous 5.6 us. *)

val put_sw : int
(** DCMF put: build + inject a descriptor from user space. *)

val eager_send_sw : int
(** DCMF eager send-side: header construction on top of the put path. *)

val eager_recv_handler : int
(** DCMF eager receive-side: active-message dispatch + copy-out. *)

val get_request_sw : int
(** DCMF get: request construction. *)

val get_remote_dma : int
(** DCMF get: remote-side DMA read setup (no remote CPU involvement). *)

val mpi_send_overhead : int
(** MPI_Send on top of DCMF eager: envelope + request bookkeeping. *)

val mpi_match_overhead : int
(** MPI receive-side tag matching against posted/unexpected queues. *)

val rndv_rts_sw : int
(** Rendezvous: RTS construction. *)

val rndv_cts_sw : int
(** Rendezvous: CTS turnaround at the receiver. *)

val armci_put_overhead : int
(** ARMCI blocking-put bookkeeping + local fence. *)

val armci_get_overhead : int

val remote_ack_bytes : int
(** Size of a completion/ack packet. *)

val small_packet_bytes : int
(** Control packet size (RTS/CTS/get-request). *)

val paged_fragment_bytes : int
(** Fragment size when the buffer is not physically contiguous (4 KiB). *)

val paged_fragment_sw : int
(** Per-fragment software cost (descriptor + pin) on the paged path. *)

(** {2 Descriptor-based DMA path}

    Costs of driving {!Bg_hw.Dma} from user space (CNK maps the FIFOs and
    counters into the application). The FWK equivalents are syscall costs
    in {!Bg_fwk.Node}. *)

val dma_user_inject_sw : int
(** Build a descriptor and store it to the memory-mapped injection FIFO. *)

val dma_stall_retry_sw : int
(** Spin quantum while the injection FIFO is full (stall-on-full). *)

val dma_recv_dispatch_sw : int
(** Per-packet dispatch when draining the reception FIFO. *)

val dma_copy_cycles : int -> int
(** Cycles to memcpy [bytes] into or out of a memory FIFO (~1 B/cycle).
    Eager pays this on both sides; rendezvous is zero-copy — the source
    of the eager/rendezvous crossover. *)

val rndv_fin_bytes : int
(** Size of the rendezvous FIN packet. *)
