type perm = { read : bool; write : bool; execute : bool }

let perm_rwx = { read = true; write = true; execute = true }
let perm_rw = { read = true; write = true; execute = false }
let perm_rx = { read = true; write = false; execute = true }
let perm_ro = { read = true; write = false; execute = false }

type entry = { vaddr : int; paddr : int; size : Page_size.t; perm : perm }

type access = Load | Store | Fetch

type result = Hit of int | Miss | Fault of string

type t = {
  capacity : int;
  mutable entries : entry list;  (* oldest last, for FIFO eviction *)
  mutable evictions : int;
  mutable misses : int;
  mutable on_miss : unit -> unit;
  mutable on_refill : unit -> unit;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Tlb.create";
  {
    capacity;
    entries = [];
    evictions = 0;
    misses = 0;
    on_miss = ignore;
    on_refill = ignore;
  }

let set_miss_hook t f = t.on_miss <- f
let set_refill_hook t f = t.on_refill <- f

let covers e addr =
  addr >= e.vaddr && addr < e.vaddr + Page_size.bytes e.size

let overlaps a b =
  let a_end = a.vaddr + Page_size.bytes a.size in
  let b_end = b.vaddr + Page_size.bytes b.size in
  a.vaddr < b_end && b.vaddr < a_end

let install t e =
  if not (Page_size.aligned e.size e.vaddr) then
    Error
      (Printf.sprintf "vaddr 0x%x not aligned to %s page" e.vaddr
         (Page_size.to_string e.size))
  else if not (Page_size.aligned e.size e.paddr) then
    Error
      (Printf.sprintf "paddr 0x%x not aligned to %s page" e.paddr
         (Page_size.to_string e.size))
  else if List.exists (overlaps e) t.entries then
    Error (Printf.sprintf "entry at 0x%x overlaps an installed mapping" e.vaddr)
  else begin
    if List.length t.entries >= t.capacity then begin
      (* FIFO eviction of the oldest entry. *)
      t.entries <- List.filteri (fun i _ -> i < List.length t.entries - 1) t.entries;
      t.evictions <- t.evictions + 1
    end;
    t.entries <- e :: t.entries;
    t.on_refill ();
    Ok ()
  end

let permitted access perm =
  match access with
  | Load -> perm.read
  | Store -> perm.write
  | Fetch -> perm.execute

let translate t access addr =
  match List.find_opt (fun e -> covers e addr) t.entries with
  | None ->
    t.misses <- t.misses + 1;
    t.on_miss ();
    Miss
  | Some e ->
    if permitted access e.perm then Hit (e.paddr + (addr - e.vaddr))
    else
      Fault
        (Printf.sprintf "%s access to 0x%x denied"
           (match access with Load -> "load" | Store -> "store" | Fetch -> "fetch")
           addr)

let flush t = t.entries <- []

let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  let w_b v = Buffer.add_uint8 b (if v then 1 else 0) in
  w_i t.capacity;
  w_i t.evictions;
  w_i t.misses;
  w_i (List.length t.entries);
  List.iter
    (fun e ->
      w_i e.vaddr;
      w_i e.paddr;
      w_i (Page_size.bytes e.size);
      w_b e.perm.read;
      w_b e.perm.write;
      w_b e.perm.execute)
    t.entries
let entries t = t.entries
let entry_count t = List.length t.entries
let evictions t = t.evictions
let misses t = t.misses
