(** Per-core translation lookaside buffer.

    Two usage styles exist, matching the two kernels:
    - CNK installs a static set of entries at process start and never takes
      a miss (paper §IV.C);
    - the FWK installs 4 KiB entries on demand; capacity evictions (FIFO)
      model the translation-miss noise contributor of paper §IV.C.

    Translation is by explicit entries only; overlapping entries are
    rejected at install time. *)

type perm = { read : bool; write : bool; execute : bool }

val perm_rwx : perm
val perm_rw : perm
val perm_rx : perm
val perm_ro : perm

type entry = {
  vaddr : int;  (** virtual base, aligned to [size] *)
  paddr : int;  (** physical base, aligned to [size] *)
  size : Page_size.t;
  perm : perm;
}

type t

type access = Load | Store | Fetch

type result =
  | Hit of int  (** translated physical address *)
  | Miss        (** no entry covers the address *)
  | Fault of string  (** permission violation *)

val create : capacity:int -> t

val install : t -> entry -> (unit, string) Stdlib.result
(** Fails on misalignment or overlap with an existing entry. When the TLB
    is full, the oldest entry is evicted (FIFO) and the eviction counter is
    bumped — CNK never triggers this; the FWK does. *)

val translate : t -> access -> int -> result

val flush : t -> unit
(** Drop all entries (chip reset, process teardown). *)

val entries : t -> entry list
val entry_count : t -> int
val evictions : t -> int
(** Number of capacity evictions since creation — CNK asserts this is 0. *)

val misses : t -> int
(** Number of [Miss] results returned by {!translate}. *)

val set_miss_hook : t -> (unit -> unit) -> unit
(** Called on every [Miss] result; the UPC feed. Default: no-op. *)

val set_refill_hook : t -> (unit -> unit) -> unit
(** Called on every successful {!install}; the UPC feed. Default: no-op. *)

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state, little-endian, into [b]. Hashtable
    contents are sorted before writing, so the bytes are deterministic. *)
