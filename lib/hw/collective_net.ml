open Bg_engine

type fault_config = {
  drop_rate : float;
  corrupt_rate : float;
  dup_rate : float;
  jitter_max : int;
}

let no_faults = { drop_rate = 0.; corrupt_rate = 0.; dup_rate = 0.; jitter_max = 0 }

let validate_faults f =
  let rate r = r >= 0. && r <= 1. in
  if
    not
      (rate f.drop_rate && rate f.corrupt_rate && rate f.dup_rate && f.jitter_max >= 0)
  then invalid_arg "Collective_net: fault rates must be in [0,1], jitter_max >= 0"

type t = {
  sim : Sim.t;
  params : Params.t;
  compute_nodes : int;
  nodes_per_io_node : int;
  (* busy-until of each I/O node's shared root link, per direction *)
  up_busy : Cycles.t array;
  down_busy : Cycles.t array;
  mutable enabled : bool;
  mutable faults : fault_config;
  mutable drops : int;
  mutable corruptions : int;
  mutable duplicates : int;
}

let create sim ?(params = Params.bgp) ~compute_nodes ~nodes_per_io_node () =
  if compute_nodes <= 0 || nodes_per_io_node <= 0 then
    invalid_arg "Collective_net.create";
  let io_nodes = (compute_nodes + nodes_per_io_node - 1) / nodes_per_io_node in
  {
    sim;
    params;
    compute_nodes;
    nodes_per_io_node;
    up_busy = Array.make io_nodes 0;
    down_busy = Array.make io_nodes 0;
    enabled = true;
    faults = no_faults;
    drops = 0;
    corruptions = 0;
    duplicates = 0;
  }

let compute_nodes t = t.compute_nodes
let io_node_count t = Array.length t.up_busy

let io_node_of t ~cn =
  if cn < 0 || cn >= t.compute_nodes then invalid_arg "Collective_net.io_node_of";
  cn / t.nodes_per_io_node

let tree_depth t =
  (* Binary-tree depth of a pset. *)
  let rec go depth n = if n <= 1 then depth else go (depth + 1) ((n + 1) / 2) in
  go 1 t.nodes_per_io_node

let enabled t = t.enabled
let set_enabled t v = t.enabled <- v

let fault_config t = t.faults

let set_fault_config t f =
  validate_faults f;
  t.faults <- f

let drops t = t.drops
let corruptions t = t.corruptions
let duplicates t = t.duplicates

let faults_active t =
  let f = t.faults in
  f.drop_rate > 0. || f.corrupt_rate > 0. || f.dup_rate > 0. || f.jitter_max > 0

let serialization_cycles t bytes =
  int_of_float
    (Float.ceil (float_of_int bytes /. t.params.Params.collective_link_bytes_per_cycle))

let estimate_cycles t ~bytes =
  (tree_depth t * t.params.Params.collective_hop_cycles) + serialization_cycles t bytes

(* Flip one uniformly-chosen bit of a private copy of the message. *)
let corrupt_copy rng payload =
  let copy = Bytes.copy payload in
  if Bytes.length copy > 0 then begin
    let bit = Rng.int rng (Bytes.length copy * 8) in
    let i = bit / 8 in
    Bytes.set_uint8 copy i (Bytes.get_uint8 copy i lxor (1 lsl (bit mod 8)))
  end;
  copy

(* Deliver one copy of the message, applying the fault model. Draw order is
   fixed (drop, corrupt, jitter) so a run is a pure function of the seed. *)
let deliver_copy t rng ~payload ~arrival ~on_arrival =
  let f = t.faults in
  if f.drop_rate > 0. && Rng.float rng 1.0 < f.drop_rate then begin
    t.drops <- t.drops + 1;
    Sim.emit t.sim ~label:"collective.drop" ~value:(Int64.of_int t.drops)
  end
  else begin
    let payload =
      if f.corrupt_rate > 0. && Rng.float rng 1.0 < f.corrupt_rate then begin
        t.corruptions <- t.corruptions + 1;
        Sim.emit t.sim ~label:"collective.corrupt" ~value:(Int64.of_int t.corruptions);
        corrupt_copy rng payload
      end
      else payload
    in
    let arrival =
      if f.jitter_max > 0 then arrival + Rng.int rng (f.jitter_max + 1) else arrival
    in
    ignore
      (Sim.schedule_at t.sim arrival (fun () -> on_arrival ~payload ~arrival_cycle:arrival))
  end

let ship t busy idx ~payload ~on_arrival =
  if not t.enabled then raise (Fault.Unavailable "collective");
  let now = Sim.now t.sim in
  let ser = serialization_cycles t (Bytes.length payload) in
  let start = max now busy.(idx) in
  busy.(idx) <- start + ser;
  let arrival = start + ser + (tree_depth t * t.params.Params.collective_hop_cycles) in
  if not (faults_active t) then
    (* Lossless tree: the pre-fault-model behavior, bit for bit. *)
    ignore
      (Sim.schedule_at t.sim arrival (fun () -> on_arrival ~payload ~arrival_cycle:arrival))
  else begin
    let rng = Sim.rng t.sim "collective.faults" in
    deliver_copy t rng ~payload ~arrival ~on_arrival;
    if t.faults.dup_rate > 0. && Rng.float rng 1.0 < t.faults.dup_rate then begin
      t.duplicates <- t.duplicates + 1;
      Sim.emit t.sim ~label:"collective.dup" ~value:(Int64.of_int t.duplicates);
      deliver_copy t rng ~payload ~arrival ~on_arrival
    end
  end

let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  let w_f v = Buffer.add_int64_le b (Int64.bits_of_float v) in
  w_i t.compute_nodes;
  w_i t.nodes_per_io_node;
  Buffer.add_uint8 b (if t.enabled then 1 else 0);
  w_i (Array.length t.up_busy);
  Array.iter w_i t.up_busy;
  Array.iter w_i t.down_busy;
  w_f t.faults.drop_rate;
  w_f t.faults.corrupt_rate;
  w_f t.faults.dup_rate;
  w_i t.faults.jitter_max;
  w_i t.drops;
  w_i t.corruptions;
  w_i t.duplicates

let to_io_node t ~cn ~payload ~on_arrival =
  let io = io_node_of t ~cn in
  Sim.emit t.sim ~label:"collective.up" ~value:(Int64.of_int cn);
  ship t t.up_busy io ~payload ~on_arrival

let to_compute_node t ~cn ~payload ~on_arrival =
  let io = io_node_of t ~cn in
  Sim.emit t.sim ~label:"collective.down" ~value:(Int64.of_int cn);
  ship t t.down_busy io ~payload ~on_arrival
