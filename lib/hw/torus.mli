(** 3D torus interconnect with DMA-style transfers.

    Routing is dimension-ordered (X, then Y, then Z) with wraparound,
    taking the shorter direction around each ring. Timing is a wormhole
    model: injection overhead, per-hop head latency, one serialization term
    at link bandwidth — and each traversed link is reserved for the
    serialization time, so concurrent transfers over a shared link queue
    behind each other. This is the substrate whose user-space access CNK's
    static memory map makes safe (paper §V.C). *)

type t

val create : Bg_engine.Sim.t -> ?params:Params.t -> dims:int * int * int -> unit -> t

val node_count : t -> int
val dims : t -> int * int * int
val coord_of_rank : t -> int -> int * int * int
val rank_of_coord : t -> int * int * int -> int
val hops : t -> src:int -> dst:int -> int
(** Number of links a packet crosses; 0 when [src = dst]. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit
(** A disabled torus models the unit being absent/broken during bringup;
    {!transfer} then raises {!Fault.Unavailable}. *)

(** {1 Per-link faults (§III: running with partial/broken hardware)}

    Directions: 0/1 = ±x, 2/3 = ±y, 4/5 = ±z. Breaking a link makes the
    router take the long way around that ring when the short path would
    cross it; if both directions of a needed ring are broken the transfer
    raises {!Fault.Unavailable}. *)

val set_link_broken : t -> rank:int -> dir:int -> bool -> unit
val link_broken : t -> rank:int -> dir:int -> bool
val broken_links : t -> (int * int) list

val set_link_down_hook : t -> (rank:int -> dir:int -> in_flight:int -> unit) -> unit
(** Called when a link transitions to broken, with the number of
    transfers still crossing it — the machine layer's RAS feed for
    "link severed under traffic". Default: no-op. *)

val link_in_flight : t -> rank:int -> dir:int -> int
(** Transfers whose route crosses this directed link and whose last byte
    has not yet arrived. *)

val link_busy_cycles : t -> rank:int -> dir:int -> int
(** Cumulative cycles this directed link has spent serializing payload. *)

val busy_links : t -> ((int * int) * int) list
(** Every link that ever carried traffic with its busy-cycle total,
    sorted by (rank, dir). *)

val total_busy_cycles : t -> int

val transfer :
  t ->
  src:int ->
  dst:int ->
  bytes:int ->
  ?on_arrival:(arrival_cycle:Bg_engine.Cycles.t -> unit) ->
  unit ->
  unit
(** Start a DMA transfer now. [on_arrival] fires when the last byte lands.
    Local transfers ([src = dst]) cost only injection+receive overhead. *)

val estimate_cycles : t -> src:int -> dst:int -> bytes:int -> int
(** Contention-free latency estimate for the same path. *)

val transfers_started : t -> int

val set_inject_hook : t -> (src:int -> unit) -> unit
(** Called once per {!transfer} with the injecting rank — the UPC's
    torus-packet feed. Default: no-op. *)

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state, little-endian, into [b]. Hashtable
    contents are sorted before writing, so the bytes are deterministic. *)
