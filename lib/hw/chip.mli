(** One Blue Gene/P-like System-On-a-Chip node.

    Aggregates four cores (each with its own TLB and DAC registers), the
    DRAM, a small boot SRAM, the L2 bank-mapping model, and availability
    status for each functional unit. The chip-level {!reset} implements the
    paper's reproducible-reboot substrate: all core state is cleared, DRAM
    obeys its self-refresh rule, and the reset counter is bumped. *)

type unit_id = Torus_unit | Collective_unit | Barrier_unit | Dma_unit | L2_bank of int

type core = {
  core_id : int;
  tlb : Tlb.t;
  dac : Dac.t;
  mutable retired : int;  (** cycles of work retired, for trace purposes *)
}

type t

val create : ?params:Params.t -> id:int -> unit -> t

val id : t -> int
val params : t -> Params.t
val cores : t -> core array
val core : t -> int -> core
val dram : t -> Dram.t
val memory : t -> Memory.t
(** Shortcut for [Dram.memory (dram t)]. *)

val boot_sram : t -> Memory.t
val l2 : t -> Cache.t

val upc : t -> Upc.t
(** The chip's performance-counter unit. {!create} wires the per-core TLB
    miss/refill hooks, the L2 access hook and the DRAM self-refresh hook
    into it; torus and barrier feeds are wired at machine level where the
    rank-to-chip mapping is known. A chip {!reset} resets the UPC too. *)

val set_l2_mapping : t -> Cache.mapping -> t
(** Returns a chip with the same identity/memory but a fresh L2 model using
    the given mapping — the §III cache-mapping experiments. *)

val unit_status : t -> unit_id -> Fault.status
val set_unit_status : t -> unit_id -> Fault.status -> unit
val check_unit : t -> unit_id -> unit
(** Raise {!Fault.Unavailable} if the unit is not working. *)

val manufacturing_skew : t -> float
(** Per-chip manufacturing variability in [0,1), deterministic in the chip
    id. Drives the borderline-timing-bug model of {!Bg_bringup}. *)

val reset : t -> unit
(** Full reset: flush every TLB, clear every DAC register, zero retired
    counters, apply DRAM self-refresh semantics. Boot SRAM survives. *)

val reset_count : t -> int
val scan_state : t -> Bg_engine.Fnv.t
(** Digest of the architectural state a logic scan would capture: core
    retired counters, TLB geometry, DAC programming, DRAM digest. *)

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state, little-endian, into [b]. Hashtable
    contents are sorted before writing, so the bytes are deterministic. *)
