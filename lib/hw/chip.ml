type unit_id = Torus_unit | Collective_unit | Barrier_unit | Dma_unit | L2_bank of int

type core = {
  core_id : int;
  tlb : Tlb.t;
  dac : Dac.t;
  mutable retired : int;
}

type t = {
  id : int;
  params : Params.t;
  cores : core array;
  dram : Dram.t;
  boot_sram : Memory.t;
  mutable l2 : Cache.t;
  upc : Upc.t;
  units : (unit_id, Fault.status) Hashtbl.t;
  mutable reset_count : int;
}

let unit_name = function
  | Torus_unit -> "torus"
  | Collective_unit -> "collective"
  | Barrier_unit -> "barrier"
  | Dma_unit -> "dma"
  | L2_bank i -> Printf.sprintf "l2-bank-%d" i

let create ?(params = Params.bgp) ~id () =
  let make_core core_id =
    { core_id; tlb = Tlb.create ~capacity:params.Params.tlb_entries; dac = Dac.create (); retired = 0 }
  in
  let t =
    {
      id;
      params;
      cores = Array.init params.Params.cores_per_node make_core;
      dram = Dram.create ~size:params.Params.dram_bytes;
      boot_sram = Memory.create ~size:(64 * 1024);
      l2 = Cache.create ~banks:params.Params.l2_banks Cache.Xor_fold;
      upc = Upc.create ~cores:params.Params.cores_per_node ();
      units = Hashtbl.create 8;
      reset_count = 0;
    }
  in
  Array.iter
    (fun c ->
      Tlb.set_miss_hook c.tlb (fun () ->
          Upc.record t.upc ~core:c.core_id Upc.Tlb_miss 1);
      Tlb.set_refill_hook c.tlb (fun () ->
          Upc.record t.upc ~core:c.core_id Upc.Tlb_refill 1))
    t.cores;
  Cache.set_access_hook t.l2 (fun () -> Upc.record t.upc Upc.L1_miss 1);
  Dram.set_self_refresh_hook t.dram (fun () ->
      Upc.record t.upc Upc.Dram_self_refresh 1);
  t

let id t = t.id
let params t = t.params
let cores t = t.cores

let core t i =
  if i < 0 || i >= Array.length t.cores then invalid_arg "Chip.core";
  t.cores.(i)

let dram t = t.dram
let memory t = Dram.memory t.dram
let boot_sram t = t.boot_sram
let l2 t = t.l2

let upc t = t.upc

let set_l2_mapping t mapping =
  t.l2 <- Cache.create ~banks:t.params.Params.l2_banks mapping;
  Cache.set_access_hook t.l2 (fun () -> Upc.record t.upc Upc.L1_miss 1);
  t

let unit_status t u =
  match Hashtbl.find_opt t.units u with Some s -> s | None -> Fault.Working

let set_unit_status t u s = Hashtbl.replace t.units u s
let check_unit t u = Fault.check ~name:(unit_name u) (unit_status t u)

let manufacturing_skew t =
  (* Deterministic per-chip variability derived from the chip id. *)
  let h = Bg_engine.Fnv.add_int Bg_engine.Fnv.empty (t.id * 2654435761) in
  let v = Int64.to_float (Int64.shift_right_logical h 11) in
  v /. 9007199254740992.0

let reset t =
  Array.iter
    (fun c ->
      Tlb.flush c.tlb;
      for slot = 0 to Dac.registers - 1 do
        Dac.set c.dac ~slot None
      done;
      c.retired <- 0)
    t.cores;
  Dram.on_reset t.dram;
  Upc.reset t.upc;
  t.reset_count <- t.reset_count + 1

let reset_count t = t.reset_count

let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  let w_i64 = Buffer.add_int64_le b in
  let w_s s =
    w_i (String.length s);
    Buffer.add_string b s
  in
  w_i t.id;
  w_i t.reset_count;
  w_i (Array.length t.cores);
  Array.iter
    (fun c ->
      w_i c.retired;
      w_i (Dac.violations c.dac);
      for slot = 0 to Dac.registers - 1 do
        match Dac.get c.dac ~slot with
        | None -> Buffer.add_uint8 b 0
        | Some w ->
          Buffer.add_uint8 b 1;
          w_i w.Dac.lo;
          w_i w.Dac.hi;
          Buffer.add_uint8 b (if w.Dac.on_store then 1 else 0);
          Buffer.add_uint8 b (if w.Dac.on_load then 1 else 0)
      done;
      Tlb.capture c.tlb b)
    t.cores;
  Cache.capture t.l2 b;
  Upc.capture t.upc b;
  w_i64 (Dram.digest t.dram);
  Buffer.add_uint8 b (if Dram.in_self_refresh t.dram then 1 else 0);
  w_i64 (Memory.digest t.boot_sram);
  let units =
    Hashtbl.fold (fun u s acc -> (unit_name u, s) :: acc) t.units []
    |> List.sort compare
  in
  w_i (List.length units);
  List.iter
    (fun (name, status) ->
      w_s name;
      match (status : Fault.status) with
      | Fault.Working -> Buffer.add_uint8 b 0
      | Fault.Broken why ->
        Buffer.add_uint8 b 1;
        w_s why
      | Fault.Absent -> Buffer.add_uint8 b 2)
    units

let scan_state t =
  let open Bg_engine in
  let h = Fnv.add_int Fnv.empty t.id in
  let h =
    Array.fold_left
      (fun h c ->
        let h = Fnv.add_int h c.retired in
        let h = Fnv.add_int h (Tlb.entry_count c.tlb) in
        List.fold_left
          (fun h (e : Tlb.entry) ->
            let h = Fnv.add_int h e.Tlb.vaddr in
            Fnv.add_int h e.Tlb.paddr)
          h (Tlb.entries c.tlb))
      h t.cores
  in
  Fnv.add_int64 h (Dram.digest t.dram)
