(** Collective (tree) network linking compute nodes to their I/O node.

    On BG/P every pset of compute nodes shares one I/O node over the
    collective network; CNK function-ships I/O system calls over it (paper
    §IV.A). The model charges tree-depth hop latency plus serialization on
    the shared I/O-node link, so many compute nodes offloading at once
    queue behind each other — the aggregation the paper credits with
    keeping filesystem-client counts manageable.

    Messages carry their real payload bytes. A seeded fault model — all
    knobs zero by default — can drop a message, flip one bit of a private
    copy, deliver a duplicate, or add delay jitter; with every knob at
    zero the delivery schedule is bit-identical to the lossless model.
    Faults draw from the simulator's ["collective.faults"] RNG stream, so
    the same seed produces the same drops on every run. *)

type t

type fault_config = {
  drop_rate : float;     (** per-delivery probability the message vanishes *)
  corrupt_rate : float;  (** per-delivery probability of a single bit flip *)
  dup_rate : float;      (** per-message probability a second copy is sent *)
  jitter_max : int;      (** extra delivery delay, uniform in [0, jitter_max] cycles *)
}

val no_faults : fault_config

val create :
  Bg_engine.Sim.t ->
  ?params:Params.t ->
  compute_nodes:int ->
  nodes_per_io_node:int ->
  unit ->
  t

val compute_nodes : t -> int
val io_node_count : t -> int
val io_node_of : t -> cn:int -> int
val tree_depth : t -> int

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val fault_config : t -> fault_config
val set_fault_config : t -> fault_config -> unit
(** Raises [Invalid_argument] on rates outside [0,1] or negative jitter. *)

val drops : t -> int
val corruptions : t -> int
val duplicates : t -> int
(** Injected-fault counts since creation. *)

val to_io_node :
  t ->
  cn:int ->
  payload:bytes ->
  on_arrival:(payload:bytes -> arrival_cycle:Bg_engine.Cycles.t -> unit) ->
  unit
(** Ship [payload] from compute node [cn] up to its I/O node. [on_arrival]
    fires zero (dropped), one, or two (duplicated) times; the delivered
    payload may differ from the sent one when corruption fires. *)

val to_compute_node :
  t ->
  cn:int ->
  payload:bytes ->
  on_arrival:(payload:bytes -> arrival_cycle:Bg_engine.Cycles.t -> unit) ->
  unit
(** Ship a reply back down to [cn]. *)

val estimate_cycles : t -> bytes:int -> int
(** Contention-free one-way cost. *)

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state, little-endian, into [b]. Hashtable
    contents are sorted before writing, so the bytes are deterministic. *)
