type event =
  | L1_miss
  | Tlb_miss
  | Tlb_refill
  | Torus_packet
  | Barrier_wait
  | Dram_self_refresh
  | Dma_descriptor

let all_events =
  [
    L1_miss; Tlb_miss; Tlb_refill; Torus_packet; Barrier_wait; Dram_self_refresh;
    Dma_descriptor;
  ]

let event_index = function
  | L1_miss -> 0
  | Tlb_miss -> 1
  | Tlb_refill -> 2
  | Torus_packet -> 3
  | Barrier_wait -> 4
  | Dram_self_refresh -> 5
  | Dma_descriptor -> 6

let n_events = 7

let event_name = function
  | L1_miss -> "l1_miss"
  | Tlb_miss -> "tlb_miss"
  | Tlb_refill -> "tlb_refill"
  | Torus_packet -> "torus_packet"
  | Barrier_wait -> "barrier_wait"
  | Dram_self_refresh -> "dram_self_refresh"
  | Dma_descriptor -> "dma_descriptor"

let chip_scope = -1

type reading = { event : event; core : int; count : int }

type t = {
  cores : int;
  (* live counters, indexed [event_index * (cores + 1) + (core + 1)];
     slot 0 of each event row is the chip-scope counter *)
  counts : int array;
  (* latched copy written by [freeze]; [None] until the first freeze *)
  mutable frozen : int array option;
  mutable running : bool;
}

let create ~cores () =
  if cores <= 0 then invalid_arg "Upc.create";
  {
    cores;
    counts = Array.make (n_events * (cores + 1)) 0;
    frozen = None;
    running = false;
  }

let slot t event core =
  if core < chip_scope || core >= t.cores then invalid_arg "Upc: bad core";
  (event_index event * (t.cores + 1)) + core + 1

let start t = t.running <- true
let stop t = t.running <- false
let running t = t.running

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.frozen <- None;
  t.running <- false

let record t ?(core = chip_scope) event n =
  if t.running then begin
    let i = slot t event core in
    t.counts.(i) <- t.counts.(i) + n
  end

let freeze t = t.frozen <- Some (Array.copy t.counts)

let read t ?(core = chip_scope) event = t.counts.(slot t event core)

let readings_of_array t a =
  List.concat_map
    (fun event ->
      List.filter_map
        (fun core ->
          let c = a.((event_index event * (t.cores + 1)) + core + 1) in
          if c = 0 then None else Some { event; core; count = c })
        (List.init (t.cores + 1) (fun i -> i - 1)))
    all_events

let snapshot t = readings_of_array t t.counts

let frozen_snapshot t = Option.map (readings_of_array t) t.frozen

let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  w_i t.cores;
  Buffer.add_uint8 b (if t.running then 1 else 0);
  Array.iter w_i t.counts;
  match t.frozen with
  | None -> Buffer.add_uint8 b 0
  | Some a ->
    Buffer.add_uint8 b 1;
    Array.iter w_i a

let digest t =
  let open Bg_engine in
  let h = Array.fold_left Fnv.add_int Fnv.empty t.counts in
  match t.frozen with
  | None -> h
  | Some a -> Array.fold_left Fnv.add_int (Fnv.add_int h 1) a
