type mapping = Modulo_line | Xor_fold | Fixed of int

type t = {
  line_bytes : int;
  banks : int;
  mapping : mapping;
  counts : int array;
  mutable on_access : unit -> unit;
}

let create ?(line_bytes = 128) ~banks mapping =
  if banks <= 0 then invalid_arg "Cache.create";
  (match mapping with
  | Fixed b when b < 0 || b >= banks -> invalid_arg "Cache.create: bad fixed bank"
  | _ -> ());
  { line_bytes; banks; mapping; counts = Array.make banks 0; on_access = ignore }

let set_access_hook t f = t.on_access <- f

let bank_of t addr =
  let line = addr / t.line_bytes in
  match t.mapping with
  | Modulo_line -> line mod t.banks
  | Fixed b -> b
  | Xor_fold ->
    (* Fold higher line bits back onto the bank index so strided access
       patterns spread across banks. *)
    let rec fold acc v = if v = 0 then acc else fold (acc lxor v) (v / t.banks) in
    fold 0 line mod t.banks

let access t addr =
  let b = bank_of t addr in
  t.counts.(b) <- t.counts.(b) + 1;
  t.on_access ()

let access_count t ~bank = t.counts.(bank)

let imbalance t =
  let total = Array.fold_left ( + ) 0 t.counts in
  if total = 0 then 1.0
  else begin
    let mean = float_of_int total /. float_of_int t.banks in
    let max_load = Array.fold_left max 0 t.counts in
    float_of_int max_load /. mean
  end

let mapping t = t.mapping
let banks t = t.banks

let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  w_i t.line_bytes;
  w_i t.banks;
  w_i (match t.mapping with Modulo_line -> 0 | Xor_fold -> 1 | Fixed bank -> 2 + bank);
  Array.iter w_i t.counts
