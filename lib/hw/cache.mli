(** L2 cache bank mapping model.

    The paper (§III) describes using CNK's configuration flags to vary the
    mapping of physical memory onto L2 cache banks during chip design,
    measuring application sensitivity to bank conflicts. This model keeps
    exactly what those experiments need: a configurable address→bank
    function and conflict accounting; it does not model cached data. *)

type mapping =
  | Modulo_line  (** bank = (addr / line) mod banks — the naive mapping *)
  | Xor_fold     (** bank = xor-folded address bits — conflict-resistant *)
  | Fixed of int (** everything to one bank — a deliberately broken config *)

type t

val create : ?line_bytes:int -> banks:int -> mapping -> t

val bank_of : t -> int -> int
(** Bank servicing a physical address. *)

val access : t -> int -> unit
(** Record an access for conflict accounting. *)

val access_count : t -> bank:int -> int

val imbalance : t -> float
(** max/mean bank load over all accesses so far; 1.0 is perfectly even.
    Returns 1.0 when no accesses were recorded. *)

val mapping : t -> mapping
val banks : t -> int

val set_access_hook : t -> (unit -> unit) -> unit
(** Called on every {!access} — the UPC's L1-miss feed (an access that
    reaches an L2 bank missed L1 by definition here). Default: no-op. *)

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state, little-endian, into [b]. Hashtable
    contents are sorted before writing, so the bytes are deterministic. *)
