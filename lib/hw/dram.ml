type t = {
  memory : Memory.t;
  mutable self_refresh : bool;
  mutable on_self_refresh : unit -> unit;
}

let create ~size =
  { memory = Memory.create ~size; self_refresh = false; on_self_refresh = ignore }

let memory t = t.memory
let set_self_refresh_hook t f = t.on_self_refresh <- f

let enter_self_refresh t =
  if not t.self_refresh then t.on_self_refresh ();
  t.self_refresh <- true
let exit_self_refresh t = t.self_refresh <- false
let in_self_refresh t = t.self_refresh

let on_reset t = if not t.self_refresh then Memory.zero t.memory

let digest t = Memory.digest t.memory
