open Bg_engine

type t = {
  sim : Sim.t;
  params : Params.t;
  dims : int * int * int;
  (* busy-until time per directed link, keyed by (rank, direction 0..5) *)
  link_busy : (int * int, Cycles.t) Hashtbl.t;
  (* per-node DMA injection FIFO: descriptors from one node serialize *)
  inject_busy : (int, Cycles.t) Hashtbl.t;
  broken : (int * int, unit) Hashtbl.t;
  (* transfers currently crossing each directed link, and the cumulative
     cycles each link has spent serializing payload *)
  in_flight : (int * int, int) Hashtbl.t;
  busy_cycles : (int * int, int) Hashtbl.t;
  mutable enabled : bool;
  mutable transfers : int;
  mutable on_inject : src:int -> unit;
  mutable on_link_down : rank:int -> dir:int -> in_flight:int -> unit;
}

let create sim ?(params = Params.bgp) ~dims () =
  let x, y, z = dims in
  if x <= 0 || y <= 0 || z <= 0 then invalid_arg "Torus.create";
  {
    sim;
    params;
    dims;
    link_busy = Hashtbl.create 256;
    inject_busy = Hashtbl.create 64;
    broken = Hashtbl.create 4;
    in_flight = Hashtbl.create 64;
    busy_cycles = Hashtbl.create 256;
    enabled = true;
    transfers = 0;
    on_inject = (fun ~src:_ -> ());
    on_link_down = (fun ~rank:_ ~dir:_ ~in_flight:_ -> ());
  }

let set_inject_hook t f = t.on_inject <- f
let set_link_down_hook t f = t.on_link_down <- f

let node_count t =
  let x, y, z = t.dims in
  x * y * z

let dims t = t.dims

let coord_of_rank t rank =
  let x, y, _ = t.dims in
  let n = node_count t in
  if rank < 0 || rank >= n then invalid_arg "Torus.coord_of_rank";
  (rank mod x, rank / x mod y, rank / (x * y))

let rank_of_coord t (cx, cy, cz) =
  let x, y, z = t.dims in
  if cx < 0 || cx >= x || cy < 0 || cy >= y || cz < 0 || cz >= z then
    invalid_arg "Torus.rank_of_coord";
  cx + (cy * x) + (cz * x * y)

(* Steps along one ring dimension: (hop_count, direction_sign). *)
let ring_steps size from_pos to_pos =
  let fwd = (to_pos - from_pos + size) mod size in
  let bwd = (from_pos - to_pos + size) mod size in
  if fwd <= bwd then (fwd, 1) else (bwd, -1)

exception Ring_blocked

(* The sequence of (rank, direction) links a packet crosses, X then Y then
   Z. Per dimension the short ring direction is preferred; if any link on
   it is broken the router falls back to the long way, and if that is also
   broken the ring is impassable. *)
let route t ~src ~dst =
  let sx, sy, sz = t.dims in
  let cx, cy, cz = coord_of_rank t src in
  let dx, dy, dz = coord_of_rank t dst in
  let links = ref [] in
  let path_clear size axis_dir_base get cur target sign =
    let steps =
      if sign > 0 then (target - get cur + size) mod size
      else (get cur - target + size) mod size
    in
    let dir = if sign > 0 then axis_dir_base else axis_dir_base + 1 in
    let rec ok pos i =
      i >= steps
      ||
      let rank =
        let x, y, z = pos in
        rank_of_coord t (x, y, z)
      in
      (not (Hashtbl.mem t.broken (rank, dir)))
      &&
      let x, y, z = pos in
      let next =
        match axis_dir_base with
        | 0 -> (((x + sign + size) mod size), y, z)
        | 2 -> (x, ((y + sign + size) mod size), z)
        | _ -> (x, y, ((z + sign + size) mod size))
      in
      ok next (i + 1)
    in
    ok cur 0
  in
  let walk size axis_dir_base get set cur target =
    if get cur = target then cur
    else begin
      let _, short_sign = ring_steps size (get cur) target in
      let sign =
        if path_clear size axis_dir_base get cur target short_sign then short_sign
        else if path_clear size axis_dir_base get cur target (-short_sign) then -short_sign
        else raise Ring_blocked
      in
      let steps =
        if sign > 0 then (target - get cur + size) mod size
        else (get cur - target + size) mod size
      in
      let c = ref cur in
      for _ = 1 to steps do
        let dir = if sign > 0 then axis_dir_base else axis_dir_base + 1 in
        links := (rank_of_coord t !c, dir) :: !links;
        c := set !c (((get !c) + sign + size) mod size)
      done;
      !c
    end
  in
  let cur = (cx, cy, cz) in
  let cur = walk sx 0 (fun (x, _, _) -> x) (fun (_, y, z) x -> (x, y, z)) cur dx in
  let cur = walk sy 2 (fun (_, y, _) -> y) (fun (x, _, z) y -> (x, y, z)) cur dy in
  let cur = walk sz 4 (fun (_, _, z) -> z) (fun (x, y, _) z -> (x, y, z)) cur dz in
  assert (rank_of_coord t cur = dst);
  List.rev !links

let hops t ~src ~dst = List.length (route t ~src ~dst)

let enabled t = t.enabled
let set_enabled t v = t.enabled <- v

let check_dir dir = if dir < 0 || dir > 5 then invalid_arg "Torus: bad direction"

let link_in_flight t ~rank ~dir =
  check_dir dir;
  match Hashtbl.find_opt t.in_flight (rank, dir) with Some n -> n | None -> 0

let link_busy_cycles t ~rank ~dir =
  check_dir dir;
  match Hashtbl.find_opt t.busy_cycles (rank, dir) with Some n -> n | None -> 0

let busy_links t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.busy_cycles [] |> List.sort compare

let total_busy_cycles t = Hashtbl.fold (fun _ v acc -> acc + v) t.busy_cycles 0

let set_link_broken t ~rank ~dir v =
  check_dir dir;
  if v then begin
    let was = Hashtbl.mem t.broken (rank, dir) in
    Hashtbl.replace t.broken (rank, dir) ();
    (* Severing a link with traffic still crossing it is a RAS-worthy
       hardware event; the machine layer turns this into a typed fault. *)
    if not was then t.on_link_down ~rank ~dir ~in_flight:(link_in_flight t ~rank ~dir)
  end
  else Hashtbl.remove t.broken (rank, dir)

let link_broken t ~rank ~dir =
  check_dir dir;
  Hashtbl.mem t.broken (rank, dir)

let broken_links t =
  Hashtbl.fold (fun k () acc -> k :: acc) t.broken [] |> List.sort compare

let serialization_cycles t bytes =
  int_of_float (Float.ceil (float_of_int bytes /. t.params.Params.torus_link_bytes_per_cycle))

let transfer t ~src ~dst ~bytes ?(on_arrival = fun ~arrival_cycle:_ -> ()) () =
  if not t.enabled then raise (Fault.Unavailable "torus");
  let links =
    if src = dst then []
    else
      match route t ~src ~dst with
      | exception Ring_blocked -> raise (Fault.Unavailable "torus ring severed")
      | links -> links
  in
  if bytes < 0 then invalid_arg "Torus.transfer";
  t.transfers <- t.transfers + 1;
  t.on_inject ~src;
  let p = t.params in
  let now = Sim.now t.sim in
  (* descriptors from one node go through its injection FIFO in order *)
  let inject_start =
    max now (match Hashtbl.find_opt t.inject_busy src with Some b -> b | None -> 0)
  in
  let inject_done = inject_start + p.Params.torus_inject_cycles in
  Hashtbl.replace t.inject_busy src inject_done;
  let bump tbl link by =
    let v = match Hashtbl.find_opt tbl link with Some v -> v | None -> 0 in
    Hashtbl.replace tbl link (v + by)
  in
  let arrival =
    if src = dst then inject_done + p.Params.torus_receive_cycles
    else begin
      let ser = serialization_cycles t bytes in
      (* Wormhole: the head advances hop by hop, stalling on busy links;
         each link is then occupied for the serialization time. *)
      let head = ref inject_done in
      List.iter
        (fun link ->
          let busy =
            match Hashtbl.find_opt t.link_busy link with Some b -> b | None -> 0
          in
          head := max (!head + p.Params.torus_hop_cycles) busy;
          Hashtbl.replace t.link_busy link (!head + ser);
          bump t.in_flight link 1;
          bump t.busy_cycles link ser)
        links;
      !head + ser + p.Params.torus_receive_cycles
    end
  in
  ignore
    (Sim.schedule_at t.sim arrival (fun () ->
         List.iter (fun link -> bump t.in_flight link (-1)) links;
         Sim.emit t.sim ~label:"torus.arrival" ~value:(Int64.of_int ((src * 65536) + dst));
         on_arrival ~arrival_cycle:arrival))

let estimate_cycles t ~src ~dst ~bytes =
  let p = t.params in
  if src = dst then p.Params.torus_inject_cycles + p.Params.torus_receive_cycles
  else
    p.Params.torus_inject_cycles
    + (hops t ~src ~dst * p.Params.torus_hop_cycles)
    + serialization_cycles t bytes
    + p.Params.torus_receive_cycles

let transfers_started t = t.transfers

let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  let sorted tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare in
  let w_link_tbl tbl =
    let rows = sorted tbl in
    w_i (List.length rows);
    List.iter
      (fun ((rank, dir), v) ->
        w_i rank;
        w_i dir;
        w_i v)
      rows
  in
  let x, y, z = t.dims in
  w_i x;
  w_i y;
  w_i z;
  Buffer.add_uint8 b (if t.enabled then 1 else 0);
  w_i t.transfers;
  w_link_tbl t.link_busy;
  (let rows = sorted t.inject_busy in
   w_i (List.length rows);
   List.iter
     (fun (rank, v) ->
       w_i rank;
       w_i v)
     rows);
  (let rows = sorted t.broken in
   w_i (List.length rows);
   List.iter
     (fun ((rank, dir), ()) ->
       w_i rank;
       w_i dir)
     rows);
  w_link_tbl t.in_flight;
  w_link_tbl t.busy_cycles
