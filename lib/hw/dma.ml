open Bg_engine

(* Cost model, in 850 MHz cycles. The engine pulls one descriptor off the
   injection FIFO per [desc_process_cycles]; a remote get request turns
   around in the target's DMA with no CPU involvement; a delivery that
   finds the reception FIFO full is retried by the hardware after
   [recv_retry_cycles] (the torus backpressures the packet). *)
let desc_process_cycles = 24
let get_turnaround_cycles = 60
let recv_retry_cycles = 400
let header_bytes = 16

let default_injection_depth = 256
let default_reception_depth = 1024

type kind = Eager | Rdma_put | Rdma_get

type descriptor = {
  kind : kind;
  dst : int;
  tag : int;
  payload : bytes;
  bytes : int;
  counter : int;
  arm_bytes : int;
  ctx : int;
}

let descriptor ?(payload = Bytes.empty) ?(counter = -1) ?arm_bytes ?(ctx = 0) ~kind ~dst
    ~tag ~bytes () =
  if bytes < 0 then invalid_arg "Dma.descriptor: negative size";
  let arm_bytes = match arm_bytes with Some a -> a | None -> bytes in
  { kind; dst; tag; payload; bytes; counter; arm_bytes; ctx }

type packet = { pkt_src : int; pkt_tag : int; pkt_payload : bytes; pkt_ctx : int }

type stats = {
  mutable injected : int;
  mutable delivered : int;
  mutable bytes_injected : int;
  mutable bytes_delivered : int;
  mutable inject_stalls : int;
  mutable recv_backpressure : int;
  mutable dropped : int;
}

type t = {
  sim : Sim.t;
  torus : Torus.t;
  rank : int;
  inj_depth : int;
  rcv_depth : int;
  inj : descriptor Queue.t;
  rcv : packet Queue.t;
  (* byte-decrement completion counters: armed at inject, decremented at
     delivery; hitting zero latches the completion cycle *)
  counters : (int, int) Hashtbl.t;
  done_at : (int, Cycles.t) Hashtbl.t;
  mutable pumping : bool;
  stats : stats;
  mutable peers : t array;
  mutable read_hook : tag:int -> bytes;
  mutable write_hook : tag:int -> data:bytes -> unit;
  mutable on_inject : bytes:int -> unit;
  mutable on_deliver : bytes:int -> unit;
  mutable on_counter_done : id:int -> ctx:int -> unit;
}

let create_group sim torus ?(injection_depth = default_injection_depth)
    ?(reception_depth = default_reception_depth) () =
  if injection_depth <= 0 || reception_depth <= 0 then invalid_arg "Dma.create_group";
  let n = Torus.node_count torus in
  let engines =
    Array.init n (fun rank ->
        {
          sim;
          torus;
          rank;
          inj_depth = injection_depth;
          rcv_depth = reception_depth;
          inj = Queue.create ();
          rcv = Queue.create ();
          counters = Hashtbl.create 16;
          done_at = Hashtbl.create 16;
          pumping = false;
          stats =
            {
              injected = 0;
              delivered = 0;
              bytes_injected = 0;
              bytes_delivered = 0;
              inject_stalls = 0;
              recv_backpressure = 0;
              dropped = 0;
            };
          peers = [||];
          read_hook = (fun ~tag:_ -> Bytes.empty);
          write_hook = (fun ~tag:_ ~data:_ -> ());
          on_inject = (fun ~bytes:_ -> ());
          on_deliver = (fun ~bytes:_ -> ());
          on_counter_done = (fun ~id:_ ~ctx:_ -> ());
        })
  in
  Array.iter (fun e -> e.peers <- engines) engines;
  engines

let rank t = t.rank
let stats t = t.stats
let injection_occupancy t = Queue.length t.inj
let reception_occupancy t = Queue.length t.rcv
let injection_depth t = t.inj_depth

let set_read_hook t f = t.read_hook <- f
let set_write_hook t f = t.write_hook <- f
let set_inject_hook t f = t.on_inject <- f
let set_deliver_hook t f = t.on_deliver <- f
let set_counter_done_hook t f = t.on_counter_done <- f

let set_counter t ~id v =
  if id < 0 then invalid_arg "Dma.set_counter";
  Hashtbl.replace t.counters id v;
  Hashtbl.remove t.done_at id;
  if v = 0 then Hashtbl.replace t.done_at id (Sim.now t.sim)

let counter_value t ~id =
  match Hashtbl.find_opt t.counters id with Some v -> v | None -> 0

let counter_done_at t ~id = Hashtbl.find_opt t.done_at id

let decrement ?(ctx = 0) t ~id ~by =
  if id >= 0 then
    match Hashtbl.find_opt t.counters id with
    | None -> ()
    | Some v ->
      let v' = max 0 (v - by) in
      Hashtbl.replace t.counters id v';
      if v' = 0 && not (Hashtbl.mem t.done_at id) then begin
        Hashtbl.replace t.done_at id (Sim.now t.sim);
        t.on_counter_done ~id ~ctx
      end

let wire_bytes d = d.bytes + header_bytes

let mark_delivered target ~bytes =
  target.stats.delivered <- target.stats.delivered + 1;
  target.stats.bytes_delivered <- target.stats.bytes_delivered + bytes;
  target.on_deliver ~bytes

(* Reception-side delivery of an eager packet. A full reception FIFO
   backpressures into the torus: the packet is retried until the receiver
   drains (deterministic: one retry event per blocked packet). *)
let rec deliver_eager src_engine target d =
  if Queue.length target.rcv >= target.rcv_depth then begin
    target.stats.recv_backpressure <- target.stats.recv_backpressure + 1;
    ignore
      (Sim.schedule_in src_engine.sim recv_retry_cycles (fun () ->
           deliver_eager src_engine target d))
  end
  else begin
    Queue.push
      { pkt_src = src_engine.rank; pkt_tag = d.tag; pkt_payload = d.payload;
        pkt_ctx = d.ctx }
      target.rcv;
    mark_delivered target ~bytes:d.bytes;
    decrement ~ctx:d.ctx src_engine ~id:d.counter ~by:d.bytes
  end

let launch t d =
  let target = t.peers.(d.dst) in
  match d.kind with
  | Rdma_put -> (
    try
      Torus.transfer t.torus ~src:t.rank ~dst:d.dst ~bytes:(wire_bytes d)
        ~on_arrival:(fun ~arrival_cycle:_ ->
          if Bytes.length d.payload > 0 then target.write_hook ~tag:d.tag ~data:d.payload;
          mark_delivered target ~bytes:d.bytes;
          decrement ~ctx:d.ctx t ~id:d.counter ~by:d.bytes)
        ()
    with Fault.Unavailable _ -> t.stats.dropped <- t.stats.dropped + 1)
  | Eager -> (
    try
      Torus.transfer t.torus ~src:t.rank ~dst:d.dst ~bytes:(wire_bytes d)
        ~on_arrival:(fun ~arrival_cycle:_ -> deliver_eager t target d)
        ()
    with Fault.Unavailable _ -> t.stats.dropped <- t.stats.dropped + 1)
  | Rdma_get -> (
    (* request packet out; the target's DMA reads the named buffer and
       streams it back with no remote CPU involvement *)
    try
      Torus.transfer t.torus ~src:t.rank ~dst:d.dst ~bytes:header_bytes
        ~on_arrival:(fun ~arrival_cycle:_ ->
          let data = target.read_hook ~tag:d.tag in
          ignore
            (Sim.schedule_in t.sim get_turnaround_cycles (fun () ->
                 try
                   Torus.transfer t.torus ~src:d.dst ~dst:t.rank
                     ~bytes:(Bytes.length data + header_bytes)
                     ~on_arrival:(fun ~arrival_cycle:_ ->
                       t.write_hook ~tag:d.tag ~data;
                       mark_delivered t ~bytes:(Bytes.length data);
                       decrement ~ctx:d.ctx t ~id:d.counter ~by:d.bytes)
                     ()
                 with Fault.Unavailable _ -> t.stats.dropped <- t.stats.dropped + 1)))
        ()
    with Fault.Unavailable _ -> t.stats.dropped <- t.stats.dropped + 1)

let rec pump t =
  match Queue.take_opt t.inj with
  | None -> t.pumping <- false
  | Some d ->
    launch t d;
    if Queue.is_empty t.inj then t.pumping <- false
    else ignore (Sim.schedule_in t.sim desc_process_cycles (fun () -> pump t))

let inject t d =
  if d.dst < 0 || d.dst >= Array.length t.peers then invalid_arg "Dma.inject: bad dst";
  if Queue.length t.inj >= t.inj_depth then begin
    t.stats.inject_stalls <- t.stats.inject_stalls + 1;
    Error `Fifo_full
  end
  else begin
    if d.counter >= 0 && d.arm_bytes > 0 then begin
      let v = match Hashtbl.find_opt t.counters d.counter with Some v -> v | None -> 0 in
      Hashtbl.replace t.counters d.counter (v + d.arm_bytes);
      Hashtbl.remove t.done_at d.counter
    end
    else if d.counter >= 0 && not (Hashtbl.mem t.counters d.counter) then
      set_counter t ~id:d.counter 0;
    Queue.push d t.inj;
    t.stats.injected <- t.stats.injected + 1;
    t.stats.bytes_injected <- t.stats.bytes_injected + d.bytes;
    t.on_inject ~bytes:d.bytes;
    if not t.pumping then begin
      t.pumping <- true;
      ignore (Sim.schedule_in t.sim desc_process_cycles (fun () -> pump t))
    end;
    Ok ()
  end

let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  let w_raw x =
    w_i (Bytes.length x);
    Buffer.add_bytes b x
  in
  w_i t.rank;
  w_i t.inj_depth;
  w_i t.rcv_depth;
  Buffer.add_uint8 b (if t.pumping then 1 else 0);
  w_i t.stats.injected;
  w_i t.stats.delivered;
  w_i t.stats.bytes_injected;
  w_i t.stats.bytes_delivered;
  w_i t.stats.inject_stalls;
  w_i t.stats.recv_backpressure;
  w_i t.stats.dropped;
  w_i (Queue.length t.inj);
  Queue.iter
    (fun d ->
      w_i (match d.kind with Eager -> 0 | Rdma_put -> 1 | Rdma_get -> 2);
      w_i d.dst;
      w_i d.tag;
      w_i d.bytes;
      w_i d.counter;
      w_i d.arm_bytes;
      w_i d.ctx;
      w_raw d.payload)
    t.inj;
  w_i (Queue.length t.rcv);
  Queue.iter
    (fun p ->
      w_i p.pkt_src;
      w_i p.pkt_tag;
      w_i p.pkt_ctx;
      w_raw p.pkt_payload)
    t.rcv;
  let sorted tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare in
  let counters = sorted t.counters in
  w_i (List.length counters);
  List.iter
    (fun (id, v) ->
      w_i id;
      w_i v)
    counters;
  let done_at = sorted t.done_at in
  w_i (List.length done_at);
  List.iter
    (fun (id, c) ->
      w_i id;
      w_i c)
    done_at

let drain_recv t =
  let out = ref [] in
  while not (Queue.is_empty t.rcv) do
    out := Queue.pop t.rcv :: !out
  done;
  List.rev !out
