(** The Universal Performance Counter unit (one per chip).

    BG/P's UPC counts hardware events — cache misses, TLB activity, torus
    packets, barrier waits — into a bank of counters software can start,
    stop and freeze. This model mirrors that control interface: counting
    is off until {!start}, {!freeze} latches a coherent snapshot while
    the live counters keep running, and kernels expose the unit through
    the [Query_perf] syscall so applications on CNK and the FWK read the
    same counters the same way.

    Counting is pure integer arithmetic driven by hooks the hardware
    models fire ({!Tlb}, {!Cache}, {!Dram}, {!Torus}, {!Barrier_net});
    it never schedules events or draws randomness, so enabling the UPC
    cannot perturb a simulation. *)

type event =
  | L1_miss            (** L1 miss, proxied by an L2 bank access *)
  | Tlb_miss           (** translation missed the TLB *)
  | Tlb_refill         (** a TLB entry was (re)installed *)
  | Torus_packet       (** packet injected by this chip's DMA unit *)
  | Barrier_wait       (** this chip arrived at the global barrier *)
  | Dram_self_refresh  (** DRAM entered self-refresh *)
  | Dma_descriptor     (** descriptor accepted into this chip's injection FIFO *)

val all_events : event list
(** In fixed counter-bank order. *)

val event_name : event -> string

val chip_scope : int
(** Pseudo-core index ([-1]) for events not attributable to one core
    (L2, torus, barrier, DRAM). *)

type reading = { event : event; core : int; count : int }

type t

val create : cores:int -> unit -> t
(** A stopped unit with all counters zero. *)

val start : t -> unit
val stop : t -> unit
val running : t -> bool

val reset : t -> unit
(** Zero every counter, drop any frozen snapshot, stop counting. *)

val record : t -> ?core:int -> event -> int -> unit
(** Add to a live counter; no-op unless {!running}. [core] defaults to
    {!chip_scope}. *)

val freeze : t -> unit
(** Latch the live counters into a stable snapshot (counting continues).
    A second freeze overwrites the first. *)

val read : t -> ?core:int -> event -> int
(** Read one live counter. *)

val snapshot : t -> reading list
(** Non-zero live counters in fixed (event, core) order. *)

val frozen_snapshot : t -> reading list option
(** The latched counters, or [None] if {!freeze} was never called. *)

val digest : t -> Bg_engine.Fnv.t
(** FNV fold over live and frozen counters, for determinism checks. *)

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state, little-endian, into [b]. Hashtable
    contents are sorted before writing, so the bytes are deterministic. *)
