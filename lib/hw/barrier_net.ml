open Bg_engine

type waiter = { rank : int; on_release : release_cycle:Cycles.t -> unit }

type t = {
  sim : Sim.t;
  params : Params.t;
  participants : int;
  mutable waiters : waiter list;  (* newest first *)
  mutable generation : int;
  mutable enabled : bool;
  mutable on_arrive : rank:int -> unit;
}

let create sim ?(params = Params.bgp) ~participants () =
  if participants <= 0 then invalid_arg "Barrier_net.create";
  {
    sim;
    params;
    participants;
    waiters = [];
    generation = 0;
    enabled = true;
    on_arrive = (fun ~rank:_ -> ());
  }

let set_arrive_hook t f = t.on_arrive <- f

let participants t = t.participants
let enabled t = t.enabled
let set_enabled t v = t.enabled <- v
let generation t = t.generation
let waiting t = List.length t.waiters

let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  w_i t.participants;
  w_i t.generation;
  Buffer.add_uint8 b (if t.enabled then 1 else 0);
  let ranks = List.map (fun w -> w.rank) t.waiters |> List.sort compare in
  w_i (List.length ranks);
  List.iter w_i ranks

let arrive t ~rank ~on_release =
  if not t.enabled then raise (Fault.Unavailable "barrier");
  if rank < 0 || rank >= t.participants then invalid_arg "Barrier_net.arrive";
  if List.exists (fun w -> w.rank = rank) t.waiters then
    invalid_arg "Barrier_net.arrive: rank already waiting";
  t.waiters <- { rank; on_release } :: t.waiters;
  t.on_arrive ~rank;
  if List.length t.waiters = t.participants then begin
    let release_cycle = Sim.now t.sim + t.params.Params.barrier_round_cycles in
    (* Release in rank order for determinism. *)
    let all = List.sort (fun a b -> compare a.rank b.rank) t.waiters in
    t.waiters <- [];
    t.generation <- t.generation + 1;
    Sim.emit t.sim ~label:"barrier.release" ~value:(Int64.of_int t.generation);
    List.iter
      (fun w ->
        ignore
          (Sim.schedule_at t.sim release_cycle (fun () -> w.on_release ~release_cycle)))
      all
  end
