(** Global barrier network.

    A dedicated low-latency AND-tree across all nodes. The paper's
    multichip-reproducible debugging (§III) keeps this network active and
    consistently configured across reboots so chips restart on the same
    relative cycle; {!Bg_bringup.Multichip} builds on this model. *)

type t

val create : Bg_engine.Sim.t -> ?params:Params.t -> participants:int -> unit -> t

val participants : t -> int

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val arrive : t -> rank:int -> on_release:(release_cycle:Bg_engine.Cycles.t -> unit) -> unit
(** Signal arrival of [rank] at the current barrier generation. When every
    participant has arrived, all [on_release] callbacks fire one barrier
    round later, and the network advances to the next generation. Arriving
    twice in one generation raises [Invalid_argument]. *)

val generation : t -> int
(** Number of completed barriers. *)

val waiting : t -> int
(** Participants currently arrived and blocked in this generation. *)

val set_arrive_hook : t -> (rank:int -> unit) -> unit
(** Called on every {!arrive} with the arriving rank — the UPC's
    barrier-wait feed. Default: no-op. *)

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state, little-endian, into [b]. Hashtable
    contents are sorted before writing, so the bytes are deterministic. *)
