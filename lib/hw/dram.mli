(** DDR DRAM with self-refresh.

    The only state that survives a full chip reset is DRAM placed in
    self-refresh beforehand (paper §III). {!on_reset} implements exactly
    that rule: contents survive iff self-refresh was engaged. *)

type t

val create : size:int -> t
val memory : t -> Memory.t

val enter_self_refresh : t -> unit
val exit_self_refresh : t -> unit
val in_self_refresh : t -> bool

val set_self_refresh_hook : t -> (unit -> unit) -> unit
(** Called each time the DRAM actually enters self-refresh (not on
    redundant requests while already in it). Default: no-op. *)

val on_reset : t -> unit
(** Apply reset semantics: keep contents when in self-refresh, otherwise
    lose everything (contents return to zero). Self-refresh state itself
    survives the reset; boot code must exit it explicitly. *)

val digest : t -> Bg_engine.Fnv.t
