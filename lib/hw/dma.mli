(** The per-chip torus DMA engine (paper §V.C).

    BG/P's DMA unit lives between the cores and the torus: software
    writes descriptors into injection memory FIFOs, the engine walks them
    and drives the network, arriving packets land in reception memory
    FIFOs, and byte-decrement completion counters tell software when the
    last byte of a transfer has moved. CNK's static memory map lets all
    of that state be mapped straight into user space; a Linux-class
    kernel has to mediate every touch with a syscall. This module models
    the unit itself — who pays to reach it is the kernels' business.

    Determinism: the engine only reacts to {!inject} calls and schedules
    through the shared simulator; it draws no randomness. Creating a
    group schedules nothing, so a machine that never uses the DMA path
    is cycle-identical to one without it. *)

type kind =
  | Eager      (** self-describing packet into the target's reception FIFO *)
  | Rdma_put   (** one-sided write into a target-registered buffer *)
  | Rdma_get   (** one-sided read: request packet out, data streamed back *)

type descriptor = private {
  kind : kind;
  dst : int;           (** target rank *)
  tag : int;           (** names the remote buffer (put/get) or dispatch tag (eager) *)
  payload : bytes;     (** data carried; empty for [Rdma_get] *)
  bytes : int;         (** payload size on the wire; for [Rdma_get], bytes to pull *)
  counter : int;       (** completion counter id on the injecting chip; -1 = none *)
  arm_bytes : int;     (** added to the counter at inject; defaults to [bytes] *)
  ctx : int;           (** opaque causal context riding the descriptor; 0 = none.
                           The engine never interprets it — it is copied into the
                           delivered packet and echoed by the counter-done hook. *)
}

val descriptor :
  ?payload:bytes ->
  ?counter:int ->
  ?arm_bytes:int ->
  ?ctx:int ->
  kind:kind ->
  dst:int ->
  tag:int ->
  bytes:int ->
  unit ->
  descriptor
(** [arm_bytes] exists for multi-descriptor transfers sharing one
    counter: arm the full total on the first descriptor and 0 on the
    rest, so the counter cannot transiently hit zero mid-transfer. *)

type packet = { pkt_src : int; pkt_tag : int; pkt_payload : bytes; pkt_ctx : int }
(** One reception-FIFO entry (an arrived eager packet). [pkt_ctx] is the
    injecting descriptor's causal context, carried verbatim. *)

type stats = {
  mutable injected : int;            (** descriptors accepted into the FIFO *)
  mutable delivered : int;           (** transfers landed on this chip *)
  mutable bytes_injected : int;
  mutable bytes_delivered : int;
  mutable inject_stalls : int;       (** injections refused: FIFO full *)
  mutable recv_backpressure : int;   (** deliveries retried: reception FIFO full *)
  mutable dropped : int;             (** transfers lost to a severed route *)
}

type t

val create_group :
  Bg_engine.Sim.t -> Torus.t -> ?injection_depth:int -> ?reception_depth:int -> unit -> t
  array
(** One engine per torus rank, mutually reachable. Pure allocation: no
    events are scheduled and no randomness drawn. *)

val rank : t -> int
val stats : t -> stats
val injection_occupancy : t -> int
val reception_occupancy : t -> int
val injection_depth : t -> int

val inject : t -> descriptor -> (unit, [ `Fifo_full ]) result
(** Append a descriptor to the injection FIFO. [Error `Fifo_full] is the
    stall-on-full backpressure signal — the caller spins and retries;
    the engine frees a slot every time it launches a descriptor. On
    [Ok], the descriptor's counter (if any) is armed with [arm_bytes]
    and the engine starts pumping if idle. *)

val drain_recv : t -> packet list
(** Pop every packet out of the reception FIFO, oldest first. *)

val set_counter : t -> id:int -> int -> unit
(** Arm a completion counter to an absolute value (mainly for tests;
    {!inject} arms automatically). *)

val counter_value : t -> id:int -> int
(** Bytes still outstanding; 0 if done or never armed. *)

val counter_done_at : t -> id:int -> Bg_engine.Cycles.t option
(** Cycle at which the counter reached zero, if it has. *)

(** {1 Buffer hooks}

    The messaging layer registers how rDMA reads and writes touch its
    memory: [read_hook ~tag] serves an incoming get, [write_hook ~tag
    ~data] lands a put (or the data returned by this engine's own get).
    Defaults: reads return empty, writes vanish. *)

val set_read_hook : t -> (tag:int -> bytes) -> unit
val set_write_hook : t -> (tag:int -> data:bytes -> unit) -> unit

(** {1 Counter-unit feeds}

    Fired synchronously on inject/delivery with the payload size —
    wired by {!Machine} into the UPC and the metrics registry, like the
    torus packet hook. Defaults: no-ops. *)

val set_inject_hook : t -> (bytes:int -> unit) -> unit
val set_deliver_hook : t -> (bytes:int -> unit) -> unit

val set_counter_done_hook : t -> (id:int -> ctx:int -> unit) -> unit
(** Fired synchronously the moment a completion counter latches zero,
    with the context of the descriptor whose last byte landed. Wired by
    {!Machine} into the causal tracer. Default: no-op. *)

val desc_process_cycles : int
val get_turnaround_cycles : int
val recv_retry_cycles : int
val header_bytes : int

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state, little-endian, into [b]. Hashtable
    contents are sorted before writing, so the bytes are deterministic. *)
