let sc = Coro.syscall

let getpid () = Sysreq.expect_int (sc Sysreq.Getpid)
let gettid () = Sysreq.expect_int (sc Sysreq.Gettid)
let rank () = Sysreq.expect_int (sc Sysreq.Get_rank)
let uname () = Sysreq.expect_uname (sc Sysreq.Uname)
let personality () = Sysreq.expect_personality (sc Sysreq.Get_personality)
let gettimeofday_us () = Sysreq.expect_int (sc Sysreq.Gettimeofday)

let brk_now () = Sysreq.expect_int (sc (Sysreq.Brk None))

let sbrk delta =
  let old = brk_now () in
  ignore (Sysreq.expect_int (sc (Sysreq.Brk (Some (old + delta)))));
  old

let mmap_anon ~length =
  Sysreq.expect_int
    (sc (Sysreq.Mmap { length; prot = Bg_hw.Tlb.perm_rw; map_copy = false; fd = None; offset = 0 }))

let mmap_file ~fd ~length ~offset =
  Sysreq.expect_int
    (sc (Sysreq.Mmap { length; prot = Bg_hw.Tlb.perm_ro; map_copy = true; fd = Some fd; offset }))

let munmap ~addr ~length = Sysreq.expect_unit (sc (Sysreq.Munmap { addr; length }))

let mprotect_guard ~addr ~length =
  Sysreq.expect_unit (sc (Sysreq.Mprotect { addr; length; prot = Bg_hw.Tlb.perm_ro }))

let shm_open_persistent ~name ~length =
  Sysreq.expect_int (sc (Sysreq.Shm_open { name; length }))

let query_map () = Sysreq.expect_map (sc Sysreq.Query_map)
let virtual_to_physical va = Sysreq.expect_int (sc (Sysreq.Query_vtop va))
let query_dirty ~clear = Sysreq.expect_ranges (sc (Sysreq.Query_dirty { clear }))

let sigaction ~signo handler =
  Sysreq.expect_unit (sc (Sysreq.Sigaction { signo; handler }))

let openf ?(flags = Sysreq.o_rdwr) ?(mode = 0o644) path =
  Sysreq.expect_int (sc (Sysreq.Open { path; flags; mode }))

let close fd = Sysreq.expect_unit (sc (Sysreq.Close fd))
let read fd ~len = Sysreq.expect_bytes (sc (Sysreq.Read { fd; len }))
let write fd data = Sysreq.expect_int (sc (Sysreq.Write { fd; data }))
let write_string fd s = write fd (Bytes.of_string s)
let pread fd ~len ~offset = Sysreq.expect_bytes (sc (Sysreq.Pread { fd; len; offset }))
let pwrite fd data ~offset = Sysreq.expect_int (sc (Sysreq.Pwrite { fd; data; offset }))
let lseek fd ~offset ~whence = Sysreq.expect_int (sc (Sysreq.Lseek { fd; offset; whence }))
let fstat fd = Sysreq.expect_stat (sc (Sysreq.Fstat fd))
let stat path = Sysreq.expect_stat (sc (Sysreq.Stat path))
let unlink path = Sysreq.expect_unit (sc (Sysreq.Unlink path))
let mkdir ?(mode = 0o755) path = Sysreq.expect_unit (sc (Sysreq.Mkdir { path; mode }))
let rmdir path = Sysreq.expect_unit (sc (Sysreq.Rmdir path))
let readdir path = Sysreq.expect_names (sc (Sysreq.Readdir path))
let chdir path = Sysreq.expect_unit (sc (Sysreq.Chdir path))
let getcwd () = Sysreq.expect_string (sc Sysreq.Getcwd)
let rename ~src ~dst = Sysreq.expect_unit (sc (Sysreq.Rename { src; dst }))
let ftruncate fd ~length = Sysreq.expect_unit (sc (Sysreq.Ftruncate { fd; length }))
let fsync fd = Sysreq.expect_unit (sc (Sysreq.Fsync fd))
let dup fd = Sysreq.expect_int (sc (Sysreq.Dup fd))

let peek addr = Int64.to_int (Bytes.get_int64_le (Coro.load ~addr ~len:8) 0)

let poke addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Coro.store ~addr b

let exit_thread code =
  ignore (sc (Sysreq.Exit_thread code));
  assert false

let exit_group code =
  ignore (sc (Sysreq.Exit_group code));
  assert false
