(** Thin libc-style veneers over the syscall ABI.

    These are what the glibc boundary of paper §IV looks like from user
    code: direct syscall wrappers that raise {!Sysreq.Syscall_error} on an
    errno reply. They run inside a simulated thread (they perform
    effects), so they may only be called from program closures. *)

val getpid : unit -> int
val gettid : unit -> int
val rank : unit -> int
(** The node's torus rank (BG/P personality data). *)

val uname : unit -> Sysreq.uname_info

val personality : unit -> Sysreq.personality
(** The node's BG personality block (CNK only; ENOSYS on the FWK). *)

val gettimeofday_us : unit -> int

val sbrk : int -> int
(** Grow (or shrink) the break by a delta; returns the {e old} break. *)

val brk_now : unit -> int
val mmap_anon : length:int -> int
val mmap_file : fd:int -> length:int -> offset:int -> int
val munmap : addr:int -> length:int -> unit
val mprotect_guard : addr:int -> length:int -> unit

val shm_open_persistent : name:string -> length:int -> int
(** Open (or create) a named persistent region; returns its virtual
    address, stable across jobs (paper §IV.D). *)

val query_map : unit -> Sysreq.region list
val virtual_to_physical : int -> int

val query_dirty : clear:bool -> (int * int) list
(** Pages of the heap/stack range written since the last clearing query,
    as coalesced [(addr, len)] ranges (CNK only; ENOSYS on the FWK). The
    incremental-checkpoint primitive. *)

val sigaction : signo:int -> (int -> unit) option -> unit
(** Install ([Some h]) or reset ([None]) a signal handler. Handlers run
    kernel-side and must not perform coroutine effects. *)

(* --- file I/O (function-shipped on CNK) --- *)

val openf : ?flags:Sysreq.open_flags -> ?mode:int -> string -> int
val close : int -> unit
val read : int -> len:int -> bytes
val write : int -> bytes -> int
val write_string : int -> string -> int
val pread : int -> len:int -> offset:int -> bytes
val pwrite : int -> bytes -> offset:int -> int
val lseek : int -> offset:int -> whence:Sysreq.whence -> int
val fstat : int -> Sysreq.stat
val stat : string -> Sysreq.stat
val unlink : string -> unit
val mkdir : ?mode:int -> string -> unit
val rmdir : string -> unit
val readdir : string -> string list
val chdir : string -> unit
val getcwd : unit -> string
val rename : src:string -> dst:string -> unit
val ftruncate : int -> length:int -> unit
val fsync : int -> unit
val dup : int -> int

(* --- memory words (through the MMU) --- *)

val peek : int -> int
(** Load a 64-bit word from a virtual address. *)

val poke : int -> int -> unit

val exit_thread : int -> 'a
(** Does not return (the kernel never resumes the thread). *)

val exit_group : int -> 'a
