(** Summary statistics for noise and performance measurements.

    Provides both a one-shot summary over a sample array and a Welford
    online accumulator for streams too long to store (e.g. the million
    allreduce iterations of paper §V.D). *)

type summary = {
  n : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;      (** sample standard deviation (n-1 denominator) *)
  median : float;
  p99 : float;
}

val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty array. *)

val spread_percent : summary -> float
(** [(max - min) / min * 100], the paper's FWQ "variation" metric.
    An all-zero summary has no spread and yields [0.] (not NaN); a zero
    minimum with a nonzero maximum yields [infinity]. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,1]; interpolates between order
    statistics. [xs] need not be sorted. *)

(** Streaming mean/variance/extrema accumulator. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val n : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end

(** Fixed-width histogram, for FWQ-style sample distributions. *)
module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  val add : t -> float -> unit
  (** Samples outside [lo, hi) are clamped into the first/last bin. *)

  val counts : t -> int array
  val bin_lo : t -> int -> float
  val total : t -> int

  val sum : t -> float
  (** Sum of all samples as added (before clamping into [lo, hi)). *)

  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [0,1]: the smallest value [v] such
      that at least [p * total] samples fall in bins at or below the one
      containing [v], linearly interpolated inside that bin. Resolution
      is one bin width; clamped samples answer from the edge bins. An
      empty histogram yields [0.]. *)
end
