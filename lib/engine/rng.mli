(** Deterministic, splittable pseudo-random streams (SplitMix64).

    Every source of variability in the simulator — daemon wakeup jitter,
    manufacturing variation, temperature noise — draws from a named stream
    derived from the job seed. Two runs with the same seed therefore
    produce bit-identical event sequences, which is the property CNK's
    cycle reproducibility (paper §III) rests on. *)

type t
(** A mutable PRNG stream. *)

val create : int64 -> t
(** [create seed] makes a fresh stream. *)

val state : t -> int64
(** Current position of the stream (snapshot capture). *)

val seed : t -> int64
(** Seed the stream was created with. *)

val split : t -> string -> t
(** [split t label] derives an independent child stream from [t]'s seed and
    [label], without perturbing [t]'s own sequence. Deterministic: the same
    parent seed and label always give the same child. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). [bound] must be > 0. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller normal deviate. *)

val exponential : t -> mean:float -> float
(** Exponential deviate with the given mean. *)

val seed_of_string : string -> int64
(** Deterministically hash a string into a seed. *)
