(** Architecturally observable event trace with a running digest.

    The trace is the simulator's analogue of the signal history a logic
    analyzer would see on real silicon. Every unit that changes observable
    state appends a record; the running FNV digest over (cycle, label,
    value) triples is what logic scans (see {!Bg_bringup}) capture.

    Recording full records is optional (it costs memory on long runs); the
    digest is always maintained. *)

type record = { cycle : Cycles.t; label : string; value : int64 }

type t

val create : ?keep_records:bool -> unit -> t
(** [keep_records] defaults to [false]: only the digest is kept. *)

val emit : t -> cycle:Cycles.t -> label:string -> value:int64 -> unit
(** Append an observable event. *)

val digest : t -> Fnv.t
(** Digest over every event emitted so far. *)

val count : t -> int
(** Number of events emitted so far. *)

val records : t -> record list
(** Recorded events, oldest first. Empty unless [keep_records] was set.
    Builds a fresh reversed list on every call — O(n) allocation each
    time. Prefer {!iter} anywhere called repeatedly or on long traces;
    [records] remains for tests and one-shot dumps. *)

val iter : t -> (record -> unit) -> unit
(** [iter t f] applies [f] to each recorded event, oldest first, without
    copying the record list. Digest and record contents are exactly
    those {!records} would return. *)

val last_cycle : t -> Cycles.t
(** Cycle of the most recent event, or 0 if none. *)
