type handle = int

type 'a entry = { time : Cycles.t; seq : int; payload : 'a }

(* Binary min-heap on (time, seq). [alive] tracks scheduled-but-not-fired
   sequence numbers; cancellation removes from [alive] and the stale heap
   entry is dropped lazily when it reaches the top. *)
type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  alive : (int, unit) Hashtbl.t;
}

let create () = { heap = [||]; size = 0; next_seq = 0; alive = Hashtbl.create 64 }

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow q =
  let capacity = max 16 (2 * Array.length q.heap) in
  let heap = Array.make capacity q.heap.(0) in
  Array.blit q.heap 0 heap 0 q.size;
  q.heap <- heap

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && before q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.size && before q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(!smallest);
    q.heap.(!smallest) <- tmp;
    sift_down q !smallest
  end

let add q ~time payload =
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  let entry = { time; seq; payload } in
  if q.size = Array.length q.heap then
    if q.size = 0 then q.heap <- Array.make 16 entry else grow q;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1);
  Hashtbl.add q.alive seq ();
  seq

let cancel q h = Hashtbl.remove q.alive h

let pop_raw q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some top
  end

let rec pop q =
  match pop_raw q with
  | None -> None
  | Some e ->
    if Hashtbl.mem q.alive e.seq then begin
      Hashtbl.remove q.alive e.seq;
      Some (e.time, e.payload)
    end
    else pop q

let rec peek_time q =
  if q.size = 0 then None
  else if Hashtbl.mem q.alive q.heap.(0).seq then Some q.heap.(0).time
  else begin
    ignore (pop_raw q);
    peek_time q
  end

let is_empty q = Hashtbl.length q.alive = 0
let length q = Hashtbl.length q.alive

let next_seq q = q.next_seq

let live q =
  let out = ref [] in
  for i = 0 to q.size - 1 do
    let e = q.heap.(i) in
    if Hashtbl.mem q.alive e.seq then out := (e.time, e.seq) :: !out
  done;
  List.sort compare !out
