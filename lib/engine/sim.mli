(** The discrete-event simulator core.

    A [Sim.t] owns the global clock, the deterministic event queue, the
    architectural trace and the root RNG. All hardware units and kernels
    advance by scheduling thunks; the run loop fires them in (time,
    insertion-order) sequence, so a whole-machine run is a pure function of
    the seed and configuration — the property behind CNK's cycle
    reproducibility (paper §III). *)

type t

type outcome =
  | Completed      (** event queue drained *)
  | Reached_limit  (** stopped at the [until] time or [max_events] budget *)
  | Halted of string
      (** {!halt} was called, e.g. by a destructive logic scan *)

val create : ?seed:int64 -> ?keep_trace_records:bool -> unit -> t
(** [create ()] makes a simulator at cycle 0. [seed] defaults to 1. *)

val now : t -> Cycles.t

val seed : t -> int64

val schedule_at : t -> Cycles.t -> (unit -> unit) -> Event_queue.handle
(** Schedule a thunk at an absolute cycle, which must be [>= now]. *)

val schedule_in : t -> Cycles.t -> (unit -> unit) -> Event_queue.handle
(** Schedule a thunk [delta] cycles from now ([delta >= 0]). *)

val cancel : t -> Event_queue.handle -> unit

val pending : t -> int
(** Number of scheduled, unfired events. *)

val run : ?until:Cycles.t -> ?max_events:int -> t -> outcome
(** Fire events in order until the queue drains, the clock passes [until],
    the event budget is exhausted, or {!halt} is called. The clock is left
    at the last fired event (or at [until] when that limit hit first). *)

val step : t -> bool
(** Fire exactly one event. Returns [false] when the queue is empty. *)

val halt : t -> string -> unit
(** Request that the enclosing {!run} stop after the current event. *)

val trace : t -> Trace.t

val emit : t -> label:string -> value:int64 -> unit
(** Append an observable event at the current cycle. *)

val rng : t -> string -> Rng.t
(** [rng t name] returns the named RNG stream, creating it (deterministically
    from the seed and [name]) on first use. Subsequent calls return the same
    stream, preserving its position. *)

val events_fired : t -> int
(** Total events fired since creation, across every {!run} and {!step}
    call. The snapshot cursor: deterministic replay of the same scenario
    reaches identical machine state at the same count. *)

val capture : t -> Buffer.t -> unit
(** Serialize the simulator's own state — clock, seed, event cursor,
    trace digest, RNG stream positions, and the (time, seq) shape of the
    live event queue — little-endian, for a snapshot region. Event
    payloads are closures and are not captured; restore is by replay. *)
