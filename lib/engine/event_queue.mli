(** Deterministic priority queue of simulation events.

    Events are ordered by (timestamp, insertion sequence number): two events
    scheduled for the same cycle fire in insertion order. This total order
    is what makes the whole machine cycle-reproducible — the scheduler never
    consults anything outside the queue to break ties. *)

type 'a t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> 'a t

val add : 'a t -> time:Cycles.t -> 'a -> handle
(** [add q ~time payload] schedules [payload] at [time]. *)

val cancel : 'a t -> handle -> unit
(** [cancel q h] removes the event, if it has not already fired. Cancelling
    twice, or cancelling a fired event, is a no-op. *)

val pop : 'a t -> (Cycles.t * 'a) option
(** Remove and return the earliest live event. *)

val peek_time : 'a t -> Cycles.t option
(** Timestamp of the earliest live event, without removing it. *)

val is_empty : 'a t -> bool

val length : 'a t -> int
(** Number of live (non-cancelled) events. *)

val next_seq : 'a t -> int
(** Sequence number the next {!add} will receive. *)

val live : 'a t -> (Cycles.t * int) list
(** Sorted [(time, seq)] pairs of every live event — the queue's shape,
    without the (unserializable) payloads. Used by snapshot capture. *)
