type summary = {
  n : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;
  median : float;
  p99 : float;
}

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty";
  let mn = ref xs.(0) and mx = ref xs.(0) and sum = ref 0.0 in
  Array.iter
    (fun x ->
      if x < !mn then mn := x;
      if x > !mx then mx := x;
      sum := !sum +. x)
    xs;
  let mean = !sum /. float_of_int n in
  let var =
    if n < 2 then 0.0
    else begin
      let acc = ref 0.0 in
      Array.iter
        (fun x ->
          let d = x -. mean in
          acc := !acc +. (d *. d))
        xs;
      !acc /. float_of_int (n - 1)
    end
  in
  {
    n;
    min = !mn;
    max = !mx;
    mean;
    stddev = sqrt var;
    median = percentile xs 0.5;
    p99 = percentile xs 0.99;
  }

let spread_percent s =
  if s.min <> 0.0 then (s.max -. s.min) /. s.min *. 100.0
  else if s.max = 0.0 then 0.0 (* all-zero samples: no spread, not 0/0 *)
  else infinity

module Online = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let n t = t.n
  let mean t = t.mean
  let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))
  let min t = t.min
  let max t = t.max
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    counts : int array;
    mutable total : int;
    mutable sum : float;
  }

  let create ~lo ~hi ~bins =
    if bins <= 0 || hi <= lo then invalid_arg "Stats.Histogram.create";
    { lo; hi; counts = Array.make bins 0; total = 0; sum = 0.0 }

  let add t x =
    let bins = Array.length t.counts in
    let width = (t.hi -. t.lo) /. float_of_int bins in
    let i = int_of_float (Float.floor ((x -. t.lo) /. width)) in
    let i = if i < 0 then 0 else if i >= bins then bins - 1 else i in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum +. x

  let counts t = Array.copy t.counts

  let bin_lo t i =
    let bins = Array.length t.counts in
    t.lo +. (float_of_int i *. ((t.hi -. t.lo) /. float_of_int bins))

  let total t = t.total
  let sum t = t.sum

  let percentile t p =
    if t.total = 0 then 0.0
    else begin
      let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
      let bins = Array.length t.counts in
      let width = (t.hi -. t.lo) /. float_of_int bins in
      let target = p *. float_of_int t.total in
      let target = if target < 1.0 then 1.0 else target in
      let rec walk i cum =
        if i >= bins then t.hi
        else begin
          let cum' = cum + t.counts.(i) in
          if float_of_int cum' >= target && t.counts.(i) > 0 then begin
            let frac =
              (target -. float_of_int cum) /. float_of_int t.counts.(i)
            in
            bin_lo t i +. (frac *. width)
          end
          else walk (i + 1) cum'
        end
      in
      walk 0 0
    end
end
