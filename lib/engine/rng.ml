type t = { mutable state : int64; seed : int64 }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed; seed }
let state t = t.state
let seed t = t.seed

let next_int64 t =
  t.state <- Int64.add t.state 0x9e3779b97f4a7c15L;
  mix t.state

let seed_of_string s = Fnv.add_string Fnv.empty s

let split t label =
  let child_seed = mix (Int64.logxor t.seed (seed_of_string label)) in
  create child_seed

let int t bound =
  assert (bound > 0);
  let x = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  x mod bound

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  x /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  (* Box-Muller; reject u1 = 0 to keep log finite. *)
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-300 then draw () else u1
  in
  let u1 = draw () in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let exponential t ~mean =
  let rec draw () =
    let u = float t 1.0 in
    if u <= 1e-300 then draw () else u
  in
  -.mean *. log (draw ())
