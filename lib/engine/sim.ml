type outcome = Completed | Reached_limit | Halted of string

type t = {
  mutable clock : Cycles.t;
  queue : (unit -> unit) Event_queue.t;
  trace : Trace.t;
  root_rng : Rng.t;
  streams : (string, Rng.t) Hashtbl.t;
  seed : int64;
  mutable halt_reason : string option;
  mutable fired : int;
}

let create ?(seed = 1L) ?(keep_trace_records = false) () =
  {
    clock = 0;
    queue = Event_queue.create ();
    trace = Trace.create ~keep_records:keep_trace_records ();
    root_rng = Rng.create seed;
    streams = Hashtbl.create 16;
    seed;
    halt_reason = None;
    fired = 0;
  }

let now t = t.clock
let seed t = t.seed

let schedule_at t time thunk =
  assert (time >= t.clock);
  Event_queue.add t.queue ~time thunk

let schedule_in t delta thunk =
  assert (delta >= 0);
  schedule_at t (t.clock + delta) thunk

let cancel t h = Event_queue.cancel t.queue h
let pending t = Event_queue.length t.queue

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, thunk) ->
    t.clock <- time;
    t.fired <- t.fired + 1;
    thunk ();
    true

let halt t reason = t.halt_reason <- Some reason

let run ?until ?max_events t =
  let fired = ref 0 in
  let rec loop () =
    match t.halt_reason with
    | Some reason ->
      t.halt_reason <- None;
      Halted reason
    | None ->
      let budget_ok =
        match max_events with None -> true | Some m -> !fired < m
      in
      if not budget_ok then Reached_limit
      else begin
        match Event_queue.peek_time t.queue with
        | None -> Completed
        | Some time ->
          let beyond = match until with None -> false | Some u -> time > u in
          if beyond then begin
            (match until with Some u -> t.clock <- max t.clock u | None -> ());
            Reached_limit
          end
          else begin
            ignore (step t);
            incr fired;
            loop ()
          end
      end
  in
  loop ()

let trace t = t.trace
let emit t ~label ~value = Trace.emit t.trace ~cycle:t.clock ~label ~value

let rng t name =
  match Hashtbl.find_opt t.streams name with
  | Some stream -> stream
  | None ->
    let stream = Rng.split t.root_rng name in
    Hashtbl.add t.streams name stream;
    stream

let events_fired t = t.fired

(* --- snapshot capture -------------------------------------------------- *)

let w_i64 = Buffer.add_int64_le
let w_i b v = w_i64 b (Int64.of_int v)

let w_s b s =
  w_i b (String.length s);
  Buffer.add_string b s

let capture t b =
  w_i b t.clock;
  w_i64 b t.seed;
  w_i b t.fired;
  w_i64 b (Trace.digest t.trace);
  w_i b (Trace.count t.trace);
  w_i b (Trace.last_cycle t.trace);
  w_i64 b (Rng.state t.root_rng);
  let streams =
    Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.streams []
    |> List.sort compare
  in
  w_i b (List.length streams);
  List.iter
    (fun (name, s) ->
      w_s b name;
      w_i64 b (Rng.state s);
      w_i64 b (Rng.seed s))
    streams;
  (* queue shape: payload thunks are closures, so only (time, seq) pairs
     and the allocation cursor are captured — replay rebuilds the thunks *)
  w_i b (Event_queue.next_seq t.queue);
  let live = Event_queue.live t.queue in
  w_i b (List.length live);
  List.iter
    (fun (time, seq) ->
      w_i b time;
      w_i b seq)
    live
