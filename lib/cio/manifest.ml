type proc = { rank : int; pid : int }

(* [frame = None] marks an acked entry: the reply bytes are reclaimed but
   [seq] stays behind as a watermark, so a request copy the network
   reordered behind its own Ack is still recognised as a duplicate. *)
type cached_reply = { seq : int; frame : bytes option }

type t = {
  procs : (proc, unit) Hashtbl.t;
  proxies : (proc, Ioproxy.snapshot) Hashtbl.t;
  replies : (proc * int, cached_reply) Hashtbl.t;
}

let create () =
  { procs = Hashtbl.create 16; proxies = Hashtbl.create 16; replies = Hashtbl.create 16 }

let add_proc t ~rank ~pid = Hashtbl.replace t.procs { rank; pid } ()

let procs t =
  Hashtbl.fold (fun p () acc -> (p.rank, p.pid) :: acc) t.procs []
  |> List.sort compare

let record_proxy t ~rank ~pid snap = Hashtbl.replace t.proxies { rank; pid } snap
let proxy_snapshot t ~rank ~pid = Hashtbl.find_opt t.proxies { rank; pid }

let record_reply t ~rank ~pid ~tid ~seq ~frame =
  Hashtbl.replace t.replies ({ rank; pid }, tid) { seq; frame = Some frame }

let last_reply t ~rank ~pid ~tid =
  match Hashtbl.find_opt t.replies ({ rank; pid }, tid) with
  | Some { seq; frame } -> Some (seq, frame)
  | None -> None

let retire_reply t ~rank ~pid ~tid ~seq =
  match Hashtbl.find_opt t.replies ({ rank; pid }, tid) with
  | Some c when c.seq = seq ->
    Hashtbl.replace t.replies ({ rank; pid }, tid) { c with frame = None }
  | _ -> ()

let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  let procs = procs t in
  w_i (List.length procs);
  List.iter
    (fun (rank, pid) ->
      w_i rank;
      w_i pid)
    procs;
  let proxies =
    Hashtbl.fold (fun p s acc -> ((p.rank, p.pid), s) :: acc) t.proxies []
    |> List.sort (fun (k, _) (k', _) -> compare k k')
  in
  w_i (List.length proxies);
  List.iter
    (fun ((rank, pid), snap) ->
      w_i rank;
      w_i pid;
      Ioproxy.capture_snapshot snap b)
    proxies;
  let replies =
    Hashtbl.fold (fun (p, tid) c acc -> ((p.rank, p.pid, tid), c) :: acc) t.replies []
    |> List.sort (fun (k, _) (k', _) -> compare k k')
  in
  w_i (List.length replies);
  List.iter
    (fun ((rank, pid, tid), c) ->
      w_i rank;
      w_i pid;
      w_i tid;
      w_i c.seq;
      match c.frame with
      | None -> Buffer.add_uint8 b 0
      | Some frame ->
        Buffer.add_uint8 b 1;
        w_i (Bytes.length frame);
        Buffer.add_int64_le b (Bg_engine.Fnv.add_bytes Bg_engine.Fnv.empty frame))
    replies

let remove_rank t ~rank =
  let drop_if tbl key (p : proc) = if p.rank = rank then Hashtbl.remove tbl key in
  let proc_keys = Hashtbl.fold (fun p () acc -> p :: acc) t.procs [] in
  List.iter (fun p -> drop_if t.procs p p) proc_keys;
  let proxy_keys = Hashtbl.fold (fun p _ acc -> p :: acc) t.proxies [] in
  List.iter (fun p -> drop_if t.proxies p p) proxy_keys;
  let reply_keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.replies [] in
  List.iter (fun ((p, _) as k) -> drop_if t.replies k p) reply_keys
