(** CRC-framed envelope for the reliable CNK ⇔ CIOD transport.

    When the collective network is lossy, raw {!Proto} bytes are wrapped in
    a frame carrying a CRC-32 over everything after the checksum field, the
    originating (rank, pid, tid), a per-thread sequence number, and a kind
    tag distinguishing requests, replies, and acks. A single flipped bit
    anywhere in the frame is always detected: either the magic/kind/CRC
    bytes change (magic or kind mismatch, or stored CRC differs) or the
    covered body no longer matches the stored CRC.

    Frames are only used when {!Reliable.config.enabled} is set; the
    default transport ships bare Proto bytes, bit-identical to the
    pre-reliability protocol. *)

type kind = Request | Reply | Ack

type t = {
  kind : kind;
  rank : int;
  pid : int;
  tid : int;
  seq : int;  (** per-(rank,pid,tid) sequence number, assigned by the CNK side *)
  ctx : int;  (** opaque causal context ([Bg_obs.Causal.ctx]); 0 = none. Rides
                  the wire so a retransmission — a byte-for-byte resend of the
                  encoded frame — carries the {e same} context as the original. *)
  payload : bytes;  (** Proto-encoded message; empty for [Ack] *)
}

type error = Malformed of string | Corrupt

val error_message : error -> string

val overhead : int
(** Frame header size in bytes — what the wire is charged beyond the payload. *)

val encode : t -> bytes
val decode : bytes -> (t, error) result

val crc32 : bytes -> pos:int -> len:int -> int
(** CRC-32 (IEEE 802.3, reflected); exposed for tests. *)
