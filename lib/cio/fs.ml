type file = { mutable data : bytes; mutable len : int; mutable perm : int }
type dir = { entries : (string, int) Hashtbl.t; mutable dperm : int }

type node_data = File of file | Dir of dir

type inode = int

type t = { nodes : (int, node_data) Hashtbl.t; mutable next : int }

let root : inode = 0

let create () =
  let t = { nodes = Hashtbl.create 64; next = 1 } in
  Hashtbl.add t.nodes root (Dir { entries = Hashtbl.create 8; dperm = 0o755 });
  t

let node t i = Hashtbl.find t.nodes i

let alloc t data =
  let i = t.next in
  t.next <- i + 1;
  Hashtbl.add t.nodes i data;
  i

(* --- path handling ------------------------------------------------- *)

(* Split a path into components, handling cwd-relative paths, '.', '..'
   and repeated slashes. The result is the component list from the root. *)
let components ~cwd path =
  if String.length path > 4096 then Error Errno.ENAMETOOLONG
  else begin
    let full = if String.length path > 0 && path.[0] = '/' then path else cwd ^ "/" ^ path in
    let parts = String.split_on_char '/' full in
    let rec norm acc = function
      | [] -> Ok (List.rev acc)
      | ("" | ".") :: rest -> norm acc rest
      | ".." :: rest -> (
        match acc with
        | [] -> norm [] rest (* /.. is / *)
        | _ :: up -> norm up rest)
      | c :: rest -> norm (c :: acc) rest
    in
    norm [] parts
  end

let child t dir_inode name =
  match node t dir_inode with
  | Dir d -> (
    match Hashtbl.find_opt d.entries name with
    | Some i -> Ok i
    | None -> Error Errno.ENOENT)
  | File _ -> Error Errno.ENOTDIR

let rec walk t cur = function
  | [] -> Ok cur
  | c :: rest -> (
    match child t cur c with Ok i -> walk t i rest | Error e -> Error e)

let resolve t ~cwd path =
  match components ~cwd path with
  | Error e -> Error e
  | Ok comps -> walk t root comps

let lookup_parent t ~cwd path =
  match components ~cwd path with
  | Error e -> Error e
  | Ok [] -> Error Errno.EEXIST (* the root itself *)
  | Ok comps -> (
    let rec split_last acc = function
      | [ last ] -> (List.rev acc, last)
      | x :: rest -> split_last (x :: acc) rest
      | [] -> assert false
    in
    let dirs, name = split_last [] comps in
    match walk t root dirs with
    | Error e -> Error e
    | Ok parent -> (
      match node t parent with
      | Dir _ -> Ok (parent, name)
      | File _ -> Error Errno.ENOTDIR))

(* --- files --------------------------------------------------------- *)

let is_dir t i = match node t i with Dir _ -> true | File _ -> false
let kind t i = if is_dir t i then Sysreq.Directory else Sysreq.Regular

let size t i = match node t i with File f -> f.len | Dir d -> Hashtbl.length d.entries

let stat t i =
  match node t i with
  | File f -> { Sysreq.st_size = f.len; st_kind = Sysreq.Regular; st_perm = f.perm }
  | Dir d ->
    { Sysreq.st_size = Hashtbl.length d.entries; st_kind = Sysreq.Directory; st_perm = d.dperm }

let open_file t ~cwd path ~flags ~mode =
  match resolve t ~cwd path with
  | Ok i -> (
    if flags.Sysreq.excl && flags.Sysreq.creat then Error Errno.EEXIST
    else
      match node t i with
      | Dir _ -> if flags.Sysreq.wr then Error Errno.EISDIR else Ok i
      | File f ->
        if flags.Sysreq.trunc then begin
          f.data <- Bytes.empty;
          f.len <- 0
        end;
        Ok i)
  | Error Errno.ENOENT when flags.Sysreq.creat -> (
    match lookup_parent t ~cwd path with
    | Error e -> Error e
    | Ok (parent, name) -> (
      match node t parent with
      | File _ -> Error Errno.ENOTDIR
      | Dir d ->
        let i = alloc t (File { data = Bytes.empty; len = 0; perm = mode }) in
        Hashtbl.replace d.entries name i;
        Ok i))
  | Error e -> Error e

let with_file t i f =
  match node t i with File file -> f file | Dir _ -> Error Errno.EISDIR

let read t i ~offset ~len =
  if offset < 0 || len < 0 then Error Errno.EINVAL
  else
    with_file t i (fun f ->
        if offset >= f.len then Ok Bytes.empty
        else begin
          let n = min len (f.len - offset) in
          Ok (Bytes.sub f.data offset n)
        end)

let ensure_capacity f n =
  if Bytes.length f > n then f
  else begin
    let bigger = Bytes.make (max n (max 64 (2 * Bytes.length f))) '\000' in
    Bytes.blit f 0 bigger 0 (Bytes.length f);
    bigger
  end

let write t i ~offset data =
  if offset < 0 then Error Errno.EINVAL
  else
    with_file t i (fun f ->
        let n = Bytes.length data in
        let new_len = max f.len (offset + n) in
        f.data <- ensure_capacity f.data new_len;
        Bytes.blit data 0 f.data offset n;
        f.len <- new_len;
        Ok n)

let truncate t i ~len =
  if len < 0 then Error Errno.EINVAL
  else
    with_file t i (fun f ->
        if len <= f.len then f.len <- len
        else begin
          f.data <- ensure_capacity f.data len;
          (* bytes beyond old len are already zero in fresh buffers; clear
             explicitly in case of shrink-then-grow reuse *)
          Bytes.fill f.data f.len (len - f.len) '\000';
          f.len <- len
        end;
        Ok ())

(* --- directories --------------------------------------------------- *)

let mkdir t ~cwd path ~mode =
  match lookup_parent t ~cwd path with
  | Error e -> Error e
  | Ok (parent, name) -> (
    match node t parent with
    | File _ -> Error Errno.ENOTDIR
    | Dir d ->
      if Hashtbl.mem d.entries name then Error Errno.EEXIST
      else begin
        let i = alloc t (Dir { entries = Hashtbl.create 8; dperm = mode }) in
        Hashtbl.replace d.entries name i;
        Ok ()
      end)

let remove_entry t ~cwd path ~want_dir =
  match lookup_parent t ~cwd path with
  | Error e -> Error e
  | Ok (parent, name) -> (
    match node t parent with
    | File _ -> Error Errno.ENOTDIR
    | Dir d -> (
      match Hashtbl.find_opt d.entries name with
      | None -> Error Errno.ENOENT
      | Some i -> (
        match (node t i, want_dir) with
        | File _, true -> Error Errno.ENOTDIR
        | Dir _, false -> Error Errno.EISDIR
        | Dir sub, true when Hashtbl.length sub.entries > 0 -> Error Errno.ENOTEMPTY
        | node_data, _ ->
          (* POSIX: unlink removes the directory entry; a regular file's
             inode lives on while open descriptors reference it. We keep
             file inodes (the sim never reclaims them) and drop only
             directory inodes, which cannot be held open here. *)
          Hashtbl.remove d.entries name;
          (match node_data with
          | Dir _ -> Hashtbl.remove t.nodes i
          | File _ -> ());
          Ok ())))

let unlink t ~cwd path = remove_entry t ~cwd path ~want_dir:false
let rmdir t ~cwd path = remove_entry t ~cwd path ~want_dir:true

let readdir t ~cwd path =
  match resolve t ~cwd path with
  | Error e -> Error e
  | Ok i -> (
    match node t i with
    | File _ -> Error Errno.ENOTDIR
    | Dir d ->
      let names = Hashtbl.fold (fun k _ acc -> k :: acc) d.entries [] in
      Ok (List.sort compare names))

let rename t ~cwd ~src ~dst =
  match (lookup_parent t ~cwd src, lookup_parent t ~cwd dst) with
  | Error e, _ | _, Error e -> Error e
  | Ok (sp, sname), Ok (dp, dname) -> (
    match (node t sp, node t dp) with
    | Dir sd, Dir dd -> (
      match Hashtbl.find_opt sd.entries sname with
      | None -> Error Errno.ENOENT
      | Some i -> (
        match Hashtbl.find_opt dd.entries dname with
        | Some existing when is_dir t existing -> Error Errno.EISDIR
        | _ ->
          Hashtbl.remove sd.entries sname;
          Hashtbl.replace dd.entries dname i;
          Ok ()))
    | _ -> Error Errno.ENOTDIR)

let canonicalize t ~cwd path =
  match components ~cwd path with
  | Error e -> Error e
  | Ok comps -> (
    match walk t root comps with
    | Error e -> Error e
    | Ok i ->
      if is_dir t i then Ok ("/" ^ String.concat "/" comps) else Error Errno.ENOTDIR)

let inode_id (i : inode) : int = i

let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  let w_s s =
    w_i (String.length s);
    Buffer.add_string b s
  in
  w_i t.next;
  let nodes =
    Hashtbl.fold (fun i d acc -> (i, d) :: acc) t.nodes []
    |> List.sort (fun (i, _) (j, _) -> compare i j)
  in
  w_i (List.length nodes);
  List.iter
    (fun (i, d) ->
      w_i i;
      match d with
      | File f ->
        Buffer.add_uint8 b 0;
        w_i f.perm;
        w_i f.len;
        (* content digest, not content: file bytes can be large and a
           divergence check only needs inequality to show through *)
        Buffer.add_int64_le b
          (Bg_engine.Fnv.add_bytes Bg_engine.Fnv.empty (Bytes.sub f.data 0 f.len))
      | Dir d ->
        Buffer.add_uint8 b 1;
        w_i d.dperm;
        let entries =
          Hashtbl.fold (fun n i acc -> (n, i) :: acc) d.entries [] |> List.sort compare
        in
        w_i (List.length entries);
        List.iter
          (fun (n, i) ->
            w_s n;
            w_i i)
          entries)
    nodes
