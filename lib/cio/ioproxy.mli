(** One I/O proxy process: the Linux-side mirror of one compute-node
    process (paper §IV.A).

    The proxy owns all filesystem state on behalf of its compute-node
    process — file descriptor table, per-descriptor offsets and flags, and
    the current working directory — so CNK itself keeps essentially
    nothing. Each app thread maps to a dedicated proxy thread; here that
    means requests tagged with distinct tids are accounted separately but
    share the process-wide fd table, as POSIX threads do. *)

type t

val create : Fs.t -> rank:int -> pid:int -> t

val rank : t -> int
val pid : t -> int
val cwd : t -> string
val open_fds : t -> int

val handle : t -> Sysreq.request -> Sysreq.reply
(** Execute one function-shipped request against the filesystem, producing
    exactly the reply Linux would (result codes included). Requests that
    are not file I/O return [R_err ENOSYS]. *)

val close_all : t -> unit
(** Job teardown: drop every descriptor and mark the proxy closed.
    Idempotent — a second call (e.g. crash cleanup followed by job end)
    is a no-op, so a restarted CIOD reusing the same {!Fs} never tears
    down a successor proxy's descriptors. *)

val closed : t -> bool
(** True once {!close_all} has run; subsequent {!handle} calls return
    [R_err EBADF]. *)

(** {2 Crash-recovery snapshots}

    A proxy's entire kernel-visible state — cwd, fd table with flags and
    offsets, next-fd counter — can be captured and later rebuilt against
    the same filesystem, modeling the job manifest CIOD persists so a
    restarted daemon can resume a running job. *)

type snapshot

val snapshot : t -> snapshot
val restore : Fs.t -> rank:int -> pid:int -> snapshot -> t

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state (cwd, fd table, offsets) into [b],
    little-endian, fds sorted. *)

val capture_snapshot : snapshot -> Buffer.t -> unit
(** Same codec for an already-taken crash-recovery snapshot. *)
