type config = {
  enabled : bool;
  rto_cycles : int;
  backoff : int;
  retry_budget : int;
  queue_limit : int;
}

let off =
  { enabled = false; rto_cycles = 0; backoff = 1; retry_budget = 0; queue_limit = 0 }

let default_on =
  { enabled = true; rto_cycles = 40_000; backoff = 2; retry_budget = 10; queue_limit = 256 }

let rto_cap = 1_000_000

let validate c =
  if c.enabled then begin
    if c.rto_cycles <= 0 then invalid_arg "Reliable: rto_cycles must be positive";
    if c.backoff < 1 then invalid_arg "Reliable: backoff must be >= 1";
    if c.retry_budget < 1 then invalid_arg "Reliable: retry_budget must be >= 1";
    if c.queue_limit < 1 then invalid_arg "Reliable: queue_limit must be >= 1"
  end

let rto c ~attempt =
  if attempt < 0 then invalid_arg "Reliable.rto";
  let rec go v n = if n <= 0 || v >= rto_cap then v else go (v * c.backoff) (n - 1) in
  min rto_cap (go c.rto_cycles attempt)
