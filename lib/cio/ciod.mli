(** CIOD — the Control and I/O Daemon running on each (Linux) I/O node.

    Receives function-shipped messages from the collective network,
    routes each to the ioproxy mirroring the originating compute-node
    process, executes it against the filesystem, and ships the marshaled
    reply back down the tree (paper Fig 2).

    The I/O node has four cores; request service occupies one of four
    worker slots, so bursts from many compute nodes queue — the
    aggregation that turns 64 compute nodes into one filesystem client.

    With {!Reliable.config.enabled} (off by default), traffic is
    {!Frame}-wrapped and the daemon becomes crash-tolerant: requests are
    sequence-numbered per (rank, pid, tid); a replay cache suppresses
    duplicate execution (a retransmitted [write] must not double-append)
    by resending the cached reply; positive acks reclaim cached reply
    bytes while leaving the acked sequence number as a watermark, so even
    a duplicate reordered behind its own ack is never re-executed; the
    worker queue is bounded; and {!crash}/{!restart} model the daemon
    dying mid-flight and being rebuilt from the job {!Manifest}. *)

type t

val create : Machine.t -> ?fs:Fs.t -> ?config:Reliable.config -> io_node:int -> unit -> t
(** [fs] lets several I/O nodes share one filesystem (a "network mount");
    by default each CIOD gets a private one. [config] defaults to
    {!Reliable.off}: bare Proto bytes on the wire, bit-identical to the
    pre-reliability protocol. *)

val fs : t -> Fs.t
val io_node : t -> int
val config : t -> Reliable.config
val manifest : t -> Manifest.t
val alive : t -> bool

val register_node : t -> rank:int -> deliver:(bytes -> unit) -> unit
(** The compute-node kernel registers how replies reach it: [deliver] is
    invoked when the reply message arrives back at node [rank]. *)

val job_start : t -> rank:int -> pids:int list -> unit
(** Create the ioproxies for a job's processes on [rank] and enter them
    into the manifest. *)

val job_end : t -> rank:int -> unit
(** Tear down rank's proxies, closing their descriptors, and drop the
    rank from the manifest. *)

val submit : t -> bytes -> unit
(** A marshaled message has arrived at the I/O node (the uplink transit is
    charged by the caller). Anything arriving while the daemon is down is
    dropped and counted, on either transport — a crashed CIOD reads as
    message loss, never as a fresh daemon answering. In the default mode
    the message is a bare Proto request: decode, queue on a worker,
    execute, ship the reply; a malformed message raises [Failure]. In
    reliable mode it is a {!Frame}: CRC failures and malformed frames are
    dropped silently (counted in the ["ciod"] Obs subsystem; the sender's
    timeout re-drives), duplicates at or below the acked watermark are
    suppressed, and duplicates of the last executed request are answered
    from the replay cache without re-execution. *)

val crash : t -> unit
(** Kill the daemon mid-flight: queued work is cancelled, proxies and all
    daemon-resident state are lost. The {!Manifest} survives (it models
    control-system storage). Idempotent while down. *)

val restart : t -> unit
(** Bring a crashed daemon back: proxies are rebuilt from their manifest
    snapshots, so descriptors, offsets and cwd resume as of the last
    executed request. No-op while alive. *)

val on_restart : t -> (unit -> unit) -> unit
(** Subscribe to daemon restarts (control-system initiated or injector
    auto-restart alike): [f] runs after the proxies are rebuilt. The
    self-healing policy uses this to clear a pending escalation when a
    daemon comes back by any path. *)

val requests_served : t -> int
val retransmits_seen : t -> int
val queue_rejects : t -> int
val crashes : t -> int
val restarts : t -> int
val queue_depth : t -> int
val proxy_count : t -> int

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state — worker queues, in-flight service
    shapes, proxies, manifest, and the filesystem — into [b]. *)
