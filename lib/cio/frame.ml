type kind = Request | Reply | Ack

type t = {
  kind : kind;
  rank : int;
  pid : int;
  tid : int;
  seq : int;
  ctx : int;
  payload : bytes;
}

type error = Malformed of string | Corrupt

let error_message = function
  | Malformed m -> m
  | Corrupt -> "CRC mismatch"

(* --- CRC-32 (IEEE 802.3, reflected) --------------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 data ~pos ~len =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Bytes.get_uint8 data i) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

(* --- wire layout ------------------------------------------------------

   0        magic (0xc9)
   1        kind
   2..5     crc32, little-endian — computed over the ENTIRE frame with
            these four bytes zeroed, so a single bit flip anywhere
            (magic, kind, crc field, header, payload) is always detected
   6..9     rank (u32)
   10..17   pid
   18..25   tid
   26..33   seq
   34..37   payload length (u32)
   38..45   causal context (opaque; 0 = none)
   46..     payload

   rank and payload length are 32-bit so the causal context rides in the
   header without growing it: the frame is exactly as long as the
   pre-causal format, which keeps collective-tree serialization timing —
   and therefore the zero-knob trace digest — unchanged.                   *)

let magic = 0xc9
let header_bytes = 46

let kind_byte = function Request -> 0 | Reply -> 1 | Ack -> 2

let byte_kind = function
  | 0 -> Some Request
  | 1 -> Some Reply
  | 2 -> Some Ack
  | _ -> None

let overhead = header_bytes

let encode f =
  let len = Bytes.length f.payload in
  let b = Bytes.create (header_bytes + len) in
  Bytes.set_uint8 b 0 magic;
  Bytes.set_uint8 b 1 (kind_byte f.kind);
  Bytes.set_int32_le b 6 (Int32.of_int f.rank);
  Bytes.set_int64_le b 10 (Int64.of_int f.pid);
  Bytes.set_int64_le b 18 (Int64.of_int f.tid);
  Bytes.set_int64_le b 26 (Int64.of_int f.seq);
  Bytes.set_int32_le b 34 (Int32.of_int len);
  Bytes.set_int64_le b 38 (Int64.of_int f.ctx);
  Bytes.blit f.payload 0 b header_bytes len;
  (* checksum the whole frame with the crc field zeroed (Bytes.create
     gives uninitialized memory — zeroing is not optional) *)
  Bytes.set_int32_le b 2 0l;
  let crc = crc32 b ~pos:0 ~len:(Bytes.length b) in
  Bytes.set_int32_le b 2 (Int32.of_int crc);
  b

let decode data =
  let n = Bytes.length data in
  if n < header_bytes then Error (Malformed (Printf.sprintf "short frame: %d bytes" n))
  else begin
    let stored = Int32.to_int (Bytes.get_int32_le data 2) land 0xffffffff in
    let scratch = Bytes.copy data in
    Bytes.set_int32_le scratch 2 0l;
    let computed = crc32 scratch ~pos:0 ~len:n in
    if stored <> computed then Error Corrupt
    else if Bytes.get_uint8 data 0 <> magic then Error (Malformed "bad magic")
    else
      match byte_kind (Bytes.get_uint8 data 1) with
      | None -> Error (Malformed "bad kind")
      | Some kind -> begin
        let int_at off = Int64.to_int (Bytes.get_int64_le data off) in
        let int32_at off = Int32.to_int (Bytes.get_int32_le data off) in
        let len = int32_at 34 in
        if len < 0 || header_bytes + len <> n then
          Error (Malformed (Printf.sprintf "bad payload length %d in %d-byte frame" len n))
        else
          Ok
            {
              kind;
              rank = int32_at 6;
              pid = int_at 10;
              tid = int_at 18;
              seq = int_at 26;
              ctx = int_at 38;
              payload = Bytes.sub data header_bytes len;
            }
      end
  end
