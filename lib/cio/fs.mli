(** In-memory POSIX-style filesystem, the backing store behind the I/O
    nodes.

    This plays the role of the NFS/GPFS/PVFS/Lustre mounts of paper §IV.A:
    CNK never implements a filesystem; the ioproxies perform ordinary
    operations against a Linux-side filesystem, and this module is that
    Linux side. Semantics follow POSIX where the paper depends on them
    (errno values, directory emptiness on rmdir, ESPIPE-free regular-file
    seeks, permission bits recorded, rename replacing files).

    All operations are inode-based; path walking resolves '.', '..' and
    redundant slashes relative to a caller-supplied cwd, because the cwd
    lives in the ioproxy whose state mirrors the compute-node process. *)

type t
type inode

val create : unit -> t
(** A filesystem with an empty root directory. *)

val resolve : t -> cwd:string -> string -> (inode, Errno.t) result
(** Walk a path to its inode. *)

val lookup_parent : t -> cwd:string -> string -> (inode * string, Errno.t) result
(** Resolve all but the last component; returns the parent directory inode
    and the final name. Fails with [ENOENT]/[ENOTDIR] as POSIX does. *)

val open_file :
  t -> cwd:string -> string -> flags:Sysreq.open_flags -> mode:int ->
  (inode, Errno.t) result
(** Open (and possibly create/truncate) a regular file. Opening a
    directory for writing fails with [EISDIR]. *)

val read : t -> inode -> offset:int -> len:int -> (bytes, Errno.t) result
(** Short reads at EOF return fewer bytes; reads at/after EOF return 0. *)

val write : t -> inode -> offset:int -> bytes -> (int, Errno.t) result
(** Extends the file as needed (holes fill with zeros). *)

val truncate : t -> inode -> len:int -> (unit, Errno.t) result
val size : t -> inode -> int
val stat : t -> inode -> Sysreq.stat
val kind : t -> inode -> Sysreq.file_kind
val is_dir : t -> inode -> bool

val mkdir : t -> cwd:string -> string -> mode:int -> (unit, Errno.t) result
val unlink : t -> cwd:string -> string -> (unit, Errno.t) result
(** Removes a regular file; [EISDIR] on directories. *)

val rmdir : t -> cwd:string -> string -> (unit, Errno.t) result
(** [ENOTEMPTY] unless the directory is empty. *)

val readdir : t -> cwd:string -> string -> (string list, Errno.t) result
(** Entry names, sorted, without '.'/'..'. *)

val rename : t -> cwd:string -> src:string -> dst:string -> (unit, Errno.t) result
(** Replaces an existing regular-file destination, as POSIX rename does. *)

val canonicalize : t -> cwd:string -> string -> (string, Errno.t) result
(** Absolute canonical path if the target exists and is a directory —
    used by chdir/getcwd. *)

val inode_id : inode -> int
(** Stable integer identity of an inode (snapshot capture). *)

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state, little-endian, into [b]. Inodes
    and directory entries are sorted; file contents appear as digests. *)
