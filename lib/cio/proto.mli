(** The CNK ⇔ CIOD function-ship wire protocol (paper Fig 2).

    Requests and replies are marshaled to real byte strings: the collective
    network is charged for exactly these bytes, and the CIOD side
    demarshals before executing — so tests can assert that what crosses
    the wire is sufficient to reconstruct the call, as on the real
    machine. Only the file-I/O subset of the ABI is shippable;
    {!encode_request} rejects anything else.

    Framing: every message starts with a header carrying the originating
    (rank, pid, tid) so CIOD can route to the matching ioproxy thread.

    Decoding is hostile-input safe: a truncated or bit-flipped message
    yields a typed {!error}, never an exception, and no decode path reads
    past the end of the buffer. (On the lossy-network path, messages are
    additionally CRC-framed by {!Frame}; these decoders are the last line
    of defense and the one exercised directly by fuzz tests.) *)

type header = { rank : int; pid : int; tid : int }

type error = Malformed of string

val error_message : error -> string

val encode_request : header -> Sysreq.request -> bytes
(** Raises [Invalid_argument] if {!Sysreq.is_file_io} is false. *)

val decode_request : bytes -> (header * Sysreq.request, error) result

val encode_reply : header -> Sysreq.reply -> bytes
val decode_reply : bytes -> (header * Sysreq.reply, error) result
