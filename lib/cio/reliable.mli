(** Policy knobs for the reliable function-ship transport.

    With [enabled = false] (the default everywhere), CNK and CIOD exchange
    bare {!Proto} bytes exactly as before the reliability layer existed —
    no frames, no acks, no timers — so fault-free digests are unchanged.
    With [enabled = true], requests and replies are {!Frame}-wrapped,
    sequence-numbered, positively acknowledged, and retransmitted on a
    timeout with exponential backoff until [retry_budget] is exhausted, at
    which point the syscall fails with [EIO] and a RAS event. *)

type config = {
  enabled : bool;
  rto_cycles : int;  (** initial retransmission timeout *)
  backoff : int;  (** timeout multiplier per retry (>= 1) *)
  retry_budget : int;  (** retransmissions before giving up with EIO *)
  queue_limit : int;  (** CIOD worker-queue bound; excess requests are dropped *)
}

val off : config
val default_on : config

val rto_cap : int
(** Ceiling on the backed-off timeout. *)

val validate : config -> unit
(** Raises [Invalid_argument] on nonsensical knobs (only when enabled). *)

val rto : config -> attempt:int -> int
(** Timeout for the given 0-based attempt: [rto_cycles * backoff^attempt],
    capped at {!rto_cap}. *)
