(** Per-I/O-node job manifest: the control-system-resident record a CIOD
    restart rebuilds its state from.

    On the real machine the control system knows which processes a CIOD
    was proxying; here the manifest additionally holds each proxy's
    kernel-visible snapshot (updated atomically with every executed
    request) and the replay cache of last replies per (rank, pid, tid).
    The manifest deliberately survives {!Ciod.crash} — it models stable
    storage outside the daemon — which is what makes re-executed writes
    idempotent even across a crash between execution and reply delivery. *)

type t

val create : unit -> t

val add_proc : t -> rank:int -> pid:int -> unit
val procs : t -> (int * int) list
(** Sorted (rank, pid) pairs of every live process behind this I/O node. *)

val record_proxy : t -> rank:int -> pid:int -> Ioproxy.snapshot -> unit
val proxy_snapshot : t -> rank:int -> pid:int -> Ioproxy.snapshot option

val record_reply : t -> rank:int -> pid:int -> tid:int -> seq:int -> frame:bytes -> unit
(** Cache the framed reply for the latest executed request of this thread.
    Threads spin on one outstanding request, so a depth-1 cache per tid
    suffices. *)

val last_reply : t -> rank:int -> pid:int -> tid:int -> (int * bytes option) option
(** [(seq, framed_reply)] of the cached entry, if any. [framed_reply] is
    [None] once the CNK side has acked [seq]: the frame bytes are gone but
    the sequence number remains as a watermark (see {!retire_reply}). *)

val retire_reply : t -> rank:int -> pid:int -> tid:int -> seq:int -> unit
(** Ack from the CNK side: reclaim the cached frame bytes for [seq] but
    keep the entry's sequence number as an acked watermark. The entry must
    not be removed outright — the collective net can reorder the Ack ahead
    of a straggling retransmitted copy of the request, and without the
    watermark that copy would look brand new and be re-executed (a re-run
    write double-appends). A stale seq is a no-op. *)

val remove_rank : t -> rank:int -> unit
(** Forget every process, proxy snapshot, and cached reply of [rank]
    (job teardown). *)

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state, little-endian, sorted; cached
    reply frames appear as length + digest. *)
