type header = { rank : int; pid : int; tid : int }

(* --- primitive encoders -------------------------------------------- *)

let put_u8 b v = Buffer.add_uint8 b (v land 0xff)

let put_int b v =
  let x = Bytes.create 8 in
  Bytes.set_int64_le x 0 (Int64.of_int v);
  Buffer.add_bytes b x

let put_str b s =
  put_int b (String.length s);
  Buffer.add_string b s

let put_bytes b d =
  put_int b (Bytes.length d);
  Buffer.add_bytes b d

type error = Malformed of string

let error_message (Malformed m) = m

type cursor = { data : bytes; mutable pos : int }

(* Internal decode failure; [decode_request]/[decode_reply] catch it and
   return a typed [Malformed] — a hostile message must never raise out of
   the decoder, and no cursor read may touch bytes past the buffer. *)
exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let need c n =
  if n < 0 || c.pos + n > Bytes.length c.data then
    bad "truncated: need %d byte(s) at offset %d of %d" n c.pos (Bytes.length c.data)

let get_u8 c =
  need c 1;
  let v = Bytes.get_uint8 c.data c.pos in
  c.pos <- c.pos + 1;
  v

let get_int c =
  need c 8;
  let v = Int64.to_int (Bytes.get_int64_le c.data c.pos) in
  c.pos <- c.pos + 8;
  v

let get_len c =
  let n = get_int c in
  need c n;
  n

let get_str c =
  let n = get_len c in
  let s = Bytes.sub_string c.data c.pos n in
  c.pos <- c.pos + n;
  s

let get_bytes c =
  let n = get_len c in
  let s = Bytes.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let finished c =
  if c.pos <> Bytes.length c.data then
    bad "trailing garbage: %d byte(s) past the message" (Bytes.length c.data - c.pos)

let put_header b { rank; pid; tid } =
  put_int b rank;
  put_int b pid;
  put_int b tid

let get_header c =
  let rank = get_int c in
  let pid = get_int c in
  let tid = get_int c in
  { rank; pid; tid }

(* --- request encoding ----------------------------------------------- *)

let flags_byte (f : Sysreq.open_flags) =
  (if f.Sysreq.rd then 1 else 0)
  lor (if f.Sysreq.wr then 2 else 0)
  lor (if f.Sysreq.creat then 4 else 0)
  lor (if f.Sysreq.trunc then 8 else 0)
  lor (if f.Sysreq.append then 16 else 0)
  lor if f.Sysreq.excl then 32 else 0

let byte_flags v =
  {
    Sysreq.rd = v land 1 <> 0;
    wr = v land 2 <> 0;
    creat = v land 4 <> 0;
    trunc = v land 8 <> 0;
    append = v land 16 <> 0;
    excl = v land 32 <> 0;
  }

let whence_byte = function Sysreq.Seek_set -> 0 | Sysreq.Seek_cur -> 1 | Sysreq.Seek_end -> 2

let byte_whence = function
  | 0 -> Sysreq.Seek_set
  | 1 -> Sysreq.Seek_cur
  | 2 -> Sysreq.Seek_end
  | n -> bad "bad whence %d" n

let encode_request hdr req =
  if not (Sysreq.is_file_io req) then
    invalid_arg
      (Printf.sprintf "Proto.encode_request: %s is not function-shipped"
         (Sysreq.request_name req));
  let b = Buffer.create 64 in
  put_header b hdr;
  (match req with
  | Sysreq.Open { path; flags; mode } ->
    put_u8 b 1;
    put_str b path;
    put_u8 b (flags_byte flags);
    put_int b mode
  | Sysreq.Close fd ->
    put_u8 b 2;
    put_int b fd
  | Sysreq.Read { fd; len } ->
    put_u8 b 3;
    put_int b fd;
    put_int b len
  | Sysreq.Write { fd; data } ->
    put_u8 b 4;
    put_int b fd;
    put_bytes b data
  | Sysreq.Pread { fd; len; offset } ->
    put_u8 b 5;
    put_int b fd;
    put_int b len;
    put_int b offset
  | Sysreq.Pwrite { fd; data; offset } ->
    put_u8 b 6;
    put_int b fd;
    put_bytes b data;
    put_int b offset
  | Sysreq.Lseek { fd; offset; whence } ->
    put_u8 b 7;
    put_int b fd;
    put_int b offset;
    put_u8 b (whence_byte whence)
  | Sysreq.Fstat fd ->
    put_u8 b 8;
    put_int b fd
  | Sysreq.Stat path ->
    put_u8 b 9;
    put_str b path
  | Sysreq.Ftruncate { fd; length } ->
    put_u8 b 10;
    put_int b fd;
    put_int b length
  | Sysreq.Unlink path ->
    put_u8 b 11;
    put_str b path
  | Sysreq.Mkdir { path; mode } ->
    put_u8 b 12;
    put_str b path;
    put_int b mode
  | Sysreq.Rmdir path ->
    put_u8 b 13;
    put_str b path
  | Sysreq.Readdir path ->
    put_u8 b 14;
    put_str b path
  | Sysreq.Chdir path ->
    put_u8 b 15;
    put_str b path
  | Sysreq.Getcwd -> put_u8 b 16
  | Sysreq.Rename { src; dst } ->
    put_u8 b 17;
    put_str b src;
    put_str b dst
  | Sysreq.Dup fd ->
    put_u8 b 18;
    put_int b fd
  | Sysreq.Fsync fd ->
    put_u8 b 19;
    put_int b fd
  | _ -> assert false);
  Buffer.to_bytes b

let decode_request data =
  try
    let c = { data; pos = 0 } in
    let hdr = get_header c in
    let req =
      match get_u8 c with
    | 1 ->
      let path = get_str c in
      let flags = byte_flags (get_u8 c) in
      let mode = get_int c in
      Sysreq.Open { path; flags; mode }
    | 2 -> Sysreq.Close (get_int c)
    | 3 ->
      let fd = get_int c in
      let len = get_int c in
      Sysreq.Read { fd; len }
    | 4 ->
      let fd = get_int c in
      let data = get_bytes c in
      Sysreq.Write { fd; data }
    | 5 ->
      let fd = get_int c in
      let len = get_int c in
      let offset = get_int c in
      Sysreq.Pread { fd; len; offset }
    | 6 ->
      let fd = get_int c in
      let data = get_bytes c in
      let offset = get_int c in
      Sysreq.Pwrite { fd; data; offset }
    | 7 ->
      let fd = get_int c in
      let offset = get_int c in
      let whence = byte_whence (get_u8 c) in
      Sysreq.Lseek { fd; offset; whence }
    | 8 -> Sysreq.Fstat (get_int c)
    | 9 -> Sysreq.Stat (get_str c)
    | 10 ->
      let fd = get_int c in
      let length = get_int c in
      Sysreq.Ftruncate { fd; length }
    | 11 -> Sysreq.Unlink (get_str c)
    | 12 ->
      let path = get_str c in
      let mode = get_int c in
      Sysreq.Mkdir { path; mode }
    | 13 -> Sysreq.Rmdir (get_str c)
    | 14 -> Sysreq.Readdir (get_str c)
    | 15 -> Sysreq.Chdir (get_str c)
    | 16 -> Sysreq.Getcwd
    | 17 ->
      let src = get_str c in
      let dst = get_str c in
      Sysreq.Rename { src; dst }
    | 18 -> Sysreq.Dup (get_int c)
    | 19 -> Sysreq.Fsync (get_int c)
      | n -> bad "bad request tag %d" n
    in
    finished c;
    Ok (hdr, req)
  with Bad m -> Error (Malformed m)

(* --- reply encoding -------------------------------------------------- *)

let kind_byte = function Sysreq.Regular -> 0 | Sysreq.Directory -> 1

let byte_kind = function
  | 0 -> Sysreq.Regular
  | 1 -> Sysreq.Directory
  | n -> bad "bad kind %d" n

let encode_reply hdr reply =
  let b = Buffer.create 64 in
  put_header b hdr;
  (match reply with
  | Sysreq.R_unit -> put_u8 b 1
  | Sysreq.R_int i ->
    put_u8 b 2;
    put_int b i
  | Sysreq.R_bytes d ->
    put_u8 b 3;
    put_bytes b d
  | Sysreq.R_stat s ->
    put_u8 b 4;
    put_int b s.Sysreq.st_size;
    put_u8 b (kind_byte s.Sysreq.st_kind);
    put_int b s.Sysreq.st_perm
  | Sysreq.R_names names ->
    put_u8 b 5;
    put_int b (List.length names);
    List.iter (put_str b) names
  | Sysreq.R_string s ->
    put_u8 b 6;
    put_str b s
  | Sysreq.R_err e ->
    put_u8 b 7;
    put_int b (Errno.code e)
  | Sysreq.R_map _ | Sysreq.R_uname _ | Sysreq.R_personality _ | Sysreq.R_ranges _
  | Sysreq.R_perf _ | Sysreq.R_dma_packets _ ->
    invalid_arg "Proto.encode_reply: reply kind never crosses the wire");
  Buffer.to_bytes b

let errno_of_code code =
  let all =
    [
      Errno.EPERM; Errno.ENOENT; Errno.ESRCH; Errno.EINTR; Errno.EIO; Errno.EBADF;
      Errno.EAGAIN; Errno.ENOMEM; Errno.EACCES; Errno.EFAULT; Errno.EEXIST;
      Errno.ENOTDIR; Errno.EISDIR; Errno.EINVAL; Errno.EMFILE; Errno.ENOSPC;
      Errno.ESPIPE; Errno.EROFS; Errno.ENOSYS; Errno.ENOTEMPTY; Errno.ENAMETOOLONG;
    ]
  in
  match List.find_opt (fun e -> Errno.code e = code) all with
  | Some e -> e
  | None -> bad "unknown errno %d" code

let decode_reply data =
  try
    let c = { data; pos = 0 } in
    let hdr = get_header c in
    let reply =
      match get_u8 c with
      | 1 -> Sysreq.R_unit
      | 2 -> Sysreq.R_int (get_int c)
      | 3 -> Sysreq.R_bytes (get_bytes c)
      | 4 ->
        let st_size = get_int c in
        let st_kind = byte_kind (get_u8 c) in
        let st_perm = get_int c in
        Sysreq.R_stat { Sysreq.st_size; st_kind; st_perm }
      | 5 ->
        let n = get_int c in
        (* each name needs at least its 8-byte length prefix *)
        if n < 0 || n * 8 > Bytes.length c.data - c.pos then bad "bad name count %d" n;
        Sysreq.R_names (List.init n (fun _ -> get_str c))
      | 6 -> Sysreq.R_string (get_str c)
      | 7 -> Sysreq.R_err (errno_of_code (get_int c))
      | n -> bad "bad reply tag %d" n
    in
    finished c;
    Ok (hdr, reply)
  with Bad m -> Error (Malformed m)
