open Bg_engine
module Obs = Bg_obs.Obs

(* I/O-node worker activity appears in the trace under the requesting
   rank's pid, on tid lanes [worker_tid_base + worker] so CIOD service
   never collides with the rank's own core lanes. *)
let worker_tid_base = 16

type t = {
  machine : Machine.t;
  fs : Fs.t;
  io_node : int;
  config : Reliable.config;
  manifest : Manifest.t;
  proxies : (int * int, Ioproxy.t) Hashtbl.t;  (* (rank, pid) -> proxy *)
  deliver : (int, bytes -> unit) Hashtbl.t;    (* rank -> reply delivery *)
  worker_busy : Cycles.t array;                 (* 4 I/O-node cores *)
  (* in-flight service events, cancellable on crash *)
  inflight : (int, Event_queue.handle) Hashtbl.t;
  mutable inflight_next : int;
  (* (rank, pid, tid) -> seq of the request currently being serviced, so a
     retransmission that lands before the original finishes is not
     executed a second time *)
  executing : (int * int * int, int) Hashtbl.t;
  mutable alive : bool;
  mutable served : int;
  mutable retransmits_seen : int;
  mutable queue_rejects : int;
  mutable crashes : int;
  mutable restarts : int;
  mutable restart_subscribers : (unit -> unit) list;
}

(* Linux-side service cost: syscall entry + VFS + wakeup of the proxy. *)
let base_service_cycles = 3400 (* ~4 us *)
let per_byte_cycles = 0.25

let create machine ?fs ?(config = Reliable.off) ~io_node () =
  Reliable.validate config;
  let fs = match fs with Some f -> f | None -> Fs.create () in
  {
    machine;
    fs;
    io_node;
    config;
    manifest = Manifest.create ();
    proxies = Hashtbl.create 64;
    deliver = Hashtbl.create 64;
    worker_busy = Array.make 4 0;
    inflight = Hashtbl.create 16;
    inflight_next = 0;
    executing = Hashtbl.create 16;
    alive = true;
    served = 0;
    retransmits_seen = 0;
    queue_rejects = 0;
    crashes = 0;
    restarts = 0;
    restart_subscribers = [];
  }

let fs t = t.fs
let io_node t = t.io_node
let config t = t.config
let manifest t = t.manifest
let alive t = t.alive

let register_node t ~rank ~deliver = Hashtbl.replace t.deliver rank deliver

let proxy t ~rank ~pid =
  match Hashtbl.find_opt t.proxies (rank, pid) with
  | Some p -> p
  | None ->
    let p = Ioproxy.create t.fs ~rank ~pid in
    Hashtbl.add t.proxies (rank, pid) p;
    p

let obs t = t.machine.Machine.obs

let count t name =
  Obs.incr (obs t) ~rank:t.io_node ~subsystem:"ciod" ~name ()

let depth_gauge t =
  Obs.set_gauge (obs t) ~rank:t.io_node ~subsystem:"ciod" ~name:"queue_depth"
    (Hashtbl.length t.inflight)

let mark t ~rank name =
  let now = Sim.now t.machine.Machine.sim in
  Obs.span_record (obs t) ~cat:"cio" ~name ~rank ~core:worker_tid_base ~start:now ~finish:now

let job_start t ~rank ~pids =
  mark t ~rank "job_start";
  List.iter
    (fun pid ->
      let p = proxy t ~rank ~pid in
      Manifest.add_proc t.manifest ~rank ~pid;
      Manifest.record_proxy t.manifest ~rank ~pid (Ioproxy.snapshot p))
    pids

let job_end t ~rank =
  mark t ~rank "job_end";
  let doomed =
    Hashtbl.fold (fun (r, p) _ acc -> if r = rank then (r, p) :: acc else acc) t.proxies []
  in
  List.iter
    (fun key ->
      (match Hashtbl.find_opt t.proxies key with
      | Some p -> Ioproxy.close_all p
      | None -> ());
      Hashtbl.remove t.proxies key)
    doomed;
  Manifest.remove_rank t.manifest ~rank

let request_cost req =
  let data_bytes =
    match req with
    | Sysreq.Write { data; _ } | Sysreq.Pwrite { data; _ } -> Bytes.length data
    | Sysreq.Read { len; _ } | Sysreq.Pread { len; _ } -> len
    | _ -> 0
  in
  base_service_cycles + int_of_float (per_byte_cycles *. float_of_int data_bytes)

let pick_worker t now =
  (* Earliest-free I/O-node core; index breaks ties deterministically. *)
  let best = ref 0 in
  for i = 1 to Array.length t.worker_busy - 1 do
    if t.worker_busy.(i) < t.worker_busy.(!best) then best := i
  done;
  let start = max now t.worker_busy.(!best) in
  (!best, start)

(* --- legacy (lossless) path ------------------------------------------
   Kept bit-for-bit: with the reliability layer off, every trace emit,
   span, and schedule below matches the pre-reliability protocol. *)

let submit_raw t data =
  let sim = t.machine.Machine.sim in
  let o = obs t in
  let hdr, req =
    match Proto.decode_request data with
    | Ok v -> v
    | Error e -> failwith ("Proto.decode_request: " ^ Proto.error_message e)
  in
  let p = proxy t ~rank:hdr.Proto.rank ~pid:hdr.Proto.pid in
  let now = Sim.now sim in
  let worker, start = pick_worker t now in
  let finish = start + request_cost req in
  t.worker_busy.(worker) <- finish;
  (* Round-trip breakdown, parts 2 and 3: time queued behind earlier
     requests on the I/O node's cores, then the Linux-side service. Both
     intervals are fully determined here, so they are recorded one-shot. *)
  if Obs.enabled o then begin
    let lane = worker_tid_base + worker in
    if start > now then
      Obs.span_record o ~cat:"cio" ~name:"queue_wait" ~rank:hdr.Proto.rank ~core:lane
        ~start:now ~finish:start;
    Obs.span_record o ~cat:"cio"
      ~name:("service." ^ Sysreq.request_name req)
      ~rank:hdr.Proto.rank ~core:lane ~start ~finish;
    Obs.observe_cycles o ~rank:hdr.Proto.rank ~subsystem:"cio" ~name:"service_cycles"
      (finish - start);
    Obs.observe_cycles o ~rank:hdr.Proto.rank ~subsystem:"cio" ~name:"queue_wait_cycles"
      (start - now)
  end;
  ignore
    (Sim.schedule_at sim finish (fun () ->
         t.served <- t.served + 1;
         count t "served";
         Sim.emit sim ~label:"ciod.served" ~value:(Int64.of_int hdr.Proto.rank);
         let reply = Ioproxy.handle p req in
         Manifest.record_proxy t.manifest ~rank:hdr.Proto.rank ~pid:hdr.Proto.pid
           (Ioproxy.snapshot p);
         let reply_bytes = Proto.encode_reply hdr reply in
         (* part 4: the reply's trip back down the collective network *)
         let hr =
           Obs.span_begin o ~cat:"cio" ~name:"transit_reply" ~rank:hdr.Proto.rank
             ~core:(worker_tid_base + worker) ~now:(Sim.now sim)
         in
         Bg_hw.Collective_net.to_compute_node t.machine.Machine.collective
           ~cn:hdr.Proto.rank ~payload:reply_bytes
           ~on_arrival:(fun ~payload ~arrival_cycle:_ ->
             Obs.span_end o hr ~now:(Sim.now sim);
             match Hashtbl.find_opt t.deliver hdr.Proto.rank with
             | Some deliver -> deliver payload
             | None -> ())))

(* --- reliable path ---------------------------------------------------- *)

let send_down t ~rank framed =
  let sim = t.machine.Machine.sim in
  let o = obs t in
  let sent = Sim.now sim in
  Bg_hw.Collective_net.to_compute_node t.machine.Machine.collective ~cn:rank
    ~payload:framed
    ~on_arrival:(fun ~payload ~arrival_cycle ->
      (* Recorded one-shot at arrival: a dropped reply must not leak an
         open span. *)
      Obs.span_record o ~cat:"cio" ~name:"transit_reply" ~rank ~core:worker_tid_base
        ~start:sent ~finish:arrival_cycle;
      match Hashtbl.find_opt t.deliver rank with
      | Some deliver -> deliver payload
      | None -> ())

let service t (f : Frame.t) req =
  let sim = t.machine.Machine.sim in
  let o = obs t in
  let now = Sim.now sim in
  let worker, start = pick_worker t now in
  let finish = start + request_cost req in
  t.worker_busy.(worker) <- finish;
  let key = t.inflight_next in
  t.inflight_next <- key + 1;
  let exec_key = (f.Frame.rank, f.Frame.pid, f.Frame.tid) in
  Hashtbl.replace t.executing exec_key f.Frame.seq;
  let handle =
    Sim.schedule_at sim finish (fun () ->
        Hashtbl.remove t.inflight key;
        Hashtbl.remove t.executing exec_key;
        depth_gauge t;
        t.served <- t.served + 1;
        count t "served";
        Sim.emit sim ~label:"ciod.served" ~value:(Int64.of_int f.Frame.rank);
        if Obs.enabled o then begin
          let lane = worker_tid_base + worker in
          if start > now then
            Obs.span_record o ~cat:"cio" ~name:"queue_wait" ~rank:f.Frame.rank
              ~core:lane ~start:now ~finish:start;
          Obs.span_record o ~cat:"cio"
            ~name:("service." ^ Sysreq.request_name req)
            ~rank:f.Frame.rank ~core:lane ~start ~finish;
          Obs.observe_cycles o ~rank:f.Frame.rank ~subsystem:"cio" ~name:"service_cycles"
            (finish - start);
          Obs.observe_cycles o ~rank:f.Frame.rank ~subsystem:"cio"
            ~name:"queue_wait_cycles" (start - now)
        end;
        (* Execute, snapshot, cache, reply — atomically within this event,
           so a crash either sees the request fully applied (and replayable
           from the cache) or not at all. *)
        let p = proxy t ~rank:f.Frame.rank ~pid:f.Frame.pid in
        let reply = Ioproxy.handle p req in
        let hdr = { Proto.rank = f.Frame.rank; pid = f.Frame.pid; tid = f.Frame.tid } in
        (* Causal: one service node per EXECUTION, linked from the
           request context the frame carried. Duplicate frames never
           reach here (the suppression branches in [submit_reliable]
           record nothing), so at-most-once shows exactly one
           request->reply edge per seq. The service node rides the reply
           frame down so the CNK side can hang the delivery off it. *)
        let causal = t.machine.Machine.causal in
        let service_ctx =
          let module C = Bg_obs.Causal in
          if C.enabled causal then begin
            let s =
              C.mint causal ~chain:false ~cat:"cio"
                ~name:("service." ^ Sysreq.request_name req)
                ~rank:f.Frame.rank ~core:(worker_tid_base + worker) ~now:finish ()
            in
            C.link causal C.Request_reply ~src:f.Frame.ctx ~dst:s;
            s
          end
          else Bg_obs.Causal.none
        in
        let framed =
          Frame.encode
            {
              Frame.kind = Frame.Reply;
              rank = f.Frame.rank;
              pid = f.Frame.pid;
              tid = f.Frame.tid;
              seq = f.Frame.seq;
              ctx = service_ctx;
              payload = Proto.encode_reply hdr reply;
            }
        in
        Manifest.record_proxy t.manifest ~rank:f.Frame.rank ~pid:f.Frame.pid
          (Ioproxy.snapshot p);
        Manifest.record_reply t.manifest ~rank:f.Frame.rank ~pid:f.Frame.pid
          ~tid:f.Frame.tid ~seq:f.Frame.seq ~frame:framed;
        send_down t ~rank:f.Frame.rank framed)
  in
  Hashtbl.replace t.inflight key handle;
  depth_gauge t

let submit_reliable t data =
  match Frame.decode data with
  | Error Frame.Corrupt -> count t "corrupt_frames"
  | Error (Frame.Malformed _) -> count t "malformed"
  | Ok f -> (
    match f.Frame.kind with
    | Frame.Ack ->
      Manifest.retire_reply t.manifest ~rank:f.Frame.rank ~pid:f.Frame.pid
        ~tid:f.Frame.tid ~seq:f.Frame.seq
    | Frame.Reply ->
      (* replies never flow up the tree *)
      count t "malformed"
    | Frame.Request -> (
      match
        Manifest.last_reply t.manifest ~rank:f.Frame.rank ~pid:f.Frame.pid
          ~tid:f.Frame.tid
      with
      | Some (seq, Some cached) when seq = f.Frame.seq ->
        (* Duplicate of an already-executed request: replay the cached
           reply, do NOT re-execute (a re-run write would double-append). *)
        t.retransmits_seen <- t.retransmits_seen + 1;
        count t "retransmit_seen";
        send_down t ~rank:f.Frame.rank cached
      | Some (seq, None) when seq = f.Frame.seq ->
        (* Executed AND acked: the Ack reclaimed the cached frame but left
           [seq] behind as a watermark. A request copy the network
           reordered behind its own Ack lands here and is dropped — the
           sender is no longer waiting, and re-executing would apply the
           side effects twice. *)
        t.retransmits_seen <- t.retransmits_seen + 1;
        count t "retransmit_seen"
      | Some (seq, _) when f.Frame.seq < seq ->
        (* Stale straggler from before the cached request; the sender has
           long since moved on. *)
        t.retransmits_seen <- t.retransmits_seen + 1;
        count t "retransmit_seen"
      | _ ->
        if
          Hashtbl.find_opt t.executing (f.Frame.rank, f.Frame.pid, f.Frame.tid)
          = Some f.Frame.seq
        then begin
          (* Duplicate of a request still being serviced: the reply in
             flight will answer both copies; executing again would apply
             the side effects twice. *)
          t.retransmits_seen <- t.retransmits_seen + 1;
          count t "retransmit_seen"
        end
        else if Hashtbl.length t.inflight >= t.config.Reliable.queue_limit then begin
          (* Bounded worker queue: shed load; the sender's timeout
             re-drives the request. *)
          t.queue_rejects <- t.queue_rejects + 1;
          count t "queue_rejects"
        end
        else (
          match Proto.decode_request f.Frame.payload with
          | Error _ -> count t "malformed"
          | Ok (_hdr, req) -> service t f req)))

let submit t data =
  (* A dead daemon services nothing on either transport: with the
     reliability layer off a crash must read as message loss, not as a
     fresh proxy answering EBADF. *)
  if not t.alive then count t "dropped_dead"
  else if t.config.Reliable.enabled then submit_reliable t data
  else submit_raw t data

(* --- crash / restart --------------------------------------------------- *)

let crash t =
  if t.alive then begin
    t.alive <- false;
    t.crashes <- t.crashes + 1;
    count t "crashes";
    Sim.emit t.machine.Machine.sim ~label:"ciod.crash" ~value:(Int64.of_int t.io_node);
    (* Queued work and all daemon-resident state die with the process.
       The manifest survives: it models control-system storage. *)
    Hashtbl.iter (fun _ h -> Sim.cancel t.machine.Machine.sim h) t.inflight;
    Hashtbl.reset t.inflight;
    Hashtbl.reset t.executing;
    depth_gauge t;
    Hashtbl.reset t.proxies;
    Array.fill t.worker_busy 0 (Array.length t.worker_busy) 0
  end

let restart t =
  if not t.alive then begin
    t.alive <- true;
    count t "restarts";
    Sim.emit t.machine.Machine.sim ~label:"ciod.restart" ~value:(Int64.of_int t.io_node);
    (* Rebuild every proxy from its manifest snapshot; descriptors, offsets
       and cwd come back exactly as of the last executed request. *)
    List.iter
      (fun (rank, pid) ->
        let p =
          match Manifest.proxy_snapshot t.manifest ~rank ~pid with
          | Some snap -> Ioproxy.restore t.fs ~rank ~pid snap
          | None -> Ioproxy.create t.fs ~rank ~pid
        in
        Hashtbl.replace t.proxies (rank, pid) p)
      (Manifest.procs t.manifest);
    t.restarts <- t.restarts + 1;
    List.iter (fun f -> f ()) t.restart_subscribers
  end

let on_restart t f = t.restart_subscribers <- f :: t.restart_subscribers
let restarts t = t.restarts

let requests_served t = t.served
let retransmits_seen t = t.retransmits_seen
let queue_rejects t = t.queue_rejects
let crashes t = t.crashes
let queue_depth t = Hashtbl.length t.inflight
let proxy_count t = Hashtbl.length t.proxies

let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  w_i t.io_node;
  Buffer.add_uint8 b (if t.alive then 1 else 0);
  w_i t.served;
  w_i t.retransmits_seen;
  w_i t.queue_rejects;
  w_i t.crashes;
  w_i t.inflight_next;
  w_i (Array.length t.worker_busy);
  Array.iter w_i t.worker_busy;
  let inflight = Hashtbl.fold (fun k _ acc -> k :: acc) t.inflight [] |> List.sort compare in
  w_i (List.length inflight);
  List.iter w_i inflight;
  let executing =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.executing [] |> List.sort compare
  in
  w_i (List.length executing);
  List.iter
    (fun ((rank, pid, tid), seq) ->
      w_i rank;
      w_i pid;
      w_i tid;
      w_i seq)
    executing;
  let proxies =
    Hashtbl.fold (fun k p acc -> (k, p) :: acc) t.proxies []
    |> List.sort (fun (k, _) (k', _) -> compare k k')
  in
  w_i (List.length proxies);
  List.iter
    (fun ((rank, pid), p) ->
      w_i rank;
      w_i pid;
      Ioproxy.capture p b)
    proxies;
  let ranks = Hashtbl.fold (fun r _ acc -> r :: acc) t.deliver [] |> List.sort compare in
  w_i (List.length ranks);
  List.iter w_i ranks;
  Manifest.capture t.manifest b;
  Fs.capture t.fs b
