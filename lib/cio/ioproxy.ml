type open_file = {
  inode : Fs.inode;
  flags : Sysreq.open_flags;
  mutable offset : int;
}

type t = {
  fs : Fs.t;
  rank : int;
  pid : int;
  mutable cwd : string;
  fds : (int, open_file) Hashtbl.t;
  mutable next_fd : int;
  mutable closed : bool;
}

let fd_limit = 1024

let create fs ~rank ~pid =
  { fs; rank; pid; cwd = "/"; fds = Hashtbl.create 16; next_fd = 3; closed = false }

let rank t = t.rank
let pid t = t.pid
let cwd t = t.cwd
let open_fds t = Hashtbl.length t.fds

let ok_int i = Sysreq.R_int i
let err e = Sysreq.R_err e

let of_result f = function Ok v -> f v | Error e -> err e

let with_fd t fd f =
  match Hashtbl.find_opt t.fds fd with Some o -> f o | None -> err Errno.EBADF

let do_open t path flags mode =
  if Hashtbl.length t.fds >= fd_limit then err Errno.EMFILE
  else
    of_result
      (fun inode ->
        let fd = t.next_fd in
        t.next_fd <- fd + 1;
        let offset = if flags.Sysreq.append then Fs.size t.fs inode else 0 in
        Hashtbl.replace t.fds fd { inode; flags; offset };
        ok_int fd)
      (Fs.open_file t.fs ~cwd:t.cwd path ~flags ~mode)

let do_read t fd len =
  with_fd t fd (fun o ->
      if not o.flags.Sysreq.rd then err Errno.EBADF
      else
        of_result
          (fun data ->
            o.offset <- o.offset + Bytes.length data;
            Sysreq.R_bytes data)
          (Fs.read t.fs o.inode ~offset:o.offset ~len))

let do_write t fd data =
  with_fd t fd (fun o ->
      if not o.flags.Sysreq.wr then err Errno.EBADF
      else begin
        let offset = if o.flags.Sysreq.append then Fs.size t.fs o.inode else o.offset in
        of_result
          (fun n ->
            o.offset <- offset + n;
            ok_int n)
          (Fs.write t.fs o.inode ~offset data)
      end)

let do_lseek t fd offset whence =
  with_fd t fd (fun o ->
      let base =
        match whence with
        | Sysreq.Seek_set -> 0
        | Sysreq.Seek_cur -> o.offset
        | Sysreq.Seek_end -> Fs.size t.fs o.inode
      in
      let target = base + offset in
      if target < 0 then err Errno.EINVAL
      else begin
        o.offset <- target;
        ok_int target
      end)

let handle t req =
  if t.closed then err Errno.EBADF
  else
  match req with
  | Sysreq.Open { path; flags; mode } -> do_open t path flags mode
  | Sysreq.Close fd ->
    with_fd t fd (fun _ ->
        Hashtbl.remove t.fds fd;
        Sysreq.R_unit)
  | Sysreq.Read { fd; len } -> do_read t fd len
  | Sysreq.Write { fd; data } -> do_write t fd data
  | Sysreq.Pread { fd; len; offset } ->
    with_fd t fd (fun o ->
        if not o.flags.Sysreq.rd then err Errno.EBADF
        else of_result (fun d -> Sysreq.R_bytes d) (Fs.read t.fs o.inode ~offset ~len))
  | Sysreq.Pwrite { fd; data; offset } ->
    with_fd t fd (fun o ->
        if not o.flags.Sysreq.wr then err Errno.EBADF
        else of_result ok_int (Fs.write t.fs o.inode ~offset data))
  | Sysreq.Lseek { fd; offset; whence } -> do_lseek t fd offset whence
  | Sysreq.Fstat fd -> with_fd t fd (fun o -> Sysreq.R_stat (Fs.stat t.fs o.inode))
  | Sysreq.Stat path ->
    of_result (fun i -> Sysreq.R_stat (Fs.stat t.fs i)) (Fs.resolve t.fs ~cwd:t.cwd path)
  | Sysreq.Ftruncate { fd; length } ->
    with_fd t fd (fun o ->
        if not o.flags.Sysreq.wr then err Errno.EBADF
        else of_result (fun () -> Sysreq.R_unit) (Fs.truncate t.fs o.inode ~len:length))
  | Sysreq.Unlink path ->
    of_result (fun () -> Sysreq.R_unit) (Fs.unlink t.fs ~cwd:t.cwd path)
  | Sysreq.Mkdir { path; mode } ->
    of_result (fun () -> Sysreq.R_unit) (Fs.mkdir t.fs ~cwd:t.cwd path ~mode)
  | Sysreq.Rmdir path -> of_result (fun () -> Sysreq.R_unit) (Fs.rmdir t.fs ~cwd:t.cwd path)
  | Sysreq.Readdir path ->
    of_result (fun names -> Sysreq.R_names names) (Fs.readdir t.fs ~cwd:t.cwd path)
  | Sysreq.Chdir path ->
    of_result
      (fun canonical ->
        t.cwd <- canonical;
        Sysreq.R_unit)
      (Fs.canonicalize t.fs ~cwd:t.cwd path)
  | Sysreq.Getcwd -> Sysreq.R_string t.cwd
  | Sysreq.Rename { src; dst } ->
    of_result (fun () -> Sysreq.R_unit) (Fs.rename t.fs ~cwd:t.cwd ~src ~dst)
  | Sysreq.Dup fd ->
    with_fd t fd (fun o ->
        if Hashtbl.length t.fds >= fd_limit then err Errno.EMFILE
        else begin
          let nfd = t.next_fd in
          t.next_fd <- nfd + 1;
          Hashtbl.replace t.fds nfd { inode = o.inode; flags = o.flags; offset = o.offset };
          ok_int nfd
        end)
  | Sysreq.Fsync fd -> with_fd t fd (fun _ -> Sysreq.R_unit)
  | _ -> err Errno.ENOSYS

let closed t = t.closed

(* Idempotent: a CIOD restart over the same [Fs] may tear a proxy down
   twice (once on crash cleanup, once on job end); the second call must
   neither raise nor disturb descriptors of a successor proxy. *)
let close_all t =
  if not t.closed then begin
    Hashtbl.reset t.fds;
    t.closed <- true
  end

(* --- crash-recovery snapshots ---------------------------------------- *)

type fd_snapshot = {
  snap_fd : int;
  snap_inode : Fs.inode;
  snap_flags : Sysreq.open_flags;
  snap_offset : int;
}

type snapshot = { snap_cwd : string; snap_next_fd : int; snap_fds : fd_snapshot list }

let snapshot t =
  let fds =
    Hashtbl.fold
      (fun fd o acc ->
        { snap_fd = fd; snap_inode = o.inode; snap_flags = o.flags; snap_offset = o.offset }
        :: acc)
      t.fds []
  in
  {
    snap_cwd = t.cwd;
    snap_next_fd = t.next_fd;
    snap_fds = List.sort (fun a b -> compare a.snap_fd b.snap_fd) fds;
  }

let w_flags b (f : Sysreq.open_flags) =
  let w_b v = Buffer.add_uint8 b (if v then 1 else 0) in
  w_b f.Sysreq.rd;
  w_b f.Sysreq.wr;
  w_b f.Sysreq.creat;
  w_b f.Sysreq.trunc;
  w_b f.Sysreq.append;
  w_b f.Sysreq.excl

let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  let w_s s =
    w_i (String.length s);
    Buffer.add_string b s
  in
  w_i t.rank;
  w_i t.pid;
  w_s t.cwd;
  w_i t.next_fd;
  Buffer.add_uint8 b (if t.closed then 1 else 0);
  let fds =
    Hashtbl.fold (fun fd o acc -> (fd, o) :: acc) t.fds []
    |> List.sort (fun (i, _) (j, _) -> compare i j)
  in
  w_i (List.length fds);
  List.iter
    (fun (fd, o) ->
      w_i fd;
      w_i (Fs.inode_id o.inode);
      w_flags b o.flags;
      w_i o.offset)
    fds

let capture_snapshot snap b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  let w_s s =
    w_i (String.length s);
    Buffer.add_string b s
  in
  w_s snap.snap_cwd;
  w_i snap.snap_next_fd;
  w_i (List.length snap.snap_fds);
  List.iter
    (fun s ->
      w_i s.snap_fd;
      w_i (Fs.inode_id s.snap_inode);
      w_flags b s.snap_flags;
      w_i s.snap_offset)
    snap.snap_fds

let restore fs ~rank ~pid snap =
  let t = create fs ~rank ~pid in
  t.cwd <- snap.snap_cwd;
  t.next_fd <- snap.snap_next_fd;
  List.iter
    (fun s ->
      Hashtbl.replace t.fds s.snap_fd
        { inode = s.snap_inode; flags = s.snap_flags; offset = s.snap_offset })
    snap.snap_fds;
  t
