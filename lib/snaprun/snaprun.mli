(** Scenario registry and divergence bisection on top of [lib/snap].

    A scenario builds a whole machine from (seed, knobs), deterministic
    to the byte; restore is replay (see {!Bg_kabi.Machine.restore}).
    Because every machine digest is cumulative, divergence between two
    knob settings is monotone in the event count and binary search over
    restore points finds the exact first divergent event. *)

type instance = {
  machine : Bg_kabi.Machine.t;
  extra : unit -> Bg_snap.Snap.region list;
      (** kernel-layer snapshot regions (CNK/FWK node state, CIOD) *)
}

type scenario = {
  scn_name : string;
  scn_doc : string;
  build : seed:int64 -> knobs:(string * string) list -> instance;
}

val scenarios : scenario list
(** ["cnk_io"]: two CNK nodes function-shipping pwrites to one CIOD.
    ["fwk_noise"]: one FWK node running FWQ quanta under timer ticks.
    Both accept a ["glitch"] knob that perturbs exactly one event at
    ["glitch_cycle"] — the probe event is scheduled under either
    setting so the queue shape stays identical and only the action
    differs. *)

val find : string -> scenario option

val parse_knob : string -> string * string
(** ["k=v"] to [("k", "v")]; bare ["k"] to [("k", "1")]. *)

val run_to : instance -> events:int -> [ `Reached | `Drained of int ]
(** Pump the simulator one event at a time up to the cursor. *)

val run_until_quiet : instance -> int
(** Drain the queue; returns the final event count. *)

val snapshot_of :
  scenario -> instance -> knobs:(string * string) list -> Bg_snap.Snap.file

val snapshot_at :
  scenario ->
  seed:int64 ->
  knobs:(string * string) list ->
  events:int ->
  instance * Bg_snap.Snap.file * [ `Reached | `Drained of int ]
(** Fresh build, run to the cursor, capture. *)

val restore : scenario -> Bg_snap.Snap.file -> (instance, string) result
(** Rebuild the snapshot's scenario from its recorded (seed, knobs),
    replay to its event cursor and byte-verify every region. *)

val run_with_snapshots :
  scenario ->
  seed:int64 ->
  knobs:(string * string) list ->
  thresholds:int list ->
  instance * (int * Bg_snap.Snap.file) list * (int * Bg_snap.Snap.file)
(** One boot; capture in flight at every threshold reached, then drain
    and capture the final state. *)

type digests = {
  dg_trace : int64;
  dg_spans : int64;
  dg_causal : int64;
  dg_clock : int;
  dg_fired : int;
}

val digests : instance -> digests
(** The cumulative digests behind the restore-continuation invariant:
    snapshot at N, restore, continue — these must equal the
    uninterrupted run's. *)

val pp_digests : Format.formatter -> digests -> unit

type divergence = {
  div_event : int;  (** first event count at which the runs differ *)
  div_region : Bg_snap.Snap.mismatch;
  div_span : (string * Bg_obs.Obs.span) option;
      (** which side (["a"]/["b"]) has the extra span, and the span *)
  div_causal : string list;  (** pretty-printed causal neighborhood *)
  div_probes : int;  (** binary-search restore probes used *)
  div_captures : int;  (** captures taken while bracketing *)
}

val bisect :
  scenario ->
  seed:int64 ->
  knobs_a:(string * string) list ->
  knobs_b:(string * string) list ->
  ?start:int ->
  ?max_events:int ->
  ?log:(string -> unit) ->
  unit ->
  (divergence, string) result
(** Phase 1: one full run per knob set, snapshotting on a geometric
    event schedule (1024, 2048, ... by default) to bracket the first
    divergent capture. Phase 2: binary search inside the bracket —
    each probe replays both knob sets to the midpoint and compares
    captures — landing on the exact first divergent event in O(log)
    probes. *)

val report_lines : divergence -> string list
