(* Scenario registry and divergence bisection on top of lib/snap.

   A scenario is a named, parameterised machine construction: given a
   seed and a knob list it builds the whole installation (machine +
   kernel nodes), boots it, launches the workload, and returns the
   running instance plus a thunk producing the kernel-layer snapshot
   regions. Restore is replay — the builder re-runs deterministically,
   so pumping a fresh instance to a snapshot's event cursor reproduces
   its state byte for byte (Machine.restore verifies exactly that).

   Bisection exploits the same property: every digest in the machine
   (trace, span ring, causal graph) is cumulative, so once two runs'
   snapshots differ at cursor N they differ at every cursor >= N.
   Divergence is monotone in the event count and binary search over
   restore points is sound. *)

open Bg_engine
open Bg_kabi

type instance = {
  machine : Machine.t;
  extra : unit -> Bg_snap.Snap.region list;
}

type scenario = {
  scn_name : string;
  scn_doc : string;
  build : seed:int64 -> knobs:(string * string) list -> instance;
}

(* --- knobs ------------------------------------------------------------ *)

let knob_int knobs key default =
  match List.assoc_opt key knobs with
  | Some v -> (try int_of_string v with _ -> default)
  | None -> default

let knob_bool knobs key default =
  match List.assoc_opt key knobs with
  | Some v -> v = "1" || v = "true" || v = "on"
  | None -> default

let parse_knob s =
  match String.index_opt s '=' with
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> (s, "1")

(* --- scenario plumbing ------------------------------------------------ *)

let region layer fill =
  let b = Buffer.create 1024 in
  fill b;
  { Bg_snap.Snap.layer; layer_version = 1; payload = Buffer.to_bytes b }

let enable_observability (m : Machine.t) =
  Bg_obs.Obs.set_enabled m.Machine.obs true;
  Bg_obs.Accounting.set_enabled m.Machine.acct true;
  Bg_obs.Causal.set_enabled m.Machine.causal true

(* The glitch probe event is scheduled under BOTH knob settings so the
   queue shape (and with it the engine.sim region) is identical until
   the probe fires; the knob only decides whether the fired event acts.
   If only one side scheduled it, the two runs' event sequence numbers
   would differ from construction and bisection would pin the
   divergence to the very first capture instead of the glitch. *)
let schedule_glitch (m : Machine.t) ~glitch ~glitch_cycle =
  let sim = m.Machine.sim in
  ignore
    (Sim.schedule_at sim glitch_cycle (fun () ->
         if glitch then begin
           Sim.emit sim ~label:"snap.glitch" ~value:1L;
           Bg_obs.Obs.span_record m.Machine.obs ~cat:"snap" ~name:"glitch" ~rank:0
             ~core:0 ~start:(Sim.now sim) ~finish:(Sim.now sim);
           ignore
             (Bg_obs.Causal.mint m.Machine.causal ~cat:"snap" ~name:"glitch" ~rank:0
                ~core:0 ~now:(Sim.now sim) ())
         end))

(* --- scenarios -------------------------------------------------------- *)

(* CNK: two compute nodes function-shipping pwrites to one CIOD, with
   compute quanta between writes. Exercises chips, DMA-backed CIO
   transport, the shared filesystem and the span/causal layers. *)
let build_cnk_io ~seed ~knobs =
  let glitch = knob_bool knobs "glitch" false in
  (* defaults put the probe mid-job: CNK boot ends ~2.2M cycles in and
     the 12-iteration write loop drains just under 3M *)
  let glitch_cycle = knob_int knobs "glitch_cycle" 2_500_000 in
  let iters = knob_int knobs "iters" 12 in
  let dims =
    match knob_int knobs "nodes" 2 with
    | 1 -> (1, 1, 1)
    | 4 -> (2, 2, 1)
    | 8 -> (2, 2, 2)
    | n -> (max 1 (min n 8), 1, 1)
  in
  let cluster = Cnk.Cluster.create ~seed ~dims () in
  let machine = Cnk.Cluster.machine cluster in
  enable_observability machine;
  Cnk.Cluster.boot_all cluster;
  let image =
    Image.executable ~name:"snapio" (fun () ->
        let rank = Bg_rt.Libc.rank () in
        let fd =
          Bg_rt.Libc.openf ~flags:Sysreq.o_create_trunc ~mode:0o644
            (Printf.sprintf "/out.%d" rank)
        in
        for i = 0 to iters - 1 do
          Coro.consume 40_000;
          ignore
            (Bg_rt.Libc.pwrite fd
               (Bytes.make 64 (Char.chr (65 + (i mod 26))))
               ~offset:(i * 64))
        done;
        Bg_rt.Libc.close fd)
  in
  Cnk.Cluster.launch_all cluster (Job.create ~name:"snapio" image);
  schedule_glitch machine ~glitch ~glitch_cycle;
  {
    machine;
    extra =
      (fun () ->
        [
          region "cnk.nodes" (fun b ->
              Array.iter (fun n -> Cnk.Node.capture n b) (Cnk.Cluster.nodes cluster));
          region "cio.ciods" (fun b ->
              for io = 0 to Cnk.Cluster.io_node_count cluster - 1 do
                Bg_cio.Ciod.capture (Cnk.Cluster.ciod cluster ~io_node:io) b
              done);
        ]);
  }

(* FWK: one Linux-like node with timer ticks, running fixed work quanta
   (an FWQ slice). Exercises the buddy allocator, demand paging and the
   noise model's RNG position. *)
let build_fwk_noise ~seed ~knobs =
  let glitch = knob_bool knobs "glitch" false in
  (* stripped FWK boot is 2.6M cycles; 16 quanta run it to ~4.2M *)
  let glitch_cycle = knob_int knobs "glitch_cycle" 3_200_000 in
  let quanta = knob_int knobs "quanta" 16 in
  let machine = Machine.create ~seed ~dims:(1, 1, 1) () in
  enable_observability machine;
  let node =
    Bg_fwk.Node.create ~noise_seed:(Int64.add seed 17L)
      ~daemons:Bg_fwk.Noise_model.quiet_daemon_set machine ~rank:0 ~stripped:true ()
  in
  Bg_fwk.Node.boot node ~on_ready:(fun () ->
      match
        Bg_fwk.Node.launch node
          (Job.create ~name:"snapfwq"
             (Image.executable ~name:"snapfwq" (fun () ->
                  for _ = 1 to quanta do
                    Coro.consume 100_000
                  done)))
      with
      | Ok () -> ()
      | Error e -> failwith ("snaprun: fwk launch failed: " ^ e));
  schedule_glitch machine ~glitch ~glitch_cycle;
  {
    machine;
    extra = (fun () -> [ region "fwk.node" (fun b -> Bg_fwk.Node.capture node b) ]);
  }

let scenarios =
  [
    {
      scn_name = "cnk_io";
      scn_doc =
        "CNK nodes function-shipping pwrites to one CIOD (knobs: glitch, \
         glitch_cycle, iters, nodes)";
      build = build_cnk_io;
    };
    {
      scn_name = "fwk_noise";
      scn_doc =
        "one FWK node running FWQ quanta under timer ticks (knobs: glitch, \
         glitch_cycle, quanta)";
      build = build_fwk_noise;
    };
  ]

let find name = List.find_opt (fun s -> s.scn_name = name) scenarios

(* --- running ---------------------------------------------------------- *)

let run_to inst ~events =
  let sim = inst.machine.Machine.sim in
  let rec go () =
    if Sim.events_fired sim >= events then `Reached
    else if Sim.step sim then go ()
    else `Drained (Sim.events_fired sim)
  in
  go ()

let run_until_quiet inst =
  let sim = inst.machine.Machine.sim in
  while Sim.step sim do
    ()
  done;
  Sim.events_fired sim

let snapshot_of scn inst ~knobs =
  Machine.snapshot inst.machine ~scenario:scn.scn_name ~knobs ~extra:(inst.extra ()) ()

let snapshot_at scn ~seed ~knobs ~events =
  let inst = scn.build ~seed ~knobs in
  let outcome = run_to inst ~events in
  (inst, snapshot_of scn inst ~knobs, outcome)

(* Restore = rebuild + Machine.restore (replay to cursor + byte verify). *)
let restore scn (file : Bg_snap.Snap.file) =
  match find file.Bg_snap.Snap.scenario with
  | None -> Error ("unknown scenario " ^ file.Bg_snap.Snap.scenario)
  | Some s when s.scn_name <> scn.scn_name ->
    Error ("snapshot is for scenario " ^ s.scn_name)
  | Some _ -> (
    let inst =
      scn.build ~seed:file.Bg_snap.Snap.seed ~knobs:file.Bg_snap.Snap.knobs
    in
    match Machine.restore inst.machine ~extra:inst.extra file with
    | Ok () -> Ok inst
    | Error e -> Error (Machine.restore_error_to_string e))

(* One run, capturing in flight at every threshold it reaches, plus a
   final capture when the queue drains. Single boot. *)
let run_with_snapshots scn ~seed ~knobs ~thresholds =
  let inst = scn.build ~seed ~knobs in
  let snaps = ref [] in
  List.iter
    (fun t ->
      match run_to inst ~events:t with
      | `Reached -> snaps := (t, snapshot_of scn inst ~knobs) :: !snaps
      | `Drained _ -> ())
    (List.sort_uniq compare thresholds);
  let final = run_until_quiet inst in
  (inst, List.rev !snaps, (final, snapshot_of scn inst ~knobs))

(* --- digests (for the restore-continuation invariant) ----------------- *)

type digests = {
  dg_trace : int64;
  dg_spans : int64;
  dg_causal : int64;
  dg_clock : int;
  dg_fired : int;
}

let digests inst =
  let m = inst.machine in
  {
    dg_trace = Trace.digest (Sim.trace m.Machine.sim);
    dg_spans = Bg_obs.Obs.digest m.Machine.obs;
    dg_causal = Bg_obs.Causal.digest m.Machine.causal;
    dg_clock = Sim.now m.Machine.sim;
    dg_fired = Sim.events_fired m.Machine.sim;
  }

let pp_digests ppf d =
  Format.fprintf ppf "trace=%Lx spans=%Lx causal=%Lx clock=%d events=%d" d.dg_trace
    d.dg_spans d.dg_causal d.dg_clock d.dg_fired

(* --- bisection -------------------------------------------------------- *)

type divergence = {
  div_event : int;  (** first event count at which the runs differ *)
  div_region : Bg_snap.Snap.mismatch;
  div_span : (string * Bg_obs.Obs.span) option;
      (** which side ("a"/"b") has the extra/first-different span *)
  div_causal : string list;  (** pretty-printed causal neighborhood *)
  div_probes : int;  (** restore probes the binary search used *)
  div_captures : int;  (** captures taken during bracketing *)
}

let span_key (s : Bg_obs.Obs.span) =
  (s.Bg_obs.Obs.seq, s.cat, s.name, s.rank, s.core, s.start, s.finish, s.depth)

(* First span present in one run's ring but not the other's at the
   divergent cursor. Spans are compared as whole records keyed by
   completion order. *)
let offending_span a b =
  let spans m = Bg_obs.Obs.spans m.machine.Machine.obs in
  let sa = spans a and sb = spans b in
  let keys l = List.map span_key l in
  let ka = keys sa and kb = keys sb in
  let only_in tag l other =
    match List.find_opt (fun s -> not (List.mem (span_key s) other)) l with
    | Some s -> Some (tag, s)
    | None -> None
  in
  match only_in "b" sb ka with Some r -> Some r | None -> only_in "a" sa kb

let node_line (g : Bg_obs.Causal.t) (n : Bg_obs.Causal.node) =
  let edge_desc (e : Bg_obs.Causal.edge) =
    let name c =
      match Bg_obs.Causal.find g c with
      | Some m -> Printf.sprintf "%s.%s" m.Bg_obs.Causal.cat m.Bg_obs.Causal.name
      | None -> Printf.sprintf "#%d" c
    in
    Printf.sprintf "%s %s->%s"
      (Bg_obs.Causal.kind_name e.Bg_obs.Causal.kind)
      (name e.Bg_obs.Causal.src) (name e.Bg_obs.Causal.dst)
  in
  let incident =
    List.filter
      (fun (e : Bg_obs.Causal.edge) ->
        e.Bg_obs.Causal.src = n.Bg_obs.Causal.id || e.Bg_obs.Causal.dst = n.Bg_obs.Causal.id)
      (Bg_obs.Causal.edges g)
  in
  Printf.sprintf "%s.%s rank=%d core=%d @%d%s" n.Bg_obs.Causal.cat n.Bg_obs.Causal.name
    n.Bg_obs.Causal.rank n.Bg_obs.Causal.core n.Bg_obs.Causal.at
    (match incident with
    | [] -> ""
    | es -> "  [" ^ String.concat "; " (List.map edge_desc es) ^ "]")

(* Causal nodes minted by one side and not the other at the divergent
   cursor, with their incident edges — the neighborhood of the first
   divergent action. *)
let causal_neighborhood a b =
  let strip (n : Bg_obs.Causal.node) =
    (n.Bg_obs.Causal.cat, n.Bg_obs.Causal.name, n.rank, n.core, n.at)
  in
  let ga = a.machine.Machine.causal and gb = b.machine.Machine.causal in
  let na = Bg_obs.Causal.nodes ga and nb = Bg_obs.Causal.nodes gb in
  let ka = List.map strip na and kb = List.map strip nb in
  let extra tag g l other =
    List.filter (fun n -> not (List.mem (strip n) other)) l
    |> List.map (fun n -> Printf.sprintf "only in %s: %s" tag (node_line g n))
  in
  extra "b" gb nb ka @ extra "a" ga na kb

let geometric ~start ~max_events =
  let rec go acc t =
    if t >= max_events then List.rev (max_events :: acc) else go (t :: acc) (t * 2)
  in
  go [] start

let bisect scn ~seed ~knobs_a ~knobs_b ?(start = 1024) ?(max_events = 8_000_000)
    ?(log = fun _ -> ()) () =
  let captures = ref 0 and probes = ref 0 in
  (* Phase 1: one full run per knob set, capturing at a geometric event
     schedule in flight (single boot each). *)
  let thresholds = geometric ~start ~max_events in
  let _, snaps_a, (final_a, last_a) =
    run_with_snapshots scn ~seed ~knobs:knobs_a ~thresholds
  in
  let _, snaps_b, (final_b, last_b) =
    run_with_snapshots scn ~seed ~knobs:knobs_b ~thresholds
  in
  captures := List.length snaps_a + List.length snaps_b + 2;
  (* Bracket the first divergent capture: lo equal, hi divergent. *)
  let rec bracket lo = function
    | (ta, sa) :: rest_a, (tb, sb) :: rest_b when ta = tb ->
      if Bg_snap.Snap.diff sa sb <> None then Some (lo, ta)
      else bracket ta (rest_a, rest_b)
    | _ ->
      (* thresholds exhausted (or one run drained early): compare the
         final states. *)
      if final_a <> final_b then Some (lo, max final_a final_b)
      else if Bg_snap.Snap.diff last_a last_b <> None then Some (lo, final_a)
      else None
  in
  match bracket 0 (snaps_a, snaps_b) with
  | None -> Error "runs are identical: no divergence up to queue drain"
  | Some (lo, hi) ->
    log (Printf.sprintf "bracketed divergence in (%d, %d]" lo hi);
    (* Phase 2: binary search over restore points. Each probe replays
       both knob sets to the midpoint cursor and compares captures. *)
    let capture_pair events =
      let ia = scn.build ~seed ~knobs:knobs_a in
      ignore (run_to ia ~events);
      let ib = scn.build ~seed ~knobs:knobs_b in
      ignore (run_to ib ~events);
      (ia, ib, Bg_snap.Snap.diff (snapshot_of scn ia ~knobs:knobs_a)
                 (snapshot_of scn ib ~knobs:knobs_b))
    in
    let rec search lo hi =
      (* invariant: equal at lo, divergent at hi *)
      if hi - lo <= 1 then hi
      else begin
        let mid = lo + ((hi - lo) / 2) in
        incr probes;
        let _, _, d = capture_pair mid in
        log
          (Printf.sprintf "probe @%d: %s" mid
             (match d with
             | Some m -> "divergent (" ^ m.Bg_snap.Snap.m_layer ^ ")"
             | None -> "equal"));
        match d with Some _ -> search lo mid | None -> search mid hi
      end
    in
    let first = search lo hi in
    let ia, ib, d = capture_pair first in
    let div_region =
      match d with
      | Some m -> m
      | None -> { Bg_snap.Snap.m_layer = "<none>"; m_offset = 0 }
    in
    Ok
      {
        div_event = first;
        div_region;
        div_span = offending_span ia ib;
        div_causal = causal_neighborhood ia ib;
        div_probes = !probes;
        div_captures = !captures;
      }

let report_lines d =
  let span_line =
    match d.div_span with
    | Some (tag, s) ->
      Printf.sprintf "offending span (only in %s): %s.%s rank=%d core=%d [%d,%d] seq=%d"
        tag s.Bg_obs.Obs.cat s.Bg_obs.Obs.name s.Bg_obs.Obs.rank s.Bg_obs.Obs.core
        s.Bg_obs.Obs.start s.Bg_obs.Obs.finish s.Bg_obs.Obs.seq
    | None -> "offending span: none completed yet at the divergent cursor"
  in
  [
    Printf.sprintf "first divergent event: %d" d.div_event;
    Printf.sprintf "diverging region: %s at byte %d" d.div_region.Bg_snap.Snap.m_layer
      d.div_region.Bg_snap.Snap.m_offset;
    span_line;
  ]
  @ (match d.div_causal with
    | [] -> [ "causal neighborhood: empty" ]
    | ls -> "causal neighborhood:" :: List.map (fun l -> "  " ^ l) ls)
  @ [
      Printf.sprintf "cost: %d bracketing captures, %d binary-search probes"
        d.div_captures d.div_probes;
    ]
