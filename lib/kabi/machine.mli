(** A whole simulated installation: chips wired to the three networks.

    Both kernels, the messaging stack and the bringup tooling share this
    view. Chip [i] is the compute node with torus rank [i]. *)

type ras_severity = Ras_info | Ras_warn | Ras_error

type health_service = {
  h_ts : Bg_obs.Timeseries.t;  (** windowed rollups over [obs] *)
  h_db : Bg_obs.Rasdb.t;  (** every RAS event, indexed and queryable *)
  h_svc : Bg_obs.Health.t;  (** alert rules + flight recorder *)
}

type t = {
  instance : int;  (** unique per machine created in this OS process *)
  sim : Bg_engine.Sim.t;
  params : Bg_hw.Params.t;
  chips : Bg_hw.Chip.t array;
  torus : Bg_hw.Torus.t;
  collective : Bg_hw.Collective_net.t;
  barrier : Bg_hw.Barrier_net.t;
  dma : Bg_hw.Dma.t array;
      (** per-chip torus DMA engines, indexed by rank; inert until
          something injects a descriptor *)
  obs : Bg_obs.Obs.t;
      (** the machine's observability collector; disabled unless turned
          on with [Bg_obs.Obs.set_enabled] (or passed in at {!create}) *)
  acct : Bg_obs.Accounting.t;
      (** the machine's cycle-accounting ledger; disabled unless turned
          on with [Bg_obs.Accounting.set_enabled] *)
  causal : Bg_obs.Causal.t;
      (** the machine's causal-event graph; disabled unless turned on
          with [Bg_obs.Causal.set_enabled] (or passed in at {!create}).
          Seeded from the simulation seed, so same-seed runs mint
          identical node ids. *)
  mutable health : health_service option;
      (** the machine health service; [None] until {!attach_health} *)
  mutable ras_subscribers :
    (rank:int -> severity:ras_severity -> message:string -> unit) list;
      (** use {!on_ras} / {!ras_emit} rather than touching this directly *)
}

val create :
  ?params:Bg_hw.Params.t ->
  ?seed:int64 ->
  ?nodes_per_io_node:int ->
  ?obs:Bg_obs.Obs.t ->
  ?causal:Bg_obs.Causal.t ->
  ?dma_fifo_depth:int ->
  dims:int * int * int ->
  unit ->
  t
(** Build a machine with [x*y*z] nodes. [nodes_per_io_node] defaults to the
    whole machine sharing one I/O node when small (<= 64 nodes), else 64.
    [obs] defaults to a fresh, disabled collector. [dma_fifo_depth]
    overrides the DMA injection-FIFO depth (mainly to provoke
    stall-on-full in tests). *)

val nodes : t -> int
val chip : t -> int -> Bg_hw.Chip.t
val dma : t -> int -> Bg_hw.Dma.t
val sim : t -> Bg_engine.Sim.t
val obs : t -> Bg_obs.Obs.t
val acct : t -> Bg_obs.Accounting.t
val causal : t -> Bg_obs.Causal.t

val publish_net_gauges : t -> rank:int -> unit
(** Push the rank's DMA FIFO occupancy/stall counters and per-link torus
    busy-cycle totals into the metrics registry; no-op while the
    collector is disabled. *)

(** {1 Machine health service}

    The service-node layer the paper's §VI says CNK leans on: RAS
    events stream into a queryable database, the metrics registry rolls
    up into cycle-windowed time series, alert rules watch the series,
    and a flight recorder captures a postmortem bundle on fatal faults
    and firing alerts. Attaching it enables the [obs] collector but is
    otherwise digest-passive: same-seed simulation/span/causal digests
    are byte-identical with the service attached or not. *)

val attach_health :
  ?window:Bg_engine.Cycles.t ->
  ?ring:int ->
  ?db_capacity:int ->
  ?recorder:Bg_obs.Health.recorder_config ->
  ?rules:Bg_obs.Health.rule list ->
  t ->
  health_service
(** Build and wire the health service: subscribe the {!Bg_obs.Rasdb} to
    the machine RAS stream (mirroring severity totals into [ras.*]
    gauges), register the hardware-gauge sampling probe (DMA FIFOs,
    torus link state, UPC readings), route firing alerts back onto the
    RAS stream as typed [HEALTH] events, and arm the sampling tick
    (every [window] cycles, default 100_000). Idempotent: a second call
    returns the existing service. *)

val health : t -> health_service option

val rasdb_severity : ras_severity -> Bg_obs.Rasdb.severity

(** {1 RAS events}

    Blue Gene's Reliability/Availability/Serviceability stream: kernels
    report notable events (guard-page kills, parity errors, unit faults)
    and the service node collects them. The machine carries a simple
    pub-sub so producers (kernels) need not know about collectors. *)

val on_ras : t -> (rank:int -> severity:ras_severity -> message:string -> unit) -> unit
(** Subscribe; multiple subscribers all receive every event. *)

val ras_emit : t -> rank:int -> severity:ras_severity -> message:string -> unit
val ras_severity_to_string : ras_severity -> string

(** {1 Snapshot / restore}

    The machine-level half of the [lib/snap] subsystem: [capture] turns
    live state into named snapshot regions, [snapshot] wraps them in a
    {!Bg_snap.Snap.file}, and [restore] replays a rebuilt scenario to the
    snapshot's event cursor and byte-verifies it. Kernel layers add
    their own regions through [extra]. *)

val capture : t -> Bg_snap.Snap.region list
(** One region per machine layer: ["engine.sim"], ["hw.chips"],
    ["hw.torus"], ["hw.collective"], ["hw.barrier"], ["hw.dma"],
    ["obs.spans"], ["obs.acct"], ["obs.causal"]. *)

val snapshot :
  t ->
  scenario:string ->
  knobs:(string * string) list ->
  ?extra:Bg_snap.Snap.region list ->
  unit ->
  Bg_snap.Snap.file
(** Capture the machine at its current event cursor. [extra] appends
    kernel-layer regions (CNK/FWK node state, CIOD, scheduler). *)

val verify :
  t -> ?extra:Bg_snap.Snap.region list -> Bg_snap.Snap.file -> (unit, Bg_snap.Snap.mismatch) result
(** Byte-compare a fresh capture against [file]'s regions. *)

type restore_error =
  | Cursor_passed of { fired : int; wanted : int }
  | Queue_drained of { fired : int; wanted : int }
  | Restore_mismatch of Bg_snap.Snap.mismatch

val restore_error_to_string : restore_error -> string

val restore :
  t -> ?extra:(unit -> Bg_snap.Snap.region list) -> Bg_snap.Snap.file -> (unit, restore_error) result
(** Replay-based restore: with the scenario already rebuilt on this
    machine (same seed, same knobs, same construction order — the
    machine must not have fired past the cursor), pump the simulator
    one event at a time to the snapshot's event count, then verify
    every region byte-for-byte. [extra] is consulted after the replay
    for kernel-layer regions. Event payloads are closures, so direct
    state installation is impossible; determinism makes replay exact
    and verification proves it (gem5-checkpoint style). *)
