(** The syscall ABI shared by CNK and the FWK baseline.

    This is the paper's "glibc boundary" (§IV): the set of calls NPTL,
    ld.so and malloc actually need (clone, futex, set_tid_address,
    sigaction, uname, brk, mmap/mprotect/munmap), plus the POSIX file I/O
    suite that CNK function-ships to the I/O node, plus CNK-specific
    queries (static memory map, virtual-to-physical) and persistent-memory
    open. Requests are plain data; replies are plain data — which is what
    lets CNK marshal them byte-for-byte over the collective network
    ({!Bg_cio.Proto}). *)

type open_flags = {
  rd : bool;
  wr : bool;
  creat : bool;
  trunc : bool;
  append : bool;
  excl : bool;
}

val o_rdonly : open_flags
val o_wronly : open_flags
val o_rdwr : open_flags
val o_create_trunc : open_flags
(** write + creat + trunc, the common "clobber" open. *)

type whence = Seek_set | Seek_cur | Seek_end

type file_kind = Regular | Directory

type stat = { st_size : int; st_kind : file_kind; st_perm : int }

type clone_flags = {
  vm : bool;  (** share address space — NPTL always sets this *)
  thread : bool;
  settls : bool;
  parent_settid : bool;
  child_cleartid : bool;
}

val nptl_clone_flags : clone_flags
(** The fixed flag set glibc's NPTL passes; CNK validates clone calls
    against exactly this set (paper §IV.B.1). *)

type region_kind = Text | Data | Heap_stack | Shared | Persist

type region = {
  kind : region_kind;
  vaddr : int;
  paddr : int;
  bytes : int;
  page : Bg_hw.Page_size.t;
  writable : bool;
}
(** One range of the static memory map (paper Fig 3). *)

type personality = {
  p_rank : int;
  p_coords : int * int * int;   (** torus coordinates of this node *)
  p_dims : int * int * int;     (** torus dimensions of the machine *)
  p_pset : int;                 (** which I/O node serves this node *)
  p_pset_size : int;            (** compute nodes per I/O node *)
  p_mem_bytes : int;
  p_clock_mhz : int;
}
(** The BG "personality": the per-node configuration block the control
    system writes at boot and applications read to self-configure their
    communication layout (DCMF does exactly this on real hardware). *)

type uname_info = {
  sysname : string;
  nodename : string;  (** unique per node instance, e.g. "bgp3-cn17" *)
  release : string;  (** CNK reports 2.6.19.2 so glibc enables NPTL *)
  machine : string;
}

type perf_op =
  | Perf_start   (** start the chip's UPC counting *)
  | Perf_stop
  | Perf_freeze  (** latch a coherent snapshot; counting continues *)
  | Perf_read
      (** read the latched snapshot (or live counters if never frozen) *)

type perf_reading = { pr_event : Bg_hw.Upc.event; pr_core : int; pr_count : int }
(** [pr_core] is {!Bg_hw.Upc.chip_scope} for chip-wide events. *)

type dma_poll_op =
  | Dma_counter of int  (** read a completion counter: remaining bytes *)
  | Dma_recv            (** drain the reception FIFO *)

type request =
  (* process / thread *)
  | Getpid
  | Gettid
  | Get_rank
  | Clone of { flags : clone_flags; stack_hint : int; tls : int;
               parent_tid_addr : int; child_tid_addr : int;
               entry : unit -> unit }
  | Set_tid_address of int
  | Exit_thread of int
  | Exit_group of int
  | Sigaction of { signo : int; handler : (int -> unit) option }
  | Tgkill of { tid : int; signo : int }
  | Sched_yield
  (* synchronization *)
  | Futex_wait of { addr : int; expected : int }
  | Futex_wake of { addr : int; count : int }
  (* memory *)
  | Brk of int option  (** [None] queries the current break *)
  | Mmap of { length : int; prot : Bg_hw.Tlb.perm; map_copy : bool;
              fd : int option; offset : int }
  | Munmap of { addr : int; length : int }
  | Mprotect of { addr : int; length : int; prot : Bg_hw.Tlb.perm }
  | Shm_open of { name : string; length : int }
      (** CNK persistent/shared named memory (paper §IV.D) *)
  | Query_map
  | Query_vtop of int  (** user-space virtual-to-physical (paper §V.C) *)
  | Query_dirty of { clear : bool }
      (** pages of the heap/stack range written since the last clearing
          query — the incremental-checkpoint primitive. Handled locally by
          the kernel, never function-shipped. *)
  | Query_perf of perf_op
      (** control/read the chip's UPC ({!Bg_hw.Upc}). Handled locally by
          both kernels, never function-shipped; replies with {!R_perf}
          on [Perf_read], [R_unit] otherwise. *)
  (* DMA — the kernel-mediated messaging path (paper Table I). CNK maps
     the DMA unit into user space so DCMF never issues these; a
     Linux-class kernel must trap, translate and pin on every injection
     and poll through the kernel to reach the reception FIFO. *)
  | Dma_inject of Bg_hw.Dma.descriptor
      (** append to the chip's injection FIFO; [R_unit], or
          [R_err EAGAIN] when the FIFO is full (stall-on-full) *)
  | Dma_poll of dma_poll_op
      (** [Dma_counter id] replies [R_int remaining]; [Dma_recv] replies
          {!R_dma_packets} with everything drained *)
  (* info *)
  | Uname
  | Get_personality
  | Gettimeofday
  (* file I/O — function-shipped by CNK *)
  | Open of { path : string; flags : open_flags; mode : int }
  | Close of int
  | Read of { fd : int; len : int }
  | Write of { fd : int; data : bytes }
  | Pread of { fd : int; len : int; offset : int }
  | Pwrite of { fd : int; data : bytes; offset : int }
  | Lseek of { fd : int; offset : int; whence : whence }
  | Fstat of int
  | Stat of string
  | Ftruncate of { fd : int; length : int }
  | Unlink of string
  | Mkdir of { path : string; mode : int }
  | Rmdir of string
  | Readdir of string
  | Chdir of string
  | Getcwd
  | Rename of { src : string; dst : string }
  | Dup of int
  | Fsync of int

type reply =
  | R_unit
  | R_int of int
  | R_bytes of bytes
  | R_stat of stat
  | R_names of string list
  | R_string of string
  | R_map of region list
  | R_uname of uname_info
  | R_personality of personality
  | R_ranges of (int * int) list  (** [(addr, len)] ranges, ascending *)
  | R_perf of perf_reading list   (** non-zero counters, fixed order *)
  | R_dma_packets of Bg_hw.Dma.packet list  (** drained reception FIFO, oldest first *)
  | R_err of Errno.t

exception Syscall_error of Errno.t
(** Raised by the [expect_*] helpers on [R_err]. *)

val expect_unit : reply -> unit
val expect_int : reply -> int
val expect_bytes : reply -> bytes
val expect_stat : reply -> stat
val expect_names : reply -> string list
val expect_string : reply -> string
val expect_map : reply -> region list
val expect_uname : reply -> uname_info
val expect_personality : reply -> personality
val expect_ranges : reply -> (int * int) list
val expect_perf : reply -> perf_reading list
val expect_dma_packets : reply -> Bg_hw.Dma.packet list

val is_file_io : request -> bool
(** True for the requests CNK function-ships to the I/O node. *)

val request_name : request -> string
(** Short name for traces and protocol framing. *)

val pp_request : Format.formatter -> request -> unit
(** strace-style rendering: ["write(fd=3, 4096 bytes)"]. Payload contents
    are elided (length only); closures render as ["<fn>"]. *)

val pp_reply : Format.formatter -> reply -> unit
val pp_region : Format.formatter -> region -> unit
