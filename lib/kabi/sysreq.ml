type open_flags = {
  rd : bool;
  wr : bool;
  creat : bool;
  trunc : bool;
  append : bool;
  excl : bool;
}

let o_rdonly = { rd = true; wr = false; creat = false; trunc = false; append = false; excl = false }
let o_wronly = { rd = false; wr = true; creat = false; trunc = false; append = false; excl = false }
let o_rdwr = { rd = true; wr = true; creat = false; trunc = false; append = false; excl = false }
let o_create_trunc = { rd = false; wr = true; creat = true; trunc = true; append = false; excl = false }

type whence = Seek_set | Seek_cur | Seek_end

type file_kind = Regular | Directory

type stat = { st_size : int; st_kind : file_kind; st_perm : int }

type clone_flags = {
  vm : bool;
  thread : bool;
  settls : bool;
  parent_settid : bool;
  child_cleartid : bool;
}

let nptl_clone_flags =
  { vm = true; thread = true; settls = true; parent_settid = true; child_cleartid = true }

type region_kind = Text | Data | Heap_stack | Shared | Persist

type region = {
  kind : region_kind;
  vaddr : int;
  paddr : int;
  bytes : int;
  page : Bg_hw.Page_size.t;
  writable : bool;
}

type personality = {
  p_rank : int;
  p_coords : int * int * int;
  p_dims : int * int * int;
  p_pset : int;
  p_pset_size : int;
  p_mem_bytes : int;
  p_clock_mhz : int;
}

type uname_info = { sysname : string; nodename : string; release : string; machine : string }

type perf_op = Perf_start | Perf_stop | Perf_freeze | Perf_read

type perf_reading = { pr_event : Bg_hw.Upc.event; pr_core : int; pr_count : int }

type dma_poll_op =
  | Dma_counter of int  (** read a completion counter: remaining bytes *)
  | Dma_recv            (** drain the reception FIFO *)

type request =
  | Getpid
  | Gettid
  | Get_rank
  | Clone of { flags : clone_flags; stack_hint : int; tls : int;
               parent_tid_addr : int; child_tid_addr : int;
               entry : unit -> unit }
  | Set_tid_address of int
  | Exit_thread of int
  | Exit_group of int
  | Sigaction of { signo : int; handler : (int -> unit) option }
  | Tgkill of { tid : int; signo : int }
  | Sched_yield
  | Futex_wait of { addr : int; expected : int }
  | Futex_wake of { addr : int; count : int }
  | Brk of int option
  | Mmap of { length : int; prot : Bg_hw.Tlb.perm; map_copy : bool;
              fd : int option; offset : int }
  | Munmap of { addr : int; length : int }
  | Mprotect of { addr : int; length : int; prot : Bg_hw.Tlb.perm }
  | Shm_open of { name : string; length : int }
  | Query_map
  | Query_vtop of int
  | Query_dirty of { clear : bool }
  | Query_perf of perf_op
  | Dma_inject of Bg_hw.Dma.descriptor
  | Dma_poll of dma_poll_op
  | Uname
  | Get_personality
  | Gettimeofday
  | Open of { path : string; flags : open_flags; mode : int }
  | Close of int
  | Read of { fd : int; len : int }
  | Write of { fd : int; data : bytes }
  | Pread of { fd : int; len : int; offset : int }
  | Pwrite of { fd : int; data : bytes; offset : int }
  | Lseek of { fd : int; offset : int; whence : whence }
  | Fstat of int
  | Stat of string
  | Ftruncate of { fd : int; length : int }
  | Unlink of string
  | Mkdir of { path : string; mode : int }
  | Rmdir of string
  | Readdir of string
  | Chdir of string
  | Getcwd
  | Rename of { src : string; dst : string }
  | Dup of int
  | Fsync of int

type reply =
  | R_unit
  | R_int of int
  | R_bytes of bytes
  | R_stat of stat
  | R_names of string list
  | R_string of string
  | R_map of region list
  | R_uname of uname_info
  | R_personality of personality
  | R_ranges of (int * int) list
  | R_perf of perf_reading list
  | R_dma_packets of Bg_hw.Dma.packet list
  | R_err of Errno.t

exception Syscall_error of Errno.t

let err = function R_err e -> raise (Syscall_error e) | _ -> invalid_arg "Sysreq: reply shape"

let expect_unit = function R_unit -> () | r -> err r
let expect_int = function R_int i -> i | r -> err r
let expect_bytes = function R_bytes b -> b | r -> err r
let expect_stat = function R_stat s -> s | r -> err r
let expect_names = function R_names n -> n | r -> err r
let expect_string = function R_string s -> s | r -> err r
let expect_map = function R_map m -> m | r -> err r
let expect_uname = function R_uname u -> u | r -> err r
let expect_personality = function R_personality p -> p | r -> err r
let expect_ranges = function R_ranges r -> r | r -> err r
let expect_perf = function R_perf r -> r | r -> err r
let expect_dma_packets = function R_dma_packets p -> p | r -> err r

let is_file_io = function
  | Open _ | Close _ | Read _ | Write _ | Pread _ | Pwrite _ | Lseek _ | Fstat _
  | Stat _ | Ftruncate _ | Unlink _ | Mkdir _ | Rmdir _ | Readdir _ | Chdir _
  | Getcwd | Rename _ | Dup _ | Fsync _ ->
    true
  | Getpid | Gettid | Get_rank | Clone _ | Set_tid_address _ | Exit_thread _
  | Exit_group _ | Sigaction _ | Tgkill _ | Sched_yield | Futex_wait _
  | Futex_wake _ | Brk _ | Mmap _ | Munmap _ | Mprotect _ | Shm_open _
  | Query_map | Query_vtop _ | Query_dirty _ | Query_perf _ | Dma_inject _
  | Dma_poll _ | Uname | Get_personality | Gettimeofday ->
    false

let request_name = function
  | Getpid -> "getpid"
  | Gettid -> "gettid"
  | Get_rank -> "get_rank"
  | Clone _ -> "clone"
  | Set_tid_address _ -> "set_tid_address"
  | Exit_thread _ -> "exit_thread"
  | Exit_group _ -> "exit_group"
  | Sigaction _ -> "sigaction"
  | Tgkill _ -> "tgkill"
  | Sched_yield -> "sched_yield"
  | Futex_wait _ -> "futex_wait"
  | Futex_wake _ -> "futex_wake"
  | Brk _ -> "brk"
  | Mmap _ -> "mmap"
  | Munmap _ -> "munmap"
  | Mprotect _ -> "mprotect"
  | Shm_open _ -> "shm_open"
  | Query_map -> "query_map"
  | Query_vtop _ -> "query_vtop"
  | Query_dirty _ -> "query_dirty"
  | Query_perf _ -> "query_perf"
  | Dma_inject _ -> "dma_inject"
  | Dma_poll _ -> "dma_poll"
  | Uname -> "uname"
  | Get_personality -> "get_personality"
  | Gettimeofday -> "gettimeofday"
  | Open _ -> "open"
  | Close _ -> "close"
  | Read _ -> "read"
  | Write _ -> "write"
  | Pread _ -> "pread"
  | Pwrite _ -> "pwrite"
  | Lseek _ -> "lseek"
  | Fstat _ -> "fstat"
  | Stat _ -> "stat"
  | Ftruncate _ -> "ftruncate"
  | Unlink _ -> "unlink"
  | Mkdir _ -> "mkdir"
  | Rmdir _ -> "rmdir"
  | Readdir _ -> "readdir"
  | Chdir _ -> "chdir"
  | Getcwd -> "getcwd"
  | Rename _ -> "rename"
  | Dup _ -> "dup"
  | Fsync _ -> "fsync"

let pp_flags ppf (f : open_flags) =
  let bits =
    List.filter_map
      (fun (b, n) -> if b then Some n else None)
      [ (f.rd, "RD"); (f.wr, "WR"); (f.creat, "CREAT"); (f.trunc, "TRUNC");
        (f.append, "APPEND"); (f.excl, "EXCL") ]
  in
  Format.pp_print_string ppf (if bits = [] then "0" else String.concat "|" bits)

let whence_name = function Seek_set -> "SET" | Seek_cur -> "CUR" | Seek_end -> "END"

let pp_request ppf r =
  match r with
  | Getpid | Gettid | Get_rank | Uname | Get_personality | Gettimeofday | Query_map
  | Getcwd ->
    Format.fprintf ppf "%s()" (request_name r)
  | Clone { flags; _ } ->
    Format.fprintf ppf "clone(vm=%b thread=%b tls=%b, entry=<fn>)" flags.vm
      flags.thread flags.settls
  | Set_tid_address a -> Format.fprintf ppf "set_tid_address(0x%x)" a
  | Exit_thread c -> Format.fprintf ppf "exit_thread(%d)" c
  | Exit_group c -> Format.fprintf ppf "exit_group(%d)" c
  | Sigaction { signo; handler } ->
    Format.fprintf ppf "sigaction(sig=%d, handler=%s)" signo
      (match handler with Some _ -> "<fn>" | None -> "SIG_DFL")
  | Tgkill { tid; signo } -> Format.fprintf ppf "tgkill(tid=%d, sig=%d)" tid signo
  | Sched_yield -> Format.fprintf ppf "sched_yield()"
  | Futex_wait { addr; expected } ->
    Format.fprintf ppf "futex_wait(0x%x, expected=%d)" addr expected
  | Futex_wake { addr; count } -> Format.fprintf ppf "futex_wake(0x%x, count=%d)" addr count
  | Brk None -> Format.fprintf ppf "brk(NULL)"
  | Brk (Some a) -> Format.fprintf ppf "brk(0x%x)" a
  | Mmap { length; fd; offset; map_copy; _ } ->
    Format.fprintf ppf "mmap(%d bytes%s%s)" length
      (match fd with Some fd -> Printf.sprintf ", fd=%d@%d" fd offset | None -> ", ANON")
      (if map_copy then ", MAP_COPY" else "")
  | Munmap { addr; length } -> Format.fprintf ppf "munmap(0x%x, %d)" addr length
  | Mprotect { addr; length; prot } ->
    Format.fprintf ppf "mprotect(0x%x, %d, %s%s%s)" addr length
      (if prot.Bg_hw.Tlb.read then "r" else "-")
      (if prot.Bg_hw.Tlb.write then "w" else "-")
      (if prot.Bg_hw.Tlb.execute then "x" else "-")
  | Shm_open { name; length } -> Format.fprintf ppf "shm_open(%S, %d)" name length
  | Query_vtop a -> Format.fprintf ppf "query_vtop(0x%x)" a
  | Query_dirty { clear } -> Format.fprintf ppf "query_dirty(clear=%b)" clear
  | Query_perf op ->
    Format.fprintf ppf "query_perf(%s)"
      (match op with
      | Perf_start -> "start"
      | Perf_stop -> "stop"
      | Perf_freeze -> "freeze"
      | Perf_read -> "read")
  | Dma_inject d ->
    Format.fprintf ppf "dma_inject(%s dst=%d tag=%d %d bytes ctr=%d)"
      (match d.Bg_hw.Dma.kind with
      | Bg_hw.Dma.Eager -> "eager"
      | Bg_hw.Dma.Rdma_put -> "put"
      | Bg_hw.Dma.Rdma_get -> "get")
      d.Bg_hw.Dma.dst d.Bg_hw.Dma.tag d.Bg_hw.Dma.bytes d.Bg_hw.Dma.counter
  | Dma_poll (Dma_counter id) -> Format.fprintf ppf "dma_poll(counter=%d)" id
  | Dma_poll Dma_recv -> Format.fprintf ppf "dma_poll(recv)"
  | Open { path; flags; mode } ->
    Format.fprintf ppf "open(%S, %a, 0o%o)" path pp_flags flags mode
  | Close fd -> Format.fprintf ppf "close(%d)" fd
  | Read { fd; len } -> Format.fprintf ppf "read(fd=%d, %d bytes)" fd len
  | Write { fd; data } -> Format.fprintf ppf "write(fd=%d, %d bytes)" fd (Bytes.length data)
  | Pread { fd; len; offset } -> Format.fprintf ppf "pread(fd=%d, %d bytes@%d)" fd len offset
  | Pwrite { fd; data; offset } ->
    Format.fprintf ppf "pwrite(fd=%d, %d bytes@%d)" fd (Bytes.length data) offset
  | Lseek { fd; offset; whence } ->
    Format.fprintf ppf "lseek(fd=%d, %d, %s)" fd offset (whence_name whence)
  | Fstat fd -> Format.fprintf ppf "fstat(%d)" fd
  | Stat p -> Format.fprintf ppf "stat(%S)" p
  | Ftruncate { fd; length } -> Format.fprintf ppf "ftruncate(fd=%d, %d)" fd length
  | Unlink p -> Format.fprintf ppf "unlink(%S)" p
  | Mkdir { path; mode } -> Format.fprintf ppf "mkdir(%S, 0o%o)" path mode
  | Rmdir p -> Format.fprintf ppf "rmdir(%S)" p
  | Readdir p -> Format.fprintf ppf "readdir(%S)" p
  | Chdir p -> Format.fprintf ppf "chdir(%S)" p
  | Rename { src; dst } -> Format.fprintf ppf "rename(%S -> %S)" src dst
  | Dup fd -> Format.fprintf ppf "dup(%d)" fd
  | Fsync fd -> Format.fprintf ppf "fsync(%d)" fd

let pp_region ppf r =
  Format.fprintf ppf "%s va 0x%08x -> pa 0x%08x (%d bytes, %s page%s)"
    (match r.kind with
    | Text -> "text"
    | Data -> "data"
    | Heap_stack -> "heap/stack"
    | Shared -> "shared"
    | Persist -> "persist")
    r.vaddr r.paddr r.bytes
    (Bg_hw.Page_size.to_string r.page)
    (if r.writable then ", rw" else ", ro")

let pp_reply ppf = function
  | R_unit -> Format.pp_print_string ppf "OK"
  | R_int i -> Format.fprintf ppf "%d" i
  | R_bytes b -> Format.fprintf ppf "<%d bytes>" (Bytes.length b)
  | R_stat s ->
    Format.fprintf ppf "{size=%d, %s, 0o%o}" s.st_size
      (match s.st_kind with Regular -> "file" | Directory -> "dir")
      s.st_perm
  | R_names ns -> Format.fprintf ppf "[%s]" (String.concat "; " ns)
  | R_string s -> Format.fprintf ppf "%S" s
  | R_map regions -> Format.fprintf ppf "<%d regions>" (List.length regions)
  | R_uname u -> Format.fprintf ppf "%s %s %s" u.sysname u.release u.machine
  | R_personality p ->
    let x, y, z = p.p_coords in
    Format.fprintf ppf "personality{rank=%d (%d,%d,%d) pset=%d}" p.p_rank x y z p.p_pset
  | R_ranges ranges ->
    Format.fprintf ppf "<%d ranges, %d bytes>" (List.length ranges)
      (List.fold_left (fun acc (_, l) -> acc + l) 0 ranges)
  | R_perf readings -> Format.fprintf ppf "<%d perf readings>" (List.length readings)
  | R_dma_packets pkts -> Format.fprintf ppf "<%d dma packets>" (List.length pkts)
  | R_err e -> Format.fprintf ppf "-%s" (Errno.to_string e)
