type ras_severity = Ras_info | Ras_warn | Ras_error

type health_service = {
  h_ts : Bg_obs.Timeseries.t;
  h_db : Bg_obs.Rasdb.t;
  h_svc : Bg_obs.Health.t;
}

type t = {
  instance : int;
  sim : Bg_engine.Sim.t;
  params : Bg_hw.Params.t;
  chips : Bg_hw.Chip.t array;
  torus : Bg_hw.Torus.t;
  collective : Bg_hw.Collective_net.t;
  barrier : Bg_hw.Barrier_net.t;
  dma : Bg_hw.Dma.t array;
  obs : Bg_obs.Obs.t;
  acct : Bg_obs.Accounting.t;
  causal : Bg_obs.Causal.t;
  mutable health : health_service option;
  mutable ras_subscribers :
    (rank:int -> severity:ras_severity -> message:string -> unit) list;
}

let instance_counter = ref 0

let on_ras t f = t.ras_subscribers <- f :: t.ras_subscribers

let ras_emit t ~rank ~severity ~message =
  List.iter (fun f -> f ~rank ~severity ~message) t.ras_subscribers

let create ?(params = Bg_hw.Params.bgp) ?(seed = 1L) ?nodes_per_io_node ?obs ?causal
    ?dma_fifo_depth ~dims () =
  incr instance_counter;
  let x, y, z = dims in
  let n = x * y * z in
  let sim = Bg_engine.Sim.create ~seed () in
  let nodes_per_io_node =
    match nodes_per_io_node with Some k -> k | None -> if n <= 64 then n else 64
  in
  let torus = Bg_hw.Torus.create sim ~params ~dims () in
  let t =
    {
      instance = !instance_counter;
      sim;
      params;
      chips = Array.init n (fun id -> Bg_hw.Chip.create ~params ~id ());
      torus;
      collective =
        Bg_hw.Collective_net.create sim ~params ~compute_nodes:n ~nodes_per_io_node ();
      barrier = Bg_hw.Barrier_net.create sim ~params ~participants:n ();
      dma = Bg_hw.Dma.create_group sim torus ?injection_depth:dma_fifo_depth ();
      obs = (match obs with Some o -> o | None -> Bg_obs.Obs.create ());
      acct = Bg_obs.Accounting.create ();
      causal =
        (match causal with
        | Some c -> c
        | None -> Bg_obs.Causal.create ~seed:(Int64.to_int seed) ());
      health = None;
      ras_subscribers = [];
    }
  in
  (* Per-chip UPC feeds that need the rank-to-chip mapping: torus packet
     injections, barrier arrivals and DMA descriptor injections land on
     the injecting/arriving chip's counter unit. *)
  Bg_hw.Torus.set_inject_hook t.torus (fun ~src ->
      if src >= 0 && src < n then
        Bg_hw.Upc.record (Bg_hw.Chip.upc t.chips.(src)) Bg_hw.Upc.Torus_packet 1);
  Bg_hw.Barrier_net.set_arrive_hook t.barrier (fun ~rank ->
      if rank >= 0 && rank < n then
        Bg_hw.Upc.record (Bg_hw.Chip.upc t.chips.(rank)) Bg_hw.Upc.Barrier_wait 1);
  Array.iteri
    (fun rank engine ->
      Bg_hw.Dma.set_inject_hook engine (fun ~bytes ->
          Bg_hw.Upc.record (Bg_hw.Chip.upc t.chips.(rank)) Bg_hw.Upc.Dma_descriptor 1;
          Bg_obs.Obs.incr t.obs ~rank ~subsystem:"dma" ~name:"injected" ();
          Bg_obs.Obs.incr t.obs ~rank ~subsystem:"dma" ~name:"injected_bytes" ~by:bytes ());
      Bg_hw.Dma.set_deliver_hook engine (fun ~bytes ->
          Bg_obs.Obs.incr t.obs ~rank ~subsystem:"dma" ~name:"delivered" ();
          Bg_obs.Obs.incr t.obs ~rank ~subsystem:"dma" ~name:"delivered_bytes" ~by:bytes ());
      (* Causal: a byte-decrement counter latching zero is the hardware's
         completion notification — link it back to the injection that
         armed it, via the context the descriptor carried. *)
      Bg_hw.Dma.set_counter_done_hook engine (fun ~id ~ctx ->
          if Bg_obs.Causal.enabled t.causal && ctx <> Bg_obs.Causal.none then begin
            let dst =
              Bg_obs.Causal.mint t.causal ~chain:false ~cat:"dma"
                ~name:(Printf.sprintf "counter%d.zero" id)
                ~rank ~core:0 ~now:(Bg_engine.Sim.now t.sim) ()
            in
            Bg_obs.Causal.link t.causal Bg_obs.Causal.Inject_complete ~src:ctx ~dst
          end))
    t.dma;
  (* A link severed while transfers are crossing it is a hardware fault
     the RAS stream must carry; the message matches what
     Bg_resilience.Fault_event.of_message parses into Link_failure, so
     Recovery consumes it without knowing about the torus. *)
  Bg_hw.Torus.set_link_down_hook t.torus (fun ~rank ~dir ~in_flight ->
      if in_flight > 0 then
        ras_emit t ~rank ~severity:Ras_error
          ~message:(Printf.sprintf "FAULT link rank=%d dir=%d" rank dir));
  t

let obs t = t.obs
let acct t = t.acct
let causal t = t.causal

let nodes t = Array.length t.chips
let chip t i = t.chips.(i)
let dma t i = t.dma.(i)
let sim t = t.sim

(* Surface a rank's DMA-engine and torus-link state into the metrics
   registry (kernels call this at job end, tools at collection time).
   Purely observational: no-ops while the collector is disabled. *)
let publish_net_gauges t ~rank =
  let o = t.obs in
  if Bg_obs.Obs.enabled o then begin
    let e = t.dma.(rank) in
    let s = Bg_hw.Dma.stats e in
    Bg_obs.Obs.set_gauge o ~rank ~subsystem:"dma" ~name:"inj_fifo_occupancy"
      (Bg_hw.Dma.injection_occupancy e);
    Bg_obs.Obs.set_gauge o ~rank ~subsystem:"dma" ~name:"rcv_fifo_occupancy"
      (Bg_hw.Dma.reception_occupancy e);
    Bg_obs.Obs.set_gauge o ~rank ~subsystem:"dma" ~name:"inject_stalls"
      s.Bg_hw.Dma.inject_stalls;
    Bg_obs.Obs.set_gauge o ~rank ~subsystem:"dma" ~name:"recv_backpressure"
      s.Bg_hw.Dma.recv_backpressure;
    Bg_obs.Obs.set_gauge o ~rank ~subsystem:"dma" ~name:"dropped" s.Bg_hw.Dma.dropped;
    for dir = 0 to 5 do
      let busy = Bg_hw.Torus.link_busy_cycles t.torus ~rank ~dir in
      if busy > 0 then
        Bg_obs.Obs.set_gauge o ~rank ~subsystem:"torus"
          ~name:(Printf.sprintf "link%d_busy_cycles" dir)
          busy
    done
  end

let ras_severity_to_string = function
  | Ras_info -> "INFO"
  | Ras_warn -> "WARN"
  | Ras_error -> "ERROR"

let rasdb_severity = function
  | Ras_info -> Bg_obs.Rasdb.Info
  | Ras_warn -> Bg_obs.Rasdb.Warn
  | Ras_error -> Bg_obs.Rasdb.Error

(* --- machine health service -------------------------------------------- *)

let health t = t.health

(* Which series a fault class implicates in its postmortem bundle: the
   counters an operator would pull first for that component. *)
let implicated_series ~component ~rank:_ =
  match component with
  | "ciod_crash" | "ciod_restart" ->
      [ ("cio", "retransmits"); ("cio", "eio"); ("cio", "ship_requests");
        ("ras", "error") ]
  | "link" ->
      [ ("dma", "inject_stalls"); ("dma", "dropped"); ("torus", "links_down");
        ("ras", "error") ]
  | "parity" -> [ ("resilience", "parity_faults"); ("ras", "error") ]
  | _ -> [ ("ras", "error") ]

let attach_health ?window ?ring ?db_capacity ?recorder ?(rules = []) t =
  match t.health with
  | Some h -> h
  | None ->
      (* Sampling a disabled registry would roll up nothing. *)
      Bg_obs.Obs.set_enabled t.obs true;
      let ts = Bg_obs.Timeseries.create ?window ?capacity:ring t.obs in
      let db = Bg_obs.Rasdb.create ?capacity:db_capacity () in
      let svc =
        Bg_obs.Health.create ?recorder ~causal:t.causal ~ts ~db ~rules ()
      in
      (* Every RAS event — typed faults, kernel messages, health alerts —
         lands in the database; severity totals mirror into the metrics
         registry so rasdb, obs_tool and alert rules read one source of
         truth. *)
      on_ras t (fun ~rank ~severity ~message ->
          ignore
            (Bg_obs.Rasdb.add db ~cycle:(Bg_engine.Sim.now t.sim) ~rank
               ~severity:(rasdb_severity severity) ~message ());
          Bg_obs.Rasdb.publish_gauges db t.obs);
      Bg_obs.Health.set_emit svc (fun a ->
          let severity =
            match a.Bg_obs.Health.severity with
            | Bg_obs.Rasdb.Info -> Ras_info
            | Bg_obs.Rasdb.Warn -> Ras_warn
            | Bg_obs.Rasdb.Error -> Ras_error
          in
          ras_emit t ~rank:a.Bg_obs.Health.rank ~severity
            ~message:
              (Bg_obs.Health.Event.to_message (Bg_obs.Health.Event.of_alert a)));
      (* Restore in this repo is replay (see the snapshot section below):
         the snapshot reference a postmortem can carry is the replay
         cursor, not a file. *)
      Bg_obs.Health.set_snap_provider svc (fun () ->
          Printf.sprintf "replay:seed=%Ld,events=%d,clock=%d"
            (Bg_engine.Sim.seed t.sim)
            (Bg_engine.Sim.events_fired t.sim)
            (Bg_engine.Sim.now t.sim));
      Bg_obs.Health.set_implicate svc implicated_series;
      (* The sampling probe: refresh hardware-derived gauges (DMA FIFOs,
         torus links, UPC readings) so every window edge sees current
         levels. Reads state, writes only gauges — passive. *)
      Bg_obs.Timeseries.add_probe ts (fun ~now:_ ->
          for rank = 0 to nodes t - 1 do
            publish_net_gauges t ~rank;
            List.iter
              (fun (r : Bg_hw.Upc.reading) ->
                Bg_obs.Obs.set_gauge t.obs ~rank ~core:r.Bg_hw.Upc.core
                  ~subsystem:"upc"
                  ~name:(Bg_hw.Upc.event_name r.Bg_hw.Upc.event)
                  r.Bg_hw.Upc.count)
              (Bg_hw.Upc.snapshot (Bg_hw.Chip.upc t.chips.(rank)))
          done;
          Bg_obs.Obs.set_gauge t.obs ~subsystem:"torus" ~name:"links_down"
            (List.length (Bg_hw.Torus.broken_links t.torus));
          Bg_obs.Rasdb.publish_gauges db t.obs);
      Bg_obs.Timeseries.arm ts t.sim;
      let h = { h_ts = ts; h_db = db; h_svc = svc } in
      t.health <- Some h;
      h


(* --- whole-machine snapshot ------------------------------------------- *)

(* Region payloads come from the per-layer [capture] functions; this
   module decides the region split. Kernel layers above (cnk, fwk, cio,
   control) append their own regions via [extra]. *)
let capture t =
  let region layer fill =
    let b = Buffer.create 1024 in
    fill b;
    { Bg_snap.Snap.layer; layer_version = 1; payload = Buffer.to_bytes b }
  in
  [
    region "engine.sim" (fun b -> Bg_engine.Sim.capture t.sim b);
    region "hw.chips" (fun b ->
        Array.iter (fun c -> Bg_hw.Chip.capture c b) t.chips);
    region "hw.torus" (fun b -> Bg_hw.Torus.capture t.torus b);
    region "hw.collective" (fun b -> Bg_hw.Collective_net.capture t.collective b);
    region "hw.barrier" (fun b -> Bg_hw.Barrier_net.capture t.barrier b);
    region "hw.dma" (fun b -> Array.iter (fun e -> Bg_hw.Dma.capture e b) t.dma);
    region "obs.spans" (fun b -> Bg_obs.Obs.capture t.obs b);
    region "obs.acct" (fun b -> Bg_obs.Accounting.capture t.acct b);
    region "obs.causal" (fun b -> Bg_obs.Causal.capture t.causal b);
  ]

let snapshot t ~scenario ~knobs ?(extra = []) () =
  {
    Bg_snap.Snap.format_version = Bg_snap.Snap.format_version;
    scenario;
    knobs;
    seed = Bg_engine.Sim.seed t.sim;
    events = Bg_engine.Sim.events_fired t.sim;
    clock = Bg_engine.Sim.now t.sim;
    regions = capture t @ extra;
  }

let verify t ?(extra = []) (file : Bg_snap.Snap.file) =
  let live =
    {
      file with
      Bg_snap.Snap.seed = Bg_engine.Sim.seed t.sim;
      events = Bg_engine.Sim.events_fired t.sim;
      clock = Bg_engine.Sim.now t.sim;
      regions = capture t @ extra;
    }
  in
  match Bg_snap.Snap.diff file live with
  | Some m -> Error m
  | None ->
    if Bg_engine.Sim.seed t.sim <> file.Bg_snap.Snap.seed then
      Error { Bg_snap.Snap.m_layer = "engine.sim"; m_offset = 0 }
    else Ok ()

type restore_error =
  | Cursor_passed of { fired : int; wanted : int }
  | Queue_drained of { fired : int; wanted : int }
  | Restore_mismatch of Bg_snap.Snap.mismatch

let restore_error_to_string = function
  | Cursor_passed { fired; wanted } ->
    Printf.sprintf "machine already past the cursor (%d fired, snapshot at %d)" fired
      wanted
  | Queue_drained { fired; wanted } ->
    Printf.sprintf "event queue drained at %d events, snapshot cursor is %d" fired wanted
  | Restore_mismatch m ->
    Printf.sprintf "replayed state diverges from the snapshot in region %s at byte %d"
      m.Bg_snap.Snap.m_layer m.Bg_snap.Snap.m_offset

(* Restore is replay: the caller rebuilds the scenario (same seed, same
   knobs, same construction order) on this machine, then [restore] pumps
   the simulator to the snapshot's event cursor and byte-verifies every
   captured region. Event payloads are closures, so there is no way to
   install state directly; determinism makes replay exact, and the
   verification proves it. *)
let restore t ?(extra = fun () -> []) (file : Bg_snap.Snap.file) =
  let wanted = file.Bg_snap.Snap.events in
  let fired () = Bg_engine.Sim.events_fired t.sim in
  if fired () > wanted then Error (Cursor_passed { fired = fired (); wanted })
  else begin
    let rec pump () =
      if fired () >= wanted then Ok ()
      else if Bg_engine.Sim.step t.sim then pump ()
      else Error (Queue_drained { fired = fired (); wanted })
    in
    match pump () with
    | Error e -> Error e
    | Ok () -> (
      match verify t ~extra:(extra ()) file with
      | Ok () -> Ok ()
      | Error m -> Error (Restore_mismatch m))
  end
