type ras_severity = Ras_info | Ras_warn | Ras_error

type t = {
  instance : int;
  sim : Bg_engine.Sim.t;
  params : Bg_hw.Params.t;
  chips : Bg_hw.Chip.t array;
  torus : Bg_hw.Torus.t;
  collective : Bg_hw.Collective_net.t;
  barrier : Bg_hw.Barrier_net.t;
  obs : Bg_obs.Obs.t;
  acct : Bg_obs.Accounting.t;
  mutable ras_subscribers :
    (rank:int -> severity:ras_severity -> message:string -> unit) list;
}

let instance_counter = ref 0

let create ?(params = Bg_hw.Params.bgp) ?(seed = 1L) ?nodes_per_io_node ?obs ~dims () =
  incr instance_counter;
  let x, y, z = dims in
  let n = x * y * z in
  let sim = Bg_engine.Sim.create ~seed () in
  let nodes_per_io_node =
    match nodes_per_io_node with Some k -> k | None -> if n <= 64 then n else 64
  in
  let t =
    {
      instance = !instance_counter;
      sim;
      params;
      chips = Array.init n (fun id -> Bg_hw.Chip.create ~params ~id ());
      torus = Bg_hw.Torus.create sim ~params ~dims ();
      collective =
        Bg_hw.Collective_net.create sim ~params ~compute_nodes:n ~nodes_per_io_node ();
      barrier = Bg_hw.Barrier_net.create sim ~params ~participants:n ();
      obs = (match obs with Some o -> o | None -> Bg_obs.Obs.create ());
      acct = Bg_obs.Accounting.create ();
      ras_subscribers = [];
    }
  in
  (* Per-chip UPC feeds that need the rank-to-chip mapping: torus packet
     injections and barrier arrivals land on the injecting/arriving
     chip's counter unit. *)
  Bg_hw.Torus.set_inject_hook t.torus (fun ~src ->
      if src >= 0 && src < n then
        Bg_hw.Upc.record (Bg_hw.Chip.upc t.chips.(src)) Bg_hw.Upc.Torus_packet 1);
  Bg_hw.Barrier_net.set_arrive_hook t.barrier (fun ~rank ->
      if rank >= 0 && rank < n then
        Bg_hw.Upc.record (Bg_hw.Chip.upc t.chips.(rank)) Bg_hw.Upc.Barrier_wait 1);
  t

let obs t = t.obs
let acct t = t.acct

let nodes t = Array.length t.chips
let chip t i = t.chips.(i)
let sim t = t.sim

let on_ras t f = t.ras_subscribers <- f :: t.ras_subscribers

let ras_emit t ~rank ~severity ~message =
  List.iter (fun f -> f ~rank ~severity ~message) t.ras_subscribers

let ras_severity_to_string = function
  | Ras_info -> "INFO"
  | Ras_warn -> "WARN"
  | Ras_error -> "ERROR"

