(** Application-level checkpoint/restart through the function-shipped
    filesystem.

    The foil for §V.B's L1-parity recovery story: without in-place
    recovery, surviving transient faults means periodically writing state
    to the (offloaded) filesystem and, on failure, restoring and
    recomputing everything since the last checkpoint — "heavy I/O-bound
    checkpoint/restart cycles". These are real shipped writes: each save
    pays marshal + collective network + CIOD service for every byte.

    Checkpoints are self-describing: the file starts with the region list
    it was saved from, and {!restore} refuses to touch memory unless the
    caller passes the identical list. *)

val save : name:string -> regions:(int * int) list -> int
(** Write each (vaddr, len) range of the calling process's memory to
    /ckpt/<name>, returning the bytes shipped (header + data). Creates
    /ckpt as needed; an existing checkpoint of the same name is
    replaced. *)

type restore_error =
  | No_checkpoint  (** nothing saved under that name *)
  | Region_mismatch
      (** the saved region list differs from the one passed (or the file
          is not a checkpoint); memory was not modified *)

val restore :
  name:string -> regions:(int * int) list -> (unit, restore_error) result
(** Read the checkpoint back into memory. The region list must be exactly
    the one passed to {!save}; on any mismatch no memory is written and
    [Error Region_mismatch] is returned — never a partial restore. *)

val exists : name:string -> bool
val remove : name:string -> unit
(** Idempotent. *)
