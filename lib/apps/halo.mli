(** 1-D domain-decomposed halo exchange — the communication shape of the
    paper's "known to scale" application list (MILC, DNS3D, PLB, ...).

    Each rank owns a strip of cells; every iteration it exchanges boundary
    cells with both ring neighbors using non-blocking MPI, relaxes its
    interior, and (optionally) joins a residual allreduce. The computation
    is real: the final checksum must be independent of the number of
    ranks, which pins down the halo plumbing. *)

type report = {
  iterations : int;
  checksum : int;     (** rank 0's strip checksum after the run *)
  wall_cycles : int;  (** rank 0 wall time *)
  descriptors : int;
      (** DMA descriptors rank 0 injected (0 on an abstract fabric) *)
}

val program :
  fabric:Bg_msg.Dcmf.fabric ->
  cells_per_rank:int ->
  iterations:int ->
  compute_cycles_per_cell:int ->
  unit ->
  (unit -> unit) * (unit -> report)

val reference_checksum : ranks:int -> cells_per_rank:int -> iterations:int -> int
(** The same computation run on the host, for validation. *)
