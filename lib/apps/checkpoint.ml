let chunk = 16 * 1024 (* ship in 16 KiB pieces, as a real library would *)

let magic = 0x434b5031 (* "CKP1" *)

let path name = "/ckpt/" ^ name

let ensure_dir () =
  match Bg_rt.Libc.mkdir "/ckpt" with
  | () -> ()
  | exception Sysreq.Syscall_error Errno.EEXIST -> ()

(* Every checkpoint starts with a self-describing header so restore can
   refuse a region list that does not match the save — a partial restore
   into the wrong addresses is far worse than no restore at all.

     [magic][count][addr0][len0]...[addrN][lenN]     (8-byte LE ints)  *)
let header regions =
  let b = Bytes.create (8 * (2 + (2 * List.length regions))) in
  Bytes.set_int64_le b 0 (Int64.of_int magic);
  Bytes.set_int64_le b 8 (Int64.of_int (List.length regions));
  List.iteri
    (fun i (addr, len) ->
      Bytes.set_int64_le b (16 + (16 * i)) (Int64.of_int addr);
      Bytes.set_int64_le b (24 + (16 * i)) (Int64.of_int len))
    regions;
  b

let save ~name ~regions =
  ensure_dir ();
  let fd =
    Bg_rt.Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true; trunc = true }
      (path name)
  in
  let total = ref (Bg_rt.Libc.write fd (header regions)) in
  List.iter
    (fun (addr, len) ->
      let off = ref 0 in
      while !off < len do
        let n = min chunk (len - !off) in
        let data = Coro.load ~addr:(addr + !off) ~len:n in
        total := !total + Bg_rt.Libc.write fd data;
        off := !off + n
      done)
    regions;
  Bg_rt.Libc.close fd;
  !total

let exists ~name =
  match Bg_rt.Libc.stat (path name) with
  | _ -> true
  | exception Sysreq.Syscall_error Errno.ENOENT -> false

type restore_error = No_checkpoint | Region_mismatch

let word b i = Int64.to_int (Bytes.get_int64_le b (8 * i))

let read_header fd =
  let head = Bg_rt.Libc.read fd ~len:16 in
  if Bytes.length head < 16 || word head 0 <> magic then None
  else begin
    let count = word head 1 in
    let body = Bg_rt.Libc.read fd ~len:(16 * count) in
    if Bytes.length body < 16 * count then None
    else Some (List.init count (fun i -> (word body (2 * i), word body ((2 * i) + 1))))
  end

let restore ~name ~regions =
  match Bg_rt.Libc.openf ~flags:Sysreq.o_rdonly (path name) with
  | exception Sysreq.Syscall_error Errno.ENOENT -> Error No_checkpoint
  | fd -> (
    match read_header fd with
    | Some saved when saved = regions ->
      List.iter
        (fun (addr, len) ->
          let off = ref 0 in
          while !off < len do
            let n = min chunk (len - !off) in
            let data = Bg_rt.Libc.read fd ~len:n in
            if Bytes.length data > 0 then Coro.store ~addr:(addr + !off) data;
            off := !off + n
          done)
        regions;
      Bg_rt.Libc.close fd;
      Ok ()
    | _ ->
      (* wrong or missing region list: touch no memory *)
      Bg_rt.Libc.close fd;
      Error Region_mismatch)

let remove ~name =
  match Bg_rt.Libc.unlink (path name) with
  | () -> ()
  | exception Sysreq.Syscall_error Errno.ENOENT -> ()
