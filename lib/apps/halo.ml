type report = {
  iterations : int;
  checksum : int;
  wall_cycles : int;
  descriptors : int;
}

(* The stencil: cell <- (left + 2*cell + right) / 4, integer arithmetic so
   checksums are exact. Global domain is the concatenation of strips with
   periodic boundaries (a ring, matching the torus x-ring). *)

let step_strip ~left_ghost ~right_ghost strip =
  let n = Array.length strip in
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    let left = if i = 0 then left_ghost else strip.(i - 1) in
    let right = if i = n - 1 then right_ghost else strip.(i + 1) in
    out.(i) <- (left + (2 * strip.(i)) + right) / 4
  done;
  out

let init_strip ~rank ~cells_per_rank =
  Array.init cells_per_rank (fun i -> ((rank * cells_per_rank) + i) * 7 mod 101)

let checksum strip = Array.fold_left (fun acc v -> ((acc * 31) + v) mod 1_000_003) 0 strip

let encode_cell v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  b

let decode_cell b = Int64.to_int (Bytes.get_int64_le b 0)

let program ~fabric ~cells_per_rank ~iterations ~compute_cycles_per_cell () =
  let out = ref { iterations = 0; checksum = 0; wall_cycles = 0; descriptors = 0 } in
  let entry () =
    let rank = Bg_rt.Libc.rank () in
    let ctx = Bg_msg.Dcmf.attach fabric ~rank in
    let mpi = Bg_msg.Mpi.create ctx in
    let n = Bg_msg.Mpi.size mpi in
    let left = (rank - 1 + n) mod n and right = (rank + 1) mod n in
    let strip = ref (init_strip ~rank ~cells_per_rank) in
    let t0 = Coro.rdtsc () in
    for it = 1 to iterations do
      let tag_lr = 2 * it and tag_rl = (2 * it) + 1 in
      (* my rightmost cell travels right; my leftmost travels left *)
      let from_left =
        if n = 1 then (!strip).(cells_per_rank - 1)
        else
          decode_cell
            (Bg_msg.Mpi.sendrecv mpi ~dst:right ~send_tag:tag_lr
               (encode_cell (!strip).(cells_per_rank - 1))
               ~src:left ~recv_tag:tag_lr)
      in
      let from_right =
        if n = 1 then (!strip).(0)
        else
          decode_cell
            (Bg_msg.Mpi.sendrecv mpi ~dst:left ~send_tag:tag_rl
               (encode_cell (!strip).(0))
               ~src:right ~recv_tag:tag_rl)
      in
      Coro.consume (cells_per_rank * compute_cycles_per_cell);
      strip := step_strip ~left_ghost:from_left ~right_ghost:from_right !strip
    done;
    let t1 = Coro.rdtsc () in
    if rank = 0 then
      out :=
        {
          iterations;
          checksum = checksum !strip;
          wall_cycles = t1 - t0;
          descriptors = Bg_msg.Dcmf.injected_descriptors ctx;
        }
  in
  (entry, fun () -> !out)

let reference_checksum ~ranks ~cells_per_rank ~iterations =
  let strips = Array.init ranks (fun rank -> init_strip ~rank ~cells_per_rank) in
  let cur = ref strips in
  for _ = 1 to iterations do
    let prev = !cur in
    cur :=
      Array.mapi
        (fun r strip ->
          let left_rank = (r - 1 + ranks) mod ranks in
          let right_rank = (r + 1) mod ranks in
          let left_ghost = prev.(left_rank).(cells_per_rank - 1) in
          let right_ghost = prev.(right_rank).(0) in
          step_strip ~left_ghost ~right_ghost strip)
        prev
  done;
  checksum !cur.(0)
