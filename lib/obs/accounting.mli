(** Exhaustive per-(rank,core) cycle accounting.

    CNK's determinism means every core-cycle has exactly one cause, and
    the paper's noise analysis rests on being able to say which: the
    application ran, a syscall was in flight, an interrupt fired, a
    daemon stole the core, the core idled, or the kernel burned overhead
    (context switches, TLB work). This ledger makes that attribution a
    checked invariant rather than a hope: kernels report state
    transitions with the current simulation time, intervals are charged
    to exactly one state, and by construction

    {e attributed cycles = elapsed cycles, exactly, per core.}

    Like the rest of [Bg_obs] the ledger is passive — it never schedules
    events, draws randomness, or touches the architectural trace — and
    it is disabled (all calls no-ops) until {!set_enabled}. Collection
    on or off cannot change a simulation's digest. *)

type state =
  | App        (** user computation retiring on the core *)
  | Syscall    (** between trap and reply, incl. function-ship waits *)
  | Interrupt  (** timer ticks, IPIs *)
  | Daemon     (** cycles stolen by background daemons / injected noise *)
  | Idle       (** no runnable thread on the core *)
  | Kernel     (** kernel overhead: context switch, TLB install, faults *)

val all_states : state list
val state_name : state -> string

type t

val create : ?enabled:bool -> unit -> t
(** Default [enabled:false]: every call below is a no-op until enabled. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val reset : t -> unit
(** Drop all ledgers (accounting restarts at the next transition). *)

val switch : t -> rank:int -> core:int -> now:Bg_engine.Cycles.t -> state -> unit
(** The core entered [state] at [now]. Cycles since the previous
    transition are charged to the previous state. The first call for a
    (rank, core) opens its ledger at [now] with zero charged. [now] must
    not precede the previous transition (kernels pass [Sim.now], which
    is monotonic). *)

val attribute :
  t ->
  rank:int ->
  core:int ->
  now:Bg_engine.Cycles.t ->
  (state * int) list ->
  unit
(** Close the interval since the last transition at [now], charging each
    listed [(state, cycles)] portion to its state and the remainder to
    the core's current state. Used where one elapsed block has known
    sub-causes — e.g. a compute block that was stretched by a timer tick
    and a daemon: the steal goes to [Interrupt]/[Daemon], the rest to
    [App]. Raises [Invalid_argument] if the listed portions exceed the
    elapsed interval (over-attribution is a kernel bug, not a rounding
    error). If no ledger exists yet — accounting was enabled mid-
    interval — one is opened at [now] and the parts are dropped, since
    the interval predates accounting. *)

type entry = {
  rank : int;
  core : int;
  first_cycle : Bg_engine.Cycles.t;  (** ledger opened *)
  last_cycle : Bg_engine.Cycles.t;   (** last transition *)
  app : int;
  syscall : int;
  interrupt : int;
  daemon : int;
  idle : int;
  kernel : int;
}

val entries : t -> entry list
(** One entry per touched (rank, core), sorted, accounted up to each
    core's last transition. *)

val cycles : entry -> state -> int
val attributed : entry -> int
val elapsed : entry -> int
(** [last_cycle - first_cycle]. *)

val conserved_entry : entry -> bool
(** [attributed e = elapsed e] — the conservation property. *)

val conserved : t -> bool
(** Conservation holds on every ledger. *)

val totals : entry list -> (state * int) list
(** Per-state sums across entries, in {!all_states} order. *)

val digest : t -> Bg_engine.Fnv.t
(** FNV fold over all entries, for run-to-run determinism checks. *)

val pp_entry : Format.formatter -> entry -> unit

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state, little-endian, into [b]. Hashtable
    contents are sorted before writing, so the bytes are deterministic. *)
