(** Cycle-windowed time-series rollups over the {!Obs} metrics registry.

    The machine health service samples the registry once per fixed-width
    cycle window and stores, per metric key, a bounded ring of rollup
    points:

    - {b Delta} — counter increase over the window,
    - {b Level} — gauge value at the window edge,
    - {b P50}/{b P99} — timer percentiles over {e only the samples that
      landed in the window} (computed from histogram bin-count deltas,
      resolution one bin width).

    Sampling is driven by a simulator tick ({!arm}), but the tick thunk
    is {e passive}: it never writes the architectural {!Trace}, never
    draws randomness, never records spans and never mints causal ids —
    so same-seed simulation/span/causal digests are bit-identical with
    sampling on or off. Rings are bounded (oldest point overwritten,
    counted in {!dropped_points}); the stream of pushed points folds
    into an FNV digest so the series themselves are
    reproducibility-checkable. *)

type t

type kind = Delta | Level | P50 | P99

val kind_name : kind -> string
(** ["delta"], ["level"], ["p50"], ["p99"]. *)

type id = { key : Obs.key; kind : kind }
(** One series: a metric key plus the rollup kind derived from it. *)

type point = {
  window : int;  (** window index, 0-based from sampler creation *)
  at : Bg_engine.Cycles.t;  (** cycle stamp of the window edge *)
  v : float;
}

val create :
  ?window:Bg_engine.Cycles.t ->
  ?capacity:int ->
  ?max_series:int ->
  Obs.t ->
  t
(** Roll [obs] up every [window] cycles (default 100_000), retaining
    [capacity] points per series (default 64), with at most
    [max_series] distinct series (default 4096; excess series are
    dropped and counted). *)

val window_cycles : t -> Bg_engine.Cycles.t
val obs : t -> Obs.t

val add_probe : t -> (now:Bg_engine.Cycles.t -> unit) -> unit
(** Register a producer invoked at the start of every sample (before the
    registry is read) — e.g. publishing hardware gauges. Probes must be
    passive in the same sense as the sampler itself. *)

val on_window : t -> (window:int -> now:Bg_engine.Cycles.t -> unit) -> unit
(** Register a consumer invoked after each window's points are pushed —
    the health service evaluates its alert rules here. *)

val sample : t -> now:Bg_engine.Cycles.t -> unit
(** Take one sample immediately (probes, rollups, callbacks). Normally
    called by the armed tick; exposed for tests and tools. *)

val arm : t -> Bg_engine.Sim.t -> unit
(** Schedule the sampling tick every {!window_cycles} on [sim]. The tick
    re-arms itself only while the simulator has other pending events, so
    sampling never keeps a finished run alive. Arming twice is a no-op
    while a tick is outstanding. *)

(** {1 Queries} *)

val ids : t -> id list
(** Every live series, sorted by (subsystem, name, rank, core, kind). *)

val points : t -> id -> point list
(** Retained points, oldest first; [[]] for unknown series. *)

val latest : t -> id -> point option

val sum_last : t -> id -> int -> float
(** Sum of [v] over the last [n] retained points. *)

val series_matching : t -> subsystem:string -> name:string -> id list
(** All series over any (rank, core) scope for one metric name, sorted. *)

val windows_sampled : t -> int
val dropped_points : t -> int
(** Points overwritten by ring wraparound, summed over series. *)

val dropped_series : t -> int
(** Series discarded because [max_series] was reached. *)

val digest : t -> Bg_engine.Fnv.t
(** FNV over every point ever pushed, in push order. *)
