open Bg_engine

(* Passive, like the rest of the observability layer: no events, no RNG,
   no architectural trace. Ids come from folding a seed and a mint
   counter through FNV, so a graph is a pure function of the seed and
   the (deterministic) simulation — never of wall-clock time. *)

type ctx = int

let none = 0

type kind = Send_recv | Inject_complete | Request_reply | Parent_child

let kind_name = function
  | Send_recv -> "send->recv"
  | Inject_complete -> "inject->complete"
  | Request_reply -> "request->reply"
  | Parent_child -> "parent->child"

let kind_code = function
  | Send_recv -> 0
  | Inject_complete -> 1
  | Request_reply -> 2
  | Parent_child -> 3

type node = {
  id : ctx;
  cat : string;
  name : string;
  rank : int;
  core : int;
  at : Cycles.t;
}

type edge = { kind : kind; src : ctx; dst : ctx }

type t = {
  mutable enabled : bool;
  seed : int;
  max_nodes : int;
  by_id : (ctx, node) Hashtbl.t;
  mutable nodes_rev : node list;
  mutable edges_rev : edge list;
  mutable n_nodes : int;
  mutable n_edges : int;
  mutable minted : int;  (* feeds the id stream; never reused *)
  mutable dropped : int;
  tails : (int * int, ctx) Hashtbl.t;  (* (rank, core) -> last minted node *)
  mutable digest : Fnv.t;
}

let create ?(seed = 1) ?(max_nodes = 262_144) ?(enabled = false) () =
  if max_nodes <= 0 then invalid_arg "Causal.create: max_nodes";
  {
    enabled;
    seed;
    max_nodes;
    by_id = Hashtbl.create 256;
    nodes_rev = [];
    edges_rev = [];
    n_nodes = 0;
    n_edges = 0;
    minted = 0;
    dropped = 0;
    tails = Hashtbl.create 16;
    digest = Fnv.empty;
  }

let enabled t = t.enabled
let set_enabled t v = t.enabled <- v

let reset t =
  Hashtbl.reset t.by_id;
  Hashtbl.reset t.tails;
  t.nodes_rev <- [];
  t.edges_rev <- [];
  t.n_nodes <- 0;
  t.n_edges <- 0;
  t.minted <- 0;
  t.dropped <- 0;
  t.digest <- Fnv.empty

(* Deterministic non-zero id: FNV(seed, counter), masked positive. A
   collision with a live id (astronomically unlikely but cheap to rule
   out) just advances the counter. *)
let fresh_id t =
  let rec go () =
    t.minted <- t.minted + 1;
    let h = Fnv.add_int (Fnv.add_int Fnv.empty t.seed) t.minted in
    let id = Int64.to_int h land max_int in
    if id = none || Hashtbl.mem t.by_id id then go () else id
  in
  go ()

let record_edge t kind ~src ~dst =
  t.edges_rev <- { kind; src; dst } :: t.edges_rev;
  t.n_edges <- t.n_edges + 1;
  let d = Fnv.add_int t.digest (kind_code kind) in
  let d = Fnv.add_int d src in
  t.digest <- Fnv.add_int d dst

let link t kind ~src ~dst =
  if
    t.enabled && src <> none && dst <> none
    && Hashtbl.mem t.by_id src && Hashtbl.mem t.by_id dst
  then record_edge t kind ~src ~dst

let mint t ?(chain = true) ~cat ~name ~rank ~core ~now () =
  if not t.enabled then none
  else if t.n_nodes >= t.max_nodes then begin
    t.dropped <- t.dropped + 1;
    none
  end
  else begin
    let id = fresh_id t in
    let n = { id; cat; name; rank; core; at = now } in
    Hashtbl.add t.by_id id n;
    t.nodes_rev <- n :: t.nodes_rev;
    t.n_nodes <- t.n_nodes + 1;
    let d = Fnv.add_int t.digest id in
    let d = Fnv.add_string d cat in
    let d = Fnv.add_string d name in
    let d = Fnv.add_int d rank in
    let d = Fnv.add_int d core in
    t.digest <- Fnv.add_int d now;
    (if chain then
       match Hashtbl.find_opt t.tails (rank, core) with
       | Some prev -> record_edge t Parent_child ~src:prev ~dst:id
       | None -> ());
    Hashtbl.replace t.tails (rank, core) id;
    id
  end

let node_count t = t.n_nodes
let edge_count t = t.n_edges
let dropped t = t.dropped
let nodes t = List.rev t.nodes_rev
let edges t = List.rev t.edges_rev
let find t id = Hashtbl.find_opt t.by_id id

let last_matching t ~cat ~name =
  let rec go = function
    | [] -> None
    | n :: rest -> if n.cat = cat && n.name = name then Some n.id else go rest
  in
  go t.nodes_rev

let digest t = t.digest

let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  Buffer.add_uint8 b (if t.enabled then 1 else 0);
  w_i t.seed;
  w_i t.max_nodes;
  w_i t.n_nodes;
  w_i t.n_edges;
  w_i t.minted;
  w_i t.dropped;
  Buffer.add_int64_le b t.digest;
  (* nodes and edges are already folded into the digest; only the
     per-scope chaining tails add restart-relevant state beyond it *)
  let tails =
    Hashtbl.fold (fun k id acc -> (k, id) :: acc) t.tails [] |> List.sort compare
  in
  w_i (List.length tails);
  List.iter
    (fun ((rank, core), id) ->
      w_i rank;
      w_i core;
      w_i id)
    tails

(* --- critical path ----------------------------------------------------- *)

(* Follow the latest-arriving predecessor backward: at each node, the
   in-edge whose source has the greatest [at] is the dependency that
   actually gated progress (ties break toward the earliest-recorded
   edge, a deterministic order). *)
let critical_path t target =
  match Hashtbl.find_opt t.by_id target with
  | None -> []
  | Some tn ->
    let preds = Hashtbl.create 64 in
    (* edges_rev is newest first; iterate oldest-first so the earliest-
       recorded edge wins ties via the strict [>] below *)
    List.iter
      (fun e ->
        match Hashtbl.find_opt t.by_id e.src with
        | None -> ()
        | Some sn -> (
          match Hashtbl.find_opt preds e.dst with
          | Some (best : node) when sn.at <= best.at -> ()
          | _ -> Hashtbl.replace preds e.dst sn))
      (List.rev t.edges_rev)
    |> ignore;
    let visited = Hashtbl.create 64 in
    let rec walk acc (n : node) =
      if Hashtbl.mem visited n.id then acc
      else begin
        Hashtbl.add visited n.id ();
        match Hashtbl.find_opt preds n.id with
        | Some p when p.at <= n.at -> walk (n :: acc) p
        | _ -> n :: acc
      end
    in
    walk [] tn

(* --- path attribution -------------------------------------------------- *)

type attribution = {
  total : int;
  ledger : (Accounting.state * int) list;
  network : int;
  per_rank : (int * int) list;
  straggler : int;
  dominant : string;
}

(* Split [d] cycles across weighted states with largest-remainder
   rounding, so the parts sum to [d] exactly. Weights of zero total fall
   back entirely to App — an unledgered core's time is app time. *)
let split_by_weights d (weights : (Accounting.state * int) list) =
  let wtot = List.fold_left (fun a (_, w) -> a + w) 0 weights in
  if d = 0 then []
  else if wtot = 0 then [ (Accounting.App, d) ]
  else begin
    let raw =
      List.map
        (fun (st, w) ->
          let num = d * w in
          (st, num / wtot, num mod wtot))
        weights
    in
    let floor_sum = List.fold_left (fun a (_, q, _) -> a + q) 0 raw in
    let leftover = d - floor_sum in
    (* hand the leftover cycles to the largest remainders; ties resolve
       by state order, which is fixed *)
    let order =
      List.mapi (fun i (st, q, r) -> (i, st, q, r)) raw
      |> List.sort (fun (i, _, _, ra) (j, _, _, rb) ->
             if ra <> rb then compare rb ra else compare i j)
    in
    let bumped =
      List.mapi (fun pos (i, st, q, _) -> (i, st, if pos < leftover then q + 1 else q)) order
      |> List.sort (fun (i, _, _) (j, _, _) -> compare i j)
    in
    List.filter_map (fun (_, st, q) -> if q > 0 then Some (st, q) else None) bumped
  end

let attribute_path t acct path =
  ignore t;
  let entries = Accounting.entries acct in
  let weights_for ~rank ~core =
    let of_entry (e : Accounting.entry) =
      List.map (fun st -> (st, Accounting.cycles e st)) Accounting.all_states
    in
    match
      List.find_opt (fun (e : Accounting.entry) -> e.rank = rank && e.core = core) entries
    with
    | Some e -> of_entry e
    | None ->
      let mine = List.filter (fun (e : Accounting.entry) -> e.rank = rank) entries in
      if mine = [] then []
      else Accounting.totals mine
  in
  let ledger_acc = Hashtbl.create 8 in
  let rank_acc = Hashtbl.create 8 in
  let bump tbl k v =
    match Hashtbl.find_opt tbl k with
    | Some r -> r := !r + v
    | None -> Hashtbl.add tbl k (ref v)
  in
  let network = ref 0 in
  let rec segments = function
    | a :: (b :: _ as rest) ->
      let d = max 0 (b.at - a.at) in
      (if a.rank <> b.rank || a.rank < 0 || b.rank < 0 then network := !network + d
       else begin
         bump rank_acc a.rank d;
         List.iter (fun (st, c) -> bump ledger_acc st c)
           (split_by_weights d (weights_for ~rank:b.rank ~core:b.core))
       end);
      segments rest
    | _ -> ()
  in
  segments path;
  let total =
    match (path, List.rev path) with
    | first :: _, last :: _ -> max 0 (last.at - first.at)
    | _ -> 0
  in
  let ledger =
    List.map
      (fun st ->
        (st, match Hashtbl.find_opt ledger_acc st with Some r -> !r | None -> 0))
      Accounting.all_states
  in
  let per_rank =
    Hashtbl.fold (fun r c acc -> (r, !c) :: acc) rank_acc []
    |> List.sort compare
  in
  let straggler =
    List.fold_left
      (fun (br, bc) (r, c) -> if c > bc then (r, c) else (br, bc))
      (-1, 0) per_rank
    |> fst
  in
  let dominant =
    let buckets =
      ("network", !network)
      :: List.map (fun (st, c) -> (Accounting.state_name st, c)) ledger
    in
    List.fold_left
      (fun (bn, bc) (n, c) -> if c > bc then (n, c) else (bn, bc))
      ("none", 0) buckets
    |> fst
  in
  { total; ledger; network = !network; per_rank; straggler; dominant }

let pp_attribution ppf a =
  Format.fprintf ppf "path %d cycles: network %d" a.total a.network;
  List.iter
    (fun (st, c) ->
      if c > 0 then Format.fprintf ppf ", %s %d" (Accounting.state_name st) c)
    a.ledger;
  Format.fprintf ppf "; straggler rank %d, dominant %s" a.straggler a.dominant
