(** A queryable RAS event database — the service-node side of Blue
    Gene's Reliability/Availability/Serviceability stream.

    The paper's §VI lesson: CNK stays simple because every notable event
    streams off the compute nodes into a central database operators can
    {e query} — by severity, by component, by location, by time window —
    to find sick hardware before it kills jobs. This module is that
    database for the simulated machine: a bounded ring of typed records
    with O(1) severity counts and per-component / per-rank indexes,
    replacing ad-hoc scans of the raw message ring.

    It deliberately knows nothing about {!Machine} (the dependency runs
    the other way): producers feed it via {!add}, typically from a
    [Machine.on_ras] subscription wired in [lib/kabi]. *)

type severity = Info | Warn | Error

val severity_name : severity -> string
(** ["info"] / ["warn"] / ["error"]. *)

val severity_ord : severity -> int

type record = {
  seq : int;  (** global insertion index, 0-based, never reused *)
  cycle : Bg_engine.Cycles.t;
  rank : int;
  severity : severity;
  component : string;
      (** coarse event class, derived from the message when not given:
          the word after ["FAULT "], ["health"] for ["HEALTH "]
          messages, ["kernel"] otherwise *)
  message : string;
}

type t

val create : ?capacity:int -> unit -> t
(** Retain at most [capacity] records (default 4096); older records are
    evicted (counted in {!dropped}) but stay in the aggregate counts. *)

val capacity : t -> int

val component_of_message : string -> string
(** The default component classifier described at {!record.component}. *)

val add :
  t ->
  cycle:Bg_engine.Cycles.t ->
  rank:int ->
  severity:severity ->
  ?component:string ->
  message:string ->
  unit ->
  record
(** Insert and return the stored record. *)

val on_insert : t -> (record -> unit) -> unit
(** Subscribe to every insertion (after indexes are updated) — the
    health service's flight recorder hangs off this. *)

(** {1 Queries} *)

val count : t -> int
(** Records ever inserted (including evicted ones). *)

val retained : t -> int
val dropped : t -> int

val severity_count : t -> severity -> int
(** Aggregate over all records ever inserted; O(1). *)

val component_count : t -> string -> int
(** Aggregate per component; O(1). *)

val rank_count : t -> int -> int
(** Aggregate per rank; O(1). *)

val components : t -> string list
(** Every component ever seen, sorted. *)

val records :
  t ->
  ?severity:severity ->
  ?component:string ->
  ?rank:int ->
  ?since:Bg_engine.Cycles.t ->
  unit ->
  record list
(** Retained records matching every given filter, oldest first.
    [since] keeps records with [cycle >= since]. *)

val tail : t -> int -> record list
(** The last [n] retained records, oldest first. *)

val rate :
  t ->
  ?severity:severity ->
  ?component:string ->
  ?rank:int ->
  window:Bg_engine.Cycles.t ->
  now:Bg_engine.Cycles.t ->
  unit ->
  int
(** Matching retained records with [cycle] in [(now - window, now]] — a
    windowed rate query ("how many ciod retransmit faults in the last
    million cycles?"). Evicted records are gone; size [capacity]
    accordingly. *)

val publish_gauges : t -> Obs.t -> unit
(** Mirror the aggregate severity counts (plus total and dropped) into
    the metrics registry as node-scope gauges [ras.info] / [ras.warn] /
    [ras.error] / [ras.total] / [ras.dropped] — one source of truth for
    rasdb, obs_tool and alert rules. No-op while [obs] is disabled. *)

val digest : t -> Bg_engine.Fnv.t
(** FNV over every record ever inserted, in insertion order. *)

val pp_record : Format.formatter -> record -> unit
