(** Kernel-wide observability: per-rank metrics and cycle-stamped spans.

    Every machine carries one collector ({!Machine.t}'s [obs] field),
    disabled by default. Kernels, the I/O layer, the scheduler and the
    noise injectors report into it; exporters ({!Export}) turn the
    result into Chrome trace-event JSON and CSV.

    Two invariants make this safe to leave compiled into every hot path:

    - {b Passive.} The collector never schedules simulator events, never
      draws randomness, and never touches the architectural {!Trace} —
      so for a fixed seed the [Sim] trace digest is bit-identical with
      collection on or off.
    - {b Bounded.} Completed spans land in fixed-capacity per-(rank,core)
      rings (oldest overwritten, CNK-style: no allocation growth in
      steady state); metrics are O(distinct keys).

    The stream of completed spans folds into its own FNV digest
    ({!digest}), so observability output is itself reproducibility-
    checkable, independently of the architectural trace. *)

type t

val node_scope : int
(** Sentinel rank/core (-1) for machine- or node-level metrics. *)

val create : ?ring_capacity:int -> ?enabled:bool -> unit -> t
(** [ring_capacity] (default 1024) bounds each per-(rank,core) span ring.
    [enabled] defaults to [false]: all record calls are cheap no-ops. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit
val ring_capacity : t -> int

val reset : t -> unit
(** Drop all spans and metrics; keep enablement and capacity. *)

(** {1 Spans}

    A span is a cycle-stamped interval attributed to a (rank, core)
    scope and a category ("syscall", "cio", "tlb", "scheduler", ...).
    Callers pass [now] explicitly — the collector holds no clock. *)

type span = {
  cat : string;
  name : string;
  rank : int;
  core : int;
  start : Bg_engine.Cycles.t;
  finish : Bg_engine.Cycles.t;
  depth : int;  (** nesting depth within the scope at begin time *)
  seq : int;    (** global completion order across all scopes *)
}

type handle

val null_handle : handle
(** Returned when disabled; {!span_end} on it is a no-op. *)

val span_begin :
  t -> cat:string -> name:string -> rank:int -> core:int -> now:Bg_engine.Cycles.t -> handle

val span_end : t -> handle -> now:Bg_engine.Cycles.t -> unit
(** Completes the span and pushes it into its scope's ring. Ending an
    unknown (or already-ended) handle is a no-op. *)

val span_record :
  t ->
  cat:string ->
  name:string ->
  rank:int ->
  core:int ->
  start:Bg_engine.Cycles.t ->
  finish:Bg_engine.Cycles.t ->
  unit
(** One-shot complete span, for intervals whose end is known at record
    time (e.g. a TLB map swap of computed cost). *)

val abandon_open : t -> handle -> unit
(** Discard an open span without recording it (e.g. thread death). *)

val spans : t -> span list
(** All retained spans across scopes in a total, deterministic order:
    by start cycle, ties broken by (rank, core), then by completion
    sequence — never by hash-table iteration order. *)

val span_count : t -> int
(** Completed spans ever recorded, including overwritten ones. *)

val dropped_spans : t -> int
(** Spans overwritten by ring wraparound, summed over scopes. *)

val open_count : t -> int
(** Spans begun but not yet ended. *)

val digest : t -> Bg_engine.Fnv.t
(** FNV digest over every completed span, in completion order. *)

(** {1 Metrics}

    Counters, gauges and cycle-latency timers keyed by
    (subsystem, name, rank, core). [rank]/[core] default to
    {!node_scope}. All writes are no-ops while disabled. *)

val incr :
  t -> ?rank:int -> ?core:int -> subsystem:string -> name:string -> ?by:int -> unit -> unit

val set_gauge : t -> ?rank:int -> ?core:int -> subsystem:string -> name:string -> int -> unit

val observe_cycles :
  t ->
  ?rank:int ->
  ?core:int ->
  ?hi:float ->
  ?bins:int ->
  subsystem:string ->
  name:string ->
  int ->
  unit
(** Feed a latency sample (cycles) into the keyed timer: a
    {!Bg_engine.Stats.Online} accumulator plus a fixed-width
    {!Bg_engine.Stats.Histogram} ([lo]=0, [hi] default 2{^20} cycles,
    [bins] default 64; out-of-range samples clamp into the edge bins).
    Histogram shape is fixed by the first observation of a key. *)

val counter_value :
  t -> ?rank:int -> ?core:int -> subsystem:string -> name:string -> unit -> int
(** 0 when the counter was never touched. *)

val counter_total : t -> subsystem:string -> name:string -> int
(** Sum of a counter over all (rank, core) scopes. *)

val gauge_value :
  t -> ?rank:int -> ?core:int -> subsystem:string -> name:string -> unit -> int option

val timer_stats :
  t ->
  ?rank:int ->
  ?core:int ->
  subsystem:string ->
  name:string ->
  unit ->
  Bg_engine.Stats.Online.t option

val timer_histogram :
  t ->
  ?rank:int ->
  ?core:int ->
  subsystem:string ->
  name:string ->
  unit ->
  Bg_engine.Stats.Histogram.t option

(** {1 Snapshot} *)

type key = { subsystem : string; name : string; rank : int; core : int }

type value =
  | Counter of int
  | Gauge of int
  | Timer of {
      n : int;
      mean : float;
      min : float;
      max : float;
      sum : float;  (** sum of samples as observed (pre-clamp) *)
      p50 : float;
      p90 : float;
      p99 : float;
      p999 : float;
          (** histogram percentiles ({!Bg_engine.Stats.Histogram.percentile});
              resolution is one bin width *)
    }

type metric = { key : key; value : value }

val snapshot : t -> metric list
(** Every live metric, sorted by (subsystem, name, rank, core) — a
    deterministic order regardless of hash-table internals. *)

val pp_metric : Format.formatter -> metric -> unit

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state, little-endian, into [b]. Hashtable
    contents are sorted before writing, so the bytes are deterministic. *)
