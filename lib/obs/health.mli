(** The machine health service: declarative alert rules over the
    {!Timeseries} rollups, typed HEALTH RAS events, and a deterministic
    flight recorder producing self-contained postmortem JSON bundles.

    Rules are threshold/rate predicates over any series in the rollup
    store — DMA FIFO stall counts, ciod retransmit rates, dropped
    spans, scheduler queue wait percentiles — evaluated once per sample
    window, independently for every (rank, core) scope that carries the
    series. An alert is {e edge-triggered}: it fires when its predicate
    has held for [for_windows] consecutive windows, then stays quiet
    until the predicate clears and trips again.

    On every firing alert — and on any [Error]-severity fault landing in
    the {!Rasdb} — the flight recorder captures a bounded postmortem
    bundle: the last-N spans per (rank, core), the causal neighborhood
    of the trigger, the full retained window history of the implicated
    series, the rasdb tail, and a snapshot reference — rendered as one
    RFC 8259-valid JSON report. Everything in the bundle is derived
    from cycle-stamped deterministic state, so two same-seed runs
    produce byte-identical reports.

    Like the rest of [Bg_obs] this module is machine-agnostic: it emits
    alerts through an injected hook ({!set_emit}) and learns
    fault-to-series implication the same way ({!set_implicate}); the
    wiring lives in [Machine.attach_health]. *)

(** {1 Alert rules} *)

type agg = Delta | Value | Rate | P50 | P99
(** What to read from the series each window: the counter delta, the
    gauge level, the delta normalized to events per million cycles, or
    a windowed timer percentile. *)

type op = Gt | Ge | Lt | Le

type rule = {
  rule_name : string;  (** no whitespace; travels in RAS messages *)
  subsystem : string;
  metric : string;
  agg : agg;
  op : op;
  threshold : float;
  for_windows : int;  (** consecutive windows before firing; >= 1 *)
  severity : Rasdb.severity;
}

val agg_name : agg -> string
val op_name : op -> string

val rule_to_string : rule -> string
(** The same grammar {!parse_rule} accepts. *)

val parse_rule : string -> (rule, string) result
(** Grammar (whitespace-separated):
    [<name>: <subsystem>.<metric> <agg> <op> <float> [for <n>] [<severity>]]
    where [<agg>] is [delta|value|rate|p50|p99], [<op>] is [>|>=|<|<=],
    and [<severity>] is [info|warn|error] (default [warn]).
    Example: ["retransmit_storm: cio.retransmits delta >= 8 for 2 error"]. *)

(** {1 Alerts and typed HEALTH events} *)

type alert = {
  rule : string;
  severity : Rasdb.severity;
  series : string;  (** ["<subsystem>.<metric>:<agg>"] *)
  rank : int;
  core : int;
  window : int;
  at : Bg_engine.Cycles.t;
  value : float;
  threshold : float;
}

(** Typed wire format for health events on the RAS stream, mirroring
    [Bg_resilience.Fault_event]: ["HEALTH "]-prefixed messages that
    {!Event.of_message} round-trips and [Fault_event.of_message]
    ignores. *)
module Event : sig
  type t =
    | Alert of {
        rule : string;
        series : string;
        rank : int;
        core : int;
        window : int;
        value : float;
        threshold : float;
      }

  val to_message : t -> string
  val of_message : string -> t option
  (** [None] on anything that is not a well-formed HEALTH message;
      never raises. *)

  val of_alert : alert -> t
end

(** {1 The service} *)

type t

type recorder_config = {
  max_reports : int;  (** bundles retained per run (default 4) *)
  spans_per_scope : int;  (** last-N spans per (rank, core) (default 8) *)
  ras_tail : int;  (** rasdb records in the bundle (default 16) *)
  causal_last : int;  (** causal nodes in the neighborhood (default 24) *)
  series_windows : int;  (** window-history points per series (default 32) *)
}

val default_recorder : recorder_config

val create :
  ?recorder:recorder_config ->
  ?causal:Causal.t ->
  ts:Timeseries.t ->
  db:Rasdb.t ->
  rules:rule list ->
  unit ->
  t
(** Wires itself onto [ts] ({!Timeseries.on_window}: rule evaluation)
    and [db] ({!Rasdb.on_insert}: the flight recorder's fault trigger —
    any [Error] record whose component is not ["health"]). *)

val rules : t -> rule list
val ts : t -> Timeseries.t
val db : t -> Rasdb.t

val set_emit : t -> (alert -> unit) -> unit
(** Called once per firing alert, before the report is captured;
    [Machine.attach_health] routes this onto the machine RAS stream as
    a typed {!Event}. *)

val set_implicate : t -> (component:string -> rank:int -> (string * string) list) -> unit
(** Map a fault record to the (subsystem, metric) pairs whose window
    history belongs in its postmortem bundle. *)

val set_snap_provider : t -> (unit -> string) -> unit
(** Provide the snapshot reference string embedded in each bundle
    (e.g. a replay cursor ["replay:seed=7,events=123,clock=456"]). *)

val alerts : t -> alert list
(** Every alert fired, in order. *)

val alert_count : t -> int

val firing : t -> alert list
(** Alerts currently in the firing state (predicate has not cleared),
    one per (rule, scope), in rule-then-scope order. *)

(** {1 Flight recorder} *)

val reports : t -> (string * string) list
(** Captured postmortem bundles as [(label, json)], oldest first; at
    most [max_reports]. Labels are ["alert:<rule>"] or
    ["fault:<component>"]. *)

val captures_suppressed : t -> int
(** Triggers ignored because [max_reports] bundles already exist. *)

val digest : t -> Bg_engine.Fnv.t
(** FNV over the rollup stream, the rasdb stream and every fired alert
    — one line to compare two runs' whole health state. *)
