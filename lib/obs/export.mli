(** Exporters for the observability layer.

    Chrome trace-event (catapult) JSON — load the file in
    [chrome://tracing] or [https://ui.perfetto.dev] — plus flat CSVs for
    scripted analysis, and a dependency-free JSON syntax checker so the
    smoke tests can validate emitted traces in-process. *)

val chrome_trace : ?causal:Causal.t -> Obs.t -> string
(** The retained spans as a catapult JSON object: one ["ph":"X"]
    (complete) event per span with [ts]/[dur] in microseconds,
    [pid] = rank and [tid] = core; one ["ph":"C"] counter event per
    counter/gauge metric (end-of-run value, plotted as a track); plus
    process-name metadata rows. With [?causal], each edge of the graph
    additionally becomes a flow-event pair (["ph":"s"] at the source,
    ["ph":"f"]/["bp":"e"] at the destination, shared [id]) so Perfetto
    draws an arrow per causal edge; the flow [name]/[cat]/[id] strings
    go through {!json_escape} like every other string field. *)

val metrics_csv : Obs.t -> string
(** [subsystem,name,rank,core,kind,count,value,mean,min,max,sum,p50,p90,
    p99,p999] rows from {!Obs.snapshot}, deterministically ordered. *)

val spans_csv : Obs.t -> string
(** [cat,name,rank,core,start_cycle,finish_cycle,duration_cycles,depth]
    rows, oldest first. *)

val collapsed_stacks : Obs.t -> string
(** The retained spans in Brendan Gregg's folded-stack format, one
    ["frame;frame;... cycles"] line per unique stack, lines sorted.
    Stacks are rebuilt from span nesting depth per (rank, core) scope,
    rooted at a ["rankR/coreC"] frame; a frame's weight is its self
    time in cycles (duration minus direct children). Feed directly to
    [flamegraph.pl] or speedscope. *)

val to_file : path:string -> string -> unit

val validate_json : string -> (unit, string) result
(** Minimal RFC 8259 syntax check (values, nesting, escapes, numbers).
    [Ok ()] iff the whole string is one well-formed JSON value. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal (quotes not
    included). *)
