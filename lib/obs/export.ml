open Bg_engine

(* --- JSON helpers ------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* --- Chrome trace-event (catapult) format ------------------------------ *)

(* One "X" (complete) event per span: ts/dur in microseconds, pid = rank,
   tid = core. Process-name metadata rows label each rank so the catapult
   viewer shows "rank 3" instead of "pid 3"; the control system (rank -1)
   gets its own row. *)

let pid_of_rank rank = if rank = Obs.node_scope then 0xFFFF else rank

let rank_label rank =
  if rank = Obs.node_scope then "control system" else Printf.sprintf "rank %d" rank

let chrome_trace ?causal obs =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char b ','
  in
  let ranks = Hashtbl.create 8 in
  List.iter
    (fun (s : Obs.span) ->
      if not (Hashtbl.mem ranks s.rank) then Hashtbl.add ranks s.rank ();
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"depth\":%d}}"
           (json_escape s.name) (json_escape s.cat) (Cycles.to_us s.start)
           (Cycles.to_us (s.finish - s.start))
           (pid_of_rank s.rank) s.core s.depth))
    (Obs.spans obs);
  (* counter ("C") events: one sample per counter/gauge metric, so trace
     viewers plot end-of-run values alongside the spans *)
  List.iter
    (fun (m : Obs.metric) ->
      let k = m.Obs.key in
      let emit v =
        if not (Hashtbl.mem ranks k.Obs.rank) then Hashtbl.add ranks k.Obs.rank ();
        sep ();
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":0.000,\"pid\":%d,\"args\":{\"value\":%d}}"
             (json_escape
                (Printf.sprintf "%s.%s[c%d]" k.Obs.subsystem k.Obs.name k.Obs.core))
             (pid_of_rank k.Obs.rank) v)
      in
      match m.Obs.value with
      | Obs.Counter v | Obs.Gauge v -> emit v
      | Obs.Timer _ -> ())
    (Obs.snapshot obs);
  (* flow events ("s"/"f" pairs sharing an id): one arrow per causal
     edge, from the source node's (pid, tid, ts) to the destination's.
     Every string field — name, cat, and the id itself — goes through
     [json_escape]; edge kinds and categories are library-controlled
     today, but instrumentation names flow in from callers. *)
  (match causal with
  | None -> ()
  | Some g ->
    List.iteri
      (fun i (e : Causal.edge) ->
        match (Causal.find g e.Causal.src, Causal.find g e.Causal.dst) with
        | Some sn, Some dn ->
          let name = json_escape (Causal.kind_name e.Causal.kind) in
          let cat = json_escape "causal" in
          let id = json_escape (Printf.sprintf "0x%x" i) in
          let flow ph extra (n : Causal.node) =
            if not (Hashtbl.mem ranks n.Causal.rank) then
              Hashtbl.add ranks n.Causal.rank ();
            sep ();
            Buffer.add_string b
              (Printf.sprintf
                 "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",%s\"id\":\"%s\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d}"
                 name cat ph extra id
                 (Cycles.to_us n.Causal.at)
                 (pid_of_rank n.Causal.rank) n.Causal.core)
          in
          flow "s" "" sn;
          flow "f" "\"bp\":\"e\"," dn
        | _ -> ())
      (Causal.edges g));
  let labelled = Hashtbl.fold (fun r () acc -> r :: acc) ranks [] |> List.sort compare in
  List.iter
    (fun rank ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"%s\"}}"
           (pid_of_rank rank)
           (json_escape (rank_label rank))))
    labelled;
  Buffer.add_string b "]}";
  Buffer.contents b

(* --- CSV --------------------------------------------------------------- *)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let metrics_csv obs =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "subsystem,name,rank,core,kind,count,value,mean,min,max,sum,p50,p90,p99,p999\n";
  List.iter
    (fun (m : Obs.metric) ->
      let k = m.Obs.key in
      let row =
        match m.Obs.value with
        | Obs.Counter v ->
          Printf.sprintf "%s,%s,%d,%d,counter,,%d,,,,,,,," (csv_escape k.Obs.subsystem)
            (csv_escape k.Obs.name) k.Obs.rank k.Obs.core v
        | Obs.Gauge v ->
          Printf.sprintf "%s,%s,%d,%d,gauge,,%d,,,,,,,," (csv_escape k.Obs.subsystem)
            (csv_escape k.Obs.name) k.Obs.rank k.Obs.core v
        | Obs.Timer { n; mean; min; max; sum; p50; p90; p99; p999 } ->
          Printf.sprintf "%s,%s,%d,%d,timer,%d,,%.3f,%.0f,%.0f,%.0f,%.1f,%.1f,%.1f,%.1f"
            (csv_escape k.Obs.subsystem) (csv_escape k.Obs.name) k.Obs.rank
            k.Obs.core n mean min max sum p50 p90 p99 p999
      in
      Buffer.add_string b row;
      Buffer.add_char b '\n')
    (Obs.snapshot obs);
  Buffer.contents b

let spans_csv obs =
  let b = Buffer.create 1024 in
  Buffer.add_string b "cat,name,rank,core,start_cycle,finish_cycle,duration_cycles,depth\n";
  List.iter
    (fun (s : Obs.span) ->
      Buffer.add_string b
        (Printf.sprintf "%s,%s,%d,%d,%d,%d,%d,%d\n" (csv_escape s.Obs.cat)
           (csv_escape s.Obs.name) s.Obs.rank s.Obs.core s.Obs.start s.Obs.finish
           (s.Obs.finish - s.Obs.start) s.Obs.depth))
    (Obs.spans obs);
  Buffer.contents b

(* --- collapsed stacks (flamegraph folded format) ----------------------- *)

(* Rebuild call stacks from span nesting: within one (rank, core) scope,
   spans sorted by (start, depth) visit parents before their children, so
   a running stack of not-yet-finished spans is exactly the call stack.
   Each frame's weight is its self time — duration minus the duration of
   its direct children — which is what flamegraph.pl expects. *)

let span_frame (s : Obs.span) =
  if s.Obs.cat = "" then s.Obs.name else s.Obs.cat ^ ":" ^ s.Obs.name

let scope_frame rank core =
  if rank = Obs.node_scope then "control"
  else Printf.sprintf "rank%d/core%d" rank core

let collapsed_stacks obs =
  let by_scope = Hashtbl.create 8 in
  List.iter
    (fun (s : Obs.span) ->
      let k = (s.Obs.rank, s.Obs.core) in
      let prev = match Hashtbl.find_opt by_scope k with Some l -> l | None -> [] in
      Hashtbl.replace by_scope k (s :: prev))
    (Obs.spans obs);
  let scopes =
    Hashtbl.fold (fun k l acc -> (k, List.rev l) :: acc) by_scope []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let weights = Hashtbl.create 64 in
  let add_weight key w =
    if w > 0 then
      match Hashtbl.find_opt weights key with
      | Some r -> r := !r + w
      | None -> Hashtbl.add weights key (ref w)
  in
  List.iter
    (fun ((rank, core), ss) ->
      let ss =
        List.sort
          (fun (a : Obs.span) (b : Obs.span) ->
            let c = compare a.Obs.start b.Obs.start in
            if c <> 0 then c else compare a.Obs.depth b.Obs.depth)
          ss
      in
      let root = scope_frame rank core in
      (* stack of open frames, top first: (label, finish, self cycles) *)
      let stack = ref [] in
      let flush_top () =
        match !stack with
        | [] -> ()
        | (label, _, self) :: rest ->
          stack := rest;
          let ancestors = List.rev_map (fun (l, _, _) -> l) rest in
          add_weight (String.concat ";" ((root :: ancestors) @ [ label ])) (max 0 self)
      in
      List.iter
        (fun (s : Obs.span) ->
          let rec pop_finished () =
            match !stack with
            | (_, fin, _) :: _ when fin <= s.Obs.start ->
              flush_top ();
              pop_finished ()
            | _ -> ()
          in
          pop_finished ();
          let dur = s.Obs.finish - s.Obs.start in
          (match !stack with
          | (label, fin, self) :: rest ->
            stack := (label, fin, self - dur) :: rest
          | [] -> ());
          stack := (span_frame s, s.Obs.finish, dur) :: !stack)
        ss;
      while !stack <> [] do
        flush_top ()
      done)
    scopes;
  let b = Buffer.create 1024 in
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) weights []
  |> List.sort compare
  |> List.iter (fun (k, w) -> Buffer.add_string b (Printf.sprintf "%s %d\n" k w));
  Buffer.contents b

let to_file ~path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* --- minimal JSON syntax checker --------------------------------------- *)

(* Enough of RFC 8259 to assert that what we emit parses: values, nesting,
   strings with escapes, numbers. Used by tests and by obs_tool's smoke
   validation, so the repo needs no external JSON dependency. *)

exception Bad of string

let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit =
    String.iter (fun c -> expect c) lit
  in
  let string_ () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done
        | _ -> fail "bad escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          saw := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if not !saw then fail "expected digit"
    in
    digits ();
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_ ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "expected a value"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else begin
      let rec members () =
        skip_ws ();
        string_ ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          members ()
        | Some '}' -> advance ()
        | _ -> fail "expected ',' or '}'"
      in
      members ()
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else begin
      let rec elements () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          elements ()
        | Some ']' -> advance ()
        | _ -> fail "expected ',' or ']'"
      in
      elements ()
    end
  in
  try
    value ();
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at byte %d" !pos) else Ok ()
  with Bad msg -> Error msg
