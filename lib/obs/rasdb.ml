(* Bounded, indexed RAS event database. Indexes are aggregate (over
   every record ever inserted); the ring retains the most recent
   [capacity] records for record-level queries. *)

open Bg_engine

type severity = Info | Warn | Error

let severity_name = function Info -> "info" | Warn -> "warn" | Error -> "error"
let severity_ord = function Info -> 0 | Warn -> 1 | Error -> 2

type record = {
  seq : int;
  cycle : Cycles.t;
  rank : int;
  severity : severity;
  component : string;
  message : string;
}

type t = {
  cap : int;
  ring : record option array;
  mutable inserted : int;
  severity_counts : int array;  (* indexed by severity_ord *)
  component_counts : (string, int) Hashtbl.t;
  rank_counts : (int, int) Hashtbl.t;
  mutable subscribers : (record -> unit) list;  (* reversed reg. order *)
  mutable digest : Fnv.t;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Rasdb.create: capacity must be positive";
  {
    cap = capacity;
    ring = Array.make capacity None;
    inserted = 0;
    severity_counts = Array.make 3 0;
    component_counts = Hashtbl.create 16;
    rank_counts = Hashtbl.create 64;
    subscribers = [];
    digest = Fnv.empty;
  }

let capacity t = t.cap

(* "FAULT parity rank=3 core=1" -> "parity"; "HEALTH alert ..." ->
   "health"; anything else is an untyped kernel message. *)
let component_of_message msg =
  let word_after prefix =
    let rest = String.sub msg (String.length prefix)
        (String.length msg - String.length prefix) in
    match String.index_opt rest ' ' with
    | Some i -> String.sub rest 0 i
    | None -> rest
  in
  if String.length msg > 6 && String.sub msg 0 6 = "FAULT " then
    word_after "FAULT "
  else if String.length msg >= 7 && String.sub msg 0 7 = "HEALTH " then
    "health"
  else "kernel"

let bump tbl k =
  Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let add t ~cycle ~rank ~severity ?component ~message () =
  let component =
    match component with Some c -> c | None -> component_of_message message
  in
  let r = { seq = t.inserted; cycle; rank; severity; component; message } in
  t.ring.(t.inserted mod t.cap) <- Some r;
  t.inserted <- t.inserted + 1;
  t.severity_counts.(severity_ord severity) <-
    t.severity_counts.(severity_ord severity) + 1;
  bump t.component_counts component;
  bump t.rank_counts rank;
  let h = t.digest in
  let h = Fnv.add_int h r.seq in
  let h = Fnv.add_int h r.cycle in
  let h = Fnv.add_int h r.rank in
  let h = Fnv.add_int h (severity_ord severity) in
  let h = Fnv.add_string h r.component in
  let h = Fnv.add_string h r.message in
  t.digest <- h;
  List.iter (fun f -> f r) (List.rev t.subscribers);
  r

let on_insert t f = t.subscribers <- f :: t.subscribers

let count t = t.inserted
let retained t = min t.inserted t.cap
let dropped t = max 0 (t.inserted - t.cap)
let severity_count t s = t.severity_counts.(severity_ord s)
let component_count t c =
  Option.value ~default:0 (Hashtbl.find_opt t.component_counts c)
let rank_count t r = Option.value ~default:0 (Hashtbl.find_opt t.rank_counts r)

let components t =
  Hashtbl.fold (fun c _ acc -> c :: acc) t.component_counts []
  |> List.sort String.compare

(* Retained records oldest first. *)
let retained_list t =
  let n = retained t in
  let first = t.inserted - n in
  List.init n (fun i ->
      match t.ring.((first + i) mod t.cap) with
      | Some r -> r
      | None -> assert false)

let matches ?severity ?component ?rank ?since (r : record) =
  (match severity with Some s -> r.severity = s | None -> true)
  && (match component with Some c -> String.equal r.component c | None -> true)
  && (match rank with Some k -> r.rank = k | None -> true)
  && match since with Some c -> r.cycle >= c | None -> true

let records t ?severity ?component ?rank ?since () =
  List.filter (matches ?severity ?component ?rank ?since) (retained_list t)

let tail t n =
  let all = retained_list t in
  let len = List.length all in
  List.filteri (fun i _ -> i >= len - n) all

let rate t ?severity ?component ?rank ~window ~now () =
  List.length
    (List.filter
       (fun r ->
         r.cycle > now - window && r.cycle <= now
         && matches ?severity ?component ?rank r)
       (retained_list t))

let publish_gauges t obs =
  let set name v = Obs.set_gauge obs ~subsystem:"ras" ~name v in
  set "info" t.severity_counts.(0);
  set "warn" t.severity_counts.(1);
  set "error" t.severity_counts.(2);
  set "total" t.inserted;
  set "dropped" (dropped t)

let digest t = t.digest

let pp_record fmt r =
  Format.fprintf fmt "[%d @%d r%d %s/%s] %s" r.seq r.cycle r.rank
    (severity_name r.severity) r.component r.message
