open Bg_engine

(* The whole collector is passive: it never schedules events, never draws
   from an RNG stream, and never writes to the architectural trace, so a
   run's Sim digest is bit-identical whether collection is on or off. Its
   own stream of completed spans carries a parallel FNV digest, so the
   observability layer itself is determinism-checkable. *)

(* --- scopes and keys ------------------------------------------------- *)

let node_scope = -1

type key = { subsystem : string; name : string; rank : int; core : int }

let compare_key a b =
  let c = compare a.subsystem b.subsystem in
  if c <> 0 then c
  else
    let c = compare a.name b.name in
    if c <> 0 then c
    else
      let c = compare a.rank b.rank in
      if c <> 0 then c else compare a.core b.core

(* --- spans ------------------------------------------------------------ *)

type span = {
  cat : string;
  name : string;
  rank : int;
  core : int;
  start : Cycles.t;
  finish : Cycles.t;
  depth : int;
  seq : int;  (* global completion order *)
}

type handle = int

let null_handle = -1

type open_span = {
  o_cat : string;
  o_name : string;
  o_rank : int;
  o_core : int;
  o_start : Cycles.t;
  o_depth : int;
}

(* CNK-style fixed-memory record store: parallel arrays sized once at
   creation, overwritten in place when full. Nothing here grows during
   steady state; only the (bounded) per-scope ring table is populated
   lazily, once per (rank, core) ever seen. *)
type ring = {
  cap : int;
  cats : string array;
  names : string array;
  starts : int array;
  finishes : int array;
  depths : int array;
  seqs : int array;  (* global completion sequence number per slot *)
  mutable written : int;  (* total spans ever pushed through this ring *)
}

type timer = { online : Stats.Online.t; hist : Stats.Histogram.t }

type t = {
  mutable enabled : bool;
  ring_capacity : int;
  rings : (int * int, ring) Hashtbl.t;
  opens : (handle, open_span) Hashtbl.t;
  depths : (int * int, int ref) Hashtbl.t;
  mutable next_handle : int;
  mutable digest : Fnv.t;
  mutable completed : int;
  counters : (key, int ref) Hashtbl.t;
  gauges : (key, int ref) Hashtbl.t;
  timers : (key, timer) Hashtbl.t;
}

let create ?(ring_capacity = 1024) ?(enabled = false) () =
  if ring_capacity <= 0 then invalid_arg "Obs.create: ring_capacity";
  {
    enabled;
    ring_capacity;
    rings = Hashtbl.create 16;
    opens = Hashtbl.create 32;
    depths = Hashtbl.create 16;
    next_handle = 0;
    digest = Fnv.empty;
    completed = 0;
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    timers = Hashtbl.create 32;
  }

let enabled t = t.enabled
let set_enabled t v = t.enabled <- v
let ring_capacity t = t.ring_capacity

let ring_for t scope =
  match Hashtbl.find_opt t.rings scope with
  | Some r -> r
  | None ->
    let cap = t.ring_capacity in
    let r =
      {
        cap;
        cats = Array.make cap "";
        names = Array.make cap "";
        starts = Array.make cap 0;
        finishes = Array.make cap 0;
        depths = Array.make cap 0;
        seqs = Array.make cap 0;
        written = 0;
      }
    in
    Hashtbl.add t.rings scope r;
    r

let depth_for t scope =
  match Hashtbl.find_opt t.depths scope with
  | Some d -> d
  | None ->
    let d = ref 0 in
    Hashtbl.add t.depths scope d;
    d

let push_span t ~cat ~name ~rank ~core ~start ~finish ~depth =
  let ring = ring_for t (rank, core) in
  let i = ring.written mod ring.cap in
  (* Ring wraparound overwrites the oldest span. That loss used to be
     visible only through arithmetic on [written]; count it as a
     first-class per-scope metric so exports and tools can warn. *)
  if ring.written >= ring.cap then begin
    let key = { subsystem = "obs"; name = "dropped_spans"; rank; core } in
    match Hashtbl.find_opt t.counters key with
    | Some r -> Stdlib.incr r
    | None -> Hashtbl.add t.counters key (ref 1)
  end;
  ring.cats.(i) <- cat;
  ring.names.(i) <- name;
  ring.starts.(i) <- start;
  ring.finishes.(i) <- finish;
  ring.depths.(i) <- depth;
  ring.seqs.(i) <- t.completed;
  ring.written <- ring.written + 1;
  t.completed <- t.completed + 1;
  let d = Fnv.add_string t.digest cat in
  let d = Fnv.add_string d name in
  let d = Fnv.add_int d rank in
  let d = Fnv.add_int d core in
  let d = Fnv.add_int d start in
  t.digest <- Fnv.add_int d finish

let span_begin t ~cat ~name ~rank ~core ~now =
  if not t.enabled then null_handle
  else begin
    let d = depth_for t (rank, core) in
    let h = t.next_handle in
    t.next_handle <- h + 1;
    Hashtbl.add t.opens h
      { o_cat = cat; o_name = name; o_rank = rank; o_core = core; o_start = now; o_depth = !d };
    incr d;
    h
  end

let span_end t h ~now =
  if t.enabled && h <> null_handle then
    match Hashtbl.find_opt t.opens h with
    | None -> ()
    | Some o ->
      Hashtbl.remove t.opens h;
      let d = depth_for t (o.o_rank, o.o_core) in
      if !d > 0 then decr d;
      push_span t ~cat:o.o_cat ~name:o.o_name ~rank:o.o_rank ~core:o.o_core
        ~start:o.o_start ~finish:now ~depth:o.o_depth

let span_record t ~cat ~name ~rank ~core ~start ~finish =
  if t.enabled then begin
    let d = depth_for t (rank, core) in
    push_span t ~cat ~name ~rank ~core ~start ~finish ~depth:!d
  end

let open_count t = Hashtbl.length t.opens

let abandon_open t h =
  if h <> null_handle then
    match Hashtbl.find_opt t.opens h with
    | None -> ()
    | Some o ->
      Hashtbl.remove t.opens h;
      let d = depth_for t (o.o_rank, o.o_core) in
      if !d > 0 then decr d

let span_count t = t.completed

let dropped_spans t =
  Hashtbl.fold (fun _ r acc -> acc + max 0 (r.written - r.cap)) t.rings 0

let iter_scope_spans r f =
  let retained = min r.written r.cap in
  let first = r.written - retained in
  for j = first to r.written - 1 do
    let i = j mod r.cap in
    f
      {
        cat = r.cats.(i);
        name = r.names.(i);
        rank = 0;  (* overwritten below by caller-side scope *)
        core = 0;
        start = r.starts.(i);
        finish = r.finishes.(i);
        depth = r.depths.(i);
        seq = r.seqs.(i);
      }
  done

let spans t =
  let scopes =
    Hashtbl.fold (fun scope r acc -> (scope, r) :: acc) t.rings []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let out = ref [] in
  List.iter
    (fun ((rank, core), r) ->
      iter_scope_spans r (fun s -> out := { s with rank; core } :: !out))
    scopes;
  (* total order: start cycle, then scope, then global completion
     sequence — equal-start spans sort deterministically no matter what
     order the scope table iterates in *)
  List.sort
    (fun a b ->
      let c = compare a.start b.start in
      if c <> 0 then c
      else
        let c = compare (a.rank, a.core) (b.rank, b.core) in
        if c <> 0 then c else compare a.seq b.seq)
    (List.rev !out)

let digest t = t.digest

(* --- metrics ----------------------------------------------------------- *)

let incr t ?(rank = node_scope) ?(core = node_scope) ~subsystem ~name ?(by = 1) () =
  if t.enabled then begin
    let key = { subsystem; name; rank; core } in
    match Hashtbl.find_opt t.counters key with
    | Some r -> r := !r + by
    | None -> Hashtbl.add t.counters key (ref by)
  end

let set_gauge t ?(rank = node_scope) ?(core = node_scope) ~subsystem ~name v =
  if t.enabled then begin
    let key = { subsystem; name; rank; core } in
    match Hashtbl.find_opt t.gauges key with
    | Some r -> r := v
    | None -> Hashtbl.add t.gauges key (ref v)
  end

let default_hist_hi = 1_048_576.0
let default_hist_bins = 64

let observe_cycles t ?(rank = node_scope) ?(core = node_scope) ?(hi = default_hist_hi)
    ?(bins = default_hist_bins) ~subsystem ~name cycles =
  if t.enabled then begin
    let key = { subsystem; name; rank; core } in
    let timer =
      match Hashtbl.find_opt t.timers key with
      | Some tm -> tm
      | None ->
        let tm =
          { online = Stats.Online.create (); hist = Stats.Histogram.create ~lo:0.0 ~hi ~bins }
        in
        Hashtbl.add t.timers key tm;
        tm
    in
    let x = float_of_int cycles in
    Stats.Online.add timer.online x;
    Stats.Histogram.add timer.hist x
  end

let counter_value t ?(rank = node_scope) ?(core = node_scope) ~subsystem ~name () =
  match Hashtbl.find_opt t.counters { subsystem; name; rank; core } with
  | Some r -> !r
  | None -> 0

let counter_total t ~subsystem ~name =
  Hashtbl.fold
    (fun k r acc -> if k.subsystem = subsystem && k.name = name then acc + !r else acc)
    t.counters 0

let gauge_value t ?(rank = node_scope) ?(core = node_scope) ~subsystem ~name () =
  match Hashtbl.find_opt t.gauges { subsystem; name; rank; core } with
  | Some r -> Some !r
  | None -> None

let timer_stats t ?(rank = node_scope) ?(core = node_scope) ~subsystem ~name () =
  Option.map (fun tm -> tm.online) (Hashtbl.find_opt t.timers { subsystem; name; rank; core })

let timer_histogram t ?(rank = node_scope) ?(core = node_scope) ~subsystem ~name () =
  Option.map (fun tm -> tm.hist) (Hashtbl.find_opt t.timers { subsystem; name; rank; core })

(* --- snapshot ----------------------------------------------------------- *)

type value =
  | Counter of int
  | Gauge of int
  | Timer of {
      n : int;
      mean : float;
      min : float;
      max : float;
      sum : float;
      p50 : float;
      p90 : float;
      p99 : float;
      p999 : float;
    }

type metric = { key : key; value : value }

let snapshot t =
  let out = ref [] in
  Hashtbl.iter (fun key r -> out := { key; value = Counter !r } :: !out) t.counters;
  Hashtbl.iter (fun key r -> out := { key; value = Gauge !r } :: !out) t.gauges;
  Hashtbl.iter
    (fun key tm ->
      let o = tm.online in
      let h = tm.hist in
      (* bin interpolation can land outside the observed extremes when a
         distribution is much tighter than the bin width; clamp so the
         reported quantiles always lie within the data *)
      let pct p =
        Float.max (Stats.Online.min o)
          (Float.min (Stats.Online.max o) (Stats.Histogram.percentile h p))
      in
      out :=
        {
          key;
          value =
            Timer
              {
                n = Stats.Online.n o;
                mean = Stats.Online.mean o;
                min = Stats.Online.min o;
                max = Stats.Online.max o;
                sum = Stats.Histogram.sum h;
                p50 = pct 0.50;
                p90 = pct 0.90;
                p99 = pct 0.99;
                p999 = pct 0.999;
              };
        }
        :: !out)
    t.timers;
  List.sort (fun a b -> compare_key a.key b.key) !out

let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  let w_i64 = Buffer.add_int64_le b in
  let w_f v = w_i64 (Int64.bits_of_float v) in
  let w_s s =
    w_i (String.length s);
    Buffer.add_string b s
  in
  Buffer.add_uint8 b (if t.enabled then 1 else 0);
  w_i t.ring_capacity;
  w_i t.next_handle;
  w_i t.completed;
  w_i64 t.digest;
  let sp = spans t in
  w_i (List.length sp);
  List.iter
    (fun s ->
      w_s s.cat;
      w_s s.name;
      w_i s.rank;
      w_i s.core;
      w_i s.start;
      w_i s.finish;
      w_i s.depth;
      w_i s.seq)
    sp;
  let opens =
    Hashtbl.fold (fun h o acc -> (h, o) :: acc) t.opens [] |> List.sort compare
  in
  w_i (List.length opens);
  List.iter
    (fun (h, o) ->
      w_i h;
      w_s o.o_cat;
      w_s o.o_name;
      w_i o.o_rank;
      w_i o.o_core;
      w_i o.o_start;
      w_i o.o_depth)
    opens;
  let depths =
    Hashtbl.fold (fun k d acc -> (k, !d) :: acc) t.depths [] |> List.sort compare
  in
  w_i (List.length depths);
  List.iter
    (fun ((rank, core), d) ->
      w_i rank;
      w_i core;
      w_i d)
    depths;
  let ms = snapshot t in
  w_i (List.length ms);
  List.iter
    (fun m ->
      w_s m.key.subsystem;
      w_s m.key.name;
      w_i m.key.rank;
      w_i m.key.core;
      match m.value with
      | Counter v ->
        Buffer.add_uint8 b 0;
        w_i v
      | Gauge v ->
        Buffer.add_uint8 b 1;
        w_i v
      | Timer x ->
        Buffer.add_uint8 b 2;
        w_i x.n;
        w_f x.mean;
        w_f x.min;
        w_f x.max;
        w_f x.sum;
        w_f x.p50;
        w_f x.p90;
        w_f x.p99;
        w_f x.p999)
    ms

let reset t =
  Hashtbl.reset t.rings;
  Hashtbl.reset t.opens;
  Hashtbl.reset t.depths;
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.timers;
  t.next_handle <- 0;
  t.digest <- Fnv.empty;
  t.completed <- 0

let pp_metric ppf m =
  let scope =
    if m.key.rank = node_scope && m.key.core = node_scope then ""
    else Printf.sprintf " [r%d c%d]" m.key.rank m.key.core
  in
  match m.value with
  | Counter v -> Format.fprintf ppf "%s.%s%s = %d" m.key.subsystem m.key.name scope v
  | Gauge v -> Format.fprintf ppf "%s.%s%s = %d (gauge)" m.key.subsystem m.key.name scope v
  | Timer { n; mean; min; max; sum = _; p50; p90 = _; p99; p999 } ->
    Format.fprintf ppf
      "%s.%s%s: n=%d mean=%.1f min=%.0f max=%.0f p50=%.0f p99=%.0f p999=%.0f"
      m.key.subsystem m.key.name scope n mean min max p50 p99 p999
