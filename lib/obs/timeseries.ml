(* Cycle-windowed rollups over the Obs metrics registry. See the .mli
   for the passivity contract: the sampling tick reads the registry and
   writes only into this module's own rings, so same-seed architectural
   /span/causal digests are unchanged by sampling. *)

open Bg_engine

type kind = Delta | Level | P50 | P99

let kind_name = function
  | Delta -> "delta"
  | Level -> "level"
  | P50 -> "p50"
  | P99 -> "p99"

let kind_ord = function Delta -> 0 | Level -> 1 | P50 -> 2 | P99 -> 3

type id = { key : Obs.key; kind : kind }

type point = { window : int; at : Cycles.t; v : float }

type series = {
  windows : int array;
  ats : int array;
  values : float array;
  mutable written : int;  (** points ever pushed into this series *)
}

type t = {
  obs : Obs.t;
  window : Cycles.t;
  capacity : int;
  max_series : int;
  series : (id, series) Hashtbl.t;
  counter_prev : (Obs.key, int) Hashtbl.t;
  timer_prev : (Obs.key, int array) Hashtbl.t;
  mutable probes : (now:Cycles.t -> unit) list;  (* reversed reg. order *)
  mutable consumers : (window:int -> now:Cycles.t -> unit) list;
  mutable windows_sampled : int;
  mutable dropped_points : int;
  mutable dropped_series : int;
  mutable digest : Fnv.t;
  mutable armed : bool;
}

let create ?(window = 100_000) ?(capacity = 64) ?(max_series = 4096) obs =
  if window <= 0 then invalid_arg "Timeseries.create: window must be positive";
  if capacity <= 0 then invalid_arg "Timeseries.create: capacity must be positive";
  {
    obs;
    window;
    capacity;
    max_series;
    series = Hashtbl.create 256;
    counter_prev = Hashtbl.create 256;
    timer_prev = Hashtbl.create 64;
    probes = [];
    consumers = [];
    windows_sampled = 0;
    dropped_points = 0;
    dropped_series = 0;
    digest = Fnv.empty;
    armed = false;
  }

let window_cycles t = t.window
let obs t = t.obs
let add_probe t f = t.probes <- f :: t.probes
let on_window t f = t.consumers <- f :: t.consumers
let windows_sampled t = t.windows_sampled
let dropped_points t = t.dropped_points
let dropped_series t = t.dropped_series
let digest t = t.digest

let find_or_create t id =
  match Hashtbl.find_opt t.series id with
  | Some s -> Some s
  | None ->
      if Hashtbl.length t.series >= t.max_series then begin
        t.dropped_series <- t.dropped_series + 1;
        None
      end
      else begin
        let s =
          {
            windows = Array.make t.capacity 0;
            ats = Array.make t.capacity 0;
            values = Array.make t.capacity 0.;
            written = 0;
          }
        in
        Hashtbl.replace t.series id s;
        Some s
      end

let fold_point t id ~window ~at v =
  let h = t.digest in
  let h = Fnv.add_string h id.key.Obs.subsystem in
  let h = Fnv.add_string h id.key.Obs.name in
  let h = Fnv.add_int h id.key.Obs.rank in
  let h = Fnv.add_int h id.key.Obs.core in
  let h = Fnv.add_int h (kind_ord id.kind) in
  let h = Fnv.add_int h window in
  let h = Fnv.add_int h at in
  let h = Fnv.add_int64 h (Int64.bits_of_float v) in
  t.digest <- h

let push t id ~window ~at v =
  match find_or_create t id with
  | None -> ()
  | Some s ->
      let slot = s.written mod t.capacity in
      if s.written >= t.capacity then t.dropped_points <- t.dropped_points + 1;
      s.windows.(slot) <- window;
      s.ats.(slot) <- at;
      s.values.(slot) <- v;
      s.written <- s.written + 1;
      fold_point t id ~window ~at v

(* Percentile over a window's worth of histogram bin-count deltas,
   mirroring Stats.Histogram.percentile's smallest-value-with-coverage
   semantics (linear interpolation inside the answering bin). *)
let delta_percentile ~lo ~width counts p =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.
  else begin
    let target = p *. float_of_int total in
    let bins = Array.length counts in
    let rec go i acc =
      if i >= bins then lo +. (width *. float_of_int bins)
      else
        let acc' = acc + counts.(i) in
        if counts.(i) > 0 && float_of_int acc' >= target then
          let frac = (target -. float_of_int acc) /. float_of_int counts.(i) in
          lo +. (width *. (float_of_int i +. frac))
        else go (i + 1) acc'
    in
    go 0 0
  end

let sample t ~now =
  List.iter (fun f -> f ~now) (List.rev t.probes);
  let window = t.windows_sampled in
  List.iter
    (fun (m : Obs.metric) ->
      let key = m.Obs.key in
      match m.Obs.value with
      | Obs.Counter c ->
          let prev =
            Option.value ~default:0 (Hashtbl.find_opt t.counter_prev key)
          in
          Hashtbl.replace t.counter_prev key c;
          push t { key; kind = Delta } ~window ~at:now (float_of_int (c - prev))
      | Obs.Gauge g ->
          push t { key; kind = Level } ~window ~at:now (float_of_int g)
      | Obs.Timer _ -> (
          match
            Obs.timer_histogram t.obs ~rank:key.Obs.rank ~core:key.Obs.core
              ~subsystem:key.Obs.subsystem ~name:key.Obs.name ()
          with
          | None -> ()
          | Some h ->
              let counts = Stats.Histogram.counts h in
              let bins = Array.length counts in
              let prev =
                match Hashtbl.find_opt t.timer_prev key with
                | Some p when Array.length p = bins -> p
                | _ -> Array.make bins 0
              in
              let delta = Array.init bins (fun i -> counts.(i) - prev.(i)) in
              Hashtbl.replace t.timer_prev key (Array.copy counts);
              let lo = Stats.Histogram.bin_lo h 0 in
              let width =
                if bins >= 2 then Stats.Histogram.bin_lo h 1 -. lo else 1.
              in
              let pc p = delta_percentile ~lo ~width delta p in
              push t { key; kind = P50 } ~window ~at:now (pc 0.5);
              push t { key; kind = P99 } ~window ~at:now (pc 0.99)))
    (Obs.snapshot t.obs);
  t.windows_sampled <- t.windows_sampled + 1;
  List.iter (fun f -> f ~window ~now) (List.rev t.consumers)

let rec tick t sim () =
  t.armed <- false;
  sample t ~now:(Sim.now sim);
  (* Re-arm only while the run is still live: a finished simulation must
     not be kept ticking forever by its own health sampler. *)
  if Sim.pending sim > 0 then arm t sim

and arm t sim =
  if not t.armed then begin
    t.armed <- true;
    ignore (Sim.schedule_in sim t.window (tick t sim))
  end

(* ---------------------------------------------------------------- *)
(* Queries *)

let compare_id a b =
  let tup (k : Obs.key) = (k.Obs.subsystem, k.Obs.name, k.Obs.rank, k.Obs.core) in
  let c = compare (tup a.key) (tup b.key) in
  if c <> 0 then c else compare (kind_ord a.kind) (kind_ord b.kind)

let ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.series []
  |> List.sort compare_id

let points t id =
  match Hashtbl.find_opt t.series id with
  | None -> []
  | Some s ->
      let n = min s.written t.capacity in
      let first = s.written - n in
      List.init n (fun i ->
          let slot = (first + i) mod t.capacity in
          { window = s.windows.(slot); at = s.ats.(slot); v = s.values.(slot) })

let latest t id =
  match points t id with [] -> None | ps -> Some (List.nth ps (List.length ps - 1))

let sum_last t id n =
  let ps = points t id in
  let len = List.length ps in
  List.fold_left
    (fun (i, acc) p -> (i + 1, if i >= len - n then acc +. p.v else acc))
    (0, 0.) ps
  |> snd

let series_matching t ~subsystem ~name =
  Hashtbl.fold
    (fun id _ acc ->
      if String.equal id.key.Obs.subsystem subsystem
         && String.equal id.key.Obs.name name
      then id :: acc
      else acc)
    t.series []
  |> List.sort compare_id
