(** Causal tracing: a deterministic cross-layer event graph.

    Spans ({!Obs}) say {e what} ran where; this module says {e why}: it
    records point events (nodes) minted by the kernels, the messaging
    layer, the I/O daemon and the scheduler, plus typed edges between
    them — a send to its receive, a DMA injection to its counter hitting
    zero, a function-shipped request to the reply that answered it, a
    parent step to the child it caused. Context travels through the real
    carriers (DMA descriptors, CIO frames, closures), so a retransmitted
    frame carries the {e same} context as the original and at-most-once
    execution shows exactly one [Request_reply] edge.

    Like the rest of [Bg_obs], the collector is {b passive}: it never
    schedules simulator events, never draws randomness, and never writes
    the architectural trace, so for a fixed seed the [Sim] digest is
    bit-identical whether causal collection is on or off. Node ids are
    FNV-derived from a seed and a mint counter — no wall clock — so two
    same-seed runs build byte-identical graphs ({!digest}).

    The graph is {b bounded}: past [max_nodes] minted nodes, {!mint}
    returns {!none} and counts the drop ({!dropped}) — no silent caps. *)

type t

type ctx = int
(** A causal context: the id of a node in the graph. [0] means "none"
    and is what carriers ship when collection is off. *)

val none : ctx

type kind =
  | Send_recv        (** a message send to its delivery on the peer *)
  | Inject_complete  (** a DMA descriptor injection to its counter reaching zero *)
  | Request_reply    (** a function-shipped request to the CIOD service that answered it *)
  | Parent_child     (** program order, job lifecycle, IPIs: the step that caused the next *)

val kind_name : kind -> string

type node = {
  id : ctx;
  cat : string;
  name : string;
  rank : int;   (** {!Obs.node_scope} for control-system events *)
  core : int;
  at : Bg_engine.Cycles.t;
}

type edge = { kind : kind; src : ctx; dst : ctx }

val create : ?seed:int -> ?max_nodes:int -> ?enabled:bool -> unit -> t
(** [seed] (default 1) feeds the FNV id stream; [max_nodes] (default
    262144) bounds the graph; [enabled] defaults to [false] — every call
    below is then a cheap no-op. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit
val reset : t -> unit

val mint :
  t -> ?chain:bool -> cat:string -> name:string -> rank:int -> core:int ->
  now:Bg_engine.Cycles.t -> unit -> ctx
(** New node; returns {!none} when disabled or full. [chain] (default
    [true]) adds a [Parent_child] edge from the previous node minted on
    the same (rank, core) — program order for free. *)

val link : t -> kind -> src:ctx -> dst:ctx -> unit
(** Typed edge; a no-op if either end is {!none} or unknown. *)

val node_count : t -> int
val edge_count : t -> int

val dropped : t -> int
(** Mints refused because the graph hit [max_nodes]. *)

val nodes : t -> node list
(** In mint order. *)

val edges : t -> edge list
(** In record order. *)

val find : t -> ctx -> node option

val last_matching : t -> cat:string -> name:string -> ctx option
(** The latest-minted node with that category and name. *)

val digest : t -> Bg_engine.Fnv.t
(** FNV fold over every node and edge in record order: two same-seed
    runs of the same program produce equal digests. *)

(** {1 Critical path}

    Walk edges backward from a completion node, at each step following
    the latest-arriving predecessor — the dependency that actually
    gated progress. The result is the chain of events that determined
    when the completion happened; everything else overlapped it. *)

val critical_path : t -> ctx -> node list
(** Root first, the given node last. Just the node itself if it has no
    predecessors (or is unknown). *)

type attribution = {
  total : int;  (** path length in cycles: last.at - first.at *)
  ledger : (Accounting.state * int) list;
      (** on-node path cycles split by the owning core's cycle-ledger
          proportions (largest-remainder rounding); all six states, in
          {!Accounting.all_states} order *)
  network : int;  (** cross-node and control-system segments *)
  per_rank : (int * int) list;  (** on-node path cycles per rank, sorted *)
  straggler : int;  (** rank owning the most on-node path cycles; -1 if none *)
  dominant : string;  (** largest bucket: a state name or ["network"] *)
}

val attribute_path : t -> Accounting.t -> node list -> attribution
(** Tile the path into segments between consecutive nodes. A segment
    whose endpoints share a rank is charged to that (rank, core)'s
    ledger states proportionally (falling back to the rank's summed
    ledger, then to [App]); segments that cross ranks — or touch the
    control system — are network time. By construction
    [network + sum ledger = total], exactly. *)

val pp_attribution : Format.formatter -> attribution -> unit

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state, little-endian, into [b]. Hashtable
    contents are sorted before writing, so the bytes are deterministic. *)
