(* Declarative alert rules over the timeseries rollups, typed HEALTH
   RAS events, and the deterministic flight recorder. See the .mli for
   the contract; the wiring onto a Machine lives in lib/kabi. *)

open Bg_engine

(* ---------------------------------------------------------------- *)
(* Rules *)

type agg = Delta | Value | Rate | P50 | P99

let agg_name = function
  | Delta -> "delta"
  | Value -> "value"
  | Rate -> "rate"
  | P50 -> "p50"
  | P99 -> "p99"

let agg_of_name = function
  | "delta" -> Some Delta
  | "value" -> Some Value
  | "rate" -> Some Rate
  | "p50" -> Some P50
  | "p99" -> Some P99
  | _ -> None

type op = Gt | Ge | Lt | Le

let op_name = function Gt -> ">" | Ge -> ">=" | Lt -> "<" | Le -> "<="

let op_of_name = function
  | ">" -> Some Gt
  | ">=" -> Some Ge
  | "<" -> Some Lt
  | "<=" -> Some Le
  | _ -> None

let op_holds op v threshold =
  match op with
  | Gt -> v > threshold
  | Ge -> v >= threshold
  | Lt -> v < threshold
  | Le -> v <= threshold

type rule = {
  rule_name : string;
  subsystem : string;
  metric : string;
  agg : agg;
  op : op;
  threshold : float;
  for_windows : int;
  severity : Rasdb.severity;
}

let severity_of_name = function
  | "info" -> Some Rasdb.Info
  | "warn" -> Some Rasdb.Warn
  | "error" -> Some Rasdb.Error
  | _ -> None

let rule_to_string r =
  Printf.sprintf "%s: %s.%s %s %s %.17g for %d %s" r.rule_name r.subsystem
    r.metric (agg_name r.agg) (op_name r.op) r.threshold r.for_windows
    (Rasdb.severity_name r.severity)

let has_whitespace s = String.exists (fun c -> c = ' ' || c = '\t') s

let parse_rule s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let tokens =
    String.split_on_char ' ' (String.trim s)
    |> List.filter (fun t -> t <> "")
  in
  match tokens with
  | name_tok :: series :: agg_tok :: op_tok :: thr_tok :: rest
    when String.length name_tok > 1
         && name_tok.[String.length name_tok - 1] = ':' -> (
      let rule_name = String.sub name_tok 0 (String.length name_tok - 1) in
      if has_whitespace rule_name then err "rule name has whitespace"
      else
        match String.index_opt series '.' with
        | None -> err "series %S is not <subsystem>.<metric>" series
        | Some dot -> (
            let subsystem = String.sub series 0 dot in
            let metric =
              String.sub series (dot + 1) (String.length series - dot - 1)
            in
            if subsystem = "" || metric = "" then
              err "series %S is not <subsystem>.<metric>" series
            else
              match (agg_of_name agg_tok, op_of_name op_tok,
                     float_of_string_opt thr_tok) with
              | None, _, _ -> err "unknown aggregation %S" agg_tok
              | _, None, _ -> err "unknown operator %S" op_tok
              | _, _, None -> err "bad threshold %S" thr_tok
              | Some agg, Some op, Some threshold -> (
                  let for_windows, rest =
                    match rest with
                    | "for" :: n :: rest' -> (
                        match int_of_string_opt n with
                        | Some n when n >= 1 -> (n, rest')
                        | _ -> (-1, rest))
                    | _ -> (1, rest)
                  in
                  if for_windows < 1 then err "bad window count in %S" s
                  else
                    match rest with
                    | [] ->
                        Ok { rule_name; subsystem; metric; agg; op; threshold;
                             for_windows; severity = Rasdb.Warn }
                    | [ sev ] -> (
                        match severity_of_name sev with
                        | Some severity ->
                            Ok { rule_name; subsystem; metric; agg; op;
                                 threshold; for_windows; severity }
                        | None -> err "unknown severity %S" sev)
                    | _ -> err "trailing tokens in rule %S" s)))
  | _ -> err "rule %S does not match <name>: <sub>.<metric> <agg> <op> <thr>" s

(* ---------------------------------------------------------------- *)
(* Alerts and the typed HEALTH wire format *)

type alert = {
  rule : string;
  severity : Rasdb.severity;
  series : string;
  rank : int;
  core : int;
  window : int;
  at : Cycles.t;
  value : float;
  threshold : float;
}

module Event = struct
  type t =
    | Alert of {
        rule : string;
        series : string;
        rank : int;
        core : int;
        window : int;
        value : float;
        threshold : float;
      }

  let to_message = function
    | Alert a ->
        Printf.sprintf
          "HEALTH alert rule=%s series=%s rank=%d core=%d window=%d \
           value=%.17g threshold=%.17g"
          a.rule a.series a.rank a.core a.window a.value a.threshold

  let of_message msg =
    if String.length msg < 7 || String.sub msg 0 7 <> "HEALTH " then None
    else
      try
        Scanf.sscanf msg
          "HEALTH alert rule=%s series=%s rank=%d core=%d window=%d \
           value=%g threshold=%g"
          (fun rule series rank core window value threshold ->
            Some (Alert { rule; series; rank; core; window; value; threshold }))
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

  let of_alert (a : alert) =
    Alert
      {
        rule = a.rule;
        series = a.series;
        rank = a.rank;
        core = a.core;
        window = a.window;
        value = a.value;
        threshold = a.threshold;
      }
end

(* ---------------------------------------------------------------- *)
(* The service *)

type recorder_config = {
  max_reports : int;
  spans_per_scope : int;
  ras_tail : int;
  causal_last : int;
  series_windows : int;
}

let default_recorder =
  {
    max_reports = 4;
    spans_per_scope = 8;
    ras_tail = 16;
    causal_last = 24;
    series_windows = 32;
  }

type scope_key = { k_rule : int; k_rank : int; k_core : int }

type t = {
  ts : Timeseries.t;
  db : Rasdb.t;
  rules : rule array;
  recorder : recorder_config;
  causal : Causal.t option;
  streaks : (scope_key, int) Hashtbl.t;
  firing_tbl : (scope_key, alert) Hashtbl.t;
  mutable alerts : alert list;  (* reversed *)
  mutable alert_count : int;
  mutable alert_digest : Fnv.t;
  mutable emit : alert -> unit;
  mutable implicate : component:string -> rank:int -> (string * string) list;
  mutable snap_provider : unit -> string;
  mutable reports : (string * string) list;  (* reversed *)
  mutable captures_suppressed : int;
}

let rules t = Array.to_list t.rules
let ts t = t.ts
let db t = t.db
let set_emit t f = t.emit <- f
let set_implicate t f = t.implicate <- f
let set_snap_provider t f = t.snap_provider <- f
let alerts t = List.rev t.alerts
let alert_count t = t.alert_count
let captures_suppressed t = t.captures_suppressed
let reports t = List.rev t.reports

let firing t =
  Hashtbl.fold (fun k a acc -> (k, a) :: acc) t.firing_tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

let digest t =
  let h = Fnv.add_int64 Fnv.empty (Timeseries.digest t.ts) in
  let h = Fnv.add_int64 h (Rasdb.digest t.db) in
  Fnv.add_int64 h t.alert_digest

(* ---------------------------------------------------------------- *)
(* Postmortem bundles *)

let jstr s = "\"" ^ Export.json_escape s ^ "\""

let jfloat v =
  match classify_float v with
  | FP_nan | FP_infinite -> "0"
  | _ -> Printf.sprintf "%.17g" v

let add_list buf render = function
  | [] -> Buffer.add_string buf "[]"
  | items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          render x)
        items;
      Buffer.add_char buf ']'

let render_alert buf (a : alert) =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"rule\":%s,\"severity\":%s,\"series\":%s,\"rank\":%d,\"core\":%d,\
        \"window\":%d,\"at\":%d,\"value\":%s,\"threshold\":%s}"
       (jstr a.rule) (jstr (Rasdb.severity_name a.severity)) (jstr a.series)
       a.rank a.core a.window a.at (jfloat a.value) (jfloat a.threshold))

let render_ras buf (r : Rasdb.record) =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"seq\":%d,\"cycle\":%d,\"rank\":%d,\"severity\":%s,\
        \"component\":%s,\"message\":%s}"
       r.Rasdb.seq r.Rasdb.cycle r.Rasdb.rank
       (jstr (Rasdb.severity_name r.Rasdb.severity))
       (jstr r.Rasdb.component) (jstr r.Rasdb.message))

(* Last-N spans per (rank, core), rendered in (rank, core, seq) order. *)
let postmortem_spans obs ~per_scope =
  let by_scope = Hashtbl.create 32 in
  List.iter
    (fun (s : Obs.span) ->
      let k = (s.Obs.rank, s.Obs.core) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_scope k) in
      Hashtbl.replace by_scope k (s :: prev))
    (Obs.spans obs);
  Hashtbl.fold
    (fun scope spans acc ->
      let last =
        List.sort (fun (a : Obs.span) b -> compare b.Obs.seq a.Obs.seq) spans
        |> List.filteri (fun i _ -> i < per_scope)
        |> List.sort (fun (a : Obs.span) b -> compare a.Obs.seq b.Obs.seq)
      in
      (scope, last) :: acc)
    by_scope []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.concat_map snd

let capture_report t ~label ~now ~trigger_json ~implicated =
  if List.length t.reports >= t.recorder.max_reports then
    t.captures_suppressed <- t.captures_suppressed + 1
  else begin
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"schema\":\"bg-health-postmortem-v1\",";
    Buffer.add_string buf (Printf.sprintf "\"label\":%s," (jstr label));
    Buffer.add_string buf (Printf.sprintf "\"at\":%d," now);
    Buffer.add_string buf
      (Printf.sprintf "\"snap\":%s," (jstr (t.snap_provider ())));
    Buffer.add_string buf (Printf.sprintf "\"trigger\":%s," trigger_json);
    (* Implicated series: full retained window history, every kind and
       every (rank, core) scope carrying the metric. *)
    Buffer.add_string buf "\"implicated_series\":";
    let series_ids =
      List.concat_map
        (fun (subsystem, name) ->
          Timeseries.series_matching t.ts ~subsystem ~name)
        (List.sort_uniq compare implicated)
    in
    add_list buf
      (fun (id : Timeseries.id) ->
        let pts = Timeseries.points t.ts id in
        let len = List.length pts in
        let pts =
          List.filteri (fun i _ -> i >= len - t.recorder.series_windows) pts
        in
        Buffer.add_string buf
          (Printf.sprintf
             "{\"subsystem\":%s,\"metric\":%s,\"kind\":%s,\"rank\":%d,\
              \"core\":%d,\"points\":"
             (jstr id.Timeseries.key.Obs.subsystem)
             (jstr id.Timeseries.key.Obs.name)
             (jstr (Timeseries.kind_name id.Timeseries.kind))
             id.Timeseries.key.Obs.rank id.Timeseries.key.Obs.core);
        add_list buf
          (fun (p : Timeseries.point) ->
            Buffer.add_string buf
              (Printf.sprintf "{\"window\":%d,\"at\":%d,\"v\":%s}"
                 p.Timeseries.window p.Timeseries.at (jfloat p.Timeseries.v)))
          pts;
        Buffer.add_char buf '}')
      series_ids;
    Buffer.add_char buf ',';
    (* Last-N spans per scope. *)
    Buffer.add_string buf "\"spans\":";
    add_list buf
      (fun (s : Obs.span) ->
        Buffer.add_string buf
          (Printf.sprintf
             "{\"cat\":%s,\"name\":%s,\"rank\":%d,\"core\":%d,\"start\":%d,\
              \"finish\":%d,\"depth\":%d,\"seq\":%d}"
             (jstr s.Obs.cat) (jstr s.Obs.name) s.Obs.rank s.Obs.core
             s.Obs.start s.Obs.finish s.Obs.depth s.Obs.seq))
      (postmortem_spans (Timeseries.obs t.ts)
         ~per_scope:t.recorder.spans_per_scope);
    Buffer.add_char buf ',';
    (* Causal neighborhood: the last nodes minted at or before the
       trigger, plus every edge joining two of them. *)
    Buffer.add_string buf "\"causal\":{\"nodes\":";
    let nodes, edges =
      match t.causal with
      | None -> ([], [])
      | Some g ->
          let before =
            List.filter (fun (n : Causal.node) -> n.Causal.at <= now)
              (Causal.nodes g)
          in
          let len = List.length before in
          let keep =
            List.filteri (fun i _ -> i >= len - t.recorder.causal_last) before
          in
          let ids =
            List.fold_left
              (fun acc (n : Causal.node) -> n.Causal.id :: acc)
              [] keep
          in
          let mem id = List.mem id ids in
          ( keep,
            List.filter
              (fun (e : Causal.edge) -> mem e.Causal.src && mem e.Causal.dst)
              (Causal.edges g) )
    in
    add_list buf
      (fun (n : Causal.node) ->
        Buffer.add_string buf
          (Printf.sprintf
             "{\"id\":%d,\"cat\":%s,\"name\":%s,\"rank\":%d,\"core\":%d,\
              \"at\":%d}"
             n.Causal.id (jstr n.Causal.cat) (jstr n.Causal.name) n.Causal.rank
             n.Causal.core n.Causal.at))
      nodes;
    Buffer.add_string buf ",\"edges\":";
    add_list buf
      (fun (e : Causal.edge) ->
        Buffer.add_string buf
          (Printf.sprintf "{\"kind\":%s,\"src\":%d,\"dst\":%d}"
             (jstr (Causal.kind_name e.Causal.kind))
             e.Causal.src e.Causal.dst))
      edges;
    Buffer.add_string buf "},";
    Buffer.add_string buf "\"ras_tail\":";
    add_list buf (render_ras buf) (Rasdb.tail t.db t.recorder.ras_tail);
    Buffer.add_char buf ',';
    Buffer.add_string buf "\"alerts\":";
    add_list buf (render_alert buf) (alerts t);
    Buffer.add_char buf '}';
    t.reports <- (label, Buffer.contents buf) :: t.reports
  end

(* ---------------------------------------------------------------- *)
(* Rule evaluation *)

let kind_for_agg = function
  | Delta | Rate -> Timeseries.Delta
  | Value -> Timeseries.Level
  | P50 -> Timeseries.P50
  | P99 -> Timeseries.P99

let evaluate t ~window ~now =
  Array.iteri
    (fun ri r ->
      let kind = kind_for_agg r.agg in
      List.iter
        (fun (id : Timeseries.id) ->
          if id.Timeseries.kind = kind then
            match Timeseries.latest t.ts id with
            | Some p when p.Timeseries.window = window ->
                let v =
                  match r.agg with
                  | Rate ->
                      p.Timeseries.v *. 1_000_000.
                      /. float_of_int (Timeseries.window_cycles t.ts)
                  | _ -> p.Timeseries.v
                in
                let key =
                  { k_rule = ri; k_rank = id.Timeseries.key.Obs.rank;
                    k_core = id.Timeseries.key.Obs.core }
                in
                if op_holds r.op v r.threshold then begin
                  let streak =
                    1 + Option.value ~default:0 (Hashtbl.find_opt t.streaks key)
                  in
                  Hashtbl.replace t.streaks key streak;
                  if streak >= r.for_windows
                     && not (Hashtbl.mem t.firing_tbl key)
                  then begin
                    let a =
                      {
                        rule = r.rule_name;
                        severity = r.severity;
                        series =
                          Printf.sprintf "%s.%s:%s" r.subsystem r.metric
                            (agg_name r.agg);
                        rank = key.k_rank;
                        core = key.k_core;
                        window;
                        at = now;
                        value = v;
                        threshold = r.threshold;
                      }
                    in
                    Hashtbl.replace t.firing_tbl key a;
                    t.alerts <- a :: t.alerts;
                    t.alert_count <- t.alert_count + 1;
                    let h = t.alert_digest in
                    let h = Fnv.add_string h a.rule in
                    let h = Fnv.add_string h a.series in
                    let h = Fnv.add_int h a.rank in
                    let h = Fnv.add_int h a.core in
                    let h = Fnv.add_int h a.window in
                    let h = Fnv.add_int64 h (Int64.bits_of_float a.value) in
                    t.alert_digest <- h;
                    t.emit a;
                    capture_report t ~label:("alert:" ^ a.rule) ~now
                      ~trigger_json:
                        (let b = Buffer.create 128 in
                         Buffer.add_string b "{\"type\":\"alert\",\"alert\":";
                         render_alert b a;
                         Buffer.add_char b '}';
                         Buffer.contents b)
                      ~implicated:[ (r.subsystem, r.metric) ]
                  end
                end
                else begin
                  Hashtbl.remove t.streaks key;
                  Hashtbl.remove t.firing_tbl key
                end
            | _ -> ())
        (Timeseries.series_matching t.ts ~subsystem:r.subsystem ~name:r.metric))
    t.rules

(* A fatal fault landing in the database triggers the recorder too —
   except health's own alert events, which already captured. *)
let on_fault_record t (r : Rasdb.record) =
  if r.Rasdb.severity = Rasdb.Error
     && not (String.equal r.Rasdb.component "health")
  then begin
    let b = Buffer.create 128 in
    Buffer.add_string b "{\"type\":\"fault\",\"record\":";
    render_ras b r;
    Buffer.add_char b '}';
    capture_report t ~label:("fault:" ^ r.Rasdb.component) ~now:r.Rasdb.cycle
      ~trigger_json:(Buffer.contents b)
      ~implicated:(t.implicate ~component:r.Rasdb.component ~rank:r.Rasdb.rank)
  end

let create ?(recorder = default_recorder) ?causal ~ts ~db ~rules () =
  List.iter
    (fun r ->
      if has_whitespace r.rule_name || r.rule_name = "" then
        invalid_arg
          (Printf.sprintf "Health.create: bad rule name %S" r.rule_name);
      if r.for_windows < 1 then
        invalid_arg
          (Printf.sprintf "Health.create: rule %s: for_windows < 1" r.rule_name))
    rules;
  let t =
    {
      ts;
      db;
      rules = Array.of_list rules;
      recorder;
      causal;
      streaks = Hashtbl.create 64;
      firing_tbl = Hashtbl.create 64;
      alerts = [];
      alert_count = 0;
      alert_digest = Fnv.empty;
      emit = (fun _ -> ());
      implicate = (fun ~component:_ ~rank:_ -> []);
      snap_provider = (fun () -> "");
      reports = [];
      captures_suppressed = 0;
    }
  in
  Timeseries.on_window ts (fun ~window ~now -> evaluate t ~window ~now);
  Rasdb.on_insert db (on_fault_record t);
  t
