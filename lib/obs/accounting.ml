open Bg_engine

type state = App | Syscall | Interrupt | Daemon | Idle | Kernel

let all_states = [ App; Syscall; Interrupt; Daemon; Idle; Kernel ]

let state_index = function
  | App -> 0
  | Syscall -> 1
  | Interrupt -> 2
  | Daemon -> 3
  | Idle -> 4
  | Kernel -> 5

let n_states = 6

let state_name = function
  | App -> "app"
  | Syscall -> "syscall"
  | Interrupt -> "interrupt"
  | Daemon -> "daemon"
  | Idle -> "idle"
  | Kernel -> "kernel"

type ledger = {
  l_rank : int;
  l_core : int;
  first : Cycles.t;
  mutable since : Cycles.t;
  mutable state : state;
  totals : int array;  (* indexed by state_index; invariant: sum = since - first *)
}

type t = {
  mutable enabled : bool;
  ledgers : (int * int, ledger) Hashtbl.t;
}

let create ?(enabled = false) () = { enabled; ledgers = Hashtbl.create 16 }

let enabled t = t.enabled
let set_enabled t v = t.enabled <- v
let reset t = Hashtbl.reset t.ledgers

let ledger t ~rank ~core ~now state =
  match Hashtbl.find_opt t.ledgers (rank, core) with
  | Some l -> l
  | None ->
    let l =
      {
        l_rank = rank;
        l_core = core;
        first = now;
        since = now;
        state;
        totals = Array.make n_states 0;
      }
    in
    Hashtbl.replace t.ledgers (rank, core) l;
    l

let backwards l upto =
  invalid_arg
    (Printf.sprintf "Accounting: time moved backwards on (%d,%d): %d < %d"
       l.l_rank l.l_core upto l.since)

(* Charge [since, upto) to the ledger's current state. *)
let accrue l upto =
  let d = upto - l.since in
  if d < 0 then backwards l upto;
  let i = state_index l.state in
  l.totals.(i) <- l.totals.(i) + d;
  l.since <- upto

let switch t ~rank ~core ~now state =
  if t.enabled then begin
    let l = ledger t ~rank ~core ~now state in
    accrue l now;
    l.state <- state
  end

let attribute t ~rank ~core ~now parts =
  if t.enabled then begin
    match Hashtbl.find_opt t.ledgers (rank, core) with
    | None ->
      (* No ledger yet: the interval predates accounting. Open at [now]
         with nothing charged — conservation starts here. *)
      ignore (ledger t ~rank ~core ~now App)
    | Some l ->
      let d = now - l.since in
      if d < 0 then backwards l now;
      let listed =
        List.fold_left
          (fun acc (_, c) ->
            if c < 0 then invalid_arg "Accounting.attribute: negative cycles";
            acc + c)
          0 parts
      in
      if listed > d then
        invalid_arg
          (Printf.sprintf
             "Accounting.attribute: %d cycles attributed but only %d elapsed \
              on (%d,%d)"
             listed d rank core);
      List.iter
        (fun (st, c) ->
          let i = state_index st in
          l.totals.(i) <- l.totals.(i) + c)
        parts;
      let i = state_index l.state in
      l.totals.(i) <- l.totals.(i) + (d - listed);
      l.since <- now
  end

type entry = {
  rank : int;
  core : int;
  first_cycle : Cycles.t;
  last_cycle : Cycles.t;
  app : int;
  syscall : int;
  interrupt : int;
  daemon : int;
  idle : int;
  kernel : int;
}

let entry_of_ledger l =
  {
    rank = l.l_rank;
    core = l.l_core;
    first_cycle = l.first;
    last_cycle = l.since;
    app = l.totals.(state_index App);
    syscall = l.totals.(state_index Syscall);
    interrupt = l.totals.(state_index Interrupt);
    daemon = l.totals.(state_index Daemon);
    idle = l.totals.(state_index Idle);
    kernel = l.totals.(state_index Kernel);
  }

let cycles e = function
  | App -> e.app
  | Syscall -> e.syscall
  | Interrupt -> e.interrupt
  | Daemon -> e.daemon
  | Idle -> e.idle
  | Kernel -> e.kernel

let attributed e =
  e.app + e.syscall + e.interrupt + e.daemon + e.idle + e.kernel

let elapsed e = e.last_cycle - e.first_cycle

let conserved_entry e = attributed e = elapsed e

let entries t =
  Hashtbl.fold (fun _ l acc -> entry_of_ledger l :: acc) t.ledgers []
  |> List.sort (fun a b -> compare (a.rank, a.core) (b.rank, b.core))

let conserved t = List.for_all conserved_entry (entries t)

let totals es =
  List.fold_left
    (fun acc e ->
      List.map2 (fun (st, c) st' -> assert (st == st'); (st, c + cycles e st))
        acc all_states)
    (List.map (fun st -> (st, 0)) all_states)
    es

let digest t =
  List.fold_left
    (fun h e ->
      let h = Fnv.add_int h e.rank in
      let h = Fnv.add_int h e.core in
      let h = Fnv.add_int h e.first_cycle in
      let h = Fnv.add_int h e.last_cycle in
      List.fold_left (fun h st -> Fnv.add_int h (cycles e st)) h all_states)
    Fnv.empty (entries t)

let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  Buffer.add_uint8 b (if t.enabled then 1 else 0);
  let ledgers =
    Hashtbl.fold (fun k l acc -> (k, l) :: acc) t.ledgers []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  w_i (List.length ledgers);
  List.iter
    (fun ((rank, core), l) ->
      w_i rank;
      w_i core;
      w_i l.first;
      w_i l.since;
      w_i (state_index l.state);
      Array.iter w_i l.totals)
    ledgers

let pp_entry ppf e =
  Format.fprintf ppf
    "rank%d/core%d: elapsed=%d app=%d syscall=%d interrupt=%d daemon=%d \
     idle=%d kernel=%d"
    e.rank e.core (elapsed e) e.app e.syscall e.interrupt e.daemon e.idle
    e.kernel
