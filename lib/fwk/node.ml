open Bg_engine
open Bg_hw
module Obs = Bg_obs.Obs
module Accounting = Bg_obs.Accounting
module Causal = Bg_obs.Causal

let boot_cycles_full = 18_000_000
let boot_cycles_stripped = 2_600_000
let syscall_overhead = 700
let io_extra_cost = 2_700

(* Kernel-mediated DMA access (paper Table I): every injection must
   translate the descriptor's user addresses and pin the payload pages
   before the engine may see it; every counter read or FIFO drain is
   another trap. These run on the core through the noise model, so the
   tick scheduler and daemons can preempt an injection midway. *)
let dma_pin_base_cycles = 1_800
let dma_pin_page_cycles = 350
let dma_poll_cycles = 200
let ctx_switch_cycles = 2_000
let timeslice = 8_500_000 (* 10 ms *)
let minor_fault_cycles = 2_500
let major_fault_cycles = 14_000 (* file-backed fault: VFS read at fault time *)
let tlb_refill_cycles = 60
let page = 4096
let user_va_limit = 0xC000_0000 (* the 3 GB 32-bit split, paper §VII.A *)
let sigsegv = 11

type thread_state = Running | Ready | Blocked | Zombie

type thread = {
  tid : int;
  proc : proc;
  core_id : int;
  mutable state : thread_state;
  mutable resume : (unit -> unit) option;
  mutable slice_left : int;
  mutable clear_child_tid : int option;
  mutable pending_sigs : int list;
  mutable futex_eintr : bool;
}

and proc = {
  pid : int;
  io : Bg_cio.Ioproxy.t;  (* local VFS state: fd table, cwd *)
  tracker : Cnk.Mmap_tracker.t;
  page_table : (int, int) Hashtbl.t;  (* vpage -> pframe *)
  (* file-backed vmas: contents are fetched page-by-page at fault time
     (demand paging), unlike CNK's whole-file copy at map time *)
  mutable file_vmas : (int * int * bytes) list;  (* (base, len, contents) *)
  write_protected : (int, unit) Hashtbl.t;  (* vpage set *)
  handlers : (int, int -> unit) Hashtbl.t;
  text_end : int;
  mutable threads : thread list;
  mutable exited : bool;
}

type core_state = {
  id : int;
  mutable current : thread option;
  ready : thread Queue.t;
  noise : Noise_model.t;
  mutable penalty : int;
}

type t = {
  machine : Machine.t;
  rank : int;
  chip : Chip.t;
  fs : Bg_cio.Fs.t;
  cores : core_state array;
  buddy : Buddy.t;
  futex : Cnk.Futex.t;
  procs : (int, proc) Hashtbl.t;
  threads : (int, thread) Hashtbl.t;
  stripped : bool;
  mutable next_pid : int;
  mutable next_tid : int;
  mutable booted : bool;
  mutable job_active : bool;
  mutable on_complete : (unit -> unit) option;
  mutable faults : (int * string) list;
  mutable minor_faults : int;
  mutable major_faults : int;
  mutable reclaims : int;
}

let sim t = t.machine.Machine.sim
let memory t = Chip.memory t.chip
let machine t = t.machine
let rank t = t.rank
let fs t = t.fs
let booted t = t.booted
let job_active t = t.job_active
let on_job_complete t f = t.on_complete <- Some f
let faults t = List.rev t.faults
let minor_faults t = t.minor_faults
let major_faults t = t.major_faults
let reclaims t = t.reclaims

let live_threads t =
  Hashtbl.fold (fun _ th acc -> if th.state <> Zombie then acc + 1 else acc) t.threads 0

let tlb_refills t =
  Array.fold_left
    (fun acc (c : Chip.core) -> acc + Tlb.evictions c.Chip.tlb)
    0 (Chip.cores t.chip)

let stolen_cycles t =
  Array.fold_left (fun acc c -> acc + Noise_model.stolen_cycles c.noise) 0 t.cores

let create ?noise_seed ?(daemons = Noise_model.suse_daemon_set) ?tick_interval
    ?(stripped = false) machine ~rank () =
  let chip = Machine.chip machine rank in
  let seed =
    match noise_seed with
    | Some s -> s
    | None ->
      (* Uncontrolled environment variability: every machine instance gets
         different daemon phases, so Linux runs are not reproducible. *)
      Int64.of_int ((machine.Machine.instance * 7919) + rank + 1)
  in
  let root_rng = Rng.create seed in
  {
    machine;
    rank;
    chip;
    fs = Bg_cio.Fs.create ();
    cores =
      Array.init (Chip.params chip).Params.cores_per_node (fun id ->
          {
            id;
            current = None;
            ready = Queue.create ();
            noise =
              Noise_model.create ?tick_interval ~daemons:(daemons ~core:id)
                ~rng:(Rng.split root_rng (Printf.sprintf "core%d" id))
                ();
            penalty = 0;
          });
    buddy = Buddy.create ~bytes:(Chip.params chip).Params.dram_bytes;
    futex = Cnk.Futex.create ();
    procs = Hashtbl.create 4;
    threads = Hashtbl.create 16;
    stripped;
    next_pid = 1;
    next_tid = 1;
    booted = false;
    job_active = false;
    on_complete = None;
    faults = [];
    minor_faults = 0;
    major_faults = 0;
    reclaims = 0;
  }

let emit t label value =
  Sim.emit (sim t) ~label ~value:(Int64.of_int ((t.rank * 1_000_000) + value))

let obs t = t.machine.Machine.obs

(* FWK's RAS reporting mirrors CNK's wording so the service node's
   database reads uniformly across kernels; the counter gives the
   health service a per-kernel emission series. *)
let ras t severity message =
  Obs.incr (obs t) ~rank:t.rank ~subsystem:"kernel" ~name:"ras_emitted" ();
  Machine.ras_emit t.machine ~rank:t.rank ~severity ~message
let acct t = t.machine.Machine.acct
let causal t = t.machine.Machine.causal

let causal_mint ?chain t ~cat ~name ~core =
  let c = causal t in
  if Causal.enabled c then
    Causal.mint c ?chain ~cat ~name ~rank:t.rank ~core ~now:(Sim.now (sim t)) ()
  else Causal.none

let acct_switch t ~core state =
  Accounting.switch (acct t) ~rank:t.rank ~core ~now:(Sim.now t.machine.Machine.sim) state

(* --- demand paging ----------------------------------------------------- *)

exception Fault of string

let legal_va (p : proc) va =
  va >= 0 && va < user_va_limit
  && (va < Cnk.Mmap_tracker.heap_end p.tracker
     || Cnk.Mmap_tracker.is_mapped p.tracker ~addr:va ~length:1
     || va >= Cnk.Mmap_tracker.main_stack_lo p.tracker
        && va < Cnk.Mmap_tracker.main_stack_hi p.tracker)

(* Resolve one page, faulting it in if needed; charges costs onto the
   core's pending-penalty accumulator (paid at the next consume). *)
let rec resolve_page t (th : thread) access va =
  let p = th.proc in
  let vpage = va / page * page in
  if access = Tlb.Store && Hashtbl.mem p.write_protected vpage then
    raise (Fault (Printf.sprintf "write to protected page 0x%x" vpage));
  let core_hw = Chip.core t.chip th.core_id in
  let core = t.cores.(th.core_id) in
  match Tlb.translate core_hw.Chip.tlb access va with
  | Tlb.Hit pa -> pa
  | Tlb.Fault reason -> raise (Fault reason)
  | Tlb.Miss ->
    let pframe =
      match Hashtbl.find_opt p.page_table vpage with
      | Some f ->
        core.penalty <- core.penalty + tlb_refill_cycles;
        Obs.incr (obs t) ~rank:t.rank ~core:th.core_id ~subsystem:"tlb" ~name:"refill" ();
        f
      | None ->
        if not (legal_va p va) then
          raise (Fault (Printf.sprintf "segfault at 0x%x" va));
        (* fault: allocate a frame; file-backed pages also read their
           contents from the VFS now (major fault) *)
        let f =
          match Buddy.alloc t.buddy ~order:12 with
          | Ok f -> f
          | Error _ -> (
            (* memory pressure: the page cache can discard a clean
               file-backed page and re-read it later (Table II: a unified
               page cache is a Linux advantage CNK gave up) *)
            match reclaim_file_page t p with
            | Some f -> f
            | None -> raise (Fault "out of physical memory"))
        in
        Hashtbl.replace p.page_table vpage f;
        (match
           List.find_opt
             (fun (base, len, _) -> vpage >= base && vpage < base + len)
             p.file_vmas
         with
        | Some (base, _, contents) ->
          let off = vpage - base in
          let n = min page (max 0 (Bytes.length contents - off)) in
          if n > 0 then Memory.write (memory t) ~addr:f (Bytes.sub contents off n);
          t.major_faults <- t.major_faults + 1;
          core.penalty <- core.penalty + major_fault_cycles;
          Obs.incr (obs t) ~rank:t.rank ~core:th.core_id ~subsystem:"vm" ~name:"major_fault" ()
        | None ->
          t.minor_faults <- t.minor_faults + 1;
          core.penalty <- core.penalty + minor_fault_cycles;
          Obs.incr (obs t) ~rank:t.rank ~core:th.core_id ~subsystem:"vm" ~name:"minor_fault" ());
        f
    in
    (* install a 4K entry; FIFO eviction is free to happen *)
    let entry =
      { Tlb.vaddr = vpage; paddr = pframe; size = Page_size.P4k; perm = Tlb.perm_rwx }
    in
    (match Tlb.install core_hw.Chip.tlb entry with Ok () | Error _ -> ());
    pframe + (va - vpage)

(* Drop one resident file-backed page (clean by construction: the vma
   snapshot is the backing store) and hand its frame to the caller. *)
and reclaim_file_page t (p : proc) =
  (* victim = lowest file-backed vpage: hash iteration order would make
     the evicted page (and so every downstream fault) run-dependent *)
  let victim =
    Hashtbl.fold
      (fun vpage frame acc ->
        if
          List.exists
            (fun (base, len, _) -> vpage >= base && vpage < base + len)
            p.file_vmas
        then
          match acc with
          | Some (v, _) when v <= vpage -> acc
          | _ -> Some (vpage, frame)
        else acc)
      p.page_table None
  in
  match victim with
  | Some (vpage, frame) ->
    Hashtbl.remove p.page_table vpage;
    t.reclaims <- t.reclaims + 1;
    Some frame
  | None -> None

(* Page-wise memory access: pages are not physically contiguous here. *)
let access_bytes t th access va len (f : pa:int -> off:int -> span:int -> unit) =
  let off = ref 0 in
  while !off < len do
    let cur = va + !off in
    let span = min (len - !off) (page - (cur mod page)) in
    let pa = resolve_page t th access cur in
    f ~pa ~off:!off ~span;
    off := !off + span
  done

let read_mem t th va len =
  let out = Bytes.create len in
  access_bytes t th Tlb.Load va len (fun ~pa ~off ~span ->
      Bytes.blit (Memory.read (memory t) ~addr:pa ~len:span) 0 out off span);
  out

let write_mem t th va data =
  access_bytes t th Tlb.Store va (Bytes.length data) (fun ~pa ~off ~span ->
      Memory.write (memory t) ~addr:pa (Bytes.sub data off span))

let read_word t th va = Int64.to_int (Bytes.get_int64_le (read_mem t th va 8) 0)

let write_word t th va v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  write_mem t th va b

(* --- scheduler ---------------------------------------------------------- *)

let rec dispatch t core =
  match core.current with
  | Some _ -> ()
  | None -> (
    match Queue.take_opt core.ready with
    | None -> ()
    | Some th ->
      if th.state = Zombie then dispatch t core
      else begin
        core.current <- Some th;
        th.state <- Running;
        th.slice_left <- timeslice;
        acct_switch t ~core:core.id Accounting.Kernel;
        let resume = th.resume in
        th.resume <- None;
        ignore
          (Sim.schedule_in (sim t) ctx_switch_cycles (fun () ->
               if th.state = Running then begin
                 acct_switch t ~core:core.id Accounting.App;
                 match resume with Some k -> k () | None -> ()
               end))
      end)

let core_idle t (core : core_state) =
  if core.current = None && Queue.is_empty core.ready then
    acct_switch t ~core:core.id Accounting.Idle

let release_core t (th : thread) =
  let core = t.cores.(th.core_id) in
  (match core.current with
  | Some cur when cur.tid = th.tid -> core.current <- None
  | _ -> ());
  dispatch t core;
  core_idle t core

let make_ready t (th : thread) =
  let core = t.cores.(th.core_id) in
  th.state <- Ready;
  Queue.push th core.ready;
  dispatch t core

let check_job_done t =
  if t.job_active then begin
    let all = Hashtbl.fold (fun _ p acc -> acc && p.exited) t.procs true in
    if all && Hashtbl.length t.procs > 0 then begin
      t.job_active <- false;
      Machine.publish_net_gauges t.machine ~rank:t.rank;
      emit t "fwk.job_done" 0;
      match t.on_complete with
      | Some f ->
        t.on_complete <- None;
        f ()
      | None -> ()
    end
  end

let rec thread_exit t (th : thread) _code =
  if th.state <> Zombie then begin
    th.state <- Zombie;
    th.resume <- None;
    ignore (Cnk.Futex.remove t.futex ~tid:th.tid);
    (match th.clear_child_tid with
    | Some addr ->
      (try
         write_word t th addr 0;
         ignore (wake_futex t th.proc addr 1)
       with Fault _ -> ())
    | None -> ());
    th.proc.threads <- List.filter (fun x -> x.tid <> th.tid) th.proc.threads;
    release_core t th;
    if th.proc.threads = [] && not th.proc.exited then begin
      th.proc.exited <- true;
      check_job_done t
    end
  end

and wake_futex t (p : proc) addr count =
  let tids = Cnk.Futex.wake t.futex ~pid:p.pid ~addr ~count in
  List.iter
    (fun tid ->
      match Hashtbl.find_opt t.threads tid with
      | Some th when th.state = Blocked -> make_ready t th
      | _ -> ())
    tids;
  List.length tids

let deliver_signals t (th : thread) =
  let pending = List.rev th.pending_sigs in
  th.pending_sigs <- [];
  List.for_all
    (fun signo ->
      match Hashtbl.find_opt th.proc.handlers signo with
      | Some h ->
        h signo;
        true
      | None ->
        t.faults <- (th.tid, Printf.sprintf "unhandled signal %d" signo) :: t.faults;
        ras t Machine.Ras_error
          (Printf.sprintf "tid %d killed by unhandled signal %d" th.tid signo);
        thread_exit t th signo;
        false)
    pending

(* --- the step driver ----------------------------------------------------- *)

let refresh_stretch t start n =
  let p = Chip.params t.chip in
  let interval = p.Params.dram_refresh_interval_cycles in
  if interval <= 0 then n
  else n + ((((start + n) / interval) - (start / interval)) * p.Params.dram_refresh_stall_cycles)

let rec step_thread t (th : thread) (s : Coro.step) =
  if th.state = Zombie then ()
  else
    match s with
    | Coro.Finished -> thread_exit t th 0
    | Coro.Crashed e ->
      t.faults <- (th.tid, Printexc.to_string e) :: t.faults;
      ras t Machine.Ras_error
        (Printf.sprintf "tid %d crashed: %s" th.tid (Printexc.to_string e));
      thread_exit t th 1
    | Coro.Rdtsc k -> step_thread t th (k (Sim.now (sim t)))
    | Coro.Yield k ->
      th.resume <- Some (fun () -> step_thread t th (k ()));
      requeue t th
    | Coro.Consume (n, k) -> do_consume t th n k
    | Coro.Load (addr, len, k) -> (
      try step_thread t th (k (read_mem t th addr len))
      with Fault reason ->
        (* with a SIGSEGV handler the access is dropped and reads as zero *)
        on_fault t th reason (fun () -> step_thread t th (k (Bytes.make len '\000'))))
    | Coro.Store (addr, data, k) -> (
      try
        write_mem t th addr data;
        step_thread t th (k ())
      with Fault reason -> on_fault t th reason (fun () -> step_thread t th (k ())))
    | Coro.Cas (addr, expected, desired, k) -> (
      try
        let v = read_word t th addr in
        if v = expected then write_word t th addr desired;
        step_thread t th (k (v = expected))
      with Fault reason -> on_fault t th reason (fun () -> step_thread t th (k false)))
    | Coro.Fetch_add (addr, delta, k) -> (
      try
        let v = read_word t th addr in
        write_word t th addr (v + delta);
        step_thread t th (k v)
      with Fault reason -> on_fault t th reason (fun () -> step_thread t th (k 0)))
    | Coro.Syscall (req, k) ->
      let k = instrument_syscall t th req k in
      let k = account_syscall t th req k in
      ignore
        (Sim.schedule_in (sim t) syscall_overhead (fun () ->
             if th.state <> Zombie then handle_syscall t th req k))

(* Same passive wrapper as the CNK kernel: record the dispatch-to-reply
   interval per Sysreq kind. Comparing the two kernels' "syscall" timers
   side by side is the paper's Table II in live form. *)
and instrument_syscall t (th : thread) req k =
  let o = obs t in
  let c = causal t in
  if not (Obs.enabled o || Causal.enabled c) then k
  else
    match req with
    | Sysreq.Exit_thread _ | Sysreq.Exit_group _ -> k
    | _ ->
      let name = Sysreq.request_name req in
      let start = Sim.now (sim t) in
      let h =
        if Obs.enabled o then
          Some (Obs.span_begin o ~cat:"syscall" ~name ~rank:t.rank ~core:th.core_id ~now:start)
        else None
      in
      ignore (causal_mint t ~cat:"syscall" ~name:(name ^ ".entry") ~core:th.core_id);
      fun reply ->
        let now = Sim.now (sim t) in
        (match h with
        | Some h ->
          Obs.span_end o h ~now;
          Obs.observe_cycles o ~rank:t.rank ~subsystem:"syscall" ~name (now - start);
          Obs.incr o ~rank:t.rank ~core:th.core_id ~subsystem:"syscall" ~name ()
        | None -> ());
        ignore (causal_mint t ~cat:"syscall" ~name:(name ^ ".exit") ~core:th.core_id);
        k reply

(* Charge trap-to-reply to [Syscall] in the cycle ledger; same contract
   as the CNK kernel. *)
and account_syscall t (th : thread) req k =
  match req with
  | Sysreq.Exit_thread _ | Sysreq.Exit_group _ -> k
  | _ ->
    acct_switch t ~core:th.core_id Accounting.Syscall;
    fun reply ->
      acct_switch t ~core:th.core_id Accounting.App;
      k reply

and requeue t (th : thread) =
  let core = t.cores.(th.core_id) in
  (match core.current with
  | Some cur when cur.tid = th.tid -> core.current <- None
  | _ -> ());
  th.state <- Ready;
  Queue.push th core.ready;
  dispatch t core

(* SIGSEGV semantics: a registered handler runs and the faulting access is
   skipped; otherwise the thread dies and the fault is recorded once. *)
and on_fault t (th : thread) reason continue =
  match Hashtbl.find_opt th.proc.handlers sigsegv with
  | Some h ->
    h sigsegv;
    continue ()
  | None ->
    t.faults <- (th.tid, reason) :: t.faults;
    ras t Machine.Ras_error (Printf.sprintf "tid %d segv: %s" th.tid reason);
    thread_exit t th sigsegv

(* Preemptive, noisy consume: split at time-slice boundaries when other
   threads wait on the core; every quantum is stretched by ticks and
   daemon activations. *)
and do_consume t (th : thread) work k =
  let core = t.cores.(th.core_id) in
  let now = Sim.now (sim t) in
  let pen = core.penalty in
  let work = work + pen in
  core.penalty <- 0;
  (* Close the window in the cycle ledger: steals to Interrupt/Daemon,
     kernel service folded into the window (TLB refills, fault handling)
     to Kernel, the rest to the app. The [min] keeps attribution inside
     the window when a large penalty spills across a slice split. *)
  let account ~window (steal : Noise_model.steal) =
    let kernel_part = min pen window in
    if steal.Noise_model.tick > 0 || steal.Noise_model.daemon > 0 || kernel_part > 0 then
      Accounting.attribute (acct t) ~rank:t.rank ~core:th.core_id
        ~now:(Sim.now (sim t))
        [
          (Accounting.Interrupt, steal.Noise_model.tick);
          (Accounting.Daemon, steal.Noise_model.daemon);
          (Accounting.Kernel, kernel_part);
        ]
  in
  let has_waiters = not (Queue.is_empty core.ready) in
  if has_waiters && work > th.slice_left then begin
    let part = th.slice_left in
    let window = refresh_stretch t now part in
    let finish, steal = Noise_model.advance2 core.noise ~start:now ~work:window in
    ignore
      (Sim.schedule_at (sim t) finish (fun () ->
           if th.state <> Zombie then begin
             account ~window steal;
             th.resume <- Some (fun () -> do_consume t th (work - part) k);
             requeue t th
           end))
  end
  else begin
    let window = refresh_stretch t now work in
    let finish, steal = Noise_model.advance2 core.noise ~start:now ~work:window in
    th.slice_left <- max 1 (th.slice_left - work);
    ignore
      (Sim.schedule_at (sim t) finish (fun () ->
           if th.state <> Zombie then begin
             account ~window steal;
             if deliver_signals t th then step_thread t th (k ())
           end))
  end

(* --- syscalls ------------------------------------------------------------- *)

and handle_syscall t (th : thread) req k =
  let p = th.proc in
  let ret reply = step_thread t th (k reply) in
  match req with
  | Sysreq.Getpid -> ret (Sysreq.R_int p.pid)
  | Sysreq.Gettid -> ret (Sysreq.R_int th.tid)
  | Sysreq.Get_rank -> ret (Sysreq.R_int t.rank)
  | Sysreq.Uname ->
    ret
      (Sysreq.R_uname
         {
           Sysreq.sysname = "Linux";
           nodename = Printf.sprintf "fwk%d-cn%d" t.machine.Machine.instance t.rank;
           release = "2.6.30";
           machine = "ppc450d";
         })
  | Sysreq.Gettimeofday -> ret (Sysreq.R_int (int_of_float (Cycles.to_us (Sim.now (sim t)))))
  | Sysreq.Brk target -> (
    match Cnk.Mmap_tracker.brk p.tracker target with
    | Ok b -> ret (Sysreq.R_int b)
    | Error e -> ret (Sysreq.R_err e))
  | Sysreq.Mmap { length; fd = None; _ } -> (
    match Cnk.Mmap_tracker.mmap p.tracker ~length with
    | Ok addr -> ret (Sysreq.R_int addr)
    | Error e -> ret (Sysreq.R_err e))
  | Sysreq.Mmap { length; fd = Some fd; offset; _ } -> (
    match Cnk.Mmap_tracker.mmap p.tracker ~length with
    | Error e -> ret (Sysreq.R_err e)
    | Ok addr -> (
      (* Linux maps the file lazily: contents are snapshot here (MAP_COPY
         semantics for the model) but each page is charged at fault time,
         when it is first touched — runtime noise, where CNK pays at load *)
      match Bg_cio.Ioproxy.handle p.io (Sysreq.Pread { fd; len = length; offset }) with
      | Sysreq.R_bytes data ->
        let base = addr / page * page in
        let len = (length + page - 1) / page * page in
        p.file_vmas <- (base, len, data) :: p.file_vmas;
        ret (Sysreq.R_int addr)
      | other -> ret other))
  | Sysreq.Munmap { addr; length } -> (
    match Cnk.Mmap_tracker.munmap p.tracker ~addr ~length with
    | Ok () -> ret Sysreq.R_unit
    | Error e -> ret (Sysreq.R_err e))
  | Sysreq.Mprotect { addr; length; prot } ->
    (* Linux enforces page protection for real (Table II). *)
    let first = addr / page and last = (addr + length - 1) / page in
    for vp = first to last do
      if prot.Tlb.write then Hashtbl.remove p.write_protected (vp * page)
      else Hashtbl.replace p.write_protected (vp * page) ()
    done;
    ret Sysreq.R_unit
  | Sysreq.Shm_open _ | Sysreq.Query_map | Sysreq.Query_vtop _ ->
    (* No persistent named memory; no static map to query; user space
       cannot learn v->p on Linux (paper Table II "not avail"). *)
    ret (Sysreq.R_err Errno.ENOSYS)
  | Sysreq.Set_tid_address addr ->
    th.clear_child_tid <- Some addr;
    ret (Sysreq.R_int th.tid)
  | Sysreq.Clone { flags; stack_hint = _; tls = _; parent_tid_addr; child_tid_addr; entry } ->
    if not flags.Sysreq.vm then ret (Sysreq.R_err Errno.EINVAL)
    else begin
      (* least-loaded core, no per-core limit: overcommit is fine here *)
      let load c =
        List.length (List.filter (fun x -> x.core_id = c.id && x.state <> Zombie) p.threads)
      in
      let core =
        Array.fold_left
          (fun best c -> if load c < load best then c else best)
          t.cores.(0) t.cores
      in
      let tid = t.next_tid in
      t.next_tid <- tid + 1;
      let child =
        {
          tid;
          proc = p;
          core_id = core.id;
          state = Ready;
          resume = None;
          slice_left = timeslice;
          clear_child_tid = (if child_tid_addr <> 0 then Some child_tid_addr else None);
          pending_sigs = [];
          futex_eintr = false;
        }
      in
      Hashtbl.add t.threads tid child;
      p.threads <- child :: p.threads;
      if parent_tid_addr <> 0 then (try write_word t th parent_tid_addr tid with Fault _ -> ());
      if child_tid_addr <> 0 then (try write_word t th child_tid_addr tid with Fault _ -> ());
      child.resume <- Some (fun () -> step_thread t child (Coro.start entry));
      make_ready t child;
      ret (Sysreq.R_int tid)
    end
  | Sysreq.Exit_thread code -> thread_exit t th code
  | Sysreq.Exit_group code ->
    List.iter (fun o -> thread_exit t o code) (List.filter (fun x -> x.tid <> th.tid) p.threads);
    thread_exit t th code
  | Sysreq.Sigaction { signo; handler } ->
    (match handler with
    | Some h -> Hashtbl.replace p.handlers signo h
    | None -> Hashtbl.remove p.handlers signo);
    ret Sysreq.R_unit
  | Sysreq.Tgkill { tid; signo } -> (
    match Hashtbl.find_opt t.threads tid with
    | None -> ret (Sysreq.R_err Errno.ESRCH)
    | Some target when target.state = Zombie -> ret (Sysreq.R_err Errno.ESRCH)
    | Some target ->
      target.pending_sigs <- target.pending_sigs @ [ signo ];
      if target.state = Blocked && Cnk.Futex.remove t.futex ~tid then begin
        target.futex_eintr <- true;
        make_ready t target
      end;
      ret Sysreq.R_unit)
  | Sysreq.Sched_yield ->
    th.resume <- Some (fun () -> ret (Sysreq.R_int 0));
    requeue t th
  | Sysreq.Futex_wait { addr; expected } -> (
    match read_word t th addr with
    | exception Fault _ -> ret (Sysreq.R_err Errno.EFAULT)
    | v ->
      if v <> expected then ret (Sysreq.R_err Errno.EAGAIN)
      else begin
        Cnk.Futex.enqueue t.futex ~pid:p.pid ~addr ~tid:th.tid;
        th.state <- Blocked;
        th.resume <-
          Some
            (fun () ->
              if deliver_signals t th then
                if th.futex_eintr then begin
                  th.futex_eintr <- false;
                  ret (Sysreq.R_err Errno.EINTR)
                end
                else ret (Sysreq.R_int 0));
        release_core t th
      end)
  | Sysreq.Futex_wake { addr; count } -> ret (Sysreq.R_int (wake_futex t p addr count))
  | Sysreq.Query_perf op ->
    (* Linux exposes the same UPC silicon through its perf layer. *)
    let upc = Chip.upc t.chip in
    (match op with
    | Sysreq.Perf_start ->
      Upc.start upc;
      ret Sysreq.R_unit
    | Sysreq.Perf_stop ->
      Upc.stop upc;
      ret Sysreq.R_unit
    | Sysreq.Perf_freeze ->
      Upc.freeze upc;
      ret Sysreq.R_unit
    | Sysreq.Perf_read ->
      let readings =
        match Upc.frozen_snapshot upc with
        | Some rs -> rs
        | None -> Upc.snapshot upc
      in
      ret
        (Sysreq.R_perf
           (List.map
              (fun (r : Upc.reading) ->
                { Sysreq.pr_event = r.Upc.event; pr_core = r.Upc.core; pr_count = r.Upc.count })
              readings)))
  | Sysreq.Dma_inject d ->
    let core = t.cores.(th.core_id) in
    (* pin every page the descriptor references — d.bytes, not just the
       carried payload, so bulk rDMA pays for its whole buffer *)
    let pages = 1 + ((d.Dma.bytes + page - 1) / page) in
    let work = dma_pin_base_cycles + (pages * dma_pin_page_cycles) in
    let finish, _steal =
      Noise_model.advance2 core.noise ~start:(Sim.now (sim t)) ~work
    in
    ignore
      (Sim.schedule_at (sim t) finish (fun () ->
           if th.state <> Zombie then
             match Dma.inject (Machine.dma t.machine t.rank) d with
             | Ok () -> ret Sysreq.R_unit
             | Error `Fifo_full -> ret (Sysreq.R_err Errno.EAGAIN)))
  | Sysreq.Dma_poll op ->
    let core = t.cores.(th.core_id) in
    let finish, _steal =
      Noise_model.advance2 core.noise ~start:(Sim.now (sim t)) ~work:dma_poll_cycles
    in
    ignore
      (Sim.schedule_at (sim t) finish (fun () ->
           if th.state <> Zombie then
             let engine = Machine.dma t.machine t.rank in
             match op with
             | Sysreq.Dma_counter id ->
               ret (Sysreq.R_int (Dma.counter_value engine ~id))
             | Sysreq.Dma_recv -> ret (Sysreq.R_dma_packets (Dma.drain_recv engine))))
  | _ when Sysreq.is_file_io req ->
    (* Local VFS: in-kernel service, Linux-scale cost, then reply. FWK
       never crosses the collective network, so file I/O cannot be lost;
       the counter lets chaos tooling confirm which path a run took. *)
    Obs.incr (obs t) ~rank:t.rank ~subsystem:"cio" ~name:"local_served" ();
    ignore
      (Sim.schedule_in (sim t) io_extra_cost (fun () ->
           if th.state <> Zombie then ret (Bg_cio.Ioproxy.handle p.io req)))
  | _ -> ret (Sysreq.R_err Errno.ENOSYS)

(* --- boot / launch ---------------------------------------------------------- *)

let boot t ~on_ready =
  let cycles = if t.stripped then boot_cycles_stripped else boot_cycles_full in
  ignore
    (Sim.schedule_in (sim t) cycles (fun () ->
         t.booted <- true;
         emit t "fwk.boot" 0;
         on_ready ()))

let launch t (job : Job.t) =
  if not t.booted then Error "node not booted"
  else if t.job_active then Error "a job is already active"
  else begin
    t.job_active <- true;
    let pid = t.next_pid in
    t.next_pid <- pid + 1;
    let image = job.Job.image in
    let text_end = image.Image.text_bytes + image.Image.data_bytes in
    let heap_base = (text_end + page - 1) / page * page in
    let p =
      {
        pid;
        io = Bg_cio.Ioproxy.create t.fs ~rank:t.rank ~pid;
        tracker =
          Cnk.Mmap_tracker.create ~base:heap_base ~bytes:(user_va_limit - heap_base)
            ~main_stack_bytes:(8 * 1024 * 1024);
        page_table = Hashtbl.create 1024;
        file_vmas = [];
        write_protected = Hashtbl.create 16;
        handlers = Hashtbl.create 4;
        text_end;
        threads = [];
        exited = false;
      }
    in
    Hashtbl.replace t.procs pid p;
    let tid = t.next_tid in
    t.next_tid <- tid + 1;
    let main =
      {
        tid;
        proc = p;
        core_id = 0;
        state = Ready;
        resume = None;
        slice_left = timeslice;
        clear_child_tid = None;
        pending_sigs = [];
        futex_eintr = false;
      }
    in
    Hashtbl.add t.threads tid main;
    p.threads <- [ main ];
    main.resume <- Some (fun () -> step_thread t main (Coro.start image.Image.entry));
    make_ready t main;
    emit t "fwk.launch" pid;
    Ok ()
  end

(* --- fragmentation probes ----------------------------------------------------- *)

let try_alloc_contiguous t ~bytes =
  match Buddy.alloc_bytes t.buddy bytes with
  | Ok addr ->
    let rec order_of n o = if 1 lsl o >= n then o else order_of n (o + 1) in
    Buddy.free t.buddy ~addr ~order:(order_of bytes Buddy.min_order);
    true
  | Error _ -> false

let churn t ~allocations ~seed =
  let rng = Rng.create seed in
  let live = ref [] in
  for _ = 1 to allocations do
    let order = Buddy.min_order + Rng.int rng 8 in
    (match Buddy.alloc t.buddy ~order with
    | Ok addr -> live := (addr, order) :: !live
    | Error _ -> ());
    (* free roughly half of what we hold, at random *)
    if Rng.bool rng then begin
      match !live with
      | (addr, order) :: rest when Rng.bool rng ->
        Buddy.free t.buddy ~addr ~order;
        live := rest
      | _ -> ()
    end
  done

(* Snapshot capture: closures (thread resume continuations) are captured
   by shape only; file contents and frame payloads by digest. *)
let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  let w_b v = Buffer.add_uint8 b (if v then 1 else 0) in
  let w_opt = function
    | None -> Buffer.add_uint8 b 0
    | Some v ->
      Buffer.add_uint8 b 1;
      w_i v
  in
  let w_s s =
    w_i (String.length s);
    Buffer.add_string b s
  in
  w_i t.rank;
  w_b t.booted;
  w_b t.job_active;
  w_b t.stripped;
  w_i t.next_pid;
  w_i t.next_tid;
  w_i t.minor_faults;
  w_i t.major_faults;
  w_i t.reclaims;
  let faults = List.rev t.faults in
  w_i (List.length faults);
  List.iter
    (fun (code, msg) ->
      w_i code;
      w_s msg)
    faults;
  let procs =
    Hashtbl.fold (fun pid p acc -> (pid, p) :: acc) t.procs []
    |> List.sort (fun (i, _) (j, _) -> compare i j)
  in
  w_i (List.length procs);
  List.iter
    (fun (pid, p) ->
      w_i pid;
      w_b p.exited;
      w_i p.text_end;
      w_i (List.length p.threads);
      let pages =
        Hashtbl.fold (fun vp f acc -> (vp, f) :: acc) p.page_table []
        |> List.sort compare
      in
      w_i (List.length pages);
      List.iter
        (fun (vp, f) ->
          w_i vp;
          w_i f)
        pages;
      w_i (List.length p.file_vmas);
      List.iter
        (fun (base, len, contents) ->
          w_i base;
          w_i len;
          Buffer.add_int64_le b (Fnv.add_bytes Fnv.empty contents))
        p.file_vmas;
      let wp = Hashtbl.fold (fun vp () acc -> vp :: acc) p.write_protected [] in
      let wp = List.sort compare wp in
      w_i (List.length wp);
      List.iter w_i wp;
      Bg_cio.Ioproxy.capture p.io b;
      Cnk.Mmap_tracker.capture p.tracker b)
    procs;
  let threads =
    Hashtbl.fold (fun tid th acc -> (tid, th) :: acc) t.threads []
    |> List.sort (fun (i, _) (j, _) -> compare i j)
  in
  w_i (List.length threads);
  List.iter
    (fun (tid, th) ->
      w_i tid;
      w_i th.proc.pid;
      w_i th.core_id;
      w_i
        (match th.state with Running -> 0 | Ready -> 1 | Blocked -> 2 | Zombie -> 3);
      w_b (th.resume <> None);
      w_i th.slice_left;
      w_opt th.clear_child_tid;
      w_i (List.length th.pending_sigs);
      List.iter w_i th.pending_sigs;
      w_b th.futex_eintr)
    threads;
  Array.iter
    (fun c ->
      w_opt (Option.map (fun th -> th.tid) c.current);
      w_i (Queue.length c.ready);
      Queue.iter (fun th -> w_i th.tid) c.ready;
      w_i c.penalty;
      Noise_model.capture c.noise b)
    t.cores;
  Buddy.capture t.buddy b;
  Cnk.Futex.capture t.futex b;
  Bg_cio.Fs.capture t.fs b;
  Chip.capture t.chip b
