let min_order = 12
let max_order = 30

type t = {
  free_lists : (int, unit) Hashtbl.t array;  (* per order: set of addrs *)
  allocated : (int, int) Hashtbl.t;           (* addr -> order *)
  total : int;
}

let order_of_bytes n =
  let rec go o = if 1 lsl o >= n then o else go (o + 1) in
  go min_order

let create ~bytes =
  let t =
    {
      free_lists = Array.init (max_order + 1) (fun _ -> Hashtbl.create 16);
      allocated = Hashtbl.create 64;
      total = bytes / (1 lsl min_order) * (1 lsl min_order);
    }
  in
  (* carve the span into maximal aligned power-of-two blocks *)
  let rec carve addr remaining =
    if remaining >= 1 lsl min_order then begin
      let rec fit o =
        if o < min_order then None
        else if 1 lsl o <= remaining && addr mod (1 lsl o) = 0 then Some o
        else fit (o - 1)
      in
      match fit max_order with
      | None -> ()
      | Some o ->
        Hashtbl.replace t.free_lists.(o) addr ();
        carve (addr + (1 lsl o)) (remaining - (1 lsl o))
    end
  in
  carve 0 t.total;
  t

(* deterministic pick: smallest address in the order's free list *)
let pick_free t o =
  Hashtbl.fold
    (fun addr () acc -> match acc with Some a when a < addr -> acc | _ -> Some addr)
    t.free_lists.(o) None

let rec alloc t ~order =
  if order < min_order || order > max_order then Error Errno.EINVAL
  else
    match pick_free t order with
    | Some addr ->
      Hashtbl.remove t.free_lists.(order) addr;
      Hashtbl.replace t.allocated addr order;
      Ok addr
    | None ->
      (* split a block of the next order up *)
      if order = max_order then Error Errno.ENOMEM
      else begin
        match alloc t ~order:(order + 1) with
        | Error e -> Error e
        | Ok addr ->
          (* keep the lower half allocated at [order], free the upper *)
          Hashtbl.remove t.allocated addr;
          Hashtbl.replace t.allocated addr order;
          Hashtbl.replace t.free_lists.(order) (addr + (1 lsl order)) ();
          Ok addr
      end

let alloc_bytes t n =
  if n <= 0 then Error Errno.EINVAL else alloc t ~order:(order_of_bytes n)

let rec free t ~addr ~order =
  (match Hashtbl.find_opt t.allocated addr with
  | Some o when o = order -> ()
  | Some o ->
    invalid_arg (Printf.sprintf "Buddy.free: 0x%x allocated at order %d, freed at %d" addr o order)
  | None ->
    (* internal recursive frees during coalescing pass a block that is not
       in [allocated]; callers must pass real allocations *)
    ());
  Hashtbl.remove t.allocated addr;
  let buddy = addr lxor (1 lsl order) in
  if order < max_order && Hashtbl.mem t.free_lists.(order) buddy then begin
    Hashtbl.remove t.free_lists.(order) buddy;
    free t ~addr:(min addr buddy) ~order:(order + 1)
  end
  else Hashtbl.replace t.free_lists.(order) addr ()

let free t ~addr ~order =
  if not (Hashtbl.mem t.allocated addr) then
    invalid_arg (Printf.sprintf "Buddy.free: 0x%x not allocated" addr);
  free t ~addr ~order

let free_bytes t =
  let sum = ref 0 in
  Array.iteri (fun o l -> sum := !sum + (Hashtbl.length l * (1 lsl o))) t.free_lists;
  !sum

let largest_free_order t =
  let rec go o =
    if o < min_order then None
    else if Hashtbl.length t.free_lists.(o) > 0 then Some o
    else go (o - 1)
  in
  go max_order

let fragmentation t =
  let free = free_bytes t in
  if free = 0 then 0.0
  else
    match largest_free_order t with
    | None -> 0.0
    | Some o -> 1.0 -. (float_of_int (1 lsl o) /. float_of_int free)

let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  w_i t.total;
  Array.iteri
    (fun o l ->
      let addrs = Hashtbl.fold (fun a () acc -> a :: acc) l [] |> List.sort compare in
      w_i o;
      w_i (List.length addrs);
      List.iter w_i addrs)
    t.free_lists;
  let allocs =
    Hashtbl.fold (fun a o acc -> (a, o) :: acc) t.allocated [] |> List.sort compare
  in
  w_i (List.length allocs);
  List.iter
    (fun (a, o) ->
      w_i a;
      w_i o)
    allocs
