(** Per-core OS interference generators for the FWK baseline.

    Linux noise as the FWQ literature characterizes it: a periodic timer
    tick plus a population of kernel daemons with jittered periods and
    costs. Each core owns independent deterministic streams; the per-core
    daemon sets are sized so cores 0/2/3 show the >5% FWQ spread and core 1
    the ~1.5% spread of the paper's Figs 5–7 (core 1 hosted fewer daemons
    on the measured node).

    The model exposes one operation: walk a computation of [work] cycles
    through the interference timeline and return when it actually
    finishes. Events are consumed lazily and deterministically. *)

type daemon = {
  daemon_name : string;
  period_mean : float;    (** cycles between activations *)
  period_jitter : float;  (** uniform +/- jitter fraction of the period *)
  cost_mean : float;      (** cycles stolen per activation *)
  cost_jitter : float;
}

val default_tick_interval : int
(** 1 kHz at 850 MHz. *)

val default_tick_cost : int

val suse_daemon_set : core:int -> daemon list
(** The paper's measurement environment: a SUSE 2.6.16-era daemon
    population, heavier on cores 0, 2 and 3 than on core 1. *)

val quiet_daemon_set : core:int -> daemon list
(** A "daemons suspended" configuration: ticks only. *)

val io_node_daemon_set : core:int -> daemon list
(** The paper's §V.D Linux baseline environment: BG/P I/O nodes with "NFS
    required to capture results between tests" — the SUSE set plus NFS
    client writeback bursts (rare, tens of microseconds). *)

type t

val create :
  ?tick_interval:int ->
  ?tick_cost:int ->
  daemons:daemon list ->
  rng:Bg_engine.Rng.t ->
  unit ->
  t
(** One core's interference source. [rng] must be a dedicated stream. *)

val advance : t -> start:Bg_engine.Cycles.t -> work:int -> Bg_engine.Cycles.t
(** Finish time of [work] cycles of computation starting at [start],
    including every tick and daemon activation that lands in the window
    (each stolen interval extends the window, possibly admitting more
    events — the walk iterates to the true fixpoint). Calls must be made
    with nondecreasing [start] (a core's timeline moves forward). *)

type steal = { tick : int; daemon : int }
(** Cycles stolen from one window, split by cause. *)

val advance2 : t -> start:Bg_engine.Cycles.t -> work:int -> Bg_engine.Cycles.t * steal
(** Like {!advance}, also reporting the window's steal decomposed into
    timer-tick and daemon cycles — the raw material for per-source noise
    attribution. [advance] is [fst] of this. *)

val stolen_cycles : t -> int
(** Total interference charged so far. *)

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state (tick phase, daemon phases, RNG
    position, stolen-cycle total) into [b], little-endian. *)
