(** Binary buddy allocator for physical page frames.

    This is the Linux-side contrast to CNK's static partitioning: physical
    memory is managed in power-of-two blocks from 4 KiB up. After churn the
    free lists fragment, and the probability of satisfying a large
    contiguous request drops — the "easy to request, may not be granted"
    row of paper Table II, and the reason large physically contiguous
    messaging buffers are hard on a stock Linux (§V.C). *)

type t

val create : bytes:int -> t
(** Manage [bytes] of physical memory (rounded down to a 4 KiB multiple;
    internally split into maximal power-of-two blocks). *)

val min_order : int
(** 12 (4 KiB). *)

val max_order : int
(** 30 (1 GiB). *)

val alloc : t -> order:int -> (int, Errno.t) result
(** Allocate a 2^order-byte block aligned to its size; [ENOMEM] when no
    block of that order (or above, to split) is free. *)

val alloc_bytes : t -> int -> (int, Errno.t) result
(** Allocate the smallest order covering the size. *)

val free : t -> addr:int -> order:int -> unit
(** Return a block; buddies coalesce eagerly. Freeing something that was
    never allocated raises [Invalid_argument]. *)

val free_bytes : t -> int
val largest_free_order : t -> int option
(** The biggest contiguous block currently available — the fragmentation
    probe the §V.C bench uses. *)

val fragmentation : t -> float
(** 1 - largest_free_block/free_bytes; 0 when all free memory is one
    block, approaching 1 under heavy fragmentation. *)

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state (free lists, allocations) into [b],
    little-endian, addresses sorted. *)
