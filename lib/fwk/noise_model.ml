open Bg_engine

type daemon = {
  daemon_name : string;
  period_mean : float;
  period_jitter : float;
  cost_mean : float;
  cost_jitter : float;
}

(* 850 MHz / 1 kHz tick *)
let default_tick_interval = 850_000
let default_tick_cost = 3_000 (* ~3.5 us tick handler *)

(* Calibrated so FWQ over 658,958-cycle quanta shows ~5-6% max spread on
   the heavy cores and ~1.5% on the light one (paper Figs 5-7). *)
let heavy =
  [
    { daemon_name = "kswapd"; period_mean = 85e6; period_jitter = 0.5; cost_mean = 22_000.0; cost_jitter = 0.4 };
    { daemon_name = "pdflush"; period_mean = 42e6; period_jitter = 0.5; cost_mean = 14_000.0; cost_jitter = 0.5 };
    { daemon_name = "events/k"; period_mean = 8.5e6; period_jitter = 0.4; cost_mean = 5_500.0; cost_jitter = 0.4 };
    { daemon_name = "rcu"; period_mean = 4.2e6; period_jitter = 0.3; cost_mean = 2_500.0; cost_jitter = 0.3 };
  ]

let light =
  [
    { daemon_name = "rcu"; period_mean = 4.2e6; period_jitter = 0.3; cost_mean = 2_500.0; cost_jitter = 0.3 };
  ]

let suse_daemon_set ~core = if core = 1 then light else heavy
let quiet_daemon_set ~core:_ = []

(* NFS client writeback: rare but long stalls (tens of microseconds) on
   whichever core the rpciod/flush kthreads land on. *)
let nfs =
  [
    { daemon_name = "rpciod"; period_mean = 120e6; period_jitter = 0.6; cost_mean = 30_000.0; cost_jitter = 0.6 };
    { daemon_name = "nfs-flush"; period_mean = 300e6; period_jitter = 0.7; cost_mean = 80_000.0; cost_jitter = 0.5 };
  ]

let io_node_daemon_set ~core = suse_daemon_set ~core @ nfs

type source = { daemon : daemon; mutable next_at : float }

type t = {
  tick_interval : int;
  tick_cost : int;
  sources : source list;
  rng : Rng.t;
  mutable next_tick : int;
  mutable stolen : int;
}

let create ?(tick_interval = default_tick_interval) ?(tick_cost = default_tick_cost)
    ~daemons ~rng () =
  let sources =
    List.map
      (fun d -> { daemon = d; next_at = Rng.float rng d.period_mean })
      daemons
  in
  { tick_interval; tick_cost; sources; rng; next_tick = tick_interval; stolen = 0 }

let draw rng mean jitter =
  let lo = mean *. (1.0 -. jitter) and hi = mean *. (1.0 +. jitter) in
  lo +. Rng.float rng (max 1.0 (hi -. lo))

type steal = { tick : int; daemon : int }

(* Pop the earliest interference event at or before [deadline], if any.
   Returns its cost, tagged tick-or-daemon, and advances that source. *)
let pop_event t deadline =
  let tick_time = t.next_tick in
  let best_daemon =
    List.fold_left
      (fun acc s ->
        match acc with
        | Some best when best.next_at <= s.next_at -> acc
        | _ -> Some s)
      None t.sources
  in
  let daemon_time =
    match best_daemon with Some s -> int_of_float s.next_at | None -> max_int
  in
  if tick_time <= daemon_time && tick_time <= deadline then begin
    t.next_tick <- t.next_tick + t.tick_interval;
    let cost = t.tick_cost + Rng.int t.rng (t.tick_cost / 4) in
    Some (`Tick, cost)
  end
  else if daemon_time <= deadline then begin
    match best_daemon with
    | None -> None
    | Some s ->
      let d = s.daemon in
      s.next_at <- s.next_at +. draw t.rng d.period_mean d.period_jitter;
      Some (`Daemon, int_of_float (draw t.rng d.cost_mean d.cost_jitter))
    end
  else None

let advance2 t ~start ~work =
  (* Skip events that would have fired while the core was idle: the
     timeline starts at [start]. *)
  if t.next_tick < start then begin
    let missed = (start - t.next_tick) / t.tick_interval in
    t.next_tick <- t.next_tick + ((missed + 1) * t.tick_interval)
  end;
  List.iter
    (fun (s : source) ->
      let d = s.daemon in
      while s.next_at < float_of_int start do
        s.next_at <- s.next_at +. draw t.rng d.period_mean d.period_jitter
      done)
    t.sources;
  let finish = ref (start + work) in
  let tick = ref 0 in
  let daemon = ref 0 in
  let continue = ref true in
  while !continue do
    match pop_event t !finish with
    | Some (kind, cost) ->
      t.stolen <- t.stolen + cost;
      (match kind with
      | `Tick -> tick := !tick + cost
      | `Daemon -> daemon := !daemon + cost);
      finish := !finish + cost
    | None -> continue := false
  done;
  (!finish, { tick = !tick; daemon = !daemon })

let advance t ~start ~work = fst (advance2 t ~start ~work)

let stolen_cycles t = t.stolen

let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  w_i t.tick_interval;
  w_i t.tick_cost;
  w_i t.next_tick;
  w_i t.stolen;
  Buffer.add_int64_le b (Rng.state t.rng);
  w_i (List.length t.sources);
  List.iter
    (fun (s : source) ->
      w_i (String.length s.daemon.daemon_name);
      Buffer.add_string b s.daemon.daemon_name;
      Buffer.add_int64_le b (Int64.bits_of_float s.next_at))
    t.sources
