(** The full-weight-kernel baseline: a Linux-like compute-node kernel.

    Implements the same syscall ABI as CNK so the {e same} program images
    and runtime (glibc veneers, pthreads, malloc) run on both — the
    "standard applications out of the box" side of the paper's FWK/LWK
    comparison. The differences are exactly the ones the paper evaluates:

    - {b Preemptive scheduling}: 1 kHz timer tick, 10 ms time slices,
      round-robin per core, no per-core thread limit (overcommit allowed,
      Table II).
    - {b Noise}: per-core daemon populations ({!Noise_model}) steal cycles
      at jittered intervals — the Figs 5–7 Linux spread.
    - {b Demand-paged memory}: 4 KiB pages faulted in from a {!Buddy}
      allocator on first touch, hardware TLB filled on demand with FIFO
      eviction; translation misses cost cycles at unpredictable times
      (§IV.C). The user address space tops out at 3 GB (§VII.A).
    - {b Local I/O}: the POSIX calls run in-kernel against a local
      filesystem (no function shipping), with Linux-scale syscall costs.
    - {b No static map}: Query_map/Query_vtop return ENOSYS — user space
      cannot learn virtual-to-physical here, which is what blocks
      user-space DMA (§V.C).
    - {b Slow boot}: {!boot_cycles_full} ("weeks" at 10 Hz VHDL speed)
      vs a stripped build's {!boot_cycles_stripped} ("days"). *)

type t

val create :
  ?noise_seed:int64 ->
  ?daemons:(core:int -> Noise_model.daemon list) ->
  ?tick_interval:int ->
  ?stripped:bool ->
  Machine.t ->
  rank:int ->
  unit ->
  t
(** [noise_seed] seeds the daemon jitter streams; by default it derives
    from the machine instance, modeling the uncontrolled variability that
    makes Linux runs non-reproducible (§III). [daemons] defaults to
    {!Noise_model.suse_daemon_set}. [tick_interval] overrides the 1 kHz
    timer tick period (a huge value effectively disables the tick
    scheduler — the messaging benches' quiet baseline). *)

val machine : t -> Machine.t
val rank : t -> int
val fs : t -> Bg_cio.Fs.t

val boot_cycles_full : int
val boot_cycles_stripped : int
val boot : t -> on_ready:(unit -> unit) -> unit
val booted : t -> bool

val launch : t -> Job.t -> (unit, string) result
(** One process per job in this baseline (the noise and paging benches are
    single-process); threads spread across all four cores. *)

val job_active : t -> bool
val on_job_complete : t -> (unit -> unit) -> unit

val live_threads : t -> int
val faults : t -> (int * string) list
val minor_faults : t -> int
(** Anonymous demand-paging events taken so far. *)

val major_faults : t -> int
(** File-backed faults: pages read from the VFS at first touch. CNK has no
    equivalent — it copies whole files at map time (§IV.B.2), so its
    dynamic-linking noise is confined to startup. *)

val reclaims : t -> int
(** File-backed pages discarded under memory pressure and later re-read —
    the unified-page-cache behaviour CNK deliberately lacks (§VI.B). *)

val tlb_refills : t -> int
val stolen_cycles : t -> int
(** Total interference injected across cores. *)

val try_alloc_contiguous : t -> bytes:int -> bool
(** Probe: can the buddy allocator currently produce one physically
    contiguous block of [bytes]? (Frees it again.) The Table II
    "easy to request, may not be granted" experiment. *)

val churn : t -> allocations:int -> seed:int64 -> unit
(** Fragment physical memory with a deterministic alloc/free pattern. *)

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state, little-endian, into [b]. Hashtable
    contents are sorted before writing; closures are captured by shape
    only (presence, tids, queue order). *)
