(** The Table I messaging harness: one two-rank sweep, three kernels.

    Runs the same DCMF put / eager / rendezvous latency sweep and bulk
    bandwidth measurement over the descriptor-based DMA engine on:

    - {!Cnk_user}: CNK with the injection FIFOs, completion counters and
      reception FIFO memory-mapped into the application ([Dma_user]);
    - {!Fwk_quiet}: the FWK routing every injection and poll through
      [Dma_inject]/[Dma_poll] syscalls, tick scheduler disabled — the
      best case a Linux-class kernel can offer ([Dma_kernel]);
    - {!Fwk_tick}: the same kernel-mediated path with the 1 kHz tick
      enabled, which preempts the injection path mid-measurement.

    All cells are seeded and deterministic: {!digest} over two identical
    runs must match. *)

type cell = Cnk_user | Fwk_quiet | Fwk_tick

val cell_name : cell -> string

val layers : string list
(** ["dcmf_put"; "dcmf_eager"; "dcmf_rndv"] *)

type result = {
  cell : cell;
  sizes : int list;
  reps : int;                             (** repetitions summed per point *)
  latency : (string * int * int) list;
      (** (layer, bytes, one-way cycles summed over [reps]) *)
  bandwidth : (string * int * int) list;  (** (mode, bytes, transfer cycles) *)
  descriptors : int;                      (** rank 0 injections over the run *)
  wall : int;
      (** rank 0's cycles across the whole sweep, first barrier to last —
          absorbs every tick preemption, so the quiet/tick gap metric is
          robust to per-sample interleaving wobble *)
}

val default_sizes : int list

val default_reps : int
(** Chosen so the FWK sweep spans several 1 kHz tick periods. *)

val bw_bytes : int

val run_cnk : ?sizes:int list -> ?reps:int -> unit -> result
val run_fwk : ?sizes:int list -> ?reps:int -> tick:bool -> unit -> result
val run_all : ?sizes:int list -> ?reps:int -> unit -> result list
(** [CNK; FWK quiet; FWK tick], in that order. *)

val find_latency : result -> layer:string -> bytes:int -> int option

val crossover : result -> int option
(** Smallest size at which rendezvous beats eager, if any. *)

val total_latency : result -> int
(** Sum of all measured one-way latencies. The gap-widening check uses
    {!field-wall} instead: the latency sum is quantized by the
    receiver's poll loop, so tick cost landing between samples can hide
    there. *)

val digest : result list -> string
(** FNV-1a over every measured value; bit-stable across identical runs. *)

val us_of_cycles : int -> float
val mb_s_of : bytes:int -> cycles:int -> float
val pp_table : Format.formatter -> result list -> unit
val to_json : result list -> string
