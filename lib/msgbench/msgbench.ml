open Bg_engine
open Bg_msg

(* The Table I harness: the same two-rank messaging sweep run on three
   cells — CNK with the DMA unit memory-mapped into user space, the FWK
   with every injection and poll trapped through Dma_inject/Dma_poll
   syscalls (tick scheduler disabled: the quiet baseline), and the same
   kernel-mediated path with the 1 kHz tick enabled. Rank 0 sends to its
   torus neighbor rank 1; one-way latencies are receiver-timestamped via
   rdtsc against a shared send-timestamp mailbox. *)

type cell = Cnk_user | Fwk_quiet | Fwk_tick

let cell_name = function
  | Cnk_user -> "cnk_user"
  | Fwk_quiet -> "fwk_kernel"
  | Fwk_tick -> "fwk_kernel_tick"

let layers = [ "dcmf_put"; "dcmf_eager"; "dcmf_rndv" ]

type result = {
  cell : cell;
  sizes : int list;
  reps : int;
  latency : (string * int * int) list;    (* (layer, bytes, cycles over reps) *)
  bandwidth : (string * int * int) list;  (* (mode, bytes, transfer cycles) *)
  descriptors : int;                      (* rank 0 injections over the run *)
  wall : int;                             (* rank 0 cycles, whole sweep *)
}

let default_sizes = [ 32; 256; 1024; 4096; 16384 ]

let default_reps = 12
(* Enough repetitions that the FWK sweep spans several 1 kHz tick
   periods — a single pass fits inside one tick interval and would never
   observe the preemption the Fwk_tick cell exists to measure. *)

let bw_bytes = 1 lsl 20

(* --- the per-rank program ------------------------------------------- *)

(* Runs identically on every cell; only the ctx's fabric path differs.
   [record layer bytes cycles] lands in host arrays — measurement
   metadata, free of simulated cost — accumulating over [reps]. *)
let bench_program ~sizes ~reps ~send_t0 ~record r ctx =
  let barrier () = Dcmf.barrier_via_hw ctx in
  barrier ();
  let t_sweep = Coro.rdtsc () in
  List.iteri
    (fun i size ->
      let data = Bytes.make size 'x' in
      if r = 1 then Dcmf.register ctx ~tag:(100 + i) ~bytes:size;
      barrier ();
      for _ = 1 to reps do
        (* one-sided put: completion counter hits zero at remote arrival,
           so the sender alone can stamp the one-way latency *)
        if r = 0 then begin
          let t0 = Coro.rdtsc () in
          let h = Dcmf.put ctx ~dst:1 ~tag:(100 + i) ~data in
          Dcmf.wait h;
          record "dcmf_put" size (Dcmf.completion_cycle h - t0)
        end;
        barrier ();
        (* two-sided eager: receiver stamps when the payload is drained
           and dispatched out of the reception FIFO *)
        if r = 0 then begin
          send_t0 := Coro.rdtsc ();
          let h = Dcmf.send_eager ctx ~dst:1 ~tag:(200 + i) ~data in
          Dcmf.wait h
        end
        else begin
          let rec spin () =
            match Dcmf.try_recv_eager ctx ~tag:(200 + i) with
            | Some _ -> record "dcmf_eager" size (Coro.rdtsc () - !send_t0)
            | None ->
              Coro.consume 100;
              spin ()
          in
          spin ()
        end;
        barrier ();
        (* rendezvous: RTS out, receiver rDMA-gets the payload, FIN back *)
        if r = 0 then begin
          send_t0 := Coro.rdtsc ();
          Dcmf.send_rendezvous ctx ~dst:1 ~tag:(300 + i) ~data
        end
        else begin
          let got = Dcmf.recv_rendezvous ctx ~src:0 ~tag:(300 + i) in
          record "dcmf_rndv" size (Coro.rdtsc () - !send_t0);
          assert (Bytes.length got = size)
        end;
        barrier ()
      done)
    sizes;
  (* bulk bandwidth: one contiguous descriptor vs the 4 KiB-fragment
     bounce-copy path (Fig 8's contrast) *)
  if r = 0 then begin
    let t0 = Coro.rdtsc () in
    let h = Dcmf.put_large ctx ~dst:1 ~tag:99 ~bytes:bw_bytes ~contiguous:true in
    Dcmf.wait h;
    record "bw_contiguous" bw_bytes (Dcmf.completion_cycle h - t0)
  end;
  barrier ();
  if r = 0 then begin
    let t0 = Coro.rdtsc () in
    let h = Dcmf.put_large ctx ~dst:1 ~tag:98 ~bytes:bw_bytes ~contiguous:false in
    Dcmf.wait h;
    record "bw_fragmented" bw_bytes (Dcmf.completion_cycle h - t0)
  end;
  barrier ();
  (* whole-sweep wall time on rank 0: every tick preemption the kernel
     charges anywhere in the sweep lands here, so the quiet/tick gap is
     robust to the sample-level interleaving wobble of the per-message
     latencies *)
  if r = 0 then record "wall" 0 (Coro.rdtsc () - t_sweep)

(* --- cells ----------------------------------------------------------- *)

let collect cell sizes reps out descriptors =
  let latency =
    List.concat_map
      (fun layer ->
        List.filter_map
          (fun size ->
            match Hashtbl.find_opt out (layer, size) with
            | Some cy -> Some (layer, size, cy)
            | None -> None)
          sizes)
      layers
  in
  let bandwidth =
    List.filter_map
      (fun mode ->
        match Hashtbl.find_opt out (mode, bw_bytes) with
        | Some cy -> Some (mode, bw_bytes, cy)
        | None -> None)
      [ "bw_contiguous"; "bw_fragmented" ]
  in
  let wall = Option.value ~default:0 (Hashtbl.find_opt out ("wall", 0)) in
  { cell; sizes; reps; latency; bandwidth; descriptors; wall }

let run_cnk ?(sizes = default_sizes) ?(reps = default_reps) () =
  let cluster = Cnk.Cluster.create ~dims:(2, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let fabric =
    Dcmf.make_fabric ~path:Dcmf.Dma_user (Cnk.Cluster.machine cluster)
  in
  let c0 = Dcmf.attach fabric ~rank:0 in
  ignore (Dcmf.attach fabric ~rank:1);
  let out = Hashtbl.create 32 in
  let send_t0 = ref 0 in
  let record layer bytes cycles =
    let prev = Option.value ~default:0 (Hashtbl.find_opt out (layer, bytes)) in
    Hashtbl.replace out (layer, bytes) (prev + cycles)
  in
  let image =
    Image.executable ~name:"msgbench" (fun () ->
        let r = Bg_rt.Libc.rank () in
        bench_program ~sizes ~reps ~send_t0 ~record r (Dcmf.attach fabric ~rank:r))
  in
  Cnk.Cluster.run_job cluster (Job.create ~name:"msgbench" image);
  Array.iter
    (fun node ->
      match Cnk.Node.faults node with
      | [] -> ()
      | (_, m) :: _ -> failwith ("Msgbench: CNK fault: " ^ m))
    (Cnk.Cluster.nodes cluster);
  collect Cnk_user sizes reps out (Dcmf.injected_descriptors c0)

let quiet_daemons ~core:_ = []

let run_fwk ?(sizes = default_sizes) ?(reps = default_reps) ~tick () =
  let machine = Machine.create ~dims:(2, 1, 1) () in
  let fabric = Dcmf.make_fabric ~path:Dcmf.Dma_kernel machine in
  let c0 = Dcmf.attach fabric ~rank:0 in
  ignore (Dcmf.attach fabric ~rank:1);
  let out = Hashtbl.create 32 in
  let send_t0 = ref 0 in
  let record layer bytes cycles =
    let prev = Option.value ~default:0 (Hashtbl.find_opt out (layer, bytes)) in
    Hashtbl.replace out (layer, bytes) (prev + cycles)
  in
  (* daemons off in both FWK cells so the quiet/tick contrast isolates
     the tick scheduler; seeds are fixed for reproducibility *)
  let tick_interval = if tick then None else Some (1 lsl 50) in
  let finished = Array.make 2 false in
  let nodes =
    Array.init 2 (fun rank ->
        Bg_fwk.Node.create
          ~noise_seed:(Int64.of_int (7_000 + rank))
          ~daemons:quiet_daemons ?tick_interval machine ~rank ~stripped:true ())
  in
  Array.iteri
    (fun rank node ->
      Bg_fwk.Node.boot node ~on_ready:(fun () ->
          Bg_fwk.Node.on_job_complete node (fun () -> finished.(rank) <- true);
          let image =
            Image.executable ~name:"msgbench" (fun () ->
                bench_program ~sizes ~reps ~send_t0 ~record rank
                  (Dcmf.attach fabric ~rank))
          in
          match Bg_fwk.Node.launch node (Job.create ~name:"msgbench" image) with
          | Ok () -> ()
          | Error e -> failwith e))
    nodes;
  ignore (Sim.run machine.Machine.sim);
  Array.iteri
    (fun rank node ->
      if not finished.(rank) then
        failwith (Printf.sprintf "Msgbench: FWK rank %d did not finish" rank);
      match Bg_fwk.Node.faults node with
      | [] -> ()
      | (_, m) :: _ -> failwith ("Msgbench: FWK fault: " ^ m))
    nodes;
  collect (if tick then Fwk_tick else Fwk_quiet) sizes reps out
    (Dcmf.injected_descriptors c0)

let run_all ?(sizes = default_sizes) ?(reps = default_reps) () =
  [
    run_cnk ~sizes ~reps ();
    run_fwk ~sizes ~reps ~tick:false ();
    run_fwk ~sizes ~reps ~tick:true ();
  ]

(* --- analysis -------------------------------------------------------- *)

let find_latency r ~layer ~bytes =
  let rec go = function
    | [] -> None
    | (l, b, cy) :: _ when l = layer && b = bytes -> Some cy
    | _ :: rest -> go rest
  in
  go r.latency

(* Smallest size at which rendezvous beats eager (the Table I crossover);
   None when one protocol dominates the whole sweep. *)
let crossover r =
  let rec go = function
    | [] -> None
    | size :: rest -> (
      match (find_latency r ~layer:"dcmf_eager" ~bytes:size,
             find_latency r ~layer:"dcmf_rndv" ~bytes:size)
      with
      | Some e, Some v when v < e -> Some size
      | _ -> go rest)
  in
  go r.sizes

let total_latency r = List.fold_left (fun acc (_, _, cy) -> acc + cy) 0 r.latency

let digest results =
  let h = ref Fnv.empty in
  List.iter
    (fun r ->
      h := Fnv.add_string !h (cell_name r.cell);
      List.iter
        (fun (l, b, cy) ->
          h := Fnv.add_string !h l;
          h := Fnv.add_int !h b;
          h := Fnv.add_int !h cy)
        r.latency;
      List.iter
        (fun (m, b, cy) ->
          h := Fnv.add_string !h m;
          h := Fnv.add_int !h b;
          h := Fnv.add_int !h cy)
        r.bandwidth;
      h := Fnv.add_int !h r.descriptors;
      h := Fnv.add_int !h r.wall)
    results;
  Fnv.to_hex !h

(* --- rendering ------------------------------------------------------- *)

let us_of_cycles cy = float_of_int cy /. 850.0

let mb_s_of ~bytes ~cycles =
  float_of_int bytes /. (float_of_int cycles /. 850e6) /. 1.0e6

let pp_table ppf results =
  let find cell = List.find_opt (fun r -> r.cell = cell) results in
  let cells = [ Cnk_user; Fwk_quiet; Fwk_tick ] in
  Format.fprintf ppf
    "# one-way latency (us), 2-node torus, 1 hop, 850 MHz (paper Table I)@.";
  Format.fprintf ppf "%-12s %8s" "layer" "bytes";
  List.iter
    (fun c ->
      match find c with
      | Some _ -> Format.fprintf ppf " %15s" (cell_name c)
      | None -> ())
    cells;
  Format.fprintf ppf "@.";
  (match find Cnk_user with
  | None -> ()
  | Some r0 ->
    List.iter
      (fun layer ->
        List.iter
          (fun size ->
            if find_latency r0 ~layer ~bytes:size <> None then begin
              Format.fprintf ppf "%-12s %8d" layer size;
              List.iter
                (fun c ->
                  match find c with
                  | Some r -> (
                    match find_latency r ~layer ~bytes:size with
                    | Some cy ->
                      Format.fprintf ppf " %15.2f" (us_of_cycles (cy / r.reps))
                    | None -> Format.fprintf ppf " %15s" "-")
                  | None -> ())
                cells;
              Format.fprintf ppf "@."
            end)
          r0.sizes)
      layers);
  List.iter
    (fun r ->
      List.iter
        (fun (mode, bytes, cycles) ->
          Format.fprintf ppf "bandwidth %s %s %d bytes: %.0f MB/s@."
            (cell_name r.cell) mode bytes (mb_s_of ~bytes ~cycles))
        r.bandwidth;
      (match crossover r with
      | Some s ->
        Format.fprintf ppf "crossover %s: rendezvous wins from %d bytes@."
          (cell_name r.cell) s
      | None ->
        Format.fprintf ppf "crossover %s: none in sweep@." (cell_name r.cell));
      Format.fprintf ppf "descriptors %s: %d injected on rank 0@."
        (cell_name r.cell) r.descriptors;
      Format.fprintf ppf "wall %s: %.1f us@." (cell_name r.cell)
        (us_of_cycles r.wall))
    results

let to_json results =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"benchmark\": \"msg\",\n  \"cells\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf "    {\"cell\": \"%s\", \"descriptors\": %d, \"wall_us\": %.1f,\n"
           (cell_name r.cell) r.descriptors (us_of_cycles r.wall));
      Buffer.add_string b "     \"latency_us\": [";
      List.iteri
        (fun j (l, by, cy) ->
          if j > 0 then Buffer.add_string b ", ";
          Buffer.add_string b
            (Printf.sprintf "{\"layer\": \"%s\", \"bytes\": %d, \"us\": %.3f}" l
               by (us_of_cycles (cy / r.reps))))
        r.latency;
      Buffer.add_string b "],\n     \"bandwidth_mb_s\": [";
      List.iteri
        (fun j (m, by, cy) ->
          if j > 0 then Buffer.add_string b ", ";
          Buffer.add_string b
            (Printf.sprintf "{\"mode\": \"%s\", \"bytes\": %d, \"mb_s\": %.1f}"
               m by (mb_s_of ~bytes:by ~cycles:cy)))
        r.bandwidth;
      Buffer.add_string b "],\n";
      Buffer.add_string b
        (match crossover r with
        | Some s -> Printf.sprintf "     \"crossover_bytes\": %d}" s
        | None -> "     \"crossover_bytes\": null}"))
    results;
  Buffer.add_string b
    (Printf.sprintf "\n  ],\n  \"digest\": \"%s\"\n}\n" (digest results));
  Buffer.contents b
