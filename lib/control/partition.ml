type allocation = {
  id : int;
  base : int * int * int;
  shape : int * int * int;
  ranks : int list;
}

type t = {
  dims : int * int * int;
  occupied : bool array;  (* indexed by rank *)
  down : bool array;      (* RAS marked the node dead; never allocate *)
  spare : bool array;     (* held in reserve; activated by [substitute] *)
  mutable substitutions : int;
  mutable live : allocation list;
  mutable next_id : int;
}

let create ~dims =
  let x, y, z = dims in
  if x <= 0 || y <= 0 || z <= 0 then invalid_arg "Partition.create";
  {
    dims;
    occupied = Array.make (x * y * z) false;
    down = Array.make (x * y * z) false;
    spare = Array.make (x * y * z) false;
    substitutions = 0;
    live = [];
    next_id = 1;
  }

let rank_of t (cx, cy, cz) =
  let x, y, _ = t.dims in
  cx + (cy * x) + (cz * x * y)

let box_ranks t (bx, by, bz) (sx, sy, sz) =
  List.concat_map
    (fun dz ->
      List.concat_map
        (fun dy -> List.init sx (fun dx -> rank_of t (bx + dx, by + dy, bz + dz)))
        (List.init sy Fun.id))
    (List.init sz Fun.id)
  |> List.sort compare

let rank_free t r = (not t.occupied.(r)) && (not t.down.(r)) && not t.spare.(r)

let box_in_bounds t (bx, by, bz) (sx, sy, sz) =
  let x, y, z = t.dims in
  bx >= 0 && by >= 0 && bz >= 0 && bx + sx <= x && by + sy <= y && bz + sz <= z

let free_box t ~base ~shape =
  box_in_bounds t base shape && List.for_all (rank_free t) (box_ranks t base shape)

let ranks_of_box t ~base ~shape =
  if not (box_in_bounds t base shape) then invalid_arg "Partition.ranks_of_box"
  else box_ranks t base shape

let free_bases t ~shape =
  let x, y, z = t.dims in
  let sx, sy, sz = shape in
  if sx <= 0 || sy <= 0 || sz <= 0 || sx > x || sy > y || sz > z then []
  else begin
    let acc = ref [] in
    for bz = z - sz downto 0 do
      for by = y - sy downto 0 do
        for bx = x - sx downto 0 do
          if free_box t ~base:(bx, by, bz) ~shape then acc := (bx, by, bz) :: !acc
        done
      done
    done;
    !acc
  end

let commit t base shape ranks =
  List.iter (fun r -> t.occupied.(r) <- true) ranks;
  let a = { id = t.next_id; base; shape; ranks } in
  t.next_id <- t.next_id + 1;
  t.live <- a :: t.live;
  Ok a

let allocate ?base t ~shape =
  let x, y, z = t.dims in
  let sx, sy, sz = shape in
  if sx <= 0 || sy <= 0 || sz <= 0 then Error "bad shape"
  else if sx > x || sy > y || sz > z then Error "shape exceeds the machine"
  else
    match base with
    | Some b ->
      (* placement-directed: the caller (a torus-aware placer) already
         chose the box; allocate exactly there or fail *)
      if free_box t ~base:b ~shape then commit t b shape (box_ranks t b shape)
      else Error "requested base not free"
    | None -> begin
      (* first fit over base coordinates, z-major like rank order *)
      let found = ref None in
      (try
         for bz = 0 to z - sz do
           for by = 0 to y - sy do
             for bx = 0 to x - sx do
               if !found = None then begin
                 let ranks = box_ranks t (bx, by, bz) shape in
                 if List.for_all (rank_free t) ranks then begin
                   found := Some ((bx, by, bz), ranks);
                   raise Exit
                 end
               end
             done
           done
         done
       with Exit -> ());
      match !found with
      | None -> Error "no free partition of that shape"
      | Some (base, ranks) -> commit t base shape ranks
    end

let release t id =
  match List.find_opt (fun a -> a.id = id) t.live with
  | None -> invalid_arg "Partition.release: unknown id"
  | Some a ->
    List.iter (fun r -> t.occupied.(r) <- false) a.ranks;
    t.live <- List.filter (fun x -> x.id <> id) t.live

let free_nodes t =
  let free = ref 0 in
  Array.iteri
    (fun r o -> if (not o) && (not t.down.(r)) && not t.spare.(r) then incr free)
    t.occupied;
  !free

let allocated t = List.rev t.live
let total_nodes t = Array.length t.occupied

let set_down t ~rank down =
  if rank < 0 || rank >= Array.length t.down then invalid_arg "Partition.set_down";
  t.down.(rank) <- down

let is_down t ~rank = t.down.(rank)

let down_nodes t =
  let acc = ref [] in
  Array.iteri (fun r d -> if d then acc := r :: !acc) t.down;
  List.rev !acc

(* -- spare pool ------------------------------------------------------

   Spares sit outside the allocatable pool until a node death spends
   one: [substitute] returns the lowest-ranked spare to the pool so the
   next allocation finds a full-strength machine even though the dead
   rank never comes back. *)

let set_spare t ~rank flag =
  if rank < 0 || rank >= Array.length t.spare then invalid_arg "Partition.set_spare";
  if flag && (t.occupied.(rank) || t.down.(rank)) then
    invalid_arg "Partition.set_spare: rank is occupied or down";
  t.spare.(rank) <- flag

let spare_ranks t =
  let acc = ref [] in
  Array.iteri (fun r s -> if s then acc := r :: !acc) t.spare;
  List.rev !acc

let substitutions t = t.substitutions

let substitute t ~dead:_ =
  let rec find r =
    if r >= Array.length t.spare then None
    else if t.spare.(r) && not t.down.(r) then begin
      t.spare.(r) <- false;
      t.substitutions <- t.substitutions + 1;
      Some r
    end
    else find (r + 1)
  in
  find 0

let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  let x, y, z = t.dims in
  w_i x;
  w_i y;
  w_i z;
  w_i t.next_id;
  w_i t.substitutions;
  Array.iter (fun o -> Buffer.add_uint8 b (if o then 1 else 0)) t.occupied;
  Array.iter (fun d -> Buffer.add_uint8 b (if d then 1 else 0)) t.down;
  Array.iter (fun s -> Buffer.add_uint8 b (if s then 1 else 0)) t.spare;
  let live = allocated t in
  w_i (List.length live);
  List.iter
    (fun a ->
      w_i a.id;
      let bx, by, bz = a.base in
      let sx, sy, sz = a.shape in
      w_i bx;
      w_i by;
      w_i bz;
      w_i sx;
      w_i sy;
      w_i sz;
      w_i (List.length a.ranks);
      List.iter w_i a.ranks)
    live
