(** Torus partition allocation — the service-node side of job launch.

    Blue Gene machines are space-shared: the control system carves the
    torus into electrically-isolated rectangular blocks and gives each job
    one. This allocator keeps a 3D occupancy map and places axis-aligned
    boxes first-fit in rank order; isolation means a partition's ranks
    never overlap another's (asserted by tests). *)

type allocation = {
  id : int;
  base : int * int * int;
  shape : int * int * int;
  ranks : int list;  (** torus ranks of the member nodes, ascending *)
}

type t

val create : dims:int * int * int -> t

val allocate :
  ?base:int * int * int -> t -> shape:int * int * int -> (allocation, string) result
(** First-fit placement of an axis-aligned box ([shape] must fit within
    the machine dims; no wraparound). Fails when no box of that shape is
    free. With [?base] the box is placed exactly there (or the call
    fails) — the hook a torus-aware placer uses to pin a job onto the
    least-congested free region it scored. *)

val free_box : t -> base:int * int * int -> shape:int * int * int -> bool
(** Is the axis-aligned box at [base] entirely free (in bounds, no
    member occupied, down, or held as spare)? *)

val free_bases : t -> shape:int * int * int -> (int * int * int) list
(** Every base coordinate where [shape] could be allocated right now,
    in z-major (rank) order. Empty for impossible shapes. *)

val ranks_of_box : t -> base:int * int * int -> shape:int * int * int -> int list
(** Member ranks of the box, ascending — for scoring a candidate
    placement before committing to it. Raises [Invalid_argument] when
    the box exceeds the machine. *)

val release : t -> int -> unit
(** Free an allocation by id; unknown ids raise [Invalid_argument]. *)

val free_nodes : t -> int
(** Nodes neither occupied nor marked down. *)

val allocated : t -> allocation list
val total_nodes : t -> int

val set_down : t -> rank:int -> bool -> unit
(** Mark a node dead (or revived). Down nodes are skipped by {!allocate};
    the RAS/recovery path flips this when a node death event arrives. *)

val is_down : t -> rank:int -> bool

val down_nodes : t -> int list
(** Ranks currently marked down, ascending. *)

val set_spare : t -> rank:int -> bool -> unit
(** Hold a free node in reserve: spares are skipped by {!allocate} (and
    excluded from {!free_nodes}) until {!substitute} activates them.
    Raises [Invalid_argument] when reserving an occupied or down rank. *)

val spare_ranks : t -> int list
(** Ranks currently held as spares, ascending. *)

val substitute : t -> dead:int -> int option
(** Spend one spare to cover a dead node: the lowest-ranked live spare
    re-enters the allocatable pool and is returned. [None] when the
    spare pool is exhausted — the machine shrinks instead. *)

val substitutions : t -> int
(** How many spares have been activated so far. *)

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state (occupancy, down set, live
    allocations) into [b], little-endian. *)
