(** Indexed pending-job queue.

    The scheduler's waiting line used to be a plain list, which made the
    hot control-plane paths quadratic once thousands of jobs queue up:
    every submit walked the list to append, every backfill pick and
    requeue rebuilt it. This structure keeps FIFO order in an intrusive
    doubly-linked list with a key index on the side, so append,
    push-front and removal by key are all O(1) while iteration order
    stays exactly the old list order.

    Keys are unique (the scheduler uses job ids); inserting a key that is
    already present raises [Invalid_argument]. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val mem : 'a t -> int -> bool

val append : 'a t -> key:int -> 'a -> unit
(** Enqueue at the tail (normal submission order). O(1). *)

val push_front : 'a t -> key:int -> 'a -> unit
(** Enqueue at the head (restart requeue preempts the line). O(1). *)

val remove : 'a t -> int -> 'a option
(** Unlink by key; [None] when absent. O(1). *)

val find : 'a t -> int -> 'a option
val peek : 'a t -> (int * 'a) option
(** Head of the line without removing it. *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Head-to-tail. The callback must not mutate the queue. *)

val fold : 'a t -> init:'b -> f:('b -> int -> 'a -> 'b) -> 'b
val to_list : 'a t -> (int * 'a) list
(** Head-to-tail snapshot; safe to mutate the queue afterwards. *)

val keys : 'a t -> int list
