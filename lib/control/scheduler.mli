(** The control-system job scheduler.

    Space-shares a booted {!Cnk.Cluster} among queued jobs: each job asks
    for a partition shape; the scheduler allocates it (FIFO, with optional
    backfill of smaller jobs past a blocked head), launches the job on the
    partition's ranks, and releases the partition when every member node
    reports completion. Because everything runs in one deterministic
    simulation, schedules are reproducible.

    The pending queue is an indexed structure ({!Jobq}): submits, restart
    requeues and backfill removals are O(1), so the offer/kick paths stay
    linear even with thousands of queued jobs.

    The pick logic is pluggable: {!set_dispatch} replaces the built-in
    FIFO/backfill scan with an external strategy (see the [Bg_sched]
    library for FCFS, EASY backfill, gang and fair-share strategies over
    torus-aware placement), which drives {!start_job}/{!start_jobs}
    directly.

    The resilience path (paper §V.B): {!node_failed} marks a node down in
    the allocator and kills the running job that spans it; a job submitted
    with a restart budget is then requeued at the head of the line and
    reallocated — excluding down nodes — so a checkpointed application can
    resume from its last committed state. *)

type job_id = int

type job_state =
  | Queued
  | Running of int list  (** the partition's ranks *)
  | Completed of Bg_engine.Cycles.t  (** completion cycle *)
  | Failed of Bg_engine.Cycles.t
      (** a job with a restart budget exhausted it (jobs without one
          always report [Completed], matching classic batch semantics);
          also the terminal state of a shed backfill job *)

type job_class =
  | Batch  (** the default: users are waiting on it *)
  | Backfill_class
      (** opportunistic filler — first to be shed when the machine
          degrades (see {!shed_backfill}) *)

(** Read-only view of a queued job, for pluggable strategies. *)
type job_info = {
  info_jid : job_id;
  info_shape : int * int * int;
  info_cls : job_class;
  info_tenant : int option;
  info_gang : int option;
  info_est : int option;  (** runtime estimate (cycles), if supplied *)
  info_walltime : int option;
  info_submitted : Bg_engine.Cycles.t;  (** current incarnation's submit cycle *)
  info_restarts : int;
}

type running_info = {
  run_info : job_info;
  run_ranks : int list;
  run_started : Bg_engine.Cycles.t;
}

type t

val create : ?backfill:bool -> Cnk.Cluster.t -> t
(** [backfill] (default false): allow a later job to start ahead of a
    blocked head-of-line job when space permits. *)

val submit :
  t -> ?walltime_cycles:int -> shape:int * int * int -> Job.t -> job_id
(** Enqueue; jobs start when {!drain} runs the machine. A job still
    running [walltime_cycles] after launch is killed on every node of its
    partition (threads exit 137), with a RAS event naming the job and its
    lead rank, and reported Completed. *)

val submit_factory :
  t ->
  ?walltime_cycles:int ->
  ?restart_limit:int ->
  ?cls:job_class ->
  ?tenant:int ->
  ?gang:int ->
  ?est_cycles:int ->
  shape:int * int * int ->
  (ranks:int list -> Job.t) ->
  job_id
(** Like {!submit}, but the job image is built per launch from the ranks
    actually allocated — required for restart after a node death, when the
    replacement partition has different members. [restart_limit] (default
    0) bounds how many times a failed incarnation (nonzero exit on any
    member node) is requeued before the job is declared [Failed].
    [cls] (default [Batch]) marks shed priority under degradation.
    [tenant] scopes the per-tenant [sched.*] SLO series (queue wait,
    turnaround, bounded slowdown, completion counters) to that id.
    [gang] tags a co-scheduling group for gang strategies. [est_cycles]
    is the user's runtime estimate, for reservation-based backfill. *)

val offer_factory :
  t ->
  ?walltime_cycles:int ->
  ?restart_limit:int ->
  ?cls:job_class ->
  ?tenant:int ->
  ?gang:int ->
  ?est_cycles:int ->
  shape:int * int * int ->
  (ranks:int list -> Job.t) ->
  (job_id, [ `Admission_closed ]) result
(** The admission-controlled front door: like {!submit_factory} while
    admission is open, [Error `Admission_closed] (counted in
    [scheduler.jobs_rejected], and per tenant in [sched.jobs_rejected])
    once a recovery policy has closed it. *)

val set_admission : t -> bool -> unit
(** Degradation tier 3: close (or reopen) the front door for new
    {!offer_factory} submits. Direct {!submit_factory} calls bypass it. *)

val admission_open : t -> bool
val rejected_count : t -> int

val set_shape_cap : t -> (int * int * int) option -> unit
(** Degradation tier 2: jobs whose shape exceeds the cap stay queued —
    even when space is free — until the cap is lifted. *)

val shape_cap : t -> (int * int * int) option

val shed_backfill : t -> job_id list
(** Degradation tier 1: drop every queued [Backfill_class] job (each is
    declared [Failed] without running, counted in [scheduler.jobs_shed]).
    Returns the shed ids. Running jobs are never shed. *)

val set_restart_policy : t -> (jid:job_id -> attempt:int -> int) option -> unit
(** Let a recovery policy delay restarts: the callback returns the
    backoff (cycles) before a failed incarnation is requeued; [<= 0]
    requeues immediately (the default behavior when unset). The delay
    must be a pure function of its arguments to keep runs replayable. *)

val kick : t -> unit
(** Try to start queued jobs now — for policy engines that just revived
    capacity (spare substitution, pset rebuild, shape-cap lift). *)

val drain : t -> unit
(** Start whatever fits, then run the simulation, starting queued jobs as
    partitions free up, until every submitted job completes. Raises
    [Failure] if a job can never fit the machine (including when down
    nodes leave no partition of the requested shape). *)

val outstanding : t -> int
(** Jobs submitted but not yet in a terminal state. *)

(** {1 Pluggable strategies}

    A strategy replaces the built-in pick logic: on every {!kick} (and
    after every completion) the dispatch callback runs instead of the
    FIFO/backfill scan, inspects {!pending_info}/{!running_info}, and
    starts specific jobs with {!start_job}/{!start_jobs}. Re-entrant
    kicks from inside dispatch are suppressed. *)

val set_dispatch : t -> (unit -> unit) option -> unit
val pending_info : t -> job_info list
(** Queued jobs, head of the line first. *)

val pending_count : t -> int
val running_info : t -> running_info list
(** Currently running jobs, ascending job id. *)

val start_job :
  t -> ?base:int * int * int -> ?shape:int * int * int -> job_id -> (unit, string) result
(** Start one specific queued job now. [base] pins the partition to that
    box (torus-aware placement); [shape] reshapes the request to a
    different box of the {e same volume} (a placer trading dimensions for
    compactness). Fails — leaving the queue untouched — when the job is
    not queued, the shape cap blocks it, or allocation fails. *)

val start_jobs :
  t ->
  (job_id * (int * int * int) option * (int * int * int) option) list ->
  (unit, string) result
(** All-or-none co-scheduling: [(jid, base, shape)] triples are allocated
    first (rolling every allocation back on the first failure, leaving the
    queue untouched) and only then all launched — the gang-scheduling
    primitive. *)

val on_job_start : t -> (job_id -> ranks:int list -> unit) -> unit
(** Subscribe to job launches (fires after every member node launched). *)

val on_job_done : t -> (job_id -> job_state -> unit) -> unit
(** Subscribe to terminal dispositions ([Completed]/[Failed], including
    shed backfill jobs); restarts do not fire this. *)

val member_completed : t -> job_id -> rank:int -> unit
(** The per-member completion event — the entry point node completion
    callbacks drive. Idempotent against control-network replay: a
    duplicated event for a (job, rank) that already reported, or for a
    job no longer running, is dropped and counted in
    [scheduler.duplicate_completions]. *)

val duplicate_completions : t -> int
val tenant_usage : t -> int -> int
(** Cumulative busy node-cycles charged to a tenant by completed (or
    restarted) incarnations — the fair-share strategy's usage input. *)

val scan_visits : t -> int
(** Queue nodes examined by the built-in start scans so far — the
    micro-bench guard that submits and kicks stay out of the quadratic
    regime. *)

val node_failed : t -> rank:int -> unit
(** RAS recovery entry point: mark [rank] down for future allocations and
    kill the running job that spans it (every member node, in the same
    cycle — survivors would otherwise block forever on a dead peer). The
    job is requeued if it has restart budget left. Idempotent: a replayed
    or duplicated death notice for an already-down rank is a no-op, so it
    can never kill a job since reallocated onto different hardware. *)

val mark_down : t -> rank:int -> unit
(** Mark a node down without touching running jobs. *)

val mark_up : t -> rank:int -> unit
(** Return a node to the allocation pool (pset rebuild); no-op when the
    rank is not down. *)

val pset_failed : t -> ranks:int list -> unit
(** An I/O node died for good: emit one RAS event, mark every compute
    node it served down, and kill any job spanning them. Jobs with
    restart budget are requeued onto surviving psets. *)

val job_crashed : t -> rank:int -> unit
(** Gang semantics for an application crash on [rank]: kill the spanning
    job on every member node (it restarts if it has budget), but leave the
    node in the allocation pool — the hardware is fine. *)

val state : t -> job_id -> job_state
val restarts : t -> job_id -> int
(** How many times the job has been relaunched so far. *)

val completed_order : t -> job_id list
(** Ids in completion order (includes [Failed] jobs). *)

val cluster : t -> Cnk.Cluster.t
val partition : t -> Partition.t
(** The live allocator — exposed for the resilience layer and tests. *)

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state (queue, job states, running set,
    completion order, partition) into [b], little-endian, sorted. *)
