(** The control-system job scheduler.

    Space-shares a booted {!Cnk.Cluster} among queued jobs: each job asks
    for a partition shape; the scheduler allocates it (FIFO, with optional
    backfill of smaller jobs past a blocked head), launches the job on the
    partition's ranks, and releases the partition when every member node
    reports completion. Because everything runs in one deterministic
    simulation, schedules are reproducible.

    The resilience path (paper §V.B): {!node_failed} marks a node down in
    the allocator and kills the running job that spans it; a job submitted
    with a restart budget is then requeued at the head of the line and
    reallocated — excluding down nodes — so a checkpointed application can
    resume from its last committed state. *)

type job_id = int

type job_state =
  | Queued
  | Running of int list  (** the partition's ranks *)
  | Completed of Bg_engine.Cycles.t  (** completion cycle *)
  | Failed of Bg_engine.Cycles.t
      (** a job with a restart budget exhausted it (jobs without one
          always report [Completed], matching classic batch semantics) *)

type t

val create : ?backfill:bool -> Cnk.Cluster.t -> t
(** [backfill] (default false): allow a later job to start ahead of a
    blocked head-of-line job when space permits. *)

val submit :
  t -> ?walltime_cycles:int -> shape:int * int * int -> Job.t -> job_id
(** Enqueue; jobs start when {!drain} runs the machine. A job still
    running [walltime_cycles] after launch is killed on every node of its
    partition (threads exit 137), with a RAS event naming the job and its
    lead rank, and reported Completed. *)

val submit_factory :
  t ->
  ?walltime_cycles:int ->
  ?restart_limit:int ->
  shape:int * int * int ->
  (ranks:int list -> Job.t) ->
  job_id
(** Like {!submit}, but the job image is built per launch from the ranks
    actually allocated — required for restart after a node death, when the
    replacement partition has different members. [restart_limit] (default
    0) bounds how many times a failed incarnation (nonzero exit on any
    member node) is requeued before the job is declared [Failed]. *)

val drain : t -> unit
(** Start whatever fits, then run the simulation, starting queued jobs as
    partitions free up, until every submitted job completes. Raises
    [Failure] if a job can never fit the machine (including when down
    nodes leave no partition of the requested shape). *)

val node_failed : t -> rank:int -> unit
(** RAS recovery entry point: mark [rank] down for future allocations and
    kill the running job that spans it (every member node, in the same
    cycle — survivors would otherwise block forever on a dead peer). The
    job is requeued if it has restart budget left. *)

val mark_down : t -> rank:int -> unit
(** Mark a node down without touching running jobs. *)

val pset_failed : t -> ranks:int list -> unit
(** An I/O node died for good: emit one RAS event, mark every compute
    node it served down, and kill any job spanning them. Jobs with
    restart budget are requeued onto surviving psets. *)

val job_crashed : t -> rank:int -> unit
(** Gang semantics for an application crash on [rank]: kill the spanning
    job on every member node (it restarts if it has budget), but leave the
    node in the allocation pool — the hardware is fine. *)

val state : t -> job_id -> job_state
val restarts : t -> job_id -> int
(** How many times the job has been relaunched so far. *)

val completed_order : t -> job_id list
(** Ids in completion order (includes [Failed] jobs). *)

val cluster : t -> Cnk.Cluster.t
val partition : t -> Partition.t
(** The live allocator — exposed for the resilience layer and tests. *)

val capture : t -> Buffer.t -> unit
(** Serialize snapshot-relevant state (queue, job states, running set,
    completion order, partition) into [b], little-endian, sorted. *)
