(** The service node's RAS (Reliability/Availability/Serviceability) log.

    Collects every event the kernels publish on the machine's RAS stream
    — guard-page kills, L1 parity errors, crashes — with the cycle and
    rank attached, and answers the queries an operator would run: events
    by severity, by rank, the error count that would page someone. This
    is the machinery behind the paper's "diagnosing problems across
    100,000s of nodes".

    Since the health-service work the log is a thin view over a
    {!Bg_obs.Rasdb}: the database carries the severity/component/rank
    indexes and windowed rate queries ({!db}), and its exact
    per-severity totals are mirrored into the metrics registry as
    [ras.info] / [ras.warn] / [ras.error] / [ras.total] /
    [ras.dropped] gauges whenever the machine's collector is enabled. *)

type event = {
  cycle : Bg_engine.Cycles.t;
  rank : int;
  severity : Machine.ras_severity;
  message : string;
}

type t

val attach : ?capacity:int -> Machine.t -> t
(** Subscribe a fresh collector to the machine's RAS stream. The log
    retains at most [capacity] events (default 4096) in a ring — a RAS
    storm overwrites the oldest records instead of growing without
    bound. Counts stay exact even when records are dropped. *)

val db : t -> Bg_obs.Rasdb.t
(** The backing database, for component/rank indexes, windowed rate
    queries and the insertion digest. *)

val events : t -> event list
(** Retained events, oldest first (at most [capacity] of them). *)

val dropped : t -> int
(** Events overwritten by ring wraparound. *)

val count : t -> ?severity:Machine.ras_severity -> unit -> int
(** Total events ever logged (per severity if given), including any
    whose records were dropped. O(1). *)

val by_rank : t -> rank:int -> event list
(** Retained events from [rank], oldest first. *)

val errors : t -> event list
(** Retained [Ras_error] events, oldest first. *)

val pp : Format.formatter -> t -> unit
