type 'a node = {
  key : int;
  value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  mutable head : 'a node option;
  mutable tail : 'a node option;
  index : (int, 'a node) Hashtbl.t;
}

let create () = { head = None; tail = None; index = Hashtbl.create 64 }
let length t = Hashtbl.length t.index
let is_empty t = length t = 0
let mem t key = Hashtbl.mem t.index key

let check_fresh t key =
  if Hashtbl.mem t.index key then invalid_arg "Jobq: duplicate key"

let append t ~key value =
  check_fresh t key;
  let n = { key; value; prev = t.tail; next = None } in
  (match t.tail with
  | None -> t.head <- Some n
  | Some old -> old.next <- Some n);
  t.tail <- Some n;
  Hashtbl.replace t.index key n

let push_front t ~key value =
  check_fresh t key;
  let n = { key; value; prev = None; next = t.head } in
  (match t.head with
  | None -> t.tail <- Some n
  | Some old -> old.prev <- Some n);
  t.head <- Some n;
  Hashtbl.replace t.index key n

let remove t key =
  match Hashtbl.find_opt t.index key with
  | None -> None
  | Some n ->
    (match n.prev with None -> t.head <- n.next | Some p -> p.next <- n.next);
    (match n.next with None -> t.tail <- n.prev | Some s -> s.prev <- n.prev);
    n.prev <- None;
    n.next <- None;
    Hashtbl.remove t.index key;
    Some n.value

let find t key =
  match Hashtbl.find_opt t.index key with None -> None | Some n -> Some n.value

let peek t = match t.head with None -> None | Some n -> Some (n.key, n.value)

let iter t f =
  let rec go = function
    | None -> ()
    | Some n ->
      let next = n.next in
      f n.key n.value;
      go next
  in
  go t.head

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun k v -> acc := f !acc k v);
  !acc

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc))
let keys t = List.map fst (to_list t)
