open Bg_engine
module Obs = Bg_obs.Obs

type job_id = int

type job_state =
  | Queued
  | Running of int list
  | Completed of Cycles.t
  | Failed of Cycles.t

type job_class = Batch | Backfill_class

type pending = {
  jid : job_id;
  shape : int * int * int;
  cls : job_class;
  tenant : int option;  (* SLO accounting scope; None = anonymous *)
  gang : int option;  (* co-scheduling group: all members start together *)
  est_cycles : int option;  (* user runtime estimate, for reservations *)
  factory : ranks:int list -> Job.t;
  walltime : int option;
  restart_limit : int;
  mutable restarts : int;
  first_submitted : Cycles.t;  (* original submission, for turnaround timing *)
  mutable submitted : Cycles.t;  (* (re)submission cycle, for queue-wait timing *)
  mutable failed_at : Cycles.t option;  (* when RAS declared the incarnation dead *)
}

type job_info = {
  info_jid : job_id;
  info_shape : int * int * int;
  info_cls : job_class;
  info_tenant : int option;
  info_gang : int option;
  info_est : int option;
  info_walltime : int option;
  info_submitted : Cycles.t;
  info_restarts : int;
}

type running_info = {
  run_info : job_info;
  run_ranks : int list;
  run_started : Cycles.t;
}

type t = {
  cluster : Cnk.Cluster.t;
  partition : Partition.t;
  backfill : bool;
  queue : pending Jobq.t;  (* FIFO, head first; O(1) append/remove *)
  states : (job_id, job_state) Hashtbl.t;
  jobs : (job_id, pending) Hashtbl.t;  (* every job ever submitted *)
  running : (job_id, pending * Partition.allocation * Cycles.t * Obs.handle) Hashtbl.t;
  reported : (job_id, (int, unit) Hashtbl.t) Hashtbl.t;
      (* ranks whose completion event arrived for the live incarnation *)
  tenant_usage : (int, int) Hashtbl.t;  (* tenant -> busy node-cycles *)
  mutable next_id : int;
  mutable done_order : job_id list;
  mutable outstanding : int;
  mutable scan_visits : int;  (* queue nodes examined by start scans *)
  mutable duplicate_completions : int;
  (* pluggable strategy: replaces the built-in FIFO/backfill pick *)
  mutable dispatch : (unit -> unit) option;
  mutable in_dispatch : bool;
  mutable on_start : (job_id -> ranks:int list -> unit) list;
  mutable on_done : (job_id -> job_state -> unit) list;
  (* self-healing control plane (all inert until a policy engine sets them) *)
  mutable restart_policy : (jid:job_id -> attempt:int -> int) option;
  mutable shape_cap : (int * int * int) option;
  mutable admission : bool;  (* false = degraded tier 3: reject new submits *)
  mutable rejected : int;
}

let obs t = (Cnk.Cluster.machine t.cluster).Machine.obs
let now t = Sim.now (Cnk.Cluster.sim t.cluster)

(* Job lifecycle in the causal graph: submit, start and finish live on
   the control-system scope (rank -1), one lane per job id. Program-order
   chaining on that lane links them Parent_child automatically. *)
let causal_mark t ~jid name =
  let g = (Cnk.Cluster.machine t.cluster).Machine.causal in
  if Bg_obs.Causal.enabled g then
    ignore
      (Bg_obs.Causal.mint g ~cat:"scheduler"
         ~name:(Printf.sprintf "job.%d.%s" jid name)
         ~rank:Obs.node_scope ~core:jid ~now:(now t) ())
let cluster t = t.cluster
let partition t = t.partition

let create ?(backfill = false) cluster =
  let machine = Cnk.Cluster.machine cluster in
  let dims = Bg_hw.Torus.dims machine.Machine.torus in
  {
    cluster;
    partition = Partition.create ~dims;
    backfill;
    queue = Jobq.create ();
    states = Hashtbl.create 16;
    jobs = Hashtbl.create 16;
    running = Hashtbl.create 16;
    reported = Hashtbl.create 16;
    tenant_usage = Hashtbl.create 16;
    next_id = 1;
    done_order = [];
    outstanding = 0;
    scan_visits = 0;
    duplicate_completions = 0;
    dispatch = None;
    in_dispatch = false;
    on_start = [];
    on_done = [];
    restart_policy = None;
    shape_cap = None;
    admission = true;
    rejected = 0;
  }

let submit_factory t ?walltime_cycles ?(restart_limit = 0) ?(cls = Batch) ?tenant
    ?gang ?est_cycles ~shape factory =
  let x, y, z = Bg_hw.Torus.dims (Cnk.Cluster.machine t.cluster).Machine.torus in
  let sx, sy, sz = shape in
  if sx > x || sy > y || sz > z then failwith "Scheduler.submit: job can never fit";
  let jid = t.next_id in
  t.next_id <- jid + 1;
  let pending =
    {
      jid;
      shape;
      cls;
      tenant;
      gang;
      est_cycles;
      factory;
      walltime = walltime_cycles;
      restart_limit;
      restarts = 0;
      first_submitted = now t;
      submitted = now t;
      failed_at = None;
    }
  in
  Jobq.append t.queue ~key:jid pending;
  Hashtbl.replace t.states jid Queued;
  Hashtbl.replace t.jobs jid pending;
  t.outstanding <- t.outstanding + 1;
  Obs.incr (obs t) ~subsystem:"scheduler" ~name:"jobs_submitted" ();
  causal_mark t ~jid "submit";
  jid

let submit t ?walltime_cycles ~shape job =
  submit_factory t ?walltime_cycles ~shape (fun ~ranks:_ -> job)

(* Admission-controlled front door: under degraded tier 3 the submit is
   refused outright (counted), instead of joining a queue the machine
   cannot drain. *)
let offer_factory t ?walltime_cycles ?restart_limit ?cls ?tenant ?gang ?est_cycles
    ~shape factory =
  if t.admission then
    Ok
      (submit_factory t ?walltime_cycles ?restart_limit ?cls ?tenant ?gang
         ?est_cycles ~shape factory)
  else begin
    t.rejected <- t.rejected + 1;
    Obs.incr (obs t) ~subsystem:"scheduler" ~name:"jobs_rejected" ();
    (match tenant with
    | Some tid -> Obs.incr (obs t) ~rank:tid ~subsystem:"sched" ~name:"jobs_rejected" ()
    | None -> ());
    Error `Admission_closed
  end

let set_admission t open_ = t.admission <- open_
let admission_open t = t.admission
let rejected_count t = t.rejected
let set_shape_cap t cap = t.shape_cap <- cap
let shape_cap t = t.shape_cap
let scan_visits t = t.scan_visits
let duplicate_completions t = t.duplicate_completions
let pending_count t = Jobq.length t.queue
let set_dispatch t f = t.dispatch <- f
let on_job_start t f = t.on_start <- t.on_start @ [ f ]
let on_job_done t f = t.on_done <- t.on_done @ [ f ]

let tenant_usage t tid =
  match Hashtbl.find_opt t.tenant_usage tid with Some v -> v | None -> 0

let info_of (p : pending) =
  {
    info_jid = p.jid;
    info_shape = p.shape;
    info_cls = p.cls;
    info_tenant = p.tenant;
    info_gang = p.gang;
    info_est = p.est_cycles;
    info_walltime = p.walltime;
    info_submitted = p.submitted;
    info_restarts = p.restarts;
  }

let pending_info t =
  List.rev (Jobq.fold t.queue ~init:[] ~f:(fun acc _ p -> info_of p :: acc))

let running_info t =
  Hashtbl.fold
    (fun _ (p, alloc, started, _) acc ->
      { run_info = info_of p; run_ranks = alloc.Partition.ranks; run_started = started }
      :: acc)
    t.running []
  |> List.sort (fun a b -> compare a.run_info.info_jid b.run_info.info_jid)

(* Under a shape cap (degraded tier 2) large jobs wait even if space is
   free: a shrunken machine stops handing out its biggest blocks. *)
let within_cap t (sx, sy, sz) =
  match t.shape_cap with
  | None -> true
  | Some (cx, cy, cz) -> sx <= cx && sy <= cy && sz <= cz

(* The SLO bounded-slowdown floor: shorter runtimes do not inflate the
   metric without bound (Feitelson's tau). *)
let slowdown_tau = 10_000

(* Try to start queued jobs; FIFO unless backfill is on, in which case
   later jobs may start past a blocked head. A pluggable dispatch
   strategy, when installed, replaces this pick logic entirely. *)
let rec try_start t =
  match t.dispatch with
  | Some f ->
    if not t.in_dispatch then begin
      (* strategies drive starts themselves; guard against re-entry when
         a start they trigger re-kicks the scheduler *)
      t.in_dispatch <- true;
      Fun.protect ~finally:(fun () -> t.in_dispatch <- false) f
    end
  | None -> try_start_builtin t

and try_start_builtin t =
  match Jobq.peek t.queue with
  | None -> ()
  | Some (head_jid, head) -> (
    t.scan_visits <- t.scan_visits + 1;
    match
      if within_cap t head.shape then Partition.allocate t.partition ~shape:head.shape
      else Error "blocked by shape cap"
    with
    | Ok alloc ->
      ignore (Jobq.remove t.queue head_jid);
      start t head alloc;
      try_start_builtin t
    | Error _ ->
      if t.backfill then begin
        (* find the first later job that fits *)
        let picked = ref None in
        (try
           Jobq.iter t.queue (fun jid p ->
               if jid <> head_jid && !picked = None then begin
                 t.scan_visits <- t.scan_visits + 1;
                 match
                   if within_cap t p.shape then
                     Partition.allocate t.partition ~shape:p.shape
                   else Error "blocked by shape cap"
                 with
                 | Ok alloc ->
                   picked := Some (p, alloc);
                   raise Exit
                 | Error _ -> ()
               end)
         with Exit -> ());
        match !picked with
        | None -> ()
        | Some (p, alloc) ->
          ignore (Jobq.remove t.queue p.jid);
          Obs.incr (obs t) ~subsystem:"scheduler" ~name:"backfill_started" ();
          start t p alloc;
          try_start_builtin t
      end)

and start t pending alloc =
  let o = obs t in
  let start_cycle = now t in
  (* Scheduler decisions live under the control-system pid, one tid lane
     per job id, so a queue's history reads as a Gantt chart. *)
  Obs.incr o ~subsystem:"scheduler" ~name:"jobs_started" ();
  Obs.observe_cycles o ~subsystem:"scheduler" ~name:"queue_wait_cycles"
    (start_cycle - pending.submitted);
  (match pending.tenant with
  | Some tid ->
    Obs.observe_cycles o ~rank:tid ~hi:(float_of_int (1 lsl 26)) ~subsystem:"sched"
      ~name:"queue_wait_cycles"
      (start_cycle - pending.submitted)
  | None -> ());
  (match pending.failed_at with
  | Some failed when pending.restarts > 0 ->
    Obs.observe_cycles o ~subsystem:"scheduler" ~name:"recovery_latency_cycles"
      (start_cycle - failed);
    pending.failed_at <- None
  | _ -> ());
  let job_span =
    Obs.span_begin o ~cat:"scheduler"
      ~name:(Printf.sprintf "job.%d" pending.jid)
      ~rank:Obs.node_scope ~core:pending.jid ~now:start_cycle
  in
  causal_mark t ~jid:pending.jid "start";
  Hashtbl.replace t.states pending.jid (Running alloc.Partition.ranks);
  Hashtbl.replace t.running pending.jid (pending, alloc, start_cycle, job_span);
  Hashtbl.replace t.reported pending.jid
    (Hashtbl.create (List.length alloc.Partition.ranks));
  let job = pending.factory ~ranks:alloc.Partition.ranks in
  List.iter
    (fun rank ->
      let node = Cnk.Cluster.node t.cluster rank in
      Cnk.Node.on_job_complete node (fun () -> member_completed t pending.jid ~rank))
    alloc.Partition.ranks;
  List.iter
    (fun rank ->
      match Cnk.Node.launch (Cnk.Cluster.node t.cluster rank) job with
      | Ok () -> ()
      | Error e -> failwith (Printf.sprintf "launch on rank %d: %s" rank e))
    alloc.Partition.ranks;
  List.iter (fun f -> f pending.jid ~ranks:alloc.Partition.ranks) t.on_start;
  match pending.walltime with
  | None -> ()
  | Some limit ->
    let sim = Cnk.Cluster.sim t.cluster in
    let incarnation = pending.restarts in
    ignore
      (Bg_engine.Sim.schedule_in sim limit (fun () ->
           match Hashtbl.find_opt t.states pending.jid with
           | Some (Running _) when pending.restarts = incarnation ->
             (* kill, but tell RAS first: silent job disappearance is the
                §VI diagnosability sin *)
             let machine = Cnk.Cluster.machine t.cluster in
             let rank = List.hd alloc.Partition.ranks in
             Machine.ras_emit machine ~rank ~severity:Machine.Ras_warn
               ~message:
                 (Printf.sprintf "SCHED walltime job=%d rank=%d limit=%d" pending.jid
                    rank limit);
             Obs.incr o ~subsystem:"scheduler" ~name:"walltime_kills" ();
             List.iter
               (fun rank -> Cnk.Node.kill_job (Cnk.Cluster.node t.cluster rank))
               alloc.Partition.ranks
           | _ -> ()))

(* The per-member completion event. The control network replays and
   duplicates, so this is idempotent at both granularities: a second
   event for a (job, rank) that already reported is dropped (counted),
   and an event for a job that is no longer running is dropped too. *)
and member_completed t jid ~rank =
  match Hashtbl.find_opt t.running jid with
  | None ->
    t.duplicate_completions <- t.duplicate_completions + 1;
    Obs.incr (obs t) ~subsystem:"scheduler" ~name:"duplicate_completions" ()
  | Some (pending, alloc, started, span) ->
    let seen =
      match Hashtbl.find_opt t.reported jid with
      | Some s -> s
      | None ->
        let s = Hashtbl.create 8 in
        Hashtbl.replace t.reported jid s;
        s
    in
    if Hashtbl.mem seen rank || not (List.mem rank alloc.Partition.ranks) then begin
      t.duplicate_completions <- t.duplicate_completions + 1;
      Obs.incr (obs t) ~subsystem:"scheduler" ~name:"duplicate_completions" ()
    end
    else begin
      Hashtbl.replace seen rank ();
      if Hashtbl.length seen = List.length alloc.Partition.ranks then
        finish t pending alloc started span
    end

(* Every member node reported completion: decide between terminal states
   and a restart. A job failed if any process on any member node exited
   nonzero (a crash, a kill after a node death, or a walltime kill). *)
and finish t pending alloc started span =
  if Hashtbl.mem t.running pending.jid then begin
    let o = obs t in
    Partition.release t.partition alloc.Partition.id;
    Hashtbl.remove t.running pending.jid;
    Hashtbl.remove t.reported pending.jid;
    Obs.span_end o span ~now:(now t);
    causal_mark t ~jid:pending.jid "finish";
    (match pending.tenant with
    | Some tid ->
      let busy = (now t - started) * List.length alloc.Partition.ranks in
      Hashtbl.replace t.tenant_usage tid (tenant_usage t tid + busy);
      Obs.incr o ~rank:tid ~subsystem:"sched" ~name:"busy_node_cycles" ~by:busy ();
      Obs.incr o ~subsystem:"sched" ~name:"busy_node_cycles" ~by:busy ()
    | None -> ());
    let failed =
      List.exists
        (fun rank ->
          List.exists
            (fun (_, code) -> code <> 0)
            (Cnk.Node.exit_codes (Cnk.Cluster.node t.cluster rank)))
        alloc.Partition.ranks
    in
    if failed && pending.restarts < pending.restart_limit then begin
      pending.restarts <- pending.restarts + 1;
      Hashtbl.replace t.states pending.jid Queued;
      let machine = Cnk.Cluster.machine t.cluster in
      let requeue () =
        pending.submitted <- now t;
        (* requeue at the head: recovery preempts the waiting line *)
        Jobq.push_front t.queue ~key:pending.jid pending;
        Obs.incr o ~subsystem:"scheduler" ~name:"jobs_restarted" ();
        Machine.ras_emit machine
          ~rank:(List.hd alloc.Partition.ranks)
          ~severity:Machine.Ras_info
          ~message:
            (Printf.sprintf "SCHED restart job=%d attempt=%d" pending.jid
               pending.restarts);
        try_start t
      in
      (* A recovery policy may hold the retry back (deterministic backoff:
         the delay is a pure function of (job, attempt)); the default is
         the classic immediate requeue. *)
      match t.restart_policy with
      | None -> requeue ()
      | Some f ->
        let delay = f ~jid:pending.jid ~attempt:pending.restarts in
        if delay <= 0 then requeue ()
        else ignore (Sim.schedule_in (Cnk.Cluster.sim t.cluster) delay requeue)
    end
    else begin
      let state =
        if failed && pending.restart_limit > 0 then Failed (now t) else Completed (now t)
      in
      Hashtbl.replace t.states pending.jid state;
      t.done_order <- pending.jid :: t.done_order;
      t.outstanding <- t.outstanding - 1;
      Obs.incr o ~subsystem:"scheduler" ~name:"jobs_completed" ();
      (* Turnaround: original submission to final disposition, across any
         restarts — the series the health service trends per window. *)
      let turnaround = now t - pending.first_submitted in
      Obs.observe_cycles o ~subsystem:"scheduler" ~name:"turnaround_cycles" turnaround;
      (match pending.tenant with
      | Some tid ->
        Obs.observe_cycles o ~rank:tid ~hi:(float_of_int (1 lsl 26))
          ~subsystem:"sched" ~name:"turnaround_cycles" turnaround;
        (* bounded slowdown, in milli-units: turnaround over max(run, tau) *)
        let run = max (now t - started) 1 in
        let slowdown = turnaround * 1000 / max run slowdown_tau in
        Obs.observe_cycles o ~rank:tid ~hi:65536. ~subsystem:"sched"
          ~name:"bounded_slowdown_milli" (max slowdown 1000);
        Obs.incr o ~rank:tid ~subsystem:"sched"
          ~name:(match state with Failed _ -> "jobs_failed" | _ -> "jobs_completed")
          ()
      | None -> ());
      List.iter (fun f -> f pending.jid state) t.on_done;
      try_start t
    end
  end

(* Placement-directed start of one specific queued job, for pluggable
   strategies: allocate (at [base] if the placer chose one, reshaped to
   [shape] if it picked a different box of the same volume) and launch.
   Not finding the job queued, or failing the shape cap or allocation,
   is an [Error] and leaves the queue untouched. *)
let reserve t ?base ?shape jid =
  match Jobq.find t.queue jid with
  | None -> Error "not queued"
  | Some p ->
    let sx, sy, sz = p.shape in
    let shape = match shape with Some s -> s | None -> p.shape in
    let nx, ny, nz = shape in
    if nx * ny * nz <> sx * sy * sz then Error "reshape changes node count"
    else if not (within_cap t shape) then Error "blocked by shape cap"
    else begin
      match Partition.allocate ?base t.partition ~shape with
      | Error e -> Error e
      | Ok alloc -> Ok (p, alloc)
    end

let start_job t ?base ?shape jid =
  match reserve t ?base ?shape jid with
  | Error e -> Error e
  | Ok (p, alloc) ->
    ignore (Jobq.remove t.queue jid);
    start t p alloc;
    Ok ()

(* All-or-none co-scheduling for gangs: every member's allocation must
   succeed before any member launches; one failure rolls all of them
   back and the queue is untouched. *)
let start_jobs t specs =
  let rec reserve_all acc = function
    | [] -> Ok (List.rev acc)
    | (jid, base, shape) :: rest -> (
      match reserve t ?base ?shape jid with
      | Ok r -> reserve_all (r :: acc) rest
      | Error e ->
        List.iter
          (fun (_, alloc) -> Partition.release t.partition alloc.Partition.id)
          acc;
        Error (Printf.sprintf "job %d: %s" jid e))
  in
  match reserve_all [] specs with
  | Error e -> Error e
  | Ok reserved ->
    List.iter
      (fun ((p : pending), alloc) ->
        ignore (Jobq.remove t.queue p.jid);
        start t p alloc)
      reserved;
    Ok ()

let mark_down t ~rank =
  if not (Partition.is_down t.partition ~rank) then begin
    Partition.set_down t.partition ~rank true;
    Obs.incr (obs t) ~subsystem:"scheduler" ~name:"nodes_down" ()
  end

(* Kill the running job that spans [rank], if any. Survivors of a member
   failure would otherwise spin forever on messages (or barriers) that can
   no longer complete, so the whole gang dies in the same cycle. *)
let kill_spanning t ~rank =
  let victim =
    Hashtbl.fold
      (fun _ (pending, alloc, _, _) acc ->
        if List.mem rank alloc.Partition.ranks then Some (pending, alloc) else acc)
      t.running None
  in
  match victim with
  | None -> ()
  | Some (pending, alloc) ->
    pending.failed_at <- Some (now t);
    let machine = Cnk.Cluster.machine t.cluster in
    Machine.ras_emit machine ~rank ~severity:Machine.Ras_error
      ~message:(Printf.sprintf "SCHED job_lost job=%d rank=%d" pending.jid rank);
    List.iter
      (fun r -> Cnk.Node.kill_job (Cnk.Cluster.node t.cluster r))
      alloc.Partition.ranks

let mark_up t ~rank =
  if Partition.is_down t.partition ~rank then begin
    Partition.set_down t.partition ~rank false;
    Obs.incr (obs t) ~subsystem:"scheduler" ~name:"nodes_revived" ()
  end

(* Idempotent: RAS streams replay, retransmit and duplicate — the second
   death notice for an already-down rank must not kill whatever job has
   since been reallocated over different hardware. *)
let node_failed t ~rank =
  if not (Partition.is_down t.partition ~rank) then begin
    mark_down t ~rank;
    kill_spanning t ~rank
  end

(* An unrecoverable I/O node takes its whole pset with it (the compute
   nodes it served have no other path to the filesystem): every member is
   excluded from future allocations and any job spanning one of them is
   lost. *)
let pset_failed t ~ranks =
  (match ranks with
  | first :: _ ->
    let machine = Cnk.Cluster.machine t.cluster in
    Machine.ras_emit machine ~rank:first ~severity:Machine.Ras_error
      ~message:
        (Printf.sprintf "SCHED pset_lost ranks=%s"
           (String.concat "," (List.map string_of_int ranks)))
  | [] -> ());
  (* no allocation can span an already-down rank, so only freshly-downed
     members can carry a job — killing just those makes a replayed pset
     event a no-op instead of a stray gang kill *)
  let fresh = List.filter (fun rank -> not (Partition.is_down t.partition ~rank)) ranks in
  List.iter (fun rank -> mark_down t ~rank) ranks;
  List.iter (fun rank -> kill_spanning t ~rank) fresh

let job_crashed t ~rank = kill_spanning t ~rank

(* Graceful degradation tier 1: queued backfill-class jobs are shed —
   declared Failed without ever running — so a sick machine spends its
   remaining capacity on the batch jobs users are waiting on. *)
let shed_backfill t =
  let shed =
    Jobq.fold t.queue ~init:[] ~f:(fun acc _ p ->
        if p.cls = Backfill_class then p :: acc else acc)
    |> List.rev
  in
  List.iter
    (fun p ->
      ignore (Jobq.remove t.queue p.jid);
      Hashtbl.replace t.states p.jid (Failed (now t));
      t.done_order <- p.jid :: t.done_order;
      t.outstanding <- t.outstanding - 1;
      Obs.incr (obs t) ~subsystem:"scheduler" ~name:"jobs_shed" ();
      (match p.tenant with
      | Some tid -> Obs.incr (obs t) ~rank:tid ~subsystem:"sched" ~name:"jobs_shed" ()
      | None -> ());
      causal_mark t ~jid:p.jid "shed";
      List.iter (fun f -> f p.jid (Failed (now t))) t.on_done)
    shed;
  List.map (fun p -> p.jid) shed

let set_restart_policy t f = t.restart_policy <- f
let kick t = try_start t

let drain t =
  try_start t;
  let sim = Cnk.Cluster.sim t.cluster in
  let rec pump () =
    if t.outstanding > 0 then
      if Sim.step sim then pump ()
      else
        failwith
          (Printf.sprintf "Scheduler.drain: %d job(s) stuck with an empty event queue"
             t.outstanding)
  in
  pump ()

let outstanding t = t.outstanding

let state t jid =
  match Hashtbl.find_opt t.states jid with
  | Some s -> s
  | None -> invalid_arg "Scheduler.state: unknown job"

let restarts t jid =
  match Hashtbl.find_opt t.jobs jid with
  | Some p -> p.restarts
  | None -> invalid_arg "Scheduler.restarts: unknown job"

let completed_order t = List.rev t.done_order

let capture t b =
  let w_i v = Buffer.add_int64_le b (Int64.of_int v) in
  w_i t.next_id;
  w_i t.outstanding;
  Buffer.add_uint8 b (if t.backfill then 1 else 0);
  Buffer.add_uint8 b (if t.admission then 1 else 0);
  w_i t.rejected;
  (match t.shape_cap with
  | None -> w_i (-1)
  | Some (cx, cy, cz) ->
    w_i cx;
    w_i cy;
    w_i cz);
  w_i (Jobq.length t.queue);
  Jobq.iter t.queue (fun _ p ->
      w_i p.jid;
      w_i p.restarts;
      w_i p.submitted;
      Buffer.add_uint8 b (match p.cls with Batch -> 0 | Backfill_class -> 1);
      w_i (match p.tenant with Some tid -> tid | None -> -1);
      w_i (match p.gang with Some g -> g | None -> -1));
  let states =
    Hashtbl.fold (fun jid s acc -> (jid, s) :: acc) t.states []
    |> List.sort (fun (i, _) (j, _) -> compare i j)
  in
  w_i (List.length states);
  List.iter
    (fun (jid, s) ->
      w_i jid;
      match s with
      | Queued -> Buffer.add_uint8 b 0
      | Running ranks ->
        Buffer.add_uint8 b 1;
        w_i (List.length ranks);
        List.iter w_i ranks
      | Completed c ->
        Buffer.add_uint8 b 2;
        w_i c
      | Failed c ->
        Buffer.add_uint8 b 3;
        w_i c)
    states;
  let running =
    Hashtbl.fold (fun jid (_, a, _, _) acc -> (jid, a.Partition.id) :: acc) t.running []
    |> List.sort compare
  in
  w_i (List.length running);
  List.iter
    (fun (jid, aid) ->
      w_i jid;
      w_i aid)
    running;
  let done_order = List.rev t.done_order in
  w_i (List.length done_order);
  List.iter w_i done_order;
  Partition.capture t.partition b
