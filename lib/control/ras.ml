(* The service node's view of the machine RAS stream, backed by the
   queryable Bg_obs.Rasdb — severity/component/rank indexes and windowed
   rate queries instead of ad-hoc ring scans. The legacy event API is
   kept; richer queries go through [db]. *)

module Rasdb = Bg_obs.Rasdb

type event = {
  cycle : Bg_engine.Cycles.t;
  rank : int;
  severity : Machine.ras_severity;
  message : string;
}

type t = { db : Rasdb.t }

let machine_severity = function
  | Rasdb.Info -> Machine.Ras_info
  | Rasdb.Warn -> Machine.Ras_warn
  | Rasdb.Error -> Machine.Ras_error

let attach ?(capacity = 4096) machine =
  let db = Rasdb.create ~capacity () in
  Machine.on_ras machine (fun ~rank ~severity ~message ->
      ignore
        (Rasdb.add db
           ~cycle:(Bg_engine.Sim.now machine.Machine.sim)
           ~rank
           ~severity:(Machine.rasdb_severity severity)
           ~message ());
      (* One source of truth: the database's exact per-severity totals
         are mirrored into the metrics registry as ras.* gauges. *)
      Rasdb.publish_gauges db (Machine.obs machine));
  { db }

let db t = t.db

let event_of_record (r : Rasdb.record) =
  {
    cycle = r.Rasdb.cycle;
    rank = r.Rasdb.rank;
    severity = machine_severity r.Rasdb.severity;
    message = r.Rasdb.message;
  }

let events t = List.map event_of_record (Rasdb.records t.db ())
let dropped t = Rasdb.dropped t.db

let count t ?severity () =
  match severity with
  | None -> Rasdb.count t.db
  | Some s -> Rasdb.severity_count t.db (Machine.rasdb_severity s)

let by_rank t ~rank = List.map event_of_record (Rasdb.records t.db ~rank ())

let errors t =
  List.map event_of_record (Rasdb.records t.db ~severity:Rasdb.Error ())

let pp ppf t =
  if dropped t > 0 then
    Format.fprintf ppf "(... %d older events dropped ...)@." (dropped t);
  List.iter
    (fun e ->
      Format.fprintf ppf "[%10d] R%02d %-5s %s@." e.cycle e.rank
        (Machine.ras_severity_to_string e.severity)
        e.message)
    (events t)
