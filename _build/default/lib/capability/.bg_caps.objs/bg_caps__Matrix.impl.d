lib/capability/matrix.ml: Format List String
