lib/capability/matrix.mli: Format
