type ease = Easy | Medium | Hard | Range of ease * ease | Not_available

type capability = {
  description : string;
  use_cnk : ease;
  use_linux : ease;
  impl_cnk : ease option;
  impl_linux : ease option;
  witness : string;
  note : string;
}

let cap ?(impl_cnk = None) ?(impl_linux = None) ?(note = "") description use_cnk
    use_linux witness =
  { description; use_cnk; use_linux; impl_cnk; impl_linux; witness; note }

(* Paper Table II rows, in order; Table III entries attached to the rows
   they extend. *)
let table2 =
  [
    cap "Large page use" Easy Medium "Cnk.Mapping"
      ~note:"static map uses 1M-1G pages with no app effort";
    cap "Using multiple large page sizes" Easy Medium "Cnk.Mapping"
      ~note:"tiling mixes page sizes automatically";
    cap "Large physically contiguous memory" Easy (Range (Easy, Hard))
      "Bg_fwk.Buddy"
      ~impl_linux:(Some Medium)
      ~note:"easy to request on Linux; granting depends on fragmentation";
    cap "No TLB misses" Easy Not_available "Cnk.Node"
      ~impl_linux:(Some Hard)
      ~note:"CNK asserts zero evictions; FWK counts refills";
    cap "Full memory protection" Not_available Easy "Bg_fwk.Node"
      ~impl_cnk:(Some Medium)
      ~note:"CNK skips text/ro enforcement for dynamic objects";
    cap "General dynamic linking" Not_available Easy "Bg_rt.Ld_so"
      ~impl_cnk:(Some Medium)
      ~note:"CNK loads whole libraries, no demand paging";
    cap "Full mmap support" Not_available Easy "Cnk.Node"
      ~impl_cnk:(Some Hard)
      ~note:"file mmap is copy-in read-only on CNK";
    cap "Predictable scheduling" Easy Medium "Cnk.Node"
      ~note:"non-preemptive fixed affinity vs tuned RT policies";
    cap "Over commit of threads" (Range (Easy, Not_available)) Medium "Bg_fwk.Node"
      ~note:"CNK: up to threads/core limit only; Linux timeshares";
    cap "Performance reproducible" Easy (Range (Medium, Hard)) "Bg_noise.Fwq_harness"
      ~note:"FWQ spread <0.006% vs >5%";
    cap "Cycle reproducible execution" Easy Not_available "Bg_bringup.Waveform"
      ~impl_linux:(Some Medium)
      ~note:"identical trace digests across runs";
  ]

let table3 =
  List.filter (fun c -> c.impl_cnk <> None || c.impl_linux <> None) table2

let find description =
  List.find_opt (fun c -> c.description = description) table2

let rec ease_to_string = function
  | Easy -> "easy"
  | Medium -> "medium"
  | Hard -> "hard"
  | Range (a, b) -> ease_to_string a ^ " - " ^ ease_to_string b
  | Not_available -> "not avail"

let pp_row ppf (a, b, c) = Format.fprintf ppf "| %-36s | %-16s | %-13s |@." a b c

let pp_table2 ppf () =
  pp_row ppf ("Description", "CNK", "Linux");
  pp_row ppf (String.make 36 '-', String.make 16 '-', String.make 13 '-');
  List.iter
    (fun r ->
      pp_row ppf (r.description, ease_to_string r.use_cnk, ease_to_string r.use_linux))
    table2

let pp_table3 ppf () =
  pp_row ppf ("Description", "CNK", "Linux");
  pp_row ppf (String.make 36 '-', String.make 16 '-', String.make 13 '-');
  List.iter
    (fun r ->
      let fmt side use =
        match side with
        | Some e -> ease_to_string e
        | None -> (match use with Not_available -> "?" | _ -> "avail")
      in
      pp_row ppf (r.description, fmt r.impl_cnk r.use_cnk, fmt r.impl_linux r.use_linux))
    table3
