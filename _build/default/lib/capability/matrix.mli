(** The capability/ease model behind paper Tables II and III.

    Table II rates how hard it is to {e use} a capability on each kernel;
    Table III rates how hard it would be to {e implement} the missing
    ones. The data model keeps, for every capability, the rating and the
    mechanism it rests on, so the tables are generated (and unit-tested)
    rather than transcribed. Where this repository implements the
    mechanism, [witness] names the module that demonstrates it. *)

type ease = Easy | Medium | Hard | Range of ease * ease | Not_available

type capability = {
  description : string;
  use_cnk : ease;          (** Table II, CNK column *)
  use_linux : ease;        (** Table II, Linux column *)
  impl_cnk : ease option;  (** Table III (only for rows not available) *)
  impl_linux : ease option;
  witness : string;        (** module in this repo demonstrating the row *)
  note : string;
}

val table2 : capability list
(** Every row of Table II, in the paper's order. *)

val table3 : capability list
(** The Table III subset. *)

val find : string -> capability option
val ease_to_string : ease -> string
val pp_table2 : Format.formatter -> unit -> unit
val pp_table3 : Format.formatter -> unit -> unit
