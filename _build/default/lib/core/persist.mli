(** Persistent memory across jobs (paper §IV.D).

    Applications tag memory as persistent by name (shm_open-style). The
    pool lives in a reserved physical range at the top of DRAM; each named
    region is assigned a virtual address on first open and — the feature
    the paper stresses — the {e same} virtual address on every later open,
    so pointer-linked structures stored inside remain valid in the next
    job. Contents live in node DRAM, so they survive job boundaries for
    free and survive reboots exactly when DRAM was in self-refresh. *)

type region = { name : string; va : int; pa : int; bytes : int; owner : string }

type t

val create : pool_base_pa:int -> pool_bytes:int -> va_base:int -> t

val open_region : t -> name:string -> bytes:int -> owner:string -> (region, Errno.t) result
(** Existing name: returns the original region if [owner] matches the
    creator ([EACCES] otherwise — "assuming the correct privileges",
    paper §IV.D), or [EINVAL] if [bytes] exceeds its size. New name:
    allocates from the pool ([ENOMEM] when full; 1 MB-granular). *)

val find : t -> name:string -> region option
val regions : t -> region list
val used_bytes : t -> int
val clear : t -> unit
(** Cold boot without self-refresh: all names forgotten. *)
