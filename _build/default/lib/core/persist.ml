type region = { name : string; va : int; pa : int; bytes : int; owner : string }

let grain = 1024 * 1024

type t = {
  pool_base_pa : int;
  pool_bytes : int;
  va_base : int;
  mutable cursor : int;  (* offset of the next free byte in the pool *)
  table : (string, region) Hashtbl.t;
}

let create ~pool_base_pa ~pool_bytes ~va_base =
  { pool_base_pa; pool_bytes; va_base; cursor = 0; table = Hashtbl.create 8 }

let round_up v = (v + grain - 1) / grain * grain

let open_region t ~name ~bytes ~owner =
  if bytes <= 0 then Error Errno.EINVAL
  else
    match Hashtbl.find_opt t.table name with
    | Some r ->
      if r.owner <> owner then Error Errno.EACCES
      else if bytes <= r.bytes then Ok r
      else Error Errno.EINVAL
    | None ->
      let need = round_up bytes in
      if t.cursor + need > t.pool_bytes then Error Errno.ENOMEM
      else begin
        let r =
          {
            name;
            va = t.va_base + t.cursor;
            pa = t.pool_base_pa + t.cursor;
            bytes = need;
            owner;
          }
        in
        t.cursor <- t.cursor + need;
        Hashtbl.add t.table name r;
        Ok r
      end

let find t ~name = Hashtbl.find_opt t.table name

let regions t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.table []
  |> List.sort (fun a b -> compare a.va b.va)

let used_bytes t = t.cursor

let clear t =
  Hashtbl.reset t.table;
  t.cursor <- 0
