open Bg_hw

type config = {
  dram_bytes : int;
  kernel_bytes : int;
  nprocs : int;
  text_bytes : int;
  data_bytes : int;
  shared_bytes : int;
  persist_bytes : int;
  tlb_budget : int;
  main_stack_bytes : int;
}

let mb = 1024 * 1024

let default_config =
  {
    dram_bytes = 2048 * mb;
    kernel_bytes = 16 * mb;
    nprocs = 1;
    text_bytes = 2 * mb;
    data_bytes = 2 * mb;
    shared_bytes = 16 * mb;
    persist_bytes = 64 * mb;
    tlb_budget = 60;
    main_stack_bytes = 4 * mb;
  }

let text_va = 0
let shared_va = 0xC000_0000
let persist_va = 0xA000_0000

type process_map = {
  proc_index : int;
  regions : Sysreq.region list;
  heap_base : int;
  heap_stack_bytes : int;
}

type t = {
  config : config;
  procs : process_map array;
  persist_base_pa : int;
  waste_bytes : int;
  entries_per_core : int;
  min_page : Page_size.t;
}

(* Decompose [bytes] (rounded up to the floor page) into the largest pages
   whose alignment both cursors satisfy. *)
let tile ~va ~pa ~bytes ~floor =
  if not (Page_size.aligned floor va && Page_size.aligned floor pa) then
    invalid_arg "Mapping.tile: base not aligned to floor page";
  let allowed =
    List.filter (fun p -> Page_size.bytes p >= Page_size.bytes floor) Page_size.large_descending
  in
  let total = Page_size.align_up floor bytes in
  let rec go va pa remaining acc =
    if remaining = 0 then List.rev acc
    else begin
      let page =
        match
          List.find_opt
            (fun p ->
              Page_size.bytes p <= remaining
              && Page_size.aligned p va && Page_size.aligned p pa)
            allowed
        with
        | Some p -> p
        | None -> floor
      in
      let b = Page_size.bytes page in
      go (va + b) (pa + b) (remaining - b) ((page, va, pa) :: acc)
    end
  in
  go va pa total []

let region_of_tiles kind writable tiles =
  List.map
    (fun (page, va, pa) ->
      { Sysreq.kind; vaddr = va; paddr = pa; bytes = Page_size.bytes page; page; writable })
    tiles

(* Largest hardware page not exceeding [bytes]; the alignment class worth
   harmonizing for a region of that size. *)
let harmonize_target bytes =
  match List.find_opt (fun p -> Page_size.bytes p <= bytes) Page_size.large_descending with
  | Some p -> p
  | None -> Page_size.P1m

(* One partitioning attempt at a given floor page size. *)
let attempt config floor =
  let fb = Page_size.bytes floor in
  let align_up v = Page_size.align_up floor v in
  (* CNK itself and the persistent pool live at the top of DRAM, so process
     0's text lands at physical 0 and enjoys identity-like alignment. *)
  let persist_pool = Page_size.align_up Page_size.P1m config.persist_bytes in
  let persist_base_pa = config.dram_bytes - persist_pool in
  let kernel_base_pa = persist_base_pa - align_up config.kernel_bytes in
  let text_tiled = align_up config.text_bytes in
  let data_tiled = align_up config.data_bytes in
  let shared_tiled = align_up config.shared_bytes in
  let data_va = Page_size.align_up floor (text_va + config.text_bytes) in
  let data_end_va = data_va + data_tiled in
  let pa_cursor = ref 0 in
  let waste = ref 0 in
  let take bytes =
    let base = !pa_cursor in
    pa_cursor := base + bytes;
    base
  in
  (* Fixed allocations first: per-process text and data, then shared. *)
  let fixed =
    Array.init config.nprocs (fun proc_index ->
        let text_pa = take text_tiled in
        let data_pa = take data_tiled in
        waste := !waste + (text_tiled - config.text_bytes) + (data_tiled - config.data_bytes);
        (proc_index, text_pa, data_pa))
  in
  let shared_tiles =
    if config.shared_bytes = 0 then []
    else begin
      (* shared_va's alignment class is fixed, so harmonize the physical
         base: advance to pa = shared_va (mod H). *)
      let h = Page_size.bytes (harmonize_target shared_tiled) in
      let gap = (((shared_va - !pa_cursor) mod h) + h) mod h in
      waste := !waste + gap + (shared_tiled - config.shared_bytes);
      pa_cursor := !pa_cursor + gap;
      let shared_pa = take shared_tiled in
      tile ~va:shared_va ~pa:shared_pa ~bytes:config.shared_bytes ~floor
    end
  in
  (* Heaps get everything that remains, divided evenly (paper §VII.B). *)
  let remaining = kernel_base_pa - !pa_cursor in
  let heap_bytes = remaining / config.nprocs / fb * fb in
  if heap_bytes < config.main_stack_bytes + fb then
    Error
      (Printf.sprintf "no room for heap/stack: %d bytes left per process at %s pages"
         heap_bytes (Page_size.to_string floor))
  else begin
    let h = Page_size.bytes (harmonize_target heap_bytes) in
    let make_proc (proc_index, text_pa, data_pa) =
      let heap_pa = take heap_bytes in
      (* The heap's virtual base is free to move up, so harmonize it to the
         physical cursor's alignment class — costs address space, not RAM. *)
      let heap_va = data_end_va + ((((heap_pa - data_end_va) mod h) + h) mod h) in
      if heap_va + heap_bytes > persist_va then
        Error "heap/stack range collides with the persistent-memory window"
      else begin
        let text_tiles = tile ~va:text_va ~pa:text_pa ~bytes:config.text_bytes ~floor in
        let data_tiles = tile ~va:data_va ~pa:data_pa ~bytes:config.data_bytes ~floor in
        let heap_tiles = tile ~va:heap_va ~pa:heap_pa ~bytes:heap_bytes ~floor in
        let regions =
          region_of_tiles Sysreq.Text false text_tiles
          @ region_of_tiles Sysreq.Data true data_tiles
          @ region_of_tiles Sysreq.Heap_stack true heap_tiles
          @ region_of_tiles Sysreq.Shared true shared_tiles
        in
        Ok { proc_index; regions; heap_base = heap_va; heap_stack_bytes = heap_bytes }
      end
    in
    let rec build acc = function
      | [] -> Ok (List.rev acc)
      | f :: rest -> (
        match make_proc f with Ok p -> build (p :: acc) rest | Error e -> Error e)
    in
    match build [] (Array.to_list fixed) with
    | Error e -> Error e
    | Ok procs ->
      let procs = Array.of_list procs in
      if !pa_cursor > kernel_base_pa then
        Error
          (Printf.sprintf "over-committed physical memory by %d bytes at %s pages"
             (!pa_cursor - kernel_base_pa) (Page_size.to_string floor))
      else begin
        let entries_per_core =
          Array.fold_left (fun acc p -> max acc (List.length p.regions)) 0 procs
        in
        Ok
          {
            config;
            procs;
            persist_base_pa;
            waste_bytes = !waste;
            entries_per_core;
            min_page = floor;
          }
      end
  end

let compute config =
  if config.nprocs <> 1 && config.nprocs <> 2 && config.nprocs <> 4 then
    Error "nprocs must be 1, 2 or 4"
  else if config.text_bytes <= 0 || config.data_bytes < 0 then Error "bad section sizes"
  else begin
    (* Escalate the minimum page size until the map fits the TLB budget. *)
    let rec try_floors last_err = function
      | [] -> Error last_err
      | floor :: rest -> (
        match attempt config floor with
        | Error e -> try_floors e rest
        | Ok t ->
          if t.entries_per_core <= config.tlb_budget then Ok t
          else
            try_floors
              (Printf.sprintf "%d entries exceed the %d-entry budget even at %s pages"
                 t.entries_per_core config.tlb_budget (Page_size.to_string floor))
              rest)
    in
    try_floors "unreachable" [ Page_size.P1m; Page_size.P16m; Page_size.P256m; Page_size.P1g ]
  end

let region_for pm vaddr =
  List.find_opt
    (fun r -> vaddr >= r.Sysreq.vaddr && vaddr < r.Sysreq.vaddr + r.Sysreq.bytes)
    pm.regions

let tlb_entries pm =
  List.map
    (fun (r : Sysreq.region) ->
      let perm =
        match r.Sysreq.kind with
        | Sysreq.Text -> Tlb.perm_rx
        | Sysreq.Data | Sysreq.Heap_stack | Sysreq.Shared | Sysreq.Persist -> Tlb.perm_rwx
      in
      { Tlb.vaddr = r.Sysreq.vaddr; paddr = r.Sysreq.paddr; size = r.Sysreq.page; perm })
    pm.regions

let pp ppf t =
  Format.fprintf ppf "static map: %d proc(s), min page %a, %d TLB entries/core, %d KB waste@."
    (Array.length t.procs) Page_size.pp t.min_page t.entries_per_core (t.waste_bytes / 1024);
  Array.iter
    (fun p ->
      Format.fprintf ppf "  process %d:@." p.proc_index;
      List.iter
        (fun (r : Sysreq.region) ->
          let kind =
            match r.Sysreq.kind with
            | Sysreq.Text -> "text"
            | Sysreq.Data -> "data"
            | Sysreq.Heap_stack -> "heap/stack"
            | Sysreq.Shared -> "shared"
            | Sysreq.Persist -> "persist"
          in
          Format.fprintf ppf "    %-10s va 0x%08x -> pa 0x%08x  %4d MB (%a page)@." kind
            r.Sysreq.vaddr r.Sysreq.paddr
            (r.Sysreq.bytes / mb)
            Page_size.pp r.Sysreq.page)
        p.regions)
    t.procs
