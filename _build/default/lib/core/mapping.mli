(** CNK's static memory partitioning (paper §IV.C, Fig 3).

    At job launch the ELF section sizes, the number of processes per node
    and the shared-memory size feed a partitioning algorithm that tiles
    virtual and physical memory with the hardware page sizes (1 MB, 16 MB,
    256 MB, 1 GB), respecting alignment constraints. The resulting map is
    static for the life of the process: no page faults, no translation
    misses, and user space may query it and drive DMA against physical
    addresses directly.

    The algorithm greedily tiles each region with the largest usable page;
    if the per-core TLB budget would be exceeded it escalates to a larger
    minimum page size, trading wasted physical memory for entries — the
    trade-off §VII.B concedes ("the memory subsystem may waste physical
    memory as large pages are tiled together"). *)

type config = {
  dram_bytes : int;
  kernel_bytes : int;   (** physical memory reserved for CNK itself *)
  nprocs : int;         (** 1, 2 or 4 *)
  text_bytes : int;
  data_bytes : int;
  shared_bytes : int;
  persist_bytes : int;  (** reserved pool for persistent memory (§IV.D) *)
  tlb_budget : int;     (** per-core entry budget the map must fit in *)
  main_stack_bytes : int;
}

val default_config : config
(** BG/P-like: 2 GiB DRAM, 16 MB kernel, SMP mode, 16 MB shared, 64 MB
    persist pool, 60-entry budget (4 slots kept free), 4 MB main stack. *)

(** Fixed virtual bases, identical in every process. *)
val text_va : int
val shared_va : int
val persist_va : int

type process_map = {
  proc_index : int;
  regions : Sysreq.region list;  (** text, data, heap/stack, shared *)
  heap_base : int;               (** start of the brk/mmap/stack range *)
  heap_stack_bytes : int;
}

type t = {
  config : config;
  procs : process_map array;
  persist_base_pa : int;
  waste_bytes : int;          (** physical bytes lost to page rounding *)
  entries_per_core : int;     (** TLB entries a core must hold *)
  min_page : Bg_hw.Page_size.t;  (** smallest page size the tiling used *)
}

val compute : config -> (t, string) result
(** Runs the partitioning algorithm. Fails (with a human-readable reason)
    if the job cannot fit: too little memory, or no page-size escalation
    satisfies the TLB budget. *)

val region_for : process_map -> int -> Sysreq.region option
(** The static region covering a virtual address, if any. *)

val tlb_entries : process_map -> Bg_hw.Tlb.entry list
(** The hardware TLB entries realizing a process's map. *)

val tile : va:int -> pa:int -> bytes:int -> floor:Bg_hw.Page_size.t ->
  (Bg_hw.Page_size.t * int * int) list
(** Exposed for tests: decompose a region into (page, va, pa) tiles using
    pages no smaller than [floor]. [va] and [pa] must be [floor]-aligned;
    the tiling covers at least [bytes] (rounding up to the floor page). *)

val pp : Format.formatter -> t -> unit
(** Render the layout in the style of the paper's Fig 3. *)
