lib/core/cluster.ml: Array Bg_cio Bg_engine Fun List Machine Node Printf Sim
