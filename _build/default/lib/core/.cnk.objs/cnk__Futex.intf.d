lib/core/futex.mli:
