lib/core/persist.ml: Errno Hashtbl List
