lib/core/mmap_tracker.mli: Errno
