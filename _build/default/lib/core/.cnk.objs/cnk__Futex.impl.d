lib/core/futex.ml: Hashtbl List
