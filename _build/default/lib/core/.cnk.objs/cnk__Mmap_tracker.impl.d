lib/core/mmap_tracker.ml: Errno List
