lib/core/persist.mli: Errno
