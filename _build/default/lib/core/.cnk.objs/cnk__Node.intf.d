lib/core/node.mli: Bg_cio Bg_engine Bg_hw Job Machine Mapping Persist
