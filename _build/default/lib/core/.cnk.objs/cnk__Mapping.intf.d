lib/core/mapping.mli: Bg_hw Format Sysreq
