lib/core/cluster.mli: Bg_cio Bg_engine Bg_hw Job Machine Mapping Node
