lib/core/mapping.ml: Array Bg_hw Format List Page_size Printf Sysreq Tlb
