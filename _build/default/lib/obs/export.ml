open Bg_engine

(* --- JSON helpers ------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* --- Chrome trace-event (catapult) format ------------------------------ *)

(* One "X" (complete) event per span: ts/dur in microseconds, pid = rank,
   tid = core. Process-name metadata rows label each rank so the catapult
   viewer shows "rank 3" instead of "pid 3"; the control system (rank -1)
   gets its own row. *)

let pid_of_rank rank = if rank = Obs.node_scope then 0xFFFF else rank

let rank_label rank =
  if rank = Obs.node_scope then "control system" else Printf.sprintf "rank %d" rank

let chrome_trace obs =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char b ','
  in
  let ranks = Hashtbl.create 8 in
  List.iter
    (fun (s : Obs.span) ->
      if not (Hashtbl.mem ranks s.rank) then Hashtbl.add ranks s.rank ();
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"depth\":%d}}"
           (json_escape s.name) (json_escape s.cat) (Cycles.to_us s.start)
           (Cycles.to_us (s.finish - s.start))
           (pid_of_rank s.rank) s.core s.depth))
    (Obs.spans obs);
  let labelled = Hashtbl.fold (fun r () acc -> r :: acc) ranks [] |> List.sort compare in
  List.iter
    (fun rank ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"%s\"}}"
           (pid_of_rank rank)
           (json_escape (rank_label rank))))
    labelled;
  Buffer.add_string b "]}";
  Buffer.contents b

(* --- CSV --------------------------------------------------------------- *)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let metrics_csv obs =
  let b = Buffer.create 1024 in
  Buffer.add_string b "subsystem,name,rank,core,kind,count,value,mean,min,max\n";
  List.iter
    (fun (m : Obs.metric) ->
      let k = m.Obs.key in
      let row =
        match m.Obs.value with
        | Obs.Counter v ->
          Printf.sprintf "%s,%s,%d,%d,counter,,%d,,," (csv_escape k.Obs.subsystem)
            (csv_escape k.Obs.name) k.Obs.rank k.Obs.core v
        | Obs.Gauge v ->
          Printf.sprintf "%s,%s,%d,%d,gauge,,%d,,," (csv_escape k.Obs.subsystem)
            (csv_escape k.Obs.name) k.Obs.rank k.Obs.core v
        | Obs.Timer { n; mean; min; max } ->
          Printf.sprintf "%s,%s,%d,%d,timer,%d,,%.3f,%.0f,%.0f" (csv_escape k.Obs.subsystem)
            (csv_escape k.Obs.name) k.Obs.rank k.Obs.core n mean min max
      in
      Buffer.add_string b row;
      Buffer.add_char b '\n')
    (Obs.snapshot obs);
  Buffer.contents b

let spans_csv obs =
  let b = Buffer.create 1024 in
  Buffer.add_string b "cat,name,rank,core,start_cycle,finish_cycle,duration_cycles,depth\n";
  List.iter
    (fun (s : Obs.span) ->
      Buffer.add_string b
        (Printf.sprintf "%s,%s,%d,%d,%d,%d,%d,%d\n" (csv_escape s.Obs.cat)
           (csv_escape s.Obs.name) s.Obs.rank s.Obs.core s.Obs.start s.Obs.finish
           (s.Obs.finish - s.Obs.start) s.Obs.depth))
    (Obs.spans obs);
  Buffer.contents b

let to_file ~path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* --- minimal JSON syntax checker --------------------------------------- *)

(* Enough of RFC 8259 to assert that what we emit parses: values, nesting,
   strings with escapes, numbers. Used by tests and by obs_tool's smoke
   validation, so the repo needs no external JSON dependency. *)

exception Bad of string

let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit =
    String.iter (fun c -> expect c) lit
  in
  let string_ () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done
        | _ -> fail "bad escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          saw := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if not !saw then fail "expected digit"
    in
    digits ();
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_ ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "expected a value"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else begin
      let rec members () =
        skip_ws ();
        string_ ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          members ()
        | Some '}' -> advance ()
        | _ -> fail "expected ',' or '}'"
      in
      members ()
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else begin
      let rec elements () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          elements ()
        | Some ']' -> advance ()
        | _ -> fail "expected ',' or ']'"
      in
      elements ()
    end
  in
  try
    value ();
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at byte %d" !pos) else Ok ()
  with Bad msg -> Error msg
