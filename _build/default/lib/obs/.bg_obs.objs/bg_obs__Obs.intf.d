lib/obs/obs.mli: Bg_engine Format
