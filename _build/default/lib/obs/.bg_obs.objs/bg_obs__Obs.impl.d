lib/obs/obs.ml: Array Bg_engine Cycles Fnv Format Hashtbl List Option Printf Stats
