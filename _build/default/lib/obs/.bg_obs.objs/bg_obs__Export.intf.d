lib/obs/export.mli: Obs
