lib/obs/export.ml: Bg_engine Buffer Char Cycles Hashtbl List Obs Printf String
