(** Program images — the simulator's stand-in for ELF executables and
    shared libraries.

    An image carries the section geometry the loader needs (text and data
    sizes, as the ELF section headers would) plus, in place of machine
    code, an entry closure and a symbol table of OCaml closures. Dynamic
    libraries additionally declare an init cost so whole-library loading
    (paper §IV.B.2: CNK loads the full library rather than demand-paging)
    shows up in startup time, not as runtime noise. *)

type symbol = { symbol_name : string; fn : int -> int }
(** Simplified callable symbol: int -> int keeps dlsym monomorphic. *)

type t = {
  name : string;
  text_bytes : int;
  data_bytes : int;      (** .data + .bss *)
  entry : unit -> unit;  (** main; runs as user code on the main thread *)
  symbols : symbol list; (** exported functions, for dynamic libraries *)
  file_bytes : int;      (** on-"disk" size shipped at load time *)
}

val executable :
  name:string -> ?text_bytes:int -> ?data_bytes:int -> (unit -> unit) -> t
(** An executable with a main entry. Sizes default to 1 MB text, 1 MB data. *)

val library :
  name:string -> ?text_bytes:int -> ?data_bytes:int -> symbol list -> t
(** A dynamic library: entry is a no-op, symbols are exported. *)

val find_symbol : t -> string -> symbol option
