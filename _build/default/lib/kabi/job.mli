(** Job descriptions, as the control system would submit them.

    The user chooses the node mode (how many processes share a node — SMP,
    DUAL or VN on BG/P), the shared-memory size (which CNK requires
    up-front, paper §VII.B) and the image to run. *)

type mode = Smp | Dual | Vn
(** 1, 2 or 4 processes per node. *)

val processes_per_node : mode -> int

type t = {
  job_name : string;
  user : string;  (** submitting user; gates persistent-memory reuse *)
  mode : mode;
  image : Image.t;
  shared_bytes : int;       (** shared-memory region size, fixed at launch *)
  threads_per_core : int;   (** CNK limit; 1 on early BG/P, up to 3 later *)
  reproducible : bool;      (** boot in cycle-reproducible mode (paper §III) *)
  arg : int;                (** scalar argument passed to the program *)
}

val create :
  ?mode:mode ->
  ?shared_bytes:int ->
  ?threads_per_core:int ->
  ?reproducible:bool ->
  ?arg:int ->
  ?user:string ->
  name:string ->
  Image.t ->
  t
(** Defaults: SMP mode, 16 MB shared, 3 threads/core, not reproducible,
    user "user0". *)
