open Effect
open Effect.Deep

type _ Effect.t +=
  | E_consume : int -> unit Effect.t
  | E_syscall : Sysreq.request -> Sysreq.reply Effect.t
  | E_rdtsc : Bg_engine.Cycles.t Effect.t
  | E_load : (int * int) -> bytes Effect.t
  | E_store : (int * bytes) -> unit Effect.t
  | E_yield : unit Effect.t
  | E_cas : (int * int * int) -> bool Effect.t
  | E_faa : (int * int) -> int Effect.t

exception Killed of string

let consume n =
  if n < 0 then invalid_arg "Coro.consume: negative cycles";
  if n > 0 then perform (E_consume n)

let rdtsc () = perform E_rdtsc
let syscall r = perform (E_syscall r)
let load ~addr ~len = perform (E_load (addr, len))
let store ~addr data = perform (E_store (addr, data))
let yield () = perform E_yield
let cas ~addr ~expected ~desired = perform (E_cas (addr, expected, desired))
let fetch_add ~addr delta = perform (E_faa (addr, delta))

type step =
  | Finished
  | Crashed of exn
  | Consume of int * (unit -> step)
  | Syscall of Sysreq.request * (Sysreq.reply -> step)
  | Rdtsc of (Bg_engine.Cycles.t -> step)
  | Load of int * int * (bytes -> step)
  | Store of int * bytes * (unit -> step)
  | Yield of (unit -> step)
  | Cas of int * int * int * (bool -> step)
  | Fetch_add of int * int * (int -> step)

let start f =
  match_with f ()
    {
      retc = (fun () -> Finished);
      exnc = (fun e -> Crashed e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_consume n ->
            Some (fun (k : (a, step) continuation) -> Consume (n, fun () -> continue k ()))
          | E_syscall r -> Some (fun k -> Syscall (r, fun reply -> continue k reply))
          | E_rdtsc -> Some (fun k -> Rdtsc (fun t -> continue k t))
          | E_load (addr, len) -> Some (fun k -> Load (addr, len, fun b -> continue k b))
          | E_store (addr, data) -> Some (fun k -> Store (addr, data, fun () -> continue k ()))
          | E_yield -> Some (fun k -> Yield (fun () -> continue k ()))
          | E_cas (addr, expected, desired) ->
            Some (fun k -> Cas (addr, expected, desired, fun ok -> continue k ok))
          | E_faa (addr, delta) ->
            Some (fun k -> Fetch_add (addr, delta, fun old -> continue k old))
          | _ -> None);
    }
