(** Effect-handler coroutines: the "machine code" of simulated threads.

    User programs are plain OCaml closures that interact with the machine
    only through the operations below. Each operation performs an OCaml 5
    effect; {!start} reifies the computation into a {!step} value the
    kernel schedules — exactly the boundary a real kernel sees (trap in,
    decide, resume). Continuations are one-shot: each [step]'s resume
    function must be called at most once.

    [consume] is time: a block of straight-line computation costing [n]
    cycles. Kernels decide how much wall-clock those cycles take (CNK:
    exactly [n] plus DRAM refresh; the FWK: [n] plus ticks, daemons and
    TLB misses — the paper's noise story). *)

val consume : int -> unit
(** Retire [n >= 0] cycles of computation. *)

val rdtsc : unit -> Bg_engine.Cycles.t
(** Read the core's timebase register. *)

val syscall : Sysreq.request -> Sysreq.reply

val load : addr:int -> len:int -> bytes
(** Data access through the MMU (translation + DAC checks apply). *)

val store : addr:int -> bytes -> unit

val yield : unit -> unit
(** Voluntarily let another thread of the same core run. *)

val cas : addr:int -> expected:int -> desired:int -> bool
(** Atomic compare-and-swap on a 64-bit word (lwarx/stwcx on the real
    core). The kernel performs the read-modify-write as one indivisible
    step, which is what makes user-space NPTL mutexes possible. *)

val fetch_add : addr:int -> int -> int
(** Atomic fetch-and-add; returns the previous value. *)

type step =
  | Finished
  | Crashed of exn
  | Consume of int * (unit -> step)
  | Syscall of Sysreq.request * (Sysreq.reply -> step)
  | Rdtsc of (Bg_engine.Cycles.t -> step)
  | Load of int * int * (bytes -> step)
  | Store of int * bytes * (unit -> step)
  | Yield of (unit -> step)
  | Cas of int * int * int * (bool -> step)      (** addr, expected, desired *)
  | Fetch_add of int * int * (int -> step)       (** addr, delta *)

val start : (unit -> unit) -> step
(** Run [f] until it finishes, crashes, or performs its first operation. *)

exception Killed of string
(** Kernels discard a continuation by dropping it; user code that must
    observe termination (e.g. a SIGSEGV with no handler) sees this. *)
