type mode = Smp | Dual | Vn

let processes_per_node = function Smp -> 1 | Dual -> 2 | Vn -> 4

type t = {
  job_name : string;
  user : string;
  mode : mode;
  image : Image.t;
  shared_bytes : int;
  threads_per_core : int;
  reproducible : bool;
  arg : int;
}

let create ?(mode = Smp) ?(shared_bytes = 16 * 1024 * 1024) ?(threads_per_core = 3)
    ?(reproducible = false) ?(arg = 0) ?(user = "user0") ~name image =
  if threads_per_core < 1 then invalid_arg "Job.create: threads_per_core";
  if shared_bytes < 0 then invalid_arg "Job.create: shared_bytes";
  { job_name = name; user; mode; image; shared_bytes; threads_per_core; reproducible; arg }
