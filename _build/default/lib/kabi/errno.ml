type t =
  | EPERM
  | ENOENT
  | ESRCH
  | EINTR
  | EIO
  | EBADF
  | EAGAIN
  | ENOMEM
  | EACCES
  | EFAULT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | EINVAL
  | EMFILE
  | ENOSPC
  | ESPIPE
  | EROFS
  | ENOSYS
  | ENOTEMPTY
  | ENAMETOOLONG

let to_string = function
  | EPERM -> "EPERM"
  | ENOENT -> "ENOENT"
  | ESRCH -> "ESRCH"
  | EINTR -> "EINTR"
  | EIO -> "EIO"
  | EBADF -> "EBADF"
  | EAGAIN -> "EAGAIN"
  | ENOMEM -> "ENOMEM"
  | EACCES -> "EACCES"
  | EFAULT -> "EFAULT"
  | EEXIST -> "EEXIST"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | EINVAL -> "EINVAL"
  | EMFILE -> "EMFILE"
  | ENOSPC -> "ENOSPC"
  | ESPIPE -> "ESPIPE"
  | EROFS -> "EROFS"
  | ENOSYS -> "ENOSYS"
  | ENOTEMPTY -> "ENOTEMPTY"
  | ENAMETOOLONG -> "ENAMETOOLONG"

let code = function
  | EPERM -> 1
  | ENOENT -> 2
  | ESRCH -> 3
  | EINTR -> 4
  | EIO -> 5
  | EBADF -> 9
  | EAGAIN -> 11
  | ENOMEM -> 12
  | EACCES -> 13
  | EFAULT -> 14
  | EEXIST -> 17
  | ENOTDIR -> 20
  | EISDIR -> 21
  | EINVAL -> 22
  | EMFILE -> 24
  | ENOSPC -> 28
  | ESPIPE -> 29
  | EROFS -> 30
  | ENOSYS -> 38
  | ENOTEMPTY -> 39
  | ENAMETOOLONG -> 36

let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal = ( = )
