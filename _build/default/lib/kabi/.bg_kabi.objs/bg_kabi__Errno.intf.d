lib/kabi/errno.mli: Format
