lib/kabi/job.mli: Image
