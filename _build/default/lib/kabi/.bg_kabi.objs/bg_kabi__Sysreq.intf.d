lib/kabi/sysreq.mli: Bg_hw Errno Format
