lib/kabi/job.ml: Image
