lib/kabi/image.mli:
