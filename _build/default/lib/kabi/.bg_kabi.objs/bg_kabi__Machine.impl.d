lib/kabi/machine.ml: Array Bg_engine Bg_hw Bg_obs List
