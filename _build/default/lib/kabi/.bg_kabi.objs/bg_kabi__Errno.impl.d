lib/kabi/errno.ml: Format
