lib/kabi/sysreq.ml: Bg_hw Bytes Errno Format List Printf String
