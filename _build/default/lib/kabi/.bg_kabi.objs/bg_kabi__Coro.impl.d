lib/kabi/coro.ml: Bg_engine Effect Sysreq
