lib/kabi/coro.mli: Bg_engine Sysreq
