lib/kabi/machine.mli: Bg_engine Bg_hw Bg_obs
