lib/kabi/image.ml: List
