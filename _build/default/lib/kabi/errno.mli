(** POSIX error codes returned by syscalls.

    One of the paper's points (§IV.A) is that function-shipping to a Linux
    I/O node makes CNK produce {e Linux's} result codes verbatim; both
    kernels and the in-memory filesystem speak this type. *)

type t =
  | EPERM
  | ENOENT
  | ESRCH
  | EINTR
  | EIO
  | EBADF
  | EAGAIN
  | ENOMEM
  | EACCES
  | EFAULT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | EINVAL
  | EMFILE
  | ENOSPC
  | ESPIPE
  | EROFS
  | ENOSYS
  | ENOTEMPTY
  | ENAMETOOLONG

val to_string : t -> string
val code : t -> int
(** The conventional Linux numeric value. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
