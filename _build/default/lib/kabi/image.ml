type symbol = { symbol_name : string; fn : int -> int }

type t = {
  name : string;
  text_bytes : int;
  data_bytes : int;
  entry : unit -> unit;
  symbols : symbol list;
  file_bytes : int;
}

let executable ~name ?(text_bytes = 1 lsl 20) ?(data_bytes = 1 lsl 20) entry =
  { name; text_bytes; data_bytes; entry; symbols = []; file_bytes = text_bytes + data_bytes }

let library ~name ?(text_bytes = 1 lsl 20) ?(data_bytes = 1 lsl 18) symbols =
  {
    name;
    text_bytes;
    data_bytes;
    entry = (fun () -> ());
    symbols;
    file_bytes = text_bytes + data_bytes;
  }

let find_symbol t name = List.find_opt (fun s -> s.symbol_name = name) t.symbols
