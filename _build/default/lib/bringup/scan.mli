(** Destructive logic scans (paper §III).

    A scan dumps a chip's internal state for the waveform display — and
    destroys the chip state doing it, so a run can be scanned exactly
    once. The methodology the paper describes follows: re-run the exact
    same (cycle-reproducible) workload many times, scanning one cycle
    later each time, and assemble the per-cycle snapshots into a waveform.

    A scan captures: the chip's architectural digest, the kernel's scan
    state, and the machine trace digest up to the stop cycle. *)

type snapshot = {
  cycle : Bg_engine.Cycles.t;
  chip_state : Bg_engine.Fnv.t;
  kernel_state : Bg_engine.Fnv.t;
  trace_digest : Bg_engine.Fnv.t;
}

val equal : snapshot -> snapshot -> bool
val pp : Format.formatter -> snapshot -> unit

val capture_at :
  run:(unit -> Cnk.Cluster.t) -> rank:int -> cycle:Bg_engine.Cycles.t -> snapshot
(** Build a fresh machine with [run] (which sets up and {e starts} the
    workload without draining the sim), arm the clock-stop on [rank]'s
    chip at [cycle], run until it fires, and scan. The simulation is
    abandoned afterwards — the destructive part. Raises [Failure] if the
    workload finishes before the stop cycle. *)
