open Bg_engine

type bug = { skew_threshold : float; flake_probability : float; glitch_cycle : int }

let default_bug = { skew_threshold = 0.6; flake_probability = 0.7; glitch_cycle = 120_000 }

let susceptible bug chip = Bg_hw.Chip.manufacturing_skew chip > bug.skew_threshold

let arm bug cluster ~rank ~temperature_seed =
  let node = Cnk.Cluster.node cluster rank in
  let chip = Cnk.Node.chip node in
  if susceptible bug chip then begin
    let rng = Rng.create temperature_seed in
    if Rng.float rng 1.0 < bug.flake_probability then begin
      let sim = Cnk.Cluster.sim cluster in
      let offset = int_of_float (Bg_hw.Chip.manufacturing_skew chip *. 1000.0) in
      ignore
        (Sim.schedule_at sim (bug.glitch_cycle + offset) (fun () ->
             (* the arbiter glitch: an observable spurious event *)
             Sim.emit sim ~label:"torus.arbiter.glitch" ~value:(Int64.of_int rank)))
    end
  end

type finding = { rank : int; diverged_at : Cycles.t }

let hunt bug ~ranks ~samples ~runs_per_rank ~seed =
  (* the reproducible workload under test: a small compute job *)
  let make_run ~rank ~temperature_seed () =
    let cluster = Cnk.Cluster.create ~dims:(max 2 ranks, 1, 1) ~seed () in
    Cnk.Cluster.boot_all cluster;
    arm bug cluster ~rank ~temperature_seed;
    let image =
      Image.executable ~name:"bringup-test" (fun () ->
          for _ = 1 to 100 do
            Coro.consume 2_000
          done)
    in
    Cnk.Cluster.launch_all cluster ~ranks:[ rank ] (Job.create ~name:"bt" image);
    cluster
  in
  (* sample a window that brackets the glitch (its skew offset is < 1024):
     one stride before the base cycle through samples*stride after *)
  let stride = 256 in
  let from_cycle = bug.glitch_cycle - stride in
  List.concat
    (List.init ranks (fun rank ->
         (* golden waveform: a temperature stream that never fires *)
         let golden =
           Waveform.assemble
             ~run:(make_run ~rank ~temperature_seed:0xC01DL)
             ~rank ~from_cycle ~cycles:samples ~stride ()
         in
         let rec try_runs i =
           if i >= runs_per_rank then []
           else begin
             let noisy_seed = Int64.add seed (Int64.of_int ((rank * 1000) + i)) in
             let noisy =
               Waveform.assemble
                 ~run:(make_run ~rank ~temperature_seed:noisy_seed)
                 ~rank ~from_cycle ~cycles:samples ~stride ()
             in
             match Waveform.divergence golden noisy with
             | Some cycle -> [ { rank; diverged_at = cycle } ]
             | None -> try_runs (i + 1)
           end
         in
         try_runs 0))
