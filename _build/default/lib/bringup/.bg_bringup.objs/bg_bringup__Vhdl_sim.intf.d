lib/bringup/vhdl_sim.mli: Format
