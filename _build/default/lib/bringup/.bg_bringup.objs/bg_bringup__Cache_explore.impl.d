lib/bringup/cache_explore.ml: Bg_hw Bg_rt Cnk Format Image Job List Printf
