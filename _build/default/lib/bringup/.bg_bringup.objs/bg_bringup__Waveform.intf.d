lib/bringup/waveform.mli: Bg_engine Cnk Scan
