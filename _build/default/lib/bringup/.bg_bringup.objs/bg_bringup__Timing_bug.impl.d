lib/bringup/timing_bug.ml: Bg_engine Bg_hw Cnk Coro Cycles Image Int64 Job List Rng Sim Waveform
