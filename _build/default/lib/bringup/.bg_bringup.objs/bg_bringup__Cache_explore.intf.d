lib/bringup/cache_explore.mli: Bg_hw Format
