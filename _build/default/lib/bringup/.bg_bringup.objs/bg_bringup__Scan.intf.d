lib/bringup/scan.mli: Bg_engine Cnk Format
