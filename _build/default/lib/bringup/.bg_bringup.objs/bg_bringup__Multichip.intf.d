lib/bringup/multichip.mli: Bg_engine Cnk
