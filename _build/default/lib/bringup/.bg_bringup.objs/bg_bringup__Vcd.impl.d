lib/bringup/vcd.ml: Buffer Int64 List Printf Scan Waveform
