lib/bringup/scan.ml: Bg_engine Bg_hw Cnk Cycles Fnv Format Sim Trace
