lib/bringup/multichip.ml: Array Bg_engine Bg_hw Cnk Machine Sim
