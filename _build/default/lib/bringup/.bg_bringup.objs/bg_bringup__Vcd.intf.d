lib/bringup/vcd.mli: Waveform
