lib/bringup/vhdl_sim.ml: Bg_fwk Cnk Format List Printf
