lib/bringup/waveform.ml: List Scan
