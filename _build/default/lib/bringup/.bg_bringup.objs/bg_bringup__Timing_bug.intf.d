lib/bringup/timing_bug.mli: Bg_engine Bg_hw Cnk
