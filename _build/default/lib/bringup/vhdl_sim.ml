let default_hz = 10.0

let wall_seconds ~cycles ~hz = float_of_int cycles /. hz

let human ~seconds =
  if seconds < 120.0 then Printf.sprintf "%.0f seconds" seconds
  else if seconds < 2.0 *. 3600.0 then Printf.sprintf "%.0f minutes" (seconds /. 60.0)
  else if seconds < 2.0 *. 86400.0 then Printf.sprintf "%.1f hours" (seconds /. 3600.0)
  else if seconds < 2.0 *. 604800.0 then Printf.sprintf "%.1f days" (seconds /. 86400.0)
  else Printf.sprintf "%.1f weeks" (seconds /. 604800.0)

type row = { kernel : string; boot_cycles : int; wall : float; rendered : string }

let row ~hz kernel boot_cycles =
  let wall = wall_seconds ~cycles:boot_cycles ~hz in
  { kernel; boot_cycles; wall; rendered = human ~seconds:wall }

let comparison ?(hz = default_hz) () =
  [
    row ~hz "CNK" Cnk.Node.boot_cycles;
    row ~hz "Linux (stripped)" Bg_fwk.Node.boot_cycles_stripped;
    row ~hz "Linux (full)" Bg_fwk.Node.boot_cycles_full;
  ]

let pp ppf rows =
  Format.fprintf ppf "boot at 10 Hz VHDL-simulator speed:@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-18s %9d cycles  -> %s@." r.kernel r.boot_cycles r.rendered)
    rows
