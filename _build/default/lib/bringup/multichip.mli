(** Multichip reproducible debugging (paper §III).

    The Clock-Stop hardware spans only one chip, so cross-chip bugs need
    the reboot protocol extension the paper describes: the Global Barrier
    network stays active and configured across reboots, every chip resets
    and restarts, and all chips leave the barrier on the same cycle — so
    a packet injected by one chip lands on exactly the same cycle relative
    to the other chip on every run. *)

val coordinated_restart :
  Cnk.Cluster.t -> reproducible:bool -> on_aligned:(release_cycle:Bg_engine.Cycles.t -> unit) -> unit
(** Reset and restart every node; each arrives at the global barrier when
    its kernel is back up; [on_aligned] fires at the common release cycle
    (schedule the workload from there). *)

val aligned_packet_cycle :
  ?seed:int64 -> src:int -> dst:int -> work_before_send:int -> unit -> Bg_engine.Cycles.t
(** Build a 2-chip machine, perform a coordinated reproducible restart,
    then have [src] compute and inject one packet to [dst]; returns the
    packet's arrival cycle {e relative to the barrier release}. Two calls
    with the same seed must agree exactly — the §III property. *)
