open Bg_engine

type snapshot = {
  cycle : Cycles.t;
  chip_state : Fnv.t;
  kernel_state : Fnv.t;
  trace_digest : Fnv.t;
}

let equal a b =
  a.cycle = b.cycle
  && Fnv.equal a.chip_state b.chip_state
  && Fnv.equal a.kernel_state b.kernel_state
  && Fnv.equal a.trace_digest b.trace_digest

let pp ppf s =
  Format.fprintf ppf "@[scan@@%d chip=%a kernel=%a trace=%a@]" s.cycle Fnv.pp
    s.chip_state Fnv.pp s.kernel_state Fnv.pp s.trace_digest

let capture_at ~run ~rank ~cycle =
  let cluster = run () in
  let sim = Cnk.Cluster.sim cluster in
  let node = Cnk.Cluster.node cluster rank in
  let stop = Bg_hw.Clock_stop.create sim ~chip:(Cnk.Node.chip node) in
  Bg_hw.Clock_stop.arm stop ~at_cycle:cycle;
  match Sim.run sim with
  | Sim.Halted reason
    when reason = Bg_hw.Clock_stop.reason_prefix ^ string_of_int rank ->
    {
      cycle;
      chip_state = Bg_hw.Chip.scan_state (Cnk.Node.chip node);
      kernel_state = Cnk.Node.scan_state node;
      trace_digest = Trace.digest (Sim.trace sim);
    }
  | Sim.Halted other -> failwith ("Scan.capture_at: unexpected halt: " ^ other)
  | Sim.Completed | Sim.Reached_limit ->
    failwith "Scan.capture_at: workload ended before the stop cycle"
