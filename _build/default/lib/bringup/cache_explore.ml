type result = { mapping_name : string; imbalance : float; accesses : int }

let name_of_mapping = function
  | Bg_hw.Cache.Modulo_line -> "modulo-line"
  | Bg_hw.Cache.Xor_fold -> "xor-fold"
  | Bg_hw.Cache.Fixed b -> Printf.sprintf "fixed-bank-%d" b

(* A strided vector sweep: with stride = banks * line the modulo mapping
   sends every access to one bank; xor-fold spreads them. *)
let kernel ~stride_bytes ~elements () =
  let base = Bg_rt.Malloc.malloc (stride_bytes * (elements + 1)) in
  for rep = 1 to 4 do
    ignore rep;
    for i = 0 to elements - 1 do
      Bg_rt.Libc.poke (base + (i * stride_bytes)) i
    done
  done

let sweep ?(stride_bytes = 1024) ?(elements = 256) ?(seed = 1L) ~mappings () =
  List.map
    (fun mapping ->
      let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) ~seed () in
      Cnk.Cluster.boot_all cluster;
      let chip = Cnk.Node.chip (Cnk.Cluster.node cluster 0) in
      ignore (Bg_hw.Chip.set_l2_mapping chip mapping);
      let image =
        Image.executable ~name:"cache-sweep" (kernel ~stride_bytes ~elements)
      in
      Cnk.Cluster.run_job cluster (Job.create ~name:"cs" image);
      let l2 = Bg_hw.Chip.l2 chip in
      let accesses =
        let total = ref 0 in
        for b = 0 to Bg_hw.Cache.banks l2 - 1 do
          total := !total + Bg_hw.Cache.access_count l2 ~bank:b
        done;
        !total
      in
      {
        mapping_name = name_of_mapping mapping;
        imbalance = Bg_hw.Cache.imbalance l2;
        accesses;
      })
    mappings

let pp ppf results =
  Format.fprintf ppf "L2 bank mapping sweep (imbalance: 1.0 = even):@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-14s imbalance %5.2f over %d accesses@." r.mapping_name
        r.imbalance r.accesses)
    results
