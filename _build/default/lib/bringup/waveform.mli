(** Waveform assembly from successive destructive scans (paper §III).

    "The scans are assembled into a logic waveform display that spans
    hundreds or thousands of cycles": run the reproducible workload once
    per sample cycle, scanning one cycle later each run, and line the
    snapshots up. {!divergence} compares two waveforms (e.g. a healthy
    chip vs one with a timing bug) and reports the first cycle at which
    their state differs — the debugging step that localized the paper's
    borderline timing bug. *)

type t = { samples : Scan.snapshot list (** ascending by cycle *) }

val assemble :
  run:(unit -> Cnk.Cluster.t) ->
  rank:int ->
  from_cycle:Bg_engine.Cycles.t ->
  cycles:int ->
  ?stride:int ->
  unit ->
  t
(** [cycles] samples starting at [from_cycle], one fresh (destroyed) run
    per sample. [stride] defaults to 1 — the scan-one-cycle-later loop. *)

val length : t -> int

val reproducible : run:(unit -> Cnk.Cluster.t) -> rank:int -> cycle:int -> bool
(** Scan the same cycle on two independent runs: equal snapshots? This is
    the cycle-reproducibility check itself. *)

val divergence : t -> t -> Bg_engine.Cycles.t option
(** First sampled cycle where the two waveforms disagree, if any. Raises
    [Invalid_argument] if sampled at different cycles. *)
