(** VCD (Value Change Dump) export of assembled waveforms.

    The paper's §III scans were "assembled into a logic waveform display";
    this writes the assembled {!Waveform.t} in the standard VCD format so
    any wave viewer (GTKWave etc.) can display the three 64-bit signals —
    chip architectural state, kernel state, and the trace digest — over
    the sampled cycles. Divergences between two runs show up as the exact
    sample where the signals split. *)

val to_string : ?module_name:string -> Waveform.t -> string
(** Render a complete VCD document. Raises [Invalid_argument] on an empty
    waveform. *)

val diff_to_string : golden:Waveform.t -> suspect:Waveform.t -> string
(** Both waveforms side by side (golden_* and suspect_* signals) plus a
    1-bit [diverged] marker wire — the §III debugging view. *)
