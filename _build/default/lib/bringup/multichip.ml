open Bg_engine

let coordinated_restart cluster ~reproducible ~on_aligned =
  let machine = Cnk.Cluster.machine cluster in
  let nodes = Cnk.Cluster.nodes cluster in
  Array.iter
    (fun node ->
      Cnk.Node.prepare_and_reset node ~reproducible ~on_ready:(fun () ->
          (* the barrier network survived the reboot in a consistent state *)
          Bg_hw.Barrier_net.arrive machine.Machine.barrier ~rank:(Cnk.Node.rank node)
            ~on_release:(fun ~release_cycle ->
              if Cnk.Node.rank node = 0 then on_aligned ~release_cycle)))
    nodes

let aligned_packet_cycle ?(seed = 1L) ~src ~dst ~work_before_send () =
  let cluster = Cnk.Cluster.create ~dims:(2, 1, 1) ~seed () in
  Cnk.Cluster.boot_all cluster;
  let machine = Cnk.Cluster.machine cluster in
  let sim = Cnk.Cluster.sim cluster in
  let relative = ref None in
  coordinated_restart cluster ~reproducible:true ~on_aligned:(fun ~release_cycle ->
      (* chip [src] computes, then injects one packet to [dst] *)
      ignore
        (Sim.schedule_at sim (release_cycle + work_before_send) (fun () ->
             Bg_hw.Torus.transfer machine.Machine.torus ~src ~dst ~bytes:64
               ~on_arrival:(fun ~arrival_cycle ->
                 relative := Some (arrival_cycle - release_cycle))
               ())));
  ignore (Sim.run sim);
  match !relative with
  | Some c -> c
  | None -> failwith "Multichip.aligned_packet_cycle: packet never arrived"
