type t = { samples : Scan.snapshot list }

let assemble ~run ~rank ~from_cycle ~cycles ?(stride = 1) () =
  let samples =
    List.init cycles (fun i ->
        Scan.capture_at ~run ~rank ~cycle:(from_cycle + (i * stride)))
  in
  { samples }

let length t = List.length t.samples

let reproducible ~run ~rank ~cycle =
  let a = Scan.capture_at ~run ~rank ~cycle in
  let b = Scan.capture_at ~run ~rank ~cycle in
  Scan.equal a b

let divergence a b =
  let rec go = function
    | [], [] -> None
    | sa :: ra, sb :: rb ->
      if sa.Scan.cycle <> sb.Scan.cycle then
        invalid_arg "Waveform.divergence: mismatched sample cycles"
      else if not (Scan.equal sa sb) then Some sa.Scan.cycle
      else go (ra, rb)
    | _ -> invalid_arg "Waveform.divergence: different lengths"
  in
  go (a.samples, b.samples)
