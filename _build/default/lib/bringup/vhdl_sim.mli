(** Boot-time economics on the VHDL cycle-accurate simulator (paper §III).

    "During chip design the VHDL cycle-accurate simulator runs at 10 Hz.
    In such an environment, CNK boots in a couple of hours, while Linux
    takes weeks. Even stripped down, Linux takes days to boot." This
    module converts the kernels' boot-cycle budgets into wall time at a
    given simulator speed and renders the comparison. *)

val default_hz : float
(** 10 Hz. *)

val wall_seconds : cycles:int -> hz:float -> float

val human : seconds:float -> string
(** "2.0 hours", "3.0 days", "2.9 weeks", ... *)

type row = { kernel : string; boot_cycles : int; wall : float; rendered : string }

val comparison : ?hz:float -> unit -> row list
(** CNK vs stripped Linux vs full Linux at the given simulator speed. *)

val pp : Format.formatter -> row list -> unit
