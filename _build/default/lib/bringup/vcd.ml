let bin64 v =
  let b = Buffer.create 64 in
  for i = 63 downto 0 do
    Buffer.add_char b
      (if Int64.logand (Int64.shift_right_logical v i) 1L = 1L then '1' else '0')
  done;
  Buffer.contents b

type signal = { id : string; name : string; width : int }

let header ~module_name signals =
  let b = Buffer.create 256 in
  Buffer.add_string b "$date simulated $end\n";
  Buffer.add_string b "$version cnk-repro bringup waveform $end\n";
  Buffer.add_string b "$timescale 1 ns $end\n";
  Buffer.add_string b (Printf.sprintf "$scope module %s $end\n" module_name);
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "$var wire %d %s %s $end\n" s.width s.id s.name))
    signals;
  Buffer.add_string b "$upscope $end\n$enddefinitions $end\n";
  Buffer.contents b

let dump_sample b ~cycle changes =
  Buffer.add_string b (Printf.sprintf "#%d\n" cycle);
  List.iter
    (fun (s, value) ->
      if s.width = 1 then Buffer.add_string b (Printf.sprintf "%s%s\n" value s.id)
      else Buffer.add_string b (Printf.sprintf "b%s %s\n" value s.id))
    changes

let to_string ?(module_name = "chip") (wf : Waveform.t) =
  if wf.Waveform.samples = [] then invalid_arg "Vcd.to_string: empty waveform";
  let chip = { id = "!"; name = "chip_state"; width = 64 } in
  let kernel = { id = "\""; name = "kernel_state"; width = 64 } in
  let trace = { id = "#"; name = "trace_digest"; width = 64 } in
  let b = Buffer.create 1024 in
  Buffer.add_string b (header ~module_name [ chip; kernel; trace ]);
  List.iter
    (fun (s : Scan.snapshot) ->
      dump_sample b ~cycle:s.Scan.cycle
        [
          (chip, bin64 s.Scan.chip_state);
          (kernel, bin64 s.Scan.kernel_state);
          (trace, bin64 s.Scan.trace_digest);
        ])
    wf.Waveform.samples;
  Buffer.contents b

let diff_to_string ~golden ~suspect =
  if List.length golden.Waveform.samples <> List.length suspect.Waveform.samples then
    invalid_arg "Vcd.diff_to_string: waveforms of different lengths";
  let mk prefix c =
    {
      id = prefix ^ c;
      name =
        (match c with
        | "!" -> prefix ^ "chip_state"
        | "\"" -> prefix ^ "kernel_state"
        | _ -> prefix ^ "trace_digest");
      width = 64;
    }
  in
  let g_chip = mk "g" "!" and g_kern = mk "g" "\"" and g_trace = mk "g" "#" in
  let s_chip = mk "s" "!" and s_kern = mk "s" "\"" and s_trace = mk "s" "#" in
  let diverged = { id = "d"; name = "diverged"; width = 1 } in
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (header ~module_name:"compare" [ g_chip; g_kern; g_trace; s_chip; s_kern; s_trace; diverged ]);
  List.iter2
    (fun (g : Scan.snapshot) (s : Scan.snapshot) ->
      if g.Scan.cycle <> s.Scan.cycle then
        invalid_arg "Vcd.diff_to_string: mismatched sample cycles";
      dump_sample b ~cycle:g.Scan.cycle
        [
          (g_chip, bin64 g.Scan.chip_state);
          (g_kern, bin64 g.Scan.kernel_state);
          (g_trace, bin64 g.Scan.trace_digest);
          (s_chip, bin64 s.Scan.chip_state);
          (s_kern, bin64 s.Scan.kernel_state);
          (s_trace, bin64 s.Scan.trace_digest);
          (diverged, if Scan.equal g s then "0" else "1");
        ])
    golden.Waveform.samples suspect.Waveform.samples;
  Buffer.contents b
