(** L2 cache-bank mapping exploration (paper §III).

    "CNK enabled application kernels to be run with varied mappings of
    code and data memory traffic to the L2 cache banks, allowing
    measurement of cache effects, and optimizing the memory system
    hierarchy to minimize conflicts." This module is that experiment: run
    a memory-sweeping application kernel under each candidate bank
    mapping and report the bank-load imbalance (1.0 = even; higher = more
    conflicts). It is also the §III "artificially created conflicts"
    tool: the [Fixed] mapping funnels everything into one bank. *)

type result = {
  mapping_name : string;
  imbalance : float;    (** max bank load / mean bank load *)
  accesses : int;
}

val sweep :
  ?stride_bytes:int -> ?elements:int -> ?seed:int64 ->
  mappings:Bg_hw.Cache.mapping list -> unit -> result list
(** Run the strided DAXPY kernel once per candidate mapping (fresh machine
    each time — these are separate bringup runs) and collect bank
    statistics. Default stride 1024 B (a pathological power-of-two stride),
    256 elements. *)

val name_of_mapping : Bg_hw.Cache.mapping -> string

val pp : Format.formatter -> result list -> unit
