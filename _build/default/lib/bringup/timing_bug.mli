(** The borderline timing bug of paper §III.

    "A borderline timing bug whose manifestation was dependent both on
    manufacturing variability and on local temperature variations or
    electrical noise during execution. The bug did not occur on every
    chip, nor on every run on a chip that had the potential to exhibit
    the problem."

    The model: chips whose manufacturing skew exceeds a threshold are
    {e susceptible}; on a susceptible chip each run flips a coin (from a
    temperature/noise stream outside the reproducible state) and, when it
    fires, a torus-arbiter glitch perturbs the architectural trace at a
    skew-determined cycle. The hunt procedure is the paper's: gather
    waveforms on reproducible runs across chips and find where a chip
    diverges from its own golden run. *)

type bug = {
  skew_threshold : float;   (** manufacturing skew above this = susceptible *)
  flake_probability : float; (** chance a susceptible chip glitches in a run *)
  glitch_cycle : int;        (** base cycle at which the glitch lands *)
}

val default_bug : bug

val susceptible : bug -> Bg_hw.Chip.t -> bool

val arm : bug -> Cnk.Cluster.t -> rank:int -> temperature_seed:int64 -> unit
(** Install the bug on one node for this run: if susceptible and the
    temperature coin fires, a glitch event corrupts the trace at
    [glitch_cycle] (+ a small skew-dependent offset). *)

type finding = { rank : int; diverged_at : Bg_engine.Cycles.t }

val hunt :
  bug ->
  ranks:int ->
  samples:int ->
  runs_per_rank:int ->
  seed:int64 ->
  finding list
(** The debugging campaign: for every chip, assemble a golden waveform
    (cold temperature stream) and compare against waveforms from [runs_per_rank]
    noisy reruns; report every chip caught diverging and the first
    divergent sampled cycle. Susceptible chips are caught with probability
    [1 - (1-p)^runs]; healthy chips never diverge. *)
