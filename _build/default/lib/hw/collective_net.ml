open Bg_engine

type t = {
  sim : Sim.t;
  params : Params.t;
  compute_nodes : int;
  nodes_per_io_node : int;
  (* busy-until of each I/O node's shared root link, per direction *)
  up_busy : Cycles.t array;
  down_busy : Cycles.t array;
  mutable enabled : bool;
}

let create sim ?(params = Params.bgp) ~compute_nodes ~nodes_per_io_node () =
  if compute_nodes <= 0 || nodes_per_io_node <= 0 then
    invalid_arg "Collective_net.create";
  let io_nodes = (compute_nodes + nodes_per_io_node - 1) / nodes_per_io_node in
  {
    sim;
    params;
    compute_nodes;
    nodes_per_io_node;
    up_busy = Array.make io_nodes 0;
    down_busy = Array.make io_nodes 0;
    enabled = true;
  }

let compute_nodes t = t.compute_nodes
let io_node_count t = Array.length t.up_busy

let io_node_of t ~cn =
  if cn < 0 || cn >= t.compute_nodes then invalid_arg "Collective_net.io_node_of";
  cn / t.nodes_per_io_node

let tree_depth t =
  (* Binary-tree depth of a pset. *)
  let rec go depth n = if n <= 1 then depth else go (depth + 1) ((n + 1) / 2) in
  go 1 t.nodes_per_io_node

let enabled t = t.enabled
let set_enabled t v = t.enabled <- v

let serialization_cycles t bytes =
  int_of_float
    (Float.ceil (float_of_int bytes /. t.params.Params.collective_link_bytes_per_cycle))

let estimate_cycles t ~bytes =
  (tree_depth t * t.params.Params.collective_hop_cycles) + serialization_cycles t bytes

let ship t busy idx ~bytes ~on_arrival =
  if not t.enabled then raise (Fault.Unavailable "collective");
  let now = Sim.now t.sim in
  let ser = serialization_cycles t bytes in
  let start = max now busy.(idx) in
  busy.(idx) <- start + ser;
  let arrival = start + ser + (tree_depth t * t.params.Params.collective_hop_cycles) in
  ignore
    (Sim.schedule_at t.sim arrival (fun () -> on_arrival ~arrival_cycle:arrival))

let to_io_node t ~cn ~bytes ~on_arrival =
  let io = io_node_of t ~cn in
  Sim.emit t.sim ~label:"collective.up" ~value:(Int64.of_int cn);
  ship t t.up_busy io ~bytes ~on_arrival

let to_compute_node t ~cn ~bytes ~on_arrival =
  let io = io_node_of t ~cn in
  Sim.emit t.sim ~label:"collective.down" ~value:(Int64.of_int cn);
  ship t t.down_busy io ~bytes ~on_arrival
