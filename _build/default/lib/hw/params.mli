(** Chip and interconnect parameters of the simulated machine.

    Defaults model a Blue Gene/P node: 4 PowerPC-450-class cores at 850 MHz,
    2 GiB DDR, 64-entry TLB per core with 1 MB/16 MB/256 MB/1 GB pages, a
    3D torus (425 MB/s per link per direction), a collective (tree) network
    and a global barrier network. Everything is a plain record so bringup
    experiments can run with units disabled or resized (paper §III). *)

type t = {
  cores_per_node : int;
  dram_bytes : int;
  l1_bytes : int;
  l2_banks : int;
  l2_bytes : int;
  tlb_entries : int;  (** per-core TLB capacity *)
  torus_link_bytes_per_cycle : float;  (** 425 MB/s at 850 MHz = 0.5 B/cycle *)
  torus_hop_cycles : int;
  torus_inject_cycles : int;  (** DMA descriptor injection from user space *)
  torus_receive_cycles : int;
  collective_link_bytes_per_cycle : float;
  collective_hop_cycles : int;
  barrier_round_cycles : int;  (** global-barrier network round latency *)
  dram_refresh_interval_cycles : int;
  dram_refresh_stall_cycles : int;
}

val bgp : t
(** Default BG/P-like configuration. *)
