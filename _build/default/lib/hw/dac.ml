type watch = { lo : int; hi : int; on_store : bool; on_load : bool }

type t = { slots : watch option array; mutable violations : int }

let registers = 4

let create () = { slots = Array.make registers None; violations = 0 }

let set t ~slot w =
  if slot < 0 || slot >= registers then invalid_arg "Dac.set: bad slot";
  t.slots.(slot) <- w

let get t ~slot =
  if slot < 0 || slot >= registers then invalid_arg "Dac.get: bad slot";
  t.slots.(slot)

let find t addr select =
  let rec go i =
    if i = registers then None
    else
      match t.slots.(i) with
      | Some w when select w && addr >= w.lo && addr < w.hi ->
        t.violations <- t.violations + 1;
        Some i
      | _ -> go (i + 1)
  in
  go 0

let check_store t ~addr = find t addr (fun w -> w.on_store)
let check_load t ~addr = find t addr (fun w -> w.on_load)
let violations t = t.violations
