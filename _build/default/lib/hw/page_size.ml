type t = P4k | P64k | P1m | P16m | P256m | P1g

let bytes = function
  | P4k -> 4 * 1024
  | P64k -> 64 * 1024
  | P1m -> 1024 * 1024
  | P16m -> 16 * 1024 * 1024
  | P256m -> 256 * 1024 * 1024
  | P1g -> 1024 * 1024 * 1024

let all_descending = [ P1g; P256m; P16m; P1m; P64k; P4k ]
let large_descending = [ P1g; P256m; P16m; P1m ]
let aligned t addr = addr mod bytes t = 0
let align_up t addr = (addr + bytes t - 1) / bytes t * bytes t
let align_down t addr = addr / bytes t * bytes t

let to_string = function
  | P4k -> "4K"
  | P64k -> "64K"
  | P1m -> "1M"
  | P16m -> "16M"
  | P256m -> "256M"
  | P1g -> "1G"

let pp ppf t = Format.pp_print_string ppf (to_string t)
