open Bg_engine

type t = {
  sim : Sim.t;
  chip : Chip.t;
  mutable handle : Event_queue.handle option;
  mutable target : Cycles.t option;
}

let reason_prefix = "clock-stop:"

let create sim ~chip = { sim; chip; handle = None; target = None }

let disarm t =
  (match t.handle with Some h -> Sim.cancel t.sim h | None -> ());
  t.handle <- None;
  t.target <- None

let arm t ~at_cycle =
  if at_cycle < Sim.now t.sim then invalid_arg "Clock_stop.arm: cycle in the past";
  disarm t;
  t.target <- Some at_cycle;
  t.handle <-
    Some
      (Sim.schedule_at t.sim at_cycle (fun () ->
           Sim.halt t.sim (reason_prefix ^ string_of_int (Chip.id t.chip))))

let armed_at t = t.target
