(** Sparse simulated physical memory.

    Backing storage is allocated in 64 KiB chunks on first touch, so a
    simulated 2 GiB node costs only what the workload actually writes.
    Contents are real bytes: DMA transfers, function-shipped I/O and
    persistent-memory reuse all move genuine data, which lets tests assert
    end-to-end integrity rather than just timing. *)

type t

val create : size:int -> t
(** [create ~size] makes a zero-filled memory of [size] bytes. *)

val size : t -> int

val read : t -> addr:int -> len:int -> bytes
(** Raises [Invalid_argument] if the range is out of bounds. *)

val write : t -> addr:int -> bytes -> unit

val read_byte : t -> addr:int -> int
val write_byte : t -> addr:int -> int -> unit

val read_int64 : t -> addr:int -> int64
(** Little-endian load; used by tests that store pointers in simulated
    memory (persistent-memory linked lists, paper §IV.D). *)

val write_int64 : t -> addr:int -> int64 -> unit

val copy : src:t -> src_addr:int -> dst:t -> dst_addr:int -> len:int -> unit
(** Inter-memory copy (DMA, function-ship buffers). *)

val fill : t -> addr:int -> len:int -> char -> unit

val zero : t -> unit
(** Drop all contents back to zero (a cold reset without self-refresh). *)

val digest : t -> Bg_engine.Fnv.t
(** Digest of all touched chunks; equal digests mean equal contents for
    chunks ever written. Zero-only untouched regions do not contribute. *)

val touched_bytes : t -> int
(** Number of bytes of backing store actually allocated. *)
