(** Hardware fault and availability modeling.

    Chip bringup (paper §III) runs CNK with major units absent (during
    design) or broken (during bringup). Units carry an availability status;
    using an unavailable unit raises {!Unavailable}, which the kernel can
    tolerate when configured with the matching control flag. *)

type status = Working | Broken of string | Absent

exception Unavailable of string
(** Raised by a hardware unit that is broken or absent. *)

val check : name:string -> status -> unit
(** Raise {!Unavailable} unless the status is [Working]. *)

val pp_status : Format.formatter -> status -> unit
