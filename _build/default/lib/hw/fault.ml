type status = Working | Broken of string | Absent

exception Unavailable of string

let check ~name = function
  | Working -> ()
  | Broken why -> raise (Unavailable (Printf.sprintf "%s broken: %s" name why))
  | Absent -> raise (Unavailable (Printf.sprintf "%s absent" name))

let pp_status ppf = function
  | Working -> Format.pp_print_string ppf "working"
  | Broken why -> Format.fprintf ppf "broken (%s)" why
  | Absent -> Format.pp_print_string ppf "absent"
