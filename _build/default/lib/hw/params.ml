type t = {
  cores_per_node : int;
  dram_bytes : int;
  l1_bytes : int;
  l2_banks : int;
  l2_bytes : int;
  tlb_entries : int;
  torus_link_bytes_per_cycle : float;
  torus_hop_cycles : int;
  torus_inject_cycles : int;
  torus_receive_cycles : int;
  collective_link_bytes_per_cycle : float;
  collective_hop_cycles : int;
  barrier_round_cycles : int;
  dram_refresh_interval_cycles : int;
  dram_refresh_stall_cycles : int;
}

let bgp =
  {
    cores_per_node = 4;
    dram_bytes = 2 * 1024 * 1024 * 1024;
    l1_bytes = 32 * 1024;
    l2_banks = 8;
    l2_bytes = 8 * 1024 * 1024;
    tlb_entries = 64;
    (* 425 MB/s per link direction at 850 MHz. *)
    torus_link_bytes_per_cycle = 0.5;
    torus_hop_cycles = 85;          (* ~100 ns per hop *)
    torus_inject_cycles = 260;      (* ~0.31 us user-space DMA injection *)
    torus_receive_cycles = 170;     (* ~0.20 us reception + counter update *)
    (* Collective (tree) network: ~0.85 GB/s, ~0.8 us per hop. *)
    collective_link_bytes_per_cycle = 1.0;
    collective_hop_cycles = 680;
    barrier_round_cycles = 1105;    (* ~1.3 us global barrier round *)
    (* DDR refresh: one short stall every 7.8 us, the residual noise floor
       even under CNK (paper: CNK spread < 0.006%). *)
    dram_refresh_interval_cycles = 6630;
    dram_refresh_stall_cycles = 11;
  }
