(** Debug Address Compare registers.

    BG/P cores expose a small number of address-compare register pairs that
    raise a debug exception when a load/store touches a watched range. CNK
    repurposes them as stack guard ranges (paper §IV.C, Fig 4): no page
    granularity, no page faults, just a range check on stores. *)

type watch = { lo : int; hi : int; on_store : bool; on_load : bool }
(** Watch the half-open range [lo, hi). *)

type t

val registers : int
(** Number of DAC register pairs per core (4, as on the 450 core). *)

val create : unit -> t

val set : t -> slot:int -> watch option -> unit
(** Program or clear one register pair. [slot] in [0, registers). *)

val get : t -> slot:int -> watch option

val check_store : t -> addr:int -> int option
(** [check_store t ~addr] returns the matching slot, if any. *)

val check_load : t -> addr:int -> int option

val violations : t -> int
(** Total range matches (hits) observed by {!check_store}/{!check_load}
    since creation — the per-core DAC-violation count the observability
    layer publishes. *)
