(** Collective (tree) network linking compute nodes to their I/O node.

    On BG/P every pset of compute nodes shares one I/O node over the
    collective network; CNK function-ships I/O system calls over it (paper
    §IV.A). The model charges tree-depth hop latency plus serialization on
    the shared I/O-node link, so many compute nodes offloading at once
    queue behind each other — the aggregation the paper credits with
    keeping filesystem-client counts manageable. *)

type t

val create :
  Bg_engine.Sim.t ->
  ?params:Params.t ->
  compute_nodes:int ->
  nodes_per_io_node:int ->
  unit ->
  t

val compute_nodes : t -> int
val io_node_count : t -> int
val io_node_of : t -> cn:int -> int
val tree_depth : t -> int

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val to_io_node :
  t -> cn:int -> bytes:int -> on_arrival:(arrival_cycle:Bg_engine.Cycles.t -> unit) -> unit
(** Ship [bytes] from compute node [cn] up to its I/O node. *)

val to_compute_node :
  t -> cn:int -> bytes:int -> on_arrival:(arrival_cycle:Bg_engine.Cycles.t -> unit) -> unit
(** Ship a reply back down to [cn]. *)

val estimate_cycles : t -> bytes:int -> int
(** Contention-free one-way cost. *)
