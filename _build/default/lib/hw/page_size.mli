(** Hardware page sizes available to the BG/P TLB.

    CNK's static mapping tiles the address space with these sizes (paper
    §IV.C); the FWK baseline additionally uses 4 KiB demand-paged entries. *)

type t = P4k | P64k | P1m | P16m | P256m | P1g

val bytes : t -> int

val all_descending : t list
(** Largest first — the order the partitioning algorithm tries them. *)

val large_descending : t list
(** The sizes CNK's static mapper uses (1 GB down to 1 MB). *)

val aligned : t -> int -> bool
(** [aligned size addr]: is [addr] a multiple of the page size? *)

val align_up : t -> int -> int
val align_down : t -> int -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
