type t = { memory : Memory.t; mutable self_refresh : bool }

let create ~size = { memory = Memory.create ~size; self_refresh = false }
let memory t = t.memory
let enter_self_refresh t = t.self_refresh <- true
let exit_self_refresh t = t.self_refresh <- false
let in_self_refresh t = t.self_refresh

let on_reset t = if not t.self_refresh then Memory.zero t.memory

let digest t = Memory.digest t.memory
