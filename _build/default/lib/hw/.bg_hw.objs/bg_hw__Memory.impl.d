lib/hw/memory.ml: Bg_engine Bytes Hashtbl List Printf
