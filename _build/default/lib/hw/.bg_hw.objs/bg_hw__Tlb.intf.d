lib/hw/tlb.mli: Page_size Stdlib
