lib/hw/chip.ml: Array Bg_engine Cache Dac Dram Fault Fnv Hashtbl Int64 List Memory Params Printf Tlb
