lib/hw/torus.mli: Bg_engine Params
