lib/hw/params.mli:
