lib/hw/memory.mli: Bg_engine
