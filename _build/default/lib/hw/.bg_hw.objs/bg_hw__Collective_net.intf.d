lib/hw/collective_net.mli: Bg_engine Params
