lib/hw/fault.mli: Format
