lib/hw/collective_net.ml: Array Bg_engine Cycles Fault Float Int64 Params Sim
