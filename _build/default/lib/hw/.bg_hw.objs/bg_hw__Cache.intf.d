lib/hw/cache.mli:
