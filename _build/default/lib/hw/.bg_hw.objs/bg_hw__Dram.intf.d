lib/hw/dram.mli: Bg_engine Memory
