lib/hw/barrier_net.mli: Bg_engine Params
