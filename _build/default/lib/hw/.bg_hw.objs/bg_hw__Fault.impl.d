lib/hw/fault.ml: Format Printf
