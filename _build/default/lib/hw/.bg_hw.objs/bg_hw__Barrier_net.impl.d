lib/hw/barrier_net.ml: Bg_engine Cycles Fault Int64 List Params Sim
