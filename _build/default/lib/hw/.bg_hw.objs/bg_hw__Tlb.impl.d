lib/hw/tlb.ml: List Page_size Printf
