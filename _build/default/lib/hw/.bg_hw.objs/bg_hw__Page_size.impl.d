lib/hw/page_size.ml: Format
