lib/hw/chip.mli: Bg_engine Cache Dac Dram Fault Memory Params Tlb
