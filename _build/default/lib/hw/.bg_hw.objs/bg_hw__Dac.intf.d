lib/hw/dac.mli:
