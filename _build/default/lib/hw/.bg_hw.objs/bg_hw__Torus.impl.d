lib/hw/torus.ml: Bg_engine Cycles Fault Float Hashtbl Int64 List Params Sim
