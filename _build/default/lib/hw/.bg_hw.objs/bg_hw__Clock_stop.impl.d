lib/hw/clock_stop.ml: Bg_engine Chip Cycles Event_queue Sim
