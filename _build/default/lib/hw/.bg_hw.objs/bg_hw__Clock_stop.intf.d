lib/hw/clock_stop.mli: Bg_engine Chip
