lib/hw/params.ml:
