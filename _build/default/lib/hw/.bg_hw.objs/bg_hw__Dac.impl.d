lib/hw/dac.ml: Array
