lib/hw/dram.ml: Memory
