lib/hw/page_size.mli: Format
