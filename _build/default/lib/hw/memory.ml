let chunk_bits = 16
let chunk_size = 1 lsl chunk_bits

type t = { size : int; chunks : (int, bytes) Hashtbl.t }

let create ~size =
  if size <= 0 then invalid_arg "Memory.create: size must be positive";
  { size; chunks = Hashtbl.create 64 }

let size t = t.size

let check t addr len =
  if addr < 0 || len < 0 || addr + len > t.size then
    invalid_arg
      (Printf.sprintf "Memory: access [0x%x, +%d) outside of %d bytes" addr len
         t.size)

(* Shared all-zero chunk handed out for reads of untouched memory. Never
   exposed to writers, so it stays zero. *)
let zero_chunk = Bytes.make chunk_size '\000'

let chunk_rw t idx =
  match Hashtbl.find_opt t.chunks idx with
  | Some c -> c
  | None ->
    let c = Bytes.make chunk_size '\000' in
    Hashtbl.add t.chunks idx c;
    c

let chunk_ro t idx =
  match Hashtbl.find_opt t.chunks idx with Some c -> c | None -> zero_chunk

(* Walk the chunks overlapping [addr, addr+len), calling
   [f chunk offset_in_chunk offset_in_buffer span]. *)
let iter_spans t addr len ~alloc f =
  let chunk = if alloc then chunk_rw t else chunk_ro t in
  let pos = ref addr in
  let done_ = ref 0 in
  while !done_ < len do
    let idx = !pos lsr chunk_bits in
    let off = !pos land (chunk_size - 1) in
    let span = min (chunk_size - off) (len - !done_) in
    f (chunk idx) off !done_ span;
    pos := !pos + span;
    done_ := !done_ + span
  done

let read t ~addr ~len =
  check t addr len;
  let out = Bytes.create len in
  iter_spans t addr len ~alloc:false (fun chunk off dst span ->
      Bytes.blit chunk off out dst span);
  out

let write t ~addr data =
  let len = Bytes.length data in
  check t addr len;
  iter_spans t addr len ~alloc:true (fun chunk off src span ->
      Bytes.blit data src chunk off span)

let read_byte t ~addr =
  check t addr 1;
  Bytes.get_uint8 (chunk_ro t (addr lsr chunk_bits)) (addr land (chunk_size - 1))

let write_byte t ~addr v =
  check t addr 1;
  Bytes.set_uint8 (chunk_rw t (addr lsr chunk_bits)) (addr land (chunk_size - 1)) v

let read_int64 t ~addr =
  let b = read t ~addr ~len:8 in
  Bytes.get_int64_le b 0

let write_int64 t ~addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  write t ~addr b

let copy ~src ~src_addr ~dst ~dst_addr ~len =
  let data = read src ~addr:src_addr ~len in
  write dst ~addr:dst_addr data

let fill t ~addr ~len c =
  check t addr len;
  iter_spans t addr len ~alloc:true (fun chunk off _ span ->
      Bytes.fill chunk off span c)

let zero t = Hashtbl.reset t.chunks

let digest t =
  (* Fold chunks in index order so the digest is content-deterministic. *)
  let idxs = Hashtbl.fold (fun k _ acc -> k :: acc) t.chunks [] in
  let idxs = List.sort compare idxs in
  List.fold_left
    (fun h idx ->
      let h = Bg_engine.Fnv.add_int h idx in
      Bg_engine.Fnv.add_bytes h (Hashtbl.find t.chunks idx))
    Bg_engine.Fnv.empty idxs

let touched_bytes t = Hashtbl.length t.chunks * chunk_size
