(** "Clock Stop" debug hardware.

    Stops a single chip's clocks at a programmed cycle so its state can be
    scanned out (paper §III). The limitation the paper works around — the
    unit spans only one chip — is preserved: one armed target per unit.
    Stopping halts the whole simulation (the chip's clocks gate everything
    observable about it) with a reason the bringup tooling recognizes. *)

type t

val create : Bg_engine.Sim.t -> chip:Chip.t -> t

val arm : t -> at_cycle:Bg_engine.Cycles.t -> unit
(** Program a stop at an absolute cycle (must be in the future). Re-arming
    replaces the previous target. *)

val disarm : t -> unit
val armed_at : t -> Bg_engine.Cycles.t option

val reason_prefix : string
(** Halt reason is [reason_prefix ^ string_of_int chip_id]. *)
