let program ~fabric ~coll ~panels ~panel_cycles () =
  let total = ref 0 in
  let entry () =
    let rank = Bg_rt.Libc.rank () in
    let ctx = Bg_msg.Dcmf.attach fabric ~rank in
    let mpi = Bg_msg.Mpi.create ctx in
    let t0 = Coro.rdtsc () in
    for panel = 1 to panels do
      (* trailing-update DGEMM block, then the pivot exchange *)
      Coro.consume panel_cycles;
      ignore (Bg_msg.Mpi.Coll.allreduce_sum coll mpi (float_of_int (panel + rank)))
    done;
    let t1 = Coro.rdtsc () in
    if rank = 0 then total := t1 - t0
  in
  (entry, fun () -> !total)
