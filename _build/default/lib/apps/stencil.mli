(** Near-neighbor exchange — the Fig 8 workload.

    Each iteration, the measuring rank streams a message of the given
    size to each of its six torus neighbors using the rendezvous bulk
    path, and reports the aggregate bandwidth. Run it across a sweep of
    sizes to regenerate the figure's series. *)

val neighbors_of : Bg_kabi.Machine.t -> rank:int -> int list
(** The six distinct torus neighbors (fewer on degenerate dimensions). *)

val exchange_program :
  fabric:Bg_msg.Dcmf.fabric ->
  rank:int ->
  bytes:int ->
  contiguous:bool ->
  (unit -> unit) * (unit -> float)
(** Entry for the measuring rank + collector of aggregate MB/s. *)
