(** LINPACK proxy for the §V.D performance-stability experiment.

    The paper ran 36 rack-scale LINPACK runs and saw a 2.11-second spread
    over ~4.5 hours (0.01%). The proxy keeps the structure that makes
    LINPACK noise-sensitive: a sequence of panel factorizations, each a
    fixed block of compute followed by a pivot allreduce that synchronizes
    all ranks (so one straggler delays everyone). Absolute duration is
    scaled down; the spread {e ratio} is the reproduction target. *)

val program :
  fabric:Bg_msg.Dcmf.fabric ->
  coll:Bg_msg.Mpi.Coll.coll ->
  panels:int ->
  panel_cycles:int ->
  unit ->
  (unit -> unit) * (unit -> Bg_engine.Cycles.t)
(** Entry + collector of rank-0 total runtime in cycles. *)
