(** FTQ — Fixed Time Quanta, the companion of FWQ in the LLNL noise suite
    (paper §V.A cites the FTQ/FWQ benchmark document).

    Where FWQ times a fixed amount of work, FTQ counts how much work fits
    in a fixed time window: per window, spin on a small work unit until
    the deadline passes and record the iteration count. A noiseless
    kernel yields a flat count; every interference event shows up as a
    dent in the affected window. *)

type result = { window_cycles : int; counts : int array }

val program :
  ?windows:int -> ?window_cycles:int -> ?unit_cycles:int -> unit ->
  (unit -> unit) * (unit -> result)
(** Defaults: 500 windows of 850,000 cycles (1 ms), 2,000-cycle work
    units. Single-threaded (FTQ is per-core; run one per core if needed). *)

val spread_percent : result -> float
(** (max - min) / max * 100 over the per-window counts. *)

val min_count : result -> int
val max_count : result -> int
