(** AMG/IRS-style OpenMP workload (paper §V.B).

    The threaded benchmarks the paper lists (AMG, IRS, SPhot) share a
    shape: repeated relaxation sweeps over a grid, fork-join threaded,
    with a reduction per sweep. The proxy runs that shape unmodified on
    either kernel and reports a residual so tests can check the
    computation (not just the timing) survived threading. *)

type report = { sweeps : int; residual : float; wall_cycles : int }

val program :
  grid:int -> sweeps:int -> threads:int -> unit ->
  (unit -> unit) * (unit -> report)
