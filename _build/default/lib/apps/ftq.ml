type result = { window_cycles : int; counts : int array }

let program ?(windows = 500) ?(window_cycles = 850_000) ?(unit_cycles = 2_000) () =
  let counts = Array.make windows 0 in
  let entry () =
    for w = 0 to windows - 1 do
      let deadline = Coro.rdtsc () + window_cycles in
      let n = ref 0 in
      while Coro.rdtsc () < deadline do
        Coro.consume unit_cycles;
        incr n
      done;
      counts.(w) <- !n
    done
  in
  (entry, fun () -> { window_cycles; counts = Array.copy counts })

let min_count r = Array.fold_left min max_int r.counts
let max_count r = Array.fold_left max 0 r.counts

let spread_percent r =
  let mn = float_of_int (min_count r) and mx = float_of_int (max_count r) in
  if mx = 0.0 then 0.0 else (mx -. mn) /. mx *. 100.0
