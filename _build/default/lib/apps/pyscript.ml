type result = {
  variables : (string * int) list;
  output : string;
  statements_executed : int;
}

exception Script_error of int * string

let interpreter_overhead = 150 (* cycles per executed statement *)

type stmt =
  | Load of string * string
  | Set of string * int
  | Add of string * int
  | Call of string * string * string * string  (* lib, sym, arg var, dst var *)
  | Loop of int * stmt list
  | Write of string * string
  | Print of string

(* --- parsing ---------------------------------------------------------- *)

let tokenize line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

let parse_int lineno s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> raise (Script_error (lineno, Printf.sprintf "expected an integer, got %S" s))

(* Parse lines into a statement list; [stop_at_end] distinguishes the top
   level from a loop body. Returns (stmts, remaining lines). *)
let rec parse_block lines ~in_loop =
  match lines with
  | [] ->
    if in_loop then raise (Script_error (0, "unterminated loop"));
    ([], [])
  | (lineno, line) :: rest -> (
    match tokenize line with
    | [] | "#" :: _ -> parse_block rest ~in_loop
    | [ "end" ] ->
      if in_loop then ([], rest)
      else raise (Script_error (lineno, "'end' without a loop"))
    | [ "load"; name; path ] -> cons (Load (name, path)) rest ~in_loop
    | [ "set"; var; n ] -> cons (Set (var, parse_int lineno n)) rest ~in_loop
    | [ "add"; var; n ] -> cons (Add (var, parse_int lineno n)) rest ~in_loop
    | [ "call"; lib; sym; arg; "->"; dst ] -> cons (Call (lib, sym, arg, dst)) rest ~in_loop
    | [ "loop"; n ] ->
      let body, rest' = parse_block rest ~in_loop:true in
      let stmts, rest'' = parse_block rest' ~in_loop in
      (Loop (parse_int lineno n, body) :: stmts, rest'')
    | [ "write"; path; var ] -> cons (Write (path, var)) rest ~in_loop
    | [ "print"; var ] -> cons (Print var) rest ~in_loop
    | tok :: _ -> raise (Script_error (lineno, Printf.sprintf "unknown statement %S" tok)))

and cons stmt rest ~in_loop =
  let stmts, rest' = parse_block rest ~in_loop in
  (stmt :: stmts, rest')

let parse text =
  let lines = String.split_on_char '\n' text in
  let numbered = List.mapi (fun i l -> (i + 1, String.trim l)) lines in
  let stmts, leftover = parse_block numbered ~in_loop:false in
  assert (leftover = []);
  stmts

(* --- execution --------------------------------------------------------- *)

type env = {
  vars : (string, int) Hashtbl.t;
  libs : (string, Bg_rt.Ld_so.handle) Hashtbl.t;
  buf : Buffer.t;
  mutable executed : int;
}

let lookup_var env var =
  match Hashtbl.find_opt env.vars var with
  | Some v -> v
  | None -> raise (Script_error (0, Printf.sprintf "undefined variable %S" var))

let rec exec env stmts = List.iter (exec_one env) stmts

and exec_one env stmt =
  Coro.consume interpreter_overhead;
  env.executed <- env.executed + 1;
  match stmt with
  | Load (name, path) -> Hashtbl.replace env.libs name (Bg_rt.Ld_so.dlopen path)
  | Set (var, n) -> Hashtbl.replace env.vars var n
  | Add (var, n) -> Hashtbl.replace env.vars var (lookup_var env var + n)
  | Call (lib, sym, arg, dst) -> (
    match Hashtbl.find_opt env.libs lib with
    | None -> raise (Script_error (0, Printf.sprintf "library %S not loaded" lib))
    | Some h -> (
      match Bg_rt.Ld_so.dlsym h sym (lookup_var env arg) with
      | v -> Hashtbl.replace env.vars dst v
      | exception Not_found ->
        raise (Script_error (0, Printf.sprintf "no symbol %S in %S" sym lib))))
  | Loop (n, body) ->
    for _ = 1 to n do
      exec env body
    done
  | Write (path, var) ->
    let fd =
      Bg_rt.Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true; trunc = true } path
    in
    ignore (Bg_rt.Libc.write_string fd (Printf.sprintf "%s=%d\n" var (lookup_var env var)));
    Bg_rt.Libc.close fd
  | Print var -> Buffer.add_string env.buf (Printf.sprintf "%s=%d\n" var (lookup_var env var))

let install_script fs ~path text =
  match Bg_cio.Fs.open_file fs ~cwd:"/" path ~flags:Sysreq.o_create_trunc ~mode:0o644 with
  | Error e -> invalid_arg (Errno.to_string e)
  | Ok inode -> (
    match Bg_cio.Fs.write fs inode ~offset:0 (Bytes.of_string text) with
    | Ok _ -> ()
    | Error e -> invalid_arg (Errno.to_string e))

let run ~path =
  (* fetch the script through the filesystem, like any interpreter *)
  let fd = Bg_rt.Libc.openf ~flags:Sysreq.o_rdonly path in
  let size = (Bg_rt.Libc.fstat fd).Sysreq.st_size in
  let text = Bytes.to_string (Bg_rt.Libc.pread fd ~len:size ~offset:0) in
  Bg_rt.Libc.close fd;
  let stmts = parse text in
  let env =
    { vars = Hashtbl.create 16; libs = Hashtbl.create 4; buf = Buffer.create 64; executed = 0 }
  in
  exec env stmts;
  let variables =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) env.vars [] |> List.sort compare
  in
  { variables; output = Buffer.contents env.buf; statements_executed = env.executed }
