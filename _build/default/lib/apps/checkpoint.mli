(** Application-level checkpoint/restart through the function-shipped
    filesystem.

    The foil for §V.B's L1-parity recovery story: without in-place
    recovery, surviving transient faults means periodically writing state
    to the (offloaded) filesystem and, on failure, restoring and
    recomputing everything since the last checkpoint — "heavy I/O-bound
    checkpoint/restart cycles". These are real shipped writes: each save
    pays marshal + collective network + CIOD service for every byte. *)

val save : name:string -> regions:(int * int) list -> int
(** Write each (vaddr, len) range of the calling process's memory to
    /ckpt/<name>, returning the bytes written. Creates /ckpt as needed;
    an existing checkpoint of the same name is replaced. *)

val restore : name:string -> regions:(int * int) list -> bool
(** Read the checkpoint back into memory (ranges must match the save).
    Returns false if no checkpoint of that name exists. *)

val exists : name:string -> bool
val remove : name:string -> unit
(** Idempotent. *)
