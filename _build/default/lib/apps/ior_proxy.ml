type report = {
  ranks : int;
  bytes_per_rank : int;
  aggregate_mbps : float;
  wall_cycles : int;
}

(* host-side aggregation across ranks *)
type phase = { mutable first : int; mutable last : int; mutable ranks_done : int }

let program ~bytes_per_rank ~block_bytes () =
  let phase = { first = max_int; last = 0; ranks_done = 0 } in
  let entry () =
    let rank = Bg_rt.Libc.rank () in
    (match Bg_rt.Libc.mkdir "/ior" with
    | () -> ()
    | exception Sysreq.Syscall_error Errno.EEXIST -> ());
    let fd =
      Bg_rt.Libc.openf
        ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true; trunc = true }
        (Printf.sprintf "/ior/rank-%d.dat" rank)
    in
    let t0 = Coro.rdtsc () in
    let block = Bytes.make block_bytes (Char.chr (65 + (rank mod 26))) in
    let written = ref 0 in
    while !written < bytes_per_rank do
      written := !written + Bg_rt.Libc.write fd block
    done;
    Bg_rt.Libc.fsync fd;
    Bg_rt.Libc.close fd;
    let t1 = Coro.rdtsc () in
    phase.first <- min phase.first t0;
    phase.last <- max phase.last t1;
    phase.ranks_done <- phase.ranks_done + 1
  in
  let collect ~collect_from () =
    ignore collect_from;
    let ranks = phase.ranks_done in
    let wall = max 1 (phase.last - phase.first) in
    {
      ranks;
      bytes_per_rank;
      aggregate_mbps =
        float_of_int (ranks * bytes_per_rank)
        /. Bg_engine.Cycles.to_seconds wall /. 1e6;
      wall_cycles = wall;
    }
  in
  (entry, collect)
