(** Distributed conjugate-gradient proxy — the solver shape behind several
    of the paper's "known to scale" codes (NEK, QBOX, HYPO4D run exactly
    this pattern: halo exchange + dot-product allreduces every iteration).

    Solves the 1-D periodic Poisson-like system [A x = b] with
    [A = tridiag(-1, 2+eps, -1)] distributed by strips. Every CG iteration
    needs one halo exchange (for [A p]) and two allreduce dot products —
    so kernel noise hits it twice per iteration, which is why this family
    of codes cares about quiet kernels.

    The math is real: tests check the residual actually drops and the
    answer is rank-count-invariant. *)

type report = {
  iterations_run : int;
  initial_residual : float;
  final_residual : float;     (** ||b - Ax|| at exit *)
  solution_checksum : float;  (** rank 0's strip, rounded-sum checksum *)
  wall_cycles : int;
}

val program :
  fabric:Bg_msg.Dcmf.fabric ->
  coll:Bg_msg.Mpi.Coll.coll ->
  cells_per_rank:int ->
  iterations:int ->
  unit ->
  (unit -> unit) * (unit -> report)

val reference_final_residual :
  ranks:int -> cells_per_rank:int -> iterations:int -> float
(** The same computation on the host, for validation. *)
