open Bg_engine

let program ~fabric ~coll ~iterations ?(per_iteration_work = 2000) () =
  let stats = Stats.Online.create () in
  let entry () =
    let rank = Bg_rt.Libc.rank () in
    let ctx = Bg_msg.Dcmf.attach fabric ~rank in
    let mpi = Bg_msg.Mpi.create ctx in
    for i = 1 to iterations do
      Coro.consume per_iteration_work;
      let t0 = Coro.rdtsc () in
      let sum = Bg_msg.Mpi.Coll.allreduce_sum coll mpi (float_of_int (rank + i)) in
      ignore sum;
      let t1 = Coro.rdtsc () in
      if rank = 0 then Stats.Online.add stats (Cycles.to_us (t1 - t0))
    done
  in
  (entry, fun () -> stats)
