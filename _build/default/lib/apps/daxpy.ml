let quantum_cycles = 658_958

(* The canonical FWQ configuration is exact; other shapes scale linearly
   in element-iterations (the kernel is L1-resident, so cost is flops). *)
let cycles ~elements ~reps =
  if elements = 256 && reps = 256 then quantum_cycles
  else
    let per_elem_iter = float_of_int quantum_cycles /. float_of_int (256 * 256) in
    int_of_float (Float.round (per_elem_iter *. float_of_int (elements * reps)))

let run ~elements ~reps = Coro.consume (cycles ~elements ~reps)

let run_with_memory ~base ~elements ~reps =
  (* one observable sweep: y[i] := a*x[i] + y[i] *)
  for i = 0 to elements - 1 do
    let x = Coro.load ~addr:(base + (8 * i)) ~len:8 in
    let y_addr = base + (8 * elements) + (8 * i) in
    let y = Coro.load ~addr:y_addr ~len:8 in
    let xv = Int64.to_float (Bytes.get_int64_le x 0) in
    let yv = Int64.to_float (Bytes.get_int64_le y 0) in
    let r = Bytes.create 8 in
    Bytes.set_int64_le r 0 (Int64.of_float ((2.0 *. xv) +. yv));
    Coro.store ~addr:y_addr r
  done;
  if reps > 1 then run ~elements ~reps:(reps - 1)
