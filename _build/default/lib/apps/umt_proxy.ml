type report = { timesteps_run : int; sweep_checksum : int; output_file : string }

(* The "extension library": each symbol models one physics kernel with a
   distinctive cost and a checkable result. *)
let physics_library =
  Image.library ~name:"umt_physics" ~text_bytes:(3 * 1024 * 1024)
    [
      { Image.symbol_name = "snswp3d"; fn = (fun angle -> Coro.consume 40_000; (angle * 7) + 1) };
      { Image.symbol_name = "scatter"; fn = (fun x -> Coro.consume 15_000; x * 2) };
    ]

let install fs = Bg_rt.Ld_so.install_library fs physics_library

let program ~lib_path ~timesteps ~threads () =
  let report = ref { timesteps_run = 0; sweep_checksum = 0; output_file = "" } in
  let entry () =
    (* the "Python interpreter" starts up and dlopens the extension *)
    Coro.consume 500_000;
    let h = Bg_rt.Ld_so.dlopen lib_path in
    let checksum = Bg_rt.Malloc.malloc 8 in
    Bg_rt.Libc.poke checksum 0;
    for _step = 1 to timesteps do
      (* OpenMP sweep over angles *)
      Bg_rt.Openmp.parallel_for ~num_threads:threads ~lo:0 ~hi:8
        (fun ~thread_num:_ angle ->
          let v = Bg_rt.Ld_so.dlsym h "snswp3d" angle in
          let v = Bg_rt.Ld_so.dlsym h "scatter" v in
          ignore (Coro.fetch_add ~addr:checksum v))
    done;
    Bg_rt.Ld_so.dlclose h;
    (* write the results file through the function-shipped path *)
    let out = "umt_results.txt" in
    let fd = Bg_rt.Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true } out in
    let sum = Bg_rt.Libc.peek checksum in
    ignore (Bg_rt.Libc.write_string fd (Printf.sprintf "checksum=%d\n" sum));
    Bg_rt.Libc.close fd;
    report := { timesteps_run = timesteps; sweep_checksum = sum; output_file = out }
  in
  (entry, fun () -> !report)

(* Reference checksum for validation: same arithmetic, no simulation. *)
let _expected_checksum ~timesteps =
  let per_step = List.init 8 (fun a -> ((a * 7) + 1) * 2) |> List.fold_left ( + ) 0 in
  timesteps * per_step
