open Bg_engine

let neighbors_of machine ~rank =
  let torus = machine.Machine.torus in
  let x, y, z = Bg_hw.Torus.coord_of_rank torus rank in
  let dx, dy, dz = Bg_hw.Torus.dims torus in
  let wrap v d = ((v mod d) + d) mod d in
  [
    (wrap (x + 1) dx, y, z);
    (wrap (x - 1) dx, y, z);
    (x, wrap (y + 1) dy, z);
    (x, wrap (y - 1) dy, z);
    (x, y, wrap (z + 1) dz);
    (x, y, wrap (z - 1) dz);
  ]
  |> List.map (Bg_hw.Torus.rank_of_coord torus)
  |> List.filter (fun r -> r <> rank)
  |> List.sort_uniq compare

let exchange_program ~fabric ~rank ~bytes ~contiguous =
  let mbps = ref 0.0 in
  let entry () =
    let ctx = Bg_msg.Dcmf.attach fabric ~rank in
    let machine = Bg_msg.Dcmf.machine fabric in
    let neighbors = neighbors_of machine ~rank in
    let t0 = Coro.rdtsc () in
    let handles =
      List.map
        (fun dst -> Bg_msg.Dcmf.put_large ctx ~dst ~tag:77 ~bytes ~contiguous)
        neighbors
    in
    List.iter Bg_msg.Dcmf.wait handles;
    let finish =
      List.fold_left
        (fun acc h -> max acc (Bg_msg.Dcmf.completion_cycle h))
        0 handles
    in
    let moved = List.length neighbors * bytes in
    mbps := float_of_int moved /. Cycles.to_seconds (finish - t0) /. 1e6
  in
  (entry, fun () -> !mbps)
