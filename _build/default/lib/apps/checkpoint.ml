let chunk = 16 * 1024 (* ship in 16 KiB pieces, as a real library would *)

let path name = "/ckpt/" ^ name

let ensure_dir () =
  match Bg_rt.Libc.mkdir "/ckpt" with
  | () -> ()
  | exception Sysreq.Syscall_error Errno.EEXIST -> ()

let save ~name ~regions =
  ensure_dir ();
  let fd =
    Bg_rt.Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true; trunc = true }
      (path name)
  in
  let total = ref 0 in
  List.iter
    (fun (addr, len) ->
      let off = ref 0 in
      while !off < len do
        let n = min chunk (len - !off) in
        let data = Coro.load ~addr:(addr + !off) ~len:n in
        total := !total + Bg_rt.Libc.write fd data;
        off := !off + n
      done)
    regions;
  Bg_rt.Libc.close fd;
  !total

let exists ~name =
  match Bg_rt.Libc.stat (path name) with
  | _ -> true
  | exception Sysreq.Syscall_error Errno.ENOENT -> false

let restore ~name ~regions =
  match Bg_rt.Libc.openf ~flags:Sysreq.o_rdonly (path name) with
  | exception Sysreq.Syscall_error Errno.ENOENT -> false
  | fd ->
    List.iter
      (fun (addr, len) ->
        let off = ref 0 in
        while !off < len do
          let n = min chunk (len - !off) in
          let data = Bg_rt.Libc.read fd ~len:n in
          if Bytes.length data > 0 then Coro.store ~addr:(addr + !off) data;
          off := !off + n
        done)
      regions;
    Bg_rt.Libc.close fd;
    true

let remove ~name =
  match Bg_rt.Libc.unlink (path name) with
  | () -> ()
  | exception Sysreq.Syscall_error Errno.ENOENT -> ()
