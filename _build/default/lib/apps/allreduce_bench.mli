(** mpiBench_Allreduce from the Phloem suite (paper §V.D).

    Every rank iterates a double-sum allreduce; the per-iteration wall
    time is accumulated into streaming statistics at rank 0. On CNK the
    standard deviation is effectively zero; any kernel noise at any rank
    stretches iterations, which is what the Linux baseline shows. *)

val program :
  fabric:Bg_msg.Dcmf.fabric ->
  coll:Bg_msg.Mpi.Coll.coll ->
  iterations:int ->
  ?per_iteration_work:int ->
  unit ->
  (unit -> unit) * (unit -> Bg_engine.Stats.Online.t)
(** Job entry + collector of rank-0 per-iteration microsecond samples.
    [per_iteration_work] (cycles, default 2000) models the compute between
    allreduces. *)
