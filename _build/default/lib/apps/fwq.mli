(** The FWQ (Fixed Work Quanta) noise benchmark (paper §V.A, Figs 5–7).

    One thread per core runs [samples] iterations of a fixed work quantum
    (the 256×256 DAXPY) and timestamps each; any excess over the minimum
    is OS noise. The same program image runs on CNK and on the FWK — the
    kernels, not the benchmark, produce the contrast. *)

type result = {
  thread_samples : (int * int array) list;
      (** (core hint = spawn index, per-sample cycles) *)
}

val program :
  ?samples:int -> ?work_cycles:int -> threads:int -> unit ->
  (unit -> unit) * (unit -> result)
(** [program ~threads ()] returns the job entry closure and a collector to
    call after the job completes. Defaults: 12,000 samples (as the paper),
    the canonical quantum. The entry spawns [threads - 1] pthreads and
    runs the last stream itself. *)

val per_thread_summary : result -> (int * Bg_engine.Stats.summary) list
(** Spawn-index-tagged summaries of the sample distributions. *)

val max_spread_percent : result -> float
(** The paper's headline FWQ number: worst (max-min)/min across threads. *)
