type report = {
  iterations_run : int;
  initial_residual : float;
  final_residual : float;
  solution_checksum : float;
  wall_cycles : int;
}

let eps = 0.05 (* diagonal shift keeps the periodic operator definite *)

let rhs ~rank ~cells_per_rank =
  Array.init cells_per_rank (fun i ->
      let g = (rank * cells_per_rank) + i in
      1.0 +. (0.25 *. float_of_int (g mod 7)))

(* y = A p for the local strip, given ghost cells. *)
let apply_op ~left_ghost ~right_ghost p =
  let n = Array.length p in
  Array.init n (fun i ->
      let l = if i = 0 then left_ghost else p.(i - 1) in
      let r = if i = n - 1 then right_ghost else p.(i + 1) in
      ((2.0 +. eps) *. p.(i)) -. l -. r)

let local_dot a b =
  let acc = ref 0.0 in
  Array.iteri (fun i ai -> acc := !acc +. (ai *. b.(i))) a;
  !acc

let encode_f v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.bits_of_float v);
  b

let decode_f b = Int64.float_of_bits (Bytes.get_int64_le b 0)

(* One distributed CG pass, parameterized over the exchange/reduce
   primitives so the simulated run and the host reference share the exact
   arithmetic (and therefore converge identically). *)
let cg_core ~cells_per_rank ~iterations ~rank ~exchange ~allreduce ~work =
  let b = rhs ~rank ~cells_per_rank in
  let x = Array.make cells_per_rank 0.0 in
  let r = Array.copy b in
  let p = Array.copy r in
  let rr = ref (allreduce (local_dot r r)) in
  let r0 = sqrt !rr in
  for _ = 1 to iterations do
    let lg, rg = exchange p.(cells_per_rank - 1) p.(0) in
    work (cells_per_rank * 40);
    let ap = apply_op ~left_ghost:lg ~right_ghost:rg p in
    let pap = allreduce (local_dot p ap) in
    let alpha = !rr /. pap in
    Array.iteri (fun i pi -> x.(i) <- x.(i) +. (alpha *. pi)) p;
    Array.iteri (fun i api -> r.(i) <- r.(i) -. (alpha *. api)) ap;
    let rr' = allreduce (local_dot r r) in
    let beta = rr' /. !rr in
    Array.iteri (fun i ri -> p.(i) <- ri +. (beta *. p.(i))) r;
    rr := rr'
  done;
  (x, r0, sqrt !rr)

let checksum x =
  Array.fold_left (fun acc v -> acc +. Float.round (v *. 1000.0)) 0.0 x

let program ~fabric ~coll ~cells_per_rank ~iterations () =
  let out =
    ref
      {
        iterations_run = 0;
        initial_residual = 0.0;
        final_residual = 0.0;
        solution_checksum = 0.0;
        wall_cycles = 0;
      }
  in
  let entry () =
    let rank = Bg_rt.Libc.rank () in
    let ctx = Bg_msg.Dcmf.attach fabric ~rank in
    let mpi = Bg_msg.Mpi.create ctx in
    let n = Bg_msg.Mpi.size mpi in
    let left = (rank - 1 + n) mod n and right = (rank + 1) mod n in
    let round = ref 0 in
    let exchange rightmost leftmost =
      incr round;
      if n = 1 then (rightmost, leftmost)
      else begin
        let t1 = 4 * !round and t2 = (4 * !round) + 1 in
        let lg =
          decode_f
            (Bg_msg.Mpi.sendrecv mpi ~dst:right ~send_tag:t1 (encode_f rightmost)
               ~src:left ~recv_tag:t1)
        in
        let rg =
          decode_f
            (Bg_msg.Mpi.sendrecv mpi ~dst:left ~send_tag:t2 (encode_f leftmost)
               ~src:right ~recv_tag:t2)
        in
        (lg, rg)
      end
    in
    let allreduce v = Bg_msg.Mpi.Coll.allreduce_sum coll mpi v in
    let t0 = Coro.rdtsc () in
    let x, r0, rn =
      cg_core ~cells_per_rank ~iterations ~rank ~exchange ~allreduce ~work:Coro.consume
    in
    let t1 = Coro.rdtsc () in
    if rank = 0 then
      out :=
        {
          iterations_run = iterations;
          initial_residual = r0;
          final_residual = rn;
          solution_checksum = checksum x;
          wall_cycles = t1 - t0;
        }
  in
  (entry, fun () -> !out)

(* Dense single-address-space emulation of the same system; floating-point
   summation order differs from the distributed reduction, so comparisons
   use a small relative tolerance. *)
let reference_final_residual ~ranks ~cells_per_rank ~iterations =
  let n = ranks * cells_per_rank in
  let bg = Array.init n (fun g -> 1.0 +. (0.25 *. float_of_int (g mod 7))) in
  let x = Array.make n 0.0 in
  let r = Array.copy bg in
  let p = Array.copy r in
  let dot a b =
    let acc = ref 0.0 in
    Array.iteri (fun i ai -> acc := !acc +. (ai *. b.(i))) a;
    !acc
  in
  let apply p =
    Array.init n (fun i ->
        let l = p.((i - 1 + n) mod n) and r = p.((i + 1) mod n) in
        ((2.0 +. eps) *. p.(i)) -. l -. r)
  in
  let rr = ref (dot r r) in
  for _ = 1 to iterations do
    let ap = apply p in
    let alpha = !rr /. dot p ap in
    Array.iteri (fun i pi -> x.(i) <- x.(i) +. (alpha *. pi)) p;
    Array.iteri (fun i api -> r.(i) <- r.(i) -. (alpha *. api)) ap;
    let rr' = dot r r in
    let beta = rr' /. !rr in
    Array.iteri (fun i ri -> p.(i) <- ri +. (beta *. p.(i))) r;
    rr := rr'
  done;
  sqrt !rr
