lib/apps/allreduce_bench.ml: Bg_engine Bg_msg Bg_rt Coro Cycles Stats
