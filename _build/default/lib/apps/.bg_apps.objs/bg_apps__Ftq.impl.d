lib/apps/ftq.ml: Array Coro
