lib/apps/checkpoint.mli:
