lib/apps/ior_proxy.mli: Bg_kabi
