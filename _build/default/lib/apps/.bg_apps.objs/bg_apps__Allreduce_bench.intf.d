lib/apps/allreduce_bench.mli: Bg_engine Bg_msg
