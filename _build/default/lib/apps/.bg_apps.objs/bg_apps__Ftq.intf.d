lib/apps/ftq.mli:
