lib/apps/umt_proxy.ml: Bg_rt Coro Image List Printf Sysreq
