lib/apps/ior_proxy.ml: Bg_engine Bg_rt Bytes Char Coro Errno Printf Sysreq
