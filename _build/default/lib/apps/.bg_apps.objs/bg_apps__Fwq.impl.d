lib/apps/fwq.ml: Array Bg_engine Bg_rt Coro Daxpy Float List
