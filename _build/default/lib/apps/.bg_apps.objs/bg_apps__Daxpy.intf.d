lib/apps/daxpy.mli:
