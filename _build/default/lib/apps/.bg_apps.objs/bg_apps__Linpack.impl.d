lib/apps/linpack.ml: Bg_msg Bg_rt Coro
