lib/apps/amg_proxy.ml: Bg_rt Coro
