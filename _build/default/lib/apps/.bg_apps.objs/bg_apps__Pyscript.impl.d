lib/apps/pyscript.ml: Bg_cio Bg_rt Buffer Bytes Coro Errno Hashtbl List Printf String Sysreq
