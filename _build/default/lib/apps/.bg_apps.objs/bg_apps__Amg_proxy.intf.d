lib/apps/amg_proxy.mli:
