lib/apps/linpack.mli: Bg_engine Bg_msg
