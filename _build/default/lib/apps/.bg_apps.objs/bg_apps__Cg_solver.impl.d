lib/apps/cg_solver.ml: Array Bg_msg Bg_rt Bytes Coro Float Int64
