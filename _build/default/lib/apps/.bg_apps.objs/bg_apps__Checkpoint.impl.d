lib/apps/checkpoint.ml: Bg_rt Bytes Coro Errno List Sysreq
