lib/apps/cg_solver.mli: Bg_msg
