lib/apps/halo.ml: Array Bg_msg Bg_rt Bytes Coro Int64
