lib/apps/daxpy.ml: Bytes Coro Float Int64
