lib/apps/stencil.ml: Bg_engine Bg_hw Bg_msg Coro Cycles List Machine
