lib/apps/stencil.mli: Bg_kabi Bg_msg
