lib/apps/pyscript.mli: Bg_cio
