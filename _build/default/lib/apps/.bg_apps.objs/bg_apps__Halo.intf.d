lib/apps/halo.mli: Bg_msg
