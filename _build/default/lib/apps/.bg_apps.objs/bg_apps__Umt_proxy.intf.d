lib/apps/umt_proxy.mli: Bg_cio
