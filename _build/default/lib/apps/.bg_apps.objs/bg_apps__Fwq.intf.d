lib/apps/fwq.mli: Bg_engine
