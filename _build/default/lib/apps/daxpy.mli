(** DAXPY work quanta — the FWQ workload kernel (paper §V.A).

    The paper's FWQ configuration: a 256-element DAXPY (fits in L1),
    repeated 256 times, consuming 658,958 cycles per sample on a BG/P
    core. We reproduce the cost model and, optionally, real memory
    traffic so cache-bank experiments have addresses to look at. *)

val quantum_cycles : int
(** 658,958 — the paper's measured minimum per FWQ sample. *)

val cycles : elements:int -> reps:int -> int
(** Cost of [reps] sweeps of an [elements]-long DAXPY, calibrated so the
    paper's 256x256 configuration costs {!quantum_cycles}. *)

val run : elements:int -> reps:int -> unit
(** Consume the computed cycles inside the calling coroutine. *)

val run_with_memory : base:int -> elements:int -> reps:int -> unit
(** Same, but the first sweep issues real loads/stores over the vectors at
    [base] (8 bytes per element for x and y), so the access pattern is
    observable by the cache model. *)
