(** UMT-style workload: a Python-driven transport sweep (paper §V.B).

    UMT is the paper's showcase of "functionality": an unmodified
    benchmark driven by a Python script, which dlopens extension
    libraries and runs OpenMP-threaded sweeps. The proxy keeps that
    exact kernel-facing shape: a driver that dlopens the physics library
    through the function-shipped filesystem, calls its symbols per
    timestep, fans sweeps out over OpenMP threads, and writes a results
    file at the end. *)

type report = {
  timesteps_run : int;
  sweep_checksum : int;
  output_file : string;
}

val install : Bg_cio.Fs.t -> string
(** Install the "libumt_physics.so" extension library on the I/O-node
    filesystem; returns its path. *)

val program :
  lib_path:string -> timesteps:int -> threads:int -> unit ->
  (unit -> unit) * (unit -> report)
