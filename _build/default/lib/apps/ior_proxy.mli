(** IOR-style aggregate file-I/O throughput benchmark.

    The standard HPC I/O measurement: every rank streams a fixed volume
    to its own file through the (function-shipped) filesystem; the score
    is aggregate MB/s from first write to last ack. On this machine the
    interesting structure is the offload path: compute nodes share their
    I/O node's CIOD workers and uplink, so aggregate throughput saturates
    with the pset — the quantitative face of §IV.A/§VII.A. *)

type report = {
  ranks : int;
  bytes_per_rank : int;
  aggregate_mbps : float;
  wall_cycles : int;
}

val program :
  bytes_per_rank:int -> block_bytes:int -> unit ->
  (unit -> unit) * (collect_from:Bg_kabi.Machine.t -> unit -> report)
(** Every rank writes [bytes_per_rank] in [block_bytes] chunks to
    /ior/rank-N.dat. The collector computes aggregate bandwidth from the
    simulated span of the I/O phase. *)
