(** A miniature script interpreter — the "UMT is driven by a Python
    script, which uses dynamic linking" scenario (paper §V.B) end to end.

    The interpreter itself is ordinary user code on the simulated kernel:
    it reads the script file through the (function-shipped) filesystem,
    dlopens extension libraries on demand, calls their symbols, and writes
    result files — exactly the kernel-facing behaviour that made Python
    support a CNK requirement.

    The language, one statement per line ([#] comments):
    {v
    load NAME /lib/foo.so        dlopen a library, bind it to NAME
    set VAR N                    integer assignment
    add VAR N                    VAR <- VAR + N
    call NAME SYM VAR -> VAR2    VAR2 <- NAME.SYM(VAR)
    loop N ... end               repeat the block N times (nestable)
    write PATH VAR               write "VAR=value\n" to a file
    print VAR                    append "VAR=value\n" to the output
    v} *)

type result = {
  variables : (string * int) list;  (** final bindings, sorted by name *)
  output : string;                  (** accumulated [print] text *)
  statements_executed : int;
}

exception Script_error of int * string
(** (line number, message): parse errors and runtime errors (unknown
    variable, library, or symbol). *)

val install_script : Bg_cio.Fs.t -> path:string -> string -> unit
(** Host-side: stage the script text on the I/O-node filesystem. *)

val run : path:string -> result
(** User code: fetch, parse and execute the script. Each statement charges
    interpreter overhead, so scripted work has honest timing. *)
