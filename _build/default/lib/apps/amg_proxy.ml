type report = { sweeps : int; residual : float; wall_cycles : int }

let program ~grid ~sweeps ~threads () =
  let out = ref { sweeps = 0; residual = 0.0; wall_cycles = 0 } in
  let entry () =
    let t0 = Coro.rdtsc () in
    (* the grid lives in simulated memory: one float per cell *)
    let cells = grid * grid in
    let base = Bg_rt.Malloc.malloc (8 * cells) in
    (* init: u[i] = i mod 17 *)
    for i = 0 to cells - 1 do
      Bg_rt.Libc.poke (base + (8 * i)) (i mod 17)
    done;
    let residual_acc = Bg_rt.Malloc.malloc 8 in
    for _sweep = 1 to sweeps do
      Bg_rt.Libc.poke residual_acc 0;
      Bg_rt.Openmp.parallel_for ~num_threads:threads ~lo:0 ~hi:grid
        (fun ~thread_num:_ row ->
          (* relaxation cost per row + a representative memory touch *)
          Coro.consume (grid * 12);
          let idx = row * grid in
          let v = Bg_rt.Libc.peek (base + (8 * idx)) in
          Bg_rt.Libc.poke (base + (8 * idx)) ((v + 1) / 2);
          ignore (Coro.fetch_add ~addr:residual_acc v))
    done;
    let t1 = Coro.rdtsc () in
    out :=
      {
        sweeps;
        residual = float_of_int (Bg_rt.Libc.peek residual_acc);
        wall_cycles = t1 - t0;
      }
  in
  (entry, fun () -> !out)
