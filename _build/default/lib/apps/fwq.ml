type result = { thread_samples : (int * int array) list }

let program ?(samples = 12_000) ?(work_cycles = Daxpy.quantum_cycles) ~threads () =
  if threads < 1 then invalid_arg "Fwq.program";
  let data = Array.init threads (fun _ -> Array.make samples 0) in
  let stream idx () =
    let out = data.(idx) in
    for i = 0 to samples - 1 do
      let t0 = Coro.rdtsc () in
      Coro.consume work_cycles;
      let t1 = Coro.rdtsc () in
      out.(i) <- t1 - t0
    done
  in
  let entry () =
    let workers = List.init (threads - 1) (fun i -> Bg_rt.Pthread.create (stream (i + 1))) in
    stream 0 ();
    List.iter Bg_rt.Pthread.join workers
  in
  let collect () =
    { thread_samples = List.init threads (fun i -> (i, Array.copy data.(i))) }
  in
  (entry, collect)

let per_thread_summary r =
  List.map
    (fun (core, samples) ->
      (core, Bg_engine.Stats.summarize (Array.map float_of_int samples)))
    r.thread_samples

let max_spread_percent r =
  List.fold_left
    (fun acc (_, s) -> Float.max acc (Bg_engine.Stats.spread_percent s))
    0.0 (per_thread_summary r)
