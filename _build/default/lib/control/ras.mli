(** The service node's RAS (Reliability/Availability/Serviceability) log.

    Collects every event the kernels publish on the machine's RAS stream
    — guard-page kills, L1 parity errors, crashes — with the cycle and
    rank attached, and answers the queries an operator would run: events
    by severity, by rank, the error count that would page someone. This
    is the machinery behind the paper's "diagnosing problems across
    100,000s of nodes". *)

type event = {
  cycle : Bg_engine.Cycles.t;
  rank : int;
  severity : Machine.ras_severity;
  message : string;
}

type t

val attach : Machine.t -> t
(** Subscribe a fresh collector to the machine's RAS stream. *)

val events : t -> event list
(** Oldest first. *)

val count : t -> ?severity:Machine.ras_severity -> unit -> int
val by_rank : t -> rank:int -> event list
val errors : t -> event list
val pp : Format.formatter -> t -> unit
