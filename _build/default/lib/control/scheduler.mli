(** The control-system job scheduler.

    Space-shares a booted {!Cnk.Cluster} among queued jobs: each job asks
    for a partition shape; the scheduler allocates it (FIFO, with optional
    backfill of smaller jobs past a blocked head), launches the job on the
    partition's ranks, and releases the partition when every member node
    reports completion. Because everything runs in one deterministic
    simulation, schedules are reproducible. *)

type job_id = int

type job_state =
  | Queued
  | Running of int list  (** the partition's ranks *)
  | Completed of Bg_engine.Cycles.t  (** completion cycle *)

type t

val create : ?backfill:bool -> Cnk.Cluster.t -> t
(** [backfill] (default false): allow a later job to start ahead of a
    blocked head-of-line job when space permits. *)

val submit :
  t -> ?walltime_cycles:int -> shape:int * int * int -> Job.t -> job_id
(** Enqueue; jobs start when {!drain} runs the machine. A job still
    running [walltime_cycles] after launch is killed on every node of its
    partition (threads exit 137) and reported Completed. *)

val drain : t -> unit
(** Start whatever fits, then run the simulation, starting queued jobs as
    partitions free up, until every submitted job completes. Raises
    [Failure] if a job can never fit the machine. *)

val state : t -> job_id -> job_state
val completed_order : t -> job_id list
(** Ids in completion order. *)
