open Bg_engine
module Obs = Bg_obs.Obs

type job_id = int

type job_state = Queued | Running of int list | Completed of Cycles.t

type pending = {
  jid : job_id;
  shape : int * int * int;
  job : Job.t;
  walltime : int option;
  submitted : Cycles.t;  (* cycle of Scheduler.submit, for queue-wait timing *)
}

type t = {
  cluster : Cnk.Cluster.t;
  partition : Partition.t;
  backfill : bool;
  mutable queue : pending list;  (* FIFO, head first *)
  states : (job_id, job_state) Hashtbl.t;
  mutable next_id : int;
  mutable done_order : job_id list;
  mutable outstanding : int;
}

let obs t = (Cnk.Cluster.machine t.cluster).Machine.obs
let now t = Sim.now (Cnk.Cluster.sim t.cluster)

let create ?(backfill = false) cluster =
  let machine = Cnk.Cluster.machine cluster in
  let dims = Bg_hw.Torus.dims machine.Machine.torus in
  {
    cluster;
    partition = Partition.create ~dims;
    backfill;
    queue = [];
    states = Hashtbl.create 16;
    next_id = 1;
    done_order = [];
    outstanding = 0;
  }

let submit t ?walltime_cycles ~shape job =
  let x, y, z = Bg_hw.Torus.dims (Cnk.Cluster.machine t.cluster).Machine.torus in
  let sx, sy, sz = shape in
  if sx > x || sy > y || sz > z then failwith "Scheduler.submit: job can never fit";
  let jid = t.next_id in
  t.next_id <- jid + 1;
  t.queue <-
    t.queue @ [ { jid; shape; job; walltime = walltime_cycles; submitted = now t } ];
  Hashtbl.replace t.states jid Queued;
  t.outstanding <- t.outstanding + 1;
  Obs.incr (obs t) ~subsystem:"scheduler" ~name:"jobs_submitted" ();
  jid

(* Try to start queued jobs; FIFO unless backfill is on, in which case
   later jobs may start past a blocked head. *)
let rec try_start t =
  match t.queue with
  | [] -> ()
  | head :: rest -> (
    match Partition.allocate t.partition ~shape:head.shape with
    | Ok alloc ->
      t.queue <- rest;
      start t head alloc;
      try_start t
    | Error _ ->
      if t.backfill then begin
        (* find the first later job that fits *)
        let rec pick acc = function
          | [] -> ()
          | p :: more -> (
            match Partition.allocate t.partition ~shape:p.shape with
            | Ok alloc ->
              t.queue <- head :: List.rev_append acc more;
              Obs.incr (obs t) ~subsystem:"scheduler" ~name:"backfill_started" ();
              start t p alloc;
              try_start t
            | Error _ -> pick (p :: acc) more)
        in
        pick [] rest
      end)

and start t pending alloc =
  let o = obs t in
  let start_cycle = now t in
  (* Scheduler decisions live under the control-system pid, one tid lane
     per job id, so a queue's history reads as a Gantt chart. *)
  Obs.incr o ~subsystem:"scheduler" ~name:"jobs_started" ();
  Obs.observe_cycles o ~subsystem:"scheduler" ~name:"queue_wait_cycles"
    (start_cycle - pending.submitted);
  let job_span =
    Obs.span_begin o ~cat:"scheduler"
      ~name:(Printf.sprintf "job.%d" pending.jid)
      ~rank:Obs.node_scope ~core:pending.jid ~now:start_cycle
  in
  Hashtbl.replace t.states pending.jid (Running alloc.Partition.ranks);
  let remaining = ref (List.length alloc.Partition.ranks) in
  List.iter
    (fun rank ->
      let node = Cnk.Cluster.node t.cluster rank in
      Cnk.Node.on_job_complete node (fun () ->
          decr remaining;
          if !remaining = 0 then begin
            Partition.release t.partition alloc.Partition.id;
            Hashtbl.replace t.states pending.jid
              (Completed (Sim.now (Cnk.Cluster.sim t.cluster)));
            t.done_order <- pending.jid :: t.done_order;
            t.outstanding <- t.outstanding - 1;
            Obs.span_end o job_span ~now:(now t);
            Obs.incr o ~subsystem:"scheduler" ~name:"jobs_completed" ();
            try_start t
          end))
    alloc.Partition.ranks;
  List.iter
    (fun rank ->
      match Cnk.Node.launch (Cnk.Cluster.node t.cluster rank) pending.job with
      | Ok () -> ()
      | Error e -> failwith (Printf.sprintf "launch on rank %d: %s" rank e))
    alloc.Partition.ranks;
  match pending.walltime with
  | None -> ()
  | Some limit ->
    let sim = Cnk.Cluster.sim t.cluster in
    ignore
      (Bg_engine.Sim.schedule_in sim limit (fun () ->
           match Hashtbl.find_opt t.states pending.jid with
           | Some (Running _) ->
             List.iter
               (fun rank -> Cnk.Node.kill_job (Cnk.Cluster.node t.cluster rank))
               alloc.Partition.ranks
           | _ -> ()))

let drain t =
  try_start t;
  let sim = Cnk.Cluster.sim t.cluster in
  let rec pump () =
    if t.outstanding > 0 then
      if Sim.step sim then pump ()
      else
        failwith
          (Printf.sprintf "Scheduler.drain: %d job(s) stuck with an empty event queue"
             t.outstanding)
  in
  pump ()

let state t jid =
  match Hashtbl.find_opt t.states jid with
  | Some s -> s
  | None -> invalid_arg "Scheduler.state: unknown job"

let completed_order t = List.rev t.done_order
