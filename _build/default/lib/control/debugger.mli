(** Front-end debug access to compute nodes.

    On Blue Gene the debugger's back end lived beside CIOD: the front end
    asked the I/O node, which reached into the compute node's memory via
    the kernel's debug interface. This facade is that path for tools in
    this repository: read a process's memory through its static map,
    chase pointers, dump the fault and thread state an operator would ask
    for first. Read-only by design. *)

type t

val attach : Cnk.Cluster.t -> rank:int -> t

val rank : t -> int

val read_memory : t -> pid:int -> addr:int -> len:int -> bytes
(** Raises [Invalid_argument] for unmapped ranges — the debugger sees the
    same static map the process does. *)

val read_word : t -> pid:int -> addr:int -> int

val chase : t -> pid:int -> head:int -> next_offset:int -> max:int -> int list
(** Follow a linked structure: read the word at [head], then the word at
    [ptr + next_offset], ... until a null pointer or [max] nodes. Returns
    the node addresses visited — the "walk the persistent list from the
    outside" debugging move. *)

type snapshot = {
  live_threads : int;
  syscalls : int;
  ipis : int;
  faults : (int * string) list;
  regions : Sysreq.region list;
}

val inspect : t -> pid:int -> snapshot
(** The first screen of a debug session. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
