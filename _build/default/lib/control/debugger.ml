type t = { cluster : Cnk.Cluster.t; rank : int }

let attach cluster ~rank = { cluster; rank }
let rank t = t.rank
let node t = Cnk.Cluster.node t.cluster t.rank

let read_memory t ~pid ~addr ~len = Cnk.Node.read_virtual (node t) ~pid ~addr ~len

let read_word t ~pid ~addr =
  Int64.to_int (Bytes.get_int64_le (read_memory t ~pid ~addr ~len:8) 0)

let chase t ~pid ~head ~next_offset ~max =
  let rec go addr n acc =
    if addr = 0 || n >= max then List.rev acc
    else go (read_word t ~pid ~addr:(addr + next_offset)) (n + 1) (addr :: acc)
  in
  go head 0 []

type snapshot = {
  live_threads : int;
  syscalls : int;
  ipis : int;
  faults : (int * string) list;
  regions : Sysreq.region list;
}

let inspect t ~pid =
  let n = node t in
  {
    live_threads = Cnk.Node.live_threads n;
    syscalls = Cnk.Node.syscall_count n;
    ipis = Cnk.Node.ipi_count n;
    faults = Cnk.Node.faults n;
    regions =
      (match Cnk.Node.process_map n ~pid with
      | Some pm -> pm.Cnk.Mapping.regions
      | None -> []);
  }

let pp_snapshot ppf s =
  Format.fprintf ppf "threads: %d live, %d syscalls, %d IPIs@." s.live_threads s.syscalls
    s.ipis;
  List.iter (fun (tid, r) -> Format.fprintf ppf "fault tid %d: %s@." tid r) s.faults;
  List.iter (fun r -> Format.fprintf ppf "  %a@." Sysreq.pp_region r) s.regions
