type event = {
  cycle : Bg_engine.Cycles.t;
  rank : int;
  severity : Machine.ras_severity;
  message : string;
}

type t = { machine : Machine.t; mutable log : event list (* newest first *) }

let attach machine =
  let t = { machine; log = [] } in
  Machine.on_ras machine (fun ~rank ~severity ~message ->
      t.log <-
        { cycle = Bg_engine.Sim.now machine.Machine.sim; rank; severity; message }
        :: t.log);
  t

let events t = List.rev t.log

let count t ?severity () =
  match severity with
  | None -> List.length t.log
  | Some s -> List.length (List.filter (fun e -> e.severity = s) t.log)

let by_rank t ~rank = List.filter (fun e -> e.rank = rank) (events t)
let errors t = List.filter (fun e -> e.severity = Machine.Ras_error) (events t)

let pp ppf t =
  List.iter
    (fun e ->
      Format.fprintf ppf "[%10d] R%02d %-5s %s@." e.cycle e.rank
        (Machine.ras_severity_to_string e.severity)
        e.message)
    (events t)
