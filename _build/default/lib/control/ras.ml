type event = {
  cycle : Bg_engine.Cycles.t;
  rank : int;
  severity : Machine.ras_severity;
  message : string;
}

(* The log is a fixed-capacity ring: a RAS storm (every node reporting the
   same parity error) must not grow the service node's memory without
   bound. Totals stay exact — only old event records are overwritten. *)
type t = {
  machine : Machine.t;
  capacity : int;
  ring : event option array;
  mutable written : int;  (* events ever logged, including overwritten *)
  severity_counts : int array;  (* indexed by severity_index, never reset *)
}

let severity_index = function
  | Machine.Ras_info -> 0
  | Machine.Ras_warn -> 1
  | Machine.Ras_error -> 2

let attach ?(capacity = 4096) machine =
  if capacity <= 0 then invalid_arg "Ras.attach: capacity must be positive";
  let t =
    {
      machine;
      capacity;
      ring = Array.make capacity None;
      written = 0;
      severity_counts = Array.make 3 0;
    }
  in
  Machine.on_ras machine (fun ~rank ~severity ~message ->
      let e =
        { cycle = Bg_engine.Sim.now machine.Machine.sim; rank; severity; message }
      in
      t.ring.(t.written mod t.capacity) <- Some e;
      t.written <- t.written + 1;
      t.severity_counts.(severity_index severity) <-
        t.severity_counts.(severity_index severity) + 1);
  t

let dropped t = max 0 (t.written - t.capacity)

let events t =
  let retained = min t.written t.capacity in
  let first = t.written - retained in
  List.init retained (fun i ->
      match t.ring.((first + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let count t ?severity () =
  match severity with
  | None -> t.written
  | Some s -> t.severity_counts.(severity_index s)

let by_rank t ~rank = List.filter (fun e -> e.rank = rank) (events t)
let errors t = List.filter (fun e -> e.severity = Machine.Ras_error) (events t)

let pp ppf t =
  if dropped t > 0 then
    Format.fprintf ppf "(... %d older events dropped ...)@." (dropped t);
  List.iter
    (fun e ->
      Format.fprintf ppf "[%10d] R%02d %-5s %s@." e.cycle e.rank
        (Machine.ras_severity_to_string e.severity)
        e.message)
    (events t)
