lib/control/debugger.ml: Bytes Cnk Format Int64 List Sysreq
