lib/control/scheduler.ml: Bg_engine Bg_hw Bg_obs Cnk Cycles Hashtbl Job List Machine Partition Printf Sim
