lib/control/scheduler.ml: Bg_engine Bg_hw Cnk Cycles Hashtbl Job List Machine Partition Printf Sim
