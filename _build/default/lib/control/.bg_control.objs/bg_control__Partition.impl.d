lib/control/partition.ml: Array Fun List
