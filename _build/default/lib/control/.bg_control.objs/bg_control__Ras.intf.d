lib/control/ras.mli: Bg_engine Format Machine
