lib/control/debugger.mli: Cnk Format Sysreq
