lib/control/ras.ml: Bg_engine Format List Machine
