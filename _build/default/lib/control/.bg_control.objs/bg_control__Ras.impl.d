lib/control/ras.ml: Array Bg_engine Format List Machine
