lib/control/scheduler.mli: Bg_engine Cnk Job
