lib/control/partition.mli:
