(** FNV-1a 64-bit hashing.

    Used throughout the simulator wherever a deterministic digest of
    architectural state is needed (logic scans, waveforms, memory content
    digests). FNV-1a is chosen for its simplicity and full determinism
    across runs and platforms; cryptographic strength is not required. *)

type t = int64
(** A running 64-bit digest. *)

val empty : t
(** The FNV-1a offset basis. *)

val add_int64 : t -> int64 -> t
(** [add_int64 h x] folds the eight bytes of [x] (little-endian) into [h]. *)

val add_int : t -> int -> t
(** [add_int h x] folds a native int into [h]. *)

val add_string : t -> string -> t
(** [add_string h s] folds every byte of [s] into [h]. *)

val add_bytes : t -> bytes -> t
(** [add_bytes h b] folds every byte of [b] into [h]. *)

val to_hex : t -> string
(** Render as a 16-character lowercase hex string. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
