(** Simulated time, counted in processor cycles of an 850 MHz BG/P core.

    All simulator timestamps are native ints (63-bit on 64-bit hosts, ample
    for multi-year simulated spans). Conversion helpers keep reporting in
    the units the paper uses (cycles, microseconds, seconds). *)

type t = int
(** A cycle count or timestamp. *)

val frequency_hz : float
(** Core clock: 850 MHz, as BG/P. *)

val of_ns : float -> t
val of_us : float -> t
val of_ms : float -> t
val of_seconds : float -> t

val to_ns : t -> float
val to_us : t -> float
val to_seconds : t -> float

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit. *)
