lib/engine/rng.mli:
