lib/engine/stats.mli:
