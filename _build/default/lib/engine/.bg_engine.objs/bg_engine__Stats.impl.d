lib/engine/stats.ml: Array Float
