lib/engine/sim.mli: Cycles Event_queue Rng Trace
