lib/engine/sim.ml: Cycles Event_queue Hashtbl Rng Trace
