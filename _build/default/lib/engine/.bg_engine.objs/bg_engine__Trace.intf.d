lib/engine/trace.mli: Cycles Fnv
