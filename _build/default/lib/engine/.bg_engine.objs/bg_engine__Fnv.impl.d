lib/engine/fnv.ml: Bytes Char Format Int64 Printf String
