lib/engine/rng.ml: Float Fnv Int64
