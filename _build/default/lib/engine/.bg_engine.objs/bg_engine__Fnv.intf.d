lib/engine/fnv.mli: Format
