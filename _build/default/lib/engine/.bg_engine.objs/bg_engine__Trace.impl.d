lib/engine/trace.ml: Cycles Fnv List
