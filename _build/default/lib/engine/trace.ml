type record = { cycle : Cycles.t; label : string; value : int64 }

type t = {
  keep_records : bool;
  mutable digest : Fnv.t;
  mutable count : int;
  mutable records : record list;  (* newest first *)
  mutable last_cycle : Cycles.t;
}

let create ?(keep_records = false) () =
  { keep_records; digest = Fnv.empty; count = 0; records = []; last_cycle = 0 }

let emit t ~cycle ~label ~value =
  let d = Fnv.add_int t.digest cycle in
  let d = Fnv.add_string d label in
  t.digest <- Fnv.add_int64 d value;
  t.count <- t.count + 1;
  t.last_cycle <- cycle;
  if t.keep_records then t.records <- { cycle; label; value } :: t.records

let digest t = t.digest
let count t = t.count
let records t = List.rev t.records

let iter t f =
  (* Oldest-first over the newest-first spine without materialising the
     reversed list; depth = number of retained records. *)
  let rec go = function
    | [] -> ()
    | r :: rest ->
      go rest;
      f r
  in
  go t.records

let last_cycle t = t.last_cycle
