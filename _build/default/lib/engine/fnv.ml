type t = int64

let empty = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let add_byte h b =
  let h = Int64.logxor h (Int64.of_int (b land 0xff)) in
  Int64.mul h prime

let add_int64 h x =
  let rec go h i =
    if i = 8 then h
    else
      let b = Int64.to_int (Int64.shift_right_logical x (8 * i)) land 0xff in
      go (add_byte h b) (i + 1)
  in
  go h 0

let add_int h x = add_int64 h (Int64.of_int x)

let add_string h s =
  let h = ref h in
  String.iter (fun c -> h := add_byte !h (Char.code c)) s;
  !h

let add_bytes h b = add_string h (Bytes.unsafe_to_string b)
let to_hex h = Printf.sprintf "%016Lx" h
let equal = Int64.equal
let compare = Int64.compare
let pp ppf h = Format.pp_print_string ppf (to_hex h)
