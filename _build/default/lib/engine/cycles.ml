type t = int

let frequency_hz = 850_000_000.0
let of_seconds s = int_of_float (Float.round (s *. frequency_hz))
let of_ns ns = of_seconds (ns *. 1e-9)
let of_us us = of_seconds (us *. 1e-6)
let of_ms ms = of_seconds (ms *. 1e-3)
let to_seconds c = float_of_int c /. frequency_hz
let to_ns c = to_seconds c *. 1e9
let to_us c = to_seconds c *. 1e6

let pp ppf c =
  let ns = to_ns c in
  if ns < 1e3 then Format.fprintf ppf "%.0fns" ns
  else if ns < 1e6 then Format.fprintf ppf "%.2fus" (ns /. 1e3)
  else if ns < 1e9 then Format.fprintf ppf "%.2fms" (ns /. 1e6)
  else Format.fprintf ppf "%.2fs" (ns /. 1e9)
