let blocking_put ctx ~dst ~tag ~data =
  Coro.consume Msg_params.armci_put_overhead;
  let h = Dcmf.put_with_ack ctx ~dst ~tag ~data in
  Dcmf.wait h

let blocking_get ctx ~src ~tag =
  Coro.consume Msg_params.armci_get_overhead;
  let h = Dcmf.get ctx ~src ~tag in
  Dcmf.wait h;
  Dcmf.fetched h
