open Bg_engine
open Bg_hw

type handle = {
  mutable complete : bool;
  mutable at : Cycles.t;
  mutable data : bytes option;
}

type ctx = {
  fabric : fabric;
  rank : int;
  buffers : (int, bytes) Hashtbl.t;            (* tag -> registered buffer *)
  eager_inbox : (int * int * bytes) Queue.t;   (* (tag, src, payload) *)
}

and fabric = { machine : Machine.t; mutable ctxs : (int * ctx) list }

let make_fabric machine = { machine; ctxs = [] }
let machine f = f.machine
let fabric_of c = c.fabric

let attach fabric ~rank =
  match List.assoc_opt rank fabric.ctxs with
  | Some c -> c
  | None ->
    let c =
      { fabric; rank; buffers = Hashtbl.create 8; eager_inbox = Queue.create () }
    in
    fabric.ctxs <- (rank, c) :: fabric.ctxs;
    c

let rank c = c.rank
let node_count c = Machine.nodes c.fabric.machine
let sim c = c.fabric.machine.Machine.sim
let torus c = c.fabric.machine.Machine.torus

let peer c rank =
  match List.assoc_opt rank c.fabric.ctxs with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Dcmf: rank %d not attached" rank)

let register c ~tag ~bytes = Hashtbl.replace c.buffers tag (Bytes.make bytes '\000')

let buffer c ~tag =
  match Hashtbl.find_opt c.buffers tag with
  | Some b -> Bytes.copy b
  | None -> invalid_arg "Dcmf.buffer: unregistered tag"

let fresh_handle () = { complete = false; at = 0; data = None }

let finish h ~at ?data () =
  h.complete <- true;
  h.at <- at;
  h.data <- data

let is_complete h = h.complete

let completion_cycle h =
  if not h.complete then invalid_arg "Dcmf.completion_cycle: pending";
  h.at

let fetched h =
  match h.data with
  | Some d -> d
  | None -> invalid_arg "Dcmf.fetched: no data (not a completed get?)"

(* Polling wait, as DCMF does on CNK (interrupts stay off). The interval
   backs off so multi-megabyte transfers do not flood the event queue. *)
let wait h =
  let rec go interval =
    if not h.complete then begin
      Coro.consume interval;
      go (min 2_000 (interval * 2))
    end
  in
  go 50

let deposit peer_ctx ~tag ~data =
  (match Hashtbl.find_opt peer_ctx.buffers tag with
  | Some buf ->
    let n = min (Bytes.length data) (Bytes.length buf) in
    Bytes.blit data 0 buf 0 n
  | None ->
    (* unregistered target: auto-register, as a convenience *)
    Hashtbl.replace peer_ctx.buffers tag (Bytes.copy data))

let put c ~dst ~tag ~data =
  let h = fresh_handle () in
  Coro.consume Msg_params.put_sw;
  let p = peer c dst in
  Torus.transfer (torus c) ~src:c.rank ~dst ~bytes:(Bytes.length data)
    ~on_arrival:(fun ~arrival_cycle ->
      deposit p ~tag ~data;
      finish h ~at:arrival_cycle ())
    ();
  h

let put_with_ack c ~dst ~tag ~data =
  let h = fresh_handle () in
  Coro.consume Msg_params.put_sw;
  let p = peer c dst in
  Torus.transfer (torus c) ~src:c.rank ~dst ~bytes:(Bytes.length data)
    ~on_arrival:(fun ~arrival_cycle:_ ->
      deposit p ~tag ~data;
      (* hardware ack packet back to the origin *)
      Torus.transfer (torus c) ~src:dst ~dst:c.rank ~bytes:Msg_params.remote_ack_bytes
        ~on_arrival:(fun ~arrival_cycle -> finish h ~at:arrival_cycle ())
        ())
    ();
  h

let get c ~src ~tag =
  let h = fresh_handle () in
  Coro.consume Msg_params.get_request_sw;
  let p = peer c src in
  (* request packet to the data owner; its DMA reads and streams back,
     no remote CPU involvement *)
  Torus.transfer (torus c) ~src:c.rank ~dst:src ~bytes:Msg_params.small_packet_bytes
    ~on_arrival:(fun ~arrival_cycle:_ ->
      let data =
        match Hashtbl.find_opt p.buffers tag with
        | Some b -> Bytes.copy b
        | None -> Bytes.empty
      in
      ignore
        (Sim.schedule_in (sim c) Msg_params.get_remote_dma (fun () ->
             Torus.transfer (torus c) ~src ~dst:c.rank ~bytes:(Bytes.length data)
               ~on_arrival:(fun ~arrival_cycle ->
                 finish h ~at:arrival_cycle ~data ())
               ())))
    ();
  h

let send_eager c ~dst ~tag ~data =
  let h = fresh_handle () in
  Coro.consume (Msg_params.put_sw + Msg_params.eager_send_sw);
  let p = peer c dst in
  Torus.transfer (torus c) ~src:c.rank ~dst
    ~bytes:(Bytes.length data + Msg_params.small_packet_bytes)
    ~on_arrival:(fun ~arrival_cycle ->
      (* receive-side active-message dispatch costs CPU before the payload
         is usable *)
      ignore
        (Sim.schedule_in (sim c) Msg_params.eager_recv_handler (fun () ->
             Queue.push (tag, c.rank, data) p.eager_inbox;
             finish h ~at:(arrival_cycle + Msg_params.eager_recv_handler) ())))
    ();
  h

let try_recv_eager c ~tag =
  (* scan the inbox for the first matching tag, preserving order *)
  let n = Queue.length c.eager_inbox in
  let found = ref None in
  for _ = 1 to n do
    let (t, src, data) = Queue.pop c.eager_inbox in
    if !found = None && t = tag then found := Some (src, data)
    else Queue.push (t, src, data) c.eager_inbox
  done;
  !found

let put_large c ~dst ~tag ~bytes ~contiguous =
  ignore tag;
  let h = fresh_handle () in
  if contiguous then begin
    (* one descriptor streams the whole physically contiguous buffer *)
    Coro.consume Msg_params.put_sw;
    Torus.transfer (torus c) ~src:c.rank ~dst ~bytes
      ~on_arrival:(fun ~arrival_cycle -> finish h ~at:arrival_cycle ())
      ()
  end
  else begin
    (* Fragmented buffer: the DMA cannot walk page tables (paper §IV.C),
       so software copies each 4 KiB piece through a contiguous bounce
       buffer (~1.2 B/cycle through DDR, competing with the DMA's own
       traffic) and builds a descriptor per piece. The copy runs on the
       calling core, so it serializes against every link this core
       feeds — that is what caps paged bandwidth below wire speed. *)
    let frag = Msg_params.paged_fragment_bytes in
    let pieces = max 1 ((bytes + frag - 1) / frag) in
    let outstanding = ref pieces in
    let last_arrival = ref 0 in
    Coro.consume Msg_params.put_sw;
    for i = 0 to pieces - 1 do
      let len = min frag (bytes - (i * frag)) in
      Coro.consume (Msg_params.paged_fragment_sw + int_of_float (float_of_int len /. 1.2));
      Torus.transfer (torus c) ~src:c.rank ~dst ~bytes:len
        ~on_arrival:(fun ~arrival_cycle ->
          last_arrival := max !last_arrival arrival_cycle;
          decr outstanding;
          if !outstanding = 0 then finish h ~at:!last_arrival ())
        ()
    done
  end;
  h

let barrier_via_hw c =
  let released = ref false in
  Bg_hw.Barrier_net.arrive c.fabric.machine.Machine.barrier ~rank:c.rank
    ~on_release:(fun ~release_cycle:_ -> released := true);
  let rec spin interval =
    if not !released then begin
      Coro.consume interval;
      spin (min 1_000 (interval * 2))
    end
  in
  spin 50
