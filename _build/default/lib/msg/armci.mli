(** ARMCI-style blocking one-sided operations (paper Table I).

    ARMCI's blocking put returns only after remote completion is
    guaranteed (here: the hardware ack), and blocking get after the data
    has landed locally — both with ARMCI's own bookkeeping on top of the
    DCMF primitives. Hence "ARMCI Put 2.0 us" sits between raw DCMF put
    (no remote guarantee) and MPI (two-sided matching). *)

val blocking_put : Dcmf.ctx -> dst:int -> tag:int -> data:bytes -> unit
val blocking_get : Dcmf.ctx -> src:int -> tag:int -> bytes
