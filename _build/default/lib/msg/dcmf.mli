(** DCMF — the Deep Computing Messaging Framework layer (paper §V.C).

    DCMF runs entirely in user space. It can, because CNK (a) lets the
    application drive the torus DMA directly, (b) exposes the
    virtual-to-physical mapping, and (c) provides large physically
    contiguous buffers. Here that shows up as: these functions are called
    from inside program coroutines, charge user-space software costs via
    [Coro.consume], and talk straight to {!Bg_hw.Torus} with no syscall.

    A {!fabric} is the per-machine rendezvous point; each rank's program
    {!attach}es once and gets its context. Data payloads are real bytes:
    put/get/eager move them into the peer's registered buffers, so tests
    can assert integrity end to end.

    Completion handling: operations return {!handle}s whose completion is
    stamped with the hardware arrival cycle plus the receive-side software
    cost; {!wait} spins (DCMF on CNK polls — there is nothing to yield
    to). *)

type fabric
type ctx
type handle

val make_fabric : Machine.t -> fabric
val machine : fabric -> Machine.t
val fabric_of : ctx -> fabric
val attach : fabric -> rank:int -> ctx
(** One context per rank; re-attaching returns the same context. *)

val rank : ctx -> int
val node_count : ctx -> int

val register : ctx -> tag:int -> bytes:int -> unit
(** Expose a named buffer of the given size for remote put/get. *)

val buffer : ctx -> tag:int -> bytes
(** Read back a registered buffer's current contents. *)

val put : ctx -> dst:int -> tag:int -> data:bytes -> handle
(** One-sided put into the peer's registered buffer. The handle completes
    at remote data arrival (what the paper's one-way latency measures). *)

val put_with_ack : ctx -> dst:int -> tag:int -> data:bytes -> handle
(** Put whose completion waits for the hardware ack packet to return —
    the building block of ARMCI's blocking put. *)

val get : ctx -> src:int -> tag:int -> handle
(** One-sided get of the peer's registered buffer; completes when the data
    lands locally (find it via {!fetched}). *)

val fetched : handle -> bytes
(** Data landed by a completed {!get}. *)

val send_eager : ctx -> dst:int -> tag:int -> data:bytes -> handle
(** Two-sided eager active message; completes (remotely) after the
    receive-side dispatch handler runs. *)

val try_recv_eager : ctx -> tag:int -> (int * bytes) option
(** Dequeue an arrived eager message with this tag: (src, payload). *)

val put_large : ctx -> dst:int -> tag:int -> bytes:int -> contiguous:bool -> handle
(** Bulk transfer for the Fig 8 bandwidth experiment. [contiguous] streams
    one DMA descriptor; otherwise the buffer is physically fragmented into
    4 KiB pieces, each needing its own descriptor + handshake round —
    the Linux-without-big-pages path. No payload bytes are carried. *)

val is_complete : handle -> bool
val completion_cycle : handle -> Bg_engine.Cycles.t
(** Raises [Invalid_argument] if not complete yet. *)

val wait : handle -> unit
(** Spin (adaptive-interval polling) inside the calling coroutine until
    the handle completes. *)

val barrier_via_hw : ctx -> unit
(** Enter the global barrier network and spin until released. *)
