lib/msg/armci.mli: Dcmf
