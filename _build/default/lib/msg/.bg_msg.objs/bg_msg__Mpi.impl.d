lib/msg/mpi.ml: Bg_engine Bg_hw Bytes Coro Cycles Dcmf List Machine Marshal Msg_params Sim
