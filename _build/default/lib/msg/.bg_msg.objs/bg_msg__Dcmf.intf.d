lib/msg/dcmf.mli: Bg_engine Machine
