lib/msg/msg_params.mli:
