lib/msg/mpi.mli: Dcmf
