lib/msg/msg_params.ml:
