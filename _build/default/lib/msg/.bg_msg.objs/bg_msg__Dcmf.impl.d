lib/msg/dcmf.ml: Bg_engine Bg_hw Bytes Coro Cycles Hashtbl List Machine Msg_params Printf Queue Sim Torus
