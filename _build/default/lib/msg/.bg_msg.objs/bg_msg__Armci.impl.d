lib/msg/armci.ml: Coro Dcmf Msg_params
