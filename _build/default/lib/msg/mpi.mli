(** MPI point-to-point and collectives over DCMF (paper Table I, §V.D).

    Standard-mode send switches between the eager protocol (payload rides
    the first message, matched against posted/unexpected queues) and the
    rendezvous protocol (RTS → CTS → bulk put) at {!eager_threshold} —
    both implemented in user space on DCMF primitives, with MPI's envelope
    and matching costs on top. This is where Table I's "MPI Eager 2.4 us /
    MPI Rendezvous 5.6 us" come from: same wire, more software.

    The allreduce runs on the collective-network timing model: arrival of
    the last rank plus a tree traversal up and down. Its latency therefore
    inherits each rank's scheduling noise — exactly the §V.D experiment. *)

type t

val create : Dcmf.ctx -> t
val dcmf : t -> Dcmf.ctx
val rank : t -> int
val size : t -> int

val eager_threshold : int
(** Bytes; larger payloads use rendezvous (1200, as BG/P MPI). *)

val send : t -> dst:int -> tag:int -> bytes -> unit
(** Blocking standard send. *)

val send_rendezvous : t -> ?contiguous:bool -> dst:int -> tag:int -> int -> unit
(** Force the rendezvous path for a payload of the given size (no data
    bytes carried). [contiguous] (default true) selects the DMA path of
    {!Dcmf.put_large}. Completion = remote delivery complete. *)

val recv : t -> src:int -> tag:int -> bytes
(** Blocking matched receive (eager payloads only). *)

(** {1 Non-blocking point-to-point}

    Handles follow MPI's request model: start the operation, keep
    computing, then {!wait}. A receive completes when a matching eager
    message has arrived and been matched. *)

type request

val isend : t -> dst:int -> tag:int -> bytes -> request
val irecv : t -> src:int -> tag:int -> request
val test : t -> request -> bool
(** Non-blocking completion probe (progresses receives). *)

val wait : t -> request -> bytes
(** Blocks until complete; returns the payload ([Bytes.empty] for sends). *)

val waitall : t -> request list -> bytes list

val sendrecv :
  t -> dst:int -> send_tag:int -> bytes -> src:int -> recv_tag:int -> bytes
(** The deadlock-free exchange primitive ring codes rely on. *)

val barrier : t -> unit
(** Barrier over the global-interrupt network. *)

(** Tree-network collectives shared by all ranks of a fabric. *)
module Coll : sig
  type coll

  val create : Dcmf.fabric -> participants:int -> coll

  val allreduce_sum : coll -> t -> float -> float
  (** Double-sum allreduce (the mpiBench_Allreduce operation): blocks
      until every participant contributes, then completes one tree
      round-trip after the last arrival. *)

  val last_latency_cycles : coll -> int
  (** Wall cycles from first arrival to completion of the most recent
      round — the per-iteration latency mpiBench reports. *)

  type route = Tree | Torus
  (** Where a large allreduce runs. The collective network's ALU combines
      integers at wire speed but needs two passes for doubles; the torus
      runs a reduce-scatter + allgather across all six links. Small
      reductions love the tree's latency; big ones love the torus's
      aggregate bandwidth — the crossover is a classic BG/P result. *)

  val allreduce_vector : coll -> t -> route -> elements:int -> float -> float
  (** Allreduce of a double vector of [elements] (timing is vector-sized;
      the returned value is the sum of each rank's scalar contribution,
      as {!allreduce_sum}). Blocks until completion. *)

  val estimate_vector_cycles : coll -> route -> elements:int -> int
  (** The closed-form time model behind {!allreduce_vector}. *)

  val bcast : coll -> t -> root:int -> bytes -> bytes
  (** Small broadcast over the collective network's hardware multicast:
      every rank (including the root) receives the root's payload one tree
      traversal after the last participant arrives. *)

  val reduce_sum : coll -> t -> root:int -> float -> float option
  (** Sum reduction to [root]: the root gets [Some sum], others [None],
      one up-tree traversal after the last arrival. *)

  val alltoall_cycles : coll -> bytes_per_pair:int -> int
  (** Closed-form cost of a personalized all-to-all (the FFT transpose):
      n(n-1) pairwise messages crossing the torus, limited by bisection
      bandwidth — the communication pattern of DNS3D-class codes. *)

  val alltoall : coll -> t -> bytes_per_pair:int -> int -> int list
  (** Personalized exchange of one integer per peer: rank r contributes
      [v] and receives [n] values ordered by source rank (each rank's
      contribution is what every peer receives from it). Timing follows
      {!alltoall_cycles}. *)
end
