(** The dynamic linker (paper §IV.B.2).

    Models glibc's ld.so the way CNK hosts it: libraries are opened
    through the (function-shipped) filesystem, the {e whole} file is
    brought into memory at load time via a MAP_COPY file mmap — no
    demand paging, so load noise is confined to startup/dlopen — and page
    permissions on the library's text are deliberately not honored (a
    store into loaded text succeeds).

    Because images carry OCaml closures rather than machine code, the
    "file" on the I/O node holds deterministic placeholder bytes of the
    right size, and a host-side registry maps the path to the symbol
    table. Tests assert both views stay consistent. *)

type handle

val install_library : Bg_cio.Fs.t -> Image.t -> string
(** Write the library's file into [/lib/<name>.so] on the I/O-node
    filesystem and register its symbols. Returns the path. Host-side
    setup, not user code. *)

val dlopen : string -> handle
(** User code: open the library file, read its "headers", mmap the whole
    file (MAP_COPY), and run its init. Raises {!Sysreq.Syscall_error}
    [ENOENT] for an unknown path. *)

val dlsym : handle -> string -> int -> int
(** Look up an exported function and call it: [dlsym h name arg]. Raises
    [Not_found] for a missing symbol. Charges a per-call consume cost. *)

val dlclose : handle -> unit

val base_address : handle -> int
(** Where the library text was mapped. *)

val text_writable_demo : handle -> unit
(** Store a byte into the mapped text — succeeds on CNK because dynamic
    text permissions are not enforced (§IV.B.2). *)
