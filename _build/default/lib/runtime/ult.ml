open Effect
open Effect.Deep

type _ Effect.t +=
  | U_yield : unit Effect.t
  | U_spawn : (unit -> unit) -> unit Effect.t
  | U_count : int Effect.t

let spawn f =
  try perform (U_spawn f) with Unhandled _ -> failwith "Ult.spawn: no scheduler running"

let yield () = try perform U_yield with Unhandled _ -> ()
let self_count () = try perform U_count with Unhandled _ -> 0

let run initial =
  let q : (unit -> unit) Queue.t = Queue.create () in
  let live = ref (List.length initial) in
  List.iter (fun f -> Queue.push f q) initial;
  (* Each ULT runs under this handler; scheduling effects are consumed
     here, everything else (consume/syscall/load/store) escapes to the
     kernel, whose resumption re-enters the captured ULT frame. *)
  let rec next () =
    match Queue.take_opt q with
    | None -> ()
    | Some f -> exec f
  and exec f =
    match_with f ()
      {
        retc =
          (fun () ->
            decr live;
            next ());
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | U_yield ->
              Some
                (fun (k : (a, unit) continuation) ->
                  Queue.push (fun () -> continue k ()) q;
                  next ())
            | U_spawn g ->
              Some
                (fun k ->
                  incr live;
                  Queue.push g q;
                  continue k ())
            | U_count -> Some (fun k -> continue k !live)
            | _ -> None);
      }
  in
  next ()
