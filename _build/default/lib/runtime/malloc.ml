let mmap_threshold = 128 * 1024
let align = 16

(* Host-side metadata, keyed per process instance. *)
type heap = {
  mutable free_list : (int * int) list;  (* (addr, len), sorted by addr *)
  blocks : (int, int) Hashtbl.t;          (* addr -> len, live blocks *)
  mmapped : (int, int) Hashtbl.t;         (* addr -> len, mmap-backed *)
}

let heaps : (string * int, heap) Hashtbl.t = Hashtbl.create 16

let my_heap () =
  let key = ((Libc.uname ()).Sysreq.nodename, Libc.getpid ()) in
  match Hashtbl.find_opt heaps key with
  | Some h -> h
  | None ->
    let h = { free_list = []; blocks = Hashtbl.create 64; mmapped = Hashtbl.create 8 } in
    Hashtbl.replace heaps key h;
    h

let round n = (n + align - 1) / align * align

let insert_free h addr len =
  (* insert sorted, coalescing with neighbours *)
  let rec go = function
    | [] -> [ (addr, len) ]
    | (a, l) :: rest when a + l = addr -> (a, l + len) :: rest
    | (a, l) :: rest when addr + len = a -> (addr, len + l) :: rest
    | (a, l) :: rest when a < addr -> (a, l) :: go rest
    | rest -> (addr, len) :: rest
  in
  let merged = go h.free_list in
  (* one more pass to coalesce a bridge fill *)
  let rec squash = function
    | (a1, l1) :: (a2, l2) :: rest when a1 + l1 = a2 -> squash ((a1, l1 + l2) :: rest)
    | x :: rest -> x :: squash rest
    | [] -> []
  in
  h.free_list <- squash merged

let take_free h need =
  let rec go = function
    | [] -> None
    | (a, l) :: rest when l >= need ->
      let leftover = if l > need then [ (a + need, l - need) ] else [] in
      Some (a, leftover @ rest)
    | x :: rest -> Option.map (fun (a, r) -> (a, x :: r)) (go rest)
  in
  match go h.free_list with
  | Some (addr, rest) ->
    h.free_list <- rest;
    Some addr
  | None -> None

let malloc n =
  if n <= 0 then invalid_arg "Malloc.malloc";
  Coro.consume 60;  (* allocator bookkeeping cost *)
  let h = my_heap () in
  let need = round n in
  if need >= mmap_threshold then begin
    let addr = Libc.mmap_anon ~length:need in
    Hashtbl.replace h.mmapped addr need;
    addr
  end
  else begin
    match take_free h need with
    | Some addr ->
      Hashtbl.replace h.blocks addr need;
      addr
    | None ->
      (* grow the brk heap by at least 256 KiB at a time *)
      let grow = max need (256 * 1024) in
      let base = Libc.sbrk grow in
      if grow > need then insert_free h (base + need) (grow - need);
      Hashtbl.replace h.blocks base need;
      base
  end

let free addr =
  Coro.consume 40;
  let h = my_heap () in
  match Hashtbl.find_opt h.mmapped addr with
  | Some len ->
    Hashtbl.remove h.mmapped addr;
    Libc.munmap ~addr ~length:len
  | None -> (
    match Hashtbl.find_opt h.blocks addr with
    | Some len ->
      Hashtbl.remove h.blocks addr;
      insert_free h addr len
    | None -> invalid_arg (Printf.sprintf "Malloc.free: unknown block 0x%x" addr))

let calloc n =
  let addr = malloc n in
  let rec zero off =
    if off < n then begin
      let chunk = min 4096 (n - off) in
      Coro.store ~addr:(addr + off) (Bytes.make chunk '\000');
      zero (off + chunk)
    end
  in
  zero 0;
  addr

let allocated_bytes () =
  let h = my_heap () in
  Hashtbl.fold (fun _ l acc -> acc + l) h.blocks 0
  + Hashtbl.fold (fun _ l acc -> acc + l) h.mmapped 0
