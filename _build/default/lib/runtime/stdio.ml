let stdout_path ~rank = Printf.sprintf "/var/log/stdout.%d" rank
let stderr_path ~rank = Printf.sprintf "/var/log/stderr.%d" rank

(* line buffers keyed per (node, pid, stream) — host-side state standing in
   for the glibc stdio buffer in process memory *)
let buffers : (string * int * string, Buffer.t) Hashtbl.t = Hashtbl.create 16

let buffer_of stream =
  let key = ((Libc.uname ()).Sysreq.nodename, Libc.getpid (), stream) in
  match Hashtbl.find_opt buffers key with
  | Some b -> b
  | None ->
    let b = Buffer.create 128 in
    Hashtbl.add buffers key b;
    b

let ensure_log_dirs () =
  List.iter
    (fun p ->
      match Libc.mkdir p with
      | () -> ()
      | exception Sysreq.Syscall_error Errno.EEXIST -> ())
    [ "/var"; "/var/log" ]

let append_to path data =
  ensure_log_dirs ();
  let fd =
    Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true; append = true } path
  in
  ignore (Libc.write fd (Bytes.of_string data));
  Libc.close fd

let path_for stream =
  let rank = Libc.rank () in
  if stream = "out" then stdout_path ~rank else stderr_path ~rank

let write_stream stream s =
  let b = buffer_of stream in
  Buffer.add_string b s;
  (* flush complete lines; keep the partial tail buffered *)
  let contents = Buffer.contents b in
  match String.rindex_opt contents '\n' with
  | None -> ()
  | Some i ->
    let complete = String.sub contents 0 (i + 1) in
    let tail = String.sub contents (i + 1) (String.length contents - i - 1) in
    Buffer.clear b;
    Buffer.add_string b tail;
    append_to (path_for stream) complete

let printf fmt = Printf.ksprintf (write_stream "out") fmt
let eprintf fmt = Printf.ksprintf (write_stream "err") fmt

let flush () =
  List.iter
    (fun stream ->
      let b = buffer_of stream in
      if Buffer.length b > 0 then begin
        let s = Buffer.contents b in
        Buffer.clear b;
        append_to (path_for stream) s
      end)
    [ "out"; "err" ]

let read_console fs ~rank =
  match Bg_cio.Fs.resolve fs ~cwd:"/" (stdout_path ~rank) with
  | Error _ -> ""
  | Ok inode -> (
    match Bg_cio.Fs.read fs inode ~offset:0 ~len:(Bg_cio.Fs.size fs inode) with
    | Ok b -> Bytes.to_string b
    | Error _ -> "")
