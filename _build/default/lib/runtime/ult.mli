(** Cooperative user-level threads — the Charm++ workaround.

    Paper §VII.B: "Some applications overcommit threads to cores for load
    balancing purposes, and the CNK threading model does not allow that,
    though Charm++ accomplishes this with a user-mode threading library."
    This is that library: any number of user-level threads multiplex over
    the one kernel thread that runs the scheduler. Switches happen only at
    {!yield} (cooperative, like Charm++ on CNK); kernel-visible effects
    (consume, syscalls, memory) pass through to the real kernel untouched.

    Implementation: a nested effect handler that intercepts only the ULT
    scheduling effects and forwards everything else outward. *)

val spawn : (unit -> unit) -> unit
(** Register a new user-level thread with the running scheduler. Raises
    [Failure] outside {!run}. *)

val yield : unit -> unit
(** Switch to the next runnable user-level thread. Outside {!run} this is
    a no-op. *)

val run : (unit -> unit) list -> unit
(** Run the given user-level threads (plus any they {!spawn}) round-robin
    until all complete. May be nested in principle, but each [run] owns
    its own thread set. *)

val self_count : unit -> int
(** Number of live ULTs in the innermost running scheduler (0 outside). *)
