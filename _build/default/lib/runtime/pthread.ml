type t = { tid : int; ctid_addr : int; stack_addr : int; stack_bytes : int }

let guard_len = 64 * 1024

let create ?(stack_bytes = 2 * 1024 * 1024) f =
  (* Stack via malloc: over the threshold it takes the mmap path, exactly
     the glibc behaviour the paper describes. Two tid words live at the
     stack base. *)
  let stack_addr = Malloc.malloc stack_bytes in
  (* Layout: page 0 holds the tid words; the guard starts at the next page
     boundary so protecting it never covers the tid words (the FWK enforces
     page protection for real, and the kernel's CLONE_*_SETTID stores must
     land). The usable stack sits above the guard. *)
  let ctid_addr = stack_addr in
  let ptid_addr = stack_addr + 8 in
  (* NPTL mprotects the guard below the usable stack just before clone;
     CNK records the range and programs the child's DAC from it. *)
  Libc.mprotect_guard ~addr:(stack_addr + 4096) ~length:guard_len;
  let tid =
    Sysreq.expect_int
      (Coro.syscall
         (Sysreq.Clone
            {
              flags = Sysreq.nptl_clone_flags;
              stack_hint = stack_addr + stack_bytes;
              tls = 0;
              parent_tid_addr = ptid_addr;
              child_tid_addr = ctid_addr;
              entry =
                (fun () ->
                  (* set_tid_address registers the clear-on-exit word *)
                  ignore (Coro.syscall (Sysreq.Set_tid_address ctid_addr));
                  f ());
            }))
  in
  { tid; ctid_addr; stack_addr; stack_bytes }

let tid t = t.tid
let self () = Libc.gettid ()
let yield () = ignore (Coro.syscall Sysreq.Sched_yield)

let futex_wait addr expected =
  match Coro.syscall (Sysreq.Futex_wait { addr; expected }) with
  | Sysreq.R_int _ -> ()
  | Sysreq.R_err (Errno.EAGAIN | Errno.EINTR) -> ()
  | Sysreq.R_err e -> raise (Sysreq.Syscall_error e)
  | _ -> invalid_arg "futex_wait reply"

let futex_wake addr count =
  Sysreq.expect_int (Coro.syscall (Sysreq.Futex_wake { addr; count }))

let join t =
  (* Wait until the kernel clears the child-tid word at thread exit. *)
  let rec loop () =
    let v = Libc.peek t.ctid_addr in
    if v <> 0 then begin
      futex_wait t.ctid_addr v;
      loop ()
    end
  in
  loop ();
  Malloc.free t.stack_addr

module Mutex = struct
  type m = { word : int }
  (* 0 = unlocked, 1 = locked, 2 = locked with waiters *)

  let create () =
    let word = Malloc.malloc 8 in
    Libc.poke word 0;
    { word }

  let try_lock m = Coro.cas ~addr:m.word ~expected:0 ~desired:1

  let lock m =
    if not (Coro.cas ~addr:m.word ~expected:0 ~desired:1) then begin
      let rec contend () =
        (* mark contended, then sleep until the holder wakes us *)
        if Coro.cas ~addr:m.word ~expected:1 ~desired:2 || Libc.peek m.word = 2 then
          futex_wait m.word 2;
        if not (Coro.cas ~addr:m.word ~expected:0 ~desired:2) then contend ()
      in
      contend ()
    end

  let unlock m =
    (* atomic exchange to 0 via CAS loop *)
    let rec swap_to_zero () =
      let v = Libc.peek m.word in
      if v = 0 then 0
      else if Coro.cas ~addr:m.word ~expected:v ~desired:0 then v
      else swap_to_zero ()
    in
    let old = swap_to_zero () in
    if old = 2 then ignore (futex_wake m.word 1)

  let destroy m = Malloc.free m.word
end

module Cond = struct
  type c = { seq : int }

  let create () =
    let seq = Malloc.malloc 8 in
    Libc.poke seq 0;
    { seq }

  let wait c m =
    let v = Libc.peek c.seq in
    Mutex.unlock m;
    futex_wait c.seq v;
    Mutex.lock m

  let signal c =
    ignore (Coro.fetch_add ~addr:c.seq 1);
    ignore (futex_wake c.seq 1)

  let broadcast c =
    ignore (Coro.fetch_add ~addr:c.seq 1);
    ignore (futex_wake c.seq max_int)

  let destroy c = Malloc.free c.seq
end

module Barrier = struct
  type b = { parties : int; count : int; sense : int }

  let create ~parties =
    if parties <= 0 then invalid_arg "Barrier.create";
    let count = Malloc.malloc 8 and sense = Malloc.malloc 8 in
    Libc.poke count 0;
    Libc.poke sense 0;
    { parties; count; sense }

  let wait b =
    let my_sense = Libc.peek b.sense in
    let arrived = Coro.fetch_add ~addr:b.count 1 + 1 in
    if arrived = b.parties then begin
      (* last arrival: reset and flip the sense, wake everyone *)
      Libc.poke b.count 0;
      ignore (Coro.fetch_add ~addr:b.sense 1);
      ignore (futex_wake b.sense max_int)
    end
    else begin
      let rec sleep () =
        if Libc.peek b.sense = my_sense then begin
          futex_wait b.sense my_sense;
          sleep ()
        end
      in
      sleep ()
    end

  let destroy b =
    Malloc.free b.count;
    Malloc.free b.sense
end
