(** NPTL-shaped pthreads on the CNK syscall subset (paper §IV.B.1).

    This follows the structure of glibc's NPTL closely enough that the
    kernel sees exactly the calls the paper enumerates: stacks come from
    malloc (large enough to take the mmap path), an mprotect marks the
    stack guard just before clone, clone carries the fixed NPTL flag set
    with parent/child tid addresses, join waits on the child-tid futex
    that the kernel clears at exit (CLONE_CHILD_CLEARTID), and mutexes /
    condition variables / barriers are pure futex users. *)

type t
(** A joinable thread handle. *)

val create : ?stack_bytes:int -> (unit -> unit) -> t
(** Spawn a thread running the closure. Default stack 2 MiB (over the mmap
    threshold, as the paper observes is common). Raises
    {!Sysreq.Syscall_error} [EAGAIN] when the core set is saturated. *)

val tid : t -> int

val join : t -> unit
(** Block until the thread exits (futex on the child-tid word). *)

val self : unit -> int
val yield : unit -> unit

(** Drepper-style three-state futex mutex. *)
module Mutex : sig
  type m

  val create : unit -> m
  (** Allocates the lock word on the simulated heap. *)

  val lock : m -> unit
  val try_lock : m -> bool
  val unlock : m -> unit
  val destroy : m -> unit
end

(** Futex condition variable (sequence-counter protocol). *)
module Cond : sig
  type c

  val create : unit -> c
  val wait : c -> Mutex.m -> unit
  val signal : c -> unit
  val broadcast : c -> unit
  val destroy : c -> unit
end

(** Counting barrier with sense reversal. *)
module Barrier : sig
  type b

  val create : parties:int -> b
  val wait : b -> unit
  val destroy : b -> unit
end
