(** stdout/stderr forwarding — the missing console.

    Compute nodes have no terminal: on the real machine CNK forwards
    stdout/stderr traffic through CIOD, which aggregates every rank's
    output for the job's log. Here the streams are per-rank append-only
    files under /var/log on the I/O-node filesystem, written through the
    ordinary function-shipped path (so printing from 10,000 ranks really
    does queue on the collective network, as users discover).

    Output is line-buffered per rank; {!flush} and {!printf "...\n"} push
    complete lines out. *)

val printf : ('a, unit, string, unit) format4 -> 'a
(** Append to the calling rank's stdout stream. *)

val eprintf : ('a, unit, string, unit) format4 -> 'a

val flush : unit -> unit
(** Force out any buffered partial line. *)

val stdout_path : rank:int -> string
val stderr_path : rank:int -> string

val read_console : Bg_cio.Fs.t -> rank:int -> string
(** Host side: collect what a rank printed so far ("" if nothing). *)
