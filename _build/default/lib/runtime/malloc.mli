(** User-space heap allocator over brk/mmap, glibc-style.

    As the paper notes (§IV.B.1), glibc satisfies small requests from the
    brk heap and routes allocations over the mmap threshold (stacks often
    exceed 1 MB) through mmap — both of which CNK supports. Free-list
    metadata is kept host-side per (rank, pid); the allocated ranges are
    real simulated addresses in the process's static heap region. *)

val malloc : int -> int
(** Allocate [n > 0] bytes; returns the virtual address. Raises
    {!Sysreq.Syscall_error} [ENOMEM] when the heap is exhausted. *)

val free : int -> unit
(** Free an address returned by {!malloc}. Freeing an unknown address
    raises [Invalid_argument] (glibc would corrupt itself; we're kinder). *)

val calloc : int -> int
(** malloc + explicit zeroing (the static map hands out zeroed memory on
    first touch anyway; calloc also zeroes reused blocks). *)

val mmap_threshold : int
(** Requests of at least this size (128 KiB) go to mmap directly. *)

val allocated_bytes : unit -> int
(** Live bytes for the calling process. *)
