(** Minimal OpenMP-style fork-join layer over {!Pthread}.

    Enough to express the paper's threaded workloads (AMG, IRS, SPhot,
    UMT use OpenMP on CNK unmodified, §V.B): a parallel region forks
    [num_threads - 1] workers, runs chunk 0 on the calling thread, and
    joins. [num_threads] is a hint, as in OpenMP proper: when the kernel
    refuses another thread (CNK's per-core limit), the overflow chunks run
    serially on the calling thread rather than failing the region. *)

val parallel_for :
  num_threads:int -> lo:int -> hi:int -> (thread_num:int -> int -> unit) -> unit
(** [parallel_for ~num_threads ~lo ~hi body] applies [body ~thread_num i]
    for every [i] in [lo, hi), split into contiguous chunks. *)

val parallel : num_threads:int -> (thread_num:int -> unit) -> unit
(** A bare parallel region. *)
