let parallel ~num_threads body =
  if num_threads <= 0 then invalid_arg "Openmp.parallel";
  (* num_threads is a hint, as in OpenMP: when the kernel refuses another
     thread (CNK's per-core limit -> EAGAIN), the remaining chunks run on
     the calling thread instead of failing the region *)
  let workers = ref [] in
  let leftover = ref [] in
  for i = 1 to num_threads - 1 do
    match Pthread.create (fun () -> body ~thread_num:i) with
    | h -> workers := h :: !workers
    | exception Sysreq.Syscall_error Errno.EAGAIN -> leftover := i :: !leftover
  done;
  body ~thread_num:0;
  List.iter (fun i -> body ~thread_num:i) (List.rev !leftover);
  List.iter Pthread.join !workers

let parallel_for ~num_threads ~lo ~hi body =
  if hi < lo then invalid_arg "Openmp.parallel_for";
  let total = hi - lo in
  let chunk = (total + num_threads - 1) / max 1 num_threads in
  parallel ~num_threads (fun ~thread_num ->
      let start = lo + (thread_num * chunk) in
      let stop = min hi (start + chunk) in
      for i = start to stop - 1 do
        body ~thread_num i
      done)
