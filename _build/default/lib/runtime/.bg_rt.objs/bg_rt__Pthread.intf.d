lib/runtime/pthread.mli:
