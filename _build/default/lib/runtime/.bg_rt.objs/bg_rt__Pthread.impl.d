lib/runtime/pthread.ml: Coro Errno Libc Malloc Sysreq
