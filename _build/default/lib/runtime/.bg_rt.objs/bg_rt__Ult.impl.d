lib/runtime/ult.ml: Effect List Queue
