lib/runtime/malloc.mli:
