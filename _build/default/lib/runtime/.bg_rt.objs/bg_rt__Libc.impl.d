lib/runtime/libc.ml: Bg_hw Bytes Coro Int64 Sysreq
