lib/runtime/ld_so.mli: Bg_cio Image
