lib/runtime/ult.mli:
