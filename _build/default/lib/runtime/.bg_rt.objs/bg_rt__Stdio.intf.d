lib/runtime/stdio.mli: Bg_cio
