lib/runtime/libc.mli: Sysreq
