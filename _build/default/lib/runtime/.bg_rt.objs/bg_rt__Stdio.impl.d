lib/runtime/stdio.ml: Bg_cio Buffer Bytes Errno Hashtbl Libc List Printf String Sysreq
