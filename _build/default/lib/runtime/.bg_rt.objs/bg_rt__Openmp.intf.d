lib/runtime/openmp.mli:
