lib/runtime/malloc.ml: Bytes Coro Hashtbl Libc Option Printf Sysreq
