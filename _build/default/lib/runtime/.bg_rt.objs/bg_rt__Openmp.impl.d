lib/runtime/openmp.ml: Errno List Pthread Sysreq
