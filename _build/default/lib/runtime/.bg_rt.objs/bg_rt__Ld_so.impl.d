lib/runtime/ld_so.ml: Bg_cio Bg_engine Bytes Coro Errno Hashtbl Image Libc Sysreq
