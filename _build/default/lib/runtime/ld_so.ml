type handle = { image : Image.t; base : int; file_bytes : int }

(* Host-side registry standing in for the symbol tables inside .so files. *)
let registry : (string, Image.t) Hashtbl.t = Hashtbl.create 16

let lib_path (image : Image.t) = "/lib/" ^ image.Image.name ^ ".so"

let install_library fs (image : Image.t) =
  let path = lib_path image in
  (match Bg_cio.Fs.resolve fs ~cwd:"/" "/lib" with
  | Ok _ -> ()
  | Error _ -> (
    match Bg_cio.Fs.mkdir fs ~cwd:"/" "/lib" ~mode:0o755 with
    | Ok () -> ()
    | Error e -> invalid_arg (Errno.to_string e)));
  (match Bg_cio.Fs.open_file fs ~cwd:"/" path ~flags:Sysreq.o_create_trunc ~mode:0o755 with
  | Error e -> invalid_arg (Errno.to_string e)
  | Ok inode ->
    (* Deterministic placeholder contents of the declared file size. *)
    let seed = Bg_engine.Rng.create (Bg_engine.Rng.seed_of_string image.Image.name) in
    let data = Bytes.create image.Image.file_bytes in
    for i = 0 to Bytes.length data - 1 do
      Bytes.set_uint8 data i (Bg_engine.Rng.int seed 256)
    done;
    (match Bg_cio.Fs.write fs inode ~offset:0 data with
    | Ok _ -> ()
    | Error e -> invalid_arg (Errno.to_string e)));
  Hashtbl.replace registry path image;
  path

let dlopen path =
  let image =
    match Hashtbl.find_opt registry path with
    | Some i -> i
    | None -> raise (Sysreq.Syscall_error Errno.ENOENT)
  in
  (* open + fstat + whole-file MAP_COPY mmap, as CNK's ld.so does. *)
  let fd = Libc.openf ~flags:Sysreq.o_rdonly path in
  let st = Libc.fstat fd in
  let base = Libc.mmap_file ~fd ~length:st.Sysreq.st_size ~offset:0 in
  Libc.close fd;
  (* Relocation / init cost proportional to the library size. *)
  Coro.consume (2000 + (st.Sysreq.st_size / 64));
  { image; base; file_bytes = st.Sysreq.st_size }

let dlsym h name arg =
  match Image.find_symbol h.image name with
  | None -> raise Not_found
  | Some s ->
    Coro.consume 200;
    s.Image.fn arg

let dlclose h = Libc.munmap ~addr:h.base ~length:h.file_bytes
let base_address h = h.base

let text_writable_demo h =
  (* CNK consciously skips text/read-only permission enforcement for
     dynamic objects; this store lands. *)
  Coro.store ~addr:h.base (Bytes.of_string "patched")
