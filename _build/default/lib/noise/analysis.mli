(** Noise characterization from FWQ samples.

    The paper leans on noise-characterization work (Ferreira et al.) that
    describes interference by the salient parameters applications feel:
    how often events strike, how long they last, and how much CPU they
    steal. This module infers those parameters back out of an FWQ sample
    stream — closing the loop on the simulator: the signature recovered
    from measured data should match the daemon population that was
    configured in. *)

type event = {
  at_iteration : int;
  stolen_cycles : int;  (** excess over the noise floor *)
}

type signature = {
  floor_cycles : int;        (** the detected unperturbed iteration cost *)
  events : event list;
  event_count : int;
  mean_stolen : float;       (** cycles per event *)
  max_stolen : int;
  events_per_second : float; (** strike rate in simulated time *)
  cpu_fraction : float;      (** total stolen / total elapsed *)
}

val characterize : ?threshold_cycles:int -> int array -> signature
(** Detect interference events in per-iteration FWQ samples: iterations
    exceeding the floor (the minimum sample) by more than
    [threshold_cycles] (default 200) count as struck. *)

val classify : signature -> bins:int -> (int * int * int) list
(** Histogram the per-event magnitudes into [bins]: (lo_cycles, hi_cycles,
    count) — distinguishes tick-class events from daemon-class ones. *)

val pp : Format.formatter -> signature -> unit
