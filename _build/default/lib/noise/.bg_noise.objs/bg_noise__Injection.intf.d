lib/noise/injection.mli: Bg_engine Cnk Format
