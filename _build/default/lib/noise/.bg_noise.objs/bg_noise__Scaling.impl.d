lib/noise/scaling.ml: Array Bg_engine Bg_fwk Bg_hw Cycles Injection Int64 Rng Stats
