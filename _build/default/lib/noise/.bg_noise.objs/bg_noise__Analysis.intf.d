lib/noise/analysis.mli: Format
