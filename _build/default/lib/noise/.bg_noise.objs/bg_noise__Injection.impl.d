lib/noise/injection.ml: Bg_engine Bg_hw Bg_obs Cnk Cycles Format Int64 Machine Rng Sim
