lib/noise/injection.ml: Bg_engine Bg_hw Cnk Cycles Format Int64 Machine Rng Sim
