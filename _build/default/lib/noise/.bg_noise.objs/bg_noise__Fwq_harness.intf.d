lib/noise/fwq_harness.mli: Bg_fwk Format
