lib/noise/fwq_harness.ml: Array Bg_apps Bg_engine Bg_fwk Cnk Float Format Image Job List Machine Sim Stats
