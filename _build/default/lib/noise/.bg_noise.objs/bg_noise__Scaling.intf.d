lib/noise/scaling.mli: Injection
