lib/noise/analysis.ml: Array Bg_engine Format List
