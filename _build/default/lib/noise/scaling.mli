(** Noise magnification at scale, and long-run stability statistics.

    Event-driven simulation of 100K+ nodes is out of reach, so this module
    provides the standard analytic treatment (Petrini et al., which the
    paper cites for the effect): a bulk-synchronous iteration finishes
    when the {e slowest} of N nodes finishes, so per-node noise that is
    negligible in expectation is magnified by the max across nodes. The
    per-node noise draws reuse {!Bg_fwk.Noise_model} generators, so the
    analytic model and the event-driven kernel share one noise source.

    The same machinery generates the §V.D stability numbers at full
    paper scale: LINPACK run-to-run spread and mpiBench_Allreduce
    standard deviations over a million iterations. *)

type noise_profile =
  | Quiet  (** CNK: DRAM-refresh floor only *)
  | Linux_daemons  (** the FWK compute-node daemon population *)
  | Linux_io_node  (** §V.D's baseline: I/O nodes with NFS traffic *)
  | Linux_synchronized
      (** the §V.A alternative the paper contrasts with (ZeptoOS, Shmueli
          et al.): keep the daemons but phase-align them across nodes, so
          delays coincide instead of compounding *)
  | Injected of Injection.profile

val allreduce_slowdown :
  nodes:int ->
  iterations:int ->
  work_cycles:int ->
  profile:noise_profile ->
  seed:int64 ->
  float
(** Mean per-iteration time, normalized to the noise-free time (1.0 = no
    slowdown). Iterations are bulk-synchronous with a tree allreduce. *)

val allreduce_stddev_us :
  nodes:int -> iterations:int -> work_cycles:int -> profile:noise_profile -> seed:int64 ->
  float
(** Standard deviation of the per-iteration time in microseconds — the
    mpiBench_Allreduce stability metric of §V.D. *)

val linpack_spread_percent :
  nodes:int ->
  runs:int ->
  panels:int ->
  panel_cycles:int ->
  profile:noise_profile ->
  seed:int64 ->
  float * float
(** [(spread_percent, stddev_seconds)] over [runs] complete runs — the
    "36 runs of LINPACK varied by 0.01%" experiment. *)
