open Bg_engine

type profile = { period_cycles : int; duration_cycles : int; jitter : float }

let pp_profile ppf p =
  Format.fprintf ppf "period %a, duration %a (%.2f%% cpu)" Cycles.pp p.period_cycles
    Cycles.pp p.duration_cycles
    (100.0 *. float_of_int p.duration_cycles /. float_of_int p.period_cycles)

let injected_fraction p = float_of_int p.duration_cycles /. float_of_int p.period_cycles

let attach node ~profile ~seed ~until =
  let machine = Cnk.Node.machine node in
  let sim = machine.Machine.sim in
  let obs = machine.Machine.obs in
  let rank = Cnk.Node.rank node in
  let cores = (Bg_hw.Chip.params (Cnk.Node.chip node)).Bg_hw.Params.cores_per_node in
  for core = 0 to cores - 1 do
    let rng = Rng.create (Int64.add seed (Int64.of_int core)) in
    let rec schedule_next at =
      if at < until then
        ignore
          (Sim.schedule_at sim at (fun () ->
               Cnk.Node.add_core_penalty node ~core ~cycles:profile.duration_cycles;
               (* Attribute each stolen interval so slowdowns in app spans
                  can be traced back to the injected daemon activity. *)
               let module Obs = Bg_obs.Obs in
               Obs.incr obs ~rank ~core ~subsystem:"noise" ~name:"activations" ();
               Obs.incr obs ~rank ~core ~subsystem:"noise" ~name:"injected_cycles"
                 ~by:profile.duration_cycles ();
               Obs.span_record obs ~cat:"noise" ~name:"daemon" ~rank ~core ~start:at
                 ~finish:(at + profile.duration_cycles);
               let spread = float_of_int profile.period_cycles *. profile.jitter in
               let next =
                 at + profile.period_cycles
                 + int_of_float (Rng.float rng (max 1.0 (2.0 *. spread)))
                 - int_of_float spread
               in
               schedule_next next))
    in
    schedule_next (Sim.now sim + Rng.int rng (max 1 profile.period_cycles))
  done
