open Bg_engine

type noise_profile =
  | Quiet
  | Linux_daemons
  | Linux_io_node
  | Linux_synchronized
  | Injected of Injection.profile

(* Per-node interference source built once per run; [advance] returns the
   finish time of [work] starting at [start] on that node's critical core. *)
let make_source profile rng =
  match profile with
  | Quiet ->
    let params = Bg_hw.Params.bgp in
    let interval = params.Bg_hw.Params.dram_refresh_interval_cycles in
    let stall = params.Bg_hw.Params.dram_refresh_stall_cycles in
    fun ~start ~work ->
      let k = ((start + work) / interval) - (start / interval) in
      start + work + (k * stall)
  | Linux_daemons ->
    let model =
      Bg_fwk.Noise_model.create ~daemons:(Bg_fwk.Noise_model.suse_daemon_set ~core:0) ~rng ()
    in
    fun ~start ~work -> Bg_fwk.Noise_model.advance model ~start ~work
  | Linux_io_node ->
    let model =
      Bg_fwk.Noise_model.create ~daemons:(Bg_fwk.Noise_model.io_node_daemon_set ~core:0) ~rng ()
    in
    fun ~start ~work -> Bg_fwk.Noise_model.advance model ~start ~work
  | Linux_synchronized ->
    (* callers pass identical rng streams; the generator itself is the
       ordinary daemon population *)
    let model =
      Bg_fwk.Noise_model.create ~daemons:(Bg_fwk.Noise_model.suse_daemon_set ~core:0) ~rng ()
    in
    fun ~start ~work -> Bg_fwk.Noise_model.advance model ~start ~work
  | Injected p ->
    let daemon =
      {
        Bg_fwk.Noise_model.daemon_name = "injected";
        period_mean = float_of_int p.Injection.period_cycles;
        period_jitter = p.Injection.jitter;
        cost_mean = float_of_int p.Injection.duration_cycles;
        cost_jitter = 0.0;
      }
    in
    let model =
      Bg_fwk.Noise_model.create ~tick_interval:max_int ~tick_cost:0 ~daemons:[ daemon ] ~rng ()
    in
    fun ~start ~work -> Bg_fwk.Noise_model.advance model ~start ~work

let tree_cycles nodes =
  let p = Bg_hw.Params.bgp in
  let rec depth d n = if n <= 1 then d else depth (d + 1) ((n + 1) / 2) in
  (2 * depth 0 nodes * p.Bg_hw.Params.collective_hop_cycles) + 300

(* One bulk-synchronous run: every iteration ends at
   max_i(finish_i) + tree; returns the per-iteration durations. *)
let run_bsp ~nodes ~iterations ~work_cycles ~profile ~seed =
  let root = Rng.create seed in
  let sources =
    match profile with
    | Linux_synchronized ->
      (* identical streams: every node's daemons fire on the same cycles,
         so per-iteration delays coincide instead of compounding *)
      Array.init nodes (fun _ ->
          make_source Linux_daemons (Rng.split root "synchronized"))
    | _ ->
      Array.init nodes (fun i -> make_source profile (Rng.split root (string_of_int i)))
  in
  let tree = tree_cycles nodes in
  let now = ref 0 in
  let durations = Array.make iterations 0.0 in
  for it = 0 to iterations - 1 do
    let start = !now in
    let slowest = ref 0 in
    Array.iter
      (fun advance -> slowest := max !slowest (advance ~start ~work:work_cycles))
      sources;
    now := !slowest + tree;
    durations.(it) <- float_of_int (!now - start)
  done;
  durations

let allreduce_slowdown ~nodes ~iterations ~work_cycles ~profile ~seed =
  let durations = run_bsp ~nodes ~iterations ~work_cycles ~profile ~seed in
  let ideal = float_of_int (work_cycles + tree_cycles nodes) in
  let s = Stats.summarize durations in
  s.Stats.mean /. ideal

let allreduce_stddev_us ~nodes ~iterations ~work_cycles ~profile ~seed =
  let durations = run_bsp ~nodes ~iterations ~work_cycles ~profile ~seed in
  let s = Stats.summarize durations in
  Cycles.to_us (int_of_float s.Stats.stddev)

let linpack_spread_percent ~nodes ~runs ~panels ~panel_cycles ~profile ~seed =
  let totals =
    Array.init runs (fun r ->
        let durations =
          run_bsp ~nodes ~iterations:panels ~work_cycles:panel_cycles ~profile
            ~seed:(Int64.add seed (Int64.of_int (r * 7919)))
        in
        Array.fold_left ( +. ) 0.0 durations)
  in
  let s = Stats.summarize totals in
  (Stats.spread_percent s, Cycles.to_seconds (int_of_float s.Stats.stddev))
