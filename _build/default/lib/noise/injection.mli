(** Ferreira-style kernel-level noise injection into CNK (paper §V.A).

    CNK is quiet, which makes it the ideal testbed for studying noise:
    inject synthetic interference with a chosen frequency and duration and
    measure what it does to applications — the technique of the Ferreira/
    Bridges/Brightwell work the paper cites. An injector hooks one node's
    cores and charges periodic penalties through the kernel's
    interference accumulator. *)

type profile = {
  period_cycles : int;    (** mean activation period *)
  duration_cycles : int;  (** cycles stolen per activation *)
  jitter : float;         (** uniform fraction of period *)
}

val pp_profile : Format.formatter -> profile -> unit

val attach :
  Cnk.Node.t -> profile:profile -> seed:int64 -> until:Bg_engine.Cycles.t -> unit
(** Schedule injection events on every core of the node from now until
    [until] (absolute cycle). Deterministic in [seed]. *)

val injected_fraction : profile -> float
(** duration/period — the nominal CPU share stolen. *)
