open Bg_engine

type thread_report = {
  thread : int;
  samples : int array;
  min_cycles : int;
  max_cycles : int;
  mean_cycles : float;
  spread_percent : float;
}

type report = { kernel : string; threads : thread_report list }

let report_of kernel (r : Bg_apps.Fwq.result) =
  let threads =
    List.map
      (fun (thread, samples) ->
        let s = Stats.summarize (Array.map float_of_int samples) in
        {
          thread;
          samples;
          min_cycles = int_of_float s.Stats.min;
          max_cycles = int_of_float s.Stats.max;
          mean_cycles = s.Stats.mean;
          spread_percent = Stats.spread_percent s;
        })
      r.Bg_apps.Fwq.thread_samples
  in
  { kernel; threads }

let run_on_cnk ?(samples = 12_000) ?(seed = 1L) () =
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) ~seed () in
  Cnk.Cluster.boot_all cluster;
  let entry, collect = Bg_apps.Fwq.program ~samples ~threads:4 () in
  let image = Image.executable ~name:"fwq" entry in
  Cnk.Cluster.run_job cluster (Job.create ~name:"fwq" image);
  report_of "CNK" (collect ())

let run_on_fwk ?(samples = 12_000) ?noise_seed ?daemons () =
  let machine = Machine.create ~dims:(1, 1, 1) () in
  let node = Bg_fwk.Node.create ?noise_seed ?daemons machine ~rank:0 ~stripped:true () in
  let entry, collect = Bg_apps.Fwq.program ~samples ~threads:4 () in
  let finished = ref false in
  Bg_fwk.Node.boot node ~on_ready:(fun () ->
      Bg_fwk.Node.on_job_complete node (fun () -> finished := true);
      match Bg_fwk.Node.launch node (Job.create ~name:"fwq" (Image.executable ~name:"fwq" entry)) with
      | Ok () -> ()
      | Error e -> failwith e);
  ignore (Sim.run machine.Machine.sim);
  if not !finished then failwith "Fwq_harness: fwk job did not finish";
  report_of "Linux (FWK)" (collect ())

let histogram tr ~bins =
  let lo = float_of_int tr.min_cycles and hi = float_of_int (tr.max_cycles + 1) in
  let h = Stats.Histogram.create ~lo ~hi ~bins in
  Array.iter (fun v -> Stats.Histogram.add h (float_of_int v)) tr.samples;
  List.init bins (fun i -> (Stats.Histogram.bin_lo h i, (Stats.Histogram.counts h).(i)))

let max_spread r =
  List.fold_left (fun acc t -> Float.max acc t.spread_percent) 0.0 r.threads

let pp ppf r =
  Format.fprintf ppf "FWQ on %s:@." r.kernel;
  List.iter
    (fun t ->
      Format.fprintf ppf
        "  thread %d: min %d, max %d (+%d cycles), mean %.0f, spread %.4f%%@."
        t.thread t.min_cycles t.max_cycles (t.max_cycles - t.min_cycles) t.mean_cycles
        t.spread_percent)
    r.threads
