type event = { at_iteration : int; stolen_cycles : int }

type signature = {
  floor_cycles : int;
  events : event list;
  event_count : int;
  mean_stolen : float;
  max_stolen : int;
  events_per_second : float;
  cpu_fraction : float;
}

let characterize ?(threshold_cycles = 200) samples =
  if Array.length samples = 0 then invalid_arg "Analysis.characterize: empty";
  let floor_cycles = Array.fold_left min max_int samples in
  let events = ref [] in
  Array.iteri
    (fun i s ->
      let excess = s - floor_cycles in
      if excess > threshold_cycles then
        events := { at_iteration = i; stolen_cycles = excess } :: !events)
    samples;
  let events = List.rev !events in
  let total_elapsed = Array.fold_left ( + ) 0 samples in
  let total_stolen = List.fold_left (fun acc e -> acc + e.stolen_cycles) 0 events in
  let n = List.length events in
  {
    floor_cycles;
    events;
    event_count = n;
    mean_stolen = (if n = 0 then 0.0 else float_of_int total_stolen /. float_of_int n);
    max_stolen = List.fold_left (fun acc e -> max acc e.stolen_cycles) 0 events;
    events_per_second =
      float_of_int n /. Bg_engine.Cycles.to_seconds (max 1 total_elapsed);
    cpu_fraction = float_of_int total_stolen /. float_of_int (max 1 total_elapsed);
  }

let classify s ~bins =
  if bins <= 0 then invalid_arg "Analysis.classify";
  if s.events = [] then []
  else begin
    let hi = s.max_stolen + 1 in
    let width = max 1 ((hi + bins - 1) / bins) in
    let counts = Array.make bins 0 in
    List.iter
      (fun e ->
        let b = min (bins - 1) (e.stolen_cycles / width) in
        counts.(b) <- counts.(b) + 1)
      s.events;
    List.init bins (fun b -> (b * width, ((b + 1) * width) - 1, counts.(b)))
    |> List.filter (fun (_, _, c) -> c > 0)
  end

let pp ppf s =
  Format.fprintf ppf
    "floor %d cycles; %d events (%.1f/s), mean +%.0f, worst +%d, %.3f%% cpu stolen@."
    s.floor_cycles s.event_count s.events_per_second s.mean_stolen s.max_stolen
    (100.0 *. s.cpu_fraction)
