(** Runs the FWQ benchmark on both kernels and reports Figs 5–7 style
    results: per-thread distributions of 12,000 fixed work quanta. *)

type thread_report = {
  thread : int;
  samples : int array;  (** per-iteration cycles, in iteration order *)
  min_cycles : int;
  max_cycles : int;
  mean_cycles : float;
  spread_percent : float;  (** (max-min)/min*100, the paper's metric *)
}

type report = { kernel : string; threads : thread_report list }

val run_on_cnk : ?samples:int -> ?seed:int64 -> unit -> report
(** One CNK node, one FWQ thread per core. *)

val run_on_fwk :
  ?samples:int ->
  ?noise_seed:int64 ->
  ?daemons:(core:int -> Bg_fwk.Noise_model.daemon list) ->
  unit ->
  report
(** One FWK node, the same program image. Default daemons: the SUSE set. *)

val histogram : thread_report -> bins:int -> (float * int) list
(** (bin lower edge in cycles, count) pairs — the dot clouds of Figs 5–7. *)

val max_spread : report -> float
val pp : Format.formatter -> report -> unit
