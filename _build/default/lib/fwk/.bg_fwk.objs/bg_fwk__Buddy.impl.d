lib/fwk/buddy.ml: Array Errno Hashtbl Printf
