lib/fwk/noise_model.ml: Bg_engine List Rng
