lib/fwk/node.mli: Bg_cio Job Machine Noise_model
