lib/fwk/buddy.mli: Errno
