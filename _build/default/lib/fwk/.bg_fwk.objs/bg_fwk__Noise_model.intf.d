lib/fwk/noise_model.mli: Bg_engine
