lib/fwk/node.ml: Array Bg_cio Bg_engine Bg_hw Buddy Bytes Chip Cnk Coro Cycles Errno Hashtbl Image Int64 Job List Machine Memory Noise_model Page_size Params Printexc Printf Queue Rng Sim Sysreq Tlb
