open Bg_engine
module Obs = Bg_obs.Obs

(* I/O-node worker activity appears in the trace under the requesting
   rank's pid, on tid lanes [worker_tid_base + worker] so CIOD service
   never collides with the rank's own core lanes. *)
let worker_tid_base = 16

type t = {
  machine : Machine.t;
  fs : Fs.t;
  io_node : int;
  proxies : (int * int, Ioproxy.t) Hashtbl.t;  (* (rank, pid) -> proxy *)
  deliver : (int, bytes -> unit) Hashtbl.t;    (* rank -> reply delivery *)
  worker_busy : Cycles.t array;                 (* 4 I/O-node cores *)
  mutable served : int;
}

(* Linux-side service cost: syscall entry + VFS + wakeup of the proxy. *)
let base_service_cycles = 3400 (* ~4 us *)
let per_byte_cycles = 0.25

let create machine ?fs ~io_node () =
  let fs = match fs with Some f -> f | None -> Fs.create () in
  {
    machine;
    fs;
    io_node;
    proxies = Hashtbl.create 64;
    deliver = Hashtbl.create 64;
    worker_busy = Array.make 4 0;
    served = 0;
  }

let fs t = t.fs
let io_node t = t.io_node

let register_node t ~rank ~deliver = Hashtbl.replace t.deliver rank deliver

let proxy t ~rank ~pid =
  match Hashtbl.find_opt t.proxies (rank, pid) with
  | Some p -> p
  | None ->
    let p = Ioproxy.create t.fs ~rank ~pid in
    Hashtbl.add t.proxies (rank, pid) p;
    p

let obs t = t.machine.Machine.obs

let mark t ~rank name =
  let now = Sim.now t.machine.Machine.sim in
  Obs.span_record (obs t) ~cat:"cio" ~name ~rank ~core:worker_tid_base ~start:now ~finish:now

let job_start t ~rank ~pids =
  mark t ~rank "job_start";
  List.iter (fun pid -> ignore (proxy t ~rank ~pid)) pids

let job_end t ~rank =
  mark t ~rank "job_end";
  let doomed =
    Hashtbl.fold (fun (r, p) _ acc -> if r = rank then (r, p) :: acc else acc) t.proxies []
  in
  List.iter
    (fun key ->
      Ioproxy.close_all (Hashtbl.find t.proxies key);
      Hashtbl.remove t.proxies key)
    doomed

let request_cost req =
  let data_bytes =
    match req with
    | Sysreq.Write { data; _ } | Sysreq.Pwrite { data; _ } -> Bytes.length data
    | Sysreq.Read { len; _ } | Sysreq.Pread { len; _ } -> len
    | _ -> 0
  in
  base_service_cycles + int_of_float (per_byte_cycles *. float_of_int data_bytes)

let pick_worker t now =
  (* Earliest-free I/O-node core; index breaks ties deterministically. *)
  let best = ref 0 in
  for i = 1 to Array.length t.worker_busy - 1 do
    if t.worker_busy.(i) < t.worker_busy.(!best) then best := i
  done;
  let start = max now t.worker_busy.(!best) in
  (!best, start)

let submit t data =
  let sim = t.machine.Machine.sim in
  let o = obs t in
  let hdr, req = Proto.decode_request data in
  let p = proxy t ~rank:hdr.Proto.rank ~pid:hdr.Proto.pid in
  let now = Sim.now sim in
  let worker, start = pick_worker t now in
  let finish = start + request_cost req in
  t.worker_busy.(worker) <- finish;
  (* Round-trip breakdown, parts 2 and 3: time queued behind earlier
     requests on the I/O node's cores, then the Linux-side service. Both
     intervals are fully determined here, so they are recorded one-shot. *)
  if Obs.enabled o then begin
    let lane = worker_tid_base + worker in
    if start > now then
      Obs.span_record o ~cat:"cio" ~name:"queue_wait" ~rank:hdr.Proto.rank ~core:lane
        ~start:now ~finish:start;
    Obs.span_record o ~cat:"cio"
      ~name:("service." ^ Sysreq.request_name req)
      ~rank:hdr.Proto.rank ~core:lane ~start ~finish;
    Obs.observe_cycles o ~rank:hdr.Proto.rank ~subsystem:"cio" ~name:"service_cycles"
      (finish - start);
    Obs.observe_cycles o ~rank:hdr.Proto.rank ~subsystem:"cio" ~name:"queue_wait_cycles"
      (start - now)
  end;
  ignore
    (Sim.schedule_at sim finish (fun () ->
         t.served <- t.served + 1;
         Sim.emit sim ~label:"ciod.served" ~value:(Int64.of_int hdr.Proto.rank);
         let reply = Ioproxy.handle p req in
         let reply_bytes = Proto.encode_reply hdr reply in
         (* part 4: the reply's trip back down the collective network *)
         let hr =
           Obs.span_begin o ~cat:"cio" ~name:"transit_reply" ~rank:hdr.Proto.rank
             ~core:(worker_tid_base + worker) ~now:(Sim.now sim)
         in
         Bg_hw.Collective_net.to_compute_node t.machine.Machine.collective
           ~cn:hdr.Proto.rank ~bytes:(Bytes.length reply_bytes)
           ~on_arrival:(fun ~arrival_cycle:_ ->
             Obs.span_end o hr ~now:(Sim.now sim);
             match Hashtbl.find_opt t.deliver hdr.Proto.rank with
             | Some deliver -> deliver reply_bytes
             | None -> ())))

let requests_served t = t.served
let proxy_count t = Hashtbl.length t.proxies
