(** The CNK ⇔ CIOD function-ship wire protocol (paper Fig 2).

    Requests and replies are marshaled to real byte strings: the collective
    network is charged for exactly these bytes, and the CIOD side
    demarshals before executing — so tests can assert that what crosses
    the wire is sufficient to reconstruct the call, as on the real
    machine. Only the file-I/O subset of the ABI is shippable;
    {!encode_request} rejects anything else.

    Framing: every message starts with a header carrying the originating
    (rank, pid, tid) so CIOD can route to the matching ioproxy thread. *)

type header = { rank : int; pid : int; tid : int }

val encode_request : header -> Sysreq.request -> bytes
(** Raises [Invalid_argument] if {!Sysreq.is_file_io} is false. *)

val decode_request : bytes -> header * Sysreq.request
(** Raises [Failure] on a malformed message. *)

val encode_reply : header -> Sysreq.reply -> bytes
val decode_reply : bytes -> header * Sysreq.reply
