(** CIOD — the Control and I/O Daemon running on each (Linux) I/O node.

    Receives function-shipped messages from the collective network,
    routes each to the ioproxy mirroring the originating compute-node
    process, executes it against the filesystem, and ships the marshaled
    reply back down the tree (paper Fig 2).

    The I/O node has four cores; request service occupies one of four
    worker slots, so bursts from many compute nodes queue — the
    aggregation that turns 64 compute nodes into one filesystem client. *)

type t

val create : Machine.t -> ?fs:Fs.t -> io_node:int -> unit -> t
(** [fs] lets several I/O nodes share one filesystem (a "network mount");
    by default each CIOD gets a private one. *)

val fs : t -> Fs.t
val io_node : t -> int

val register_node : t -> rank:int -> deliver:(bytes -> unit) -> unit
(** The compute-node kernel registers how replies reach it: [deliver] is
    invoked when the reply message arrives back at node [rank]. *)

val job_start : t -> rank:int -> pids:int list -> unit
(** Create the ioproxies for a job's processes on [rank]. *)

val job_end : t -> rank:int -> unit
(** Tear down rank's proxies, closing their descriptors. *)

val submit : t -> bytes -> unit
(** A marshaled request has arrived at the I/O node (the uplink transit is
    charged by the caller). Decodes, queues on a worker, executes, and
    ships the reply. Unknown (rank, pid) gets an implicit proxy, so
    single-shot tools work without [job_start]. *)

val requests_served : t -> int

val proxy_count : t -> int
