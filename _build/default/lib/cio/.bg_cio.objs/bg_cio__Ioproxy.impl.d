lib/cio/ioproxy.ml: Bytes Errno Fs Hashtbl Sysreq
