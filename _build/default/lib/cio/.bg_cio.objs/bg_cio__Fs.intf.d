lib/cio/fs.mli: Errno Sysreq
