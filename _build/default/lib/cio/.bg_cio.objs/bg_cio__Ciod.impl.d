lib/cio/ciod.ml: Array Bg_engine Bg_hw Bg_obs Bytes Cycles Fs Hashtbl Int64 Ioproxy List Machine Proto Sim Sysreq
