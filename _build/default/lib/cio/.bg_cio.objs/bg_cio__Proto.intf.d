lib/cio/proto.mli: Sysreq
