lib/cio/proto.ml: Buffer Bytes Errno Int64 List Printf String Sysreq
