lib/cio/ciod.mli: Fs Machine
