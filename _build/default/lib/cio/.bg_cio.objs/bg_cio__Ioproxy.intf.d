lib/cio/ioproxy.mli: Fs Sysreq
