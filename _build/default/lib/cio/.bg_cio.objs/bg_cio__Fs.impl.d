lib/cio/fs.ml: Bytes Errno Hashtbl List String Sysreq
