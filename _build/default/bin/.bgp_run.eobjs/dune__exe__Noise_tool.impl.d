bin/noise_tool.ml: Arg Bg_apps Bg_engine Bg_noise Cmd Cmdliner Cnk Format Image Job List Printf Term
