bin/export_data.mli:
