bin/bringup_tool.mli:
