bin/noise_tool.mli:
