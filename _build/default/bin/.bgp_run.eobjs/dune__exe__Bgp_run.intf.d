bin/bgp_run.mli:
