bin/bringup_tool.ml: Arg Bg_bringup Bg_rt Cmd Cmdliner Cnk Coro Format Image Job List Printf Term
