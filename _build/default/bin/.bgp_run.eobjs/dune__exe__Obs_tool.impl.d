bin/obs_tool.ml: Arg Bg_apps Bg_control Bg_engine Bg_fwk Bg_noise Bg_obs Cmd Cmdliner Cnk Format Image Int64 Job List Machine Printf String Term
