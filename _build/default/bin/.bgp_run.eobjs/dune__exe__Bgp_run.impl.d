bin/bgp_run.ml: Arg Bg_apps Bg_engine Bg_fwk Bg_msg Bg_rt Cmd Cmdliner Cnk Format Image Job Machine Printf Sysreq Term
