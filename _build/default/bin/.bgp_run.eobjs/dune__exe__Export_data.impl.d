bin/export_data.ml: Arg Array Bg_apps Bg_engine Bg_msg Bg_noise Cmd Cmdliner Cnk Filename Image Job List Printf String Term Unix
