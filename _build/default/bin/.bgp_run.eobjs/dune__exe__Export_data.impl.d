bin/export_data.ml: Arg Array Bg_apps Bg_control Bg_engine Bg_msg Bg_noise Bg_obs Cmd Cmdliner Cnk Filename Image Job List Machine Printf String Term Unix
