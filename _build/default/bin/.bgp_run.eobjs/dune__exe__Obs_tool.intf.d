bin/obs_tool.mli:
