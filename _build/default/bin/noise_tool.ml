(* noise_tool — FWQ and noise-at-scale measurements from the command line.

     dune exec bin/noise_tool.exe -- fwq --kernel cnk
     dune exec bin/noise_tool.exe -- fwq --kernel fwk --samples 5000
     dune exec bin/noise_tool.exe -- inject --period 500000 --duration 25000
     dune exec bin/noise_tool.exe -- scale --nodes 65536 *)

open Cmdliner
module Noise = Bg_noise

let fwq kernel samples =
  let report =
    match kernel with
    | "cnk" -> Noise.Fwq_harness.run_on_cnk ~samples ()
    | "fwk" -> Noise.Fwq_harness.run_on_fwk ~samples ()
    | _ -> failwith "kernel must be cnk or fwk"
  in
  Format.printf "%a" Noise.Fwq_harness.pp report;
  0

let inject period duration samples =
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let profile =
    { Noise.Injection.period_cycles = period; duration_cycles = duration; jitter = 0.3 }
  in
  Format.printf "injecting %a into CNK@." Noise.Injection.pp_profile profile;
  Noise.Injection.attach (Cnk.Cluster.node cluster 0) ~profile ~seed:5L
    ~until:(Bg_engine.Sim.now (Cnk.Cluster.sim cluster) + 30_000_000_000);
  let entry, collect = Bg_apps.Fwq.program ~samples ~threads:4 () in
  Cnk.Cluster.run_job cluster
    (Job.create ~name:"fwq" (Image.executable ~name:"fwq" entry));
  Printf.printf "FWQ max spread with injection: %.4f%%\n"
    (Bg_apps.Fwq.max_spread_percent (collect ()));
  0

let characterize kernel samples =
  let report =
    match kernel with
    | "cnk" -> Noise.Fwq_harness.run_on_cnk ~samples ()
    | "fwk" -> Noise.Fwq_harness.run_on_fwk ~samples ()
    | _ -> failwith "kernel must be cnk or fwk"
  in
  List.iter
    (fun t ->
      let s = Noise.Analysis.characterize t.Noise.Fwq_harness.samples in
      Format.printf "core %d: %a" t.Noise.Fwq_harness.thread Noise.Analysis.pp s;
      List.iter
        (fun (lo, hi, c) -> Printf.printf "    %6d..%6d cycles: %d events\n" lo hi c)
        (Noise.Analysis.classify s ~bins:6))
    report.Noise.Fwq_harness.threads;
  0

let scale nodes iterations =
  Printf.printf "allreduce slowdown at %d nodes (x%d iterations):\n" nodes iterations;
  List.iter
    (fun (label, profile) ->
      Printf.printf "  %-14s %.4f\n" label
        (Noise.Scaling.allreduce_slowdown ~nodes ~iterations ~work_cycles:850_000
           ~profile ~seed:11L))
    [ ("quiet (CNK)", Noise.Scaling.Quiet); ("linux daemons", Noise.Scaling.Linux_daemons) ];
  0

let kernel_arg = Arg.(value & opt string "cnk" & info [ "kernel"; "k" ] ~doc:"cnk or fwk.")
let samples_arg = Arg.(value & opt int 12_000 & info [ "samples" ] ~doc:"FWQ samples.")
let period_arg = Arg.(value & opt int 500_000 & info [ "period" ] ~doc:"Injection period (cycles).")
let duration_arg = Arg.(value & opt int 25_000 & info [ "duration" ] ~doc:"Injection duration (cycles).")
let nodes_arg = Arg.(value & opt int 4096 & info [ "nodes" ] ~doc:"Node count.")
let iters_arg = Arg.(value & opt int 300 & info [ "iterations" ] ~doc:"Iterations.")

let cmds =
  [
    Cmd.v (Cmd.info "fwq" ~doc:"Run the FWQ benchmark") Term.(const fwq $ kernel_arg $ samples_arg);
    Cmd.v (Cmd.info "inject" ~doc:"Inject noise into CNK and measure FWQ")
      Term.(const inject $ period_arg $ duration_arg $ samples_arg);
    Cmd.v (Cmd.info "scale" ~doc:"Noise magnification at scale")
      Term.(const scale $ nodes_arg $ iters_arg);
    Cmd.v (Cmd.info "characterize" ~doc:"Infer the noise signature from FWQ data")
      Term.(const characterize $ kernel_arg $ samples_arg);
  ]

let () = exit (Cmd.eval' (Cmd.group (Cmd.info "noise_tool" ~doc:"Noise measurement toolbox") cmds))
