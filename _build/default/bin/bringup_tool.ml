(* bringup_tool — the chip-bringup toolbox of paper SSIII from the command
   line: reproducibility checks, waveform capture, the timing-bug hunt and
   VHDL boot economics.

     dune exec bin/bringup_tool.exe -- check
     dune exec bin/bringup_tool.exe -- waveform --from 150000 --count 6
     dune exec bin/bringup_tool.exe -- hunt --chips 4
     dune exec bin/bringup_tool.exe -- boot-time --hz 10 *)

open Cmdliner
module Bringup = Bg_bringup

let standard_run ?(seed = 1L) () =
  let cluster = Cnk.Cluster.create ~dims:(2, 1, 1) ~seed () in
  Cnk.Cluster.boot_all cluster;
  let image =
    Image.executable ~name:"target" (fun () ->
        for _ = 1 to 200 do
          Coro.consume 3_000;
          ignore (Bg_rt.Libc.gettid ())
        done)
  in
  Cnk.Cluster.launch_all cluster ~ranks:[ 0 ] (Job.create ~name:"t" image);
  cluster

let check cycle =
  let ok = Bringup.Waveform.reproducible ~run:(standard_run ~seed:1L) ~rank:0 ~cycle in
  Printf.printf "scan@%d across two runs: %s\n" cycle
    (if ok then "IDENTICAL (cycle-reproducible)" else "DIVERGED");
  if ok then 0 else 1

let waveform from count stride =
  let wf =
    Bringup.Waveform.assemble ~run:(standard_run ~seed:1L) ~rank:0 ~from_cycle:from
      ~cycles:count ~stride ()
  in
  List.iter (fun s -> Format.printf "%a@." Bringup.Scan.pp s) wf.Bringup.Waveform.samples;
  Printf.printf "(%d destructive scans = %d full machine runs)\n" count count;
  0

let hunt chips runs =
  let bug = Bringup.Timing_bug.default_bug in
  Printf.printf "hunting a borderline timing bug across %d chips (%d reruns each)...\n"
    chips runs;
  let findings = Bringup.Timing_bug.hunt bug ~ranks:chips ~samples:8 ~runs_per_rank:runs ~seed:77L in
  if findings = [] then print_endline "no divergence observed"
  else
    List.iter
      (fun f ->
        Printf.printf "chip %d diverges from its golden waveform at cycle %d\n"
          f.Bringup.Timing_bug.rank f.Bringup.Timing_bug.diverged_at)
      findings;
  0

let vcd from count stride out =
  let wf =
    Bringup.Waveform.assemble ~run:(standard_run ~seed:1L) ~rank:0 ~from_cycle:from
      ~cycles:count ~stride ()
  in
  let oc = open_out out in
  output_string oc (Bringup.Vcd.to_string wf);
  close_out oc;
  Printf.printf "wrote %s (%d samples; open with any VCD viewer)\n" out count;
  0

let boot_time hz =
  Format.printf "%a" Bringup.Vhdl_sim.pp (Bringup.Vhdl_sim.comparison ~hz ());
  0

let cycle_arg = Arg.(value & opt int 200_000 & info [ "cycle" ] ~doc:"Scan cycle.")
let from_arg = Arg.(value & opt int 150_000 & info [ "from" ] ~doc:"First sampled cycle.")
let count_arg = Arg.(value & opt int 5 & info [ "count" ] ~doc:"Number of samples.")
let stride_arg = Arg.(value & opt int 1000 & info [ "stride" ] ~doc:"Cycles between samples.")
let chips_arg = Arg.(value & opt int 4 & info [ "chips" ] ~doc:"Chips to hunt across.")
let runs_arg = Arg.(value & opt int 4 & info [ "runs" ] ~doc:"Reruns per chip.")
let hz_arg = Arg.(value & opt float 10.0 & info [ "hz" ] ~doc:"VHDL simulator speed.")
let out_arg = Arg.(value & opt string "waveform.vcd" & info [ "out"; "o" ] ~doc:"Output file.")

let cmds =
  [
    Cmd.v (Cmd.info "check" ~doc:"Verify cycle reproducibility")
      Term.(const check $ cycle_arg);
    Cmd.v (Cmd.info "waveform" ~doc:"Assemble a waveform from destructive scans")
      Term.(const waveform $ from_arg $ count_arg $ stride_arg);
    Cmd.v (Cmd.info "hunt" ~doc:"Hunt the borderline timing bug")
      Term.(const hunt $ chips_arg $ runs_arg);
    Cmd.v (Cmd.info "boot-time" ~doc:"Kernel boot wall-time at VHDL speed")
      Term.(const boot_time $ hz_arg);
    Cmd.v (Cmd.info "vcd" ~doc:"Export a waveform as VCD")
      Term.(const vcd $ from_arg $ count_arg $ stride_arg $ out_arg);
  ]

let () =
  exit (Cmd.eval' (Cmd.group (Cmd.info "bringup_tool" ~doc:"Chip bringup toolbox") cmds))
