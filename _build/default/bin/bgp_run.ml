(* bgp_run — submit a job to a simulated Blue Gene/P machine.

   Plays the role of the control system's job launcher: pick a kernel
   (cnk or fwk), a node mode (smp/dual/vn), a machine size and a built-in
   workload, run it, and report. Examples:

     dune exec bin/bgp_run.exe -- --workload fwq
     dune exec bin/bgp_run.exe -- --kernel fwk --workload fwq
     dune exec bin/bgp_run.exe -- --workload umt --mode vn
     dune exec bin/bgp_run.exe -- --workload amg --threads 4 *)

open Cmdliner

type workload = Fwq | Umt | Amg | Hello | Halo | Cg

let workload_conv =
  let parse = function
    | "fwq" -> Ok Fwq
    | "umt" -> Ok Umt
    | "amg" -> Ok Amg
    | "hello" -> Ok Hello
    | "halo" -> Ok Halo
    | "cg" -> Ok Cg
    | s -> Error (`Msg (Printf.sprintf "unknown workload %S (fwq|umt|amg|hello|halo|cg)" s))
  in
  let print ppf w =
    Format.pp_print_string ppf
      (match w with
      | Fwq -> "fwq"
      | Umt -> "umt"
      | Amg -> "amg"
      | Hello -> "hello"
      | Halo -> "halo"
      | Cg -> "cg")
  in
  Arg.conv (parse, print)

let mode_conv =
  let parse = function
    | "smp" -> Ok Job.Smp
    | "dual" -> Ok Job.Dual
    | "vn" -> Ok Job.Vn
    | s -> Error (`Msg (Printf.sprintf "unknown mode %S (smp|dual|vn)" s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with Job.Smp -> "smp" | Job.Dual -> "dual" | Job.Vn -> "vn")
  in
  Arg.conv (parse, print)

let run kernel workload mode nodes threads samples seed =
  let dims = (nodes, 1, 1) in
  let report_cycles label sim =
    Printf.printf "%s finished at simulated cycle %d (%.2f ms)\n" label
      (Bg_engine.Sim.now sim)
      (Bg_engine.Cycles.to_us (Bg_engine.Sim.now sim) /. 1000.0)
  in
  match kernel with
  | "cnk" -> (
    let cluster = Cnk.Cluster.create ~seed ~dims () in
    Cnk.Cluster.boot_all cluster;
    match workload with
    | Hello ->
      let image =
        Image.executable ~name:"hello" (fun () ->
            let u = Bg_rt.Libc.uname () in
            Printf.printf "hello from %s %s rank %d\n" u.Sysreq.sysname u.Sysreq.release
              (Bg_rt.Libc.rank ()))
      in
      Cnk.Cluster.run_job cluster (Job.create ~mode ~name:"hello" image);
      report_cycles "hello" (Cnk.Cluster.sim cluster);
      `Ok ()
    | Fwq ->
      let entry, collect = Bg_apps.Fwq.program ~samples ~threads:4 () in
      Cnk.Cluster.run_job cluster
        (Job.create ~mode ~name:"fwq" (Image.executable ~name:"fwq" entry));
      let r = collect () in
      Printf.printf "FWQ on CNK: max spread %.5f%%\n" (Bg_apps.Fwq.max_spread_percent r);
      report_cycles "fwq" (Cnk.Cluster.sim cluster);
      `Ok ()
    | Umt ->
      let lib = Bg_apps.Umt_proxy.install (Cnk.Cluster.fs cluster) in
      let entry, collect = Bg_apps.Umt_proxy.program ~lib_path:lib ~timesteps:5 ~threads () in
      Cnk.Cluster.run_job cluster
        (Job.create ~mode ~name:"umt" (Image.executable ~name:"umt" entry));
      let r = collect () in
      Printf.printf "UMT: %d timesteps, checksum %d, wrote %s\n"
        r.Bg_apps.Umt_proxy.timesteps_run r.Bg_apps.Umt_proxy.sweep_checksum
        r.Bg_apps.Umt_proxy.output_file;
      report_cycles "umt" (Cnk.Cluster.sim cluster);
      `Ok ()
    | Amg ->
      let entry, collect = Bg_apps.Amg_proxy.program ~grid:32 ~sweeps:5 ~threads () in
      Cnk.Cluster.run_job cluster
        (Job.create ~mode ~name:"amg" (Image.executable ~name:"amg" entry));
      let r = collect () in
      Printf.printf "AMG: %d sweeps, residual %.0f, %d cycles\n" r.Bg_apps.Amg_proxy.sweeps
        r.Bg_apps.Amg_proxy.residual r.Bg_apps.Amg_proxy.wall_cycles;
      report_cycles "amg" (Cnk.Cluster.sim cluster);
      `Ok ()
    | Halo ->
      let fabric = Bg_msg.Dcmf.make_fabric (Cnk.Cluster.machine cluster) in
      for r = 0 to nodes - 1 do
        ignore (Bg_msg.Dcmf.attach fabric ~rank:r)
      done;
      let entry, collect =
        Bg_apps.Halo.program ~fabric ~cells_per_rank:64 ~iterations:40
          ~compute_cycles_per_cell:2_000 ()
      in
      Cnk.Cluster.run_job cluster
        (Job.create ~mode ~name:"halo" (Image.executable ~name:"halo" entry));
      let r = collect () in
      Printf.printf "halo: %d iterations, checksum %d, %d cycles\n"
        r.Bg_apps.Halo.iterations r.Bg_apps.Halo.checksum r.Bg_apps.Halo.wall_cycles;
      report_cycles "halo" (Cnk.Cluster.sim cluster);
      `Ok ()
    | Cg ->
      let fabric = Bg_msg.Dcmf.make_fabric (Cnk.Cluster.machine cluster) in
      for r = 0 to nodes - 1 do
        ignore (Bg_msg.Dcmf.attach fabric ~rank:r)
      done;
      let coll = Bg_msg.Mpi.Coll.create fabric ~participants:nodes in
      let entry, collect =
        Bg_apps.Cg_solver.program ~fabric ~coll ~cells_per_rank:32 ~iterations:40 ()
      in
      Cnk.Cluster.run_job cluster
        (Job.create ~mode ~name:"cg" (Image.executable ~name:"cg" entry));
      let r = collect () in
      Printf.printf "cg: residual %.3e -> %.3e in %d iterations, %d cycles\n"
        r.Bg_apps.Cg_solver.initial_residual r.Bg_apps.Cg_solver.final_residual
        r.Bg_apps.Cg_solver.iterations_run r.Bg_apps.Cg_solver.wall_cycles;
      report_cycles "cg" (Cnk.Cluster.sim cluster);
      `Ok ())
  | "fwk" -> (
    let machine = Machine.create ~seed ~dims:(1, 1, 1) () in
    let node = Bg_fwk.Node.create machine ~rank:0 ~stripped:true () in
    let finish entry after =
      Bg_fwk.Node.boot node ~on_ready:(fun () ->
          match Bg_fwk.Node.launch node (Job.create ~mode ~name:"job" (Image.executable ~name:"job" entry)) with
          | Ok () -> ()
          | Error e -> failwith e);
      ignore (Bg_engine.Sim.run machine.Machine.sim);
      after ();
      report_cycles "job" machine.Machine.sim;
      `Ok ()
    in
    match workload with
    | Hello ->
      finish
        (fun () ->
          let u = Bg_rt.Libc.uname () in
          Printf.printf "hello from %s %s\n" u.Sysreq.sysname u.Sysreq.release)
        (fun () -> ())
    | Fwq ->
      let entry, collect = Bg_apps.Fwq.program ~samples ~threads:4 () in
      finish entry (fun () ->
          Printf.printf "FWQ on FWK: max spread %.3f%%\n"
            (Bg_apps.Fwq.max_spread_percent (collect ())))
    | Amg ->
      let entry, collect = Bg_apps.Amg_proxy.program ~grid:32 ~sweeps:5 ~threads () in
      finish entry (fun () ->
          let r = collect () in
          Printf.printf "AMG: residual %.0f, %d cycles\n" r.Bg_apps.Amg_proxy.residual
            r.Bg_apps.Amg_proxy.wall_cycles)
    | Umt | Halo | Cg ->
      `Error (false, "this workload needs the CNK messaging/dynlink setup; use --kernel cnk"))
  | k -> `Error (false, Printf.sprintf "unknown kernel %S (cnk|fwk)" k)

let cmd =
  let kernel =
    Arg.(value & opt string "cnk" & info [ "kernel"; "k" ] ~doc:"Kernel: cnk or fwk.")
  in
  let workload =
    Arg.(value & opt workload_conv Hello & info [ "workload"; "w" ] ~doc:"Workload to run.")
  in
  let mode = Arg.(value & opt mode_conv Job.Smp & info [ "mode"; "m" ] ~doc:"Node mode.") in
  let nodes = Arg.(value & opt int 1 & info [ "nodes"; "n" ] ~doc:"Compute nodes.") in
  let threads = Arg.(value & opt int 4 & info [ "threads"; "t" ] ~doc:"OpenMP threads.") in
  let samples = Arg.(value & opt int 2000 & info [ "samples" ] ~doc:"FWQ samples.") in
  let seed = Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"Simulation seed.") in
  let term = Term.(ret (const run $ kernel $ workload $ mode $ nodes $ threads $ samples $ seed)) in
  Cmd.v (Cmd.info "bgp_run" ~doc:"Run a job on a simulated Blue Gene/P machine") term

let () = exit (Cmd.eval cmd)
