(* Quickstart: boot a one-node CNK machine, run a program that computes,
   talks to the kernel, and writes a file through the function-shipped I/O
   path. Run with: dune exec examples/quickstart.exe *)

let () =
  (* A 1x1x1 machine: one compute node, one I/O node behind it. *)
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  Printf.printf "booted 1 node in %d cycles (%.1f us simulated)\n"
    (Bg_engine.Sim.now (Cnk.Cluster.sim cluster))
    (Bg_engine.Cycles.to_us (Bg_engine.Sim.now (Cnk.Cluster.sim cluster)));

  (* The program: ordinary user code built from the libc veneers. It runs
     as a simulated thread on the simulated kernel. *)
  let program () =
    let u = Bg_rt.Libc.uname () in
    let t0 = Coro.rdtsc () in
    (* compute: one FWQ quantum of DAXPY *)
    Bg_apps.Daxpy.run ~elements:256 ~reps:256;
    let elapsed = Coro.rdtsc () - t0 in
    (* report through the function-shipped filesystem *)
    let fd =
      Bg_rt.Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true } "hello.txt"
    in
    let line =
      Printf.sprintf "hello from %s %s on node %s: daxpy took %d cycles\n"
        u.Sysreq.sysname u.Sysreq.release u.Sysreq.nodename elapsed
    in
    ignore (Bg_rt.Libc.write_string fd line);
    Bg_rt.Libc.close fd
  in
  let image = Image.executable ~name:"quickstart" program in
  Cnk.Cluster.run_job cluster (Job.create ~name:"quickstart" image);

  (* Host side: pull the file back off the I/O node's filesystem. *)
  let fs = Cnk.Cluster.fs cluster in
  let inode = Result.get_ok (Bg_cio.Fs.resolve fs ~cwd:"/" "/hello.txt") in
  let contents = Result.get_ok (Bg_cio.Fs.read fs inode ~offset:0 ~len:4096) in
  print_string (Bytes.to_string contents);
  Printf.printf "job finished at cycle %d; CNK handled %d syscalls, 0 TLB misses\n"
    (Bg_engine.Sim.now (Cnk.Cluster.sim cluster))
    (Cnk.Node.syscall_count (Cnk.Cluster.node cluster 0))
