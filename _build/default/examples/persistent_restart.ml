(* Persistent memory across jobs (paper §IV.D): job 1 builds a linked
   structure in a named persistent region; the node reboots (reproducible
   mode: DRAM in self-refresh); job 2 opens the same name, gets the SAME
   virtual address, and chases the stored pointers.
   Run with: dune exec examples/persistent_restart.exe *)

let () =
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let node = Cnk.Cluster.node cluster 0 in
  let va1 = ref 0 and va2 = ref 0 and walked = ref [] in

  (* Job 1: build a 5-cell linked list of squares, pointers and all. *)
  let writer () =
    let base = Bg_rt.Libc.shm_open_persistent ~name:"simulation-state" ~length:(1 lsl 20) in
    va1 := base;
    let cell i = base + (i * 64) in
    for i = 0 to 4 do
      Bg_rt.Libc.poke (cell i) ((i + 1) * (i + 1));
      Bg_rt.Libc.poke (cell i + 8) (if i = 4 then 0 else cell (i + 1))
    done
  in
  Cnk.Cluster.run_job cluster
    (Job.create ~name:"writer" (Image.executable ~name:"writer" writer));
  Printf.printf "job 1 stored its state at va 0x%x\n" !va1;

  (* Reboot with DRAM in self-refresh — contents survive. *)
  Cnk.Node.prepare_and_reset node ~reproducible:true ~on_ready:(fun () -> ());
  Cnk.Cluster.run_until_quiet cluster;
  Printf.printf "node reset and restarted (reset count %d)\n"
    (Bg_hw.Chip.reset_count (Cnk.Node.chip node));

  (* Job 2: same name, same va, pointers still valid. *)
  let reader () =
    let base = Bg_rt.Libc.shm_open_persistent ~name:"simulation-state" ~length:(1 lsl 20) in
    va2 := base;
    let rec walk addr acc =
      if addr = 0 then List.rev acc
      else walk (Bg_rt.Libc.peek (addr + 8)) (Bg_rt.Libc.peek addr :: acc)
    in
    walked := walk base []
  in
  Cnk.Cluster.run_job cluster
    (Job.create ~name:"reader" (Image.executable ~name:"reader" reader));

  Printf.printf "job 2 reopened it at va 0x%x (%s)\n" !va2
    (if !va1 = !va2 then "same address -- pointers stay valid" else "DIFFERENT!");
  Printf.printf "walked the persistent list: [%s]\n"
    (String.concat "; " (List.map string_of_int !walked))
