(* The §VIII scenario: a program alternating between an MPI-parallel phase
   and an OpenMP phase in which one process wants all the cores. On CNK
   the core assignment is static per job, so the supported pattern is SMP
   mode + threads — which this example runs: an MPI-style halo exchange
   between nodes, then an OpenMP sweep using all four cores of each node.
   Run with: dune exec examples/openmp_phase.exe *)

let () =
  let cluster = Cnk.Cluster.create ~dims:(2, 1, 1) () in
  Cnk.Cluster.boot_all cluster;
  let fabric = Bg_msg.Dcmf.make_fabric (Cnk.Cluster.machine cluster) in
  for r = 0 to 1 do
    ignore (Bg_msg.Dcmf.attach fabric ~rank:r)
  done;
  let phase_cycles = Array.make 2 (0, 0) in

  let program () =
    let rank = Bg_rt.Libc.rank () in
    let ctx = Bg_msg.Dcmf.attach fabric ~rank in
    let mpi = Bg_msg.Mpi.create ctx in
    let peer = 1 - rank in

    (* Phase 1: MPI halo exchange (each rank sends its boundary row). *)
    let t0 = Coro.rdtsc () in
    let halo = Bytes.make 512 (Char.chr (48 + rank)) in
    Bg_msg.Mpi.send mpi ~dst:peer ~tag:1 halo;
    let received = Bg_msg.Mpi.recv mpi ~src:peer ~tag:1 in
    assert (Bytes.get received 0 = Char.chr (48 + peer));
    let t1 = Coro.rdtsc () in

    (* Phase 2: OpenMP sweep across all four cores. *)
    let acc = Bg_rt.Malloc.malloc 8 in
    Bg_rt.Libc.poke acc 0;
    Bg_rt.Openmp.parallel_for ~num_threads:4 ~lo:0 ~hi:64 (fun ~thread_num:_ i ->
        Coro.consume 10_000;
        ignore (Coro.fetch_add ~addr:acc i));
    assert (Bg_rt.Libc.peek acc = 2016);
    let t2 = Coro.rdtsc () in
    phase_cycles.(rank) <- (t1 - t0, t2 - t1)
  in
  let image = Image.executable ~name:"phases" program in
  Cnk.Cluster.run_job cluster (Job.create ~name:"phases" image);

  Array.iteri
    (fun rank (mpi_c, omp_c) ->
      Printf.printf "rank %d: MPI phase %.1f us, OpenMP phase %.1f us (4 cores)\n" rank
        (Bg_engine.Cycles.to_us mpi_c) (Bg_engine.Cycles.to_us omp_c))
    phase_cycles;
  (* the OpenMP phase used 64 iterations x 10k cycles = 640k cycles of work;
     on 4 cores it should take ~160k cycles + overhead *)
  let _, omp0 = phase_cycles.(0) in
  Printf.printf "speedup vs serial: %.2fx\n" (640_000.0 /. float_of_int omp0)
