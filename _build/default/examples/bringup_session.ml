(* A chip-bringup debugging session, following paper §III end to end:

   1. a "new" chip batch arrives — one chip has a borderline timing bug
      that only some chips, on some runs, exhibit;
   2. the workload is cycle-reproducible under CNK, so each chip gets a
      golden waveform assembled from destructive scans;
   3. noisy reruns are compared scan-for-scan until a chip diverges;
   4. the divergence pinpoints the cycle, and the waveform pair is
      exported as a VCD file for the logic designers.

   Run with: dune exec examples/bringup_session.exe *)

module B = Bg_bringup

let bug = B.Timing_bug.default_bug

let make_run ~rank ~temperature_seed () =
  let cluster = Cnk.Cluster.create ~dims:(4, 1, 1) ~seed:1L () in
  Cnk.Cluster.boot_all cluster;
  B.Timing_bug.arm bug cluster ~rank ~temperature_seed;
  let image =
    Image.executable ~name:"verification-kernel" (fun () ->
        for _ = 1 to 100 do
          Coro.consume 2_000
        done)
  in
  Cnk.Cluster.launch_all cluster ~ranks:[ rank ] (Job.create ~name:"vk" image);
  cluster

let () =
  Printf.printf "chip batch of 4; susceptibility by manufacturing skew:\n";
  let machine = Machine.create ~dims:(4, 1, 1) () in
  for rank = 0 to 3 do
    let chip = Machine.chip machine rank in
    Printf.printf "  chip %d: skew %.2f -> %s\n" rank
      (Bg_hw.Chip.manufacturing_skew chip)
      (if B.Timing_bug.susceptible bug chip then "SUSCEPTIBLE" else "healthy")
  done;

  Printf.printf "\nverifying reproducibility of the test kernel (chip 0)...\n";
  let ok =
    B.Waveform.reproducible ~run:(make_run ~rank:0 ~temperature_seed:0xC01DL) ~rank:0
      ~cycle:120_500
  in
  Printf.printf "  two cold runs scan identically at cycle 120500: %b\n" ok;

  Printf.printf "\nhunting across the batch (4 reruns per chip, 8 scans each)...\n";
  let findings = B.Timing_bug.hunt bug ~ranks:4 ~samples:8 ~runs_per_rank:4 ~seed:77L in
  List.iter
    (fun f ->
      Printf.printf "  chip %d diverges from its golden waveform at cycle %d\n"
        f.B.Timing_bug.rank f.B.Timing_bug.diverged_at)
    findings;

  (match findings with
  | f :: _ ->
    let rank = f.B.Timing_bug.rank in
    Printf.printf "\nassembling the waveform pair for chip %d...\n" rank;
    let golden =
      B.Waveform.assemble ~run:(make_run ~rank ~temperature_seed:0xC01DL) ~rank
        ~from_cycle:119_744 ~cycles:8 ~stride:256 ()
    in
    let noisy =
      B.Waveform.assemble
        ~run:(make_run ~rank ~temperature_seed:(Int64.of_int (77 + (rank * 1000))))
        ~rank ~from_cycle:119_744 ~cycles:8 ~stride:256 ()
    in
    let vcd = B.Vcd.diff_to_string ~golden ~suspect:noisy in
    let path = "/tmp/bringup_chip.vcd" in
    let oc = open_out path in
    output_string oc vcd;
    close_out oc;
    Printf.printf "  16 destructive scans (16 full machine runs) -> %s (%d bytes)\n" path
      (String.length vcd);
    Printf.printf "  open it in a VCD viewer: the 'diverged' wire rises at the glitch\n"
  | [] -> Printf.printf "\nno chip diverged in this batch\n")
