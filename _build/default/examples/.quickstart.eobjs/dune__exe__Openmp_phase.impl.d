examples/openmp_phase.ml: Array Bg_engine Bg_msg Bg_rt Bytes Char Cnk Coro Image Job Printf
