examples/persistent_restart.mli:
