examples/bringup_session.mli:
