examples/persistent_restart.ml: Bg_hw Bg_rt Cnk Image Job List Printf String
