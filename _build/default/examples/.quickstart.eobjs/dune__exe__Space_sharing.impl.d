examples/space_sharing.ml: Bg_cio Bg_control Bg_engine Bg_rt Cnk Coro Image Job List Printf Result String Sysreq
