examples/quickstart.ml: Bg_apps Bg_cio Bg_engine Bg_rt Bytes Cnk Coro Image Job Printf Result Sysreq
