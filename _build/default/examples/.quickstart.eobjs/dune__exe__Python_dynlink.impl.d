examples/python_dynlink.ml: Bg_apps Bg_cio Bg_engine Bytes Cnk Image Job Printf Result Sysreq
