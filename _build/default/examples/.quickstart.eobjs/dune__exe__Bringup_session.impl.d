examples/bringup_session.ml: Bg_bringup Bg_hw Cnk Coro Image Int64 Job List Machine Printf String
