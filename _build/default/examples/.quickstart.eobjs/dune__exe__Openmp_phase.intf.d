examples/openmp_phase.mli:
