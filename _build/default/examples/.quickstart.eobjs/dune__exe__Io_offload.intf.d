examples/io_offload.mli:
