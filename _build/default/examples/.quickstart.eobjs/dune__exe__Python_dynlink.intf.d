examples/python_dynlink.mli:
