examples/quickstart.mli:
