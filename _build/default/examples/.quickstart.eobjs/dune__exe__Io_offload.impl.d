examples/io_offload.ml: Bg_cio Bg_rt Bytes Char Cnk Errno Image Job List Printf Result Sysreq
