examples/space_sharing.mli:
