(* The UMT story of paper §V.B: a Python-driven application whose physics
   lives in dynamically loaded extension libraries. The driver dlopens
   the library through the function-shipped filesystem (ld.so loads the
   WHOLE file at once — no demand paging, §IV.B.2), runs OpenMP-threaded
   sweeps, and writes its results file.
   Run with: dune exec examples/python_dynlink.exe *)

let () =
  let cluster = Cnk.Cluster.create ~dims:(1, 1, 1) () in
  Cnk.Cluster.boot_all cluster;

  (* Stage the extension library on the I/O node's filesystem. *)
  let lib_path = Bg_apps.Umt_proxy.install (Cnk.Cluster.fs cluster) in
  let st =
    Bg_cio.Fs.stat (Cnk.Cluster.fs cluster)
      (Result.get_ok (Bg_cio.Fs.resolve (Cnk.Cluster.fs cluster) ~cwd:"/" lib_path))
  in
  Printf.printf "installed %s (%d bytes on the I/O node)\n" lib_path st.Sysreq.st_size;

  let entry, collect =
    Bg_apps.Umt_proxy.program ~lib_path ~timesteps:5 ~threads:4 ()
  in
  let t0 = Bg_engine.Sim.now (Cnk.Cluster.sim cluster) in
  Cnk.Cluster.run_job cluster
    (Job.create ~name:"umt" (Image.executable ~name:"umt-driver" entry));
  let report = collect () in

  Printf.printf "ran %d timesteps of threaded transport sweeps\n"
    report.Bg_apps.Umt_proxy.timesteps_run;
  Printf.printf "sweep checksum: %d (expected %d)\n" report.Bg_apps.Umt_proxy.sweep_checksum
    (5 * 408);
  Printf.printf "wall time: %.2f ms simulated\n"
    (Bg_engine.Cycles.to_us (Bg_engine.Sim.now (Cnk.Cluster.sim cluster) - t0) /. 1000.0);
  let fs = Cnk.Cluster.fs cluster in
  let inode = Result.get_ok (Bg_cio.Fs.resolve fs ~cwd:"/" "/umt_results.txt") in
  Printf.printf "results file: %s"
    (Bytes.to_string (Result.get_ok (Bg_cio.Fs.read fs inode ~offset:0 ~len:100)))
