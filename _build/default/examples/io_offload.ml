(* I/O offload: sixteen compute nodes write through ONE I/O node (paper
   §IV.A / Fig 2). Every write syscall is marshaled, crosses the
   collective network, is executed by the rank's dedicated ioproxy, and
   the errno/result comes back from real Linux-side code. The point to
   notice in the output: 16 nodes, 16 proxies, one filesystem client.
   Run with: dune exec examples/io_offload.exe *)

let () =
  let cluster = Cnk.Cluster.create ~dims:(4, 2, 2) () in
  Cnk.Cluster.boot_all cluster;

  let program () =
    let rank = Bg_rt.Libc.rank () in
    Bg_rt.Libc.mkdir (Printf.sprintf "/out-%02d" rank);
    Bg_rt.Libc.chdir (Printf.sprintf "/out-%02d" rank);
    let fd =
      Bg_rt.Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true } "data.bin"
    in
    (* each rank writes its own pattern in 4 chunks *)
    for chunk = 0 to 3 do
      let payload = Bytes.make 1024 (Char.chr (65 + ((rank + chunk) mod 26))) in
      ignore (Bg_rt.Libc.write fd payload)
    done;
    let st = Bg_rt.Libc.fstat fd in
    assert (st.Sysreq.st_size = 4096);
    Bg_rt.Libc.close fd;
    (* POSIX semantics survive the offload: ENOENT comes back as ENOENT *)
    match Bg_rt.Libc.openf ~flags:Sysreq.o_rdonly "missing.bin" with
    | _ -> assert false
    | exception Sysreq.Syscall_error Errno.ENOENT -> ()
  in
  let image = Image.executable ~name:"writer" program in
  Cnk.Cluster.run_job cluster (Job.create ~name:"offload" image);

  let ciod = Cnk.Cluster.ciod_for cluster ~rank:0 in
  Printf.printf
    "16 compute nodes -> one I/O node served %d function-shipped requests\n\
     (ioproxies live: %d -- torn down at job end, one per process while running)\n"
    (Bg_cio.Ciod.requests_served ciod)
    (Bg_cio.Ciod.proxy_count ciod);
  let fs = Cnk.Cluster.fs cluster in
  let dirs = Result.get_ok (Bg_cio.Fs.readdir fs ~cwd:"/" "/") in
  Printf.printf "filesystem now holds %d per-rank directories\n" (List.length dirs);
  let sample = Result.get_ok (Bg_cio.Fs.resolve fs ~cwd:"/" "/out-05/data.bin") in
  Printf.printf "rank 5 wrote %d bytes; first byte '%c'\n"
    (Bg_cio.Fs.size fs sample)
    (Bytes.get (Result.get_ok (Bg_cio.Fs.read fs sample ~offset:0 ~len:1)) 0)
