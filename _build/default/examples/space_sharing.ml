(* Space-sharing through the control system: the service node carves the
   torus into partitions and schedules a queue of jobs onto them — two
   small jobs run side by side while a full-machine job waits, and a
   backfilled job slips into an idle corner.
   Run with: dune exec examples/space_sharing.exe *)

module Ctl = Bg_control

let () =
  (* an eight-node machine, all booted under CNK *)
  let cluster = Cnk.Cluster.create ~dims:(4, 2, 1) () in
  Cnk.Cluster.boot_all cluster;
  let sched = Ctl.Scheduler.create ~backfill:true cluster in

  let job name cycles =
    Job.create ~name
      (Image.executable ~name (fun () ->
           Coro.consume cycles;
           let fd =
             Bg_rt.Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true }
               (Printf.sprintf "%s.rank%d" name (Bg_rt.Libc.rank ()))
           in
           ignore (Bg_rt.Libc.write_string fd "done");
           Bg_rt.Libc.close fd))
  in
  let a = Ctl.Scheduler.submit sched ~shape:(2, 1, 1) (job "chem" 3_000_000) in
  let b = Ctl.Scheduler.submit sched ~shape:(2, 1, 1) (job "cfd" 1_500_000) in
  let c = Ctl.Scheduler.submit sched ~shape:(4, 2, 1) (job "hero-run" 2_000_000) in
  let d = Ctl.Scheduler.submit sched ~shape:(2, 1, 1) (job "quick-test" 200_000) in
  Printf.printf "submitted 4 jobs to a 4x2x1 machine (backfill on)\n";
  Ctl.Scheduler.drain sched;

  List.iter
    (fun (jid, name) ->
      match Ctl.Scheduler.state sched jid with
      | Ctl.Scheduler.Completed at ->
        Printf.printf "  %-10s completed at %8.2f ms\n" name (Bg_engine.Cycles.to_us at /. 1000.0)
      | _ -> Printf.printf "  %-10s (not finished?)\n" name)
    [ (a, "chem"); (b, "cfd"); (c, "hero-run"); (d, "quick-test") ];
  Printf.printf "completion order: %s\n"
    (String.concat " -> "
       (List.map
          (fun j ->
            List.assoc j [ (a, "chem"); (b, "cfd"); (c, "hero-run"); (d, "quick-test") ])
          (Ctl.Scheduler.completed_order sched)));
  (* every rank of every job left its marker on the shared filesystem *)
  let files = Result.get_ok (Bg_cio.Fs.readdir (Cnk.Cluster.fs cluster) ~cwd:"/" "/") in
  Printf.printf "%d per-rank output files on the shared filesystem\n" (List.length files)
