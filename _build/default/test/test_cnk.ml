(* Tests for the CNK kernel: static mapping properties, mmap tracking,
   futexes, persistent memory, and end-to-end jobs exercising syscalls,
   NPTL-style threading, guard pages, function-shipped I/O, dynamic
   linking and cycle reproducibility. *)

open Bg_engine
open Bg_hw
open Bg_kabi
open Cnk
module Rt = Bg_rt

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let mb = 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Mapping *)

let compute_ok cfg =
  match Mapping.compute cfg with Ok t -> t | Error e -> Alcotest.failf "mapping: %s" e

let regions_cover_and_align (pm : Mapping.process_map) =
  List.iter
    (fun (r : Sysreq.region) ->
      check_bool "va aligned" true (Page_size.aligned r.Sysreq.page r.Sysreq.vaddr);
      check_bool "pa aligned" true (Page_size.aligned r.Sysreq.page r.Sysreq.paddr);
      check_int "bytes = page" (Page_size.bytes r.Sysreq.page) r.Sysreq.bytes)
    pm.Mapping.regions

let test_mapping_smp () =
  let t = compute_ok Mapping.default_config in
  check_int "one process" 1 (Array.length t.Mapping.procs);
  let pm = t.Mapping.procs.(0) in
  regions_cover_and_align pm;
  check_bool "fits budget" true
    (t.Mapping.entries_per_core <= Mapping.default_config.Mapping.tlb_budget);
  (* proc 0 enjoys an identity mapping for text *)
  (match Mapping.region_for pm Mapping.text_va with
  | Some r -> check_int "text identity" 0 r.Sysreq.paddr
  | None -> Alcotest.fail "no text region");
  check_bool "heap is large" true (pm.Mapping.heap_stack_bytes > 1024 * mb)

let test_mapping_no_overlap_pa () =
  List.iter
    (fun nprocs ->
      let t = compute_ok { Mapping.default_config with Mapping.nprocs } in
      (* Collect all physical ranges across processes; shared ranges are
         deliberately identical across processes, so dedup them. *)
      let ranges =
        Array.to_list t.Mapping.procs
        |> List.concat_map (fun pm ->
               List.map
                 (fun (r : Sysreq.region) -> (r.Sysreq.kind, r.Sysreq.paddr, r.Sysreq.bytes))
                 pm.Mapping.regions)
        |> List.sort_uniq compare
      in
      let sorted = List.sort (fun (_, a, _) (_, b, _) -> compare a b) ranges in
      let rec no_overlap = function
        | (_, a, la) :: ((_, b, _) :: _ as rest) ->
          check_bool "disjoint pa" true (a + la <= b);
          no_overlap rest
        | _ -> ()
      in
      no_overlap sorted)
    [ 1; 2; 4 ]

let test_mapping_vn_equal_split () =
  let t = compute_ok { Mapping.default_config with Mapping.nprocs = 4 } in
  let sizes =
    Array.to_list t.Mapping.procs |> List.map (fun pm -> pm.Mapping.heap_stack_bytes)
  in
  (match sizes with
  | s :: rest -> List.iter (fun x -> check_int "even split" s x) rest
  | [] -> Alcotest.fail "no procs");
  check_bool "budget" true (t.Mapping.entries_per_core <= 60)

let test_mapping_escalates_floor () =
  (* A brutal TLB budget forces larger minimum pages. *)
  let cfg = { Mapping.default_config with Mapping.tlb_budget = 12 } in
  let t = compute_ok cfg in
  check_bool "fits" true (t.Mapping.entries_per_core <= 12);
  check_bool "floor raised" true (t.Mapping.min_page <> Page_size.P1m)

let test_mapping_too_small_fails () =
  let cfg =
    { Mapping.default_config with Mapping.dram_bytes = 128 * mb; persist_bytes = 0 }
  in
  match Mapping.compute { cfg with Mapping.nprocs = 4 } with
  | Error _ -> ()
  | Ok t ->
    (* if it fits, every process still needs a real heap *)
    Array.iter
      (fun pm -> check_bool "heap nonempty" true (pm.Mapping.heap_stack_bytes > 0))
      t.Mapping.procs

let test_mapping_rejects_bad_nprocs () =
  match Mapping.compute { Mapping.default_config with Mapping.nprocs = 3 } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nprocs=3 accepted"

let test_tile_covers_exactly () =
  let tiles = Mapping.tile ~va:0 ~pa:0 ~bytes:(300 * mb) ~floor:Page_size.P1m in
  let total = List.fold_left (fun acc (p, _, _) -> acc + Page_size.bytes p) 0 tiles in
  check_int "covers rounded size" (300 * mb) total;
  (* contiguity *)
  let rec contiguous = function
    | (p1, va1, pa1) :: ((_, va2, pa2) :: _ as rest) ->
      check_int "va contiguous" (va1 + Page_size.bytes p1) va2;
      check_int "pa contiguous" (pa1 + Page_size.bytes p1) pa2;
      contiguous rest
    | _ -> ()
  in
  contiguous tiles;
  (* 300 MB aligned at 0 should use a 256 MB page plus smaller ones *)
  check_bool "uses 256M" true (List.exists (fun (p, _, _) -> p = Page_size.P256m) tiles)

let prop_tile_alignment =
  QCheck.Test.make ~name:"tiles are always self-aligned" ~count:200
    QCheck.(pair (int_range 1 600) (int_range 0 64))
    (fun (mbs, offset_mb) ->
      let tiles =
        Mapping.tile ~va:(offset_mb * mb) ~pa:(offset_mb * mb) ~bytes:(mbs * mb)
          ~floor:Page_size.P1m
      in
      List.for_all
        (fun (p, va, pa) -> Page_size.aligned p va && Page_size.aligned p pa)
        tiles)

(* ------------------------------------------------------------------ *)
(* Mmap_tracker *)

let mk_tracker () = Mmap_tracker.create ~base:(16 * mb) ~bytes:(256 * mb) ~main_stack_bytes:(4 * mb)

let test_tracker_brk () =
  let t = mk_tracker () in
  check_int "initial" (16 * mb) (Result.get_ok (Mmap_tracker.brk t None));
  check_int "grow" (20 * mb) (Result.get_ok (Mmap_tracker.brk t (Some (20 * mb))));
  (match Mmap_tracker.brk t (Some (8 * mb)) with
  | Error Errno.EINVAL -> ()
  | _ -> Alcotest.fail "shrink below base accepted");
  (* cannot cross into the stack *)
  match Mmap_tracker.brk t (Some ((16 + 256) * mb)) with
  | Error Errno.ENOMEM -> ()
  | _ -> Alcotest.fail "brk into stack accepted"

let test_tracker_mmap_top_down () =
  let t = mk_tracker () in
  let a = Result.get_ok (Mmap_tracker.mmap t ~length:mb) in
  let b = Result.get_ok (Mmap_tracker.mmap t ~length:mb) in
  check_bool "below stack" true (a + mb <= Mmap_tracker.main_stack_lo t);
  check_int "descending" (a - mb) b;
  check_bool "mapped" true (Mmap_tracker.is_mapped t ~addr:a ~length:mb)

let test_tracker_munmap_coalesce () =
  let t = mk_tracker () in
  let a = Result.get_ok (Mmap_tracker.mmap t ~length:(2 * mb)) in
  let b = Result.get_ok (Mmap_tracker.mmap t ~length:(2 * mb)) in
  Result.get_ok (Mmap_tracker.munmap t ~addr:a ~length:(2 * mb));
  Result.get_ok (Mmap_tracker.munmap t ~addr:b ~length:(2 * mb));
  (* after freeing both, a 4 MB map must fit back in the same hole *)
  let c = Result.get_ok (Mmap_tracker.mmap t ~length:(4 * mb)) in
  check_int "reuses coalesced hole" b c

let test_tracker_partial_munmap () =
  let t = mk_tracker () in
  let a = Result.get_ok (Mmap_tracker.mmap t ~length:(3 * mb)) in
  Result.get_ok (Mmap_tracker.munmap t ~addr:(a + mb) ~length:mb);
  check_bool "head still mapped" true (Mmap_tracker.is_mapped t ~addr:a ~length:mb);
  check_bool "tail still mapped" true
    (Mmap_tracker.is_mapped t ~addr:(a + (2 * mb)) ~length:mb);
  check_bool "middle unmapped" false (Mmap_tracker.is_mapped t ~addr:(a + mb) ~length:mb)

let test_tracker_munmap_unmapped_fails () =
  let t = mk_tracker () in
  match Mmap_tracker.munmap t ~addr:(64 * mb) ~length:mb with
  | Error Errno.EINVAL -> ()
  | _ -> Alcotest.fail "freeing unmapped range accepted"

let test_tracker_brk_blocked_by_mmap () =
  let t = mk_tracker () in
  (* exhaust so that an mmap lands just above the break *)
  let total_free = Mmap_tracker.free_bytes t in
  let big = Result.get_ok (Mmap_tracker.mmap t ~length:(total_free - mb)) in
  (match Mmap_tracker.brk t (Some (big + mb)) with
  | Error Errno.ENOMEM -> ()
  | Ok _ -> Alcotest.fail "brk through mmap accepted"
  | Error e -> Alcotest.failf "unexpected %s" (Errno.to_string e));
  check_bool "brk up to the mmap edge ok" true
    (Result.is_ok (Mmap_tracker.brk t (Some big)))

let prop_tracker_mmap_disjoint =
  QCheck.Test.make ~name:"mmap allocations never overlap" ~count:100
    QCheck.(list_of_size Gen.(1 -- 20) (int_range 1 (8 * 1024 * 1024)))
    (fun sizes ->
      let t = mk_tracker () in
      let allocs =
        List.filter_map
          (fun len ->
            match Mmap_tracker.mmap t ~length:len with
            | Ok a -> Some (a, len)
            | Error _ -> None)
          sizes
      in
      let sorted = List.sort compare allocs in
      let rec disjoint = function
        | (a, la) :: ((b, _) :: _ as rest) -> a + la <= b && disjoint rest
        | _ -> true
      in
      disjoint sorted)

(* ------------------------------------------------------------------ *)
(* Futex + Persist units *)

let test_futex_fifo () =
  let f = Futex.create () in
  Futex.enqueue f ~pid:1 ~addr:100 ~tid:11;
  Futex.enqueue f ~pid:1 ~addr:100 ~tid:12;
  Futex.enqueue f ~pid:1 ~addr:100 ~tid:13;
  Alcotest.(check (list int)) "fifo wake" [ 11; 12 ] (Futex.wake f ~pid:1 ~addr:100 ~count:2);
  check_int "one left" 1 (Futex.waiting f ~pid:1 ~addr:100)

let test_futex_per_pid () =
  let f = Futex.create () in
  Futex.enqueue f ~pid:1 ~addr:100 ~tid:11;
  Futex.enqueue f ~pid:2 ~addr:100 ~tid:21;
  Alcotest.(check (list int)) "pid isolated" [ 11 ] (Futex.wake f ~pid:1 ~addr:100 ~count:10);
  check_int "other pid untouched" 1 (Futex.waiting f ~pid:2 ~addr:100)

let test_futex_remove () =
  let f = Futex.create () in
  Futex.enqueue f ~pid:1 ~addr:100 ~tid:11;
  check_bool "removed" true (Futex.remove f ~tid:11);
  check_bool "gone" false (Futex.remove f ~tid:11);
  check_int "empty" 0 (Futex.total_waiting f)

let test_persist_stable_va () =
  let p = Persist.create ~pool_base_pa:(1024 * mb) ~pool_bytes:(64 * mb) ~va_base:0xA000_0000 in
  let r1 = Result.get_ok (Persist.open_region p ~name:"data" ~bytes:mb ~owner:"u") in
  let r2 = Result.get_ok (Persist.open_region p ~name:"data" ~bytes:mb ~owner:"u") in
  check_int "same va" r1.Persist.va r2.Persist.va;
  let r3 = Result.get_ok (Persist.open_region p ~name:"other" ~bytes:mb ~owner:"u") in
  check_bool "distinct regions" true (r3.Persist.va <> r1.Persist.va)

let test_persist_privileges () =
  (* SSIV.D: persistent memory is preserved "assuming the correct
     privileges" -- another user cannot open the region *)
  let p = Persist.create ~pool_base_pa:(1024 * mb) ~pool_bytes:(64 * mb) ~va_base:0xA000_0000 in
  ignore (Result.get_ok (Persist.open_region p ~name:"secret" ~bytes:mb ~owner:"alice"));
  (match Persist.open_region p ~name:"secret" ~bytes:mb ~owner:"bob" with
  | Error Errno.EACCES -> ()
  | _ -> Alcotest.fail "expected EACCES");
  check_bool "owner still fine" true
    (Result.is_ok (Persist.open_region p ~name:"secret" ~bytes:mb ~owner:"alice"))

let test_persist_exhaustion () =
  let p = Persist.create ~pool_base_pa:0 ~pool_bytes:(2 * mb) ~va_base:0xA000_0000 in
  ignore (Result.get_ok (Persist.open_region p ~name:"a" ~bytes:(2 * mb) ~owner:"u"));
  match Persist.open_region p ~name:"b" ~bytes:1 ~owner:"u" with
  | Error Errno.ENOMEM -> ()
  | _ -> Alcotest.fail "expected ENOMEM"

(* ------------------------------------------------------------------ *)
(* End-to-end node tests *)

(* Run [f] as the single-process job body on a 1-node cluster; returns the
   cluster for post-mortem inspection. *)
let run_user ?(job_tweak = Fun.id) f =
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let image = Image.executable ~name:"testprog" (fun () -> f cluster) in
  let job = job_tweak (Job.create ~name:"test" image) in
  Cluster.run_job cluster job;
  cluster

let no_faults c = Alcotest.(check (list (pair int string))) "no faults" [] (Node.faults (Cluster.node c 0))

let test_job_runs_and_exits () =
  let ran = ref false in
  let c = run_user (fun _ -> Coro.consume 1000; ran := true) in
  check_bool "body ran" true !ran;
  no_faults c;
  check_bool "job done" true (not (Node.job_active (Cluster.node c 0)));
  Alcotest.(check (list (pair int int))) "exit 0" [ (1, 0) ] (Node.exit_codes (Cluster.node c 0))

let test_identity_syscalls () =
  let seen = ref (0, 0, 0, "") in
  let c =
    run_user (fun _ ->
        let u = Rt.Libc.uname () in
        seen := (Rt.Libc.getpid (), Rt.Libc.gettid (), Rt.Libc.rank (), u.Sysreq.release))
  in
  let pid, tid, rank, release = !seen in
  check_int "pid" 1 pid;
  check_int "tid" 1 tid;
  check_int "rank" 0 rank;
  Alcotest.(check string) "uname release convinces glibc" "2.6.19.2" release;
  no_faults c

let test_malloc_poke_peek () =
  let got = ref 0 in
  let c =
    run_user (fun _ ->
        let a = Rt.Malloc.malloc 4096 in
        Rt.Libc.poke a 424242;
        let b = Rt.Malloc.malloc (4 * mb) in
        (* over the threshold: must come from the mmap window, far above brk *)
        Rt.Libc.poke b 777;
        got := Rt.Libc.peek a + Rt.Libc.peek b;
        Rt.Malloc.free a;
        Rt.Malloc.free b)
  in
  check_int "values survive" (424242 + 777) !got;
  no_faults c

let test_function_shipped_io () =
  let read_back = ref "" in
  let c =
    run_user (fun _ ->
        let fd = Rt.Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true } "out.dat" in
        ignore (Rt.Libc.write_string fd "hello from rank 0");
        ignore (Rt.Libc.lseek fd ~offset:6 ~whence:Sysreq.Seek_set);
        read_back := Bytes.to_string (Rt.Libc.read fd ~len:4);
        Rt.Libc.close fd)
  in
  Alcotest.(check string) "seek+read through CIOD" "from" !read_back;
  (* the data really lives on the I/O node's filesystem *)
  let fs = Cluster.fs c in
  let inode = Result.get_ok (Bg_cio.Fs.resolve fs ~cwd:"/" "/out.dat") in
  Alcotest.(check string) "content on io node" "hello from rank 0"
    (Bytes.to_string (Result.get_ok (Bg_cio.Fs.read fs inode ~offset:0 ~len:100)));
  no_faults c

let test_io_errno_passthrough () =
  let errno = ref "" in
  let c =
    run_user (fun _ ->
        try ignore (Rt.Libc.openf ~flags:Sysreq.o_rdonly "/no/such/file")
        with Sysreq.Syscall_error e -> errno := Errno.to_string e)
  in
  Alcotest.(check string) "Linux errno comes back" "ENOENT" !errno;
  no_faults c

let test_io_disabled_enosys () =
  let errno = ref "" in
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  Node.set_io_enabled (Cluster.node cluster 0) false;
  let image =
    Image.executable ~name:"noio" (fun () ->
        try ignore (Rt.Libc.openf "x") with Sysreq.Syscall_error e -> errno := Errno.to_string e)
  in
  Cluster.run_job cluster (Job.create ~name:"noio" image);
  Alcotest.(check string) "ENOSYS when shipped io off" "ENOSYS" !errno

let test_mmap_file_copy_in () =
  let contents = ref "" in
  let c =
    run_user (fun cluster ->
        ignore cluster;
        let fd = Rt.Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true } "lib.bin" in
        ignore (Rt.Libc.write_string fd "SHAREDLIBRARYDATA");
        let addr = Rt.Libc.mmap_file ~fd ~length:17 ~offset:0 in
        Rt.Libc.close fd;
        contents := Bytes.to_string (Coro.load ~addr ~len:17);
        (* CNK does not enforce text permissions: this store succeeds *)
        Coro.store ~addr (Bytes.of_string "X"))
  in
  Alcotest.(check string) "whole file copied at map time" "SHAREDLIBRARYDATA" !contents;
  no_faults c

let test_pthread_mutex_counter () =
  let total = ref (-1) in
  let c =
    run_user (fun _ ->
        let m = Rt.Pthread.Mutex.create () in
        let counter = Rt.Malloc.malloc 8 in
        Rt.Libc.poke counter 0;
        let bump () =
          for _ = 1 to 50 do
            Rt.Pthread.Mutex.lock m;
            Coro.consume 100;
            Rt.Libc.poke counter (Rt.Libc.peek counter + 1);
            Rt.Pthread.Mutex.unlock m
          done
        in
        let workers = List.init 3 (fun _ -> Rt.Pthread.create bump) in
        bump ();
        List.iter Rt.Pthread.join workers;
        total := Rt.Libc.peek counter;
        Rt.Pthread.Mutex.destroy m)
  in
  check_int "no lost increments" 200 !total;
  no_faults c

let test_pthread_barrier_and_cond () =
  let order_ok = ref false in
  let c =
    run_user (fun _ ->
        let b = Rt.Pthread.Barrier.create ~parties:4 in
        let pre = Rt.Malloc.malloc 8 and ok = Rt.Malloc.malloc 8 in
        Rt.Libc.poke pre 0;
        Rt.Libc.poke ok 0;
        let worker () =
          ignore (Coro.fetch_add ~addr:pre 1);
          Rt.Pthread.Barrier.wait b;
          (* after the barrier, every pre-barrier increment is visible *)
          if Rt.Libc.peek pre = 4 then ignore (Coro.fetch_add ~addr:ok 1)
        in
        let ws = List.init 3 (fun _ -> Rt.Pthread.create worker) in
        worker ();
        List.iter Rt.Pthread.join ws;
        order_ok := Rt.Libc.peek ok = 4)
  in
  check_bool "barrier separates phases" true !order_ok;
  no_faults c

let test_clone_flag_validation () =
  let errno = ref "" in
  let c =
    run_user (fun _ ->
        let bad = { Sysreq.nptl_clone_flags with Sysreq.vm = false } in
        match
          Coro.syscall
            (Sysreq.Clone
               { flags = bad; stack_hint = 0; tls = 0; parent_tid_addr = 0;
                 child_tid_addr = 0; entry = (fun () -> ()) })
        with
        | Sysreq.R_err e -> errno := Errno.to_string e
        | _ -> ())
  in
  Alcotest.(check string) "non-NPTL flags rejected" "EINVAL" !errno;
  no_faults c

let test_thread_overcommit_eagain () =
  (* SMP mode, 3 threads/core, 4 cores: 12 slots. Main occupies one, so
     the 12th extra create must fail with EAGAIN (no overcommit, §VII.B). *)
  let failures = ref 0 in
  let created = ref 0 in
  let c =
    run_user (fun _ ->
        let stop = Rt.Pthread.Mutex.create () in
        Rt.Pthread.Mutex.lock stop;
        let keepalive () = Rt.Pthread.Mutex.lock stop; Rt.Pthread.Mutex.unlock stop in
        let handles = ref [] in
        for _ = 1 to 12 do
          match Rt.Pthread.create keepalive with
          | h -> incr created; handles := h :: !handles
          | exception Sysreq.Syscall_error Errno.EAGAIN -> incr failures
        done;
        Rt.Pthread.Mutex.unlock stop;
        List.iter Rt.Pthread.join !handles)
  in
  check_int "11 fit" 11 !created;
  check_int "12th rejected" 1 !failures;
  no_faults c

let test_guard_page_kills_stack_smash () =
  let c =
    run_user (fun _ ->
        (* smash: store into the guard range just above the break *)
        let brk = Rt.Libc.brk_now () in
        Coro.store ~addr:(brk + 100) (Bytes.of_string "boom");
        Alcotest.fail "store through guard must not return")
  in
  match Node.faults (Cluster.node c 0) with
  | [ (_, reason) ] ->
    check_bool "killed by signal 11" true
      (String.length reason > 0 && reason = "unhandled signal 11")
  | l -> Alcotest.failf "expected one fault, got %d" (List.length l)

let test_guard_page_handler_recovers () =
  let recovered = ref false in
  let c =
    run_user (fun _ ->
        Sysreq.expect_unit
          (Coro.syscall
             (Sysreq.Sigaction { signo = 11; handler = Some (fun _ -> recovered := true) }));
        let brk = Rt.Libc.brk_now () in
        Coro.store ~addr:(brk + 100) (Bytes.of_string "boom");
        (* handler ran; the faulting store was dropped; we keep going *)
        Coro.consume 10)
  in
  check_bool "handler ran" true !recovered;
  no_faults c

let test_heap_extension_repositions_guard_via_ipi () =
  let c =
    run_user (fun _ ->
        let before_brk = Rt.Libc.brk_now () in
        (* A worker on another core grows the heap... *)
        let w =
          Rt.Pthread.create (fun () ->
              ignore (Rt.Libc.sbrk (8 * mb));
              (* give the IPI time to land before main touches memory *)
              Coro.consume 5_000)
        in
        Rt.Pthread.join w;
        (* ...after which the main thread may legitimately store where the
           guard used to be. *)
        Coro.store ~addr:(before_brk + 100) (Bytes.of_string "now legal");
        Coro.consume 10)
  in
  no_faults c;
  check_bool "an IPI was raised" true (Node.ipi_count (Cluster.node c 0) >= 1)

let test_persistent_memory_across_jobs () =
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let va_job1 = ref 0 and va_job2 = ref 0 and sum = ref 0 in
  (* Job 1 builds a pointer-linked list of three cells inside the region. *)
  let writer =
    Image.executable ~name:"writer" (fun () ->
        let base = Rt.Libc.shm_open_persistent ~name:"ckpt" ~length:mb in
        va_job1 := base;
        (* cell layout: [value; next_ptr] *)
        let cell addr value next =
          Rt.Libc.poke addr value;
          Rt.Libc.poke (addr + 8) next
        in
        cell base 10 (base + 64);
        cell (base + 64) 20 (base + 128);
        cell (base + 128) 30 0)
  in
  Cluster.run_job cluster (Job.create ~name:"writer" writer);
  (* Job 2 walks the pointers: valid only if the va is preserved. *)
  let reader =
    Image.executable ~name:"reader" (fun () ->
        let base = Rt.Libc.shm_open_persistent ~name:"ckpt" ~length:mb in
        va_job2 := base;
        let rec walk addr acc =
          if addr = 0 then acc
          else walk (Rt.Libc.peek (addr + 8)) (acc + Rt.Libc.peek addr)
        in
        sum := walk base 0)
  in
  Cluster.run_job cluster (Job.create ~name:"reader" reader);
  check_int "same va across jobs" !va_job1 !va_job2;
  check_int "linked list intact" 60 !sum;
  no_faults cluster

let test_persistent_memory_denied_across_users () =
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let writer =
    Image.executable ~name:"w" (fun () ->
        ignore (Rt.Libc.shm_open_persistent ~name:"private" ~length:mb))
  in
  Cluster.run_job cluster (Job.create ~user:"alice" ~name:"w" writer);
  let denied = ref "" in
  let thief =
    Image.executable ~name:"t" (fun () ->
        try ignore (Rt.Libc.shm_open_persistent ~name:"private" ~length:mb)
        with Sysreq.Syscall_error e -> denied := Errno.to_string e)
  in
  Cluster.run_job cluster (Job.create ~user:"bob" ~name:"t" thief);
  Alcotest.(check string) "other user denied" "EACCES" !denied

let test_dlopen_dlsym () =
  let result = ref 0 in
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let lib =
    Image.library ~name:"libumt" ~text_bytes:(2 * mb)
      [ { Image.symbol_name = "transport_sweep"; fn = (fun x -> (x * 2) + 1) } ]
  in
  let path = Rt.Ld_so.install_library (Cluster.fs cluster) lib in
  let prog =
    Image.executable ~name:"pydriver" (fun () ->
        let h = Rt.Ld_so.dlopen path in
        result := Rt.Ld_so.dlsym h "transport_sweep" 20;
        (* §IV.B.2: text of dynamic objects is not write-protected *)
        Rt.Ld_so.text_writable_demo h;
        Rt.Ld_so.dlclose h)
  in
  Cluster.run_job cluster (Job.create ~name:"py" prog);
  check_int "symbol called through dlopen" 41 !result;
  no_faults cluster

let test_tgkill_interrupts_futex_wait () =
  let observed = ref "" in
  let c =
    run_user (fun _ ->
        let word = Rt.Malloc.malloc 8 in
        Rt.Libc.poke word 1;
        let main_tid = Rt.Libc.gettid () in
        let waiter_tid = Rt.Malloc.malloc 8 in
        Rt.Libc.poke waiter_tid 0;
        let w =
          Rt.Pthread.create (fun () ->
              Rt.Libc.poke waiter_tid (Rt.Libc.gettid ());
              Sysreq.expect_unit
                (Coro.syscall (Sysreq.Sigaction { signo = 10; handler = Some (fun _ -> ()) }));
              match Coro.syscall (Sysreq.Futex_wait { addr = word; expected = 1 }) with
              | Sysreq.R_err Errno.EINTR -> observed := "EINTR"
              | Sysreq.R_int _ -> observed := "woken"
              | _ -> observed := "other")
        in
        ignore main_tid;
        (* wait until the worker has published its tid and blocked *)
        Coro.consume 50_000;
        Sysreq.expect_unit
          (Coro.syscall (Sysreq.Tgkill { tid = Rt.Libc.peek waiter_tid; signo = 10 }));
        Rt.Pthread.join w)
  in
  Alcotest.(check string) "futex wait interrupted" "EINTR" !observed;
  no_faults c

let test_openmp_parallel_for () =
  let total = ref 0 in
  let c =
    run_user (fun _ ->
        let acc = Rt.Malloc.malloc 8 in
        Rt.Libc.poke acc 0;
        Rt.Openmp.parallel_for ~num_threads:4 ~lo:0 ~hi:100 (fun ~thread_num:_ i ->
            Coro.consume 50;
            ignore (Coro.fetch_add ~addr:acc i));
        total := Rt.Libc.peek acc)
  in
  check_int "sum 0..99" 4950 !total;
  no_faults c

let test_query_map_and_vtop () =
  let identity = ref false and heap_pa = ref 0 in
  let c =
    run_user (fun _ ->
        let map = Rt.Libc.query_map () in
        identity := List.exists (fun r -> r.Sysreq.kind = Sysreq.Text && r.Sysreq.paddr = 0) map;
        let a = Rt.Malloc.malloc 64 in
        heap_pa := Rt.Libc.virtual_to_physical a)
  in
  check_bool "text identity-mapped for proc 0" true !identity;
  check_bool "user space can learn v->p" true (!heap_pa > 0);
  no_faults c

let test_exit_group_kills_all () =
  let after = ref false in
  let c =
    run_user (fun _ ->
        let _w =
          Rt.Pthread.create (fun () ->
              Coro.consume 1_000_000;
              after := true (* must never run *))
        in
        Coro.consume 1000;
        ignore (Rt.Libc.exit_group 7))
  in
  check_bool "worker killed before running on" false !after;
  Alcotest.(check (list (pair int int))) "exit code recorded" [ (1, 7) ]
    (Node.exit_codes (Cluster.node c 0))

let test_vn_mode_four_processes () =
  let pids = ref [] in
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let image =
    Image.executable ~name:"vn" (fun () ->
        (* read the pid into a local first: the ref update must not span an
           effect suspension or concurrent mains lose updates *)
        let pid = Rt.Libc.getpid () in
        pids := pid :: !pids)
  in
  Cluster.run_job cluster (Job.create ~mode:Job.Vn ~name:"vn" image);
  check_int "four processes ran" 4 (List.length !pids);
  Alcotest.(check (list int)) "distinct pids" [ 1; 2; 3; 4 ] (List.sort compare !pids)

let test_io_holds_the_core () =
  (* SSVI.C: "I/O function shipping is made trivial by not yielding the
     core to another thread during an I/O system call" — a ready thread
     on the same core must NOT run while its sibling waits for CIOD *)
  let b_ran_during_io = ref false and io_window = ref (0, 0) in
  let c =
    run_user (fun _ ->
        (* force both threads onto core 0: threads_per_core default 3, but
           clone picks the least-loaded core — so take all cores first *)
        let parked = List.init 3 (fun _ -> Rt.Pthread.create (fun () -> Coro.consume 2_000_000)) in
        (* cores 1-3 now busy; the next create lands on core 0 with main *)
        let b =
          Rt.Pthread.create (fun () ->
              let t = Coro.rdtsc () in
              let lo, hi = !io_window in
              if lo > 0 && t >= lo && t <= hi then b_ran_during_io := true)
        in
        (* b is Ready on core 0 behind main; main now does shipped I/O *)
        let t0 = Coro.rdtsc () in
        let fd = Rt.Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true } "f" in
        ignore (Rt.Libc.write_string fd "x");
        Rt.Libc.close fd;
        io_window := (t0, Coro.rdtsc ());
        (* only after main blocks on join does b get the core *)
        Rt.Pthread.join b;
        List.iter Rt.Pthread.join parked)
  in
  no_faults c;
  check_bool "sibling never ran during the I/O wait" false !b_ran_during_io

let test_same_core_yield_alternation () =
  (* two threads sharing one core alternate only at yields *)
  let log = ref [] in
  let c =
    run_user (fun _ ->
        let parked = List.init 3 (fun _ -> Rt.Pthread.create (fun () -> Coro.consume 3_000_000)) in
        let b =
          Rt.Pthread.create (fun () ->
              for _ = 1 to 3 do
                log := "b" :: !log;
                Rt.Pthread.yield ()
              done)
        in
        for _ = 1 to 3 do
          log := "a" :: !log;
          Rt.Pthread.yield ()
        done;
        Rt.Pthread.join b;
        List.iter Rt.Pthread.join parked)
  in
  no_faults c;
  (* strict alternation once both are on the core *)
  let s = String.concat "" (List.rev !log) in
  check_bool "alternated" true (s = "ababab" || s = "aababb" || s = "abab" ^ "ab")

let test_no_fork_exec () =
  (* SSVII.B: "MPI cannot spawn dynamic tasks because CNK does not allow
     fork/exec" - a process-style clone (no shared vm) is rejected *)
  let errno = ref "" in
  let c =
    run_user (fun _ ->
        let fork_flags = { Sysreq.nptl_clone_flags with Sysreq.vm = false; thread = false } in
        match
          Coro.syscall
            (Sysreq.Clone
               { flags = fork_flags; stack_hint = 0; tls = 0; parent_tid_addr = 0;
                 child_tid_addr = 0; entry = (fun () -> ()) })
        with
        | Sysreq.R_err e -> errno := Errno.to_string e
        | _ -> ())
  in
  Alcotest.(check string) "fork rejected" "EINVAL" !errno;
  no_faults c

let test_memory_divided_evenly_can_strand () =
  (* SSVII.B: "CNK divides memory evenly among the tasks; if one task's
     memory grows more than another, the application could run out of
     memory before all the memory of the node was consumed" *)
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let hit_enomem = ref false in
  let image =
    Image.executable ~name:"hog" (fun () ->
        if Rt.Libc.getpid () = 1 then begin
          (* pid 1 tries to take more than its quarter *)
          try
            for _ = 1 to 10_000 do
              ignore (Rt.Libc.mmap_anon ~length:(64 * mb))
            done
          with Sysreq.Syscall_error Errno.ENOMEM -> hit_enomem := true
        end)
  in
  Cluster.run_job cluster (Job.create ~mode:Job.Vn ~name:"hog" image);
  check_bool "one task exhausts its share" true !hit_enomem;
  (* meanwhile the node had 3 other untouched heaps: by construction each
     process held an equal share (asserted by the mapping tests) *)
  no_faults cluster

let test_personality () =
  let cluster = Cluster.create ~dims:(4, 2, 1) () in
  Cluster.boot_all cluster;
  let got = Array.make 8 None in
  let image =
    Image.executable ~name:"pers" (fun () ->
        let p = Rt.Libc.personality () in
        got.(p.Sysreq.p_rank) <- Some p)
  in
  Cluster.run_job cluster (Job.create ~name:"pers" image);
  Array.iteri
    (fun rank p ->
      match p with
      | None -> Alcotest.failf "rank %d missing" rank
      | Some p ->
        check_int "rank" rank p.Sysreq.p_rank;
        Alcotest.(check bool) "coords roundtrip" true
          (Bg_hw.Torus.rank_of_coord
             (Cluster.machine cluster).Machine.torus p.Sysreq.p_coords
          = rank);
        Alcotest.(check bool) "dims" true (p.Sysreq.p_dims = (4, 2, 1));
        check_int "clock mhz" 850 p.Sysreq.p_clock_mhz;
        check_int "one pset" 0 p.Sysreq.p_pset)
    got

let test_syscall_error_paths () =
  let results = ref [] in
  let record name v = results := (name, v) :: !results in
  let c =
    run_user (fun _ ->
        (* munmap of an unmapped range *)
        (match Coro.syscall (Sysreq.Munmap { addr = 0x5000_0000; length = 4096 }) with
        | Sysreq.R_err Errno.EINVAL -> record "munmap" "EINVAL"
        | _ -> record "munmap" "?");
        (* vtop of an unmapped address *)
        (match Coro.syscall (Sysreq.Query_vtop 0x9E00_0000) with
        | Sysreq.R_err Errno.EFAULT -> record "vtop" "EFAULT"
        | _ -> record "vtop" "?");
        (* brk beyond the heap/stack region *)
        (match Coro.syscall (Sysreq.Brk (Some 0x9F00_0000)) with
        | Sysreq.R_err Errno.ENOMEM -> record "brk" "ENOMEM"
        | _ -> record "brk" "?");
        (* tgkill of a nonexistent thread *)
        (match Coro.syscall (Sysreq.Tgkill { tid = 4242; signo = 10 }) with
        | Sysreq.R_err Errno.ESRCH -> record "tgkill" "ESRCH"
        | _ -> record "tgkill" "?");
        (* futex wait with a mismatched value *)
        let w = Rt.Malloc.malloc 8 in
        Rt.Libc.poke w 5;
        match Coro.syscall (Sysreq.Futex_wait { addr = w; expected = 6 }) with
        | Sysreq.R_err Errno.EAGAIN -> record "futex" "EAGAIN"
        | _ -> record "futex" "?")
  in
  no_faults c;
  Alcotest.(check (list (pair string string))) "all errnos correct"
    [ ("munmap", "EINVAL"); ("vtop", "EFAULT"); ("brk", "ENOMEM");
      ("tgkill", "ESRCH"); ("futex", "EAGAIN") ]
    (List.rev !results)

let test_text_region_write_protected () =
  (* the static map installs text as r-x: a store into the main text
     faults (only DYNAMIC objects skip protection, SSIV.B.2) *)
  let c = run_user (fun _ -> Coro.store ~addr:Mapping.text_va (Bytes.of_string "x")) in
  match Node.faults (Cluster.node c 0) with
  | [ (_, _) ] -> ()
  | l -> Alcotest.failf "expected the text store to fault, got %d faults" (List.length l)

let test_sysreq_pretty_printers () =
  let s r = Format.asprintf "%a" Sysreq.pp_request r in
  Alcotest.(check string) "write" "write(fd=3, 5 bytes)"
    (s (Sysreq.Write { fd = 3; data = Bytes.create 5 }));
  Alcotest.(check string) "open" {|open("/a", RD|WR, 0o644)|}
    (s (Sysreq.Open { path = "/a"; flags = Sysreq.o_rdwr; mode = 0o644 }));
  Alcotest.(check string) "brk" "brk(0x1000)" (s (Sysreq.Brk (Some 4096)));
  Alcotest.(check string) "futex" "futex_wait(0xff, expected=2)"
    (s (Sysreq.Futex_wait { addr = 255; expected = 2 }));
  let p v = Format.asprintf "%a" Sysreq.pp_reply v in
  Alcotest.(check string) "err" "-ENOENT" (p (Sysreq.R_err Errno.ENOENT));
  Alcotest.(check string) "bytes" "<7 bytes>" (p (Sysreq.R_bytes (Bytes.create 7)))

let test_reproducible_two_runs_identical () =
  let run () =
    let cluster = Cluster.create ~dims:(1, 1, 1) ~seed:42L () in
    Cluster.boot_all cluster;
    let image =
      Image.executable ~name:"repro" (fun () ->
          let fd = Rt.Libc.openf ~flags:{ Sysreq.o_rdwr with Sysreq.creat = true } "r.dat" in
          for i = 1 to 10 do
            Coro.consume (1000 * i);
            ignore (Rt.Libc.write_string fd "x")
          done;
          Rt.Libc.close fd)
    in
    Cluster.run_job cluster (Job.create ~name:"repro" image);
    ( Trace.digest (Sim.trace (Cluster.sim cluster)),
      Sim.now (Cluster.sim cluster),
      Node.scan_state (Cluster.node cluster 0) )
  in
  let d1, t1, s1 = run () in
  let d2, t2, s2 = run () in
  check_bool "trace digests equal" true (Fnv.equal d1 d2);
  check_int "completion cycle equal" t1 t2;
  check_bool "scan state equal" true (Fnv.equal s1 s2)

let test_reset_self_refresh_preserves_persist () =
  let cluster = Cluster.create ~dims:(1, 1, 1) () in
  Cluster.boot_all cluster;
  let writer =
    Image.executable ~name:"w" (fun () ->
        let base = Rt.Libc.shm_open_persistent ~name:"boot-data" ~length:mb in
        Rt.Libc.poke base 123456)
  in
  Cluster.run_job cluster (Job.create ~name:"w" writer);
  let node = Cluster.node cluster 0 in
  let pa =
    match Persist.find (Node.persist node) ~name:"boot-data" with
    | Some r -> r.Persist.pa
    | None -> Alcotest.fail "region missing"
  in
  let rebooted = ref false in
  Node.prepare_and_reset node ~reproducible:true ~on_ready:(fun () -> rebooted := true);
  Cluster.run_until_quiet cluster;
  check_bool "rebooted" true !rebooted;
  let v = Bg_hw.Memory.read_int64 (Bg_hw.Chip.memory (Node.chip node)) ~addr:pa in
  Alcotest.(check int64) "self-refresh preserved DRAM" 123456L v

(* ------------------------------------------------------------------ *)

let qcheck = List.map QCheck_alcotest.to_alcotest [ prop_tile_alignment; prop_tracker_mmap_disjoint ]

let suite =
  [
    Alcotest.test_case "mapping: smp layout" `Quick test_mapping_smp;
    Alcotest.test_case "mapping: pa disjoint" `Quick test_mapping_no_overlap_pa;
    Alcotest.test_case "mapping: vn even split" `Quick test_mapping_vn_equal_split;
    Alcotest.test_case "mapping: escalates floor" `Quick test_mapping_escalates_floor;
    Alcotest.test_case "mapping: tight memory" `Quick test_mapping_too_small_fails;
    Alcotest.test_case "mapping: bad nprocs" `Quick test_mapping_rejects_bad_nprocs;
    Alcotest.test_case "mapping: tile coverage" `Quick test_tile_covers_exactly;
    Alcotest.test_case "tracker: brk" `Quick test_tracker_brk;
    Alcotest.test_case "tracker: mmap top-down" `Quick test_tracker_mmap_top_down;
    Alcotest.test_case "tracker: coalesce" `Quick test_tracker_munmap_coalesce;
    Alcotest.test_case "tracker: partial munmap" `Quick test_tracker_partial_munmap;
    Alcotest.test_case "tracker: bad munmap" `Quick test_tracker_munmap_unmapped_fails;
    Alcotest.test_case "tracker: brk blocked by mmap" `Quick test_tracker_brk_blocked_by_mmap;
    Alcotest.test_case "futex: fifo" `Quick test_futex_fifo;
    Alcotest.test_case "futex: per pid" `Quick test_futex_per_pid;
    Alcotest.test_case "futex: remove" `Quick test_futex_remove;
    Alcotest.test_case "persist: stable va" `Quick test_persist_stable_va;
    Alcotest.test_case "persist: privileges" `Quick test_persist_privileges;
    Alcotest.test_case "persist: exhaustion" `Quick test_persist_exhaustion;
    Alcotest.test_case "node: job runs" `Quick test_job_runs_and_exits;
    Alcotest.test_case "node: identity syscalls" `Quick test_identity_syscalls;
    Alcotest.test_case "node: malloc/poke/peek" `Quick test_malloc_poke_peek;
    Alcotest.test_case "node: function-shipped io" `Quick test_function_shipped_io;
    Alcotest.test_case "node: errno passthrough" `Quick test_io_errno_passthrough;
    Alcotest.test_case "node: io disabled" `Quick test_io_disabled_enosys;
    Alcotest.test_case "node: mmap file copy-in" `Quick test_mmap_file_copy_in;
    Alcotest.test_case "node: mutex counter" `Quick test_pthread_mutex_counter;
    Alcotest.test_case "node: barrier + visibility" `Quick test_pthread_barrier_and_cond;
    Alcotest.test_case "node: clone validation" `Quick test_clone_flag_validation;
    Alcotest.test_case "node: overcommit EAGAIN" `Quick test_thread_overcommit_eagain;
    Alcotest.test_case "node: guard kills smash" `Quick test_guard_page_kills_stack_smash;
    Alcotest.test_case "node: guard handler recovers" `Quick test_guard_page_handler_recovers;
    Alcotest.test_case "node: guard IPI reposition" `Quick
      test_heap_extension_repositions_guard_via_ipi;
    Alcotest.test_case "node: persistent memory" `Quick test_persistent_memory_across_jobs;
    Alcotest.test_case "node: persist denied across users" `Quick
      test_persistent_memory_denied_across_users;
    Alcotest.test_case "node: dlopen/dlsym" `Quick test_dlopen_dlsym;
    Alcotest.test_case "node: tgkill EINTR" `Quick test_tgkill_interrupts_futex_wait;
    Alcotest.test_case "node: openmp" `Quick test_openmp_parallel_for;
    Alcotest.test_case "node: query map / vtop" `Quick test_query_map_and_vtop;
    Alcotest.test_case "node: exit_group" `Quick test_exit_group_kills_all;
    Alcotest.test_case "node: vn mode" `Quick test_vn_mode_four_processes;
    Alcotest.test_case "node: io holds the core" `Quick test_io_holds_the_core;
    Alcotest.test_case "node: same-core yield" `Quick test_same_core_yield_alternation;
    Alcotest.test_case "node: no fork/exec" `Quick test_no_fork_exec;
    Alcotest.test_case "node: even split strands memory" `Quick
      test_memory_divided_evenly_can_strand;
    Alcotest.test_case "node: personality" `Quick test_personality;
    Alcotest.test_case "node: syscall error paths" `Quick test_syscall_error_paths;
    Alcotest.test_case "node: text write-protected" `Quick test_text_region_write_protected;
    Alcotest.test_case "sysreq: pretty printers" `Quick test_sysreq_pretty_printers;
    Alcotest.test_case "node: reproducible runs" `Quick test_reproducible_two_runs_identical;
    Alcotest.test_case "node: reset preserves persist" `Quick
      test_reset_self_refresh_preserves_persist;
  ]
  @ qcheck
